package bftcup

import (
	"fmt"
	"time"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// Behavior selects a Byzantine strategy in simulations.
type Behavior int

// Byzantine behaviors.
const (
	// BehaviorSilent never sends a message.
	BehaviorSilent Behavior = iota
	// BehaviorFakePD gossips a chosen false participant detector.
	BehaviorFakePD
	// BehaviorEquivocatePD claims different PDs to different peers.
	BehaviorEquivocatePD
	// BehaviorAsCorrect runs the correct protocol while counting against f.
	BehaviorAsCorrect
)

// Byzantine configures one Byzantine process in a simulation.
type Byzantine struct {
	// Behavior selects what the process does.
	Behavior Behavior
	// ClaimedPD is the advertised PD for BehaviorFakePD/BehaviorEquivocatePD
	// (nil: the topology's real out-list).
	ClaimedPD []ID
	// AltPD is the second PD for BehaviorEquivocatePD.
	AltPD []ID
}

// NetworkKind selects the communication model of Table I.
type NetworkKind int

// Network kinds.
const (
	// NetworkSynchronous bounds every delay by Delta from time zero.
	NetworkSynchronous NetworkKind = iota
	// NetworkPartiallySynchronous delays SlowGroups-crossing (or, with no
	// groups, all) links until GST, synchronous afterwards.
	NetworkPartiallySynchronous
	// NetworkAsynchronousAdversarial grows delays faster than any timeout
	// schedule: deterministic consensus never terminates.
	NetworkAsynchronousAdversarial
)

// Network describes the simulated communication model.
type Network struct {
	// Kind selects the communication model.
	Kind  NetworkKind
	Delta time.Duration // default 5ms
	GST   time.Duration // partial synchrony only
	// SlowGroups: before GST, only intra-group links are fast. Empty means
	// every link is slow pre-GST.
	SlowGroups [][]ID
}

func (n Network) build() sim.NetworkModel {
	delta := sim.Time(n.Delta)
	if delta <= 0 {
		delta = 5 * sim.Millisecond
	}
	switch n.Kind {
	case NetworkPartiallySynchronous:
		gst := sim.Time(n.GST)
		if gst <= 0 {
			gst = 2 * sim.Second
		}
		slow := func(a, b model.ID) bool { return true }
		if len(n.SlowGroups) > 0 {
			groups := make([]model.IDSet, 0, len(n.SlowGroups))
			for _, g := range n.SlowGroups {
				groups = append(groups, model.NewIDSet(g...))
			}
			slow = sim.SlowBetweenGroups(groups...)
		}
		return sim.PartialSync{GST: gst, Delta: delta, Slow: slow}
	case NetworkAsynchronousAdversarial:
		return sim.AsyncAdversarial{Delta: 2 * sim.Second, Factor: 3}
	default:
		return sim.Synchronous{Delta: delta}
	}
}

// SimOptions describes one deterministic simulation.
type SimOptions struct {
	// Topology is the knowledge connectivity graph; each process uses its
	// out-list as its participant detector.
	Topology Topology
	// Protocol selects the committee-identification rule.
	Protocol Protocol
	F        int // ProtocolBFTCUP / ProtocolPermissioned
	// Byzantine assigns faulty behaviors by process.
	Byzantine map[ID]Byzantine
	// Proposals maps processes to values (default "v<id>").
	Proposals map[ID]Value
	// Network is the simulated communication model.
	Network Network
	Horizon time.Duration // default 60s of virtual time
	// Seed makes the whole run deterministic.
	Seed int64
}

// SimReport grades a simulated run.
type SimReport struct {
	// ConsensusSolved is true when Termination, Agreement and Validity all
	// hold among correct processes.
	ConsensusSolved bool
	Termination     bool
	Agreement       bool
	Validity        bool
	// FailureMode names the violated property (empty on success).
	FailureMode string
	// Decisions and Committees record each process's decided value and
	// adopted committee; Messages and Bytes total the network traffic.
	Decisions  map[ID]Value
	Committees map[ID][]ID
	Messages   int64
	Bytes      int64
	// Elapsed is the virtual time of the last correct decision.
	Elapsed time.Duration
}

// Simulate runs the protocol stack on the deterministic discrete-event
// simulator and checks the consensus properties. Identical options produce
// identical reports.
func Simulate(opt SimOptions) (*SimReport, error) {
	if len(opt.Topology) == 0 {
		return nil, fmt.Errorf("bftcup: empty topology")
	}
	var mode core.Mode
	switch opt.Protocol {
	case ProtocolBFTCUP:
		mode = core.ModeKnownF
	case ProtocolBFTCUPFT:
		mode = core.ModeUnknownF
	case ProtocolPermissioned:
		mode = core.ModePermissioned
	default:
		return nil, fmt.Errorf("bftcup: unknown protocol %v", opt.Protocol)
	}
	spec := scenario.Spec{
		Name:    "simulate",
		Graph:   opt.Topology.graph(),
		Mode:    mode,
		F:       opt.F,
		Net:     opt.Network.build(),
		Horizon: sim.Time(opt.Horizon),
		Seed:    opt.Seed,
	}
	if len(opt.Proposals) > 0 {
		spec.Values = make(map[model.ID]model.Value, len(opt.Proposals))
		for id, v := range opt.Proposals {
			spec.Values[id] = v
		}
	}
	if len(opt.Byzantine) > 0 {
		spec.Byz = make(map[model.ID]scenario.ByzSpec, len(opt.Byzantine))
		for id, b := range opt.Byzantine {
			bs := scenario.ByzSpec{}
			switch b.Behavior {
			case BehaviorSilent:
				bs.Kind = scenario.ByzSilent
			case BehaviorFakePD:
				bs.Kind = scenario.ByzFakePD
			case BehaviorEquivocatePD:
				bs.Kind = scenario.ByzEquivPD
			case BehaviorAsCorrect:
				bs.Kind = scenario.ByzAsCorrect
			default:
				return nil, fmt.Errorf("bftcup: unknown behavior %v", b.Behavior)
			}
			if b.ClaimedPD != nil {
				bs.ClaimedPD = model.NewIDSet(b.ClaimedPD...)
			}
			if b.AltPD != nil {
				bs.AltPD = model.NewIDSet(b.AltPD...)
			}
			spec.Byz[id] = bs
		}
	}
	res, err := scenario.Run(spec)
	if err != nil {
		return nil, err
	}
	report := &SimReport{
		Termination: res.Termination,
		Agreement:   res.Agreement,
		Validity:    res.Validity,
		FailureMode: res.FailureMode(),
		Decisions:   make(map[ID]Value),
		Committees:  make(map[ID][]ID),
		Messages:    res.Messages,
		Bytes:       res.Bytes,
		Elapsed:     time.Duration(res.Elapsed),
	}
	report.ConsensusSolved = res.Termination && res.Agreement && res.Validity
	for id, pr := range res.PerProcess {
		if pr.Decided {
			report.Decisions[id] = pr.Value
		}
		if pr.Committee != nil {
			report.Committees[id] = pr.Committee.Sorted()
		}
	}
	return report, nil
}
