// Command cupd runs a BFT-CUP node over real TCP — the deployable twin of
// the cupsim simulator. The same core.Node / discovery / pbft / rrbcast
// stack the deterministic engine drives runs here on the netrt runtime:
// length-prefixed wire-codec frames on per-peer reconnecting streams,
// monotonic-clock timers, graceful shutdown on SIGINT/SIGTERM.
//
// Two modes:
//
// Cluster mode (-cluster) boots every process of the graph def as an
// in-process node over localhost TCP sockets (or net.Pipe with
// -transport pipe), waits for the run to terminate or the horizon to pass,
// and reports the same verdict and per-process table cupsim prints — CI
// asserts verdict equality between the two on the same def/seed:
//
//	cupd -cluster -graph kosr:sink=4,nonsink=3,k=2 -seed 1
//	cupd -cluster -graph fig1b -net partial -gst 500ms -scale 20
//
// Single-node mode boots one process from the graph def plus identity
// flags, serves its listen address, runs discovery + consensus against live
// peers, and reports the decided value and per-node metrics:
//
//	cupd -graph fig1b -id 1 -listen 127.0.0.1:7101 \
//	     -peers 2=127.0.0.1:7102,3=127.0.0.1:7103,...
//
// Every daemon of one deployment must share -graph, -mode, -f, -seed and
// -scale: the seed derives the shared keyring (a stand-in for real key
// distribution) and, for random graph families, the graph itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/netrt"
	"github.com/bftcup/bftcup/internal/rt"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

func main() {
	var (
		graphName = flag.String("graph", "fig1b", "graph def: a figure (fig1a…fig4b), complete:N, kosr:sink=S,nonsink=T,k=K[,extra=P], extended:core=S,noncore=T[,extra=P]")
		modeName  = flag.String("mode", "bft-cup", "protocol: bft-cup|bft-cupft|naive|permissioned")
		f         = flag.Int("f", -1, "fault threshold handed to processes; -1 = the graph family's natural threshold")
		byzFlag   = flag.String("byz", "", "cluster mode: byzantine processes, e.g. 4:silent,7:fake-pd (kinds as in cupsim)")
		netName   = flag.String("net", "sync", "emulated network: sync|partial|async (cluster mode; single nodes use the real network)")
		gst       = flag.Duration("gst", 2*time.Second, "GST for -net partial (virtual)")
		horizon   = flag.Duration("horizon", 60*time.Second, "virtual-time horizon")
		seed      = flag.Int64("seed", 1, "deployment seed: keyring derivation, random graph families, reactor RNGs")
		scale     = flag.Int64("scale", 10, "virtual-to-real time divisor: protocol timeouts and the horizon run scale× faster than their virtual values")
		insecure  = flag.Bool("insecure", false, "swap Ed25519 for the insecure crypto suite (see ARCHITECTURE.md for the narrowed use case)")

		cluster   = flag.Bool("cluster", false, "boot the whole graph as an in-process localhost cluster and grade the run")
		transport = flag.String("transport", "tcp", "cluster links: tcp|pipe")

		id       = flag.Uint64("id", 0, "single-node mode: this process's ID (must be a node of the graph def)")
		listen   = flag.String("listen", "", "single-node mode: TCP listen address for inbound peer streams")
		peers    = flag.String("peers", "", "single-node mode: peer addresses, ID=HOST:PORT comma-separated")
		deadline = flag.Duration("deadline", 0, "single-node mode: how long to wait for a decision (default: horizon/scale)")
	)
	flag.Parse()

	params, err := buildParams(*graphName, *modeName, *f, *byzFlag, *netName, *gst, *horizon)
	if err != nil {
		fail(err)
	}
	params.Seed = *seed
	params.Insecure = *insecure

	if *cluster {
		runCluster(params, *graphName, *transport, *scale)
		return
	}
	runNode(params, model.ID(*id), *listen, *peers, *scale, *deadline)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cupd:", err)
	os.Exit(2)
}

func buildParams(graphName, modeName string, f int, byzFlag, netName string, gst, horizon time.Duration) (scenario.Params, error) {
	def, err := graph.ParseDef(graphName)
	if err != nil {
		return scenario.Params{}, err
	}
	mode, err := parseMode(modeName)
	if err != nil {
		return scenario.Params{}, err
	}
	kind, err := scenario.ParseNetKind(netName)
	if err != nil {
		return scenario.Params{}, err
	}
	byz, err := parseByz(byzFlag)
	if err != nil {
		return scenario.Params{}, err
	}
	return scenario.Params{
		Name:    graphName,
		Graph:   def,
		Mode:    mode,
		F:       f,
		Byz:     byz,
		Net:     scenario.NetParams{Kind: kind, GST: sim.Time(gst)},
		Horizon: sim.Time(horizon),
	}, nil
}

func parseMode(name string) (core.Mode, error) {
	switch name {
	case "bft-cup":
		return core.ModeKnownF, nil
	case "bft-cupft":
		return core.ModeUnknownF, nil
	case "naive":
		return core.ModeNaive, nil
	case "permissioned":
		return core.ModePermissioned, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func parseByz(s string) (map[model.ID]scenario.ByzParams, error) {
	out := make(map[model.ID]scenario.ByzParams)
	if s == "" {
		return out, nil
	}
	for _, item := range strings.Split(s, ",") {
		kv := strings.SplitN(item, ":", 2)
		raw, err := strconv.ParseUint(kv[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad byzantine spec %q", item)
		}
		kind := "silent"
		if len(kv) == 2 {
			kind = kv[1]
		}
		var bp scenario.ByzParams
		bp.Kind, err = scenario.ParseByzKind(kind)
		if err != nil {
			return nil, err
		}
		out[model.ID(raw)] = bp
	}
	return out, nil
}

// runCluster boots the whole compiled scenario as an in-process cluster over
// real connections and prints the cupsim-compatible verdict report.
func runCluster(params scenario.Params, graphName, transport string, scale int64) {
	c, err := params.Compile()
	if err != nil {
		fail(err)
	}
	begin := time.Now()
	res, err := c.RunLive(params.Seed, scenario.LiveOptions{Transport: transport, Scale: scale})
	if err != nil {
		fail(err)
	}
	fmt.Printf("scenario  : %s (mode=%s, %d processes)\n", graphName, params.Mode, c.Graph.NumNodes())
	fmt.Printf("runtime   : live/%s, scale=%d, %v wall\n", transport, scale, time.Since(begin).Round(time.Millisecond))
	fmt.Printf("verdict   : %s", res.Verdict())
	if fm := res.FailureMode(); fm != "" {
		fmt.Printf("  (%s)", fm)
	}
	fmt.Println()
	fmt.Printf("elapsed   : %v virtual, %d messages, %d bytes\n\n", time.Duration(res.Elapsed), res.Messages, res.Bytes)
	ids := make([]uint64, 0, len(res.PerProcess))
	for id := range res.PerProcess {
		ids = append(ids, uint64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("process  role       decision          committee")
	for _, raw := range ids {
		pr := res.PerProcess[model.ID(raw)]
		role := "correct"
		if pr.Byzantine {
			role = "byzantine"
		}
		dec := "⊥"
		if pr.Decided {
			dec = fmt.Sprintf("%q @ %v", pr.Value, time.Duration(pr.DecidedAt).Round(time.Millisecond))
		}
		fmt.Printf("p%-7d %-10s %-17s %v (g=%d)\n", raw, role, dec, pr.Committee, pr.G)
	}
	if res.Verdict() == "✗" {
		os.Exit(1)
	}
}

// runNode boots one process of the deployment and drives it against live
// peers until it decides, the deadline passes, or a signal arrives.
func runNode(params scenario.Params, id model.ID, listen, peersFlag string, scale int64, deadline time.Duration) {
	if id == 0 {
		fail(fmt.Errorf("single-node mode needs -id (or use -cluster)"))
	}
	if listen == "" {
		fail(fmt.Errorf("single-node mode needs -listen"))
	}
	c, err := params.Compile()
	if err != nil {
		fail(err)
	}
	ids := c.Graph.Nodes()
	found := false
	for _, nid := range ids {
		if nid == id {
			found = true
			break
		}
	}
	if !found {
		fail(fmt.Errorf("-id %d is not a node of graph %q", uint64(id), params.Name))
	}
	if _, isByz := c.Byz[id]; isByz {
		fail(fmt.Errorf("-id %d is marked byzantine; the daemon only runs correct nodes", uint64(id)))
	}

	addrs, err := parsePeers(peersFlag)
	if err != nil {
		fail(err)
	}

	var signers map[model.ID]cryptox.Signer
	var reg cryptox.Verifier
	if c.Insecure {
		signers, reg = cryptox.InsecureSuite(ids)
	} else {
		signers, reg, err = cryptox.Keyring(params.Seed+1, ids)
		if err != nil {
			fail(err)
		}
	}

	disc, pbftTimeout, pollPeriod := c.LiveDurations(scale)
	value := model.Value(fmt.Sprintf("v%d", uint64(id)))
	if v, ok := c.Values[id]; ok {
		value = v
	}
	cfg := core.Config{
		Mode:        c.Mode,
		F:           c.F,
		PD:          c.Graph.OutSet(id).Clone(),
		Proposal:    value,
		Discovery:   disc,
		PBFTTimeout: pbftTimeout,
		PollPeriod:  pollPeriod,
		Hardened:    c.Hardened,
	}
	if c.Mode != core.ModePermissioned {
		cfg.Searcher = kosr.NewSearcher()
	}

	begin := time.Now()
	decided := make(chan model.Value, 1)
	node := core.NewNode(signers[id], reg, cfg, func(v model.Value) {
		select {
		case decided <- v:
		default:
		}
	})

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fail(err)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	rn := netrt.NewNode(netrt.Config{
		ID:    id,
		Peers: ids,
		Seed:  params.Seed + int64(id) + 1,
		Dial: func(dctx context.Context, peer model.ID) (net.Conn, error) {
			addr, ok := addrs[peer]
			if !ok {
				return nil, fmt.Errorf("no address for peer %d", uint64(peer))
			}
			d := net.Dialer{Timeout: 2 * time.Second}
			return d.DialContext(dctx, "tcp", addr)
		},
	}, node)
	rn.Start(ctx)
	rn.Serve(ln)
	fmt.Printf("cupd: node %d up on %s (%s, mode=%s, %d peers, scale=%d)\n",
		uint64(id), ln.Addr(), params.Name, params.Mode, len(addrs), scale)

	if deadline <= 0 {
		deadline = time.Duration(int64(c.Horizon) / scale)
	}
	exit := 0
	select {
	case v := <-decided:
		elapsed := time.Since(begin)
		// Report on the virtual axis too, like the sim's tables.
		fmt.Printf("decided   : %q @ %v wall (%v virtual)\n", v, elapsed.Round(time.Millisecond),
			(rt.Time(elapsed) * rt.Time(scale)).String())
		// Keep answering GETDECIDED polls so slower peers terminate too;
		// metrics below report the state at decision time plus this grace.
		grace := time.Duration(int64(sim.Second) / scale)
		select {
		case <-time.After(grace):
		case <-ctx.Done():
		}
	case <-time.After(deadline):
		fmt.Printf("no decision within %v\n", deadline.Round(time.Millisecond))
		exit = 1
	case <-ctx.Done():
		fmt.Println("interrupted")
		exit = 1
	}

	if cand, ok := node.Committee(); ok {
		fmt.Printf("committee : %v (g=%d)\n", cand.Members(), cand.G)
	}
	fmt.Printf("metrics   : %d messages sent, %d bytes\n", rn.Messages(), rn.Bytes())
	rn.Stop()
	os.Exit(exit)
}

// parsePeers parses "2=127.0.0.1:7102,3=host:port" into an address map.
func parsePeers(s string) (map[model.ID]string, error) {
	out := make(map[model.ID]string)
	if s == "" {
		return out, nil
	}
	for _, item := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(item), "=", 2)
		if len(kv) != 2 || kv[1] == "" {
			return nil, fmt.Errorf("bad peer spec %q (want ID=HOST:PORT)", item)
		}
		raw, err := strconv.ParseUint(kv[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad peer ID in %q", item)
		}
		out[model.ID(raw)] = kv[1]
	}
	return out, nil
}
