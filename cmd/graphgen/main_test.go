package main

import (
	"strings"
	"testing"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

// TestReportFormat pins the output contract: first line is the
// matrix-consumable def (with the seed), and the emitted def string parses
// back to the same definition and rebuilds the same graph.
func TestReportFormat(t *testing.T) {
	def, err := buildDef("kosr", "", 5, 3, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	built, err := def.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	ok := report(&out, def, built.G, model.NewIDSet(), 1, 7)
	if !ok {
		t.Fatal("planted kosr graph failed validation")
	}
	lines := strings.Split(out.String(), "\n")
	if len(lines) < 3 {
		t.Fatalf("report too short:\n%s", out.String())
	}
	defLine := lines[0]
	if !strings.HasPrefix(defLine, "def: ") || !strings.HasSuffix(defLine, " seed=7") {
		t.Fatalf("def line format broken: %q", defLine)
	}
	emitted := strings.TrimSuffix(strings.TrimPrefix(defLine, "def: "), " seed=7")
	back, err := graph.ParseDef(emitted)
	if err != nil {
		t.Fatalf("emitted def %q does not parse: %v", emitted, err)
	}
	if back != def {
		t.Fatalf("emitted def round-trips to %+v, want %+v", back, def)
	}
	rebuilt, err := back.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.G.String() != built.G.String() {
		t.Fatal("emitted def + seed rebuilds a different graph")
	}
	if !strings.Contains(out.String(), "BFT-CUP   : ✓") {
		t.Fatalf("missing BFT-CUP verdict:\n%s", out.String())
	}
}

func TestBuildDefFigure(t *testing.T) {
	def, err := buildDef("kosr", "fig4a", 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if def.Kind != graph.DefFigure || def.Figure != "fig4a" {
		t.Fatalf("figure def wrong: %+v", def)
	}
	if _, err := buildDef("bogus", "", 1, 1, 1, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildDefExtended(t *testing.T) {
	def, err := buildDef("extended", "", 6, 2, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	built, err := def.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if built.G.NumNodes() != 8 {
		t.Fatalf("extended graph has %d nodes, want 8", built.G.NumNodes())
	}
	var out strings.Builder
	if ok := report(&out, def, built.G, model.NewIDSet(), built.F, 1); !ok {
		t.Fatalf("planted extended graph failed validation:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BFT-CUPFT : ✓") {
		t.Fatalf("missing BFT-CUPFT verdict:\n%s", out.String())
	}
}
