// Command graphgen generates random knowledge connectivity graphs and
// validates them (or any paper figure) against the BFT-CUP and BFT-CUPFT
// model requirements.
//
// Examples:
//
//	graphgen -kind kosr -sink 7 -nonsink 4 -f 2 -seed 5
//	graphgen -kind extended -sink 8 -nonsink 5
//	graphgen -fig fig4a -f 1 -byz 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
)

func main() {
	var (
		kind    = flag.String("kind", "kosr", "generator: kosr|extended (ignored with -fig)")
		figName = flag.String("fig", "", "validate a paper figure instead of generating")
		sink    = flag.Int("sink", 5, "sink/core size")
		nonsink = flag.Int("nonsink", 3, "non-sink/non-core size")
		f       = flag.Int("f", 1, "fault threshold for validation")
		byzFlag = flag.String("byz", "", "byzantine nodes for validation, e.g. 4 or 4,9")
		seed    = flag.Int64("seed", 1, "generator seed")
		extraP  = flag.Float64("extra", 0.15, "extra-edge probability")
	)
	flag.Parse()

	byz := model.NewIDSet()
	if *byzFlag != "" {
		for _, idStr := range strings.Split(*byzFlag, ",") {
			raw, err := strconv.ParseUint(strings.TrimSpace(idStr), 10, 64)
			if err != nil {
				fail(fmt.Errorf("bad byzantine id %q", idStr))
			}
			byz.Add(model.ID(raw))
		}
	}

	var g *graph.Digraph
	switch {
	case *figName != "":
		found := false
		for _, fig := range graph.AllFigures() {
			if fig.Name == *figName {
				g = fig.G
				if *byzFlag == "" {
					byz = fig.Byz
				}
				if !flagSet("f") {
					*f = fig.F
				}
				found = true
				break
			}
		}
		if !found {
			fail(fmt.Errorf("unknown figure %q", *figName))
		}
	case *kind == "kosr":
		var err error
		g, _, err = graph.GenKOSR(rand.New(rand.NewSource(*seed)), graph.GenSpec{
			SinkSize: *sink, NonSinkSize: *nonsink, K: *f + 1, ExtraEdgeP: *extraP,
		})
		if err != nil {
			fail(err)
		}
	case *kind == "extended":
		var err error
		g, _, _, err = graph.GenExtendedKOSR(rand.New(rand.NewSource(*seed)), graph.GenSpec{
			SinkSize: *sink, NonSinkSize: *nonsink, ExtraEdgeP: *extraP,
		})
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}

	fmt.Printf("# %d nodes, %d edges, byz=%v, f=%d\n", g.NumNodes(), g.NumEdges(), byz, *f)
	fmt.Print(g.String())
	fmt.Println()

	cup := graph.CheckBFTCUP(g, byz, *f)
	if cup.OK {
		fmt.Printf("BFT-CUP   : ✓ sink of safe subgraph = %v\n", cup.Sink)
	} else {
		fmt.Printf("BFT-CUP   : ✗ %s\n", cup.Reason)
	}
	ft := kosr.CheckBFTCUPFT(g, byz, *f)
	if ft.OK {
		fmt.Printf("BFT-CUPFT : ✓ core of safe subgraph = %v (f_G=%d, connectivity %d)\n", ft.Core, ft.FG, ft.FG+1)
	} else {
		fmt.Printf("BFT-CUPFT : ✗ %s\n", ft.Reason)
	}
	// Enumerate every sink of the full graph for insight.
	ext := kosr.CheckExtendedKOSR(g, 1)
	if len(ext.Sinks) > 0 {
		fmt.Println("sinks of the full graph (isSink*):")
		for _, s := range ext.Sinks {
			fmt.Printf("  %v  f_G=%d connectivity=%d\n", s.Members, s.FG, s.FG+1)
		}
	}
	if !cup.OK && !ft.OK {
		os.Exit(1)
	}
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(2)
}
