// Command graphgen generates random knowledge connectivity graphs and
// validates them (or any paper figure) against the BFT-CUP and BFT-CUPFT
// model requirements. Its first output line is the graph's matrix-consumable
// definition — the exact string cupsim -graph and the matrix engine's graph
// axis accept — so generated topologies feed straight into sweeps:
//
//	cupsim -graph "$(graphgen -kind kosr -sink 7 -nonsink 4 -f 2 -seed 5 -emit)" -seed 5
//
// Examples:
//
//	graphgen -kind kosr -sink 7 -nonsink 4 -f 2 -seed 5
//	graphgen -kind extended -sink 8 -nonsink 5
//	graphgen -fig fig4a -f 1 -byz 4
//	graphgen -kind kosr -sink 5 -nonsink 3 -f 1 -emit     (def string only)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
)

func main() {
	var (
		kind    = flag.String("kind", "kosr", "generator: kosr|extended (ignored with -fig)")
		figName = flag.String("fig", "", "validate a paper figure instead of generating")
		sink    = flag.Int("sink", 5, "sink/core size")
		nonsink = flag.Int("nonsink", 3, "non-sink/non-core size")
		f       = flag.Int("f", 1, "fault threshold for validation")
		byzFlag = flag.String("byz", "", "byzantine nodes for validation, e.g. 4 or 4,9")
		seed    = flag.Int64("seed", 1, "generator seed")
		extraP  = flag.Float64("extra", 0.15, "extra-edge probability")
		emit    = flag.Bool("emit", false, "print only the matrix-consumable graph def and exit")
	)
	flag.Parse()

	def, err := buildDef(*kind, *figName, *sink, *nonsink, *f, *extraP)
	if err != nil {
		fail(err)
	}
	if *emit {
		fmt.Println(def.String())
		return
	}

	byz, err := parseByzIDs(*byzFlag)
	if err != nil {
		fail(err)
	}
	built, err := def.Build(*seed)
	if err != nil {
		fail(err)
	}
	fEff := *f
	if def.Kind == graph.DefFigure {
		// The figure's scripted fault assignment is the default; explicit
		// flags win.
		if byz.Len() == 0 {
			byz = built.Byz
		}
		if !flagSet("f") {
			fEff = built.F
		}
	}

	ok := report(os.Stdout, def, built.G, byz, fEff, *seed)
	if !ok {
		os.Exit(1)
	}
}

// buildDef maps the generator flags onto a graph def.
func buildDef(kind, figName string, sink, nonsink, f int, extraP float64) (graph.Def, error) {
	switch {
	case figName != "":
		return graph.ParseDef(figName)
	case kind == "kosr":
		return graph.Def{Kind: graph.DefKOSR, Sink: sink, NonSink: nonsink, K: f + 1, ExtraEdgeP: extraP}, nil
	case kind == "extended":
		return graph.Def{Kind: graph.DefExtended, Sink: sink, NonSink: nonsink, ExtraEdgeP: extraP}, nil
	default:
		return graph.Def{}, fmt.Errorf("unknown kind %q", kind)
	}
}

func parseByzIDs(s string) (model.IDSet, error) {
	byz := model.NewIDSet()
	if s == "" {
		return byz, nil
	}
	for _, idStr := range strings.Split(s, ",") {
		raw, err := strconv.ParseUint(strings.TrimSpace(idStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad byzantine id %q", idStr)
		}
		byz.Add(model.ID(raw))
	}
	return byz, nil
}

// report writes the full validation report: the def line first (the format
// contract the smoke test pins down), then the adjacency list and the
// BFT-CUP / BFT-CUPFT verdicts. It returns false when the graph satisfies
// neither model's requirements.
func report(w io.Writer, def graph.Def, g *graph.Digraph, byz model.IDSet, f int, seed int64) bool {
	fmt.Fprintf(w, "def: %s seed=%d\n", def.String(), seed)
	fmt.Fprintf(w, "# %d nodes, %d edges, byz=%v, f=%d\n", g.NumNodes(), g.NumEdges(), byz, f)
	fmt.Fprint(w, g.String())
	fmt.Fprintln(w)

	cup := graph.CheckBFTCUP(g, byz, f)
	if cup.OK {
		fmt.Fprintf(w, "BFT-CUP   : ✓ sink of safe subgraph = %v\n", cup.Sink)
	} else {
		fmt.Fprintf(w, "BFT-CUP   : ✗ %s\n", cup.Reason)
	}
	ft := kosr.CheckBFTCUPFT(g, byz, f)
	if ft.OK {
		fmt.Fprintf(w, "BFT-CUPFT : ✓ core of safe subgraph = %v (f_G=%d, connectivity %d)\n", ft.Core, ft.FG, ft.FG+1)
	} else {
		fmt.Fprintf(w, "BFT-CUPFT : ✗ %s\n", ft.Reason)
	}
	// Enumerate every sink of the full graph for insight.
	ext := kosr.CheckExtendedKOSR(g, 1)
	if len(ext.Sinks) > 0 {
		fmt.Fprintln(w, "sinks of the full graph (isSink*):")
		for _, s := range ext.Sinks {
			fmt.Fprintf(w, "  %v  f_G=%d connectivity=%d\n", s.Members, s.FG, s.FG+1)
		}
	}
	return cup.OK || ft.OK
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(2)
}
