// Command sweepd is the distributed sweep coordinator: it deals a scenario
// sweep to a fleet of workers as shard spans, spools their JSONL streams,
// survives worker death, torn streams and stragglers (work-stealing re-specs
// a stalled worker's unclaimed tail), and folds everything through the
// streaming merge into the monolithic report — the fingerprint is
// byte-identical to a single-process run of the same sweep.
//
// The default fleet is local subprocesses of sweepd itself in -worker mode;
// -ssh swaps in remote workers over ssh. The worker protocol is the shared
// StreamJob flag set (-shard/-only/-jsonl/-resume), so experiments -matrix
// and cupsim sweeps speak it too.
//
// Usage:
//
//	sweepd -sweep standard -seeds 1:10 -workers 4               4 local subprocess workers
//	sweepd -sweep adversary -seeds 1:3 -workers 4 -shards 16    finer-grained load balancing
//	sweepd -sweep standard -seeds 1:100 -ssh hostA,hostB        ssh fleet (remote sweepd on PATH)
//	sweepd -sweep standard -seeds 1:10 -spool spool/ -v         keep spools, print recovery stats
//	sweepd -worker -sweep standard -seeds 1:10 -shard 2/4 -jsonl -   one worker task by hand
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/bftcup/bftcup/internal/matrix"
)

func main() {
	var (
		worker    = flag.Bool("worker", false, "run one worker task (the coordinator execs these) instead of coordinating")
		sweepSel  = flag.String("sweep", "standard", "sweep to run: standard|adversary|probabilistic|chaos")
		seedsStr  = flag.String("seeds", "1:10", "seed sweep, FROM:TO or a single count N (= 1:N)")
		insecure  = flag.Bool("insecure", false, "swap Ed25519 for the insecure crypto suite (fingerprints NOT comparable with secure sweeps)")
		workers   = flag.Int("workers", 4, "local subprocess workers (ignored with -ssh)")
		sshHosts  = flag.String("ssh", "", "comma-separated ssh destinations; replaces the local fleet")
		remoteCmd = flag.String("remote-cmd", "sweepd", "worker command on ssh hosts (binary plus flags)")
		sshArgs   = flag.String("ssh-args", "", "extra ssh client flags, space-separated")
		shards    = flag.Int("shards", 0, "initial spans dealt to the fleet (0 = one per worker)")
		spoolDir  = flag.String("spool", "", "spool directory for worker streams (empty = temp dir, removed on success)")
		heartbeat = flag.Duration("heartbeat", 2*time.Minute, "declare a worker stalled after this long without stream progress (0 = off)")
		retryWait = flag.Duration("retry-backoff", 0, "base delay before redispatching a failed task, doubling per attempt with jitter (0 = 50ms default, negative = immediate)")
		parallel  = flag.Int("parallel", 1, "per-worker parallelism")
		jsonOut   = flag.Bool("json", false, "emit the merged report as JSON")
		cellRows  = flag.Bool("cells", false, "keep per-cell outcomes in the merged report and list them in text output")
		verbose   = flag.Bool("v", false, "print recovery stats (redispatches, resumes, seals, steals)")
		shardStr  = flag.String("shard", "", "with -worker: run only span i/n[@t] of the sweep")
		onlyStr   = flag.String("only", "", "with -worker: run only these global cell indices, comma-separated")
		jsonlPath = flag.String("jsonl", "", "with -worker: stream per-cell outcomes as JSONL to this file ('-' = stdout)")
		resume    = flag.Bool("resume", false, "with -worker -jsonl FILE: complete an interrupted stream in place")
	)
	flag.Parse()

	src, name, err := buildSweep(*sweepSel, *seedsStr, *insecure)
	if err != nil {
		fail(err)
	}

	if *worker {
		runWorker(name, src, *shardStr, *onlyStr, *jsonlPath, *resume, *parallel)
		return
	}
	runCoordinator(name, src, coordinatorConfig{
		sweepSel: *sweepSel, seedsStr: *seedsStr, insecure: *insecure,
		workers: *workers, sshHosts: *sshHosts, remoteCmd: *remoteCmd, sshArgs: *sshArgs,
		shards: *shards, spoolDir: *spoolDir, heartbeat: *heartbeat, retryWait: *retryWait, parallel: *parallel,
		jsonOut: *jsonOut, cellRows: *cellRows, verbose: *verbose,
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweepd:", err)
	os.Exit(2)
}

// buildSweep resolves the named sweep — the same construction every worker
// and the coordinator must share, or headers disagree and the merge refuses.
func buildSweep(sweepSel, seedsStr string, insecure bool) (matrix.CellSource, string, error) {
	seeds, err := matrix.ParseSeedRange(seedsStr)
	if err != nil {
		return nil, "", err
	}
	var sweep func([]int64) (matrix.CellSource, error)
	switch sweepSel {
	case "standard":
		sweep = matrix.StandardSweep
	case "adversary":
		sweep = matrix.AdversarySweep
	case "probabilistic":
		sweep = matrix.ProbabilisticSweep
	case "chaos":
		sweep = matrix.ChaosSweep
	default:
		return nil, "", fmt.Errorf("unknown sweep %q (want standard|adversary|probabilistic|chaos)", sweepSel)
	}
	src, err := sweep(seeds)
	if err != nil {
		return nil, "", err
	}
	name := fmt.Sprintf("%s sweep, seeds %s", sweepSel, seedsStr)
	if insecure {
		src = matrix.InsecureSource(src)
		name += " (insecure)"
	}
	return src, name, nil
}

// runWorker executes one fabric task: the coordinator side dispatches exactly
// these flags, but the mode also works by hand for debugging a single span.
func runWorker(name string, src matrix.CellSource, shardStr, onlyStr, jsonlPath string, resume bool, parallel int) {
	tr, err := matrix.StreamJob{
		Name: name, Src: src,
		Shard: shardStr, Only: onlyStr,
		Path: jsonlPath, Resume: resume,
		Opts: matrix.Options{Parallelism: parallel},
	}.Run()
	if err != nil {
		fail(err)
	}
	if tr.Errors > 0 {
		os.Exit(1)
	}
}

type coordinatorConfig struct {
	sweepSel, seedsStr           string
	insecure                     bool
	workers                      int
	sshHosts, remoteCmd, sshArgs string
	shards                       int
	spoolDir                     string
	heartbeat, retryWait         time.Duration
	parallel                     int
	jsonOut, cellRows, verbose   bool
}

// fleet builds the worker transports: one ExecTransport per local slot
// self-execing sweepd -worker, or one SSHTransport per -ssh host.
func (c coordinatorConfig) fleet() ([]matrix.Transport, error) {
	base := []string{
		"-worker",
		"-sweep", c.sweepSel,
		"-seeds", c.seedsStr,
		"-parallel", fmt.Sprint(c.parallel),
	}
	if c.insecure {
		base = append(base, "-insecure")
	}
	if c.sshHosts != "" {
		argv := append(strings.Fields(c.remoteCmd), base...)
		var fleet []matrix.Transport
		for _, host := range strings.Split(c.sshHosts, ",") {
			host = strings.TrimSpace(host)
			if host == "" {
				continue
			}
			fleet = append(fleet, matrix.SSHTransport{Host: host, Argv: argv, SSHArgs: strings.Fields(c.sshArgs)})
		}
		if len(fleet) == 0 {
			return nil, fmt.Errorf("-ssh lists no hosts")
		}
		return fleet, nil
	}
	if c.workers <= 0 {
		return nil, fmt.Errorf("need at least one worker")
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary for worker exec: %w", err)
	}
	fleet := make([]matrix.Transport, c.workers)
	for i := range fleet {
		fleet[i] = matrix.ExecTransport{Argv: append([]string{self}, base...)}
	}
	return fleet, nil
}

func runCoordinator(name string, src matrix.CellSource, c coordinatorConfig) {
	fleet, err := c.fleet()
	if err != nil {
		fail(err)
	}
	total := src.Len()
	fmt.Fprintf(os.Stderr, "sweepd: %s — %d cells across %d workers\n", name, total, len(fleet))
	opts := matrix.FabricOptions{
		Shards:       c.shards,
		SpoolDir:     c.spoolDir,
		Heartbeat:    c.heartbeat,
		RetryBackoff: c.retryWait,
		KeepOutcomes: c.cellRows,
	}
	if !c.jsonOut {
		last := -1
		opts.Progress = func(done, total int) {
			if done == last {
				return
			}
			last = done
			fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	// A killed coordinator reaps its fleet: SIGINT/SIGTERM cancel the sweep
	// context, RunFabric cancels every in-flight dispatch and waits for the
	// workers to exit before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	rep, stats, err := matrix.RunFabric(ctx, total, fleet, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "sweepd: interrupted; fleet reaped")
			os.Exit(130)
		}
		fail(err)
	}
	rep.Name = name
	wall := time.Since(start)
	fmt.Fprintf(os.Stderr, "fabric: %d cells in %.2fs (%.2f cells/s) over %d workers, %d dispatches\n",
		rep.Cells, wall.Seconds(), float64(rep.Cells)/wall.Seconds(), len(fleet), stats.Tasks)
	if c.verbose || stats.Redispatches+stats.Resumes+stats.Seals+stats.Steals > 0 {
		fmt.Fprintf(os.Stderr, "fabric: recovery — %d redispatched, %d resumed in place, %d sealed, %d steals (%d sub-shards), %d gap tasks, %d backed off\n",
			stats.Redispatches, stats.Resumes, stats.Seals, stats.Steals, stats.SubShards, stats.GapTasks, stats.Backoffs)
	}
	fmt.Fprintf(os.Stderr, "fingerprint %s\n", rep.Fingerprint())
	if c.jsonOut {
		raw, err := rep.JSON()
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(raw)
		fmt.Println()
	} else {
		rep.WriteText(os.Stdout, c.cellRows)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}
