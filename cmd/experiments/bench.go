package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/matrix"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// BenchEntry is one point of the BENCH_matrix.json performance trajectory:
// the simulator hot path (events/sec, allocs) and the matrix engine
// (cells/sec) measured on one machine at one commit. CI appends an entry per
// run, so the file records how fast the engine is getting — or regressing —
// over the repository's history.
type BenchEntry struct {
	Label    string        `json:"label,omitempty"`
	Date     string        `json:"date"`
	Go       string        `json:"go"`
	MaxProcs int           `json:"maxprocs"`
	Engine   []EngineBench `json:"engine"`
	// Matrix is nil for entries that predate the matrix timing (the pre-PR-2
	// baseline was measured on the engine benchmarks alone).
	Matrix *MatrixBench `json:"matrix,omitempty"`
	// Sweep is the compile-once-run-many measurement: one graph × many
	// seeds, serial — the workload the scenario compilation cache and the
	// cryptox fast path target. Nil for entries that predate it.
	Sweep *MatrixBench `json:"sweep,omitempty"`
	// SweepExt is the extended-KOSR seed sweep: every cell builds its own
	// random extended graph and runs the Core search (Algorithm 4), the
	// knowledge-layer-bound workload the incremental sink/core search engine
	// targets. Nil for entries that predate it.
	SweepExt *MatrixBench `json:"sweep_ext,omitempty"`
	// SweepWorst is a small byz=worst sweep: every cell pays the worst-case
	// placement enumeration inside Compile, so this number tracks the
	// kosr.WorstPlacement search (and the memo sharing that keeps it cheap).
	// Nil for entries that predate it.
	SweepWorst *MatrixBench `json:"sweep_worst,omitempty"`
	// SweepProb is the random-graph-family emergence sweep (er/geo/sf over
	// size × density × f, one seed): every cell builds a fresh random graph
	// and searches views with no planted sink, so the number tracks the
	// bitset subset engine on unstructured graphs. Nil for entries that
	// predate it.
	SweepProb *MatrixBench `json:"sweep_prob,omitempty"`
	// SweepChaos is the chaos fault-injection sweep at one seed: every
	// injected cell pays per-message loss/duplication/reorder draws,
	// partition checks and crash/restart churn on the hardened protocol
	// profile, so the number tracks the injection path in Engine.Send plus
	// the retransmission machinery it triggers. Nil for entries that predate
	// it.
	SweepChaos *MatrixBench `json:"sweep_chaos,omitempty"`
	// SweepDist is the distributed fabric measurement: the Matrix workload
	// run through the sweep coordinator over local subprocess workers, with
	// the merged fingerprint asserted byte-identical to the monolithic run.
	// Speedup compares 4 workers against 1 (the distribution-overhead
	// baseline); on single-core machines it honestly records ~1×, and the
	// cross-environment gate skip keeps such entries from flaking CI. Nil for
	// entries that predate it.
	SweepDist *DistBench `json:"sweep_dist,omitempty"`
	// CupdLocalhost is the live-runtime measurement: an n=7 planted-k-OSR
	// cluster run to unanimous decision over localhost TCP repeatedly — the
	// workload cupd -cluster serves, through the same scenario.RunLive path.
	// DecidesPerSec counts full-cluster decision rounds, so the number tracks
	// the netrt stack (framing, per-peer streams, timer scheduling) end to
	// end rather than any single component. Nil for entries that predate it.
	CupdLocalhost *LiveBench `json:"cupd_localhost,omitempty"`
	// Search is the knowledge-layer search replay (BenchmarkSinkSearch's
	// workload measured through the harness): PD records inserted one at a
	// time with a search after every insertion — the per-event schedule the
	// protocol stack runs during discovery. Nil for entries that predate it.
	Search []SearchBench `json:"search,omitempty"`
}

// LiveBench is one timed live-runtime workload: Rounds full-cluster decision
// rounds (every correct node decides, verdict ✓) over real sockets.
type LiveBench struct {
	Nodes         int     `json:"nodes"`
	Rounds        int     `json:"rounds"`
	WallSeconds   float64 `json:"wall_seconds"`
	DecidesPerSec float64 `json:"decides_per_sec"`
}

// DistBench is the distributed-fabric trajectory point: the 4-worker run plus
// its 1-worker baseline on the same fleet transport.
type DistBench struct {
	Cells       int     `json:"cells"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// OneWorkerWallSeconds is the same sweep through a single subprocess
	// worker — distribution overhead included, so Speedup isolates what the
	// extra workers buy.
	OneWorkerWallSeconds float64 `json:"one_worker_wall_seconds"`
	Speedup              float64 `json:"speedup_vs_one_worker"`
	Fingerprint          string  `json:"fingerprint"`
}

// SearchBench is one sink/core search replay measured via testing.Benchmark.
// One op is a full replay (every record of the view inserted in ID order, a
// search after each insertion), so ops/sec is comparable across runs.
type SearchBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// EngineBench is one sim.Workload measured via testing.Benchmark.
type EngineBench struct {
	Name         string  `json:"name"`
	EventsPerOp  int64   `json:"events_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// MatrixBench is a timed standard-sweep run.
type MatrixBench struct {
	Cells       int     `json:"cells"`
	Parallelism int     `json:"parallelism"`
	WallSeconds float64 `json:"wall_seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
	Fingerprint string  `json:"fingerprint"`
}

// engineBench measures one workload. events/sec divides deterministic
// simulator events by wall time, so it is comparable across runs even when
// b.N differs.
func engineBench(name string, w sim.Workload) EngineBench {
	var events int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := sim.RunWorkload(w)
			if err != nil {
				fail(err)
			}
			events = n
		}
	})
	ns := float64(res.NsPerOp())
	return EngineBench{
		Name:         name,
		EventsPerOp:  events,
		EventsPerSec: float64(events) / (ns / 1e9),
		NsPerEvent:   ns / float64(events),
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
	}
}

// runSweepBench times the 1-graph × 1000-seed serial sweep, the canonical
// compile-once-run-many workload (BenchmarkSweepCells measures the same
// sweep through the testing harness).
func runSweepBench() (*matrix.Report, error) {
	base := scenario.Params{
		Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:  core.ModeKnownF,
		F:     -1,
		Net:   scenario.NetParams{Kind: scenario.NetSync},
	}
	src, err := matrix.SeedSweep(base, matrix.Seeds(1, 1000))
	if err != nil {
		return nil, err
	}
	rep, err := matrix.Run(src, matrix.Options{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("sweep bench had %d errored cells", rep.Errors)
	}
	return rep, nil
}

// runSweepExtBench times the extended-KOSR seed sweep: each cell builds its
// own random extended graph (a compile-cache miss by design) and runs
// Algorithm 4's Core search on every knowledge update — the cell cost is
// dominated by the kosr search layer, which is exactly what this number
// tracks.
func runSweepExtBench() (*matrix.Report, error) {
	base := scenario.Params{
		Graph: graph.Def{Kind: graph.DefExtended, Sink: 4, NonSink: 2, ExtraEdgeP: 0.2},
		Mode:  core.ModeUnknownF,
		F:     -1,
		Net:   scenario.NetParams{Kind: scenario.NetSync},
	}
	src, err := matrix.SeedSweep(base, matrix.Seeds(1, 60))
	if err != nil {
		return nil, err
	}
	rep, err := matrix.Run(src, matrix.Options{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("extended sweep bench had %d errored cells", rep.Errors)
	}
	return rep, nil
}

// runSweepWorstBench times a byz=worst seed sweep on a 12-node random KOSR
// graph: each worker's first cell pays the C(12,3) placement enumeration in
// Compile (then the compile cache amortizes it across seeds), so the number
// is dominated by kosr.WorstPlacement plus the usual cell cost. Worst-placed
// cells legitimately fail consensus; only Errors would be a bench failure.
func runSweepWorstBench() (*matrix.Report, error) {
	base := scenario.Params{
		Graph: graph.Def{Kind: graph.DefKOSR, Sink: 7, NonSink: 5, K: 3, ExtraEdgeP: 0.2},
		Mode:  core.ModeKnownF,
		F:     -1,
		Auto:  scenario.AutoByz{Kind: scenario.ByzSilent, Count: 3, Place: scenario.PlaceWorst},
		Net:   scenario.NetParams{Kind: scenario.NetSync},
	}
	src, err := matrix.SeedSweep(base, matrix.Seeds(1, 40))
	if err != nil {
		return nil, err
	}
	rep, err := matrix.Run(src, matrix.Options{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("worst sweep bench had %d errored cells", rep.Errors)
	}
	return rep, nil
}

// runSweepProbBench times the probabilistic family sweep at one seed: 54
// cells, each building a fresh random graph (er/geo/sf) and running searches
// on views without a planted sink. Cells without consensus are the sweep's
// normal output; only Errors fail the bench.
func runSweepProbBench() (*matrix.Report, error) {
	src, err := matrix.ProbabilisticSweep(matrix.Seeds(1, 1))
	if err != nil {
		return nil, err
	}
	rep, err := matrix.Run(src, matrix.Options{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("probabilistic sweep bench had %d errored cells", rep.Errors)
	}
	return rep, nil
}

// runSweepChaosBench times the chaos fault-injection sweep at one seed: 64
// cells over the loss × partition × churn × f ladder, the injected ones
// drawing per-message faults and running the hardened retransmission
// profile. Cells that lose consensus under injection are the sweep's normal
// output; only Errors fail the bench.
func runSweepChaosBench() (*matrix.Report, error) {
	src, err := matrix.ChaosSweep(matrix.Seeds(1, 1))
	if err != nil {
		return nil, err
	}
	rep, err := matrix.Run(src, matrix.Options{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("chaos sweep bench had %d errored cells", rep.Errors)
	}
	return rep, nil
}

// runSweepDistBench measures the distributed fabric on the Matrix workload
// (standard sweep, seeds 1:2): the same cells dealt to local subprocess
// workers — this very binary re-execed in -matrix worker mode, the transport
// sweepd defaults to — first 1 worker as the distribution-overhead baseline,
// then 4. Both merged fingerprints must be byte-identical to the monolithic
// fingerprint, which makes every trajectory append a distributed-identity
// check too.
func runSweepDistBench(monoFP string) (*DistBench, error) {
	src, err := matrix.StandardSweep(matrix.Seeds(1, 2))
	if err != nil {
		return nil, err
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary for fabric workers: %w", err)
	}
	argv := []string{self, "-matrix", "-seeds", "1:2", "-parallel", "1"}
	run := func(workers int) (*matrix.Report, float64, error) {
		fleet := make([]matrix.Transport, workers)
		for i := range fleet {
			fleet[i] = matrix.ExecTransport{Argv: argv}
		}
		start := time.Now()
		rep, _, err := matrix.RunFabric(context.Background(), src.Len(), fleet, matrix.FabricOptions{})
		if err != nil {
			return nil, 0, err
		}
		if rep.Errors > 0 {
			return nil, 0, fmt.Errorf("fabric bench had %d errored cells", rep.Errors)
		}
		if fp := rep.Fingerprint(); fp != monoFP {
			return nil, 0, fmt.Errorf("fabric fingerprint diverges from monolithic run on %d workers:\n  mono   %s\n  fabric %s", workers, monoFP, fp)
		}
		return rep, time.Since(start).Seconds(), nil
	}
	_, wall1, err := run(1)
	if err != nil {
		return nil, err
	}
	rep, wall4, err := run(4)
	if err != nil {
		return nil, err
	}
	return &DistBench{
		Cells:                rep.Cells,
		Workers:              4,
		WallSeconds:          wall4,
		CellsPerSec:          float64(rep.Cells) / wall4,
		OneWorkerWallSeconds: wall1,
		Speedup:              wall1 / wall4,
		Fingerprint:          rep.Fingerprint(),
	}, nil
}

// runCupdLocalhostBench measures the live runtime: a 7-process planted
// k-OSR cluster (4-member sink, k=2) run to unanimous decision over
// localhost TCP, once per round under a fresh seed. Every round must reach a
// ✓ verdict — a live run that loses consensus is a bug, not a slow round.
func runCupdLocalhostBench() (*LiveBench, error) {
	def, err := graph.ParseDef("kosr:sink=4,nonsink=3,k=2")
	if err != nil {
		return nil, err
	}
	p := scenario.Params{
		Name:    "cupd-localhost",
		Graph:   def,
		Mode:    core.ModeKnownF,
		F:       -1,
		Net:     scenario.NetParams{Kind: scenario.NetSync},
		Horizon: 30 * sim.Second,
	}
	c, err := p.Compile()
	if err != nil {
		return nil, err
	}
	const rounds = 5
	start := time.Now()
	for i := 0; i < rounds; i++ {
		res, err := c.RunLive(int64(i+1), scenario.LiveOptions{Transport: "tcp", Scale: 50})
		if err != nil {
			return nil, err
		}
		if res.Verdict() != "✓" {
			return nil, fmt.Errorf("cupd localhost bench round %d: verdict ✗ (%s)", i+1, res.FailureMode())
		}
	}
	wall := time.Since(start).Seconds()
	return &LiveBench{
		Nodes:         def.NumNodes(),
		Rounds:        rounds,
		WallSeconds:   wall,
		DecidesPerSec: float64(rounds) / wall,
	}, nil
}

// searchReplays builds the search workloads: a view's records inserted one at
// a time (sorted owner order — the schedule is part of the workload), a
// search after every insertion, mirroring the per-event search schedule the
// protocol runs during discovery. The searches go through the incremental
// kosr.Searcher — the engine core.Node uses; earlier trajectory entries for
// these names measured the from-scratch View methods the stack used then.
func searchReplays() ([]SearchBench, error) {
	type replay struct {
		name   string
		g      *graph.Digraph
		search func(se *kosr.Searcher, v *kosr.View) bool
	}
	fig := graph.Fig1b()
	sinkG, _, err := graph.GenKOSR(rand.New(rand.NewSource(9)), graph.GenSpec{SinkSize: 11, NonSinkSize: 5, K: 3, ExtraEdgeP: 0.2})
	if err != nil {
		return nil, err
	}
	// 24-node k-OSR graph with a 15-member sink: the sink SCC sits just under
	// ExactLimit, so every search pays a full exact subset enumeration — the
	// workload the bitset subset engine targets.
	sink24G, _, err := graph.GenKOSR(rand.New(rand.NewSource(9)), graph.GenSpec{SinkSize: 15, NonSinkSize: 9, K: 3, ExtraEdgeP: 0.2})
	if err != nil {
		return nil, err
	}
	fig4b := graph.Fig4b()
	replays := []replay{
		{"sink-replay-fig1b", fig.G, func(se *kosr.Searcher, v *kosr.View) bool {
			_, ok := se.FindSinkKnownF(v, fig.F)
			return ok
		}},
		{"sink-replay-random-11", sinkG, func(se *kosr.Searcher, v *kosr.View) bool {
			_, ok := se.FindSinkKnownF(v, 2)
			return ok
		}},
		{"sink-replay-random-24", sink24G, func(se *kosr.Searcher, v *kosr.View) bool {
			_, ok := se.FindSinkKnownF(v, 2)
			return ok
		}},
		{"core-replay-fig4b", fig4b.G, func(se *kosr.Searcher, v *kosr.View) bool {
			_, ok := se.FindCore(v)
			return ok
		}},
		{"core-replay-random-24", sink24G, func(se *kosr.Searcher, v *kosr.View) bool {
			_, ok := se.FindCore(v)
			return ok
		}},
	}
	out := make([]SearchBench, 0, len(replays))
	for _, r := range replays {
		r := r
		workload := kosr.NewSearchReplay(r.g)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !workload.Run(r.search) {
					fail(fmt.Errorf("search replay %s: full view found nothing", r.name))
				}
			}
		})
		ns := float64(res.NsPerOp())
		out = append(out, SearchBench{
			Name:        r.name,
			NsPerOp:     ns,
			OpsPerSec:   1e9 / ns,
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return out, nil
}

// runBenchJSON measures the hot paths and appends a BenchEntry to the
// trajectory file (created if absent). With gate > 0 it then compares the
// fresh entry against the previous one and exits non-zero on a regression
// beyond the tolerance.
func runBenchJSON(path, label string, gate float64) {
	entry := BenchEntry{
		Label:    label,
		Date:     time.Now().UTC().Format(time.RFC3339),
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
		Engine: []EngineBench{
			engineBench("ring-16", sim.Workload{Procs: 16, Tokens: 16, Fanout: 1}),
			engineBench("ring-64", sim.Workload{Procs: 64, Tokens: 64, Fanout: 1}),
		},
	}

	src, err := matrix.StandardSweep(matrix.Seeds(1, 2))
	if err != nil {
		fail(err)
	}
	rep, err := matrix.Run(src, matrix.Options{})
	if err != nil {
		fail(err)
	}
	if rep.Errors > 0 {
		fail(fmt.Errorf("bench sweep had %d errored cells", rep.Errors))
	}
	entry.Matrix = &MatrixBench{
		Cells:       rep.Cells,
		Parallelism: rep.Parallelism,
		WallSeconds: float64(rep.WallNS) / 1e9,
		CellsPerSec: float64(rep.Cells) / (float64(rep.WallNS) / 1e9),
		Fingerprint: rep.Fingerprint(),
	}

	sweepRep, err := runSweepBench()
	if err != nil {
		fail(err)
	}
	entry.Sweep = &MatrixBench{
		Cells:       sweepRep.Cells,
		Parallelism: sweepRep.Parallelism,
		WallSeconds: float64(sweepRep.WallNS) / 1e9,
		CellsPerSec: float64(sweepRep.Cells) / (float64(sweepRep.WallNS) / 1e9),
		Fingerprint: sweepRep.Fingerprint(),
	}

	extRep, err := runSweepExtBench()
	if err != nil {
		fail(err)
	}
	entry.SweepExt = &MatrixBench{
		Cells:       extRep.Cells,
		Parallelism: extRep.Parallelism,
		WallSeconds: float64(extRep.WallNS) / 1e9,
		CellsPerSec: float64(extRep.Cells) / (float64(extRep.WallNS) / 1e9),
		Fingerprint: extRep.Fingerprint(),
	}

	worstRep, err := runSweepWorstBench()
	if err != nil {
		fail(err)
	}
	entry.SweepWorst = &MatrixBench{
		Cells:       worstRep.Cells,
		Parallelism: worstRep.Parallelism,
		WallSeconds: float64(worstRep.WallNS) / 1e9,
		CellsPerSec: float64(worstRep.Cells) / (float64(worstRep.WallNS) / 1e9),
		Fingerprint: worstRep.Fingerprint(),
	}

	probRep, err := runSweepProbBench()
	if err != nil {
		fail(err)
	}
	entry.SweepProb = &MatrixBench{
		Cells:       probRep.Cells,
		Parallelism: probRep.Parallelism,
		WallSeconds: float64(probRep.WallNS) / 1e9,
		CellsPerSec: float64(probRep.Cells) / (float64(probRep.WallNS) / 1e9),
		Fingerprint: probRep.Fingerprint(),
	}

	chaosRep, err := runSweepChaosBench()
	if err != nil {
		fail(err)
	}
	entry.SweepChaos = &MatrixBench{
		Cells:       chaosRep.Cells,
		Parallelism: chaosRep.Parallelism,
		WallSeconds: float64(chaosRep.WallNS) / 1e9,
		CellsPerSec: float64(chaosRep.Cells) / (float64(chaosRep.WallNS) / 1e9),
		Fingerprint: chaosRep.Fingerprint(),
	}

	if entry.SweepDist, err = runSweepDistBench(entry.Matrix.Fingerprint); err != nil {
		fail(err)
	}

	if entry.CupdLocalhost, err = runCupdLocalhostBench(); err != nil {
		fail(err)
	}

	if entry.Search, err = searchReplays(); err != nil {
		fail(err)
	}

	var trajectory []BenchEntry
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &trajectory); err != nil {
			fail(fmt.Errorf("%s: existing trajectory is not a JSON array: %w", path, err))
		}
	} else if !os.IsNotExist(err) {
		fail(err)
	}

	for _, e := range entry.Engine {
		fmt.Printf("engine %-10s %12.0f events/s  %6.1f ns/event  %6d allocs/op\n",
			e.Name, e.EventsPerSec, e.NsPerEvent, e.AllocsPerOp)
	}
	fmt.Printf("matrix %d cells on %d workers: %.2f cells/s (%.2fs)\n",
		entry.Matrix.Cells, entry.Matrix.Parallelism, entry.Matrix.CellsPerSec, entry.Matrix.WallSeconds)
	fmt.Printf("sweep  %d cells on %d workers: %.2f cells/s (%.2fs)\n",
		entry.Sweep.Cells, entry.Sweep.Parallelism, entry.Sweep.CellsPerSec, entry.Sweep.WallSeconds)
	fmt.Printf("sweep-ext %d cells on %d workers: %.2f cells/s (%.2fs)\n",
		entry.SweepExt.Cells, entry.SweepExt.Parallelism, entry.SweepExt.CellsPerSec, entry.SweepExt.WallSeconds)
	fmt.Printf("sweep-worst %d cells on %d workers: %.2f cells/s (%.2fs)\n",
		entry.SweepWorst.Cells, entry.SweepWorst.Parallelism, entry.SweepWorst.CellsPerSec, entry.SweepWorst.WallSeconds)
	fmt.Printf("sweep-prob %d cells on %d workers: %.2f cells/s (%.2fs)\n",
		entry.SweepProb.Cells, entry.SweepProb.Parallelism, entry.SweepProb.CellsPerSec, entry.SweepProb.WallSeconds)
	fmt.Printf("sweep-chaos %d cells on %d workers: %.2f cells/s (%.2fs)\n",
		entry.SweepChaos.Cells, entry.SweepChaos.Parallelism, entry.SweepChaos.CellsPerSec, entry.SweepChaos.WallSeconds)
	fmt.Printf("sweep-dist %d cells on %d subprocess workers: %.2f cells/s (%.2fs; %.2fx vs 1 worker; fingerprint matches monolithic)\n",
		entry.SweepDist.Cells, entry.SweepDist.Workers, entry.SweepDist.CellsPerSec, entry.SweepDist.WallSeconds, entry.SweepDist.Speedup)
	fmt.Printf("cupd-localhost %d nodes over TCP: %.2f decides/s (%d rounds, %.2fs)\n",
		entry.CupdLocalhost.Nodes, entry.CupdLocalhost.DecidesPerSec, entry.CupdLocalhost.Rounds, entry.CupdLocalhost.WallSeconds)
	for _, s := range entry.Search {
		fmt.Printf("search %-22s %10.0f ns/op  %8.0f ops/s  %6d allocs/op\n",
			s.Name, s.NsPerOp, s.OpsPerSec, s.AllocsPerOp)
	}

	// Gate before persisting: a regressed entry must not become the next
	// run's baseline (appending first would let a simple re-run ratify the
	// regression).
	if gate > 0 && len(trajectory) > 0 {
		prev := trajectory[len(trajectory)-1]
		if err := gateEntry(prev, entry, gate); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bench gate (tolerance %.0f%%): %v\n", gate*100, err)
			fmt.Fprintf(os.Stderr, "experiments: regressed entry NOT appended to %s\n", path)
			os.Exit(1)
		}
	}

	trajectory = append(trajectory, entry)
	out, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("appended to %s (%d entries)\n", path, len(trajectory))
}

// gateEntry compares a fresh entry against the previous one and reports
// every throughput metric (per-workload events/sec, matrix cells/sec) that
// regressed by more than the given fraction. Entries measured in different
// environments (Go version or GOMAXPROCS) are not comparable — hardware
// alone moves throughput more than any tolerance — so the gate says so and
// passes rather than flaking; the signal comes from same-environment pairs
// (a CI runner vs its previous run, a dev machine vs its last append).
// Workloads the previous entry did not measure are skipped — the gate
// compares trajectory, it does not freeze the workload set.
func gateEntry(prev, cur BenchEntry, tol float64) error {
	if prev.Go != cur.Go || prev.MaxProcs != cur.MaxProcs {
		fmt.Printf("bench gate skipped: previous entry is from %s/maxprocs=%d, this run is %s/maxprocs=%d (cross-environment numbers are not comparable)\n",
			prev.Go, prev.MaxProcs, cur.Go, cur.MaxProcs)
		return nil
	}
	prevEngine := make(map[string]EngineBench, len(prev.Engine))
	for _, e := range prev.Engine {
		prevEngine[e.Name] = e
	}
	var regressions []string
	for _, e := range cur.Engine {
		p, ok := prevEngine[e.Name]
		if !ok || p.EventsPerSec <= 0 {
			continue
		}
		if e.EventsPerSec < p.EventsPerSec*(1-tol) {
			regressions = append(regressions, fmt.Sprintf(
				"engine %s: %.0f events/s, was %.0f (%.1f%% drop)",
				e.Name, e.EventsPerSec, p.EventsPerSec, (1-e.EventsPerSec/p.EventsPerSec)*100))
		}
	}
	gateSweep := func(name string, c, p *MatrixBench) {
		if c != nil && p != nil && p.CellsPerSec > 0 && c.CellsPerSec < p.CellsPerSec*(1-tol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.2f cells/s, was %.2f (%.1f%% drop)",
				name, c.CellsPerSec, p.CellsPerSec, (1-c.CellsPerSec/p.CellsPerSec)*100))
		}
	}
	gateSweep("matrix", cur.Matrix, prev.Matrix)
	gateSweep("sweep", cur.Sweep, prev.Sweep)
	gateSweep("sweep-ext", cur.SweepExt, prev.SweepExt)
	gateSweep("sweep-worst", cur.SweepWorst, prev.SweepWorst)
	gateSweep("sweep-prob", cur.SweepProb, prev.SweepProb)
	gateSweep("sweep-chaos", cur.SweepChaos, prev.SweepChaos)
	if c, p := cur.SweepDist, prev.SweepDist; c != nil && p != nil && p.CellsPerSec > 0 && c.CellsPerSec < p.CellsPerSec*(1-tol) {
		regressions = append(regressions, fmt.Sprintf(
			"sweep-dist: %.2f cells/s, was %.2f (%.1f%% drop)",
			c.CellsPerSec, p.CellsPerSec, (1-c.CellsPerSec/p.CellsPerSec)*100))
	}
	if c, p := cur.CupdLocalhost, prev.CupdLocalhost; c != nil && p != nil && p.DecidesPerSec > 0 && c.DecidesPerSec < p.DecidesPerSec*(1-tol) {
		regressions = append(regressions, fmt.Sprintf(
			"cupd-localhost: %.2f decides/s, was %.2f (%.1f%% drop)",
			c.DecidesPerSec, p.DecidesPerSec, (1-c.DecidesPerSec/p.DecidesPerSec)*100))
	}
	prevSearch := make(map[string]SearchBench, len(prev.Search))
	for _, s := range prev.Search {
		prevSearch[s.Name] = s
	}
	for _, s := range cur.Search {
		p, ok := prevSearch[s.Name]
		if !ok || p.OpsPerSec <= 0 {
			continue
		}
		if s.OpsPerSec < p.OpsPerSec*(1-tol) {
			regressions = append(regressions, fmt.Sprintf(
				"search %s: %.0f ops/s, was %.0f (%.1f%% drop)",
				s.Name, s.OpsPerSec, p.OpsPerSec, (1-s.OpsPerSec/p.OpsPerSec)*100))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Printf("bench gate passed: no throughput regression beyond %.0f%% vs the previous entry\n", tol*100)
	return nil
}
