package main

import "testing"

// TestCupdLocalhostBenchSmoke runs the live-runtime bench workload once so
// the -bench-json path cannot rot unexercised: a few decision rounds over
// real localhost sockets, every verdict ✓.
func TestCupdLocalhostBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster rounds cost wall-clock time")
	}
	lb, err := runCupdLocalhostBench()
	if err != nil {
		t.Fatal(err)
	}
	if lb.Nodes != 7 || lb.Rounds <= 0 || lb.DecidesPerSec <= 0 {
		t.Fatalf("implausible bench result: %+v", lb)
	}
}
