// Command experiments regenerates every table and figure of the paper:
// it runs each experiment of the reproduction suite on the deterministic
// simulator and prints paper-expected vs measured outcomes as Markdown
// (the source of EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run table1|fig1|fig2|fig3|fig4|all] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
	"github.com/bftcup/bftcup/internal/wire"
)

func modelID(raw uint64) model.ID { return model.ID(raw) }

func failNote(res *scenario.Result) string {
	if f := res.FailureMode(); f != "" {
		return " — " + f
	}
	return ""
}

func main() {
	runSel := flag.String("run", "all", "which experiment group to run: table1, fig1, fig2, fig3, fig4, all")
	verbose := flag.Bool("v", false, "print per-process details")
	flag.Parse()

	groups := map[string][]scenario.Experiment{
		"table1": scenario.Table1(),
		"fig1":   scenario.Fig1(),
		"fig2":   scenario.Fig2(),
		"fig3":   scenario.Fig3(),
		"fig4":   scenario.Fig4(),
	}
	var order []string
	if *runSel == "all" {
		order = []string{"table1", "fig1", "fig2", "fig3", "fig4"}
	} else if _, ok := groups[*runSel]; ok {
		order = []string{*runSel}
	} else {
		fmt.Fprintf(os.Stderr, "unknown group %q\n", *runSel)
		os.Exit(2)
	}

	mismatches := 0
	for _, g := range order {
		fmt.Printf("## %s\n\n", g)
		if g == "table1" {
			runTable1(groups[g], *verbose, &mismatches)
			continue
		}
		runGroup(groups[g], *verbose, &mismatches)
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "%d experiments diverged from the paper's prediction\n", mismatches)
		os.Exit(1)
	}
}

func runTable1(exps []scenario.Experiment, verbose bool, mismatches *int) {
	type cell struct{ expected, measured string }
	cells := make(map[string]cell)
	var details []string
	for _, exp := range exps {
		res, err := scenario.Run(exp.Spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		want := "✓"
		if !exp.Expect.Consensus {
			want = "✗"
		}
		got := res.Verdict()
		if got != want {
			*mismatches++
		}
		key := strings.TrimPrefix(exp.ID, "table1/")
		cells[key] = cell{expected: want, measured: got}
		details = append(details, fmt.Sprintf("- `%s`: measured %s (elapsed %v, %d msgs, %d bytes)%s",
			key, got, time(res.Elapsed), res.Messages, res.Bytes, failNote(res)))
		if verbose {
			details = append(details, perProcess(res)...)
		}
	}
	fmt.Println("| Communication | Known n, Known f | Unknown n, Known f | Unknown n, Unknown f |")
	fmt.Println("|---|---|---|---|")
	for _, row := range []struct{ label, key string }{
		{"Synchronous", "sync"},
		{"Partially synchronous", "partial"},
		{"Asynchronous (adversarial)", "async"},
	} {
		fmt.Printf("| %s |", row.label)
		for _, col := range []string{"known-n-known-f", "unknown-n-known-f", "unknown-n-unknown-f"} {
			c := cells[row.key+"/"+col]
			mark := c.measured
			if c.measured != c.expected {
				mark = fmt.Sprintf("%s (paper: %s!)", c.measured, c.expected)
			}
			fmt.Printf(" %s |", mark)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, d := range details {
		fmt.Println(d)
	}
	fmt.Println()
}

func runGroup(exps []scenario.Experiment, verbose bool, mismatches *int) {
	fmt.Println("| Experiment | Paper predicts | Measured | Failure mode | Elapsed | Msgs | Bytes |")
	fmt.Println("|---|---|---|---|---|---|---|")
	var notes []string
	for _, exp := range exps {
		res, err := scenario.Run(exp.Spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		want := "✓"
		if !exp.Expect.Consensus {
			want = "✗"
		}
		got := res.Verdict()
		if got != want {
			*mismatches++
			got += " (MISMATCH)"
		}
		fail := res.FailureMode()
		if fail == "" {
			fail = "—"
		}
		fmt.Printf("| `%s` | %s | %s | %s | %v | %d | %d |\n",
			exp.ID, want, got, fail, time(res.Elapsed), res.Messages, res.Bytes)
		notes = append(notes, fmt.Sprintf("- `%s`: %s", exp.ID, exp.Expect.Note))
		if verbose {
			for _, l := range perProcess(res) {
				notes = append(notes, l)
			}
		}
	}
	fmt.Println()
	for _, n := range notes {
		fmt.Println(n)
	}
	fmt.Println()
}

func perProcess(res *scenario.Result) []string {
	var out []string
	ids := make([]uint64, 0, len(res.PerProcess))
	for id := range res.PerProcess {
		ids = append(ids, uint64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, raw := range ids {
		id := modelID(raw)
		pr := res.PerProcess[id]
		role := "correct"
		if pr.Byzantine {
			role = "byzantine"
		}
		dec := "undecided"
		if pr.Decided {
			dec = fmt.Sprintf("decided %q at %v", pr.Value, time(pr.DecidedAt))
		}
		out = append(out, fmt.Sprintf("    - p%d (%s): %s, committee %v (g=%d)", raw, role, dec, pr.Committee, pr.G))
	}
	kinds := make([]int, 0, len(res.ByKind))
	for k := range res.ByKind {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	var kindStrs []string
	for _, k := range kinds {
		kindStrs = append(kindStrs, fmt.Sprintf("%s=%d", wire.KindName(byte(k)), res.ByKind[byte(k)]))
	}
	out = append(out, "    - traffic: "+strings.Join(kindStrs, " "))
	return out
}

func time(t sim.Time) string {
	switch {
	case t >= sim.Second:
		return fmt.Sprintf("%.2fs", float64(t)/float64(sim.Second))
	case t >= sim.Millisecond:
		return fmt.Sprintf("%.1fms", float64(t)/float64(sim.Millisecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
