// Command experiments drives the scenario-matrix engine. It regenerates
// every table and figure of the paper (paper-expected vs measured outcomes
// as Markdown, the source of EXPERIMENTS.md), runs free parameter sweeps far
// beyond the paper's grid — monolithic or split into deterministic shards
// whose JSONL streams merge back into the identical aggregate report — and
// maintains the repository's performance trajectory file.
//
// Usage:
//
//	experiments [-run table1|fig1|fig2|fig3|fig4|all] [-v]       reproduce the paper
//	experiments -matrix [-seeds 1:10] [-parallel N] [-json]      standard sweep (240 cells at 10 seeds)
//	experiments -matrix -chaos [-seeds 1:3]                      chaos degradation sweep (loss × partition × churn × f)
//	experiments -matrix -compare                                 serial-vs-parallel: identical reports + speedup
//	experiments -matrix -shard 2/3 -jsonl part2.jsonl            run one shard, streaming per-cell JSONL
//	experiments -matrix -shard 2/3 -jsonl part2.jsonl -resume    complete an interrupted shard stream
//	experiments -matrix -only 4,17,23 -jsonl gaps.jsonl          run explicit cells (the fabric's gap back-fill)
//	experiments -merge part1.jsonl part2.jsonl part3.jsonl       reconstruct the aggregate report from shards
//	experiments -merge -summary part*.jsonl                      constant-memory merge (aggregates only)
//	experiments -bench-json [-bench-out BENCH_matrix.json]       append engine+matrix numbers to the trajectory
//	experiments -bench-json -bench-gate 0.15                     …and fail on >15% events/sec regression
//
// Flags common to the report-producing modes:
//
//	-parallel N   worker count (0 = GOMAXPROCS, 1 = serial)
//	-json         emit the full matrix report as JSON on stdout
//	-trace        record per-cell event-trace digests in the report
//	-cells        text output lists every cell, not just aggregates
//	-cpuprofile F write a pprof CPU profile of the run to F
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"strings"

	"github.com/bftcup/bftcup/internal/matrix"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/wire"
)

func main() {
	var (
		runSel     = flag.String("run", "all", "experiment group: table1, fig1, fig2, fig3, fig4, all (ignored with -matrix)")
		verbose    = flag.Bool("v", false, "print per-process details")
		doMatrix   = flag.Bool("matrix", false, "run the standard scenario-matrix sweep instead of the paper suite")
		adversary  = flag.Bool("adversary", false, "with -matrix: sweep the adversary zoo (delay, selective silence, collusion, equivocation) with tail vs worst-case placements instead of the standard axes")
		probSweep  = flag.Bool("probabilistic", false, "with -matrix: sweep the random-graph families (er, geo, sf) over size, density and fault threshold, reporting per-axis emergence rates")
		chaosSweep = flag.Bool("chaos", false, "with -matrix: sweep the chaos fault-injection ladder (loss × partition × churn × f) over the BFT-CUP families, reporting graded-property degradation")
		seedsStr   = flag.String("seeds", "1:10", "seed sweep for -matrix, as FROM:TO or a single count N (= 1:N)")
		parallel   = flag.Int("parallel", 0, "worker count: 0 = GOMAXPROCS, 1 = serial")
		jsonOut    = flag.Bool("json", false, "emit the matrix report as JSON")
		trace      = flag.Bool("trace", false, "record per-cell event-trace digests")
		cellRows   = flag.Bool("cells", false, "list every cell in text output")
		compare    = flag.Bool("compare", false, "with -matrix: run serially then in parallel, assert identical reports, print speedup")
		shardStr   = flag.String("shard", "", "with -matrix: run only span i/n[@t] of the sweep (deterministic partition)")
		onlyStr    = flag.String("only", "", "with -matrix: run only these global cell indices, comma-separated (the fabric's gap back-fill)")
		jsonlPath  = flag.String("jsonl", "", "with -matrix: stream per-cell outcomes as JSONL to this file ('-' = stdout) instead of buffering a report")
		resume     = flag.Bool("resume", false, "with -matrix -jsonl FILE: resume an interrupted stream, running only the cells the file is missing")
		insecure   = flag.Bool("insecure", false, "with -matrix: swap Ed25519 for the insecure crypto suite (faster cells; fingerprints NOT comparable with secure sweeps)")
		doMerge    = flag.Bool("merge", false, "merge shard JSONL files (positional arguments) into the aggregate report")
		summary    = flag.Bool("summary", false, "with -merge: aggregate in constant memory, dropping per-cell outcomes from the report")
		benchJSON  = flag.Bool("bench-json", false, "run the engine and matrix hot-path benchmarks and append an entry to the trajectory file")
		benchOut   = flag.String("bench-out", "BENCH_matrix.json", "trajectory file for -bench-json")
		benchLabel = flag.String("bench-label", "", "label recorded with the -bench-json entry")
		benchGate  = flag.Float64("bench-gate", 0, "with -bench-json: fail when events/sec or cells/sec regress by more than this fraction vs the previous trajectory entry (0 = off)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected mode to this file (hot-path work starts from a profile artifact)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		// The report-producing paths exit through os.Exit on failure; the
		// profile is flushed only on the success path, which is the one a
		// profiling session cares about.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuProfile)
		}()
	}

	switch {
	case *doMerge:
		runMerge(flag.Args(), *jsonOut, *cellRows, *summary)
	case *benchJSON:
		runBenchJSON(*benchOut, *benchLabel, *benchGate)
	case *doMatrix:
		runMatrix(*seedsStr, *adversary, *probSweep, *chaosSweep, *parallel, *jsonOut, *trace, *cellRows, *compare, *shardStr, *onlyStr, *jsonlPath, *resume, *insecure)
	default:
		runPaperSuite(*runSel, *parallel, *jsonOut, *trace, *verbose)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}

// runMerge reconstructs the aggregate report from shard JSONL files. With
// summary the merge folds in constant memory and the report carries
// aggregates only.
func runMerge(paths []string, jsonOut, cellRows, summary bool) {
	if len(paths) == 0 {
		fail(fmt.Errorf("-merge needs shard files as positional arguments"))
	}
	rep, err := matrix.MergeFilesWith(matrix.MergeOptions{KeepOutcomes: !summary}, paths...)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "merged %d shard file(s): %d cells, fingerprint %s\n",
		len(paths), rep.Cells, rep.Fingerprint())
	emit(rep, jsonOut, cellRows)
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// runMatrix executes the standard sweep: whole, or one deterministic shard,
// optionally streaming per-cell JSONL (fresh or resumed) instead of
// buffering a report. The sweep is a lazy cell source end to end — nothing
// materializes the cell list, so seed ranges in the millions are fine.
func runMatrix(seedsStr string, adversary, probabilistic, chaos bool, parallel int, jsonOut, trace, cellRows, compare bool, shardStr, onlyStr, jsonlPath string, resume, insecure bool) {
	seeds, err := matrix.ParseSeedRange(seedsStr)
	if err != nil {
		fail(err)
	}
	picked := 0
	for _, b := range []bool{adversary, probabilistic, chaos} {
		if b {
			picked++
		}
	}
	if picked > 1 {
		fail(fmt.Errorf("-adversary, -probabilistic and -chaos select different sweeps; pick one"))
	}
	sweepName, sweep := "standard", matrix.StandardSweep
	switch {
	case adversary:
		sweepName, sweep = "adversary", matrix.AdversarySweep
	case probabilistic:
		sweepName, sweep = "probabilistic", matrix.ProbabilisticSweep
	case chaos:
		sweepName, sweep = "chaos", matrix.ChaosSweep
	}
	src, err := sweep(seeds)
	if err != nil {
		fail(err)
	}
	name := fmt.Sprintf("%s sweep, seeds %s", sweepName, seedsStr)
	if insecure {
		src = matrix.InsecureSource(src)
		name += " (insecure)"
	}
	job := matrix.StreamJob{Name: name, Src: src, Shard: shardStr, Only: onlyStr, Path: jsonlPath, Resume: resume}
	part, spec, err := job.Slice()
	if err != nil {
		fail(err)
	}
	whole := spec == "1/1"
	if compare && (!whole || jsonlPath != "") {
		fail(fmt.Errorf("-compare runs the whole sweep twice; it cannot be combined with -shard, -only or -jsonl"))
	}
	if resume && jsonlPath == "" {
		fail(fmt.Errorf("-resume needs -jsonl FILE (a stream on stdout cannot be resumed)"))
	}
	opts := matrix.Options{Parallelism: parallel, Trace: trace}
	if !jsonOut && jsonlPath != "-" {
		opts.Progress = progressLine(part.Len())
	}
	job.Opts = opts

	if jsonlPath != "" {
		tr, err := job.Run()
		if err != nil {
			fail(err)
		}
		if tr.Errors > 0 {
			os.Exit(1)
		}
		return
	}

	var rep *matrix.Report
	if compare {
		serialOpts := opts
		serialOpts.Parallelism = 1
		serial, err := matrix.Run(src, serialOpts)
		if err != nil {
			fail(err)
		}
		rep, err = matrix.Run(src, opts)
		if err != nil {
			fail(err)
		}
		if s, p := serial.Fingerprint(), rep.Fingerprint(); s != p {
			fail(fmt.Errorf("serial and parallel reports diverge:\n  serial   %s\n  parallel %s", s, p))
		}
		speedup := float64(serial.WallNS) / float64(rep.WallNS)
		fmt.Fprintf(os.Stderr, "serial %.2fs, parallel %.2fs on %d workers → %.2fx speedup; reports identical (fingerprint %s)\n",
			float64(serial.WallNS)/1e9, float64(rep.WallNS)/1e9, rep.Parallelism, speedup, rep.Fingerprint()[:12])
	} else {
		rep, err = matrix.Run(part, opts)
		if err != nil {
			fail(err)
		}
	}
	rep.Name = name
	if !whole {
		rep.Name = fmt.Sprintf("%s, shard %s", name, spec)
	}
	fmt.Fprintf(os.Stderr, "fingerprint %s\n", rep.Fingerprint())
	emit(rep, jsonOut, cellRows)
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

func progressLine(total int) func(done, total int) {
	if total < 40 {
		return nil
	}
	return func(done, total int) {
		if done%20 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
}

func emit(rep *matrix.Report, jsonOut, cellRows bool) {
	if jsonOut {
		raw, err := rep.JSON()
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(raw)
		fmt.Println()
		return
	}
	rep.WriteText(os.Stdout, cellRows)
}

// runPaperSuite reproduces the paper's tables and figures through the matrix
// engine and renders the classic paper-vs-measured Markdown.
func runPaperSuite(runSel string, parallel int, jsonOut, trace, verbose bool) {
	groups := map[string][]scenario.Experiment{
		"table1": scenario.Table1(),
		"fig1":   scenario.Fig1(),
		"fig2":   scenario.Fig2(),
		"fig3":   scenario.Fig3(),
		"fig4":   scenario.Fig4(),
	}
	var order []string
	if runSel == "all" {
		order = []string{"table1", "fig1", "fig2", "fig3", "fig4"}
	} else if _, ok := groups[runSel]; ok {
		order = []string{runSel}
	} else {
		fmt.Fprintf(os.Stderr, "unknown group %q\n", runSel)
		os.Exit(2)
	}

	if jsonOut {
		var exps []scenario.Experiment
		for _, g := range order {
			exps = append(exps, groups[g]...)
		}
		rep, err := matrix.Run(matrix.FromExperiments(exps), matrix.Options{Parallelism: parallel, Trace: trace})
		if err != nil {
			fail(err)
		}
		rep.Name = "paper suite: " + strings.Join(order, ",")
		emit(rep, true, false)
		if rep.Mismatches > 0 || rep.Errors > 0 {
			os.Exit(1)
		}
		return
	}

	mismatches := 0
	for _, g := range order {
		fmt.Printf("## %s\n\n", g)
		rep, err := matrix.Run(matrix.FromExperiments(groups[g]), matrix.Options{Parallelism: parallel, Trace: trace})
		if err != nil {
			fail(err)
		}
		if g == "table1" {
			renderTable1(groups[g], rep, verbose, &mismatches)
			continue
		}
		renderGroup(groups[g], rep, verbose, &mismatches)
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "%d experiments diverged from the paper's prediction\n", mismatches)
		os.Exit(1)
	}
}

func mark(consensus bool) string {
	if consensus {
		return "✓"
	}
	return "✗"
}

func renderTable1(exps []scenario.Experiment, rep *matrix.Report, verbose bool, mismatches *int) {
	type cell struct{ expected, measured string }
	cells := make(map[string]cell)
	var details []string
	for i, exp := range exps {
		o := &rep.Outcomes[i]
		if o.Err != "" {
			fail(fmt.Errorf("%s: %s", exp.ID, o.Err))
		}
		want := mark(exp.Expect.Consensus)
		got := mark(o.Consensus)
		if got != want {
			*mismatches++
		}
		key := strings.TrimPrefix(exp.ID, "table1/")
		cells[key] = cell{expected: want, measured: got}
		details = append(details, fmt.Sprintf("- `%s`: measured %s (elapsed %v, %d msgs, %d bytes)%s",
			key, got, o.VirtualNS, o.Messages, o.Bytes, failNote(o)))
		if verbose {
			details = append(details, perProcess(exp.Spec)...)
		}
	}
	fmt.Println("| Communication | Known n, Known f | Unknown n, Known f | Unknown n, Unknown f |")
	fmt.Println("|---|---|---|---|")
	for _, row := range []struct{ label, key string }{
		{"Synchronous", "sync"},
		{"Partially synchronous", "partial"},
		{"Asynchronous (adversarial)", "async"},
	} {
		fmt.Printf("| %s |", row.label)
		for _, col := range []string{"known-n-known-f", "unknown-n-known-f", "unknown-n-unknown-f"} {
			c := cells[row.key+"/"+col]
			m := c.measured
			if c.measured != c.expected {
				m = fmt.Sprintf("%s (paper: %s!)", c.measured, c.expected)
			}
			fmt.Printf(" %s |", m)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, d := range details {
		fmt.Println(d)
	}
	fmt.Println()
}

func renderGroup(exps []scenario.Experiment, rep *matrix.Report, verbose bool, mismatches *int) {
	fmt.Println("| Experiment | Paper predicts | Measured | Failure mode | Elapsed | Msgs | Bytes |")
	fmt.Println("|---|---|---|---|---|---|---|")
	var notes []string
	for i, exp := range exps {
		o := &rep.Outcomes[i]
		if o.Err != "" {
			fail(fmt.Errorf("%s: %s", exp.ID, o.Err))
		}
		want := mark(exp.Expect.Consensus)
		got := mark(o.Consensus)
		if got != want {
			*mismatches++
			got += " (MISMATCH)"
		}
		failMode := o.FailureMode
		if failMode == "" {
			failMode = "—"
		}
		fmt.Printf("| `%s` | %s | %s | %s | %v | %d | %d |\n",
			exp.ID, want, got, failMode, o.VirtualNS, o.Messages, o.Bytes)
		notes = append(notes, fmt.Sprintf("- `%s`: %s", exp.ID, exp.Expect.Note))
		if verbose {
			notes = append(notes, perProcess(exp.Spec)...)
		}
	}
	fmt.Println()
	for _, n := range notes {
		fmt.Println(n)
	}
	fmt.Println()
}

func failNote(o *matrix.Outcome) string {
	if o.FailureMode != "" {
		return " — " + o.FailureMode
	}
	return ""
}

// perProcess re-runs one spec serially to report per-process decisions — the
// matrix outcome carries aggregates only.
func perProcess(spec scenario.Spec) []string {
	res, err := scenario.Run(spec)
	if err != nil {
		fail(err)
	}
	var out []string
	ids := make([]uint64, 0, len(res.PerProcess))
	for id := range res.PerProcess {
		ids = append(ids, uint64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, raw := range ids {
		pr := res.PerProcess[model.ID(raw)]
		role := "correct"
		if pr.Byzantine {
			role = "byzantine"
		}
		dec := "undecided"
		if pr.Decided {
			dec = fmt.Sprintf("decided %q at %v", pr.Value, pr.DecidedAt)
		}
		out = append(out, fmt.Sprintf("    - p%d (%s): %s, committee %v (g=%d)", raw, role, dec, pr.Committee, pr.G))
	}
	kinds := make([]int, 0, len(res.ByKind))
	for k := range res.ByKind {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	var kindStrs []string
	for _, k := range kinds {
		kindStrs = append(kindStrs, fmt.Sprintf("%s=%d", wire.KindName(byte(k)), res.ByKind[byte(k)]))
	}
	out = append(out, "    - traffic: "+strings.Join(kindStrs, " "))
	return out
}
