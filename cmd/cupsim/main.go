// Command cupsim runs one BFT-CUP / BFT-CUPFT scenario on the deterministic
// simulator and prints the per-process outcome.
//
// Examples:
//
//	cupsim -graph fig1b -mode bft-cup -f 1 -byz 4:silent
//	cupsim -graph fig4a -mode bft-cupft -byz 4:silent
//	cupsim -graph fig2c -mode naive -net partial -gst 30s -slow 1,2,3/6,7,8
//	cupsim -graph random-ext:7:4 -mode bft-cupft -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

func main() {
	var (
		graphName = flag.String("graph", "fig1b", "topology: fig1a|fig1b|fig2a|fig2b|fig2c|fig3a|fig3b|fig4a|fig4b|complete:N|random:SINK:NONSINK:F|random-ext:CORE:NONCORE")
		modeName  = flag.String("mode", "bft-cup", "protocol: bft-cup|bft-cupft|naive|permissioned")
		f         = flag.Int("f", 1, "fault threshold handed to processes (bft-cup / permissioned)")
		byzFlag   = flag.String("byz", "", "byzantine processes, e.g. 4:silent,7:fake-pd or 4:as-correct")
		netName   = flag.String("net", "sync", "network: sync|partial|async")
		gst       = flag.Duration("gst", 2*time.Second, "GST for -net partial")
		slowFlag  = flag.String("slow", "", "pre-GST fast groups, e.g. 1,2,3/6,7,8 (everything else slow)")
		horizon   = flag.Duration("horizon", 60*time.Second, "virtual-time horizon")
		seed      = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	g, byzDefault, err := buildGraph(*graphName, *seed)
	if err != nil {
		fail(err)
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		fail(err)
	}
	byz, err := parseByz(*byzFlag, byzDefault)
	if err != nil {
		fail(err)
	}
	net, err := buildNet(*netName, *gst, *slowFlag)
	if err != nil {
		fail(err)
	}
	spec := scenario.Spec{
		Name:    *graphName,
		Graph:   g,
		Mode:    mode,
		F:       *f,
		Byz:     byz,
		Net:     net,
		Horizon: sim.Time(*horizon),
		Seed:    *seed,
	}
	res, err := scenario.Run(spec)
	if err != nil {
		fail(err)
	}
	fmt.Printf("scenario  : %s (mode=%s, %d processes)\n", *graphName, mode, g.NumNodes())
	fmt.Printf("verdict   : %s", res.Verdict())
	if fm := res.FailureMode(); fm != "" {
		fmt.Printf("  (%s)", fm)
	}
	fmt.Println()
	fmt.Printf("elapsed   : %v virtual, %d messages, %d bytes\n\n", time.Duration(res.Elapsed), res.Messages, res.Bytes)
	ids := make([]uint64, 0, len(res.PerProcess))
	for id := range res.PerProcess {
		ids = append(ids, uint64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("process  role       decision          committee")
	for _, raw := range ids {
		pr := res.PerProcess[model.ID(raw)]
		role := "correct"
		if pr.Byzantine {
			role = "byzantine"
		}
		dec := "⊥"
		if pr.Decided {
			dec = fmt.Sprintf("%q @ %v", pr.Value, time.Duration(pr.DecidedAt).Round(time.Millisecond))
		}
		fmt.Printf("p%-7d %-10s %-17s %v (g=%d)\n", raw, role, dec, pr.Committee, pr.G)
	}
	if res.Verdict() == "✗" {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cupsim:", err)
	os.Exit(2)
}

func buildGraph(name string, seed int64) (*graph.Digraph, model.IDSet, error) {
	for _, fig := range graph.AllFigures() {
		if fig.Name == name {
			return fig.G, fig.Byz, nil
		}
	}
	parts := strings.Split(name, ":")
	rng := rand.New(rand.NewSource(seed))
	switch parts[0] {
	case "complete":
		if len(parts) != 2 {
			return nil, nil, fmt.Errorf("usage: complete:N")
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 1 {
			return nil, nil, fmt.Errorf("bad N in %q", name)
		}
		ids := make([]model.ID, n)
		for i := range ids {
			ids[i] = model.ID(i + 1)
		}
		return graph.CompleteGraph(ids...), model.NewIDSet(), nil
	case "random":
		if len(parts) != 4 {
			return nil, nil, fmt.Errorf("usage: random:SINK:NONSINK:F")
		}
		sink, _ := strconv.Atoi(parts[1])
		non, _ := strconv.Atoi(parts[2])
		ff, _ := strconv.Atoi(parts[3])
		g, _, err := graph.GenKOSR(rng, graph.GenSpec{SinkSize: sink, NonSinkSize: non, K: ff + 1, ExtraEdgeP: 0.15})
		return g, model.NewIDSet(), err
	case "random-ext":
		if len(parts) != 3 {
			return nil, nil, fmt.Errorf("usage: random-ext:CORE:NONCORE")
		}
		core, _ := strconv.Atoi(parts[1])
		non, _ := strconv.Atoi(parts[2])
		g, _, _, err := graph.GenExtendedKOSR(rng, graph.GenSpec{SinkSize: core, NonSinkSize: non, ExtraEdgeP: 0.15})
		return g, model.NewIDSet(), err
	default:
		return nil, nil, fmt.Errorf("unknown graph %q", name)
	}
}

func parseMode(name string) (core.Mode, error) {
	switch name {
	case "bft-cup":
		return core.ModeKnownF, nil
	case "bft-cupft":
		return core.ModeUnknownF, nil
	case "naive":
		return core.ModeNaive, nil
	case "permissioned":
		return core.ModePermissioned, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func parseByz(s string, _ model.IDSet) (map[model.ID]scenario.ByzSpec, error) {
	out := make(map[model.ID]scenario.ByzSpec)
	if s == "" {
		return out, nil
	}
	for _, item := range strings.Split(s, ",") {
		kv := strings.SplitN(item, ":", 2)
		raw, err := strconv.ParseUint(kv[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad byzantine spec %q", item)
		}
		kind := "silent"
		if len(kv) == 2 {
			kind = kv[1]
		}
		var bs scenario.ByzSpec
		switch kind {
		case "silent":
			bs.Kind = scenario.ByzSilent
		case "fake-pd":
			bs.Kind = scenario.ByzFakePD
		case "equiv-pd":
			bs.Kind = scenario.ByzEquivPD
		case "as-correct":
			bs.Kind = scenario.ByzAsCorrect
		default:
			return nil, fmt.Errorf("unknown byzantine kind %q", kind)
		}
		out[model.ID(raw)] = bs
	}
	return out, nil
}

func buildNet(name string, gst time.Duration, slow string) (sim.NetworkModel, error) {
	const delta = 5 * sim.Millisecond
	switch name {
	case "sync":
		return sim.Synchronous{Delta: delta}, nil
	case "partial":
		slowFn := func(a, b model.ID) bool { return true }
		if slow != "" {
			var groups []model.IDSet
			for _, grp := range strings.Split(slow, "/") {
				set := model.NewIDSet()
				for _, idStr := range strings.Split(grp, ",") {
					raw, err := strconv.ParseUint(strings.TrimSpace(idStr), 10, 64)
					if err != nil {
						return nil, fmt.Errorf("bad group member %q", idStr)
					}
					set.Add(model.ID(raw))
				}
				groups = append(groups, set)
			}
			slowFn = sim.SlowBetweenGroups(groups...)
		}
		return sim.PartialSync{GST: sim.Time(gst), Delta: delta, Slow: slowFn}, nil
	case "async":
		return sim.AsyncAdversarial{Delta: 2 * sim.Second, Factor: 3}, nil
	default:
		return nil, fmt.Errorf("unknown network %q", name)
	}
}
