// Command cupsim runs BFT-CUP / BFT-CUPFT scenarios on the deterministic
// simulator: one scenario with per-process output, or a seed sweep through
// the scenario-matrix engine — monolithic, or as deterministic shards
// streamed to JSONL and merged back into the identical aggregate report.
//
// Examples:
//
//	cupsim -graph fig1b -mode bft-cup -f 1 -byz 4:silent
//	cupsim -graph fig4a -mode bft-cupft -byz 4:silent
//	cupsim -graph fig2c -mode naive -net partial -gst 30s -slow 1,2,3/6,7,8
//	cupsim -graph extended:core=7,noncore=4 -mode bft-cupft -seed 3
//	cupsim -graph kosr:sink=5,nonsink=3,k=2 -mode bft-cup -seeds 1:50 -parallel 0 -json
//	cupsim -graph fig1b -loss 0.15 -dup 0.075 -reorder 2ms -partition 10ms-400ms -churn 2@10ms+500ms
//	cupsim -graph fig1b -seeds 1:100 -shard 1/4 -jsonl part1.jsonl
//	cupsim -merge part1.jsonl part2.jsonl part3.jsonl part4.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/matrix"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

func main() {
	var (
		graphName = flag.String("graph", "fig1b", "graph def: a figure (fig1a…fig4b), complete:N, kosr:sink=S,nonsink=T,k=K[,extra=P], extended:core=S,noncore=T[,extra=P]")
		modeName  = flag.String("mode", "bft-cup", "protocol: bft-cup|bft-cupft|naive|permissioned")
		f         = flag.Int("f", -1, "fault threshold handed to processes; -1 = the graph family's natural threshold")
		byzFlag   = flag.String("byz", "", "byzantine processes, e.g. 4:silent,7:fake-pd,3:delay,5:collude (kinds: silent|fake-pd|equiv-pd|as-correct|delay|selective-silent|collude)")
		autoFlag  = flag.String("autobyz", "", "automatic byzantine placement, kind×count[@place] (place: figure|tail|sink|worst), e.g. silent×2@worst or 'silentx2@worst'")
		netName   = flag.String("net", "sync", "network: sync|partial|async")
		gst       = flag.Duration("gst", 2*time.Second, "GST for -net partial")
		slowFlag  = flag.String("slow", "", "pre-GST fast groups, e.g. 1,2,3/6,7,8 (everything else slow)")
		horizon   = flag.Duration("horizon", 60*time.Second, "virtual-time horizon")
		seed      = flag.Int64("seed", 1, "simulation seed (single run)")
		seedsStr  = flag.String("seeds", "", "seed sweep, FROM:TO or a count N (= 1:N) — run the scenario once per seed through the matrix engine")
		parallel  = flag.Int("parallel", 0, "sweep worker count: 0 = GOMAXPROCS, 1 = serial")
		jsonOut   = flag.Bool("json", false, "emit the sweep report as JSON")
		shardStr  = flag.String("shard", "", "with -seeds: run only span i/n[@t] of the sweep (deterministic partition)")
		onlyStr   = flag.String("only", "", "with -seeds: run only these global cell indices, comma-separated")
		jsonlPath = flag.String("jsonl", "", "with -seeds: stream per-cell outcomes as JSONL to this file ('-' = stdout)")
		resume    = flag.Bool("resume", false, "with -seeds -jsonl FILE: resume an interrupted stream, running only the cells the file is missing")
		doMerge   = flag.Bool("merge", false, "merge shard JSONL files (positional arguments) into the aggregate report")
		insecure  = flag.Bool("insecure", false, "swap Ed25519 for the insecure crypto suite (faster runs; sweep fingerprints NOT comparable with secure ones)")

		loss       = flag.Float64("loss", 0, "per-message delivery loss probability in [0,1)")
		dup        = flag.Float64("dup", 0, "per-message duplication probability in [0,1)")
		reorder    = flag.Duration("reorder", 0, "extra per-copy delivery jitter bound (reorders messages)")
		partitions = flag.String("partition", "", "partition windows, ';'-separated FROM-UNTIL[:A|B] (Go durations; no groups = deterministic half/half), e.g. 10ms-400ms or 50ms-1s:1,2/3,4")
		churnFlag  = flag.String("churn", "", "crash/restart churn, ';'-separated ID@CRASH[+RESTART[:wipe]] (Go durations), e.g. 2@10ms+500ms or 8@10ms")
		unhardened = flag.Bool("unhardened", false, "with fault injection: keep the send-once protocol profile instead of arming retransmission hardening")
	)
	flag.Parse()

	if *doMerge {
		runMerge(flag.Args(), *jsonOut)
		return
	}

	params, err := buildParams(*graphName, *modeName, *f, *byzFlag, *netName, *gst, *slowFlag, *horizon)
	if err != nil {
		fail(err)
	}
	if params.Auto, err = scenario.ParseAutoByz(*autoFlag); err != nil {
		fail(err)
	}
	params.Insecure = *insecure
	if params.Faults, err = buildFaults(*loss, *dup, *reorder, *partitions, *churnFlag, *unhardened); err != nil {
		fail(err)
	}

	if *seedsStr != "" {
		runSweep(params, *seedsStr, *parallel, *jsonOut, *shardStr, *onlyStr, *jsonlPath, *resume)
		return
	}
	params.Seed = *seed
	runSingle(params, *graphName)
}

// runMerge reconstructs the aggregate sweep report from shard JSONL files.
func runMerge(paths []string, jsonOut bool) {
	if len(paths) == 0 {
		fail(fmt.Errorf("-merge needs shard files as positional arguments"))
	}
	rep, err := matrix.MergeFiles(paths...)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "merged %d shard file(s): %d cells, fingerprint %s\n",
		len(paths), rep.Cells, rep.Fingerprint())
	emitSweep(rep, jsonOut)
	if rep.Errors > 0 || rep.Consensus < rep.Cells {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cupsim:", err)
	os.Exit(2)
}

func buildParams(graphName, modeName string, f int, byzFlag, netName string, gst time.Duration, slowFlag string, horizon time.Duration) (scenario.Params, error) {
	def, err := graph.ParseDef(graphName)
	if err != nil {
		return scenario.Params{}, err
	}
	mode, err := parseMode(modeName)
	if err != nil {
		return scenario.Params{}, err
	}
	byz, err := parseByz(byzFlag)
	if err != nil {
		return scenario.Params{}, err
	}
	net, err := buildNet(netName, gst, slowFlag)
	if err != nil {
		return scenario.Params{}, err
	}
	return scenario.Params{
		Name:    graphName,
		Graph:   def,
		Mode:    mode,
		F:       f,
		Byz:     byz,
		Net:     net,
		Horizon: sim.Time(horizon),
	}, nil
}

// buildFaults assembles the chaos-injection axis from its flags; validation
// happens at compile time so this only parses.
func buildFaults(loss, dup float64, reorder time.Duration, partitions, churn string, unhardened bool) (scenario.FaultParams, error) {
	fp := scenario.FaultParams{
		Loss:       loss,
		Dup:        dup,
		Reorder:    sim.Time(reorder),
		Unhardened: unhardened,
	}
	for _, s := range splitList(partitions) {
		w, err := scenario.ParsePartition(s)
		if err != nil {
			return fp, err
		}
		fp.Partitions = append(fp.Partitions, w)
	}
	for _, s := range splitList(churn) {
		c, err := scenario.ParseChurn(s)
		if err != nil {
			return fp, err
		}
		fp.Churn = append(fp.Churn, c)
	}
	return fp, nil
}

// splitList splits a ';'-separated flag value, dropping empty items so a
// trailing separator is harmless.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ";") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

func runSweep(params scenario.Params, seedsStr string, parallel int, jsonOut bool, shardStr, onlyStr, jsonlPath string, resume bool) {
	seeds, err := matrix.ParseSeedRange(seedsStr)
	if err != nil {
		fail(err)
	}
	// The sweep is the scenario crossed with the seed axis: a lazy source,
	// so -seeds 1:1000000 costs arithmetic, not memory.
	src, err := matrix.SeedSweep(params, seeds)
	if err != nil {
		fail(err)
	}
	name := fmt.Sprintf("%s seeds %s", params.Name, seedsStr)
	if params.Faults.Enabled() {
		name += " (faults " + params.Faults.Label() + ")"
	}
	if params.Insecure {
		name += " (insecure)"
	}
	job := matrix.StreamJob{
		Name: name, Src: src,
		Shard: shardStr, Only: onlyStr,
		Path: jsonlPath, Resume: resume,
		Opts: matrix.Options{Parallelism: parallel},
	}

	if jsonlPath != "" {
		tr, err := job.Run()
		if err != nil {
			fail(err)
		}
		if tr.Errors > 0 || tr.Consensus < tr.CellsRun {
			os.Exit(1)
		}
		return
	}
	if resume {
		fail(fmt.Errorf("-resume needs -jsonl FILE (a stream on stdout cannot be resumed)"))
	}

	part, spec, err := job.Slice()
	if err != nil {
		fail(err)
	}
	rep, err := matrix.Run(part, job.Opts)
	if err != nil {
		fail(err)
	}
	rep.Name = name
	if spec != "1/1" {
		rep.Name = fmt.Sprintf("%s, shard %s", name, spec)
	}
	emitSweep(rep, jsonOut)
	if rep.Errors > 0 || rep.Consensus < rep.Cells {
		os.Exit(1)
	}
}

// emitSweep renders a sweep report as JSON or per-cell text.
func emitSweep(rep *matrix.Report, jsonOut bool) {
	if jsonOut {
		raw, err := rep.JSON()
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(raw)
		fmt.Println()
	} else {
		rep.WriteText(os.Stdout, true)
	}
}

func runSingle(params scenario.Params, graphName string) {
	spec, err := params.Spec()
	if err != nil {
		fail(err)
	}
	res, err := scenario.Run(spec)
	if err != nil {
		fail(err)
	}
	fmt.Printf("scenario  : %s (mode=%s, %d processes)\n", graphName, params.Mode, spec.Graph.NumNodes())
	fmt.Printf("verdict   : %s", res.Verdict())
	if fm := res.FailureMode(); fm != "" {
		fmt.Printf("  (%s)", fm)
	}
	fmt.Println()
	fmt.Printf("elapsed   : %v virtual, %d messages, %d bytes\n\n", time.Duration(res.Elapsed), res.Messages, res.Bytes)
	ids := make([]uint64, 0, len(res.PerProcess))
	for id := range res.PerProcess {
		ids = append(ids, uint64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("process  role       decision          committee")
	for _, raw := range ids {
		pr := res.PerProcess[model.ID(raw)]
		role := "correct"
		if pr.Byzantine {
			role = "byzantine"
		}
		dec := "⊥"
		if pr.Decided {
			dec = fmt.Sprintf("%q @ %v", pr.Value, time.Duration(pr.DecidedAt).Round(time.Millisecond))
		}
		fmt.Printf("p%-7d %-10s %-17s %v (g=%d)\n", raw, role, dec, pr.Committee, pr.G)
	}
	if res.Verdict() == "✗" {
		os.Exit(1)
	}
}

func parseMode(name string) (core.Mode, error) {
	switch name {
	case "bft-cup":
		return core.ModeKnownF, nil
	case "bft-cupft":
		return core.ModeUnknownF, nil
	case "naive":
		return core.ModeNaive, nil
	case "permissioned":
		return core.ModePermissioned, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func parseByz(s string) (map[model.ID]scenario.ByzParams, error) {
	out := make(map[model.ID]scenario.ByzParams)
	if s == "" {
		return out, nil
	}
	for _, item := range strings.Split(s, ",") {
		kv := strings.SplitN(item, ":", 2)
		raw, err := strconv.ParseUint(kv[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad byzantine spec %q", item)
		}
		kind := "silent"
		if len(kv) == 2 {
			kind = kv[1]
		}
		var bp scenario.ByzParams
		bp.Kind, err = scenario.ParseByzKind(kind)
		if err != nil {
			return nil, err
		}
		out[model.ID(raw)] = bp
	}
	return out, nil
}

func buildNet(name string, gst time.Duration, slow string) (scenario.NetParams, error) {
	kind, err := scenario.ParseNetKind(name)
	if err != nil {
		return scenario.NetParams{}, err
	}
	np := scenario.NetParams{Kind: kind, GST: sim.Time(gst)}
	if slow != "" {
		for _, grp := range strings.Split(slow, "/") {
			set := model.NewIDSet()
			for _, idStr := range strings.Split(grp, ",") {
				raw, err := strconv.ParseUint(strings.TrimSpace(idStr), 10, 64)
				if err != nil {
					return scenario.NetParams{}, fmt.Errorf("bad group member %q", idStr)
				}
				set.Add(model.ID(raw))
			}
			np.FastGroups = append(np.FastGroups, set)
		}
	}
	return np, nil
}
