package bftcup

// The benchmark harness regenerates every table and figure of the paper
// (virtual time, message and byte counts on the deterministic simulator) and
// adds the extension measurements DESIGN.md calls out: authenticated vs
// unauthenticated dissemination, delta-gossip ablation, search and signature
// micro-benchmarks, and protocol scaling sweeps.
//
// Absolute wall-clock numbers measure this simulator, not the authors'
// testbed; the reproduced shape is the pattern of ✓/✗ verdicts, the relative
// message/byte costs and where they grow.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/matrix"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rrbcast"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// runScenario executes one experiment spec b.N times and reports simulator
// metrics alongside wall-clock time.
func runScenario(b *testing.B, spec scenario.Spec, wantConsensus bool) {
	b.Helper()
	var msgs, bytes int64
	var virtual sim.Time
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		got := res.Termination && res.Agreement && res.Validity
		if got != wantConsensus {
			b.Fatalf("verdict %v, want %v (%s)", got, wantConsensus, res.FailureMode())
		}
		msgs, bytes, virtual = res.Messages, res.Bytes, res.Elapsed
	}
	b.ReportMetric(float64(msgs), "msgs/run")
	b.ReportMetric(float64(bytes), "wirebytes/run")
	b.ReportMetric(float64(virtual)/float64(sim.Millisecond), "virtualms/run")
}

// BenchmarkTable1 regenerates every cell of Table I.
func BenchmarkTable1(b *testing.B) {
	for _, exp := range scenario.Table1() {
		exp := exp
		b.Run(exp.ID[len("table1/"):], func(b *testing.B) {
			runScenario(b, exp.Spec, exp.Expect.Consensus)
		})
	}
}

// BenchmarkFig1 regenerates the Fig. 1 pair (invalid vs valid graph).
func BenchmarkFig1(b *testing.B) {
	for _, exp := range scenario.Fig1() {
		exp := exp
		b.Run(exp.ID, func(b *testing.B) { runScenario(b, exp.Spec, exp.Expect.Consensus) })
	}
}

// BenchmarkFig2 regenerates the Theorem 7 impossibility construction.
func BenchmarkFig2(b *testing.B) {
	for _, exp := range scenario.Fig2() {
		exp := exp
		b.Run(exp.ID, func(b *testing.B) { runScenario(b, exp.Spec, exp.Expect.Consensus) })
	}
}

// BenchmarkFig3 regenerates the false-sink violation.
func BenchmarkFig3(b *testing.B) {
	for _, exp := range scenario.Fig3() {
		exp := exp
		b.Run(exp.ID, func(b *testing.B) { runScenario(b, exp.Spec, exp.Expect.Consensus) })
	}
}

// BenchmarkFig4 regenerates the BFT-CUPFT possibility results.
func BenchmarkFig4(b *testing.B) {
	for _, exp := range scenario.Fig4() {
		exp := exp
		b.Run(exp.ID, func(b *testing.B) { runScenario(b, exp.Spec, exp.Expect.Consensus) })
	}
}

// BenchmarkMatrix measures scenario-matrix throughput: the 24-cell standard
// sweep (one seed) executed serially vs on the GOMAXPROCS worker pool.
// cells/s is the headline metric; the parallel/serial ratio is the engine's
// wall-clock speedup on this machine.
func BenchmarkMatrix(b *testing.B) {
	cells, err := matrix.StandardSweep(matrix.Seeds(1, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		bench := bench
		b.Run(bench.name, func(b *testing.B) {
			var cellsPerSec float64
			for i := 0; i < b.N; i++ {
				rep, err := matrix.Run(cells, matrix.Options{Parallelism: bench.parallelism})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Errors > 0 {
					b.Fatalf("%d cells errored", rep.Errors)
				}
				cellsPerSec = float64(rep.Cells) / (float64(rep.WallNS) / 1e9)
			}
			b.ReportMetric(cellsPerSec, "cells/s")
		})
	}
}

// BenchmarkSweepCells measures seed-sweep throughput (cells/sec) on a
// 1-graph × 1000-seed sweep — the compile-once, run-many regime: every cell
// shares one graph def, mode, network model and Byzantine placement, varying
// only the simulation seed. This is the workload the scenario compilation
// cache and the cryptox fast path exist for, and the number CI gates via
// `experiments -bench-json -bench-gate`.
func BenchmarkSweepCells(b *testing.B) {
	d, err := graph.ParseDef("fig1b")
	if err != nil {
		b.Fatal(err)
	}
	base := scenario.Params{
		Graph: d,
		Mode:  core.ModeKnownF,
		F:     -1,
		Net:   scenario.NetParams{Kind: scenario.NetSync},
	}
	src, err := matrix.SeedSweep(base, matrix.Seeds(1, 1000))
	if err != nil {
		b.Fatal(err)
	}
	var cellsPerSec float64
	for i := 0; i < b.N; i++ {
		rep, err := matrix.Run(src, matrix.Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d cells errored", rep.Errors)
		}
		cellsPerSec = float64(rep.Cells) / (float64(rep.WallNS) / 1e9)
	}
	b.ReportMetric(cellsPerSec, "cells/s")
}

// searchReplay measures kosr.SearchReplay's discovery schedule (one search
// per record insertion; `experiments -bench-json` measures the same
// workload through the same type). From-scratch variants ignore the
// searcher argument.
func searchReplay(b *testing.B, g *graph.Digraph, search func(se *kosr.Searcher, v *kosr.View) bool) {
	b.Helper()
	r := kosr.NewSearchReplay(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Run(search) {
			b.Fatal("full view found nothing")
		}
	}
}

// BenchmarkSinkSearch measures the Algorithm 2 decision procedure: the
// single-shot from-scratch search on full knowledge views, and the
// discovery replay (a search per record insertion) through the from-scratch
// View methods vs the incremental Searcher the protocol stack uses. The
// replay pair is the engine's headline number: same schedule, same results,
// less work per invocation.
func BenchmarkSinkSearch(b *testing.B) {
	fig := graph.Fig1b()
	v := kosr.FullView(fig.G)
	b.Run("fig1b", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := v.FindSinkKnownF(fig.F); !ok {
				b.Fatal("sink not found")
			}
		}
	})
	for _, size := range []int{7, 11, 15} {
		size := size
		g, _, err := graph.GenKOSR(rand.New(rand.NewSource(9)), graph.GenSpec{SinkSize: size, NonSinkSize: size / 2, K: 3, ExtraEdgeP: 0.2})
		if err != nil {
			b.Fatal(err)
		}
		vv := kosr.FullView(g)
		b.Run(fmt.Sprintf("random-sink-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := vv.FindSinkKnownF(2); !ok {
					b.Fatal("sink not found")
				}
			}
		})
		b.Run(fmt.Sprintf("replay-scratch-%d", size), func(b *testing.B) {
			searchReplay(b, g, func(_ *kosr.Searcher, v *kosr.View) bool {
				_, ok := v.FindSinkKnownF(2)
				return ok
			})
		})
		b.Run(fmt.Sprintf("replay-incremental-%d", size), func(b *testing.B) {
			searchReplay(b, g, func(se *kosr.Searcher, v *kosr.View) bool {
				_, ok := se.FindSinkKnownF(v, 2)
				return ok
			})
		})
	}
}

// BenchmarkCoreSearch measures the Algorithm 4 decision procedure (the
// maximum-connectivity sweep no process could avoid without knowing f).
func BenchmarkCoreSearch(b *testing.B) {
	for _, fig := range []graph.Figure{graph.Fig4a(), graph.Fig4b()} {
		fig := fig
		v := kosr.FullView(fig.G)
		b.Run(fig.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := v.FindCore(); !ok {
					b.Fatal("core not found")
				}
			}
		})
	}
	for _, size := range []int{5, 8, 11} {
		size := size
		g, _, _, err := graph.GenExtendedKOSR(rand.New(rand.NewSource(9)), graph.GenSpec{SinkSize: size, NonSinkSize: size / 2, ExtraEdgeP: 0.2})
		if err != nil {
			b.Fatal(err)
		}
		v := kosr.FullView(g)
		b.Run(fmt.Sprintf("random-core-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := v.FindCore(); !ok {
					b.Fatal("core not found")
				}
			}
		})
		b.Run(fmt.Sprintf("replay-incremental-%d", size), func(b *testing.B) {
			searchReplay(b, g, func(se *kosr.Searcher, v *kosr.View) bool {
				_, ok := se.FindCore(v)
				return ok
			})
		})
	}
}

// BenchmarkStrongConnectivity measures the κ computation (Menger max-flow).
func BenchmarkStrongConnectivity(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		n := n
		ids := make([]model.ID, n)
		for i := range ids {
			ids[i] = model.ID(i + 1)
		}
		g := graph.CompleteGraph(ids...)
		b.Run(fmt.Sprintf("complete-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if g.StrongConnectivity() != n-1 {
					b.Fatal("κ wrong")
				}
			}
		})
	}
}

// BenchmarkPBFTCommittee measures the committee phase alone (permissioned
// complete graphs, classic 3f+1 sizing).
func BenchmarkPBFTCommittee(b *testing.B) {
	for _, n := range []int{4, 7, 10, 13} {
		n := n
		f := (n - 1) / 3
		ids := make([]model.ID, n)
		for i := range ids {
			ids[i] = model.ID(i + 1)
		}
		spec := scenario.Spec{
			Name:    fmt.Sprintf("pbft-%d", n),
			Graph:   graph.CompleteGraph(ids...),
			Mode:    core.ModePermissioned,
			F:       f,
			Net:     sim.Synchronous{Delta: 5 * sim.Millisecond},
			Horizon: 30 * sim.Second,
			Seed:    int64(n),
		}
		b.Run(fmt.Sprintf("n=%d_f=%d", n, f), func(b *testing.B) {
			runScenario(b, spec, true)
		})
	}
}

// BenchmarkScalingCUPFT sweeps BFT-CUPFT end to end over growing networks.
func BenchmarkScalingCUPFT(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		n := n
		coreSize := n / 2
		g, _, _, err := graph.GenExtendedKOSR(rand.New(rand.NewSource(int64(n))), graph.GenSpec{
			SinkSize: coreSize, NonSinkSize: n - coreSize, ExtraEdgeP: 0.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		spec := scenario.Spec{
			Name:    fmt.Sprintf("cupft-%d", n),
			Graph:   g,
			Mode:    core.ModeUnknownF,
			Net:     sim.Synchronous{Delta: 5 * sim.Millisecond},
			Horizon: 120 * sim.Second,
			Seed:    int64(n),
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runScenario(b, spec, true)
		})
	}
}

// --- authenticated vs unauthenticated dissemination (Section III's claim) --

// authDisc runs signed-gossip discovery (Algorithm 1) until every correct
// sink member holds every other correct sink member's PD.
type authDiscNode struct{ mod *discovery.Module }

func (n *authDiscNode) Init(ctx sim.Context) { n.mod.Start(ctx) }
func (n *authDiscNode) Receive(ctx sim.Context, from model.ID, payload []byte) {
	n.mod.Handle(ctx, from, payload)
}
func (n *authDiscNode) Timer(ctx sim.Context, tag uint64) { n.mod.HandleTimer(ctx, tag) }

type rrbDiscNode struct {
	mod     *rrbcast.Module
	payload []byte
}

func (n *rrbDiscNode) Init(ctx sim.Context) { n.mod.Broadcast(ctx, 0, n.payload) }
func (n *rrbDiscNode) Receive(ctx sim.Context, from model.ID, payload []byte) {
	n.mod.Handle(ctx, from, payload)
}
func (n *rrbDiscNode) Timer(sim.Context, uint64) {}

// BenchmarkAuthVsUnauthDissemination quantifies the paper's simplification:
// disseminating every correct sink member's PD to every other on Fig 1b,
// with signatures (trust any relay) vs without (wait for > f node-disjoint
// paths). Compare msgs/run and wirebytes/run across the two sub-benchmarks.
func BenchmarkAuthVsUnauthDissemination(b *testing.B) {
	fig := graph.Fig1b()
	sinkIDs := fig.ExpectedSink.Sorted()

	b.Run("authenticated", func(b *testing.B) {
		var msgs, bytes int64
		for i := 0; i < b.N; i++ {
			signers, reg, err := cryptox.GenerateKeys(1, fig.G.Nodes())
			if err != nil {
				b.Fatal(err)
			}
			engine := sim.NewEngine(sim.Synchronous{Delta: 5 * sim.Millisecond}, 1)
			nodes := make(map[model.ID]*authDiscNode)
			for _, id := range fig.G.Nodes() {
				nd := &authDiscNode{mod: discovery.New(
					discovery.NewSignedPD(signers[id], fig.G.OutSet(id).Clone()), reg, discovery.DefaultConfig(), nil)}
				nodes[id] = nd
				if err := engine.AddProcess(id, nd); err != nil {
					b.Fatal(err)
				}
				if fig.Byz.Has(id) {
					engine.Crash(id)
				}
			}
			done := func() bool {
				for _, a := range sinkIDs {
					v := nodes[a].mod.View()
					for _, c := range sinkIDs {
						if _, ok := v.PD[c]; !ok {
							return false
						}
					}
				}
				return true
			}
			if !engine.RunUntil(done, 30*sim.Second) {
				b.Fatal("authenticated dissemination did not converge")
			}
			msgs, bytes = engine.Metrics().Messages, engine.Metrics().Bytes
		}
		b.ReportMetric(float64(msgs), "msgs/run")
		b.ReportMetric(float64(bytes), "wirebytes/run")
	})

	b.Run("unauthenticated-rrbcast", func(b *testing.B) {
		var msgs, bytes int64
		for i := 0; i < b.N; i++ {
			engine := sim.NewEngine(sim.Synchronous{Delta: 5 * sim.Millisecond}, 1)
			delivered := make(map[model.ID]model.IDSet)
			for _, id := range fig.G.Nodes() {
				id := id
				delivered[id] = model.NewIDSet()
				mod := rrbcast.New(id, fig.G.OutSet(id).Clone(), fig.F, func(origin model.ID, _ []byte) {
					delivered[id].Add(origin)
				})
				nd := &rrbDiscNode{mod: mod, payload: discovery.Canonical(id, fig.G.OutSet(id).Clone())}
				if err := engine.AddProcess(id, nd); err != nil {
					b.Fatal(err)
				}
				if fig.Byz.Has(id) {
					engine.Crash(id)
				}
			}
			done := func() bool {
				for _, a := range sinkIDs {
					for _, c := range sinkIDs {
						if a != c && !delivered[a].Has(c) {
							return false
						}
					}
				}
				return true
			}
			if !engine.RunUntil(done, 30*sim.Second) {
				b.Fatal("rrbcast dissemination did not converge")
			}
			msgs, bytes = engine.Metrics().Messages, engine.Metrics().Bytes
		}
		b.ReportMetric(float64(msgs), "msgs/run")
		b.ReportMetric(float64(bytes), "wirebytes/run")
	})
}

// BenchmarkDeltaGossip is the ablation of DESIGN.md E-X3: paper-faithful
// full-set SETPDS vs delta gossip over one second of steady-state virtual
// time on Fig 1b (the periodic task keeps running after convergence, which
// is where the full-set re-transmission cost accumulates).
func BenchmarkDeltaGossip(b *testing.B) {
	fig := graph.Fig1b()
	for _, delta := range []bool{false, true} {
		delta := delta
		name := "full-set"
		if delta {
			name = "delta"
		}
		b.Run(name, func(b *testing.B) {
			var msgs, bytes int64
			for i := 0; i < b.N; i++ {
				signers, reg, err := cryptox.GenerateKeys(1, fig.G.Nodes())
				if err != nil {
					b.Fatal(err)
				}
				engine := sim.NewEngine(sim.Synchronous{Delta: 5 * sim.Millisecond}, 1)
				cfg := discovery.DefaultConfig()
				cfg.Delta = delta
				nodes := make(map[model.ID]*authDiscNode)
				for _, id := range fig.G.Nodes() {
					nd := &authDiscNode{mod: discovery.New(
						discovery.NewSignedPD(signers[id], fig.G.OutSet(id).Clone()), reg, cfg, nil)}
					nodes[id] = nd
					if err := engine.AddProcess(id, nd); err != nil {
						b.Fatal(err)
					}
					if fig.Byz.Has(id) {
						engine.Crash(id)
					}
				}
				engine.Run(sim.Second)
				for _, a := range fig.ExpectedSink.Sorted() {
					v := nodes[a].mod.View()
					for _, c := range fig.ExpectedSink.Sorted() {
						if _, ok := v.PD[c]; !ok {
							b.Fatal("gossip did not converge")
						}
					}
				}
				msgs, bytes = engine.Metrics().Messages, engine.Metrics().Bytes
			}
			b.ReportMetric(float64(msgs), "msgs/run")
			b.ReportMetric(float64(bytes), "wirebytes/run")
		})
	}
}

// BenchmarkSigners compares Ed25519 against the insecure benchmark suite.
// The repeated-message sub-benchmarks measure the memoized fast path (what
// the simulator's broadcast fan-out sees); the fresh-message variants defeat
// the memo and measure the underlying curve operations.
func BenchmarkSigners(b *testing.B) {
	msg := []byte("knowledge connectivity requirements for solving BFT consensus")
	ed, reg, err := cryptox.GenerateKeys(1, []model.ID{1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ed25519-sign-memohit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ed[1].Sign(msg)
		}
	})
	b.Run("ed25519-sign-fresh", func(b *testing.B) {
		buf := append([]byte(nil), msg...)
		for i := 0; i < b.N; i++ {
			buf = fmt.Appendf(buf[:len(msg)], "%d", i)
			_ = ed[1].Sign(buf)
		}
	})
	sig := ed[1].Sign(msg)
	b.Run("ed25519-verify-memohit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !reg.Verify(1, msg, sig) {
				b.Fatal("verify failed")
			}
		}
	})
	b.Run("ed25519-verify-fresh", func(b *testing.B) {
		buf := append([]byte(nil), msg...)
		for i := 0; i < b.N; i++ {
			buf = fmt.Appendf(buf[:len(msg)], "%d", i)
			// A fresh message never hits the memo; the failed verification
			// costs the same curve operations as a successful one.
			if reg.Verify(1, buf, sig) {
				b.Fatal("forged verify succeeded")
			}
		}
	})
	fast, fv := cryptox.InsecureSuite([]model.ID{1})
	b.Run("insecure-sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fast[1].Sign(msg)
		}
	})
	fsig := fast[1].Sign(msg)
	b.Run("insecure-verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !fv.Verify(1, msg, fsig) {
				b.Fatal("verify failed")
			}
		}
	})
}
