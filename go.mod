module github.com/bftcup/bftcup

go 1.21
