package bftcup

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestCheckers(t *testing.T) {
	if r := CheckBFTCUP(Figure1b(), []ID{4}, 1); !r.OK {
		t.Fatalf("Fig1b should satisfy BFT-CUP: %s", r.Reason)
	}
	if r := CheckBFTCUP(Figure1a(), []ID{4}, 1); r.OK {
		t.Fatal("Fig1a should fail BFT-CUP")
	}
	r := CheckBFTCUPFT(Figure4a(), []ID{4}, 1)
	if !r.OK {
		t.Fatalf("Fig4a should satisfy BFT-CUPFT: %s", r.Reason)
	}
	if len(r.Committee) != 3 { // safe core {1,2,3}
		t.Fatalf("Fig4a safe core = %v", r.Committee)
	}
	if r := CheckBFTCUPFT(Figure2c(), nil, 0); r.OK {
		t.Fatal("Fig2c should fail BFT-CUPFT")
	}
}

func TestTopologyHelpers(t *testing.T) {
	topo := Topology{1: {2}, 2: {3}}
	if got := topo.Processes(); len(got) != 3 {
		t.Fatalf("Processes = %v", got)
	}
	c := topo.Clone()
	c[1][0] = 9
	if topo[1][0] != 2 {
		t.Fatal("Clone shares slices")
	}
}

func TestRandomGenerators(t *testing.T) {
	topo, sink, err := RandomKOSR(1, 5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := CheckBFTCUP(topo, nil, 1); !r.OK {
		t.Fatalf("RandomKOSR output invalid: %s", r.Reason)
	}
	if len(sink) != 5 {
		t.Fatalf("sink = %v", sink)
	}
	topo2, core2, err := RandomExtendedKOSR(2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r := CheckBFTCUPFT(topo2, nil, 1); !r.OK {
		t.Fatalf("RandomExtendedKOSR output invalid: %s", r.Reason)
	}
	if len(core2) != 5 {
		t.Fatalf("core = %v", core2)
	}
}

func TestLiveSystemQuickstart(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Topology: Figure1b(),
		Protocol: ProtocolBFTCUP,
		F:        1,
		Exclude:  []ID{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	sys.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	ref, ok := sys.DecisionOf(1, 0)
	if !ok {
		t.Fatal("process 1 did not decide")
	}
	for _, id := range sys.Started() {
		v, ok := sys.DecisionOf(id, 0)
		if !ok || !v.Equal(ref) {
			t.Fatalf("%v decided %q, want %q", id, v, ref)
		}
		c, ok := sys.CommitteeOf(id)
		if !ok || len(c) != 4 {
			t.Fatalf("%v committee = %v", id, c)
		}
	}
	if sys.Messages() == 0 || sys.Bytes() == 0 {
		t.Fatal("metrics empty")
	}
}

func TestLiveSystemChained(t *testing.T) {
	const blocks = 3
	sys, err := NewSystem(SystemConfig{
		Topology: Figure4a(),
		Protocol: ProtocolBFTCUPFT,
		Exclude:  []ID{4},
		Blocks:   blocks,
		ProposalFor: func(id ID, block int) Value {
			return Value(fmt.Sprintf("block%d-by-%d", block, id))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	sys.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	all := sys.Decisions()
	for b := 0; b < blocks; b++ {
		ref := all[1][b]
		for _, id := range sys.Started() {
			if !all[id][b].Equal(ref) {
				t.Fatalf("block %d differs at %v: %q vs %q", b, id, all[id][b], ref)
			}
		}
	}
}

func TestSimulatePossibility(t *testing.T) {
	rep, err := Simulate(SimOptions{
		Topology:  Figure4a(),
		Protocol:  ProtocolBFTCUPFT,
		Byzantine: map[ID]Byzantine{4: {Behavior: BehaviorSilent}},
		Network:   Network{Kind: NetworkPartiallySynchronous, GST: time.Second},
		Horizon:   60 * time.Second,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ConsensusSolved {
		t.Fatalf("expected consensus: %s", rep.FailureMode)
	}
	if len(rep.Committees[1]) != 4 {
		t.Fatalf("committee = %v", rep.Committees[1])
	}
}

func TestSimulateImpossibility(t *testing.T) {
	rep, err := Simulate(SimOptions{
		Topology: Figure2c(),
		Protocol: ProtocolBFTCUPFT,
		Network: Network{
			Kind:       NetworkPartiallySynchronous,
			GST:        30 * time.Second,
			SlowGroups: [][]ID{{1, 2, 3}, {6, 7, 8}},
		},
		Proposals: map[ID]Value{
			1: Value("v"), 2: Value("v"), 3: Value("v"), 4: Value("v"),
			5: Value("u"), 6: Value("u"), 7: Value("u"), 8: Value("u"),
		},
		Horizon: 90 * time.Second,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Agreement {
		t.Fatal("expected the Theorem 7 agreement violation")
	}
	if rep.FailureMode != "agreement violated" {
		t.Fatalf("failure mode = %q", rep.FailureMode)
	}
	if !rep.Decisions[1].Equal(Value("v")) || !rep.Decisions[8].Equal(Value("u")) {
		t.Fatalf("split decisions wrong: %v", rep.Decisions)
	}
}

func TestSimulateAsyncNonTermination(t *testing.T) {
	rep, err := Simulate(SimOptions{
		Topology: Topology{1: {2, 3, 4}, 2: {1, 3, 4}, 3: {1, 2, 4}, 4: {1, 2, 3}},
		Protocol: ProtocolPermissioned,
		F:        1,
		Network:  Network{Kind: NetworkAsynchronousAdversarial},
		Horizon:  30 * time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Termination {
		t.Fatal("adversarial asynchrony should prevent termination")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := NewSystem(SystemConfig{Topology: Figure1b(), Protocol: Protocol(99)}); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if _, err := NewSystem(SystemConfig{Topology: Topology{1: {2}}, Exclude: []ID{1, 2}}); err == nil {
		t.Fatal("fully excluded system accepted")
	}
	if _, err := Simulate(SimOptions{}); err == nil {
		t.Fatal("empty simulate accepted")
	}
	if _, err := Simulate(SimOptions{Topology: Figure1b(), Protocol: Protocol(99)}); err == nil {
		t.Fatal("bad simulate protocol accepted")
	}
}

func TestProtocolString(t *testing.T) {
	for p, want := range map[Protocol]string{
		ProtocolBFTCUP:       "bft-cup",
		ProtocolBFTCUPFT:     "bft-cupft",
		ProtocolPermissioned: "permissioned",
		Protocol(9):          "protocol(9)",
	} {
		if p.String() != want {
			t.Fatalf("%d → %q, want %q", int(p), p.String(), want)
		}
	}
}
