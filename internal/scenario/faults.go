package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// FaultParams is the serializable chaos axis of a scenario: link-level
// faults (loss, duplication, bounded reorder), a partition schedule and a
// crash/restart churn schedule. Like every other axis it is plain data —
// rendered into CompileKey and cell labels, crossed by matrix sweeps, parsed
// from CLI flags — and resolved against the concrete graph at compile time.
//
// A zero FaultParams means "no injection": the compiled scenario is
// byte-identical to one compiled before this type existed (the fault section
// is appended to CompileKey and labels only when set). When any fault is
// active, protocol hardening (retransmission backoff, delta resync, PBFT
// sustained-loss behaviors) arms automatically; Unhardened opts out, which
// is how the A/B regression pins the seed protocol's failure under loss.
type FaultParams struct {
	// Loss is the per-message drop probability in [0, 1).
	Loss float64
	// Dup is the per-message duplication probability in [0, 1).
	Dup float64
	// Reorder bounds the extra per-message delay (uniform in [0, Reorder])
	// that lets later sends overtake earlier ones.
	Reorder sim.Time
	// Partitions are timed network splits.
	Partitions []PartitionWindow
	// Churn are scheduled crash/restart points.
	Churn []ChurnEvent
	// Unhardened keeps the seed (send-once) protocol profile despite active
	// faults — the ablation arm of the hardening comparison.
	Unhardened bool
}

// PartitionWindow is one timed split. An empty Groups list means "split the
// sorted process list into two halves", resolved at compile time against the
// concrete graph.
type PartitionWindow struct {
	From, Until sim.Time
	Groups      [][]model.ID
}

// ChurnEvent crashes one process at CrashAt and, when RestartAt is non-zero,
// restarts it at RestartAt — with its protocol state persisted, or wiped to
// a fresh node when Wipe is set. RestartAt zero means the process stays down
// for the rest of the run (it is then graded as crash-faulty, not as a
// termination failure).
type ChurnEvent struct {
	ID        model.ID
	CrashAt   sim.Time
	RestartAt sim.Time
	Wipe      bool
}

// Enabled reports whether any fault axis is active.
func (f FaultParams) Enabled() bool {
	return f.Loss > 0 || f.Dup > 0 || f.Reorder > 0 || len(f.Partitions) > 0 || len(f.Churn) > 0
}

// Hardened reports whether the hardened protocol profile should arm: faults
// are active and the ablation flag is off.
func (f FaultParams) Hardened() bool { return f.Enabled() && !f.Unhardened }

// Validate rejects out-of-range fault parameters loudly.
func (f FaultParams) Validate() error {
	if f.Loss < 0 || f.Loss >= 1 {
		return fmt.Errorf("scenario: loss probability %v outside [0,1)", f.Loss)
	}
	if f.Dup < 0 || f.Dup >= 1 {
		return fmt.Errorf("scenario: duplication probability %v outside [0,1)", f.Dup)
	}
	if f.Reorder < 0 {
		return fmt.Errorf("scenario: negative reorder bound %v", f.Reorder)
	}
	for _, w := range f.Partitions {
		if w.From < 0 || w.Until <= w.From {
			return fmt.Errorf("scenario: partition window [%v,%v) is empty or negative", w.From, w.Until)
		}
		seen := model.NewIDSet()
		for _, g := range w.Groups {
			if len(g) == 0 {
				return fmt.Errorf("scenario: partition window [%v,%v) has an empty group", w.From, w.Until)
			}
			for _, id := range g {
				if !seen.Add(id) {
					return fmt.Errorf("scenario: process %v appears in two partition groups", id)
				}
			}
		}
	}
	churned := model.NewIDSet()
	for _, c := range f.Churn {
		if c.CrashAt < 0 {
			return fmt.Errorf("scenario: churn of %v has negative crash time %v", c.ID, c.CrashAt)
		}
		if c.RestartAt != 0 && c.RestartAt <= c.CrashAt {
			return fmt.Errorf("scenario: churn of %v restarts at %v, not after its crash at %v", c.ID, c.RestartAt, c.CrashAt)
		}
		if !churned.Add(c.ID) {
			return fmt.Errorf("scenario: duplicate churn entry for process %v", c.ID)
		}
	}
	if f.Unhardened && !f.Enabled() {
		return fmt.Errorf("scenario: unhardened flag without any active fault")
	}
	return nil
}

// Label renders the canonical compact form ("" when no fault is active):
// the serialization used in CompileKey, cell labels and the -faults CLI flag.
func (f FaultParams) Label() string {
	if !f.Enabled() {
		return ""
	}
	var parts []string
	if f.Loss > 0 {
		parts = append(parts, "loss="+strconv.FormatFloat(f.Loss, 'g', -1, 64))
	}
	if f.Dup > 0 {
		parts = append(parts, "dup="+strconv.FormatFloat(f.Dup, 'g', -1, 64))
	}
	if f.Reorder > 0 {
		parts = append(parts, "reorder="+f.Reorder.String())
	}
	for _, w := range f.Partitions {
		groups := "half"
		if len(w.Groups) > 0 {
			var gs []string
			for _, g := range w.Groups {
				ids := make([]string, len(g))
				for i, id := range g {
					ids[i] = strconv.FormatUint(uint64(id), 10)
				}
				gs = append(gs, strings.Join(ids, ","))
			}
			groups = strings.Join(gs, "|")
		}
		parts = append(parts, fmt.Sprintf("part=%v-%v:%s", w.From, w.Until, groups))
	}
	for _, c := range f.Churn {
		s := fmt.Sprintf("churn=%d@%v", uint64(c.ID), c.CrashAt)
		if c.RestartAt > 0 {
			s += fmt.Sprintf("+%v", c.RestartAt)
			if c.Wipe {
				s += ":wipe"
			}
		}
		parts = append(parts, s)
	}
	if f.Unhardened {
		parts = append(parts, "unhardened")
	}
	return strings.Join(parts, ",")
}

// parseSimTime parses a Go duration string ("500ms", "1.5s") into virtual
// time.
func parseSimTime(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: bad duration %q: %w", s, err)
	}
	return sim.Time(d.Nanoseconds()), nil
}

// ParsePartition parses a -partition flag value: "FROM-UNTIL" (auto split
// into halves) or "FROM-UNTIL:1,2|3,4" with explicit groups. Durations use
// Go syntax ("500ms-1.5s").
func ParsePartition(s string) (PartitionWindow, error) {
	var w PartitionWindow
	span, groups, hasGroups := strings.Cut(s, ":")
	from, until, ok := strings.Cut(span, "-")
	if !ok {
		return w, fmt.Errorf("scenario: bad partition %q (want FROM-UNTIL[:g|g])", s)
	}
	var err error
	if w.From, err = parseSimTime(from); err != nil {
		return w, err
	}
	if w.Until, err = parseSimTime(until); err != nil {
		return w, err
	}
	if hasGroups && groups != "half" {
		for _, g := range strings.Split(groups, "|") {
			var ids []model.ID
			for _, part := range strings.Split(g, ",") {
				n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
				if err != nil {
					return w, fmt.Errorf("scenario: bad partition group %q in %q", g, s)
				}
				ids = append(ids, model.ID(n))
			}
			w.Groups = append(w.Groups, ids)
		}
	}
	return w, nil
}

// ParseChurn parses a -churn flag value: "ID@CRASH" (down forever),
// "ID@CRASH+RESTART" (persisted restart) or "ID@CRASH+RESTART:wipe".
func ParseChurn(s string) (ChurnEvent, error) {
	var c ChurnEvent
	idPart, times, ok := strings.Cut(s, "@")
	if !ok {
		return c, fmt.Errorf("scenario: bad churn %q (want ID@CRASH[+RESTART[:wipe]])", s)
	}
	n, err := strconv.ParseUint(strings.TrimSpace(idPart), 10, 64)
	if err != nil {
		return c, fmt.Errorf("scenario: bad churn process id in %q", s)
	}
	c.ID = model.ID(n)
	crash, rest, hasRestart := strings.Cut(times, "+")
	if c.CrashAt, err = parseSimTime(crash); err != nil {
		return c, err
	}
	if hasRestart {
		restart, flag, hasFlag := strings.Cut(rest, ":")
		if c.RestartAt, err = parseSimTime(restart); err != nil {
			return c, err
		}
		if hasFlag {
			if flag != "wipe" {
				return c, fmt.Errorf("scenario: bad churn flag %q in %q (want wipe)", flag, s)
			}
			c.Wipe = true
		}
	}
	return c, nil
}

// resolvePartitions turns the serialized windows into the engine's concrete
// schedule: explicit groups become IDSets; an empty Groups list splits the
// sorted process list into two halves.
func resolvePartitions(windows []PartitionWindow, ids []model.ID) sim.PartitionSchedule {
	if len(windows) == 0 {
		return nil
	}
	sched := make(sim.PartitionSchedule, 0, len(windows))
	sorted := append([]model.ID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, w := range windows {
		sw := sim.PartitionWindow{From: w.From, Until: w.Until}
		if len(w.Groups) == 0 {
			half := len(sorted) / 2
			sw.Groups = []model.IDSet{model.NewIDSet(sorted[:half]...), model.NewIDSet(sorted[half:]...)}
		} else {
			for _, g := range w.Groups {
				sw.Groups = append(sw.Groups, model.NewIDSet(g...))
			}
		}
		sched = append(sched, sw)
	}
	return sched
}
