package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/bftcup/bftcup/internal/byz"
	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/netrt"
	"github.com/bftcup/bftcup/internal/rt"
	"github.com/bftcup/bftcup/internal/sim"
)

// RunLive executes a Compiled scenario over the real-runtime stack instead of
// the simulator: the same reactors (correct nodes and the Byzantine zoo),
// built from the same compiled graph, keys and placement, run as goroutines
// over netrt streams — localhost TCP or net.Pipe — and are graded by the same
// agreement/validity/integrity/termination rules as Runner.Run. The simulator
// and this path are twins: on the same compiled cell they must reach the same
// verdicts, and the twin tests pin exactly that.
//
// Live runs are wall-clock bound, so virtual durations are mapped to real
// time divided by LiveOptions.Scale: protocol periods, timeouts, the horizon
// and every network-model delay shrink together, preserving their ratios —
// which is what the verdicts depend on. Results come back in virtual units
// (DecidedAt and Elapsed are scaled back up) so they read on the same axis as
// simulator results.
//
// Chaos fault injection (link faults, churn) is a simulator-only feature;
// compiled cells with an active fault axis are rejected.

// LiveOptions tunes RunLive.
type LiveOptions struct {
	// Transport selects the link type: "pipe" (net.Pipe, the unit-test
	// harness, default) or "tcp" (localhost sockets, the cupd-shaped path).
	Transport string
	// Scale divides every virtual duration to get real time; 0 means 10
	// (a compiled 60s horizon runs for at most 6 wall seconds).
	Scale int64
}

// liveTimerFloor keeps scaled-down periods from degenerating into busy
// loops on slow machines.
const liveTimerFloor = 200 * rt.Microsecond

// scaleDur maps one virtual protocol duration to real time: explicit values
// win, zero falls back to the module default the simulator would have used —
// scaling must not diverge from what Runner.Run runs.
func scaleDur(v, def sim.Time, scale int64) rt.Time {
	if v <= 0 {
		v = def
	}
	d := rt.Time(int64(v) / scale)
	if d < liveTimerFloor {
		d = liveTimerFloor
	}
	return d
}

// LiveDurations returns the protocol stack's durations mapped for a live run
// at the given scale (0 means 10): the discovery config, the PBFT base
// timeout and the decided-poll period. RunLive uses exactly these; cmd/cupd
// calls it so a standalone daemon boots the same stack a cluster run would.
func (c *Compiled) LiveDurations(scale int64) (disc discovery.Config, pbftTimeout, pollPeriod rt.Time) {
	if scale <= 0 {
		scale = 10
	}
	disc = c.Discovery
	disc.Period = scaleDur(disc.Period, 20*sim.Millisecond, scale)
	pbftTimeout = scaleDur(c.PBFTTimeout, 200*sim.Millisecond, scale)
	pollPeriod = scaleDur(c.PollPeriod, 50*sim.Millisecond, scale)
	return disc, pbftTimeout, pollPeriod
}

// liveNet adapts the compiled sim.NetworkModel into the netrt per-message
// delay hook: virtual "now" is real elapsed time multiplied back up, the
// model's virtual delay is divided back down. The RNG is shared across nodes
// (models draw jitter from it), so it is locked — live delay draws are
// wall-clock ordered and deliberately not deterministic.
type liveNet struct {
	mu    sync.Mutex
	rng   *rand.Rand
	net   sim.NetworkModel
	scale int64
}

func (l *liveNet) delay(from, to model.ID, now rt.Time) rt.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.net.Delay(from, to, now*rt.Time(l.scale), l.rng)
	if d < 0 {
		d = 0
	}
	return d / rt.Time(l.scale)
}

// RunLive executes the compiled scenario under one seed on the live runtime.
// The seed drives key material and reactor RNGs exactly as in Runner.Run;
// scheduling, however, is the operating system's, so traces are not
// reproducible — only verdicts are the contract.
func (c *Compiled) RunLive(seed int64, opts LiveOptions) (*Result, error) {
	name := c.Name
	if c.deriveName {
		name = c.Labels.IDFor(seed)
	}
	if c.Faults.Enabled() {
		return nil, fmt.Errorf("scenario %q: live runtime does not support fault injection", name)
	}
	scale := opts.Scale
	if scale <= 0 {
		scale = 10
	}
	transport := opts.Transport
	if transport == "" {
		transport = "pipe"
	}

	var signers map[model.ID]cryptox.Signer
	var reg cryptox.Verifier
	if c.Insecure {
		signers, reg = cryptox.InsecureSuite(c.ids)
	} else {
		var err error
		signers, reg, err = cryptox.Keyring(seed+1, c.ids)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", name, err)
		}
	}

	// The protocol stack's virtual durations, scaled once for every reactor.
	disc, pbftTimeout, pollPeriod := c.LiveDurations(scale)

	// Grading state; decision callbacks arrive on node event-loop
	// goroutines, so unlike Runner.Run this is mutex-guarded.
	var (
		mu             sync.Mutex
		start          time.Time
		proposals      = make(map[model.ID]model.Value)
		nodes          = make(map[model.ID]*core.Node)
		correct        = model.NewIDSet()
		decisions      = make(map[model.ID]model.Value)
		decidedAt      = make(map[model.ID]rt.Time)
		doubleDecided  = model.NewIDSet()
		decidedCorrect = 0
		done           = make(chan struct{})
		doneOnce       sync.Once
	)

	var collusion *byz.Collusion
	colluders := map[model.ID]*byz.Colluder{}
	for _, id := range c.ids {
		if bspec, ok := c.Byz[id]; ok && bspec.Kind == ByzCollude {
			if collusion == nil {
				collusion = byz.NewCollusion(reg, disc)
			}
			colluders[id] = collusion.AddMember(signers[id], resolveClaim(c, id, bspec), bspec.Withhold)
		}
	}

	makeNode := func(id model.ID, value model.Value) *core.Node {
		cfg := core.Config{
			Mode:        c.Mode,
			F:           c.F,
			PD:          c.Graph.OutSet(id).Clone(),
			Proposal:    value,
			Discovery:   disc,
			PBFTTimeout: pbftTimeout,
			PollPeriod:  pollPeriod,
			Hardened:    c.Hardened,
		}
		if c.Mode != core.ModePermissioned {
			cfg.Searcher = kosr.NewSearcher()
		}
		return core.NewNode(signers[id], reg, cfg, func(v model.Value) {
			mu.Lock()
			defer mu.Unlock()
			if prev, dup := decisions[id]; dup {
				if !prev.Equal(v) {
					doubleDecided.Add(id)
				}
				return
			}
			decisions[id] = v
			// Reported in virtual units, like every simulator result.
			decidedAt[id] = rt.Time(time.Since(start)) * rt.Time(scale)
			if correct.Has(id) {
				decidedCorrect++
				if decidedCorrect == correct.Len() {
					doneOnce.Do(func() { close(done) })
				}
			}
		})
	}

	reactors := make(map[model.ID]rt.Reactor, len(c.ids))
	for _, id := range c.ids {
		value := model.Value(fmt.Sprintf("v%d", id))
		if v, ok := c.Values[id]; ok {
			value = v
		}
		proposals[id] = value

		bspec, isByz := c.Byz[id]
		if !isByz || bspec.Kind == ByzAsCorrect {
			n := makeNode(id, value)
			nodes[id] = n
			reactors[id] = n
			if !isByz {
				correct.Add(id)
			}
			continue
		}
		switch bspec.Kind {
		case ByzSilent:
			reactors[id] = byz.Silent{}
		case ByzFakePD:
			reactors[id] = byz.NewFakePD(signers[id], reg, resolveClaim(c, id, bspec), disc)
		case ByzEquivPD:
			alt := bspec.AltPD
			if alt == nil {
				alt = model.NewIDSet()
			}
			choose := bspec.ChooseAlt
			if bspec.AltRecipients != nil {
				recipients := bspec.AltRecipients
				choose = func(id model.ID) bool { return recipients.Has(id) }
			}
			reactors[id] = byz.NewPDEquivocator(signers[id], reg, resolveClaim(c, id, bspec), alt, choose, disc)
		case ByzDelay:
			reactors[id] = byz.NewDelayer(signers[id], reg, resolveClaim(c, id, bspec), disc, bspec.HoldRounds)
		case ByzSelectiveSilent:
			reactors[id] = byz.NewSelectiveSilent(signers[id], reg, resolveClaim(c, id, bspec), bspec.AnswerTo, disc)
		case ByzCollude:
			reactors[id] = colluders[id]
		default:
			return nil, fmt.Errorf("scenario %q: unknown byz kind %v", name, bspec.Kind)
		}
	}

	if correct.Len() == 0 {
		// Vacuous termination, as in Runner.Run's immediate cond check.
		doneOnce.Do(func() { close(done) })
	}

	ln := &liveNet{rng: rand.New(rand.NewSource(seed)), net: c.Net, scale: scale}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mu.Lock() // hold off decisions racing cluster start
	cluster, err := netrt.NewCluster(ctx, c.ids, func(id model.ID) rt.Reactor { return reactors[id] }, netrt.ClusterConfig{
		Transport: transport,
		Seed:      seed,
		Delay:     ln.delay,
	})
	if err != nil {
		mu.Unlock()
		return nil, fmt.Errorf("scenario %q: %w", name, err)
	}
	start = time.Now()
	mu.Unlock()

	horizon := time.Duration(int64(c.Horizon) / scale)
	termination := false
	select {
	case <-done:
		termination = true
		// Let in-flight decisions propagate a little further for reporting —
		// the Runner's one extra virtual second, scaled.
		time.Sleep(time.Duration(int64(sim.Second) / scale))
	case <-time.After(horizon):
	}
	cluster.Stop()

	res := &Result{Name: name, PerProcess: make(map[model.ID]ProcessResult)}
	mu.Lock()
	defer mu.Unlock()
	res.Termination = termination || decidedCorrect == correct.Len()

	res.Agreement, res.Validity, res.Integrity = true, true, true
	for id := range doubleDecided {
		if correct.Has(id) {
			res.Integrity = false
		}
	}
	var last rt.Time
	var agreed model.Value
	first := true
	for _, id := range c.ids {
		pr := ProcessResult{Byzantine: hasByz(c.Byz, id)}
		if n, ok := nodes[id]; ok {
			if cand, ok := n.Committee(); ok {
				pr.Committee = cand.Members()
				pr.G = cand.G
			}
		}
		if v, ok := decisions[id]; ok {
			pr.Decided, pr.Value, pr.DecidedAt = true, v, decidedAt[id]
		}
		res.PerProcess[id] = pr

		if !correct.Has(id) || !pr.Decided {
			continue
		}
		if pr.DecidedAt > last {
			last = pr.DecidedAt
		}
		if first {
			agreed, first = pr.Value, false
		} else if !agreed.Equal(pr.Value) {
			res.Agreement = false
		}
		proposed := false
		for _, p := range proposals {
			if p.Equal(pr.Value) {
				proposed = true
				break
			}
		}
		if !proposed {
			res.Validity = false
		}
	}
	if res.Termination {
		res.Elapsed = last
	} else {
		res.Elapsed = c.Horizon
	}
	res.Messages, res.Bytes = cluster.Messages(), cluster.Bytes()
	return res, nil
}
