// Package scenario assembles full systems — a knowledge connectivity graph,
// a fault assignment, a network model, a protocol mode — runs them on the
// deterministic simulator and grades the outcome against the consensus
// properties (Agreement, Validity, Integrity, Termination). Every table and
// figure of the paper is expressed as one or more Specs (see experiments.go).
package scenario

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/byz"
	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// ByzKind selects a Byzantine behavior.
type ByzKind int

// Byzantine behaviors available to specs.
const (
	// ByzSilent never sends a message.
	ByzSilent ByzKind = iota
	// ByzFakePD gossips a chosen (possibly false) own PD; silent otherwise.
	ByzFakePD
	// ByzEquivPD claims different PDs to different peers.
	ByzEquivPD
	// ByzAsCorrect runs the correct protocol while counting against f —
	// the adversary strategy of the Fig. 3 narrative.
	ByzAsCorrect
)

// String implements fmt.Stringer.
func (k ByzKind) String() string {
	switch k {
	case ByzSilent:
		return "silent"
	case ByzFakePD:
		return "fake-pd"
	case ByzEquivPD:
		return "equiv-pd"
	case ByzAsCorrect:
		return "as-correct"
	default:
		return fmt.Sprintf("byz(%d)", int(k))
	}
}

// ByzSpec configures one Byzantine process.
type ByzSpec struct {
	// Kind selects the behavior.
	Kind ByzKind
	// ClaimedPD is the advertised PD for ByzFakePD / ByzEquivPD (record A).
	// Nil means the graph's real PD.
	ClaimedPD model.IDSet
	// AltPD is record B for ByzEquivPD.
	AltPD model.IDSet
	// ChooseAlt selects which peers receive AltPD (nil: even IDs).
	ChooseAlt func(model.ID) bool
}

// Spec is a full experiment description.
type Spec struct {
	// Name labels the experiment in results and errors.
	Name string
	// Graph is the knowledge connectivity graph; correct processes use its
	// out-edges as their PDs.
	Graph *graph.Digraph
	// Mode selects the committee-identification protocol.
	Mode core.Mode
	// F is handed to processes in ModeKnownF / ModePermissioned.
	F int
	// Byz assigns Byzantine behaviors to processes.
	Byz map[model.ID]ByzSpec
	// Values maps processes to proposals; missing entries default to "v<id>".
	Values map[model.ID]model.Value
	// Net is the network model the engine runs under.
	Net sim.NetworkModel
	// Horizon bounds the run; Termination is judged against it.
	Horizon sim.Time
	// Seed drives the engine RNG and key generation.
	Seed int64

	// Discovery tunes Algorithm 1; PBFTTimeout and PollPeriod override the
	// committee protocol's base view timeout and the non-member polling
	// interval (zero keeps the defaults).
	Discovery   discovery.Config
	PBFTTimeout sim.Time
	PollPeriod  sim.Time

	// Trace, when set, records every delivered event and every decision into
	// a streaming digest (Result.TraceDigest) for determinism assertions.
	Trace bool
}

// ProcessResult is the outcome at one process.
type ProcessResult struct {
	// Byzantine marks the process as faulty in the spec.
	Byzantine bool
	// Decided / Value / DecidedAt describe the decision, if one was reached.
	Decided   bool
	Value     model.Value
	DecidedAt sim.Time
	// Committee / G are the committee candidate the process adopted.
	Committee model.IDSet
	G         int
}

// Result grades a run.
type Result struct {
	// Name echoes the spec; PerProcess holds each process's outcome.
	Name        string
	PerProcess  map[model.ID]ProcessResult
	Termination bool // every correct process decided within the horizon
	Agreement   bool // no two correct processes decided differently
	Validity    bool // every decided value was proposed by some process
	Integrity   bool // no correct process decided more than once
	// Messages / Bytes / ByKind are the simulator's traffic counters.
	Messages int64
	Bytes    int64
	ByKind   map[byte]int64
	// Elapsed is the virtual time of the last correct decision (or the
	// horizon when Termination fails).
	Elapsed sim.Time
	// TraceDigest / TraceEvents are set when Spec.Trace was on: a SHA-256
	// over the canonical encoding of every delivered event and decision.
	TraceDigest string
	TraceEvents int64
}

// Consensus reports whether all four consensus properties held.
func (r *Result) Consensus() bool {
	return r.Termination && r.Agreement && r.Validity && r.Integrity
}

// Verdict renders ✓/✗ in the style of the paper's Table I.
func (r *Result) Verdict() string {
	if r.Consensus() {
		return "✓"
	}
	return "✗"
}

// FailureMode names what went wrong (empty for a clean run).
func (r *Result) FailureMode() string {
	switch {
	case !r.Agreement:
		return "agreement violated"
	case !r.Validity:
		return "validity violated"
	case !r.Integrity:
		return "integrity violated"
	case !r.Termination:
		return "no termination"
	default:
		return ""
	}
}

// Run executes a spec.
func Run(spec Spec) (*Result, error) {
	if spec.Graph == nil || spec.Graph.NumNodes() == 0 {
		return nil, fmt.Errorf("scenario %q: empty graph", spec.Name)
	}
	if spec.Net == nil {
		spec.Net = sim.Synchronous{Delta: 5 * sim.Millisecond}
	}
	if spec.Horizon <= 0 {
		spec.Horizon = 60 * sim.Second
	}
	ids := spec.Graph.Nodes()
	signers, reg, err := cryptox.GenerateKeys(spec.Seed+1, ids)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}

	engine := sim.NewEngine(spec.Net, spec.Seed)
	var trace *sim.Trace
	if spec.Trace {
		trace = sim.NewTrace()
		engine.SetTrace(trace)
	}
	res := &Result{Name: spec.Name, PerProcess: make(map[model.ID]ProcessResult)}
	proposals := make(map[model.ID]model.Value, len(ids))
	nodes := make(map[model.ID]*core.Node)
	correct := model.NewIDSet()
	decisions := make(map[model.ID]model.Value)
	decidedAt := make(map[model.ID]sim.Time)
	doubleDecided := model.NewIDSet()

	for _, id := range ids {
		id := id
		value := model.Value(fmt.Sprintf("v%d", id))
		if v, ok := spec.Values[id]; ok {
			value = v
		}
		proposals[id] = value

		bspec, isByz := spec.Byz[id]
		if !isByz || bspec.Kind == ByzAsCorrect {
			cfg := core.Config{
				Mode:        spec.Mode,
				F:           spec.F,
				PD:          spec.Graph.OutSet(id).Clone(),
				Proposal:    value,
				Discovery:   spec.Discovery,
				PBFTTimeout: spec.PBFTTimeout,
				PollPeriod:  spec.PollPeriod,
			}
			n := core.NewNode(signers[id], reg, cfg, func(v model.Value) {
				if _, dup := decisions[id]; dup {
					doubleDecided.Add(id)
					return
				}
				decisions[id] = v
				decidedAt[id] = engine.Now()
				if trace != nil {
					trace.RecordDecision(id, engine.Now(), []byte(v))
				}
			})
			nodes[id] = n
			if err := engine.AddProcess(id, n); err != nil {
				return nil, err
			}
			if !isByz {
				correct.Add(id)
			}
			continue
		}
		var r sim.Reactor
		claimed := bspec.ClaimedPD
		if claimed == nil {
			claimed = spec.Graph.OutSet(id).Clone()
		}
		switch bspec.Kind {
		case ByzSilent:
			r = byz.Silent{}
		case ByzFakePD:
			r = byz.NewFakePD(signers[id], reg, claimed, spec.Discovery)
		case ByzEquivPD:
			alt := bspec.AltPD
			if alt == nil {
				alt = model.NewIDSet()
			}
			r = byz.NewPDEquivocator(signers[id], reg, claimed, alt, bspec.ChooseAlt, spec.Discovery)
		default:
			return nil, fmt.Errorf("scenario %q: unknown byz kind %v", spec.Name, bspec.Kind)
		}
		if err := engine.AddProcess(id, r); err != nil {
			return nil, err
		}
	}

	allCorrectDecided := func() bool {
		for id := range correct {
			if _, ok := decisions[id]; !ok {
				return false
			}
		}
		return true
	}
	res.Termination = engine.RunUntil(allCorrectDecided, spec.Horizon)
	// Let in-flight decisions propagate a little further for reporting, but
	// never past the horizon.
	if res.Termination {
		engine.RunUntil(func() bool { return false }, minTime(engine.Now()+sim.Second, spec.Horizon))
	}

	res.Agreement, res.Validity, res.Integrity = true, true, true
	for id := range doubleDecided {
		if correct.Has(id) {
			res.Integrity = false
		}
	}
	var last sim.Time
	var agreed model.Value
	first := true
	for _, id := range ids {
		pr := ProcessResult{Byzantine: spec.Byz != nil && hasByz(spec.Byz, id)}
		if n, ok := nodes[id]; ok {
			if cand, ok := n.Committee(); ok {
				pr.Committee = cand.Members()
				pr.G = cand.G
			}
		}
		if v, ok := decisions[id]; ok {
			pr.Decided, pr.Value, pr.DecidedAt = true, v, decidedAt[id]
		}
		res.PerProcess[id] = pr

		if !correct.Has(id) || !pr.Decided {
			continue
		}
		if pr.DecidedAt > last {
			last = pr.DecidedAt
		}
		if first {
			agreed, first = pr.Value, false
		} else if !agreed.Equal(pr.Value) {
			res.Agreement = false
		}
		proposed := false
		for _, p := range proposals {
			if p.Equal(pr.Value) {
				proposed = true
				break
			}
		}
		if !proposed {
			res.Validity = false
		}
	}
	if res.Termination {
		res.Elapsed = last
	} else {
		res.Elapsed = spec.Horizon
	}
	if trace != nil {
		res.TraceDigest, res.TraceEvents = trace.Digest(), trace.Events()
	}
	m := engine.Metrics()
	res.Messages, res.Bytes = m.Messages, m.Bytes
	res.ByKind = m.ByKind()
	return res, nil
}

func hasByz(m map[model.ID]ByzSpec, id model.ID) bool {
	_, ok := m[id]
	return ok
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
