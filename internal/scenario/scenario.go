// Package scenario assembles full systems — a knowledge connectivity graph,
// a fault assignment, a network model, a protocol mode — runs them on the
// deterministic simulator and grades the outcome against the consensus
// properties (Agreement, Validity, Integrity, Termination). Every table and
// figure of the paper is expressed as one or more Specs (see experiments.go).
package scenario

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// ByzKind selects a Byzantine behavior.
type ByzKind int

// Byzantine behaviors available to specs.
const (
	// ByzSilent never sends a message.
	ByzSilent ByzKind = iota
	// ByzFakePD gossips a chosen (possibly false) own PD; silent otherwise.
	ByzFakePD
	// ByzEquivPD claims different PDs to different peers.
	ByzEquivPD
	// ByzAsCorrect runs the correct protocol while counting against f —
	// the adversary strategy of the Fig. 3 narrative.
	ByzAsCorrect
	// ByzDelay relays honest discovery content with Byzantine timing: every
	// GETPDS reply is held for HoldRounds discovery periods.
	ByzDelay
	// ByzSelectiveSilent runs honest discovery toward AnswerTo only and is
	// completely silent toward everyone else.
	ByzSelectiveSilent
	// ByzCollude joins a per-run colluding group: members share collected
	// records, advertise forged PDs for each other and censor the record
	// owners in Withhold from their replies.
	ByzCollude
)

// String implements fmt.Stringer.
func (k ByzKind) String() string {
	switch k {
	case ByzSilent:
		return "silent"
	case ByzFakePD:
		return "fake-pd"
	case ByzEquivPD:
		return "equiv-pd"
	case ByzAsCorrect:
		return "as-correct"
	case ByzDelay:
		return "delay"
	case ByzSelectiveSilent:
		return "selective-silent"
	case ByzCollude:
		return "collude"
	default:
		return fmt.Sprintf("byz(%d)", int(k))
	}
}

// ByzSpec configures one Byzantine process. All behavior-shaping fields are
// plain data (sets and integers) so a spec has a canonical serialized
// identity — Params.CompileKey covers every one of them, which is what lets
// the matrix layer's compile cache treat equal keys as interchangeable.
type ByzSpec struct {
	// Kind selects the behavior.
	Kind ByzKind
	// ClaimedPD is the advertised PD for the discovery-active behaviors.
	// Nil picks the kind's default: the graph's real out-set for ByzDelay /
	// ByzSelectiveSilent (those attacks distort timing and reach, not
	// content) and ForgedClaim for ByzFakePD / ByzEquivPD / ByzCollude
	// (claiming the truth would make the "fake" PD a no-op).
	ClaimedPD model.IDSet
	// AltPD is record B for ByzEquivPD.
	AltPD model.IDSet
	// AltRecipients is the peer set that receives AltPD under ByzEquivPD.
	// Nil falls back to ChooseAlt (and then to the even-ID default). Unlike
	// ChooseAlt it is data, visible to CompileKey.
	AltRecipients model.IDSet
	// ChooseAlt selects which peers receive AltPD. Functions have no
	// canonical identity, so hand-written Specs may use it but Params cannot;
	// AltRecipients wins when both are set.
	ChooseAlt func(model.ID) bool
	// HoldRounds is how many discovery periods ByzDelay holds each reply
	// (values < 1 are floored to 1).
	HoldRounds int
	// AnswerTo is the peer subset ByzSelectiveSilent communicates with (nil
	// behaves like ByzSilent).
	AnswerTo model.IDSet
	// Withhold lists third-party record owners a ByzCollude member censors
	// from the group's replies (the group pools the union).
	Withhold model.IDSet
}

// Spec is a full experiment description.
type Spec struct {
	// Name labels the experiment in results and errors.
	Name string
	// Graph is the knowledge connectivity graph; correct processes use its
	// out-edges as their PDs.
	Graph *graph.Digraph
	// Mode selects the committee-identification protocol.
	Mode core.Mode
	// F is handed to processes in ModeKnownF / ModePermissioned.
	F int
	// Byz assigns Byzantine behaviors to processes.
	Byz map[model.ID]ByzSpec
	// Values maps processes to proposals; missing entries default to "v<id>".
	Values map[model.ID]model.Value
	// Net is the network model the engine runs under.
	Net sim.NetworkModel
	// Horizon bounds the run; Termination is judged against it.
	Horizon sim.Time
	// Seed drives the engine RNG and key generation.
	Seed int64

	// Discovery tunes Algorithm 1; PBFTTimeout and PollPeriod override the
	// committee protocol's base view timeout and the non-member polling
	// interval (zero keeps the defaults).
	Discovery   discovery.Config
	PBFTTimeout sim.Time
	PollPeriod  sim.Time

	// Insecure swaps the Ed25519 keyring for the cryptox insecure suite (see
	// Params.Insecure for the comparability caveat).
	Insecure bool

	// Faults is the chaos fault-injection axis (see Params.Faults). Compile
	// folds the link-level faults into Net as a sim.FaultyNetwork wrapper —
	// Net must therefore be the bare model, not pre-wrapped — and each Run
	// schedules the churn crash/restart points on the engine.
	Faults FaultParams

	// Trace, when set, records every delivered event and every decision into
	// a streaming digest (Result.TraceDigest) for determinism assertions.
	Trace bool
}

// ProcessResult is the outcome at one process.
type ProcessResult struct {
	// Byzantine marks the process as faulty in the spec.
	Byzantine bool
	// Decided / Value / DecidedAt describe the decision, if one was reached.
	Decided   bool
	Value     model.Value
	DecidedAt sim.Time
	// Committee / G are the committee candidate the process adopted.
	Committee model.IDSet
	G         int
}

// Result grades a run.
type Result struct {
	// Name echoes the spec; PerProcess holds each process's outcome.
	Name        string
	PerProcess  map[model.ID]ProcessResult
	Termination bool // every correct process decided within the horizon
	Agreement   bool // no two correct processes decided differently
	Validity    bool // every decided value was proposed by some process
	Integrity   bool // no correct process decided more than once
	// Messages / Bytes / ByKind are the simulator's traffic counters.
	Messages int64
	Bytes    int64
	ByKind   map[byte]int64
	// Elapsed is the virtual time of the last correct decision (or the
	// horizon when Termination fails).
	Elapsed sim.Time
	// TraceDigest / TraceEvents are set when Spec.Trace was on: a SHA-256
	// over the canonical encoding of every delivered event and decision.
	TraceDigest string
	TraceEvents int64
}

// Consensus reports whether all four consensus properties held.
func (r *Result) Consensus() bool {
	return r.Termination && r.Agreement && r.Validity && r.Integrity
}

// Verdict renders ✓/✗ in the style of the paper's Table I.
func (r *Result) Verdict() string {
	if r.Consensus() {
		return "✓"
	}
	return "✗"
}

// FailureMode names what went wrong (empty for a clean run).
func (r *Result) FailureMode() string {
	switch {
	case !r.Agreement:
		return "agreement violated"
	case !r.Validity:
		return "validity violated"
	case !r.Integrity:
		return "integrity violated"
	case !r.Termination:
		return "no termination"
	default:
		return ""
	}
}

// Run executes a spec. It is a thin shim over the Compile → Run pipeline
// (see compile.go): the Spec's defaults are filled, the seed-independent
// parts wrapped in a Compiled, and a fresh Runner executes it — so one-shot
// callers and the compile-once-run-many sweep path cannot diverge. The
// returned Result is independently owned (safe to retain).
func Run(spec Spec) (*Result, error) {
	c, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	return c.Run(spec.Seed, spec.Trace)
}

func hasByz(m map[model.ID]ByzSpec, id model.ID) bool {
	_, ok := m[id]
	return ok
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
