package scenario

import (
	"strings"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

func fig1bDef(t *testing.T) graph.Def {
	t.Helper()
	def, err := graph.ParseDef("fig1b")
	if err != nil {
		t.Fatal(err)
	}
	return def
}

// chaosParams is the baseline chaos cell the tests perturb: fig1b under
// BFT-CUP with a mixed link-fault load.
func chaosParams(seed int64) Params {
	return Params{
		Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:  core.ModeKnownF,
		F:     -1,
		Net:   NetParams{Kind: NetSync},
		Seed:  seed,
		Faults: FaultParams{
			Loss:    0.1,
			Dup:     0.05,
			Reorder: 2 * sim.Millisecond,
		},
	}
}

func TestFaultParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		f    FaultParams
	}{
		{"loss-negative", FaultParams{Loss: -0.1}},
		{"loss-one", FaultParams{Loss: 1}},
		{"dup-negative", FaultParams{Dup: -0.5}},
		{"dup-one", FaultParams{Dup: 1.5}},
		{"reorder-negative", FaultParams{Reorder: -1}},
		{"partition-empty-window", FaultParams{Partitions: []PartitionWindow{{From: 5, Until: 5}}}},
		{"partition-negative-from", FaultParams{Partitions: []PartitionWindow{{From: -1, Until: 5}}}},
		{"partition-empty-group", FaultParams{Partitions: []PartitionWindow{
			{From: 0, Until: 5, Groups: [][]model.ID{{1}, {}}},
		}}},
		{"partition-dup-member", FaultParams{Partitions: []PartitionWindow{
			{From: 0, Until: 5, Groups: [][]model.ID{{1, 2}, {2, 3}}},
		}}},
		{"churn-negative-crash", FaultParams{Churn: []ChurnEvent{{ID: 1, CrashAt: -1}}}},
		{"churn-restart-before-crash", FaultParams{Churn: []ChurnEvent{{ID: 1, CrashAt: 10, RestartAt: 5}}}},
		{"churn-duplicate-id", FaultParams{Churn: []ChurnEvent{
			{ID: 1, CrashAt: 10}, {ID: 1, CrashAt: 20},
		}}},
		{"unhardened-without-faults", FaultParams{Unhardened: true}},
	}
	for _, tc := range cases {
		if err := tc.f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.f)
		}
	}
	ok := FaultParams{
		Loss:       0.3,
		Dup:        0.1,
		Reorder:    sim.Millisecond,
		Partitions: []PartitionWindow{{From: 0, Until: 100, Groups: [][]model.ID{{1, 2}, {3}}}},
		Churn:      []ChurnEvent{{ID: 1, CrashAt: 50, RestartAt: 80, Wipe: true}, {ID: 2, CrashAt: 10}},
		Unhardened: true,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected a well-formed axis: %v", err)
	}
}

// TestParamsValidateRejectsBadNetTiming covers the satellite: negative
// net-timing knobs must fail loudly instead of being silently replaced by
// the defaults.
func TestParamsValidateRejectsBadNetTiming(t *testing.T) {
	base := chaosParams(1)
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"negative-horizon", func(p *Params) { p.Horizon = -sim.Second }},
		{"negative-delta", func(p *Params) { p.Net.Delta = -sim.Millisecond }},
		{"negative-gst", func(p *Params) { p.Net.GST = -sim.Second }},
		{"negative-async-delta", func(p *Params) { p.Net.AsyncDelta = -sim.Second }},
		{"negative-async-factor", func(p *Params) { p.Net.AsyncFactor = -2 }},
		{"bad-faults", func(p *Params) { p.Faults.Loss = 2 }},
	}
	for _, tc := range cases {
		p := base
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the parameters", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
}

func TestFaultLabelAndParsers(t *testing.T) {
	if got := (FaultParams{}).Label(); got != "" {
		t.Fatalf("zero axis label %q, want empty", got)
	}
	f := FaultParams{
		Loss:    0.15,
		Dup:     0.075,
		Reorder: 2 * sim.Millisecond,
		Partitions: []PartitionWindow{
			{From: 100 * sim.Millisecond, Until: 400 * sim.Millisecond},
			{From: sim.Second, Until: 2 * sim.Second, Groups: [][]model.ID{{1, 2}, {3, 4}}},
		},
		Churn: []ChurnEvent{
			{ID: 8, CrashAt: 100 * sim.Millisecond},
			{ID: 2, CrashAt: 150 * sim.Millisecond, RestartAt: 500 * sim.Millisecond, Wipe: true},
		},
		Unhardened: true,
	}
	label := f.Label()
	for _, want := range []string{"loss=0.15", "dup=0.075", "reorder=2.0ms", "part=", ":half", "1,2|3,4", "churn=8@", "churn=2@", ":wipe", "unhardened"} {
		if !strings.Contains(label, want) {
			t.Errorf("label %q missing %q", label, want)
		}
	}

	w, err := ParsePartition("100ms-400ms")
	if err != nil || w.From != 100*sim.Millisecond || w.Until != 400*sim.Millisecond || w.Groups != nil {
		t.Fatalf("ParsePartition auto-half: %+v, %v", w, err)
	}
	w, err = ParsePartition("1s-2s:1,2|3,4")
	if err != nil || len(w.Groups) != 2 || w.Groups[0][1] != 2 || w.Groups[1][0] != 3 {
		t.Fatalf("ParsePartition groups: %+v, %v", w, err)
	}
	for _, bad := range []string{"", "100ms", "x-y", "1s-2s:1,a"} {
		if _, err := ParsePartition(bad); err == nil {
			t.Errorf("ParsePartition accepted %q", bad)
		}
	}

	c, err := ParseChurn("8@100ms")
	if err != nil || c.ID != 8 || c.CrashAt != 100*sim.Millisecond || c.RestartAt != 0 || c.Wipe {
		t.Fatalf("ParseChurn down-forever: %+v, %v", c, err)
	}
	c, err = ParseChurn("2@150ms+500ms:wipe")
	if err != nil || c.ID != 2 || c.RestartAt != 500*sim.Millisecond || !c.Wipe {
		t.Fatalf("ParseChurn wiped restart: %+v, %v", c, err)
	}
	for _, bad := range []string{"", "2", "x@1s", "2@1s+500ms:nuke", "2@zz"} {
		if _, err := ParseChurn(bad); err == nil {
			t.Errorf("ParseChurn accepted %q", bad)
		}
	}
}

// TestCompileKeyFaultSection pins the only-when-set contract: a zero fault
// axis leaves CompileKey byte-free of any fault section (so every pre-fault
// cache key, fingerprint and label is unchanged), while distinct active axes
// produce distinct keys.
func TestCompileKeyFaultSection(t *testing.T) {
	clean := chaosParams(1)
	clean.Faults = FaultParams{}
	if key := clean.CompileKey(); strings.Contains(key, "faults") {
		t.Fatalf("zero-fault CompileKey mentions faults: %s", key)
	}
	if lbl := clean.Labels().Net; strings.Contains(lbl, "faults") {
		t.Fatalf("zero-fault net label mentions faults: %s", lbl)
	}

	a := chaosParams(1)
	b := chaosParams(1)
	b.Faults.Loss = 0.2
	u := chaosParams(1)
	u.Faults.Unhardened = true
	keys := map[string]string{
		"clean": clean.CompileKey(),
		"a":     a.CompileKey(),
		"b":     b.CompileKey(),
		"u":     u.CompileKey(),
	}
	seen := make(map[string]string)
	for name, key := range keys {
		if prev, dup := seen[key]; dup {
			t.Fatalf("%s and %s share a CompileKey: %s", prev, name, key)
		}
		seen[key] = name
	}
	if lbl := a.Labels().Net; !strings.Contains(lbl, "+faults(") {
		t.Fatalf("active fault axis missing from net label: %s", lbl)
	}
}

func TestCompileRejectsBadChurn(t *testing.T) {
	p := chaosParams(1)
	p.Faults.Churn = []ChurnEvent{{ID: 99, CrashAt: 100 * sim.Millisecond}}
	if _, err := p.Compile(); err == nil || !strings.Contains(err.Error(), "not in graph") {
		t.Fatalf("churn of unknown process compiled: %v", err)
	}

	p = chaosParams(1)
	p.Byz = map[model.ID]ByzParams{8: {Kind: ByzSilent}}
	p.Faults.Churn = []ChurnEvent{{ID: 8, CrashAt: 100 * sim.Millisecond, RestartAt: 500 * sim.Millisecond, Wipe: true}}
	if _, err := p.Compile(); err == nil || !strings.Contains(err.Error(), "Byzantine") {
		t.Fatalf("wiped churn of a Byzantine process compiled: %v", err)
	}
	// A non-wiping crash of a Byzantine process is legal (the adversary
	// losing a member is a weaker adversary, not a semantic conflict).
	p.Faults.Churn[0].Wipe = false
	if _, err := p.Compile(); err != nil {
		t.Fatalf("plain churn of a Byzantine process rejected: %v", err)
	}
}

// TestFaultScenarioDeterministic runs one chaos cell (loss, dup, reorder, a
// partition window and wiped churn all active) twice from fresh state and
// once more on a reused Runner: all three must produce byte-identical trace
// digests — the determinism contract fault injection must preserve.
func TestFaultScenarioDeterministic(t *testing.T) {
	p := chaosParams(3)
	p.Trace = true
	p.Faults.Partitions = []PartitionWindow{{From: 100 * sim.Millisecond, Until: 300 * sim.Millisecond}}
	p.Faults.Churn = []ChurnEvent{{ID: 2, CrashAt: 150 * sim.Millisecond, RestartAt: 500 * sim.Millisecond, Wipe: true}}

	digest := func(r *Runner, c *Compiled, seed int64) string {
		t.Helper()
		res, err := r.Run(c, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.TraceDigest == "" {
			t.Fatal("no trace digest")
		}
		return res.TraceDigest
	}

	c1, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 Runner
	d1 := digest(&r1, c1, p.Seed)
	d2 := digest(&r2, c2, p.Seed)
	d3 := digest(&r1, c1, p.Seed) // reused engine scratch
	if d1 != d2 || d1 != d3 {
		t.Fatalf("chaos trace digests diverge:\n  fresh      %s\n  fresh      %s\n  reused     %s", d1, d2, d3)
	}
	if do := digest(&r2, c2, p.Seed+1); do == d1 {
		t.Fatalf("different seeds share a chaos trace digest: %s", do)
	}
}

// TestHardenedBeatsUnhardenedUnderLoss is the pinned A/B regression of the
// protocol hardening: fig1b under delta-gossip discovery at 25% message
// loss, seed 4. The seed protocol's at-most-once record sending loses
// records permanently and idles to the horizon without termination; the
// hardened profile (delta resync + backoff + PBFT decide-note replies)
// decides well under a virtual second. Both runs are fully deterministic,
// so this is an exact pin, not a statistical claim.
func TestHardenedBeatsUnhardenedUnderLoss(t *testing.T) {
	run := func(unhardened bool) *Result {
		t.Helper()
		p := Params{
			Graph:  fig1bDef(t),
			Mode:   core.ModeKnownF,
			F:      -1,
			Net:    NetParams{Kind: NetSync},
			Seed:   4,
			Faults: FaultParams{Loss: 0.25, Unhardened: unhardened},
		}
		spec, err := p.Spec()
		if err != nil {
			t.Fatal(err)
		}
		spec.Discovery.Delta = true
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	seedRes := run(true)
	if seedRes.Termination {
		t.Fatalf("unhardened delta protocol terminated under 25%% loss — the at-most-once regression this test pins has disappeared (elapsed %v)", seedRes.Elapsed)
	}
	hardRes := run(false)
	if !hardRes.Consensus() {
		t.Fatalf("hardened protocol failed under 25%% loss: %s (elapsed %v)", hardRes.FailureMode(), hardRes.Elapsed)
	}
	if hardRes.Elapsed >= sim.Second {
		t.Fatalf("hardened protocol took %v, want < 1 virtual second", hardRes.Elapsed)
	}
}

// TestChurnCrashForeverGradedCrashFaulty: a process crashed without restart
// is excluded from the correct set — the others terminate and the run is
// graded a success, with the crashed process reported undecided.
func TestChurnCrashForeverGradedCrashFaulty(t *testing.T) {
	p := chaosParams(1)
	// Crash during discovery — a clean fig1b cell decides around 35ms, so
	// the crash must land before the protocol completes.
	p.Faults = FaultParams{Churn: []ChurnEvent{{ID: 8, CrashAt: 10 * sim.Millisecond}}}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(p.Seed, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus() {
		t.Fatalf("consensus failed with one crash-faulty process: %s", res.FailureMode())
	}
	if res.PerProcess[8].Decided {
		t.Fatalf("process 8 decided after crashing at 10ms (decided at %v)", res.PerProcess[8].DecidedAt)
	}
	for _, id := range []model.ID{1, 2, 3} {
		if !res.PerProcess[id].Decided {
			t.Fatalf("process %v did not decide", id)
		}
	}
}

// TestChurnRestartDecides pins restart semantics end to end, in both
// persistence modes: the churned process must come back, rejoin the
// protocol and decide the agreed value, and a wiped re-decision of the same
// value must not be graded as an integrity violation.
func TestChurnRestartDecides(t *testing.T) {
	for _, wipe := range []bool{false, true} {
		p := chaosParams(1)
		// Process 2 is a sink member: crashing it mid-discovery stalls its
		// committee, so the run can only terminate through the restart path.
		p.Faults = FaultParams{Churn: []ChurnEvent{
			{ID: 2, CrashAt: 10 * sim.Millisecond, RestartAt: 500 * sim.Millisecond, Wipe: wipe},
		}}
		c, err := p.Compile()
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(p.Seed, false)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus() {
			t.Fatalf("wipe=%t: consensus failed under crash/restart churn: %s", wipe, res.FailureMode())
		}
		pr := res.PerProcess[2]
		if !pr.Decided {
			t.Fatalf("wipe=%t: restarted process 2 never decided", wipe)
		}
		if pr.DecidedAt < 500*sim.Millisecond {
			t.Fatalf("wipe=%t: process 2 decided at %v, before its 500ms restart", wipe, pr.DecidedAt)
		}
		if pr1 := res.PerProcess[1]; !pr1.Value.Equal(pr.Value) {
			t.Fatalf("wipe=%t: restarted process decided %q, others %q", wipe, pr.Value, pr1.Value)
		}
	}
}
