package scenario

import (
	"fmt"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// traceParams builds one tracing run per network model: the regression net
// for "identical seeds yield byte-identical executions" across every
// communication assumption the simulator implements.
func traceParams(net NetParams, horizon sim.Time) Params {
	return Params{
		Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:  core.ModeKnownF,
		F:     -1,
		Byz: map[model.ID]ByzParams{
			4: {Kind: ByzFakePD, ClaimedPD: []model.ID{1, 2, 3}},
		},
		Net:           net,
		Horizon:       horizon,
		Seed:          99,
		SlowDiscovery: net.Kind == NetAsync,
		Trace:         true,
	}
}

// TestTraceDeterminismAcrossNetModels asserts that running the same spec
// twice produces byte-identical event traces and decision transcripts (equal
// streaming SHA-256 digests over every delivered message, timer and
// decision) under all three network models, and that changing the seed
// actually changes the trace.
func TestTraceDeterminismAcrossNetModels(t *testing.T) {
	nets := []NetParams{
		{Kind: NetSync},
		{Kind: NetPartial, GST: 2 * sim.Second},
		{Kind: NetAsync},
	}
	for _, net := range nets {
		net := net
		t.Run(net.Kind.String(), func(t *testing.T) {
			horizon := 60 * sim.Second
			if net.Kind == NetAsync {
				horizon = 20 * sim.Second // non-terminating; bound the event volume
			}
			p := traceParams(net, sim.Time(horizon))
			spec, err := p.Spec()
			if err != nil {
				t.Fatal(err)
			}
			a, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			// Re-materialize from scratch: determinism must survive full
			// reconstruction, not just re-running a shared Spec value.
			spec2, err := p.Spec()
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(spec2)
			if err != nil {
				t.Fatal(err)
			}
			if a.TraceEvents == 0 {
				t.Fatal("trace recorded no events")
			}
			if a.TraceDigest != b.TraceDigest || a.TraceEvents != b.TraceEvents {
				t.Fatalf("same seed diverged: %s (%d events) vs %s (%d events)",
					a.TraceDigest, a.TraceEvents, b.TraceDigest, b.TraceEvents)
			}
			if transcript(a) != transcript(b) {
				t.Fatalf("decision transcripts diverge:\n%s\nvs\n%s", transcript(a), transcript(b))
			}

			p.Seed = 100
			spec3, err := p.Spec()
			if err != nil {
				t.Fatal(err)
			}
			c, err := Run(spec3)
			if err != nil {
				t.Fatal(err)
			}
			if c.TraceDigest == a.TraceDigest {
				t.Fatal("different seeds produced identical traces (RNG not wired through?)")
			}
		})
	}
}

// transcript renders the per-process decisions deterministically.
func transcript(r *Result) string {
	out := ""
	ids := make([]model.ID, 0, len(r.PerProcess))
	for id := range r.PerProcess {
		ids = append(ids, id)
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		pr := r.PerProcess[id]
		out += fmt.Sprintf("%d:%t:%s:%d\n", uint64(id), pr.Decided, pr.Value, pr.DecidedAt)
	}
	return out
}

// TestParamsSpecMatchesHandWritten asserts the data-driven path builds the
// same runnable spec as the original hand-written construction for a
// representative experiment (same graded outcome and traffic counters).
func TestParamsSpecMatchesHandWritten(t *testing.T) {
	fig := graph.Fig1b()
	hand := Spec{
		Name:  "hand",
		Graph: fig.G,
		Mode:  core.ModeKnownF,
		F:     fig.F,
		Byz: map[model.ID]ByzSpec{
			4: {Kind: ByzFakePD, ClaimedPD: model.NewIDSet(1, 2, 3)},
		},
		Net:     sim.Synchronous{Delta: 5 * sim.Millisecond},
		Horizon: 60 * sim.Second,
		Seed:    22,
	}
	p := Params{
		Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:  core.ModeKnownF,
		F:     -1,
		Byz: map[model.ID]ByzParams{
			4: {Kind: ByzFakePD, ClaimedPD: []model.ID{1, 2, 3}},
		},
		Net:     NetParams{Kind: NetSync},
		Horizon: 60 * sim.Second,
		Seed:    22,
	}
	data, err := p.Spec()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(hand)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict() != b.Verdict() || a.Messages != b.Messages || a.Bytes != b.Bytes || a.Elapsed != b.Elapsed {
		t.Fatalf("data-driven spec diverges from hand-written: %v/%d/%d/%d vs %v/%d/%d/%d",
			a.Verdict(), a.Messages, a.Bytes, a.Elapsed, b.Verdict(), b.Messages, b.Bytes, b.Elapsed)
	}
}

// TestTraceDeterminismProbabilisticFamilies extends the byte-identical-trace
// regression to the unplanted random families: the graph itself is now part
// of the seeded randomness, so determinism must hold through generation →
// compile → run, a re-materialized spec must reproduce the digest exactly,
// and a different seed must change both the graph and the trace. (The
// compile cache keys er/geo/sf cells by build seed; a same-key different-
// graph bug would surface here as a digest mismatch.)
func TestTraceDeterminismProbabilisticFamilies(t *testing.T) {
	for _, gs := range []string{"er:n=12,p=0.3", "geo:n=12,r=0.45", "sf:n=12,m=2"} {
		gs := gs
		t.Run(gs, func(t *testing.T) {
			def, err := graph.ParseDef(gs)
			if err != nil {
				t.Fatal(err)
			}
			p := Params{
				Graph:   def,
				Mode:    core.ModeKnownF,
				F:       1,
				Net:     NetParams{Kind: NetSync},
				Horizon: 30 * sim.Second,
				Seed:    7,
				Trace:   true,
			}
			spec, err := p.Spec()
			if err != nil {
				t.Fatal(err)
			}
			a, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			spec2, err := p.Spec()
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(spec2)
			if err != nil {
				t.Fatal(err)
			}
			if a.TraceEvents == 0 {
				t.Fatal("trace recorded no events")
			}
			if a.TraceDigest != b.TraceDigest || a.TraceEvents != b.TraceEvents {
				t.Fatalf("same seed diverged: %s (%d events) vs %s (%d events)",
					a.TraceDigest, a.TraceEvents, b.TraceDigest, b.TraceEvents)
			}
			if transcript(a) != transcript(b) {
				t.Fatalf("decision transcripts diverge:\n%s\nvs\n%s", transcript(a), transcript(b))
			}
			p.Seed = 8
			spec3, err := p.Spec()
			if err != nil {
				t.Fatal(err)
			}
			c, err := Run(spec3)
			if err != nil {
				t.Fatal(err)
			}
			if c.TraceDigest == a.TraceDigest {
				t.Fatal("different seeds produced identical traces (graph seed not wired through?)")
			}
		})
	}
}
