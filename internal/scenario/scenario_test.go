package scenario

import (
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// Every experiment in the paper-reproduction suite must match the paper's
// predicted verdict. This is the repository's headline test.
func TestAllExperimentsMatchPaper(t *testing.T) {
	for _, exp := range AllExperiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := Run(exp.Spec)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Termination && res.Agreement && res.Validity
			if got != exp.Expect.Consensus {
				t.Fatalf("verdict %v (termination=%v agreement=%v validity=%v), paper predicts consensus=%v\nnote: %s",
					got, res.Termination, res.Agreement, res.Validity, exp.Expect.Consensus, exp.Expect.Note)
			}
		})
	}
}

// The Fig 2c run must reproduce Theorem 7's exact split: {1,2,3} decide v,
// {6,7,8} decide u, with disjoint committees.
func TestFig2cSplitDetails(t *testing.T) {
	for _, exp := range Fig2() {
		if exp.ID != "fig2c/naive" && exp.ID != "fig2c/bft-cupft" {
			continue
		}
		res, err := Run(exp.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Agreement {
			t.Fatalf("%s: expected an agreement violation", exp.ID)
		}
		for _, id := range []model.ID{1, 2, 3} {
			pr := res.PerProcess[id]
			if !pr.Decided || !pr.Value.Equal(model.Value("v")) {
				t.Fatalf("%s: %v decided %q, want v", exp.ID, id, pr.Value)
			}
		}
		for _, id := range []model.ID{6, 7, 8} {
			pr := res.PerProcess[id]
			if !pr.Decided || !pr.Value.Equal(model.Value("u")) {
				t.Fatalf("%s: %v decided %q, want u", exp.ID, id, pr.Value)
			}
		}
		if c1, c8 := res.PerProcess[1].Committee, res.PerProcess[8].Committee; c1.Intersect(c8).Len() != 0 {
			t.Fatalf("%s: committees overlap: %v %v", exp.ID, c1, c8)
		}
	}
}

// Fig 3a's false sink must be exactly the set the paper names.
func TestFig3aFalseSinkDetails(t *testing.T) {
	exp := Fig3()[1] // fig3a/bft-cupft
	res, err := Run(exp.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreement {
		t.Fatal("expected an agreement violation on fig3a")
	}
	want := model.NewIDSet(1, 2, 3, 4, 5, 6, 7)
	if got := res.PerProcess[2].Committee; !got.Equal(want) {
		t.Fatalf("false committee = %v, want %v", got, want)
	}
	if got := res.PerProcess[8].Committee; !got.Equal(model.NewIDSet(5, 7, 8)) {
		t.Fatalf("true sink committee = %v, want {5,7,8}", got)
	}
	// The false sink has g=2, strictly above the true sink's g=1 — the exact
	// reason C1 (maximum connectivity) was introduced.
	if res.PerProcess[2].G != 2 || res.PerProcess[8].G != 1 {
		t.Fatalf("g values = %d, %d; want 2, 1", res.PerProcess[2].G, res.PerProcess[8].G)
	}
}

// Fig 4a/4b: every correct process (member or not) must report the same
// committee and decide the same value.
func TestFig4CommitteeAgreement(t *testing.T) {
	for _, exp := range Fig4() {
		if !exp.Expect.Consensus {
			continue
		}
		res, err := Run(exp.Spec)
		if err != nil {
			t.Fatal(err)
		}
		var committee model.IDSet
		for id, pr := range res.PerProcess {
			if pr.Byzantine || !pr.Decided {
				continue
			}
			if committee == nil {
				committee = pr.Committee
			} else if !committee.Equal(pr.Committee) {
				t.Fatalf("%s: %v committee %v differs from %v", exp.ID, id, pr.Committee, committee)
			}
		}
		if committee == nil {
			t.Fatalf("%s: nobody decided", exp.ID)
		}
	}
}

// PD equivocation by the Byzantine sink member must not break Fig 1b.
func TestFig1bWithEquivocatingPD(t *testing.T) {
	fig := graph.Fig1b()
	spec := Spec{
		Name:  "fig1b/equiv",
		Graph: fig.G,
		Mode:  core.ModeKnownF,
		F:     fig.F,
		Byz: map[model.ID]ByzSpec{4: {
			Kind:      ByzEquivPD,
			ClaimedPD: model.NewIDSet(1, 2, 3),
			AltPD:     model.NewIDSet(1, 2),
		}},
		Net:     sim.Synchronous{Delta: 5 * sim.Millisecond},
		Horizon: 60 * sim.Second,
		Seed:    99,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Termination || !res.Agreement || !res.Validity {
		t.Fatalf("equivocating PD broke consensus: %+v", res.FailureMode())
	}
}

// Byzantine processes running the correct protocol (the Fig 3 adversary
// strategy) must be harmless on a valid graph.
func TestFig4aWithAsCorrectByz(t *testing.T) {
	fig := graph.Fig4a()
	spec := Spec{
		Name:    "fig4a/as-correct",
		Graph:   fig.G,
		Mode:    core.ModeUnknownF,
		Byz:     map[model.ID]ByzSpec{4: {Kind: ByzAsCorrect}},
		Net:     sim.Synchronous{Delta: 5 * sim.Millisecond},
		Horizon: 60 * sim.Second,
		Seed:    100,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Termination || !res.Agreement {
		t.Fatalf("as-correct Byzantine broke consensus: %s", res.FailureMode())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Spec{Name: "empty"}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Termination: true, Agreement: true, Validity: true, Integrity: true}
	if r.Verdict() != "✓" || r.FailureMode() != "" {
		t.Fatalf("clean verdict wrong: %q %q", r.Verdict(), r.FailureMode())
	}
	r2 := &Result{Termination: true, Agreement: false, Validity: true, Integrity: true}
	if r2.Verdict() != "✗" || r2.FailureMode() != "agreement violated" {
		t.Fatalf("violation verdict wrong: %q %q", r2.Verdict(), r2.FailureMode())
	}
	r3 := &Result{Termination: false, Agreement: true, Validity: true, Integrity: true}
	if r3.FailureMode() != "no termination" {
		t.Fatalf("termination verdict wrong: %q", r3.FailureMode())
	}
	r4 := &Result{Termination: true, Agreement: true, Validity: false, Integrity: true}
	if r4.FailureMode() != "validity violated" {
		t.Fatalf("validity verdict wrong: %q", r4.FailureMode())
	}
	r5 := &Result{Termination: true, Agreement: true, Validity: true, Integrity: false}
	if r5.Verdict() != "✗" || r5.FailureMode() != "integrity violated" {
		t.Fatalf("integrity verdict wrong: %q %q", r5.Verdict(), r5.FailureMode())
	}
}

// Determinism at the scenario level: same spec, same result.
func TestScenarioDeterminism(t *testing.T) {
	spec := Fig1()[1].Spec
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.Bytes != b.Bytes || a.Elapsed != b.Elapsed {
		t.Fatalf("runs differ: %d/%d/%d vs %d/%d/%d", a.Messages, a.Bytes, a.Elapsed, b.Messages, b.Bytes, b.Elapsed)
	}
}
