package scenario

import (
	"strings"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
)

// TestInsecureCompileKey pins the cache-identity half of the insecure suite:
// the flag must split the compile key (a Compiled bakes in which key material
// Run generates, so an insecure cell must never reuse a secure cache entry)
// without perturbing secure keys, which long predate the flag and anchor the
// per-worker compile cache.
func TestInsecureCompileKey(t *testing.T) {
	p := Params{
		Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:  core.ModeKnownF,
		F:     -1,
		Seed:  1,
	}
	secureKey := p.CompileKey()
	if strings.Contains(secureKey, "insecure") {
		t.Fatalf("secure compile key mentions the insecure flag: %s", secureKey)
	}
	p.Insecure = true
	insecureKey := p.CompileKey()
	if insecureKey == secureKey {
		t.Fatal("insecure and secure params share a compile key")
	}
	if !strings.HasPrefix(insecureKey, secureKey) {
		t.Fatalf("insecure key is not the secure key plus a suffix:\n  secure   %s\n  insecure %s", secureKey, insecureKey)
	}
}

// TestInsecureRunDecides pins the execution half: a compiled insecure
// scenario runs the full protocol stack on the insecure suite and reaches
// the same verdict as the secure run.
func TestInsecureRunDecides(t *testing.T) {
	p := Params{
		Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:  core.ModeKnownF,
		F:     -1,
		Seed:  1,
	}
	spec, err := p.Spec()
	if err != nil {
		t.Fatal(err)
	}
	secure, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	p.Insecure = true
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Insecure {
		t.Fatal("Compile dropped the Insecure flag")
	}
	insecure, err := c.Run(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if insecure.Verdict() != secure.Verdict() {
		t.Fatalf("insecure verdict %s, secure %s", insecure.Verdict(), secure.Verdict())
	}
	if !insecure.Termination || !insecure.Agreement {
		t.Fatalf("insecure run did not decide cleanly: %+v", insecure)
	}
}
