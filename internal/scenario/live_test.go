package scenario

import (
	"fmt"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/sim"
)

// twinCells are the pinned scenario cells the twin property is checked on:
// the Fig. 1(b) graph under each of the paper's three communication
// assumptions, plus a Byzantine cell. Horizons are short — the async cell's
// verdict is non-termination, which costs a full (scaled) horizon of wall
// time.
func twinCells(t *testing.T) []Params {
	t.Helper()
	def, err := graph.ParseDef("fig1b")
	if err != nil {
		t.Fatal(err)
	}
	return []Params{
		{Graph: def, Mode: core.ModeKnownF, F: -1, Net: NetParams{Kind: NetSync}, Horizon: 10 * sim.Second},
		{Graph: def, Mode: core.ModeKnownF, F: -1, Net: NetParams{Kind: NetPartial, GST: 500 * sim.Millisecond}, Horizon: 10 * sim.Second},
		{Graph: def, Mode: core.ModeKnownF, F: -1, Net: NetParams{Kind: NetAsync}, Horizon: 5 * sim.Second},
		{Graph: def, Mode: core.ModeKnownF, F: -1, Net: NetParams{Kind: NetSync},
			Auto: AutoByz{Kind: ByzSilent, Count: 1, Place: PlaceTail}, Horizon: 10 * sim.Second},
	}
}

// runTwin asserts that the live runtime and the simulator reach the same
// verdicts on one compiled cell. Verdict equality — agreement, validity,
// integrity, termination — is the twin contract; message counts and timings
// legitimately differ.
func runTwin(t *testing.T, p Params, transport string) {
	t.Helper()
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	const seed = 1
	simRes, err := c.Run(seed, false)
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := c.RunLive(seed, LiveOptions{Transport: transport, Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Verdict() != liveRes.Verdict() {
		t.Errorf("%s [%s]: sim verdict %q (%s) != live verdict %q (%s)",
			p.ID(), transport,
			simRes.Verdict(), simRes.FailureMode(),
			liveRes.Verdict(), liveRes.FailureMode())
	}
	if simRes.Consensus() != liveRes.Consensus() {
		t.Errorf("%s [%s]: sim consensus %t != live consensus %t",
			p.ID(), transport, simRes.Consensus(), liveRes.Consensus())
	}
	if simRes.Termination && liveRes.Termination {
		// Both terminated: the decided value must also coincide (validity is
		// per-run, but fig1b cells have deterministic winning proposals only
		// under agreement — compare the live values among themselves instead).
		var vals []string
		for id, pr := range liveRes.PerProcess {
			if pr.Decided && !pr.Byzantine {
				vals = append(vals, fmt.Sprintf("%v=%s", id, pr.Value))
			}
		}
		if !liveRes.Agreement {
			t.Errorf("%s [%s]: live run lost agreement: %v", p.ID(), transport, vals)
		}
	}
}

// TestTwinVerdictsPipe drives the pinned cells over the net.Pipe harness —
// every cell, every net model.
func TestTwinVerdictsPipe(t *testing.T) {
	if testing.Short() {
		t.Skip("live twin runs cost wall-clock time")
	}
	for i, p := range twinCells(t) {
		p := p
		t.Run(fmt.Sprintf("cell%d_%s", i, p.Net.Kind), func(t *testing.T) {
			runTwin(t, p, "pipe")
		})
	}
}

// TestTwinVerdictsTCP drives the synchronous cell over real localhost TCP
// sockets (one cell: the TCP path is the same code, only the dialer differs,
// and listener setup costs more per cell).
func TestTwinVerdictsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("live twin runs cost wall-clock time")
	}
	runTwin(t, twinCells(t)[0], "tcp")
}

// TestRunLiveRejectsFaults pins that chaos cells refuse the live runtime
// loudly instead of silently dropping injection.
func TestRunLiveRejectsFaults(t *testing.T) {
	def, err := graph.ParseDef("fig1b")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Graph: def, Mode: core.ModeKnownF, F: -1, Faults: FaultParams{Loss: 0.1}}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunLive(1, LiveOptions{}); err == nil {
		t.Fatal("RunLive accepted a fault-injection cell")
	}
}
