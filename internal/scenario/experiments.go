package scenario

import (
	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// Expect records the paper's predicted outcome for an experiment, so the
// harness can print paper-vs-measured rows.
type Expect struct {
	Consensus bool   // ✓ (consensus solved) or ✗
	Note      string // which property fails and why, per the paper
}

// Experiment pairs a runnable spec with the paper's prediction.
type Experiment struct {
	ID     string // e.g. "table1/partial/bft-cupft" or "fig2c"
	Spec   Spec
	Expect Expect
}

const (
	delta       = 5 * sim.Millisecond
	defHorizon  = 120 * sim.Second
	asyncDelta  = 2 * sim.Second // above the PBFT base timeout
	asyncFactor = 3
)

func syncNet() sim.NetworkModel { return sim.Synchronous{Delta: delta} }

// partialNet is eventually synchronous with chaotic (maximally delayed)
// links before GST.
func partialNet(gst sim.Time) sim.NetworkModel {
	return sim.PartialSync{GST: gst, Delta: delta, Slow: func(a, b model.ID) bool { return true }}
}

func asyncNet() sim.NetworkModel {
	return sim.AsyncAdversarial{Delta: asyncDelta, Factor: asyncFactor}
}

// slowDiscovery keeps the event volume of non-terminating async runs sane:
// knowledge still converges, consensus still cannot.
func slowDiscovery(s Spec) Spec {
	s.Discovery.Period = 500 * sim.Millisecond
	s.PollPeriod = 2 * sim.Second
	return s
}

// permissionedSpec is the known-n-known-f column: complete graph on seven
// processes, f = 2, two silent Byzantine members.
func permissionedSpec(name string, net sim.NetworkModel) Spec {
	g := graph.CompleteGraph(1, 2, 3, 4, 5, 6, 7)
	return Spec{
		Name:  name,
		Graph: g,
		Mode:  core.ModePermissioned,
		F:     2,
		Byz: map[model.ID]ByzSpec{
			3: {Kind: ByzSilent},
			6: {Kind: ByzSilent},
		},
		Net:     net,
		Horizon: defHorizon,
		Seed:    7,
	}
}

// bftCUPSpec is the unknown-n-known-f column: Fig 1b, f = 1, Byzantine 4
// advertising the false PD {1,2,3} from the paper's worked example.
func bftCUPSpec(name string, net sim.NetworkModel) Spec {
	fig := graph.Fig1b()
	return Spec{
		Name:  name,
		Graph: fig.G,
		Mode:  core.ModeKnownF,
		F:     fig.F,
		Byz: map[model.ID]ByzSpec{
			4: {Kind: ByzFakePD, ClaimedPD: model.NewIDSet(1, 2, 3)},
		},
		Net:     net,
		Horizon: defHorizon,
		Seed:    11,
	}
}

// bftCUPFTSpec is the unknown-n-unknown-f column: Fig 4a with silent
// Byzantine 4; no process receives f.
func bftCUPFTSpec(name string, net sim.NetworkModel) Spec {
	fig := graph.Fig4a()
	return Spec{
		Name:  name,
		Graph: fig.G,
		Mode:  core.ModeUnknownF,
		Byz: map[model.ID]ByzSpec{
			4: {Kind: ByzSilent},
		},
		Net:     net,
		Horizon: defHorizon,
		Seed:    13,
	}
}

// Table1 returns the nine cells of Table I: three knowledge models × three
// communication models. The async row uses the adversarial scheduler as a
// witness of [24]'s impossibility (observed non-termination by the horizon).
func Table1() []Experiment {
	gst := 2 * sim.Second
	mk := func(id string, spec Spec, expect Expect) Experiment {
		return Experiment{ID: "table1/" + id, Spec: spec, Expect: expect}
	}
	yes := Expect{Consensus: true}
	no := Expect{Consensus: false, Note: "deterministic consensus impossible in asynchrony [24]; adversarial schedule shows non-termination"}
	return []Experiment{
		mk("sync/known-n-known-f", permissionedSpec("table1/sync/known-n-known-f", syncNet()), yes),
		mk("sync/unknown-n-known-f", bftCUPSpec("table1/sync/unknown-n-known-f", syncNet()), yes),
		mk("sync/unknown-n-unknown-f", bftCUPFTSpec("table1/sync/unknown-n-unknown-f", syncNet()), yes),
		mk("partial/known-n-known-f", permissionedSpec("table1/partial/known-n-known-f", partialNet(gst)), yes),
		mk("partial/unknown-n-known-f", bftCUPSpec("table1/partial/unknown-n-known-f", partialNet(gst)), yes),
		mk("partial/unknown-n-unknown-f", bftCUPFTSpec("table1/partial/unknown-n-unknown-f", partialNet(gst)), yes),
		mk("async/known-n-known-f", slowDiscovery(withHorizon(permissionedSpec("table1/async/known-n-known-f", asyncNet()), 60*sim.Second)), no),
		mk("async/unknown-n-known-f", slowDiscovery(withHorizon(bftCUPSpec("table1/async/unknown-n-known-f", asyncNet()), 60*sim.Second)), no),
		mk("async/unknown-n-unknown-f", slowDiscovery(withHorizon(bftCUPFTSpec("table1/async/unknown-n-unknown-f", asyncNet()), 60*sim.Second)), no),
	}
}

func withHorizon(s Spec, h sim.Time) Spec {
	s.Horizon = h
	return s
}

// Fig1 returns the two Fig. 1 experiments: the invalid graph (1a) where the
// silent bridge process splits the system into islands that decide
// independently, and the valid graph (1b) where BFT-CUP solves consensus.
func Fig1() []Experiment {
	a := graph.Fig1a()
	b := graph.Fig1b()
	return []Experiment{
		{
			ID: "fig1a",
			Spec: Spec{
				Name:  "fig1a",
				Graph: a.G,
				Mode:  core.ModeKnownF,
				F:     a.F,
				Byz:   map[model.ID]ByzSpec{4: {Kind: ByzSilent}},
				Net:   syncNet(),
				// Both islands decide quickly; the violation is immediate.
				Horizon: 60 * sim.Second,
				Seed:    21,
			},
			Expect: Expect{Consensus: false, Note: "graph violates Theorem 1; the two knowledge islands decide independently (Agreement violated)"},
		},
		{
			ID: "fig1b",
			Spec: Spec{
				Name:    "fig1b",
				Graph:   b.G,
				Mode:    core.ModeKnownF,
				F:       b.F,
				Byz:     map[model.ID]ByzSpec{4: {Kind: ByzFakePD, ClaimedPD: model.NewIDSet(1, 2, 3)}},
				Net:     syncNet(),
				Horizon: 60 * sim.Second,
				Seed:    22,
			},
			Expect: Expect{Consensus: true, Note: "graph satisfies Theorem 1; sink {1,2,3,4} identified despite the Byzantine PD claim"},
		},
	}
}

// Fig2 returns the Theorem 7 construction: systems A and B solve consensus
// on their own; the merged system AB — all correct, requirements of the
// BFT-CUP model satisfied with f=0, but f unknown — violates Agreement under
// the indistinguishability schedule for every no-f rule (and for a wrong f).
func Fig2() []Experiment {
	a, b, ab := graph.Fig2a(), graph.Fig2b(), graph.Fig2c()
	abNet := func() sim.NetworkModel {
		return sim.PartialSync{
			GST:   30 * sim.Second,
			Delta: delta,
			Slow:  sim.SlowBetweenGroups(model.NewIDSet(1, 2, 3), model.NewIDSet(6, 7, 8)),
		}
	}
	sameU := map[model.ID]model.Value{}
	for _, id := range []model.ID{5, 6, 7, 8} {
		sameU[id] = model.Value("u")
	}
	sameV := map[model.ID]model.Value{}
	for _, id := range []model.ID{1, 2, 3, 4} {
		sameV[id] = model.Value("v")
	}
	abValues := map[model.ID]model.Value{}
	for id, v := range sameV {
		abValues[id] = v
	}
	for id, v := range sameU {
		abValues[id] = v
	}
	return []Experiment{
		{
			ID: "fig2a",
			Spec: Spec{
				Name: "fig2a", Graph: a.G, Mode: core.ModeKnownF, F: a.F,
				Byz:    map[model.ID]ByzSpec{4: {Kind: ByzSilent}},
				Values: sameV, Net: syncNet(), Horizon: 60 * sim.Second, Seed: 31,
			},
			Expect: Expect{Consensus: true, Note: "system A decides v"},
		},
		{
			ID: "fig2b",
			Spec: Spec{
				Name: "fig2b", Graph: b.G, Mode: core.ModeKnownF, F: b.F,
				Byz:    map[model.ID]ByzSpec{5: {Kind: ByzSilent}},
				Values: sameU, Net: syncNet(), Horizon: 60 * sim.Second, Seed: 32,
			},
			Expect: Expect{Consensus: true, Note: "system B decides u"},
		},
		{
			ID: "fig2c/naive",
			Spec: Spec{
				Name: "fig2c/naive", Graph: ab.G, Mode: core.ModeNaive,
				Values: abValues, Net: abNet(), Horizon: 90 * sim.Second, Seed: 33,
			},
			Expect: Expect{Consensus: false, Note: "Theorem 7: {1,2,3} decide v, {6,7,8} decide u"},
		},
		{
			ID: "fig2c/bft-cupft",
			Spec: Spec{
				Name: "fig2c/bft-cupft", Graph: ab.G, Mode: core.ModeUnknownF,
				Values: abValues, Net: abNet(), Horizon: 90 * sim.Second, Seed: 34,
			},
			Expect: Expect{Consensus: false, Note: "AB is 1-OSR but not extended (two maximal sinks): the Core algorithm splits too"},
		},
		{
			ID: "fig2c/wrong-f",
			Spec: Spec{
				Name: "fig2c/wrong-f", Graph: ab.G, Mode: core.ModeKnownF, F: 1,
				Values: abValues, Net: abNet(), Horizon: 90 * sim.Second, Seed: 35,
			},
			Expect: Expect{Consensus: false, Note: "a wrong threshold (f=1, real f=0) reproduces the same split"},
		},
	}
}

// Fig3 returns the false-sink experiment: on Fig 3a (valid 2-OSR, Byzantine
// 1 behaving correctly, links of {5,7,8} slow) the non-sink members
// {1,2,3,4,6} satisfy isSink(2, ·, {5,7}) and decide independently of the
// true sink {5,7,8}.
func Fig3() []Experiment {
	fig := graph.Fig3a()
	net := func() sim.NetworkModel {
		return sim.PartialSync{
			GST:   30 * sim.Second,
			Delta: delta,
			Slow:  sim.SlowBetweenGroups(model.NewIDSet(1, 2, 3, 4, 6), model.NewIDSet(5, 7, 8)),
		}
	}
	mk := func(id string, mode core.Mode, f int) Experiment {
		return Experiment{
			ID: id,
			Spec: Spec{
				Name: id, Graph: fig.G, Mode: mode, F: f,
				Byz:     map[model.ID]ByzSpec{1: {Kind: ByzAsCorrect}},
				Net:     net(),
				Horizon: 90 * sim.Second,
				Seed:    41,
			},
			Expect: Expect{Consensus: false, Note: "false sink {1,2,3,4,6}∪{5,7} (connectivity 3) outranks the true sink {5,7,8} (connectivity 2)"},
		}
	}
	return []Experiment{
		mk("fig3a/naive", core.ModeNaive, 0),
		mk("fig3a/bft-cupft", core.ModeUnknownF, 0),
	}
}

// Fig4 returns the BFT-CUPFT possibility experiments on both extended k-OSR
// graphs, plus the broken variant of Fig 4a without its added links.
func Fig4() []Experiment {
	a := graph.Fig4a()
	b := graph.Fig4b()
	broken := graph.Fig4aWithoutAddedLinks()
	return []Experiment{
		{
			ID: "fig4a",
			Spec: Spec{
				Name: "fig4a", Graph: a.G, Mode: core.ModeUnknownF,
				Byz:     map[model.ID]ByzSpec{4: {Kind: ByzSilent}},
				Net:     syncNet(),
				Horizon: 60 * sim.Second,
				Seed:    51,
			},
			Expect: Expect{Consensus: true, Note: "core {1,2,3,4} identified everywhere; sink of the full graph differs from the core"},
		},
		{
			ID: "fig4a/all-correct",
			Spec: Spec{
				Name: "fig4a/all-correct", Graph: a.G, Mode: core.ModeUnknownF,
				Net:     syncNet(),
				Horizon: 60 * sim.Second,
				Seed:    52,
			},
			Expect: Expect{Consensus: true, Note: "same core with the Byzantine seat occupied by a correct process"},
		},
		{
			ID: "fig4a/without-added-links",
			Spec: Spec{
				Name: "fig4a/without-added-links", Graph: broken.G, Mode: core.ModeUnknownF,
				Byz: map[model.ID]ByzSpec{4: {Kind: ByzSilent}},
				Net: sim.PartialSync{
					GST:   30 * sim.Second,
					Delta: delta,
					Slow:  sim.SlowTouching(model.NewIDSet(5)),
				},
				Horizon: 90 * sim.Second,
				Seed:    53,
			},
			Expect: Expect{Consensus: false, Note: "without 6→3 and 7→2, {6,7,8}∪{5} ties the core's connectivity: {5,6,7,8} can decide independently when 5 is slow"},
		},
		{
			ID: "fig4b",
			Spec: Spec{
				Name: "fig4b", Graph: b.G, Mode: core.ModeUnknownF,
				Byz: map[model.ID]ByzSpec{
					4: {Kind: ByzSilent},
					9: {Kind: ByzSilent},
				},
				Net:     syncNet(),
				Horizon: 60 * sim.Second,
				Seed:    54,
			},
			Expect: Expect{Consensus: true, Note: "core = sink = {8..15}; f = 2 tolerated without any process knowing it"},
		},
	}
}

// AllExperiments returns every experiment in presentation order.
func AllExperiments() []Experiment {
	var out []Experiment
	out = append(out, Table1()...)
	out = append(out, Fig1()...)
	out = append(out, Fig2()...)
	out = append(out, Fig3()...)
	out = append(out, Fig4()...)
	return out
}
