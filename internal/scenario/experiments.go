package scenario

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// Expect records the paper's predicted outcome for an experiment, so the
// harness can print paper-vs-measured rows.
type Expect struct {
	Consensus bool   // ✓ (consensus solved) or ✗
	Note      string // which property fails and why, per the paper
}

// Experiment pairs a runnable spec with the paper's prediction. Params is
// the data-driven description; Spec is its materialization (kept so existing
// callers — the benchmarks, the CLIs — run it directly).
type Experiment struct {
	ID string // e.g. "table1/partial/bft-cupft" or "fig2c"
	// Params is the data-driven description; Spec its materialization.
	Params Params
	Spec   Spec
	// Expect is the paper's prediction for the experiment.
	Expect Expect
}

const (
	defHorizon = 120 * sim.Second
)

func figDef(name string) graph.Def { return graph.Def{Kind: graph.DefFigure, Figure: name} }

// row is one line of the data-driven experiment tables: everything the
// harness needs to build and grade a run, as plain values.
type row struct {
	id     string
	params Params
	expect Expect
}

func build(rows []row) []Experiment {
	out := make([]Experiment, 0, len(rows))
	for _, r := range rows {
		r.params.Name = r.id
		spec, err := r.params.Spec()
		if err != nil {
			// The tables are static data; a row that cannot materialize is a
			// programming error caught by the package tests.
			panic(fmt.Sprintf("experiment %s: %v", r.id, err))
		}
		out = append(out, Experiment{ID: r.id, Params: r.params, Spec: spec, Expect: r.expect})
	}
	return out
}

// permissionedParams is the known-n-known-f column: complete graph on seven
// processes, f = 2, two silent Byzantine members.
func permissionedParams(net NetParams, horizon sim.Time, seed int64) Params {
	return Params{
		Graph: graph.Def{Kind: graph.DefComplete, N: 7},
		Mode:  core.ModePermissioned,
		F:     2,
		Byz: map[model.ID]ByzParams{
			3: {Kind: ByzSilent},
			6: {Kind: ByzSilent},
		},
		Net:     net,
		Horizon: horizon,
		Seed:    seed,
	}
}

// bftCUPParams is the unknown-n-known-f column: Fig 1b, f = 1, Byzantine 4
// advertising the false PD {1,2,3} from the paper's worked example.
func bftCUPParams(net NetParams, horizon sim.Time, seed int64) Params {
	return Params{
		Graph: figDef("fig1b"),
		Mode:  core.ModeKnownF,
		F:     -1,
		Byz: map[model.ID]ByzParams{
			4: {Kind: ByzFakePD, ClaimedPD: []model.ID{1, 2, 3}},
		},
		Net:     net,
		Horizon: horizon,
		Seed:    seed,
	}
}

// bftCUPFTParams is the unknown-n-unknown-f column: Fig 4a with silent
// Byzantine 4; no process receives f.
func bftCUPFTParams(net NetParams, horizon sim.Time, seed int64) Params {
	return Params{
		Graph: figDef("fig4a"),
		Mode:  core.ModeUnknownF,
		Byz: map[model.ID]ByzParams{
			4: {Kind: ByzSilent},
		},
		Net:     net,
		Horizon: horizon,
		Seed:    seed,
	}
}

func slow(p Params) Params {
	p.SlowDiscovery = true
	return p
}

// Table1 returns the nine cells of Table I: three knowledge models × three
// communication models. The async row uses the adversarial scheduler as a
// witness of [24]'s impossibility (observed non-termination by the horizon).
func Table1() []Experiment {
	sync := NetParams{Kind: NetSync}
	partial := NetParams{Kind: NetPartial, GST: 2 * sim.Second}
	async := NetParams{Kind: NetAsync}
	yes := Expect{Consensus: true}
	no := Expect{Consensus: false, Note: "deterministic consensus impossible in asynchrony [24]; adversarial schedule shows non-termination"}
	return build([]row{
		{"table1/sync/known-n-known-f", permissionedParams(sync, defHorizon, 7), yes},
		{"table1/sync/unknown-n-known-f", bftCUPParams(sync, defHorizon, 11), yes},
		{"table1/sync/unknown-n-unknown-f", bftCUPFTParams(sync, defHorizon, 13), yes},
		{"table1/partial/known-n-known-f", permissionedParams(partial, defHorizon, 7), yes},
		{"table1/partial/unknown-n-known-f", bftCUPParams(partial, defHorizon, 11), yes},
		{"table1/partial/unknown-n-unknown-f", bftCUPFTParams(partial, defHorizon, 13), yes},
		{"table1/async/known-n-known-f", slow(permissionedParams(async, 60*sim.Second, 7)), no},
		{"table1/async/unknown-n-known-f", slow(bftCUPParams(async, 60*sim.Second, 11)), no},
		{"table1/async/unknown-n-unknown-f", slow(bftCUPFTParams(async, 60*sim.Second, 13)), no},
	})
}

// Fig1 returns the two Fig. 1 experiments: the invalid graph (1a) where the
// silent bridge process splits the system into islands that decide
// independently, and the valid graph (1b) where BFT-CUP solves consensus.
func Fig1() []Experiment {
	return build([]row{
		{
			"fig1a",
			Params{
				Graph: figDef("fig1a"), Mode: core.ModeKnownF, F: -1,
				Byz: map[model.ID]ByzParams{4: {Kind: ByzSilent}},
				Net: NetParams{Kind: NetSync},
				// Both islands decide quickly; the violation is immediate.
				Horizon: 60 * sim.Second, Seed: 21,
			},
			Expect{Consensus: false, Note: "graph violates Theorem 1; the two knowledge islands decide independently (Agreement violated)"},
		},
		{
			"fig1b",
			Params{
				Graph: figDef("fig1b"), Mode: core.ModeKnownF, F: -1,
				Byz:     map[model.ID]ByzParams{4: {Kind: ByzFakePD, ClaimedPD: []model.ID{1, 2, 3}}},
				Net:     NetParams{Kind: NetSync},
				Horizon: 60 * sim.Second, Seed: 22,
			},
			Expect{Consensus: true, Note: "graph satisfies Theorem 1; sink {1,2,3,4} identified despite the Byzantine PD claim"},
		},
	})
}

// Fig2 returns the Theorem 7 construction: systems A and B solve consensus
// on their own; the merged system AB — all correct, requirements of the
// BFT-CUP model satisfied with f=0, but f unknown — violates Agreement under
// the indistinguishability schedule for every no-f rule (and for a wrong f).
func Fig2() []Experiment {
	abNet := NetParams{
		Kind:       NetPartial,
		GST:        30 * sim.Second,
		FastGroups: []model.IDSet{model.NewIDSet(1, 2, 3), model.NewIDSet(6, 7, 8)},
	}
	sameU := map[model.ID]model.Value{}
	for _, id := range []model.ID{5, 6, 7, 8} {
		sameU[id] = model.Value("u")
	}
	sameV := map[model.ID]model.Value{}
	for _, id := range []model.ID{1, 2, 3, 4} {
		sameV[id] = model.Value("v")
	}
	abValues := map[model.ID]model.Value{}
	for id, v := range sameV {
		abValues[id] = v
	}
	for id, v := range sameU {
		abValues[id] = v
	}
	return build([]row{
		{
			"fig2a",
			Params{
				Graph: figDef("fig2a"), Mode: core.ModeKnownF, F: -1,
				Byz:    map[model.ID]ByzParams{4: {Kind: ByzSilent}},
				Values: sameV, Net: NetParams{Kind: NetSync}, Horizon: 60 * sim.Second, Seed: 31,
			},
			Expect{Consensus: true, Note: "system A decides v"},
		},
		{
			"fig2b",
			Params{
				Graph: figDef("fig2b"), Mode: core.ModeKnownF, F: -1,
				Byz:    map[model.ID]ByzParams{5: {Kind: ByzSilent}},
				Values: sameU, Net: NetParams{Kind: NetSync}, Horizon: 60 * sim.Second, Seed: 32,
			},
			Expect{Consensus: true, Note: "system B decides u"},
		},
		{
			"fig2c/naive",
			Params{
				Graph: figDef("fig2c"), Mode: core.ModeNaive,
				Values: abValues, Net: abNet, Horizon: 90 * sim.Second, Seed: 33,
			},
			Expect{Consensus: false, Note: "Theorem 7: {1,2,3} decide v, {6,7,8} decide u"},
		},
		{
			"fig2c/bft-cupft",
			Params{
				Graph: figDef("fig2c"), Mode: core.ModeUnknownF,
				Values: abValues, Net: abNet, Horizon: 90 * sim.Second, Seed: 34,
			},
			Expect{Consensus: false, Note: "AB is 1-OSR but not extended (two maximal sinks): the Core algorithm splits too"},
		},
		{
			"fig2c/wrong-f",
			Params{
				Graph: figDef("fig2c"), Mode: core.ModeKnownF, F: 1,
				Values: abValues, Net: abNet, Horizon: 90 * sim.Second, Seed: 35,
			},
			Expect{Consensus: false, Note: "a wrong threshold (f=1, real f=0) reproduces the same split"},
		},
	})
}

// Fig3 returns the false-sink experiment: on Fig 3a (valid 2-OSR, Byzantine
// 1 behaving correctly, links of {5,7,8} slow) the non-sink members
// {1,2,3,4,6} satisfy isSink(2, ·, {5,7}) and decide independently of the
// true sink {5,7,8}.
func Fig3() []Experiment {
	net := NetParams{
		Kind:       NetPartial,
		GST:        30 * sim.Second,
		FastGroups: []model.IDSet{model.NewIDSet(1, 2, 3, 4, 6), model.NewIDSet(5, 7, 8)},
	}
	expect := Expect{Consensus: false, Note: "false sink {1,2,3,4,6}∪{5,7} (connectivity 3) outranks the true sink {5,7,8} (connectivity 2)"}
	mk := func(mode core.Mode) Params {
		return Params{
			Graph: figDef("fig3a"), Mode: mode,
			Byz:     map[model.ID]ByzParams{1: {Kind: ByzAsCorrect}},
			Net:     net,
			Horizon: 90 * sim.Second,
			Seed:    41,
		}
	}
	return build([]row{
		{"fig3a/naive", mk(core.ModeNaive), expect},
		{"fig3a/bft-cupft", mk(core.ModeUnknownF), expect},
	})
}

// Fig4 returns the BFT-CUPFT possibility experiments on both extended k-OSR
// graphs, plus the broken variant of Fig 4a without its added links.
func Fig4() []Experiment {
	return build([]row{
		{
			"fig4a",
			Params{
				Graph: figDef("fig4a"), Mode: core.ModeUnknownF,
				Byz:     map[model.ID]ByzParams{4: {Kind: ByzSilent}},
				Net:     NetParams{Kind: NetSync},
				Horizon: 60 * sim.Second,
				Seed:    51,
			},
			Expect{Consensus: true, Note: "core {1,2,3,4} identified everywhere; sink of the full graph differs from the core"},
		},
		{
			"fig4a/all-correct",
			Params{
				Graph: figDef("fig4a"), Mode: core.ModeUnknownF,
				Net:     NetParams{Kind: NetSync},
				Horizon: 60 * sim.Second,
				Seed:    52,
			},
			Expect{Consensus: true, Note: "same core with the Byzantine seat occupied by a correct process"},
		},
		{
			"fig4a/without-added-links",
			Params{
				Graph: figDef("fig4a-without-added-links"), Mode: core.ModeUnknownF,
				Byz: map[model.ID]ByzParams{4: {Kind: ByzSilent}},
				Net: NetParams{
					Kind:      NetPartial,
					GST:       30 * sim.Second,
					SlowTouch: model.NewIDSet(5),
				},
				Horizon: 90 * sim.Second,
				Seed:    53,
			},
			Expect{Consensus: false, Note: "without 6→3 and 7→2, {6,7,8}∪{5} ties the core's connectivity: {5,6,7,8} can decide independently when 5 is slow"},
		},
		{
			"fig4b",
			Params{
				Graph: figDef("fig4b"), Mode: core.ModeUnknownF,
				Byz: map[model.ID]ByzParams{
					4: {Kind: ByzSilent},
					9: {Kind: ByzSilent},
				},
				Net:     NetParams{Kind: NetSync},
				Horizon: 60 * sim.Second,
				Seed:    54,
			},
			Expect{Consensus: true, Note: "core = sink = {8..15}; f = 2 tolerated without any process knowing it"},
		},
	})
}

// AllExperiments returns every experiment in presentation order.
func AllExperiments() []Experiment {
	var out []Experiment
	out = append(out, Table1()...)
	out = append(out, Fig1()...)
	out = append(out, Fig2()...)
	out = append(out, Fig3()...)
	out = append(out, Fig4()...)
	return out
}
