package scenario

import (
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// allByzKinds is the complete adversary zoo, in declaration order.
var allByzKinds = []ByzKind{
	ByzSilent, ByzFakePD, ByzEquivPD, ByzAsCorrect,
	ByzDelay, ByzSelectiveSilent, ByzCollude,
}

// zooParams builds one traced conformance cell: the given behavior placed on
// the fig1b tail under the given network model. Collusion gets two members
// (a one-member group never shares anything).
func zooParams(kind ByzKind, net NetParams) Params {
	count := 1
	if kind == ByzCollude {
		count = 2
	}
	return Params{
		Graph:         graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:          core.ModeKnownF,
		F:             -1,
		Auto:          AutoByz{Kind: kind, Count: count, Place: PlaceTail},
		Net:           net,
		Horizon:       10 * sim.Second,
		Seed:          5,
		SlowDiscovery: net.Kind == NetAsync,
		Trace:         true,
	}
}

// TestZooConformance runs every adversary-zoo behavior under all three
// network models and pins trace-digest determinism three ways: a fresh
// pipeline run, and two further runs of the same Compiled through one shared
// Runner. The shared-Runner reruns are the regression net for per-run
// Byzantine state — a colluding group accidentally carried in the Compiled
// (or leaking through the Runner's scratch) would replay the previous run's
// pooled records and shift the trace.
func TestZooConformance(t *testing.T) {
	nets := []NetParams{
		{Kind: NetSync},
		{Kind: NetPartial, GST: 2 * sim.Second},
		{Kind: NetAsync},
	}
	var shared Runner
	for _, kind := range allByzKinds {
		for _, net := range nets {
			kind, net := kind, net
			t.Run(kind.String()+"/"+net.Kind.String(), func(t *testing.T) {
				p := zooParams(kind, net)
				c, err := p.Compile()
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := c.Run(p.Seed, true)
				if err != nil {
					t.Fatal(err)
				}
				if fresh.TraceEvents == 0 {
					t.Fatal("trace recorded no events")
				}
				digest, events := fresh.TraceDigest, fresh.TraceEvents
				for i := 0; i < 2; i++ {
					res, err := shared.Run(c, p.Seed, true)
					if err != nil {
						t.Fatal(err)
					}
					if res.TraceDigest != digest || res.TraceEvents != events {
						t.Fatalf("shared-runner rerun %d diverged: %s (%d events) vs fresh %s (%d events)",
							i, res.TraceDigest, res.TraceEvents, digest, events)
					}
				}
			})
		}
	}
}

// conformanceGraphs returns the graph families the forgery default must hold
// on.
func conformanceGraphs(t *testing.T) map[string]*graph.Digraph {
	t.Helper()
	out := make(map[string]*graph.Digraph)
	for _, fig := range graph.AllFigures() {
		out[fig.Name] = fig.G
	}
	out["complete:7"] = graph.CompleteGraph(1, 2, 3, 4, 5, 6, 7)
	rng := rand.New(rand.NewSource(11))
	kg, _, err := graph.GenKOSR(rng, graph.GenSpec{SinkSize: 5, NonSinkSize: 3, K: 2, ExtraEdgeP: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	out["kosr:gen"] = kg
	return out
}

// TestForgedClaimNeverMatchesRealPD is the regression test for the FakePD
// nil-claim bug: the default claim must be an actual forgery — different from
// the process's real out-set — for every process of every graph family, and
// must reproduce the Section III worked example on fig1b (process 4 claims
// {1,2,3}).
func TestForgedClaimNeverMatchesRealPD(t *testing.T) {
	for name, g := range conformanceGraphs(t) {
		for _, id := range g.Nodes() {
			claim := ForgedClaim(g, id)
			if claim.Len() == 0 {
				t.Fatalf("%s p%d: empty forged claim", name, uint64(id))
			}
			if claim.Equal(g.OutSet(id)) {
				t.Fatalf("%s p%d: forged claim %v equals the real out-set", name, uint64(id), claim)
			}
		}
	}
	fig := graph.Fig1b()
	// The Section III shape — claim the three lowest-ID other processes —
	// on a tail node whose real edges point elsewhere ({5,6,7} for p8).
	if got := ForgedClaim(fig.G, 8); !got.Equal(model.NewIDSet(1, 2, 3)) {
		t.Fatalf("fig1b p8 forged claim %v, want {1,2,3}", got)
	}
	// p4's real out-set IS {1,2,3}, so the pattern alone would be honest;
	// the self-edge fallback must kick in (no real PD contains its owner).
	if got := ForgedClaim(fig.G, 4); !got.Equal(model.NewIDSet(1, 2, 3, 4)) {
		t.Fatalf("fig1b p4 forged claim %v, want the self-edge fallback {1,2,3,4}", got)
	}
}

// TestFakePDNilClaimAdvertisesForgery pins the fixed default at the behavior
// level: a fake-pd process with no explicit claim must run exactly as if
// ForgedClaim had been passed explicitly — and differently from a process
// honestly advertising its real out-set (the old, buggy default).
func TestFakePDNilClaimAdvertisesForgery(t *testing.T) {
	base := func() Params {
		return Params{
			Graph:   graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
			Mode:    core.ModeKnownF,
			F:       -1,
			Net:     NetParams{Kind: NetSync},
			Horizon: 10 * sim.Second,
			Seed:    7,
			Trace:   true,
		}
	}
	digest := func(t *testing.T, p Params) string {
		t.Helper()
		spec, err := p.Spec()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.TraceDigest
	}
	fig := graph.Fig1b()

	nilClaim := base()
	nilClaim.Byz = map[model.ID]ByzParams{4: {Kind: ByzFakePD}}

	explicitForged := base()
	explicitForged.Byz = map[model.ID]ByzParams{4: {Kind: ByzFakePD, ClaimedPD: ForgedClaim(fig.G, 4).Sorted()}}

	honest := base()
	honest.Byz = map[model.ID]ByzParams{4: {Kind: ByzFakePD, ClaimedPD: fig.G.OutSet(4).Sorted()}}

	dNil, dForged, dHonest := digest(t, nilClaim), digest(t, explicitForged), digest(t, honest)
	if dNil != dForged {
		t.Fatalf("nil claim (%s) diverges from explicit ForgedClaim (%s)", dNil, dForged)
	}
	if dNil == dHonest {
		t.Fatal("nil claim still runs as the honest out-set — the forgery default regressed")
	}
}

// TestAltRecipientsInCompileKey is the regression test for the invisible-
// chooser bug: two cells differing only in the equivocation recipient set
// must not share a compile cache entry, while recipient-set order must not
// split one. The behavioral half asserts the recipient set actually steers
// the run (different sets, different traces).
func TestAltRecipientsInCompileKey(t *testing.T) {
	base := func(recipients []model.ID) Params {
		return Params{
			Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
			Mode:  core.ModeKnownF,
			F:     -1,
			Byz: map[model.ID]ByzParams{
				4: {Kind: ByzEquivPD, ClaimedPD: []model.ID{1, 2, 3}, AltPD: []model.ID{1, 2}, AltRecipients: recipients},
			},
			Net:     NetParams{Kind: NetSync},
			Horizon: 10 * sim.Second,
			Seed:    7,
			Trace:   true,
		}
	}
	a, b := base([]model.ID{1, 3}), base([]model.ID{2, 6})
	if a.CompileKey() == b.CompileKey() {
		t.Fatal("different AltRecipients share a CompileKey — the compile cache would replay the wrong equivocation")
	}
	if reordered := base([]model.ID{3, 1}); a.CompileKey() != reordered.CompileKey() {
		t.Fatal("recipient-set order split the CompileKey")
	}
	run := func(t *testing.T, p Params) string {
		t.Helper()
		spec, err := p.Spec()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.TraceDigest
	}
	if run(t, a) == run(t, b) {
		t.Fatal("different AltRecipients produced identical traces — the set is not reaching the equivocator")
	}
}

// TestPlaceWorstMatchesSearch asserts the byz=worst axis value resolves to
// exactly the subset the placement search reports, and that the resulting
// cells carry the behavior on those processes.
func TestPlaceWorstMatchesSearch(t *testing.T) {
	p := Params{
		Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:  core.ModeKnownF,
		F:     -1,
		Auto:  AutoByz{Kind: ByzSilent, Count: 2, Place: PlaceWorst},
		Seed:  1,
	}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// The kosr-level test pins WorstPlacement(fig1b, 2) = {1,2}; the compiled
	// scenario must place exactly those.
	want := model.NewIDSet(1, 2)
	got := model.NewIDSet()
	for id, spec := range c.Byz {
		got.Add(id)
		if spec.Kind != ByzSilent {
			t.Fatalf("placed p%d with kind %v, want silent", uint64(id), spec.Kind)
		}
	}
	if !got.Equal(want) {
		t.Fatalf("byz=worst placed %v, want %v", got, want)
	}
	if p.ByzLabel() != "silent×2@worst" {
		t.Fatalf("axis label %q, want silent×2@worst", p.ByzLabel())
	}
}

// TestParseAutoByz round-trips the axis syntax, including the ASCII spelling
// and the error paths.
func TestParseAutoByz(t *testing.T) {
	good := map[string]AutoByz{
		"none":                    {},
		"":                        {},
		"silent×2@worst":          {Kind: ByzSilent, Count: 2, Place: PlaceWorst},
		"silentx2@worst":          {Kind: ByzSilent, Count: 2, Place: PlaceWorst},
		"delay×1":                 {Kind: ByzDelay, Count: 1, Place: PlaceTail},
		"collude×3@sink":          {Kind: ByzCollude, Count: 3, Place: PlaceSink},
		"selective-silent×1@tail": {Kind: ByzSelectiveSilent, Count: 1, Place: PlaceTail},
	}
	for in, want := range good {
		got, err := ParseAutoByz(in)
		if err != nil {
			t.Fatalf("ParseAutoByz(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseAutoByz(%q) = %+v, want %+v", in, got, want)
		}
		if in != "" && got.String() != AutoByz(want).String() {
			t.Fatalf("round-trip %q → %q", in, got.String())
		}
	}
	for _, in := range []string{"silent", "×2", "silent×0", "silent×2@nowhere", "ghost×1"} {
		if _, err := ParseAutoByz(in); err == nil {
			t.Fatalf("ParseAutoByz(%q) accepted", in)
		}
	}
}
