package scenario

import (
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// compileTestParams is a representative compiled-path scenario: fig1b with
// the worked example's Byzantine process.
func compileTestParams() Params {
	return Params{
		Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:  core.ModeKnownF,
		F:     -1,
		Byz: map[model.ID]ByzParams{
			4: {Kind: ByzFakePD, ClaimedPD: []model.ID{1, 2, 3}},
		},
		Net:  NetParams{Kind: NetSync},
		Seed: 31,
	}
}

// TestCompiledRunMatchesSpecRun pins the Compile → Run pipeline to the
// classic Spec path: same graded outcome, traffic counters and trace digest,
// whether the Compiled is run once or re-run by one Runner across seeds.
func TestCompiledRunMatchesSpecRun(t *testing.T) {
	p := compileTestParams()
	p.Trace = true
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var r Runner
	for _, seed := range []int64{31, 32, 33} {
		q := p
		q.Seed = seed
		spec, err := q.Spec()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Run(c, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if got.TraceDigest != want.TraceDigest || got.TraceEvents != want.TraceEvents {
			t.Fatalf("seed %d: compiled run diverges from spec run: %s/%d vs %s/%d",
				seed, got.TraceDigest[:16], got.TraceEvents, want.TraceDigest[:16], want.TraceEvents)
		}
		if got.Consensus() != want.Consensus() || got.Messages != want.Messages ||
			got.Bytes != want.Bytes || got.Elapsed != want.Elapsed {
			t.Fatalf("seed %d: compiled run graded differently", seed)
		}
		if got.Name != want.Name {
			t.Fatalf("seed %d: compiled run named %q, spec run %q", seed, got.Name, want.Name)
		}
	}
}

// TestCompiledIsReusableAcrossRunners asserts a single Compiled may be run
// by independent Runners (the per-worker sharing pattern) without one run
// contaminating another: interleaved runs under different seeds reproduce
// the digests of isolated runs.
func TestCompiledIsReusableAcrossRunners(t *testing.T) {
	p := compileTestParams()
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	digest := func(r *Runner, seed int64) string {
		res, err := r.Run(c, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		return res.TraceDigest
	}
	var solo Runner
	wantA, wantB := digest(&solo, 1), digest(&solo, 2)
	var r1, r2 Runner
	if d := digest(&r1, 1); d != wantA {
		t.Fatalf("runner 1 seed 1 diverged: %s vs %s", d[:16], wantA[:16])
	}
	if d := digest(&r2, 2); d != wantB {
		t.Fatalf("runner 2 seed 2 diverged: %s vs %s", d[:16], wantB[:16])
	}
	if d := digest(&r1, 2); d != wantB {
		t.Fatalf("runner 1 re-used for seed 2 diverged: %s vs %s", d[:16], wantB[:16])
	}
}

// TestSpecDefaultsApplied pins applyDefaults through both entry points: a
// Spec with no net and no horizon runs under sync/5ms with a 60s horizon
// (the historical Run defaults), and Params.Spec fills the same values.
func TestSpecDefaultsApplied(t *testing.T) {
	fig := graph.Fig1b()
	res, err := Run(Spec{Name: "defaults", Graph: fig.G, Mode: core.ModeKnownF, F: fig.F, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus() {
		t.Fatalf("defaulted run failed: %s", res.FailureMode())
	}
	spec, err := (Params{Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"}, Mode: core.ModeKnownF, F: -1, Seed: 3}).Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Horizon != 60*sim.Second {
		t.Fatalf("Params.Spec horizon %v, want 60s", spec.Horizon)
	}
	if spec.Net == nil {
		t.Fatal("Params.Spec left the net model nil")
	}
}

// cellAllocBudget gates the per-cell steady-state allocation count of the
// compiled fast path (the per-cell analogue of the engine's
// TestEventPathAllocsSteadyState). Before the Compile → Run split and the
// discovery/crypto hot-path work this cell allocated ~75,000 objects per run
// (measured at the PR-3 tree: per-request SETPDS re-encoding, per-record
// unmarshalling, per-cell keygen, fresh engine and maps); the compiled path
// brought it to ~6,000 and the incremental sink/core search engine to
// ~1,600. The budget sits ~3× over the current number, so it trips on any
// wholesale regression of either mechanism without flaking on allocator
// noise.
const cellAllocBudget = 5_000

// TestCompiledRunAllocsSteadyState gates the fast path's allocation win from
// both sides: under the absolute budget above, and never worse than the
// uncached Spec-then-Run path for the same cell.
func TestCompiledRunAllocsSteadyState(t *testing.T) {
	p := compileTestParams()
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var r Runner
	if _, err := r.Run(c, p.Seed, false); err != nil {
		t.Fatal(err)
	}
	cached := testing.AllocsPerRun(5, func() {
		if _, err := r.Run(c, p.Seed, false); err != nil {
			t.Fatal(err)
		}
	})
	uncached := testing.AllocsPerRun(5, func() {
		spec, err := p.Spec()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(spec); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/run: cached %.0f, uncached %.0f (budget %d)", cached, uncached, cellAllocBudget)
	if cached > cellAllocBudget {
		t.Fatalf("steady-state compiled run allocates %.0f objects (budget %d) — the per-cell fast path regressed", cached, cellAllocBudget)
	}
	if cached > uncached {
		t.Fatalf("compiled run allocates more (%.0f) than the uncached path (%.0f)", cached, uncached)
	}
}
