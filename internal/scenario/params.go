package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// NetKind selects one of the paper's three communication assumptions.
type NetKind int

// Network kinds.
const (
	NetSync NetKind = iota
	NetPartial
	NetAsync
)

// String implements fmt.Stringer.
func (k NetKind) String() string {
	switch k {
	case NetSync:
		return "sync"
	case NetPartial:
		return "partial"
	case NetAsync:
		return "async"
	default:
		return fmt.Sprintf("net(%d)", int(k))
	}
}

// ParseNetKind parses the String form.
func ParseNetKind(s string) (NetKind, error) {
	switch s {
	case "sync":
		return NetSync, nil
	case "partial":
		return NetPartial, nil
	case "async":
		return NetAsync, nil
	default:
		return 0, fmt.Errorf("unknown network kind %q (want sync|partial|async)", s)
	}
}

// NetParams is a pure-data description of a network model; Model builds the
// corresponding sim.NetworkModel. Zero values pick the defaults the
// experiment suite uses throughout.
type NetParams struct {
	// Kind selects the communication assumption.
	Kind NetKind
	// Delta is the post-GST (or always, for sync) delivery bound.
	// Default 5ms.
	Delta sim.Time
	// GST is the global stabilization time for NetPartial. Default 2s.
	GST sim.Time
	// FastGroups, when non-empty, keeps only intra-group links fast before
	// GST (the Theorem 7 schedules). SlowTouch slows every link touching one
	// of its members (the Fig. 4 schedule). When both are empty, every link
	// is slow before GST.
	FastGroups []model.IDSet
	// SlowTouch slows every link touching one of its members before GST.
	SlowTouch model.IDSet
	// AsyncDelta and AsyncFactor tune the adversarial scheduler.
	// Defaults 2s / 3.
	AsyncDelta sim.Time
	// AsyncFactor is the delay growth factor (floored at 3).
	AsyncFactor int64
}

// Label renders the network model with its distinguishing parameters
// (effective defaults applied), so sweeps over GST, delta or slow-link
// schedules stay attributable in cell IDs and per-axis statistics.
func (np NetParams) Label() string {
	delta := np.Delta
	if delta <= 0 {
		delta = 5 * sim.Millisecond
	}
	deltaPart := ""
	if delta != 5*sim.Millisecond {
		deltaPart = ",delta=" + delta.String()
	}
	switch np.Kind {
	case NetPartial:
		gst := np.GST
		if gst <= 0 {
			gst = 2 * sim.Second
		}
		parts := []string{"gst=" + gst.String()}
		if deltaPart != "" {
			parts = append(parts, deltaPart[1:])
		}
		if len(np.FastGroups) > 0 {
			var gs []string
			for _, g := range np.FastGroups {
				gs = append(gs, g.String())
			}
			parts = append(parts, "fast="+strings.Join(gs, "|"))
		}
		if np.SlowTouch.Len() > 0 {
			parts = append(parts, "slow-touch="+np.SlowTouch.String())
		}
		return "partial(" + strings.Join(parts, ",") + ")"
	case NetAsync:
		ad := np.AsyncDelta
		if ad <= 0 {
			ad = 2 * sim.Second
		}
		f := np.AsyncFactor
		if f <= 0 {
			f = 3
		}
		if ad == 2*sim.Second && f == 3 {
			return "async"
		}
		return fmt.Sprintf("async(delta=%s,factor=%d)", ad, f)
	default:
		if deltaPart != "" {
			return "sync(" + deltaPart[1:] + ")"
		}
		return "sync"
	}
}

// Model materializes the network model.
func (np NetParams) Model() sim.NetworkModel {
	delta := np.Delta
	if delta <= 0 {
		delta = 5 * sim.Millisecond
	}
	switch np.Kind {
	case NetPartial:
		gst := np.GST
		if gst <= 0 {
			gst = 2 * sim.Second
		}
		slow := func(a, b model.ID) bool { return true }
		switch {
		case len(np.FastGroups) > 0:
			slow = sim.SlowBetweenGroups(np.FastGroups...)
		case np.SlowTouch.Len() > 0:
			slow = sim.SlowTouching(np.SlowTouch)
		}
		return sim.PartialSync{GST: gst, Delta: delta, Slow: slow}
	case NetAsync:
		ad := np.AsyncDelta
		if ad <= 0 {
			ad = 2 * sim.Second
		}
		f := np.AsyncFactor
		if f <= 0 {
			f = 3
		}
		return sim.AsyncAdversarial{Delta: ad, Factor: f}
	default:
		return sim.Synchronous{Delta: delta}
	}
}

// ByzParams is the pure-data form of ByzSpec (no callbacks): AltRecipients
// replaces ChooseAlt with an explicit recipient set.
type ByzParams struct {
	// Kind selects the behavior.
	Kind ByzKind
	// ClaimedPD is the advertised PD (nil: the kind's default — see
	// ByzSpec.ClaimedPD).
	ClaimedPD []model.ID
	// AltPD is the second record for ByzEquivPD.
	AltPD []model.ID
	// AltRecipients lists the peers that receive AltPD under ByzEquivPD
	// (empty keeps the default even-ID split).
	AltRecipients []model.ID
	// HoldRounds is the ByzDelay reply delay in discovery periods.
	HoldRounds int
	// AnswerTo is the ByzSelectiveSilent peer subset.
	AnswerTo []model.ID
	// Withhold lists record owners a ByzCollude member censors.
	Withhold []model.ID
}

// ByzPlace selects a deterministic automatic placement for swept Byzantine
// processes.
type ByzPlace int

// Placements.
const (
	// PlaceFigure uses the figure's scripted Byzantine set (generators have
	// none, so it degenerates to no Byzantine processes).
	PlaceFigure ByzPlace = iota
	// PlaceTail picks the highest-ID processes (the non-sink/non-core region
	// of generated graphs), which keeps the planted sink intact.
	PlaceTail
	// PlaceSink picks the lowest-ID sink/core members — adversarial
	// placement that stresses the committee itself.
	PlaceSink
	// PlaceWorst runs the worst-case placement search: per compiled graph,
	// every Count-subset is graded by the knowledge margin the correct-only
	// view retains (kosr.WorstPlacement), and the minimal-margin subset is
	// placed. Deterministic per graph, so sweep fingerprints stay stable.
	PlaceWorst
)

// String implements fmt.Stringer.
func (p ByzPlace) String() string {
	switch p {
	case PlaceFigure:
		return "figure"
	case PlaceTail:
		return "tail"
	case PlaceSink:
		return "sink"
	case PlaceWorst:
		return "worst"
	default:
		return fmt.Sprintf("place(%d)", int(p))
	}
}

// ParseByzKind parses a ByzKind's String form.
func ParseByzKind(s string) (ByzKind, error) {
	switch s {
	case "silent":
		return ByzSilent, nil
	case "fake-pd":
		return ByzFakePD, nil
	case "equiv-pd":
		return ByzEquivPD, nil
	case "as-correct":
		return ByzAsCorrect, nil
	case "delay":
		return ByzDelay, nil
	case "selective-silent":
		return ByzSelectiveSilent, nil
	case "collude":
		return ByzCollude, nil
	default:
		return 0, fmt.Errorf("unknown byzantine kind %q (want silent|fake-pd|equiv-pd|as-correct|delay|selective-silent|collude)", s)
	}
}

// ParseByzPlace parses a ByzPlace's String form.
func ParseByzPlace(s string) (ByzPlace, error) {
	switch s {
	case "figure":
		return PlaceFigure, nil
	case "tail":
		return PlaceTail, nil
	case "sink":
		return PlaceSink, nil
	case "worst":
		return PlaceWorst, nil
	default:
		return 0, fmt.Errorf("unknown byzantine placement %q (want figure|tail|sink|worst)", s)
	}
}

// AutoByz places Count Byzantine processes of the given Kind according to
// Place. The zero value means "no automatic placement".
type AutoByz struct {
	// Kind is the behavior every placed process gets.
	Kind ByzKind
	// Count is how many processes to place (0 = none).
	Count int
	// Place selects which processes.
	Place ByzPlace
}

// String renders a compact axis label.
func (a AutoByz) String() string {
	if a.Count == 0 {
		return "none"
	}
	return fmt.Sprintf("%s×%d@%s", a.Kind, a.Count, a.Place)
}

// ParseAutoByz parses the String form — "kind×count@place" (an ASCII "x"
// also separates kind and count, for shells without the multiplication
// sign), "kind×count" (default tail placement), or "none".
func ParseAutoByz(s string) (AutoByz, error) {
	if s == "" || s == "none" {
		return AutoByz{}, nil
	}
	rest := s
	place := PlaceTail
	if at := strings.LastIndexByte(rest, '@'); at >= 0 {
		p, err := ParseByzPlace(rest[at+1:])
		if err != nil {
			return AutoByz{}, fmt.Errorf("auto byz %q: %w", s, err)
		}
		place, rest = p, rest[:at]
	}
	sep := strings.LastIndex(rest, "×")
	sepLen := len("×")
	if sep < 0 {
		sep, sepLen = strings.LastIndexByte(rest, 'x'), 1
	}
	if sep <= 0 {
		return AutoByz{}, fmt.Errorf("auto byz %q: want kind×count[@place] or none", s)
	}
	kind, err := ParseByzKind(rest[:sep])
	if err != nil {
		return AutoByz{}, fmt.Errorf("auto byz %q: %w", s, err)
	}
	count, err := strconv.Atoi(rest[sep+sepLen:])
	if err != nil || count <= 0 {
		return AutoByz{}, fmt.Errorf("auto byz %q: bad count %q", s, rest[sep+sepLen:])
	}
	return AutoByz{Kind: kind, Count: count, Place: place}, nil
}

// Params is a fully data-driven experiment description: every field is a
// plain value (no graphs, callbacks or network models), so Params can be
// swept by the matrix engine, serialized, diffed and reproduced from a CLI
// flag string. Spec materializes it.
type Params struct {
	// Name labels the cell; empty defaults to ID().
	Name string
	// Graph is the knowledge-connectivity-graph family to build.
	Graph graph.Def
	// GraphSeed drives random graph families; 0 falls back to Seed.
	GraphSeed int64
	// Mode selects the committee-identification protocol.
	Mode core.Mode
	// F is the threshold handed to processes. -1 uses the graph family's
	// natural threshold (figure F, k-1, f_G, ⌊(n-1)/3⌋).
	F int
	// Byz assigns explicit Byzantine behaviors; Auto adds swept placements
	// on top (explicit entries win on collision).
	Byz map[model.ID]ByzParams
	// Auto places additional swept Byzantine processes.
	Auto AutoByz
	// Values maps processes to proposals (defaults to "v<id>").
	Values map[model.ID]model.Value
	// Net describes the network model.
	Net NetParams
	// Horizon bounds the run. Default 60s.
	Horizon sim.Time
	// Seed drives the simulation (and graph generation when GraphSeed is 0).
	Seed int64
	// SlowDiscovery stretches the gossip/poll periods, keeping the event
	// volume of non-terminating (async) runs sane.
	SlowDiscovery bool
	// Faults is the chaos fault-injection axis: link loss/duplication/
	// reorder, partition windows and crash/restart churn, all serializable
	// data resolved at compile time. The zero value means no injection and
	// leaves CompileKey, labels and traces byte-identical to pre-fault
	// scenarios. Active faults arm the hardened protocol profile unless
	// Faults.Unhardened opts out.
	Faults FaultParams
	// Insecure replaces the Ed25519 keyring with the cryptox insecure suite
	// (identity-tagged, unverified signatures). Protocol decisions are
	// unchanged — nodes never branch on signature bytes, only on
	// verification verdicts, and the insecure verifier accepts exactly what
	// Ed25519 would — but byte counts and therefore sweep fingerprints are
	// NOT comparable with secure runs. Opt-in for crypto-dominated profiling
	// sweeps; anchor fingerprints always use the real suite.
	Insecure bool
	// Trace enables event/decision trace digests on the result.
	Trace bool
}

// CellLabels are the seed-independent axis labels of one Params — what a
// matrix outcome echoes as its Graph/Mode/Net/Byz/F columns, and the prefix
// of the cell identifier. Computing them once per compiled scenario (instead
// of once per cell) is part of the compile-once fast path.
type CellLabels struct {
	// Graph / Mode / Net / Byz are the rendered axis labels.
	Graph, Mode, Net, Byz string
	// F is the unresolved fault-threshold knob (-1 = family default, and
	// then omitted from the ID).
	F int
}

// Labels renders the seed-independent axis labels. Active fault injection is
// folded into the network label (it is a property of the channel, not a new
// column), so zero-fault cell IDs and outcome rows are unchanged.
func (p Params) Labels() CellLabels {
	net := p.Net.Label()
	if p.Faults.Enabled() {
		net += "+faults(" + p.Faults.Label() + ")"
	}
	return CellLabels{
		Graph: p.Graph.String(),
		Mode:  p.Mode.String(),
		Net:   net,
		Byz:   p.ByzLabel(),
		F:     p.F,
	}
}

// IDPrefix renders the seed-independent prefix of the cell identifier:
// graph/mode/net/byz[/f=…].
func (l CellLabels) IDPrefix() string {
	parts := []string{l.Graph, l.Mode, l.Net, "byz=" + l.Byz}
	if l.F >= 0 {
		parts = append(parts, fmt.Sprintf("f=%d", l.F))
	}
	return strings.Join(parts, "/")
}

// IDFor completes the cell identifier for one seed.
func (l CellLabels) IDFor(seed int64) string {
	return l.IDPrefix() + "/seed=" + strconv.FormatInt(seed, 10)
}

// ID renders a stable, human-readable cell identifier:
// graph/mode/net/byz/f=…/seed=….
func (p Params) ID() string {
	return p.Labels().IDFor(p.Seed)
}

// nameOrID attributes errors: the fixed name when one was given, the
// derived cell ID otherwise. Only error paths pay the ID rendering.
func (p Params) nameOrID() string {
	if p.Name != "" {
		return p.Name
	}
	return p.ID()
}

// ByzLabel renders the Byzantine assignment as a stable axis label.
func (p Params) ByzLabel() string {
	if len(p.Byz) == 0 && p.Auto.Count == 0 {
		return "none"
	}
	var parts []string
	if len(p.Byz) > 0 {
		ids := make([]model.ID, 0, len(p.Byz))
		for id := range p.Byz {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			parts = append(parts, fmt.Sprintf("%d:%s", uint64(id), p.Byz[id].Kind))
		}
	}
	if p.Auto.Count > 0 {
		parts = append(parts, p.Auto.String())
	}
	return strings.Join(parts, ",")
}

// Validate applies the structural checks that need no materialization: the
// graph def is well-formed and the scalar knobs are in range. The matrix
// engine's lazy cell sources validate one probe cell per axis value through
// it instead of building every cell's graph up front; errors Validate cannot
// see (a generator spec unsatisfiable for some seed) still surface from
// Spec when the cell runs.
func (p Params) Validate() error {
	if err := p.Graph.Validate(); err != nil {
		return fmt.Errorf("params %q: %w", p.nameOrID(), err)
	}
	if p.F < -1 {
		return fmt.Errorf("params %q: fault threshold %d (want -1 for the family default, or ≥ 0)", p.nameOrID(), p.F)
	}
	if p.Horizon < 0 {
		return fmt.Errorf("params %q: negative horizon %v", p.nameOrID(), p.Horizon)
	}
	// Net-timing knobs: zero is the documented "use the default" sentinel
	// (Delta→5ms, GST→2s, AsyncDelta→2s, AsyncFactor→3); negatives were
	// previously swallowed by the same default-filling and are rejected
	// loudly instead.
	if p.Net.Delta < 0 {
		return fmt.Errorf("params %q: negative delta %v (0 means the 5ms default)", p.nameOrID(), p.Net.Delta)
	}
	if p.Net.GST < 0 {
		return fmt.Errorf("params %q: negative GST %v (0 means the 2s default)", p.nameOrID(), p.Net.GST)
	}
	if p.Net.AsyncDelta < 0 {
		return fmt.Errorf("params %q: negative async delta %v (0 means the 2s default)", p.nameOrID(), p.Net.AsyncDelta)
	}
	if p.Net.AsyncFactor < 0 {
		return fmt.Errorf("params %q: negative async factor %d (0 means the default of 3)", p.nameOrID(), p.Net.AsyncFactor)
	}
	if p.Auto.Count < 0 {
		return fmt.Errorf("params %q: negative byzantine count %d", p.nameOrID(), p.Auto.Count)
	}
	if err := p.Faults.Validate(); err != nil {
		return fmt.Errorf("params %q: %w", p.nameOrID(), err)
	}
	return nil
}

// Spec materializes the parameters into a runnable Spec. It is a thin shim
// over Compile (the default-filling and Byzantine-resolution logic lives
// there, once); sweep workers skip the Spec detour entirely and run the
// Compiled directly.
func (p Params) Spec() (Spec, error) {
	c, err := p.Compile()
	if err != nil {
		return Spec{}, err
	}
	name := p.Name
	if name == "" {
		name = c.Labels.IDFor(p.Seed)
	}
	return Spec{
		Name:   name,
		Graph:  c.Graph,
		Mode:   c.Mode,
		F:      c.F,
		Byz:    c.Byz,
		Values: c.Values,
		// The bare model, not c.Net: Spec.Compile applies the fault wrapper
		// itself, and handing it a pre-wrapped net would inject twice.
		Net:         p.Net.Model(),
		Horizon:     c.Horizon,
		Seed:        p.Seed,
		Discovery:   c.Discovery,
		PBFTTimeout: c.PBFTTimeout,
		PollPeriod:  c.PollPeriod,
		Insecure:    p.Insecure,
		Faults:      p.Faults,
		Trace:       p.Trace,
	}, nil
}

// autoByzIDs resolves the automatic placement to concrete process IDs.
// PlaceWorst is the only placement that can fail (enumeration cap).
func (p Params) autoByzIDs(built graph.BuiltGraph) ([]model.ID, error) {
	if p.Auto.Count == 0 {
		return nil, nil
	}
	if p.Auto.Place == PlaceFigure {
		ids := built.Byz.Sorted()
		if len(ids) > p.Auto.Count {
			ids = ids[:p.Auto.Count]
		}
		return ids, nil
	}
	if p.Auto.Place == PlaceWorst {
		count := p.Auto.Count
		if n := built.G.NumNodes(); count > n {
			count = n
		}
		worst, err := kosr.WorstPlacement(built.G, count)
		if err != nil {
			return nil, fmt.Errorf("params %q: %w", p.nameOrID(), err)
		}
		return worst.Byz.Sorted(), nil
	}
	nodes := built.G.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var pool []model.ID
	switch p.Auto.Place {
	case PlaceSink:
		if built.Sink.Len() > 0 {
			pool = built.Sink.Sorted()
		} else {
			pool = nodes
		}
	default: // PlaceTail: highest IDs first
		for i := len(nodes) - 1; i >= 0; i-- {
			pool = append(pool, nodes[i])
		}
	}
	if len(pool) > p.Auto.Count {
		pool = pool[:p.Auto.Count]
	}
	return pool, nil
}

// autoByzSpec derives the ByzSpec for an automatically placed process; placed
// is the full sorted placement (some defaults are relative to the whole
// group). For ByzFakePD / ByzEquivPD / ByzCollude the claimed PD is the sink
// minus the process itself — a plausible false claim — falling back to the
// run-time ForgedClaim default on sinkless graphs; ByzEquivPD additionally
// advertises an empty set to half the peers. ByzDelay holds replies two
// discovery rounds; ByzSelectiveSilent answers the lowest ⌈n/2⌉ processes;
// ByzCollude additionally censors the highest-ID process outside the group.
func (p Params) autoByzSpec(built graph.BuiltGraph, id model.ID, placed []model.ID) ByzSpec {
	spec := ByzSpec{Kind: p.Auto.Kind}
	switch p.Auto.Kind {
	case ByzFakePD, ByzEquivPD, ByzCollude:
		if built.Sink.Len() > 0 {
			claimed := built.Sink.Clone()
			claimed.Remove(id)
			spec.ClaimedPD = claimed
		}
	}
	switch p.Auto.Kind {
	case ByzDelay:
		spec.HoldRounds = 2
	case ByzSelectiveSilent:
		nodes := built.G.Nodes()
		answer := model.NewIDSet()
		for _, u := range nodes {
			if u != id {
				answer.Add(u)
			}
			if answer.Len() >= (len(nodes)+1)/2 {
				break
			}
		}
		spec.AnswerTo = answer
	case ByzCollude:
		group := model.NewIDSet(placed...)
		nodes := built.G.Nodes()
		for i := len(nodes) - 1; i >= 0; i-- {
			if u := nodes[i]; !group.Has(u) {
				spec.Withhold = model.NewIDSet(u)
				break
			}
		}
	}
	return spec
}
