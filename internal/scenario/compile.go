package scenario

import (
	"fmt"
	"slices"
	"strings"

	"github.com/bftcup/bftcup/internal/byz"
	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// Scenario execution is split into an explicit Compile → Run pipeline.
// Compile does everything that does not depend on the simulation seed —
// building the graph from its def, resolving the fault threshold and the
// automatic Byzantine placement, materializing the network model, filling
// defaults — and Run does only the seed-dependent work: key material (via
// the cryptox keyring cache), engine setup and the simulation itself. A
// sweep that runs one scenario across a thousand seeds compiles once and
// runs a thousand times; the matrix layer caches Compiled values per worker
// keyed by Params.CompileKey. Spec/Run remain as thin shims over this
// pipeline, so the split is invisible to existing callers — and provably so:
// the matrix fingerprint tests pin cached and uncached execution to
// byte-identical reports.

// applyDefaults fills the shared execution defaults — the synchronous
// network model and the 60-second horizon — in one place for every entry
// point (Compile, compiled Specs, hand-written Specs handed to Run).
func applyDefaults(net sim.NetworkModel, horizon sim.Time) (sim.NetworkModel, sim.Time) {
	if net == nil {
		net = sim.Synchronous{Delta: 5 * sim.Millisecond}
	}
	if horizon <= 0 {
		horizon = 60 * sim.Second
	}
	return net, horizon
}

// Compiled is the seed-independent materialization of a scenario: the built
// knowledge connectivity graph, the resolved fault threshold and Byzantine
// assignment, the network model and the filled-in defaults. It is produced
// once by Params.Compile (or Spec.Compile) and then Run any number of times
// with different seeds; the per-run cost is key material, engine setup and
// the simulation itself. A Compiled value is immutable after construction
// and safe to share between goroutines (Run never mutates it).
type Compiled struct {
	// Name labels results and errors; empty derives the per-seed cell ID
	// from Labels at run time (matching Params.Spec's naming).
	Name string
	// Labels are the seed-independent axis labels (zero-valued when the
	// Compiled came from a hand-written Spec rather than Params).
	Labels CellLabels
	// Graph is the built knowledge connectivity graph.
	Graph *graph.Digraph
	// Mode / F / Byz / Values / Net / Horizon are the resolved counterparts
	// of the Spec fields of the same names.
	Mode    core.Mode
	F       int
	Byz     map[model.ID]ByzSpec
	Values  map[model.ID]model.Value
	Net     sim.NetworkModel
	Horizon sim.Time
	// Discovery / PBFTTimeout / PollPeriod tune the protocol stack (zero
	// keeps the module defaults).
	Discovery   discovery.Config
	PBFTTimeout sim.Time
	PollPeriod  sim.Time
	// Insecure swaps the Ed25519 keyring for the insecure suite at run time
	// (see Params.Insecure).
	Insecure bool
	// Faults is the validated chaos axis (zero when no injection). The
	// link-level parts are already folded into Net as a sim.FaultyNetwork
	// wrapper; Faults.Churn is read again by every Run, which schedules the
	// crash/restart control events on the engine per seed.
	Faults FaultParams
	// Hardened arms the retransmitting protocol profile in every correct
	// node (discovery backoff + resync, PBFT decide-note replies).
	Hardened bool

	// deriveName records that Name was empty in the source Params, so each
	// run names its result after its own seed.
	deriveName bool
	// ids is the sorted node list, computed once.
	ids []model.ID
}

// Compile materializes the seed-independent part of the parameters. The
// effective graph seed (GraphSeed, falling back to Seed) participates: for
// random graph families a Compiled is specific to the graph its seed built,
// which is exactly what CompileKey captures.
func (p Params) Compile() (*Compiled, error) {
	gseed := p.GraphSeed
	if gseed == 0 {
		gseed = p.Seed
	}
	built, err := p.Graph.Build(gseed)
	if err != nil {
		return nil, fmt.Errorf("params %q: %w", p.nameOrID(), err)
	}
	f := p.F
	if f < 0 {
		f = built.F
	}
	byzMap := make(map[model.ID]ByzSpec)
	placed, err := p.autoByzIDs(built)
	if err != nil {
		return nil, err
	}
	for _, id := range placed {
		byzMap[id] = p.autoByzSpec(built, id, placed)
	}
	for id, bp := range p.Byz {
		spec := ByzSpec{Kind: bp.Kind, HoldRounds: bp.HoldRounds}
		if len(bp.ClaimedPD) > 0 {
			spec.ClaimedPD = model.NewIDSet(bp.ClaimedPD...)
		}
		if len(bp.AltPD) > 0 {
			spec.AltPD = model.NewIDSet(bp.AltPD...)
		}
		if len(bp.AltRecipients) > 0 {
			// Carried as data, not a closure: CompileKey covers the set, so
			// two cells differing only in recipients cannot share a cache
			// entry (the Runner derives the chooser from the set at run time).
			spec.AltRecipients = model.NewIDSet(bp.AltRecipients...)
		}
		if len(bp.AnswerTo) > 0 {
			spec.AnswerTo = model.NewIDSet(bp.AnswerTo...)
		}
		if len(bp.Withhold) > 0 {
			spec.Withhold = model.NewIDSet(bp.Withhold...)
		}
		byzMap[id] = spec
	}
	net, horizon := applyDefaults(p.Net.Model(), p.Horizon)
	net, err = applyFaults(p.Faults, net, built.G, byzMap)
	if err != nil {
		return nil, fmt.Errorf("params %q: %w", p.nameOrID(), err)
	}
	c := &Compiled{
		Name:       p.Name,
		Labels:     p.Labels(),
		Graph:      built.G,
		Mode:       p.Mode,
		F:          f,
		Byz:        byzMap,
		Values:     p.Values,
		Net:        net,
		Horizon:    horizon,
		Insecure:   p.Insecure,
		Faults:     p.Faults,
		Hardened:   p.Faults.Hardened(),
		deriveName: p.Name == "",
		ids:        built.G.Nodes(),
	}
	if p.SlowDiscovery {
		c.Discovery.Period = 500 * sim.Millisecond
		c.PollPeriod = 2 * sim.Second
	}
	return c, nil
}

// applyFaults validates an active fault axis against the built graph and
// Byzantine assignment and wraps the network model in the corresponding
// injector. A disabled axis returns the model untouched (and skips every
// check), keeping zero-fault compilation byte-identical to the pre-fault
// pipeline.
func applyFaults(f FaultParams, net sim.NetworkModel, g *graph.Digraph, byzMap map[model.ID]ByzSpec) (sim.NetworkModel, error) {
	if !f.Enabled() {
		return net, nil
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	nodes := model.NewIDSet(g.Nodes()...)
	for _, ch := range f.Churn {
		if !nodes.Has(ch.ID) {
			return nil, fmt.Errorf("churn of process %v not in graph", ch.ID)
		}
		if _, isByz := byzMap[ch.ID]; isByz && ch.Wipe {
			// A wiped restart builds a fresh *correct* node; wiping a
			// Byzantine process would silently convert it mid-run.
			return nil, fmt.Errorf("churn of process %v cannot wipe a Byzantine process", ch.ID)
		}
	}
	return sim.FaultyNetwork{
		Base:      net,
		Loss:      f.Loss,
		Dup:       f.Dup,
		Reorder:   f.Reorder,
		Partition: resolvePartitions(f.Partitions, g.Nodes()),
	}, nil
}

// Compile wraps a hand-written Spec in the Compile → Run pipeline. The
// Spec's graph, threshold and Byzantine assignment are taken as already
// resolved; only the execution defaults are filled and the fault axis (if
// any) applied.
func (s Spec) Compile() (*Compiled, error) {
	if s.Graph == nil || s.Graph.NumNodes() == 0 {
		return nil, fmt.Errorf("scenario %q: empty graph", s.Name)
	}
	net, horizon := applyDefaults(s.Net, s.Horizon)
	net, err := applyFaults(s.Faults, net, s.Graph, s.Byz)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return &Compiled{
		Name:        s.Name,
		Graph:       s.Graph,
		Mode:        s.Mode,
		F:           s.F,
		Byz:         s.Byz,
		Values:      s.Values,
		Net:         net,
		Horizon:     horizon,
		Discovery:   s.Discovery,
		PBFTTimeout: s.PBFTTimeout,
		PollPeriod:  s.PollPeriod,
		Insecure:    s.Insecure,
		Faults:      s.Faults,
		Hardened:    s.Faults.Hardened(),
		ids:         s.Graph.Nodes(),
	}, nil
}

// CompileKey is the canonical identity of the seed-independent parts of the
// parameters: two Params with equal CompileKeys compile to interchangeable
// Compiled values, which is the cache-key contract the matrix layer's
// per-worker compile cache relies on. For random graph families the key
// includes the effective graph seed (a sweep that varies Seed with GraphSeed
// unset builds a different graph per cell, and the key says so); for figures
// and complete graphs the seed is normalized away and a whole seed sweep
// shares one entry.
func (p Params) CompileKey() string {
	gseed := p.GraphSeed
	if gseed == 0 {
		gseed = p.Seed
	}
	_, horizon := applyDefaults(nil, p.Horizon)
	var sb strings.Builder
	sb.WriteString(p.Graph.BuildKey(gseed))
	fmt.Fprintf(&sb, "|mode=%d|f=%d|net=%s|h=%d|slow=%t|auto=%d,%d,%d",
		int(p.Mode), p.F, p.Net.Label(), int64(horizon), p.SlowDiscovery,
		int(p.Auto.Kind), p.Auto.Count, int(p.Auto.Place))
	if p.Insecure {
		// Appended only when set, so every pre-existing secure key is
		// byte-stable; an insecure cell must never share a Compiled (whose
		// Insecure flag drives key-material selection) with a secure one.
		sb.WriteString("|insecure=true")
	}
	if p.Faults.Enabled() {
		// Same only-when-set discipline: every zero-fault key is byte-stable,
		// and a chaos cell (whose FaultyNetwork wrapper and Hardened flag
		// change compiled behavior) never shares a cache entry with a clean
		// one. Label is the canonical serialization of the whole fault axis.
		fmt.Fprintf(&sb, "|faults=%q", p.Faults.Label())
	}
	if p.Name != "" {
		// A fixed name is part of the compiled identity (it labels results
		// and error messages); an empty one derives the per-seed cell ID at
		// run time, so every seed of a sweep shares the cache entry. Quoted:
		// a free-form name must not be able to mimic other key sections.
		fmt.Fprintf(&sb, "|name=%q", p.Name)
	}
	for _, id := range sortedIDs(p.Byz) {
		bp := p.Byz[id]
		fmt.Fprintf(&sb, "|byz%d=%d;%v;%v;%v;%d;%v;%v", uint64(id), int(bp.Kind),
			canonIDs(bp.ClaimedPD), canonIDs(bp.AltPD), canonIDs(bp.AltRecipients),
			bp.HoldRounds, canonIDs(bp.AnswerTo), canonIDs(bp.Withhold))
	}
	for _, id := range sortedIDs(p.Values) {
		fmt.Fprintf(&sb, "|val%d=%q", uint64(id), string(p.Values[id]))
	}
	return sb.String()
}

// sortedIDs returns a map's keys in ascending order (slices.Sort: this runs
// per cell on the compile-key path).
func sortedIDs[V any](m map[model.ID]V) []model.ID {
	ids := make([]model.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// canonIDs renders an ID slice order-independently (the slices parameterize
// sets, so order must not split cache entries).
func canonIDs(ids []model.ID) []model.ID {
	if len(ids) < 2 {
		return ids
	}
	out := slices.Clone(ids)
	slices.Sort(out)
	return out
}

// ForgedClaim is the default advertised PD for a PD-forging behavior left
// without an explicit ClaimedPD: the (up to) three lowest-ID other processes,
// echoing the Section III worked example where Byzantine process 4 claims
// PD {1,2,3}. It is guaranteed to differ from the process's real out-set —
// if the pattern happens to coincide, the process's own ID is added
// (knowledge graphs have no self-edges) — so a forging kind never silently
// degenerates into advertising the truth.
func ForgedClaim(g *graph.Digraph, id model.ID) model.IDSet {
	claim := model.NewIDSet()
	for _, u := range g.Nodes() {
		if u != id {
			claim.Add(u)
			if claim.Len() == 3 {
				break
			}
		}
	}
	if claim.Equal(g.OutSet(id)) {
		claim.Add(id)
	}
	return claim
}

// resolveClaim fills a Byzantine spec's advertised PD: explicit claims win;
// otherwise content-honest kinds (delay, selective silence) advertise the
// real out-set and forging kinds get ForgedClaim.
func resolveClaim(c *Compiled, id model.ID, bspec ByzSpec) model.IDSet {
	if bspec.ClaimedPD != nil {
		return bspec.ClaimedPD
	}
	switch bspec.Kind {
	case ByzFakePD, ByzEquivPD, ByzCollude:
		return ForgedClaim(c.Graph, id)
	}
	return c.Graph.OutSet(id).Clone()
}

// Run executes the compiled scenario under one seed. It is shorthand for a
// fresh Runner's Run; sweep workers keep a Runner per goroutine to also
// reuse the simulation scratch across cells.
func (c *Compiled) Run(seed int64, trace bool) (*Result, error) {
	var r Runner
	return r.Run(c, seed, trace)
}

// Runner owns the per-worker scratch of the Run side of the pipeline: the
// simulation engine (event heap, payload pool) and the bookkeeping maps,
// reset and reused across runs instead of reallocated per cell. A Runner is
// for one goroutine; the *Result it returns (and the maps inside it) are
// owned by the Runner and valid only until its next Run — callers that
// retain results across cells must copy what they keep.
type Runner struct {
	engine        *sim.Engine
	proposals     map[model.ID]model.Value
	nodes         map[model.ID]*core.Node
	correct       model.IDSet
	decisions     map[model.ID]model.Value
	decidedAt     map[model.ID]sim.Time
	doubleDecided model.IDSet
	perProcess    map[model.ID]ProcessResult
	res           Result
	// searchers is the pool of per-node incremental sink/core search
	// engines, handed out in node-creation order each run so the knowledge
	// layer's scratch (Tarjan stacks, max-flow arrays, verdict memos) is
	// reused across cells the same way the engine's heap and pools are. A
	// searcher rebinds itself when it sees a new view, so reuse is invisible
	// to results.
	searchers    []*kosr.Searcher
	searcherNext int

	// SearchFactory, when non-nil, overrides the pooled incremental
	// searchers with a per-node engine of its own choosing. The search
	// transparency tests inject kosr.FromScratch through it to pin the
	// incremental engine to the reference, trace digest for trace digest.
	SearchFactory func() kosr.Search
}

// nextSearcher hands out the next pooled searcher, growing the pool on first
// use.
func (r *Runner) nextSearcher() *kosr.Searcher {
	if r.searcherNext == len(r.searchers) {
		r.searchers = append(r.searchers, kosr.NewSearcher())
	}
	s := r.searchers[r.searcherNext]
	r.searcherNext++
	return s
}

// reset prepares the scratch for one run.
func (r *Runner) reset(net sim.NetworkModel, seed int64) {
	if r.engine == nil {
		r.engine = sim.NewEngine(net, seed)
		r.proposals = make(map[model.ID]model.Value)
		r.nodes = make(map[model.ID]*core.Node)
		r.correct = model.NewIDSet()
		r.decisions = make(map[model.ID]model.Value)
		r.decidedAt = make(map[model.ID]sim.Time)
		r.doubleDecided = model.NewIDSet()
		r.perProcess = make(map[model.ID]ProcessResult)
		return
	}
	r.engine.Reset(net, seed)
	clear(r.proposals)
	clear(r.nodes)
	clear(r.correct)
	clear(r.decisions)
	clear(r.decidedAt)
	clear(r.doubleDecided)
	clear(r.perProcess)
	r.searcherNext = 0
}

// Run executes the compiled scenario under one seed: generate (or fetch from
// the keyring cache) the key material, wire up the reactors, drive the
// engine to decision or horizon, and grade the outcome — exactly the
// execution scenario.Run has always performed, minus everything Compile
// already did.
func (r *Runner) Run(c *Compiled, seed int64, trace bool) (*Result, error) {
	name := c.Name
	if c.deriveName {
		name = c.Labels.IDFor(seed)
	}
	r.reset(c.Net, seed)
	engine := r.engine

	var signers map[model.ID]cryptox.Signer
	var reg cryptox.Verifier
	if c.Insecure {
		signers, reg = cryptox.InsecureSuite(c.ids)
	} else {
		var err error
		signers, reg, err = cryptox.Keyring(seed+1, c.ids)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", name, err)
		}
	}

	var tr *sim.Trace
	if trace {
		tr = sim.NewTrace()
		engine.SetTrace(tr)
	}
	r.res = Result{Name: name, PerProcess: r.perProcess}
	res := &r.res
	proposals, nodes, correct := r.proposals, r.nodes, r.correct
	decisions, decidedAt, doubleDecided := r.decisions, r.decidedAt, r.doubleDecided
	// decidedCorrect counts first decisions by correct processes, so the
	// per-event termination check is one comparison instead of a set scan.
	decidedCorrect := 0

	// Colluding-group state is mutable run state, so it is built here per
	// run, never stored in the (goroutine-shared, immutable) Compiled.
	// Members join in sorted ID order before the engine starts — the group
	// record list is part of every member's replies from the first round.
	var collusion *byz.Collusion
	var colluders map[model.ID]*byz.Colluder
	for _, id := range c.ids {
		if bspec, ok := c.Byz[id]; ok && bspec.Kind == ByzCollude {
			if collusion == nil {
				collusion = byz.NewCollusion(reg, c.Discovery)
				colluders = make(map[model.ID]*byz.Colluder)
			}
			colluders[id] = collusion.AddMember(signers[id], resolveClaim(c, id, bspec), bspec.Withhold)
		}
	}

	// makeNode builds a correct node for one process. It is also how wiped
	// churn restarts get their replacement reactor: the replacement is built
	// here, before the engine starts, so searcher handout order (node loop
	// order, then churn order) stays deterministic.
	makeNode := func(id model.ID, value model.Value) *core.Node {
		cfg := core.Config{
			Mode:        c.Mode,
			F:           c.F,
			PD:          c.Graph.OutSet(id).Clone(),
			Proposal:    value,
			Discovery:   c.Discovery,
			PBFTTimeout: c.PBFTTimeout,
			PollPeriod:  c.PollPeriod,
			Hardened:    c.Hardened,
		}
		if c.Mode != core.ModePermissioned {
			if r.SearchFactory != nil {
				cfg.Searcher = r.SearchFactory()
			} else {
				cfg.Searcher = r.nextSearcher()
			}
		}
		return core.NewNode(signers[id], reg, cfg, func(v model.Value) {
			if prev, dup := decisions[id]; dup {
				// A wiped restart legitimately re-runs agreement; only a
				// *conflicting* second decision is an integrity violation.
				if !prev.Equal(v) {
					doubleDecided.Add(id)
				}
				return
			}
			decisions[id] = v
			decidedAt[id] = engine.Now()
			if correct.Has(id) {
				decidedCorrect++
			}
			if tr != nil {
				tr.RecordDecision(id, engine.Now(), []byte(v))
			}
		})
	}

	for _, id := range c.ids {
		id := id
		value := model.Value(fmt.Sprintf("v%d", id))
		if v, ok := c.Values[id]; ok {
			value = v
		}
		proposals[id] = value

		bspec, isByz := c.Byz[id]
		if !isByz || bspec.Kind == ByzAsCorrect {
			n := makeNode(id, value)
			nodes[id] = n
			if err := engine.AddProcess(id, n); err != nil {
				return nil, err
			}
			if !isByz {
				correct.Add(id)
			}
			continue
		}
		var reactor sim.Reactor
		switch bspec.Kind {
		case ByzSilent:
			reactor = byz.Silent{}
		case ByzFakePD:
			reactor = byz.NewFakePD(signers[id], reg, resolveClaim(c, id, bspec), c.Discovery)
		case ByzEquivPD:
			alt := bspec.AltPD
			if alt == nil {
				alt = model.NewIDSet()
			}
			choose := bspec.ChooseAlt
			if bspec.AltRecipients != nil {
				recipients := bspec.AltRecipients
				choose = func(id model.ID) bool { return recipients.Has(id) }
			}
			reactor = byz.NewPDEquivocator(signers[id], reg, resolveClaim(c, id, bspec), alt, choose, c.Discovery)
		case ByzDelay:
			reactor = byz.NewDelayer(signers[id], reg, resolveClaim(c, id, bspec), c.Discovery, bspec.HoldRounds)
		case ByzSelectiveSilent:
			reactor = byz.NewSelectiveSilent(signers[id], reg, resolveClaim(c, id, bspec), bspec.AnswerTo, c.Discovery)
		case ByzCollude:
			reactor = colluders[id]
		default:
			return nil, fmt.Errorf("scenario %q: unknown byz kind %v", name, bspec.Kind)
		}
		if err := engine.AddProcess(id, reactor); err != nil {
			return nil, err
		}
	}

	for _, ch := range c.Faults.Churn {
		engine.ScheduleCrash(ch.ID, ch.CrashAt)
		switch {
		case ch.RestartAt == 0:
			// Down for the rest of the run: graded as crash-faulty (excluded
			// from the correct set), not as a termination failure.
			correct.Remove(ch.ID)
		case ch.Wipe:
			// Compile rejected Wipe on Byzantine IDs, so this process has a
			// correct node whose discovery state the restart discards.
			repl := makeNode(ch.ID, proposals[ch.ID])
			nodes[ch.ID] = repl
			engine.ScheduleRestart(ch.ID, ch.RestartAt, repl)
		default:
			engine.ScheduleRestart(ch.ID, ch.RestartAt, nil)
		}
	}

	allCorrectDecided := func() bool { return decidedCorrect == correct.Len() }
	res.Termination = engine.RunUntil(allCorrectDecided, c.Horizon)
	// Let in-flight decisions propagate a little further for reporting, but
	// never past the horizon.
	if res.Termination {
		engine.RunUntil(func() bool { return false }, minTime(engine.Now()+sim.Second, c.Horizon))
	}

	res.Agreement, res.Validity, res.Integrity = true, true, true
	for id := range doubleDecided {
		if correct.Has(id) {
			res.Integrity = false
		}
	}
	var last sim.Time
	var agreed model.Value
	first := true
	for _, id := range c.ids {
		pr := ProcessResult{Byzantine: hasByz(c.Byz, id)}
		if n, ok := nodes[id]; ok {
			if cand, ok := n.Committee(); ok {
				pr.Committee = cand.Members()
				pr.G = cand.G
			}
		}
		if v, ok := decisions[id]; ok {
			pr.Decided, pr.Value, pr.DecidedAt = true, v, decidedAt[id]
		}
		res.PerProcess[id] = pr

		if !correct.Has(id) || !pr.Decided {
			continue
		}
		if pr.DecidedAt > last {
			last = pr.DecidedAt
		}
		if first {
			agreed, first = pr.Value, false
		} else if !agreed.Equal(pr.Value) {
			res.Agreement = false
		}
		proposed := false
		for _, p := range proposals {
			if p.Equal(pr.Value) {
				proposed = true
				break
			}
		}
		if !proposed {
			res.Validity = false
		}
	}
	if res.Termination {
		res.Elapsed = last
	} else {
		res.Elapsed = c.Horizon
	}
	if tr != nil {
		res.TraceDigest, res.TraceEvents = tr.Digest(), tr.Events()
	}
	m := engine.Metrics()
	res.Messages, res.Bytes = m.Messages, m.Bytes
	res.ByKind = m.ByKind()
	return res, nil
}
