// Package rt defines the Runtime abstraction the BFT-CUP protocol stack is
// written against: a node-local view of time, randomness, message transmission
// and timer scheduling, plus the reactor callbacks a runtime drives. The
// protocol layers (core, discovery, pbft, rrbcast, byz) import only this
// package; which world they run in is the runtime's business:
//
//   - internal/sim implements it as a deterministic discrete-event engine
//     over a virtual clock (identical seeds ⇒ byte-identical traces), and
//   - internal/netrt (and internal/live) implement it over real transports —
//     length-prefixed frames on TCP, goroutines, monotonic wall clocks.
//
// The same core.Node therefore runs unchanged under the simulator, an
// in-memory goroutine network, or a cmd/cupd daemon on a real socket, which
// makes the simulator a deterministic twin of the deployable system: any
// divergence in verdicts between the two runtimes on one scenario is a bug in
// one of the twins, and the twin tests in internal/scenario assert exactly
// that.
//
// # The contract a runtime must honor
//
// Serialization. A runtime never calls a reactor concurrently: Init, Receive,
// Timer (and Restart) are strictly serialized per reactor. Reactors are
// single-threaded state machines and hold no locks.
//
// Payload ownership. The payload slice passed to Receive is only valid for
// the duration of the callback; a reactor that buffers a payload must copy
// it. Symmetrically, Send treats the caller's slice as borrowed: the runtime
// copies (or interns) it before returning, and the caller may reuse its
// buffer immediately.
//
// Best-effort channels. Send is fire-and-forget. Sending to an unknown,
// crashed, or unreachable process silently drops — the channel abstraction
// does not acknowledge — and the protocol layers are written to tolerate
// loss (retransmission is the protocol's job, not the runtime's).
//
// Timers and crashes. SetTimer schedules a Timer callback after a relative
// delay. Pending timers die with a crash: a runtime that supports
// crash/restart (the simulator's churn schedule, a daemon being restarted)
// delivers no timer set by a previous incarnation, while messages — which
// live in the network, not the process — may still arrive after a restart.
// A restarted reactor re-arms its own timers from Restart (see Restartable).
//
// Determinism. Now and Rand are node-local and runtime-owned. Under the
// simulator both are deterministic (virtual clock, seeded RNG) and every
// random protocol decision MUST come from Rand — never from wall clocks,
// map iteration order, or goroutine scheduling — which is what keeps traces
// byte-identical across runs and machines. Real runtimes map Now to a
// monotonic clock and seed Rand per node; protocol code cannot tell the
// difference, and must not try.
package rt

import (
	"fmt"
	"math/rand"

	"github.com/bftcup/bftcup/internal/model"
)

// Time is a node-local timestamp or duration in nanoseconds. Under the
// simulator it is virtual time since the start of the run; under a real
// runtime it is monotonic time since the node booted. Protocol code only ever
// compares and adds Times, so the difference is invisible to it.
type Time int64

// Convenient durations.
const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the duration human-readably ("2.00s", "14.3ms").
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.2fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.1fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Reactor is a deterministic, single-threaded protocol state machine. The
// runtime — simulated or real — serializes all callbacks.
type Reactor interface {
	// Init runs once before any event is delivered.
	Init(ctx Context)
	// Receive delivers a message from another process. The payload slice is
	// only valid until the callback returns (runtimes recycle payload
	// buffers); reactors that keep a payload for later must copy it.
	Receive(ctx Context, from model.ID, payload []byte)
	// Timer fires a timer set via Context.SetTimer.
	Timer(ctx Context, tag uint64)
}

// Context is the runtime-side interface a reactor uses to act on the world:
// send, timer scheduling, clock and node-local randomness.
type Context interface {
	// ID returns the process this context belongs to.
	ID() model.ID
	// Now returns the current node-local time.
	Now() Time
	// Send transmits payload to the given process, best-effort (see the
	// package comment). The payload is copied; the caller may reuse its
	// buffer.
	Send(to model.ID, payload []byte)
	// SetTimer schedules Timer(tag) after d.
	SetTimer(d Time, tag uint64)
	// Rand is the node-local RNG (use only inside the reactor's own
	// callbacks). Deterministic under the simulator.
	Rand() *rand.Rand
}

// Restartable is an optional Reactor extension for processes that can resume
// from persisted state after a crash — the runtime's crash/restart hook. A
// restart without state wipe calls Restart (falling back to Init when the
// reactor does not implement it); the reactor re-arms whatever timers it
// needs, because pending timers from before the crash are gone.
type Restartable interface {
	Restart(ctx Context)
}
