// Package core implements the paper's consensus protocols as a single
// event-driven node (Algorithm 3) parameterized by how the committee is
// identified:
//
//   - ModeKnownF — the authenticated BFT-CUP model of Section III:
//     Discovery (Algorithm 1) + the Sink algorithm (Algorithm 2) with the
//     fault threshold f given to every process.
//   - ModeUnknownF — the BFT-CUPFT model of Section VI: Discovery + the Core
//     algorithm (Algorithm 4); no process knows f.
//   - ModeNaive — the straw man of Observation 1 (Section IV): adopt the
//     first sink found at any g. Unsafe by Theorem 7; used to reproduce the
//     impossibility experiments.
//   - ModePermissioned — the classic setting (known membership and f): run
//     the committee consensus directly over PDᵢ ∪ {i}.
//
// Once the committee S is identified, members run PBFT over S with quorum
// ⌈(|S|+g+1)/2⌉ while non-members poll ⟨GETDECIDEDVAL⟩ and decide on
// ⌈(|S|+1)/2⌉ matching answers (Algorithm 3).
//
// A Node is a sim.Reactor: the same implementation runs on the deterministic
// simulator (package sim) and on the concurrent live runtime (package live).
// Committee-consensus messages that arrive before the committee is identified
// are buffered — copied, because the simulator recycles payload buffers after
// each delivery — and replayed once the search succeeds.
package core
