package core

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/pbft"
	"github.com/bftcup/bftcup/internal/rt"
	"github.com/bftcup/bftcup/internal/wire"
)

// Mode selects the committee-identification rule.
type Mode int

// Modes. See the package comment.
const (
	ModeKnownF Mode = iota
	ModeUnknownF
	ModeNaive
	ModePermissioned
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeKnownF:
		return "bft-cup"
	case ModeUnknownF:
		return "bft-cupft"
	case ModeNaive:
		return "naive"
	case ModePermissioned:
		return "permissioned"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// pollTag drives the non-member GETDECIDEDVAL loop.
const pollTag uint64 = 2 << 40

// maxPending bounds the buffer of committee-consensus messages that arrive
// before the committee is identified.
const maxPending = 8192

// Config parameterizes a node.
type Config struct {
	// Mode selects the committee-identification rule.
	Mode Mode
	// F is the fault threshold given to the process (ModeKnownF and
	// ModePermissioned only; the whole point of BFT-CUPFT is not having it).
	F int
	// PD is the process's participant detector output.
	PD model.IDSet
	// Proposal is the value this process proposes.
	Proposal model.Value
	// Discovery tunes Algorithm 1.
	Discovery discovery.Config
	// Searcher, when non-nil, is the sink/core search engine the node runs
	// its committee-identification rule on. Sweep workers inject a per-node
	// incremental kosr.Searcher from their reusable scratch; nil makes the
	// node own a fresh one. A search engine only changes how much work each
	// search does — results, and therefore the per-event search schedule
	// visible in traces, are identical to the from-scratch View methods
	// (tests inject kosr.FromScratch here to prove it).
	Searcher kosr.Search
	// PBFTTimeout is the committee protocol's base view timeout.
	PBFTTimeout rt.Time
	// PollPeriod is the non-member decided-value polling interval.
	PollPeriod rt.Time
	// Slots is the number of chained consensus instances to run over the
	// same committee (0 or 1 = classic single-shot consensus). Slot k+1
	// starts once slot k decides.
	Slots uint64
	// ProposalFor supplies per-slot proposals for chained mode; nil falls
	// back to Proposal for every slot.
	ProposalFor func(slot uint64) model.Value
	// OnSlotDecided fires once per decided slot (chained mode observers).
	OnSlotDecided func(slot uint64, v model.Value)
	// Hardened arms the loss-tolerant protocol profile end to end:
	// discovery retransmission backoff + delta resync and the PBFT
	// sustained-loss behaviors (see discovery.Config.Hardened and
	// pbft.Config.Hardened). Scenario compilation sets it whenever fault
	// injection is active; off, the node is byte-identical to the seed
	// protocol.
	Hardened bool
}

func (c *Config) setDefaults() {
	if c.PBFTTimeout <= 0 {
		c.PBFTTimeout = 200 * rt.Millisecond
	}
	if c.PollPeriod <= 0 {
		c.PollPeriod = 50 * rt.Millisecond
	}
	if c.Slots == 0 {
		c.Slots = 1
	}
}

// Node is one process of the BFT-CUP / BFT-CUPFT stack. It implements
// rt.Reactor; the engine (simulated or live) serializes all callbacks.
type Node struct {
	self     model.ID
	signer   cryptox.Signer
	verifier cryptox.Verifier
	cfg      Config

	disc      *discovery.Module
	searcher  kosr.Search
	committee *kosr.Candidate
	insts     map[uint64]*pbft.Instance

	pendingFrom []model.ID
	pending     [][]byte
	// slotPending buffers committee messages for chained slots this member
	// has not started yet (fast members race ahead; their DecideNotes must
	// not be lost).
	slotPending map[uint64][]pendingMsg
	pendingN    int

	decidedSlots map[uint64]model.Value
	askers       map[uint64]model.IDSet            // per slot: processes awaiting DECIDEDVAL
	answers      map[uint64]map[string]model.IDSet // per slot: digest key → answering members
	valueOf      map[string]model.Value

	onDecide func(model.Value)
	ctx      rt.Context // current callback context (single-threaded reactor)
}

// NewNode creates a node. onDecide fires exactly once, when the node decides;
// it may be nil.
func NewNode(signer cryptox.Signer, verifier cryptox.Verifier, cfg Config, onDecide func(model.Value)) *Node {
	cfg.setDefaults()
	n := &Node{
		self:         signer.ID(),
		signer:       signer,
		verifier:     verifier,
		cfg:          cfg,
		insts:        make(map[uint64]*pbft.Instance),
		decidedSlots: make(map[uint64]model.Value),
		slotPending:  make(map[uint64][]pendingMsg),
		askers:       make(map[uint64]model.IDSet),
		answers:      make(map[uint64]map[string]model.IDSet),
		valueOf:      make(map[string]model.Value),
		onDecide:     onDecide,
	}
	if cfg.Mode != ModePermissioned {
		rec := discovery.NewSignedPD(signer, cfg.PD)
		dcfg := cfg.Discovery
		dcfg.Hardened = dcfg.Hardened || cfg.Hardened
		n.disc = discovery.New(rec, verifier, dcfg, n.onKnowledge)
		n.searcher = cfg.Searcher
		if n.searcher == nil {
			n.searcher = kosr.NewSearcher()
		}
	}
	return n
}

// Decided returns the slot-0 decision, if reached.
func (n *Node) Decided() (model.Value, bool) { return n.DecidedSlot(0) }

// DecidedSlot returns the decision of one chained slot, if reached.
func (n *Node) DecidedSlot(slot uint64) (model.Value, bool) {
	v, ok := n.decidedSlots[slot]
	return v, ok
}

// DecidedAll reports whether every configured slot has decided.
func (n *Node) DecidedAll() bool {
	return uint64(len(n.decidedSlots)) >= n.cfg.Slots
}

// proposalFor returns this node's proposal for a slot.
func (n *Node) proposalFor(slot uint64) model.Value {
	if n.cfg.ProposalFor != nil {
		return n.cfg.ProposalFor(slot)
	}
	return n.cfg.Proposal
}

// Committee returns the identified committee candidate, if any.
func (n *Node) Committee() (kosr.Candidate, bool) {
	if n.committee == nil {
		return kosr.Candidate{}, false
	}
	return *n.committee, true
}

// View exposes the node's current knowledge (tests and tools only).
func (n *Node) View() *kosr.View {
	if n.disc == nil {
		return nil
	}
	return n.disc.View()
}

// Init implements rt.Reactor.
func (n *Node) Init(ctx rt.Context) {
	n.ctx = ctx
	if n.cfg.Mode == ModePermissioned {
		members := n.cfg.PD.Clone()
		members.Add(n.self)
		cand := kosr.Candidate{G: n.cfg.F, S1: members, S2: model.NewIDSet()}
		n.adoptCommittee(ctx, cand)
		return
	}
	n.disc.Start(ctx)
	n.search(ctx)
}

// Restart implements rt.Restartable: a crash-restart with persisted state.
// Every map and record the node holds survived the crash; what died with the
// previous incarnation is its pending timers, so each protocol layer re-arms
// its own — discovery resumes its gossip round, undecided PBFT instances
// re-arm their current view timer, a non-member re-enters the decided-value
// poll. A node that had not yet identified a committee simply re-runs its
// search (discovery's resumed rounds will grow the view again).
func (n *Node) Restart(ctx rt.Context) {
	n.ctx = ctx
	if n.disc != nil {
		n.disc.Resume(ctx)
	}
	if n.committee == nil {
		if n.cfg.Mode != ModePermissioned {
			n.search(ctx)
		}
		return
	}
	if n.committee.Members().Has(n.self) {
		// Ascending slot order: Resume sets timers, and deterministic traces
		// need a deterministic scheduling order (insts is a map).
		for slot := uint64(0); slot < n.cfg.Slots; slot++ {
			if inst := n.insts[slot]; inst != nil {
				inst.Resume(ctx)
			}
		}
	} else {
		n.poll(ctx)
	}
}

// Receive implements rt.Reactor.
func (n *Node) Receive(ctx rt.Context, from model.ID, payload []byte) {
	n.ctx = ctx
	if len(payload) == 0 {
		return
	}
	if n.disc != nil && n.disc.Handle(ctx, from, payload) {
		return
	}
	switch payload[0] {
	case wire.KindPrePrepare, wire.KindPrepare, wire.KindCommit,
		wire.KindViewChange, wire.KindNewView, wire.KindDecideNote:
		if n.committee == nil {
			if len(n.pending) < maxPending {
				// The committee is not identified yet; buffer so that a late
				// process can still join the committee protocol. The engine
				// recycles payload buffers after the callback, so keep a copy.
				n.pendingFrom = append(n.pendingFrom, from)
				n.pending = append(n.pending, append([]byte(nil), payload...))
			}
			return
		}
		if slot, ok := pbft.PeekSlot(payload); ok {
			if inst := n.insts[slot]; inst != nil {
				inst.Handle(ctx, from, payload)
				return
			}
			// A member that is still on an earlier slot must not lose
			// traffic (especially DecideNotes) for slots it will start.
			if n.committee.Members().Has(n.self) && slot < n.cfg.Slots && n.pendingN < maxPending {
				// Copied: the engine recycles payload buffers after delivery.
				n.slotPending[slot] = append(n.slotPending[slot], pendingMsg{from: from, payload: append([]byte(nil), payload...)})
				n.pendingN++
			}
		}
	case wire.KindGetDecided:
		n.onGetDecided(ctx, from, payload)
	case wire.KindDecided:
		n.onDecidedAnswer(from, payload)
	}
}

// Timer implements rt.Reactor.
func (n *Node) Timer(ctx rt.Context, tag uint64) {
	n.ctx = ctx
	if n.disc != nil && n.disc.HandleTimer(ctx, tag) {
		return
	}
	if tag == pollTag {
		n.poll(ctx)
		return
	}
	if slot, ok := pbft.SlotOfTag(tag); ok {
		if inst := n.insts[slot]; inst != nil {
			inst.HandleTimer(ctx, tag)
		}
	}
}

// onKnowledge fires whenever Discovery grows S_PD or S_known.
func (n *Node) onKnowledge() {
	if n.ctx == nil || n.committee != nil {
		return
	}
	n.search(n.ctx)
}

// search runs the mode's committee-identification rule on the current view
// (the wait-until conditions of Algorithms 2 and 4).
func (n *Node) search(ctx rt.Context) {
	if n.committee != nil {
		return
	}
	view := n.disc.View()
	var cand kosr.Candidate
	var ok bool
	switch n.cfg.Mode {
	case ModeKnownF:
		cand, ok = n.searcher.FindSinkKnownF(view, n.cfg.F)
	case ModeUnknownF:
		cand, ok = n.searcher.FindCore(view)
	case ModeNaive:
		cand, ok = n.searcher.FindNaive(view)
	default:
		return
	}
	if !ok {
		return
	}
	n.adoptCommittee(ctx, cand)
}

// adoptCommittee fixes the committee and starts the member or non-member
// role of Algorithm 3.
func (n *Node) adoptCommittee(ctx rt.Context, cand kosr.Candidate) {
	n.committee = &cand
	if cand.Members().Has(n.self) {
		n.startSlot(ctx, 0)
		for i := range n.pending {
			n.Receive(ctx, n.pendingFrom[i], n.pending[i])
		}
	} else {
		n.poll(ctx)
	}
	n.pending, n.pendingFrom = nil, nil
}

// startSlot launches the committee instance for one chained slot.
func (n *Node) startSlot(ctx rt.Context, slot uint64) {
	if slot >= n.cfg.Slots || n.insts[slot] != nil {
		return
	}
	cand := *n.committee
	cfg := pbft.Config{
		Slot:        slot,
		Committee:   cand.Members(),
		Quorum:      cand.QuorumSize(),
		F:           cand.G,
		BaseTimeout: n.cfg.PBFTTimeout,
		Hardened:    n.cfg.Hardened,
	}

	inst, err := pbft.New(n.signer, n.verifier, cfg, n.proposalFor(slot), func(v model.Value) {
		n.decideLocal(n.ctx, slot, v)
	})
	if err != nil {
		// Committee parameters come from our own search; failure here is a
		// programming error, not an adversarial input.
		panic(fmt.Sprintf("core: pbft.New: %v", err))
	}
	n.insts[slot] = inst
	inst.Start(ctx)
	if buf := n.slotPending[slot]; len(buf) > 0 {
		delete(n.slotPending, slot)
		n.pendingN -= len(buf)
		for _, pm := range buf {
			inst.Handle(ctx, pm.from, pm.payload)
		}
	}
}

// pendingMsg is a buffered committee message awaiting its slot's instance.
type pendingMsg struct {
	from    model.ID
	payload []byte
}

// nextUndecidedSlot returns the lowest slot without a decision (== Slots when
// everything decided).
func (n *Node) nextUndecidedSlot() uint64 {
	for slot := uint64(0); slot < n.cfg.Slots; slot++ {
		if _, ok := n.decidedSlots[slot]; !ok {
			return slot
		}
	}
	return n.cfg.Slots
}

// poll implements the non-member loop: ask every committee member for the
// lowest undecided slot's value (Algorithm 3 line 6).
func (n *Node) poll(ctx rt.Context) {
	if n.committee == nil {
		return
	}
	slot := n.nextUndecidedSlot()
	if slot >= n.cfg.Slots {
		return
	}
	w := wire.NewWriter()
	w.Byte(wire.KindGetDecided)
	w.Uvarint(slot)
	payload := w.Bytes()
	for _, m := range n.committee.Members().Sorted() {
		if m != n.self {
			ctx.Send(m, payload)
		}
	}
	ctx.SetTimer(n.cfg.PollPeriod, pollTag)
}

// onGetDecided answers a ⟨GETDECIDEDVAL⟩ for a slot, or queues the asker
// until the slot decides (Algorithm 3 line 9).
func (n *Node) onGetDecided(ctx rt.Context, from model.ID, payload []byte) {
	r := wire.NewReader(payload[1:])
	slot := r.Uvarint()
	if r.Done() != nil || slot >= n.cfg.Slots {
		return
	}
	if _, ok := n.decidedSlots[slot]; ok {
		n.sendDecided(ctx, from, slot)
		return
	}
	set := n.askers[slot]
	if set == nil {
		set = model.NewIDSet()
		n.askers[slot] = set
	}
	set.Add(from)
}

func (n *Node) sendDecided(ctx rt.Context, to model.ID, slot uint64) {
	w := wire.NewWriter()
	w.Byte(wire.KindDecided)
	w.Uvarint(slot)
	w.BytesField(n.decidedSlots[slot])
	ctx.Send(to, w.Bytes())
}

// onDecidedAnswer counts ⟨DECIDEDVAL, val⟩ answers from distinct committee
// members until ⌈(|S|+1)/2⌉ agree (Algorithm 3 line 7).
func (n *Node) onDecidedAnswer(from model.ID, payload []byte) {
	if n.committee == nil {
		return
	}
	members := n.committee.Members()
	if !members.Has(from) || members.Has(n.self) {
		// Only non-members decide through answers; members run consensus.
		return
	}
	r := wire.NewReader(payload[1:])
	slot := r.Uvarint()
	val := model.Value(r.BytesField())
	if r.Done() != nil || slot >= n.cfg.Slots {
		return
	}
	if _, ok := n.decidedSlots[slot]; ok {
		return
	}
	d := pbft.DigestOf(val)
	key := string(d[:])
	bySlot := n.answers[slot]
	if bySlot == nil {
		bySlot = make(map[string]model.IDSet)
		n.answers[slot] = bySlot
	}
	set := bySlot[key]
	if set == nil {
		set = model.NewIDSet()
		bySlot[key] = set
		n.valueOf[key] = val
	}
	set.Add(from)
	if set.Len() >= n.committee.AnswerThreshold() {
		n.decideLocal(n.ctx, slot, n.valueOf[key])
	}
}

// decideLocal finalizes one slot's decision exactly once (Integrity),
// answers queued GETDECIDEDVALs (Algorithm 3 line 10) and, in chained mode,
// starts the next slot.
func (n *Node) decideLocal(ctx rt.Context, slot uint64, v model.Value) {
	if _, ok := n.decidedSlots[slot]; ok {
		return
	}
	n.decidedSlots[slot] = v
	for _, asker := range n.askers[slot].Sorted() {
		n.sendDecided(ctx, asker, slot)
	}
	delete(n.askers, slot)
	if n.cfg.OnSlotDecided != nil {
		n.cfg.OnSlotDecided(slot, v)
	}
	if slot == 0 && n.onDecide != nil {
		n.onDecide(v)
	}
	if n.committee.Members().Has(n.self) {
		n.startSlot(ctx, slot+1)
	}
}
