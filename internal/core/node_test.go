package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
	"github.com/bftcup/bftcup/internal/wire"
)

type net struct {
	engine    *sim.Engine
	nodes     map[model.ID]*Node
	decisions map[model.ID]model.Value
	correct   model.IDSet
}

func buildNet(t *testing.T, g *graph.Digraph, mode Mode, f int, byzSilent model.IDSet, netmod sim.NetworkModel, seed int64) *net {
	t.Helper()
	ids := g.Nodes()
	signers, reg, err := cryptox.GenerateKeys(seed, ids)
	if err != nil {
		t.Fatal(err)
	}
	nw := &net{
		engine:    sim.NewEngine(netmod, seed),
		nodes:     make(map[model.ID]*Node),
		decisions: make(map[model.ID]model.Value),
		correct:   g.NodeSet().Diff(byzSilent),
	}
	for _, id := range ids {
		id := id
		cfg := Config{
			Mode:     mode,
			F:        f,
			PD:       g.OutSet(id).Clone(),
			Proposal: model.Value(fmt.Sprintf("v%d", id)),
		}
		n := NewNode(signers[id], reg, cfg, func(v model.Value) { nw.decisions[id] = v })
		nw.nodes[id] = n
		if err := nw.engine.AddProcess(id, n); err != nil {
			t.Fatal(err)
		}
		if byzSilent.Has(id) {
			nw.engine.Crash(id)
		}
	}
	return nw
}

func (nw *net) allCorrectDecided() bool {
	for id := range nw.correct {
		if _, ok := nw.decisions[id]; !ok {
			return false
		}
	}
	return true
}

func (nw *net) assertAgreement(t *testing.T) model.Value {
	t.Helper()
	var val model.Value
	first := true
	for id := range nw.correct {
		v, ok := nw.decisions[id]
		if !ok {
			continue
		}
		if first {
			val, first = v, false
		} else if !val.Equal(v) {
			t.Fatalf("agreement violated: %q vs %q (%v)", val, v, nw.decisions)
		}
	}
	return val
}

func TestPermissionedMode(t *testing.T) {
	g := graph.CompleteGraph(1, 2, 3, 4, 5, 6, 7)
	nw := buildNet(t, g, ModePermissioned, 2, model.NewIDSet(3, 6), sim.Synchronous{Delta: 5 * sim.Millisecond}, 1)
	if !nw.engine.RunUntil(nw.allCorrectDecided, 10*sim.Second) {
		t.Fatalf("permissioned consensus did not terminate: %v", nw.decisions)
	}
	nw.assertAgreement(t)
}

// The headline BFT-CUP run: Fig 1b with silent Byzantine 4. All correct
// processes must decide the same value and identify committee {1,2,3,4}.
func TestBFTCUPOnFig1b(t *testing.T) {
	fig := graph.Fig1b()
	nw := buildNet(t, fig.G, ModeKnownF, fig.F, fig.Byz, sim.Synchronous{Delta: 5 * sim.Millisecond}, 2)
	if !nw.engine.RunUntil(nw.allCorrectDecided, 30*sim.Second) {
		t.Fatalf("BFT-CUP did not terminate on Fig1b: %d/%d decided", len(nw.decisions), nw.correct.Len())
	}
	nw.assertAgreement(t)
	for id := range nw.correct {
		cand, ok := nw.nodes[id].Committee()
		if !ok {
			t.Fatalf("%v never identified the sink", id)
		}
		if !cand.Members().Equal(fig.ExpectedCommittee) {
			t.Fatalf("%v committee = %v, want %v", id, cand.Members(), fig.ExpectedCommittee)
		}
	}
}

// The headline BFT-CUPFT run: Fig 4a, no process knows f.
func TestBFTCUPFTOnFig4a(t *testing.T) {
	fig := graph.Fig4a()
	nw := buildNet(t, fig.G, ModeUnknownF, 0, fig.Byz, sim.Synchronous{Delta: 5 * sim.Millisecond}, 3)
	if !nw.engine.RunUntil(nw.allCorrectDecided, 30*sim.Second) {
		t.Fatalf("BFT-CUPFT did not terminate on Fig4a: %d/%d decided", len(nw.decisions), nw.correct.Len())
	}
	nw.assertAgreement(t)
	for id := range nw.correct {
		cand, ok := nw.nodes[id].Committee()
		if !ok || !cand.Members().Equal(fig.ExpectedCommittee) {
			t.Fatalf("%v committee = %v, want %v", id, cand.Members(), fig.ExpectedCommittee)
		}
		if cand.G != 1 {
			t.Fatalf("%v found g = %d, want 1", id, cand.G)
		}
	}
}

// Fig 4b at scale: 15 processes, f = 2, Byzantine {4,9} silent.
func TestBFTCUPFTOnFig4b(t *testing.T) {
	fig := graph.Fig4b()
	nw := buildNet(t, fig.G, ModeUnknownF, 0, fig.Byz, sim.Synchronous{Delta: 5 * sim.Millisecond}, 4)
	if !nw.engine.RunUntil(nw.allCorrectDecided, 60*sim.Second) {
		t.Fatalf("BFT-CUPFT did not terminate on Fig4b: %d/%d decided", len(nw.decisions), nw.correct.Len())
	}
	nw.assertAgreement(t)
	for id := range nw.correct {
		cand, ok := nw.nodes[id].Committee()
		if !ok || !cand.Members().Equal(fig.ExpectedCommittee) {
			t.Fatalf("%v committee = %v, want %v", id, cand.Members(), fig.ExpectedCommittee)
		}
	}
}

// The Theorem 7 impossibility, end to end: on Fig 2c (all correct, 1-OSR,
// cross links slow) both the naive rule and the Core algorithm split the
// system into two committees that decide different values.
func TestAgreementViolationOnFig2c(t *testing.T) {
	for _, mode := range []Mode{ModeNaive, ModeUnknownF} {
		fig := graph.Fig2c()
		netmod := sim.PartialSync{
			GST:   20 * sim.Second,
			Delta: 5 * sim.Millisecond,
			Slow:  sim.SlowBetweenGroups(model.NewIDSet(1, 2, 3), model.NewIDSet(6, 7, 8)),
		}
		nw := buildNet(t, fig.G, mode, 0, model.NewIDSet(), netmod, 5)
		bothSidesDecided := func() bool {
			_, a := nw.decisions[1]
			_, b := nw.decisions[8]
			return a && b
		}
		if !nw.engine.RunUntil(bothSidesDecided, 15*sim.Second) {
			t.Fatalf("mode %v: the two islands did not decide before GST: %v", mode, nw.decisions)
		}
		vA, vB := nw.decisions[1], nw.decisions[8]
		if vA.Equal(vB) {
			t.Fatalf("mode %v: expected an Agreement violation, both sides decided %q", mode, vA)
		}
		// The committees are the disjoint sets of Theorem 7's proof.
		cA, _ := nw.nodes[1].Committee()
		cB, _ := nw.nodes[8].Committee()
		if cA.Members().Intersect(cB.Members()).Len() != 0 {
			t.Fatalf("mode %v: committees overlap: %v vs %v", mode, cA.Members(), cB.Members())
		}
	}
}

// ModeKnownF with the WRONG f on Fig 2c also violates agreement: knowing a
// number is not enough, it must be the system's real threshold.
func TestWrongFOnFig2c(t *testing.T) {
	fig := graph.Fig2c()
	netmod := sim.PartialSync{
		GST:   20 * sim.Second,
		Delta: 5 * sim.Millisecond,
		Slow:  sim.SlowBetweenGroups(model.NewIDSet(1, 2, 3), model.NewIDSet(6, 7, 8)),
	}
	nw := buildNet(t, fig.G, ModeKnownF, 1 /* real f is 0 */, model.NewIDSet(), netmod, 6)
	bothSidesDecided := func() bool {
		_, a := nw.decisions[1]
		_, b := nw.decisions[8]
		return a && b
	}
	if !nw.engine.RunUntil(bothSidesDecided, 15*sim.Second) {
		t.Fatalf("islands did not decide: %v", nw.decisions)
	}
	if nw.decisions[1].Equal(nw.decisions[8]) {
		t.Fatal("expected an Agreement violation with the wrong f")
	}
}

// Fig 1a: BFT-CUP requirements fail. The introduction's narrative is
// reproduced literally: with Byzantine 4 silent, each knowledge island
// satisfies isSink on its own and decides independently — "multiple values
// being decided within the system", an Agreement violation.
func TestSplitBrainOnFig1a(t *testing.T) {
	fig := graph.Fig1a()
	nw := buildNet(t, fig.G, ModeKnownF, fig.F, fig.Byz, sim.Synchronous{Delta: 5 * sim.Millisecond}, 7)
	if !nw.engine.RunUntil(nw.allCorrectDecided, 30*sim.Second) {
		t.Fatalf("islands did not decide: %v", nw.decisions)
	}
	if nw.decisions[1].Equal(nw.decisions[5]) {
		t.Fatalf("expected the two islands to decide differently, both got %q", nw.decisions[1])
	}
	// The islands never learned of each other.
	cL, _ := nw.nodes[1].Committee()
	cR, _ := nw.nodes[5].Committee()
	if cL.Members().Intersect(cR.Members()).Len() != 0 {
		t.Fatalf("island committees overlap: %v vs %v", cL.Members(), cR.Members())
	}
}

// Determinism: identical seeds produce identical decisions and metrics.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (map[model.ID]model.Value, int64) {
		fig := graph.Fig1b()
		nw := buildNetNoT(fig.G, ModeKnownF, fig.F, fig.Byz, sim.Synchronous{Delta: 5 * sim.Millisecond}, 42)
		nw.engine.RunUntil(nw.allCorrectDecided, 30*sim.Second)
		return nw.decisions, nw.engine.Metrics().Messages
	}
	d1, m1 := run()
	d2, m2 := run()
	if m1 != m2 {
		t.Fatalf("message counts differ: %d vs %d", m1, m2)
	}
	for id, v := range d1 {
		if !v.Equal(d2[id]) {
			t.Fatalf("decisions differ for %v: %q vs %q", id, v, d2[id])
		}
	}
}

// buildNetNoT is buildNet without *testing.T for determinism runs.
func buildNetNoT(g *graph.Digraph, mode Mode, f int, byzSilent model.IDSet, netmod sim.NetworkModel, seed int64) *net {
	ids := g.Nodes()
	signers, reg, _ := cryptox.GenerateKeys(seed, ids)
	nw := &net{
		engine:    sim.NewEngine(netmod, seed),
		nodes:     make(map[model.ID]*Node),
		decisions: make(map[model.ID]model.Value),
		correct:   g.NodeSet().Diff(byzSilent),
	}
	for _, id := range ids {
		id := id
		cfg := Config{Mode: mode, F: f, PD: g.OutSet(id).Clone(), Proposal: model.Value(fmt.Sprintf("v%d", id))}
		n := NewNode(signers[id], reg, cfg, func(v model.Value) { nw.decisions[id] = v })
		nw.nodes[id] = n
		_ = nw.engine.AddProcess(id, n)
		if byzSilent.Has(id) {
			nw.engine.Crash(id)
		}
	}
	return nw
}

// Randomized end-to-end property: on random extended k-OSR graphs with a
// random silent Byzantine subset, BFT-CUPFT always satisfies Agreement,
// Validity, Integrity and Termination.
func TestRandomizedBFTCUPFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 10; trial++ {
		spec := graph.GenSpec{
			SinkSize:    5 + rng.Intn(3),
			NonSinkSize: rng.Intn(4),
			ExtraEdgeP:  rng.Float64() * 0.2,
		}
		g, core, fG, err := graph.GenExtendedKOSR(rng, spec)
		if err != nil {
			t.Fatal(err)
		}
		// The model requirements need |byz| ≤ f with ≥ 2f+1 correct core
		// members; byz ≤ ⌊(m-1)/3⌋ satisfies both with f = |byz|.
		_ = fG
		maxByz := (core.Len() - 1) / 3
		byz := model.NewIDSet()
		coreIDs := core.Sorted()
		for len(byz) < rng.Intn(maxByz+1) {
			byz.Add(coreIDs[rng.Intn(len(coreIDs))])
		}
		nw := buildNet(t, g, ModeUnknownF, 0, byz, sim.Synchronous{Delta: 5 * sim.Millisecond}, int64(trial))
		if !nw.engine.RunUntil(nw.allCorrectDecided, 60*sim.Second) {
			t.Fatalf("trial %d: no termination (core %v, byz %v)\n%s", trial, core, byz, g)
		}
		v := nw.assertAgreement(t)
		// Validity: some process proposed v.
		okVal := false
		for _, id := range g.Nodes() {
			if v.Equal(model.Value(fmt.Sprintf("v%d", id))) {
				okVal = true
			}
		}
		if !okVal {
			t.Fatalf("trial %d: decided %q was never proposed", trial, v)
		}
	}
}

// fakeCtx collects sends for unit tests.
type fakeCtx struct {
	id    model.ID
	sends map[model.ID][][]byte
}

func newFakeCtx(id model.ID) *fakeCtx {
	return &fakeCtx{id: id, sends: make(map[model.ID][][]byte)}
}
func (f *fakeCtx) ID() model.ID     { return f.id }
func (f *fakeCtx) Now() sim.Time    { return 0 }
func (f *fakeCtx) Rand() *rand.Rand { return rand.New(rand.NewSource(0)) }
func (f *fakeCtx) Send(to model.ID, payload []byte) {
	f.sends[to] = append(f.sends[to], append([]byte(nil), payload...))
}
func (f *fakeCtx) SetTimer(sim.Time, uint64) {}

// A non-member must not decide on fewer than ⌈(|S|+1)/2⌉ matching answers,
// and Byzantine members answering garbage cannot reach the threshold.
func TestAnswerThreshold(t *testing.T) {
	ids := []model.ID{1, 2, 3, 4, 9}
	signers, reg, err := cryptox.GenerateKeys(1, ids)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeUnknownF, PD: model.NewIDSet(1), Proposal: model.Value("mine")}
	n := NewNode(signers[9], reg, cfg, nil)
	ctx := newFakeCtx(9)
	n.ctx = ctx
	// Hand the node a committee it is not a member of: S = {1,2,3,4}, g=1.
	n.adoptCommittee(ctx, mkCand(1, model.NewIDSet(1, 2, 3), model.NewIDSet(4)))

	answer := func(from model.ID, val string) {
		w := wire.NewWriter()
		w.Byte(wire.KindDecided)
		w.Uvarint(0)
		w.BytesField([]byte(val))
		n.Receive(ctx, from, w.Bytes())
	}
	answer(1, "X")
	answer(4, "garbage") // Byzantine member lies
	if _, ok := n.Decided(); ok {
		t.Fatal("decided below threshold")
	}
	answer(1, "X") // duplicate sender must not double-count
	if _, ok := n.Decided(); ok {
		t.Fatal("duplicate answer double-counted")
	}
	answer(7, "X") // non-member answers must be ignored
	if _, ok := n.Decided(); ok {
		t.Fatal("non-member answer counted")
	}
	answer(2, "X")
	answer(3, "X") // third distinct member: threshold ⌈5/2⌉ = 3 reached
	v, ok := n.Decided()
	if !ok || !v.Equal(model.Value("X")) {
		t.Fatalf("decided = %q, %v", v, ok)
	}
}

func mkCand(g int, s1, s2 model.IDSet) kosr.Candidate {
	return kosr.Candidate{G: g, S1: s1, S2: s2}
}

// GETDECIDEDVAL before the decision is queued and answered on decide
// (Algorithm 3 lines 9-10).
func TestDecidedValQueue(t *testing.T) {
	ids := []model.ID{1, 2, 3}
	signers, reg, err := cryptox.GenerateKeys(1, ids)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModePermissioned, F: 0, PD: model.NewIDSet(2, 3), Proposal: model.Value("val")}
	n := NewNode(signers[1], reg, cfg, nil)
	ctx := newFakeCtx(1)
	n.Init(ctx)
	// An asker polls before any decision exists.
	n.Receive(ctx, 42, []byte{wire.KindGetDecided, 0})
	if len(ctx.sends[42]) != 0 {
		t.Fatal("answered before deciding")
	}
	n.decideLocal(ctx, 0, model.Value("done"))
	found := false
	for _, msg := range ctx.sends[42] {
		if msg[0] == wire.KindDecided {
			found = true
		}
	}
	if !found {
		t.Fatal("queued asker was not answered on decide")
	}
	// Late askers get an immediate answer.
	n.Receive(ctx, 43, []byte{wire.KindGetDecided, 0})
	if len(ctx.sends[43]) == 0 || ctx.sends[43][0][0] != wire.KindDecided {
		t.Fatal("late asker not answered immediately")
	}
	// Integrity: second decide is a no-op.
	n.decideLocal(ctx, 0, model.Value("other"))
	if v, _ := n.Decided(); !v.Equal(model.Value("done")) {
		t.Fatal("decision overwritten")
	}
}

// Chained mode: five consecutive slots over the Fig 4a core; every correct
// process (member or polling non-member) gets the same chain.
func TestChainedSlotsOnFig4a(t *testing.T) {
	fig := graph.Fig4a()
	ids := fig.G.Nodes()
	signers, reg, err := cryptox.GenerateKeys(8, ids)
	if err != nil {
		t.Fatal(err)
	}
	const slots = 5
	engine := sim.NewEngine(sim.Synchronous{Delta: 5 * sim.Millisecond}, 8)
	chains := make(map[model.ID][]model.Value)
	nodes := make(map[model.ID]*Node)
	correct := fig.G.NodeSet().Diff(fig.Byz)
	for _, id := range ids {
		id := id
		chains[id] = make([]model.Value, slots)
		cfg := Config{
			Mode:  ModeUnknownF,
			PD:    fig.G.OutSet(id).Clone(),
			Slots: slots,
			ProposalFor: func(slot uint64) model.Value {
				return model.Value(fmt.Sprintf("block-%d-from-%d", slot, id))
			},
			OnSlotDecided: func(slot uint64, v model.Value) {
				chains[id][slot] = v
			},
		}
		n := NewNode(signers[id], reg, cfg, nil)
		nodes[id] = n
		if err := engine.AddProcess(id, n); err != nil {
			t.Fatal(err)
		}
		if fig.Byz.Has(id) {
			engine.Crash(id)
		}
	}
	ok := engine.RunUntil(func() bool {
		for id := range correct {
			if !nodes[id].DecidedAll() {
				return false
			}
		}
		return true
	}, 60*sim.Second)
	if !ok {
		t.Fatal("chained consensus did not complete all slots")
	}
	ref := chains[1]
	for id := range correct {
		for s := 0; s < slots; s++ {
			if !chains[id][s].Equal(ref[s]) {
				t.Fatalf("chain divergence at %v slot %d: %q vs %q", id, s, chains[id][s], ref[s])
			}
			if len(chains[id][s]) == 0 {
				t.Fatalf("empty block at %v slot %d", id, s)
			}
		}
	}
}
