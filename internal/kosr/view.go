package kosr

import (
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

// View is a process's current knowledge: the processes it knows exist
// (S_known) and the participant detectors it has received and verified
// (S_PD, whose key set is S_received).
//
// Views grown through the mutator API (SetPD, AddKnown) carry a revision
// counter, which is what lets a Searcher reuse work across searches: a
// search at an unchanged revision is a pure cache read, and a search after
// an insertion only recomputes what the insertion can change. Legacy direct
// map mutation keeps working for the from-scratch View methods below, but a
// Searcher requires mutator-maintained views (discovery maintains its view
// exclusively through them).
type View struct {
	// Known is S_known: every process this process has heard of.
	Known model.IDSet
	// PD maps a process to its (signed, verified) participant detector.
	// The key set is S_received.
	PD map[model.ID]model.IDSet

	// rev counts mutator-API mutations; gen counts content replacements (an
	// existing PD overwritten with a different set), which invalidate every
	// content-keyed memo rather than just the current decomposition.
	rev uint64
	gen uint64
}

// NewView returns an empty view.
func NewView() *View {
	return &View{Known: model.NewIDSet(), PD: make(map[model.ID]model.IDSet)}
}

// Rev returns the view's revision: a monotone counter bumped by every
// mutator-API change. Equal revisions of one View mean identical knowledge.
func (v *View) Rev() uint64 { return v.rev }

// Gen returns the view's content generation, bumped only when an existing PD
// record is replaced by a different set. Discovery never replaces a record
// (the first verified record per owner wins), so in protocol use the
// generation stays 0; the Searcher checks it anyway and drops every
// content-keyed memo when it moves.
func (v *View) Gen() uint64 { return v.gen }

// SetPD records owner's participant detector (S_PD gains the record, so
// S_received gains owner) and bumps the revision. The set is cloned; callers
// keep ownership of pd. Overwriting an existing record with a different set
// additionally bumps the generation.
func (v *View) SetPD(owner model.ID, pd model.IDSet) {
	if old, ok := v.PD[owner]; ok {
		if old.Equal(pd) {
			return
		}
		v.gen++
	}
	v.PD[owner] = pd.Clone()
	v.rev++
}

// AddKnown inserts id into S_known, bumping the revision and reporting true
// when it was absent.
func (v *View) AddKnown(id model.ID) bool {
	if !v.Known.Add(id) {
		return false
	}
	v.rev++
	return true
}

// FullView builds the omniscient view of a knowledge connectivity graph:
// every process received, every PD known. Used by the graph-theoretic
// checkers and tests.
func FullView(g *graph.Digraph) *View {
	v := NewView()
	for _, u := range g.Nodes() {
		v.AddKnown(u)
		v.SetPD(u, g.OutSet(u))
		for w := range g.OutSet(u) {
			v.AddKnown(w)
		}
	}
	return v
}

// Received returns S_received (processes whose PDs are present).
func (v *View) Received() model.IDSet {
	r := model.NewIDSet()
	for id := range v.PD {
		r.Add(id)
	}
	return r
}

// ReceivedGraph returns the digraph on the received processes, with edges
// given by their PDs restricted to received targets. S1 candidates always
// live inside a single SCC of this graph.
func (v *View) ReceivedGraph() *graph.Digraph {
	g := graph.New()
	for id := range v.PD {
		g.AddNode(id)
	}
	for id, pd := range v.PD {
		for tgt := range pd {
			if _, ok := v.PD[tgt]; ok {
				g.AddEdge(id, tgt)
			}
		}
	}
	return g
}

// OutTargets returns the set of processes outside s1 that members of s1
// point at (the target-counted quantity of P3).
func (v *View) OutTargets(s1 model.IDSet) model.IDSet {
	t := model.NewIDSet()
	for id := range s1 {
		for tgt := range v.PD[id] {
			if tgt != id && !s1.Has(tgt) {
				t.Add(tgt)
			}
		}
	}
	return t
}

// SourceCount returns |{i ∈ s1 : j ∈ PDᵢ}| (the source-counted quantity of
// P4).
func (v *View) SourceCount(s1 model.IDSet, j model.ID) int {
	n := 0
	for id := range s1 {
		if v.PD[id].Has(j) {
			n++
		}
	}
	return n
}

// DeriveS2 returns {j ∈ Known∖s1 : SourceCount(s1, j) > g} — the unique S2
// compatible with P4 for the given S1 and g.
func (v *View) DeriveS2(s1 model.IDSet, g int) model.IDSet {
	s2 := model.NewIDSet()
	for j := range v.OutTargets(s1) {
		if v.Known.Has(j) && v.SourceCount(s1, j) > g {
			s2.Add(j)
		}
	}
	return s2
}

// kappaAtLeast reports whether κ of the subgraph induced by s1 (using the
// received PDs) is at least k. Singletons have infinite connectivity by
// convention.
func (v *View) kappaAtLeast(s1 model.IDSet, k int) bool {
	if s1.Len() <= 1 {
		return true
	}
	return v.ReceivedGraph().Induced(s1).IsKStronglyConnected(k)
}

// IsSink implements isSinkGdi(g, S1, S2) — the predicate of Theorem 3:
//
//	P1: |S1| ≥ 2g+1;
//	P2: κ(G[S1]) ≥ g+1 (PDs of all S1 members must have been received);
//	P3: at most g distinct processes outside S1 are pointed at by S1;
//	P4: S2 = {j ∈ Known∖S1 : more than g members of S1 point at j}.
func (v *View) IsSink(g int, s1, s2 model.IDSet) bool {
	if g < 0 || s1.Len() < 2*g+1 {
		return false
	}
	// All of S1 must be received (P2 is uncomputable otherwise).
	for id := range s1 {
		if _, ok := v.PD[id]; !ok {
			return false
		}
	}
	if t := v.OutTargets(s1); t.Len() > g {
		return false
	}
	if !v.DeriveS2(s1, g).Equal(s2) {
		return false
	}
	return v.kappaAtLeast(s1, g+1)
}
