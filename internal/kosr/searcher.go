package kosr

import (
	"math/bits"
	"slices"
	"strconv"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

// Searcher is an incremental, scratch-reusing engine for the sink/core
// searches (Algorithms 2 and 4). One Searcher serves one process's view; the
// protocol stack keeps a Searcher per node and re-runs the search on every
// knowledge update, which is exactly the workload this engine is shaped for:
//
//   - The SCC decomposition of the received graph is recomputed only when the
//     view's revision moves (one knowledge event = one recomputation), on
//     reusable index-space Tarjan scratch instead of per-call maps.
//   - Per-SCC candidate lists are memoized by the component's member content.
//     A knowledge update dirties only the components it touches — a component
//     whose member set is unchanged has an unchanged induced subgraph (PD
//     records are immutable once received), so its (g+1)-core peel and its
//     enumeration survive the update verbatim.
//   - Per-S1 verdict facts (the |OutTargets| count and bounds on κ(G[S1]))
//     are memoized across revisions and thresholds, so when a component does
//     grow, only subsets involving the new members pay for max-flow probes.
//   - The max-flow κ checks run on one reusable graph.FlowScratch.
//
// Equivalence with the from-scratch View methods is exact: for every view
// and g, Searcher.SinksAtG returns precisely View.SinksAtG's candidates
// (property-tested over randomized insertion sequences). The determinism
// contract of the trace layer needs nothing less — committee adoption timing
// is trace-visible, so the searcher may only change how much work a search
// does, never its result.
//
// Soundness of the content-keyed memos rests on two view invariants that
// discovery maintains by construction and the mutator API enforces: views
// grow monotonically (records are never removed) and a received PD is never
// replaced (View.SetPD bumps the generation if one ever is, which drops
// every memo). Views mutated behind the API are not supported here; use the
// from-scratch View methods for those.
//
// A Searcher is for one goroutine. The zero value is ready to use. Returned
// candidates share their S1 sets with the memo — callers must treat
// candidates as immutable (they always could: the from-scratch methods'
// candidates are shared with nothing, but Members/Union copy anyway).
type Searcher struct {
	view     *View
	gen      uint64
	rev      uint64
	received int
	valid    bool

	// comps is the current decomposition: sorted members (slices of arena)
	// plus each component's canonical content key (mask or string).
	comps []sccComp
	arena []model.ID

	// maskable reports that every received ID fits the 1..64 bitmask ID
	// space, so subset and component content keys are uint64 masks (bit =
	// id-1) instead of strings. Mask keys are pure content identity — the
	// same cross-g, cross-revision and cross-rebind sharing as the string
	// keys, minus the key rendering. Views with larger IDs stay on the
	// string maps; the two key spaces never mix.
	maskable bool

	// pdSorted caches each received record's sorted PD (immutable per
	// generation). sccCands/sccCandsM memoize per-(g, component-content)
	// candidate lists; subsets/subsetsM memoize per-S1 verdict facts.
	pdSorted  map[model.ID][]model.ID
	sccCands  map[string]*sccEntry
	sccCandsM map[sccMaskKey]*sccEntry
	subsets   map[string]*subsetFacts
	subsetsM  map[uint64]*subsetFacts

	flow     graph.FlowScratch
	enum     poolEnum
	poolFlow graph.PoolFlow

	// Tarjan scratch, index space.
	ids      []model.ID
	idx      map[model.ID]int32
	adjStart []int32
	adjFlat  []int32
	num      []int32
	low      []int32
	onStack  []bool
	tstack   []int32
	frames   []tframe

	// Per-call scratch.
	outSet  model.IDSet
	keyBuf  []byte
	pairBuf []cachedCand
}

type tframe struct {
	u     int32
	child int32
}

type sccComp struct {
	ids  []model.ID
	key  string // content key; empty when the searcher is maskable
	mask uint64 // global content mask (bit = id-1); valid when maskable
}

// sccMaskKey is the (g, component-content) memo key of maskable views.
type sccMaskKey struct {
	g    int32
	mask uint64
}

// subsetFacts are the g-independent (out) and g-bounding (kLo/kHi) facts
// known about one S1 set. They depend only on the members' immutable PDs,
// so they never expire within a view generation.
type subsetFacts struct {
	out int32 // |OutTargets(S1)|; -1 until computed
	kLo int32 // κ(G[S1]) ≥ kLo proven
	kHi int32 // κ(G[S1]) < kHi proven; 0 = nothing proven yet
}

type cachedCand struct {
	s1  model.IDSet
	key string
}

// sccEntry is the memoized outcome of searching one component at one g: the
// S1 sets passing isSink's S1-side checks (P1, P3, κ), sorted by canonical
// key, plus whether the enumeration was exhaustive.
type sccEntry struct {
	cands []cachedCand
	exact bool
}

// Memo bounds: overflow clears the map (correctness is unaffected — the memo
// only saves recomputation). Protocol-sized views never approach these.
const (
	maxSubsetMemo = 1 << 17
	maxSCCMemo    = 1 << 12
)

// NewSearcher returns an empty searcher. The zero value works too.
func NewSearcher() *Searcher { return &Searcher{} }

// Search is the seam between the protocol stack and a sink/core search
// implementation: the three committee-identification rules a node can run.
// *Searcher (the incremental engine) is the production implementation;
// FromScratch is the reference the transparency tests inject.
type Search interface {
	// FindSinkKnownF is Algorithm 2's decision step (threshold known).
	FindSinkKnownF(v *View, f int) (Candidate, bool)
	// FindCore is Algorithm 4's decision step (threshold unknown).
	FindCore(v *View) (Candidate, bool)
	// FindNaive is Observation 1's unsafe any-sink rule.
	FindNaive(v *View) (Candidate, bool)
}

// FromScratch adapts the from-scratch View methods to the Search seam:
// every call re-runs the full SCC → peel → enumeration pipeline. The
// scenario-level transparency tests run whole sweeps on it and require
// byte-identical per-cell trace digests to the incremental engine.
type FromScratch struct{}

// FindSinkKnownF implements Search via View.FindSinkKnownF.
func (FromScratch) FindSinkKnownF(v *View, f int) (Candidate, bool) { return v.FindSinkKnownF(f) }

// FindCore implements Search via View.FindCore.
func (FromScratch) FindCore(v *View) (Candidate, bool) { return v.FindCore() }

// FindNaive implements Search via View.FindNaive.
func (FromScratch) FindNaive(v *View) (Candidate, bool) { return v.FindNaive() }

// bind resets every memo and points the searcher at a (new) view or view
// generation.
func (s *Searcher) bind(v *View) {
	s.view, s.gen, s.valid = v, v.gen, false
	if s.pdSorted == nil {
		s.pdSorted = make(map[model.ID][]model.ID)
		s.sccCands = make(map[string]*sccEntry)
		s.sccCandsM = make(map[sccMaskKey]*sccEntry)
		s.subsets = make(map[string]*subsetFacts)
		s.subsetsM = make(map[uint64]*subsetFacts)
		s.outSet = model.NewIDSet()
	} else {
		clear(s.pdSorted)
		clear(s.sccCands)
		clear(s.sccCandsM)
		clear(s.subsets)
		clear(s.subsetsM)
	}
}

// RebindPreserving points the searcher at a different view while keeping its
// content-keyed memos (the sorted-PD cache, the per-component candidate
// lists, the per-S1 verdict facts). The decomposition itself is recomputed on
// the next search. Sound only when every view the searcher visits draws its
// records from one immutable record universe — the same owner always mapping
// to the same PD set — differing only in which records are present. The
// worst-placement enumeration is exactly that workload: every f-subset's view
// is the full graph minus the subset's records, so a component with the same
// member content induces the same subgraph in every view, |OutTargets(S1)| is
// computed from S1's own PDs regardless of what else was received, and all
// three memos stay valid across rebinds.
func (s *Searcher) RebindPreserving(v *View) {
	if s.pdSorted == nil {
		s.bind(v)
		return
	}
	s.view, s.gen, s.valid = v, v.gen, false
}

// refresh brings the decomposition up to the view's current revision. At an
// unchanged revision this is two comparisons.
func (s *Searcher) refresh(v *View) {
	if s.view != v || s.gen != v.gen {
		s.bind(v)
	}
	// len(v.PD) is a tripwire for records inserted behind the mutator API:
	// such views still decompose correctly (the content memos only depend on
	// record immutability, which direct insertion preserves).
	if s.valid && s.rev == v.rev && s.received == len(v.PD) {
		return
	}
	s.decompose(v)
	s.rev, s.received, s.valid = v.rev, len(v.PD), true
}

// decompose recomputes the SCCs of the received graph (Tarjan, index space,
// reused scratch) and their content keys.
func (s *Searcher) decompose(v *View) {
	s.ids = s.ids[:0]
	for id := range v.PD {
		s.ids = append(s.ids, id)
	}
	slices.Sort(s.ids)
	n := len(s.ids)
	s.maskable = n == 0 || (s.ids[0] >= 1 && s.ids[n-1] <= 64)
	if s.idx == nil {
		s.idx = make(map[model.ID]int32, n)
	} else {
		clear(s.idx)
	}
	for i, id := range s.ids {
		s.idx[id] = int32(i)
	}
	// CSR adjacency restricted to received targets, built from the sorted-PD
	// cache (filled on first sight of each record).
	s.adjStart = append(s.adjStart[:0], 0)
	s.adjFlat = s.adjFlat[:0]
	for _, u := range s.ids {
		pd, ok := s.pdSorted[u]
		if !ok {
			pd = v.PD[u].Sorted()
			s.pdSorted[u] = pd
		}
		for _, tgt := range pd {
			if tgt == u {
				continue
			}
			if j, ok := s.idx[tgt]; ok {
				s.adjFlat = append(s.adjFlat, j)
			}
		}
		s.adjStart = append(s.adjStart, int32(len(s.adjFlat)))
	}

	// Iterative Tarjan (mirrors graph.Digraph.SCCs).
	if cap(s.num) < n {
		s.num = make([]int32, n)
		s.low = make([]int32, n)
		s.onStack = make([]bool, n)
	}
	s.num, s.low, s.onStack = s.num[:n], s.low[:n], s.onStack[:n]
	for i := 0; i < n; i++ {
		s.num[i] = -1
		s.onStack[i] = false
	}
	s.tstack = s.tstack[:0]
	s.frames = s.frames[:0]
	s.arena = s.arena[:0]
	s.comps = s.comps[:0]
	var bounds []int32 // arena offsets of component boundaries
	counter := int32(0)
	for root := int32(0); root < int32(n); root++ {
		if s.num[root] >= 0 {
			continue
		}
		s.frames = append(s.frames, tframe{u: root})
		s.num[root], s.low[root] = counter, counter
		counter++
		s.tstack = append(s.tstack, root)
		s.onStack[root] = true
		for len(s.frames) > 0 {
			f := &s.frames[len(s.frames)-1]
			u := f.u
			outs := s.adjFlat[s.adjStart[u]:s.adjStart[u+1]]
			advanced := false
			for f.child < int32(len(outs)) {
				w := outs[f.child]
				f.child++
				if s.num[w] < 0 {
					s.num[w], s.low[w] = counter, counter
					counter++
					s.tstack = append(s.tstack, w)
					s.onStack[w] = true
					s.frames = append(s.frames, tframe{u: w})
					advanced = true
					break
				} else if s.onStack[w] && s.num[w] < s.low[u] {
					s.low[u] = s.num[w]
				}
			}
			if advanced {
				continue
			}
			s.frames = s.frames[:len(s.frames)-1]
			if len(s.frames) > 0 {
				p := &s.frames[len(s.frames)-1]
				if s.low[u] < s.low[p.u] {
					s.low[p.u] = s.low[u]
				}
			}
			if s.low[u] == s.num[u] {
				start := len(s.arena)
				for {
					w := s.tstack[len(s.tstack)-1]
					s.tstack = s.tstack[:len(s.tstack)-1]
					s.onStack[w] = false
					s.arena = append(s.arena, s.ids[w])
					if w == u {
						break
					}
				}
				slices.Sort(s.arena[start:])
				bounds = append(bounds, int32(start), int32(len(s.arena)))
			}
		}
	}
	// Materialize comps only after the arena stops growing (appends may move
	// its backing array).
	for i := 0; i < len(bounds); i += 2 {
		members := s.arena[bounds[i]:bounds[i+1]]
		c := sccComp{ids: members}
		if s.maskable {
			c.mask = maskOfIDs(members)
		} else {
			c.key = string(idsKey(s.keyBuf[:0], members))
		}
		s.comps = append(s.comps, c)
	}
}

// maskOfIDs folds ids (all in 1..64) into the global content mask, bit id-1.
func maskOfIDs(ids []model.ID) uint64 {
	var m uint64
	for _, id := range ids {
		m |= 1 << (id - 1)
	}
	return m
}

// idsKey renders sorted ids as the canonical comma-joined decimal key
// (matching model.IDSet.Key) into buf.
func idsKey(buf []byte, ids []model.ID) []byte {
	for i, id := range ids {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, uint64(id), 10)
	}
	return buf
}

// SinksAtG enumerates candidates (S1, S2) with isSink(g, S1, S2) in the
// view, exactly as View.SinksAtG does, but incrementally. Results are
// deterministic: sorted by the canonical key of S1.
func (s *Searcher) SinksAtG(v *View, g int) []Candidate {
	cands, _ := s.SinksAtGExact(v, g)
	return cands
}

// SinksAtGExact additionally reports whether the enumeration was exhaustive.
func (s *Searcher) SinksAtGExact(v *View, g int) ([]Candidate, bool) {
	exact := true
	pairs := s.collect(v, g, &exact)
	if len(pairs) == 0 {
		return nil, exact
	}
	out := make([]Candidate, 0, len(pairs))
	for _, c := range pairs {
		out = append(out, Candidate{G: g, S1: c.s1, S2: v.DeriveS2(c.s1, g)})
	}
	return out, exact
}

// collect gathers the passing S1 sets at g across all components, sorted by
// canonical key, in the searcher's pair scratch (valid until the next call).
func (s *Searcher) collect(v *View, g int, exact *bool) []cachedCand {
	if g < 0 {
		return nil
	}
	s.refresh(v)
	s.pairBuf = s.pairBuf[:0]
	for i := range s.comps {
		ent := s.entryFor(v, g, &s.comps[i])
		if !ent.exact {
			*exact = false
		}
		s.pairBuf = append(s.pairBuf, ent.cands...)
	}
	slices.SortFunc(s.pairBuf, func(a, b cachedCand) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	return s.pairBuf
}

// first returns the candidate View.SinksAtG(g)[0] would return, deriving S2
// only for the winner.
func (s *Searcher) first(v *View, g int) (Candidate, bool) {
	exact := true
	pairs := s.collect(v, g, &exact)
	if len(pairs) == 0 {
		return Candidate{}, false
	}
	c := pairs[0]
	return Candidate{G: g, S1: c.s1, S2: v.DeriveS2(c.s1, g)}, true
}

// entryFor resolves one component's memoized search at g: mask-keyed on
// maskable views, string-keyed otherwise. Both maps share the cap.
func (s *Searcher) entryFor(v *View, g int, comp *sccComp) *sccEntry {
	if s.maskable {
		mk := sccMaskKey{g: int32(g), mask: comp.mask}
		if e, ok := s.sccCandsM[mk]; ok {
			return e
		}
		e := s.searchComp(v, g, comp)
		if len(s.sccCandsM)+len(s.sccCands) >= maxSCCMemo {
			clear(s.sccCandsM)
			clear(s.sccCands)
		}
		s.sccCandsM[mk] = e
		return e
	}
	s.keyBuf = strconv.AppendInt(s.keyBuf[:0], int64(g), 10)
	s.keyBuf = append(s.keyBuf, '|')
	s.keyBuf = append(s.keyBuf, comp.key...)
	if e, ok := s.sccCands[string(s.keyBuf)]; ok {
		return e
	}
	// Materialize the key before searching: searchComp's subset enumeration
	// reuses keyBuf for per-S1 keys.
	key := string(s.keyBuf)
	e := s.searchComp(v, g, comp)
	if len(s.sccCandsM)+len(s.sccCands) >= maxSCCMemo {
		clear(s.sccCandsM)
		clear(s.sccCands)
	}
	s.sccCands[key] = e
	return e
}

// searchComp mirrors the per-SCC block of View.sinksAtG: peel, then exact
// subset enumeration up to ExactLimit, else structural candidates.
func (s *Searcher) searchComp(v *View, g int, comp *sccComp) *sccEntry {
	e := &sccEntry{exact: true}
	if len(comp.ids) < 2*g+1 {
		// The peeled pool can only shrink; skip building the induced graph.
		return e
	}
	induced := s.inducedOf(comp)
	pool := induced.NodeSet()
	if g >= 1 {
		pool = induced.DirectedCore(g + 1)
	}
	if pool.Len() < 2*g+1 {
		return e
	}
	if pool.Len() <= ExactLimit {
		s.enumeratePool(v, g, pool.Sorted(), e)
	} else {
		e.exact = false
		// Structural candidates: the peeled pool itself and the pool minus
		// each single low-degree vertex.
		seen := make(map[string]bool)
		try := func(s1 model.IDSet) {
			if s1.Len() < 2*g+1 {
				return
			}
			key := s1.Key()
			if seen[key] {
				return
			}
			seen[key] = true
			if s.passes(v, g, s1, key) {
				e.cands = append(e.cands, cachedCand{s1: s1, key: key})
			}
		}
		try(pool)
		sub := induced.Induced(pool)
		for _, u := range pool.Sorted() {
			rest := pool.Clone()
			rest.Remove(u)
			if g >= 1 {
				rest = sub.Induced(rest).DirectedCore(g + 1)
			}
			if rest.Len() >= 2*g+1 {
				try(rest)
			}
		}
	}
	slices.SortFunc(e.cands, func(a, b cachedCand) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	return e
}

// enumeratePool walks the subsets of the (sorted, ≤ ExactLimit ≤ 64) pool
// through the dominated-subset-pruned bitset enumerator: poolEnum cuts whole
// subtrees that cannot pass P1/P3/κ, the survivors resolve their verdict
// facts by content key (global bitmask on maskable views), and κ probes run
// on the pool-local PoolFlow engine — no per-subset graph materialization.
// The enumerator's prunes are sound (see poolEnum), so the passing set is
// exactly the plain mask walk's; candidates are materialized only on pass.
func (s *Searcher) enumeratePool(v *View, g int, pool []model.ID, e *sccEntry) {
	pe := &s.enum
	pe.init(pool, g, func(u model.ID, yield func(model.ID)) {
		for _, tgt := range s.pdSorted[u] {
			yield(tgt)
		}
	})
	s.poolFlow.Reset(pe.adj[:pe.n])
	k := int32(g + 1)
	pe.run(func(inc uint64, out int, outExact bool) {
		var f *subsetFacts
		if s.maskable {
			var gmask uint64
			for rest := inc; rest != 0; {
				i := bits.TrailingZeros64(rest)
				rest &= rest - 1
				gmask |= 1 << (pool[i] - 1)
			}
			f = s.factsForMask(gmask)
		} else {
			buf := s.keyBuf[:0]
			for rest := inc; rest != 0; {
				i := bits.TrailingZeros64(rest)
				rest &= rest - 1
				if len(buf) > 0 {
					buf = append(buf, ',')
				}
				buf = strconv.AppendUint(buf, uint64(pool[i]), 10)
			}
			s.keyBuf = buf
			f = s.factsForKey(string(buf))
		}
		if f.out < 0 {
			if outExact {
				f.out = int32(out)
			} else {
				f.out = int32(s.countOutTargetsMask(v, pool, inc))
			}
		}
		if int(f.out) > g {
			return
		}
		if bits.OnesCount64(inc) > 1 {
			switch {
			case k <= f.kLo:
				// κ ≥ g+1 already proven.
			case f.kHi != 0 && k >= f.kHi:
				return
			default:
				if !s.poolFlow.KappaAtLeast(inc, int(k)) {
					if f.kHi == 0 || k < f.kHi {
						f.kHi = k
					}
					return
				}
				if k > f.kLo {
					f.kLo = k
				}
			}
		}
		s1 := model.NewIDSet()
		buf := s.keyBuf[:0]
		for rest := inc; rest != 0; {
			i := bits.TrailingZeros64(rest)
			rest &= rest - 1
			u := pool[i]
			s1.Add(u)
			if len(buf) > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendUint(buf, uint64(u), 10)
		}
		s.keyBuf = buf
		e.cands = append(e.cands, cachedCand{s1: s1, key: string(buf)})
	})
}

// countOutTargetsMask is countOutTargets for a subset given as a mask over a
// sorted pool, without materializing the IDSet. Only reached when the
// enumerator's out count is a lower bound (> 64 distinct external targets).
func (s *Searcher) countOutTargetsMask(v *View, pool []model.ID, inc uint64) int {
	clear(s.outSet)
	for rest := inc; rest != 0; {
		i := bits.TrailingZeros64(rest)
		rest &= rest - 1
		u := pool[i]
		for _, tgt := range s.pdSorted[u] {
			if tgt == u {
				continue
			}
			if j, ok := slices.BinarySearch(pool, tgt); ok && inc&(1<<j) != 0 {
				continue
			}
			s.outSet.Add(tgt)
		}
	}
	return s.outSet.Len()
}

// factsForMask resolves the verdict-facts record keyed by global content
// mask; factsForKey is the string-keyed fallback for views with IDs > 64.
// The two maps share the memo cap.
func (s *Searcher) factsForMask(mask uint64) *subsetFacts {
	if f, ok := s.subsetsM[mask]; ok {
		return f
	}
	if len(s.subsetsM)+len(s.subsets) >= maxSubsetMemo {
		clear(s.subsetsM)
		clear(s.subsets)
	}
	f := &subsetFacts{out: -1}
	s.subsetsM[mask] = f
	return f
}

func (s *Searcher) factsForKey(key string) *subsetFacts {
	if f, ok := s.subsets[key]; ok {
		return f
	}
	if len(s.subsetsM)+len(s.subsets) >= maxSubsetMemo {
		clear(s.subsetsM)
		clear(s.subsets)
	}
	f := &subsetFacts{out: -1}
	s.subsets[key] = f
	return f
}

// passes applies isSink's S1-side checks (P1 size, P3 out-target bound, P2/κ
// connectivity) through the per-S1 verdict memo. key must be s1's canonical
// key.
func (s *Searcher) passes(v *View, g int, s1 model.IDSet, key string) bool {
	if s1.Len() < 2*g+1 {
		return false
	}
	var f *subsetFacts
	if s.maskable {
		var mask uint64
		for id := range s1 {
			mask |= 1 << (id - 1)
		}
		f = s.factsForMask(mask)
	} else {
		f = s.factsForKey(key)
	}
	if f.out < 0 {
		f.out = int32(s.countOutTargets(v, s1))
	}
	if int(f.out) > g {
		return false
	}
	if s1.Len() > 1 {
		k := int32(g + 1)
		switch {
		case k <= f.kLo:
			// κ ≥ k already proven.
		case f.kHi != 0 && k >= f.kHi:
			return false
		default:
			if !s.kappaAtLeast(s1, int(k)) {
				if f.kHi == 0 || k < f.kHi {
					f.kHi = k
				}
				return false
			}
			if k > f.kLo {
				f.kLo = k
			}
		}
	}
	return true
}

// countOutTargets counts |OutTargets(s1)| on reused scratch.
func (s *Searcher) countOutTargets(v *View, s1 model.IDSet) int {
	clear(s.outSet)
	for id := range s1 {
		for tgt := range v.PD[id] {
			if tgt != id && !s1.Has(tgt) {
				s.outSet.Add(tgt)
			}
		}
	}
	return s.outSet.Len()
}

// kappaAtLeast checks κ(G[s1]) ≥ k on the received PDs, on the shared flow
// scratch. Matches View.kappaAtLeast (every member of s1 is received here).
func (s *Searcher) kappaAtLeast(s1 model.IDSet, k int) bool {
	if s1.Len() <= 1 {
		return true
	}
	gd := graph.New()
	for id := range s1 {
		gd.AddNode(id)
	}
	for id := range s1 {
		for _, tgt := range s.pdSorted[id] {
			if tgt != id && s1.Has(tgt) {
				gd.AddEdge(id, tgt)
			}
		}
	}
	return gd.IsKStronglyConnectedScratch(&s.flow, k)
}

// inducedOf builds the component's induced subgraph of the received graph.
func (s *Searcher) inducedOf(comp *sccComp) *graph.Digraph {
	gd := graph.New()
	for _, u := range comp.ids {
		gd.AddNode(u)
	}
	for _, u := range comp.ids {
		for _, tgt := range s.pdSorted[u] {
			if tgt != u && gd.HasNode(tgt) {
				gd.AddEdge(u, tgt)
			}
		}
	}
	return gd
}

// FindSinkKnownF is View.FindSinkKnownF through the incremental engine
// (Algorithm 2's decision step).
func (s *Searcher) FindSinkKnownF(v *View, f int) (Candidate, bool) {
	return s.first(v, f)
}

// FindCore is View.FindCore through the incremental engine (Algorithm 4's
// decision step): g scanned from the view's maximum downward.
func (s *Searcher) FindCore(v *View) (Candidate, bool) {
	for g := v.MaxG(); g >= 0; g-- {
		if c, ok := s.first(v, g); ok {
			return c, true
		}
	}
	return Candidate{}, false
}

// FindNaive is View.FindNaive through the incremental engine (Observation
// 1's unsafe any-sink rule): g scanned upward.
func (s *Searcher) FindNaive(v *View) (Candidate, bool) {
	for g := 0; g <= v.MaxG(); g++ {
		if c, ok := s.first(v, g); ok {
			return c, true
		}
	}
	return Candidate{}, false
}

// SearchReplay is the shared discovery-replay benchmark workload: the full
// view of one graph, inserted one record at a time in sorted owner order
// into a fresh view, with one search per insertion — the per-event search
// schedule a node runs. Both benchmark harnesses (the go-test benchmarks
// and `experiments -bench-json`) run replays through this one type, so
// their trajectory numbers measure the same schedule by construction.
type SearchReplay struct {
	full   *View
	owners []model.ID
	known  []model.ID
}

// NewSearchReplay captures the replay inputs for one graph.
func NewSearchReplay(g *graph.Digraph) *SearchReplay {
	full := FullView(g)
	return &SearchReplay{full: full, owners: full.Received().Sorted(), known: full.Known.Sorted()}
}

// Run replays the schedule against a fresh view and searcher, invoking
// search after every insertion (from-scratch searches ignore the searcher).
// It reports whether any search succeeded.
func (r *SearchReplay) Run(search func(se *Searcher, v *View) bool) bool {
	v := NewView()
	se := NewSearcher()
	for _, id := range r.known {
		v.AddKnown(id)
	}
	found := false
	for _, owner := range r.owners {
		v.SetPD(owner, r.full.PD[owner])
		if search(se, v) {
			found = true
		}
	}
	return found
}
