package kosr

import (
	"fmt"
	"sort"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

// ExtendedReport is the verdict of CheckExtendedKOSR.
type ExtendedReport struct {
	// OK reports membership in extended k-OSR PD; K echoes the checked k.
	OK     bool
	K      int
	Core   model.IDSet // Vcore when OK
	FG     int         // f_Gdi(Vcore) = k_Gdi(Vcore) - 1
	Exact  bool        // whether sink enumeration was exhaustive
	Reason string      // empty when OK
	// Sinks lists every distinct sink set found, with its f_G, for
	// diagnostics and the experiments' tables.
	Sinks []SinkInfo
}

// SinkInfo describes one sink set found during extended-k-OSR checking.
type SinkInfo struct {
	// Members is the sink set; FG its fault capacity f_G.
	Members model.IDSet
	FG      int
}

// CheckExtendedKOSR verifies Definition 2 (extended k-OSR PD) for g:
// the graph belongs to k-OSR PD, and there is a core — a sink with strictly
// maximum connectivity among all sinks (C1) — reachable from every non-core
// node through k_Gdi(Vcore) node-disjoint paths (C2).
func CheckExtendedKOSR(gdi *graph.Digraph, k int) ExtendedReport {
	r := ExtendedReport{K: k, Exact: true}
	base := graph.CheckKOSR(gdi, k)
	if !base.OK {
		r.Reason = "not k-OSR: " + base.Reason
		return r
	}
	v := FullView(gdi)
	// Enumerate every sink set at every g; record the max g per set. The
	// Searcher shares the κ/out-target verdict memos and the flow scratch
	// across the whole g sweep (results are identical to the from-scratch
	// View methods; only the work shrinks).
	se := NewSearcher()
	fgOf := make(map[string]int)
	setOf := make(map[string]model.IDSet)
	for g := v.MaxG(); g >= 0; g-- {
		cands, exact := se.SinksAtGExact(v, g)
		if !exact {
			r.Exact = false
		}
		for _, c := range cands {
			m := c.Members()
			key := m.Key()
			if old, ok := fgOf[key]; !ok || g > old {
				fgOf[key] = g
				setOf[key] = m
			}
		}
	}
	if len(fgOf) == 0 {
		r.Reason = "no sink satisfies isSink* in the full view"
		return r
	}
	keys := make([]string, 0, len(fgOf))
	for key := range fgOf {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		r.Sinks = append(r.Sinks, SinkInfo{Members: setOf[key], FG: fgOf[key]})
	}
	// C1: a unique sink of strictly maximum connectivity.
	best, bestCount := -1, 0
	var core model.IDSet
	for _, s := range r.Sinks {
		switch {
		case s.FG > best:
			best, bestCount, core = s.FG, 1, s.Members
		case s.FG == best:
			bestCount++
		}
	}
	if bestCount != 1 {
		r.Reason = fmt.Sprintf("C1 fails: %d distinct sinks share the maximum connectivity %d", bestCount, best+1)
		return r
	}
	r.Core, r.FG = core, best
	// C1 also requires k_Gdi(Vcore) ≥ k (the paper derives this from the
	// graph being k-OSR; verify it anyway).
	if best+1 < k {
		r.Reason = fmt.Sprintf("core connectivity %d below k=%d", best+1, k)
		return r
	}
	// C2: every non-core node reaches every core node through k_Gdi(Vcore)
	// node-disjoint paths.
	kCore := best + 1
	var prober graph.FlowProber
	prober.Load(gdi)
	for _, u := range gdi.Nodes() {
		if core.Has(u) {
			continue
		}
		for _, w := range core.Sorted() {
			if !prober.HasKDisjointPaths(u, w, kCore) {
				r.Reason = fmt.Sprintf("C2 fails: fewer than %d node-disjoint paths from %v to core node %v", kCore, u, w)
				return r
			}
		}
	}
	r.OK = true
	return r
}

// BFTCUPFTReport is the verdict of CheckBFTCUPFT.
type BFTCUPFTReport struct {
	// OK reports whether the BFT-CUPFT requirements hold; F echoes the
	// actual Byzantine count the safe subgraph was computed with.
	OK   bool
	F    int
	Core model.IDSet // core of the safe subgraph
	// FG is the core's fault capacity f_G; Reason is empty when OK.
	FG     int
	Reason string
}

// CheckBFTCUPFT verifies the BFT-CUPFT model requirements (Section V): the
// safe subgraph belongs to extended (f+1)-OSR PD and its core contains at
// least 2f+1 processes.
func CheckBFTCUPFT(gdi *graph.Digraph, byz model.IDSet, f int) BFTCUPFTReport {
	r := BFTCUPFTReport{F: f}
	if byz.Len() > f {
		r.Reason = fmt.Sprintf("%d Byzantine nodes exceed fault threshold f=%d", byz.Len(), f)
		return r
	}
	safe := gdi.Without(byz)
	ext := CheckExtendedKOSR(safe, f+1)
	if !ext.OK {
		r.Reason = "safe subgraph not extended (f+1)-OSR: " + ext.Reason
		return r
	}
	if ext.Core.Len() < 2*f+1 {
		r.Reason = fmt.Sprintf("core of safe subgraph has %d processes, want ≥ %d", ext.Core.Len(), 2*f+1)
		return r
	}
	r.OK, r.Core, r.FG = true, ext.Core, ext.FG
	return r
}
