package kosr

import (
	"testing"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

func ids(xs ...model.ID) model.IDSet { return model.NewIDSet(xs...) }

func TestFullView(t *testing.T) {
	fig := graph.Fig1b()
	v := FullView(fig.G)
	if !v.Received().Equal(fig.G.NodeSet()) {
		t.Fatalf("received = %v", v.Received())
	}
	if !v.Known.Equal(fig.G.NodeSet()) {
		t.Fatalf("known = %v", v.Known)
	}
	if !v.PD[1].Equal(ids(2, 3, 4)) {
		t.Fatalf("PD(1) = %v, want {2,3,4} per the paper's caption", v.PD[1])
	}
}

func TestOutTargetsAndSourceCount(t *testing.T) {
	v := FullView(graph.Fig1b().G)
	s1 := ids(1, 2, 3)
	if tg := v.OutTargets(s1); !tg.Equal(ids(4)) {
		t.Fatalf("OutTargets({1,2,3}) = %v, want {4}", tg)
	}
	if n := v.SourceCount(s1, 4); n != 3 {
		t.Fatalf("SourceCount = %d, want 3", n)
	}
	if n := v.SourceCount(s1, 5); n != 0 {
		t.Fatalf("SourceCount of non-target = %d, want 0", n)
	}
}

// The Section III worked example: on Fig 1b, process 2 is slow and Byzantine
// process 4 sends PD = {1,2,3}. Process 1's view then satisfies
// isSink(1, {1,3,4}, {2}), and the Sink algorithm returns {1,2,3,4}.
func TestPaperWorkedExampleFig1b(t *testing.T) {
	v := NewView()
	v.Known = ids(1, 2, 3, 4)
	v.PD[1] = ids(2, 3, 4)
	v.PD[3] = ids(1, 2, 4)
	v.PD[4] = ids(1, 2, 3) // Byzantine claim
	if !v.IsSink(1, ids(1, 3, 4), ids(2)) {
		t.Fatal("isSink(1, {1,3,4}, {2}) should hold")
	}
	c, ok := v.FindSinkKnownF(1)
	if !ok {
		t.Fatal("Sink algorithm should terminate in this view")
	}
	if !c.Members().Equal(ids(1, 2, 3, 4)) {
		t.Fatalf("sink = %v, want {1,2,3,4}", c.Members())
	}
	if !c.S2.Equal(ids(2)) {
		t.Fatalf("S2 = %v, want {2}", c.S2)
	}
}

// Section IV's arithmetic: isSink(1, {1,2,3}, {4}) on system A and
// isSink(1, {6,7,8}, {5}) on system B.
func TestPaperImpossibilityArithmetic(t *testing.T) {
	va := FullView(graph.Fig2a().G)
	if !va.IsSink(1, ids(1, 2, 3), ids(4)) {
		t.Fatal("isSink(1, {1,2,3}, {4}) should hold on system A")
	}
	vb := FullView(graph.Fig2b().G)
	if !vb.IsSink(1, ids(6, 7, 8), ids(5)) {
		t.Fatal("isSink(1, {6,7,8}, {5}) should hold on system B")
	}
}

// Observation 1's example on Fig 3a: isSink(2, {1,2,3,4,6}, {5,7}) holds even
// though {1,2,3,4,6} are non-sink members.
func TestPaperFalseSinkArithmetic(t *testing.T) {
	v := FullView(graph.Fig3a().G)
	if !v.IsSink(2, ids(1, 2, 3, 4, 6), ids(5, 7)) {
		t.Fatal("isSink(2, {1,2,3,4,6}, {5,7}) should hold on Fig 3a")
	}
	// And the true sink satisfies isSink(1, {5,7,8}, ∅).
	if !v.IsSink(1, ids(5, 7, 8), ids()) {
		t.Fatal("isSink(1, {5,7,8}, ∅) should hold on Fig 3a")
	}
}

func TestIsSinkRejections(t *testing.T) {
	v := FullView(graph.Fig1b().G)
	cases := []struct {
		name string
		g    int
		s1   model.IDSet
		s2   model.IDSet
	}{
		{"negative g", -1, ids(1, 2, 3), ids()},
		{"S1 too small for g", 2, ids(1, 2, 3), ids(4)},
		{"wrong S2", 1, ids(1, 2, 3), ids()},
		{"S2 contains non-target", 1, ids(1, 2, 3), ids(4, 5)},
		{"too many escape targets", 0, ids(1, 2, 3), ids()},
		{"unreceived member of S1", 1, ids(1, 2, 9), ids()},
	}
	for _, c := range cases {
		if v.IsSink(c.g, c.s1, c.s2) {
			t.Errorf("%s: isSink unexpectedly true", c.name)
		}
	}
}

// A singleton with no outgoing knowledge is a 0-sink (κ convention).
func TestIsSinkSingleton(t *testing.T) {
	v := NewView()
	v.Known = ids(1)
	v.PD[1] = ids()
	if !v.IsSink(0, ids(1), ids()) {
		t.Fatal("lone process should be a 0-sink")
	}
	c, ok := v.FindCore()
	if !ok || !c.Members().Equal(ids(1)) || c.G != 0 {
		t.Fatalf("FindCore on singleton = %+v, %v", c, ok)
	}
}

func TestIsSinkConnectivityMatters(t *testing.T) {
	// {1,2,3} with only a directed 3-cycle has κ=1 < g+1 for g=1.
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	v := FullView(g)
	if v.IsSink(1, ids(1, 2, 3), ids()) {
		t.Fatal("3-cycle has κ=1 and must fail g=1")
	}
	if !v.IsSink(0, ids(1, 2, 3), ids()) {
		t.Fatal("3-cycle should pass g=0")
	}
}

func TestReceivedGraphRestrictsToReceived(t *testing.T) {
	v := NewView()
	v.Known = ids(1, 2, 3)
	v.PD[1] = ids(2, 3)
	v.PD[2] = ids(1)
	rg := v.ReceivedGraph()
	if rg.HasNode(3) {
		t.Fatal("node 3 has no received PD and must not be in the received graph")
	}
	if !rg.HasEdge(1, 2) || !rg.HasEdge(2, 1) {
		t.Fatal("received edges missing")
	}
}

func TestDeriveS2Threshold(t *testing.T) {
	v := NewView()
	v.Known = ids(1, 2, 3, 4, 5)
	v.PD[1] = ids(2, 4)
	v.PD[2] = ids(1, 4, 5)
	v.PD[3] = ids(1, 2)
	s1 := ids(1, 2, 3)
	// 4 has two sources (1,2); 5 has one source (2).
	if s2 := v.DeriveS2(s1, 1); !s2.Equal(ids(4)) {
		t.Fatalf("DeriveS2(g=1) = %v, want {4}", s2)
	}
	if s2 := v.DeriveS2(s1, 0); !s2.Equal(ids(4, 5)) {
		t.Fatalf("DeriveS2(g=0) = %v, want {4,5}", s2)
	}
	if s2 := v.DeriveS2(s1, 2); s2.Len() != 0 {
		t.Fatalf("DeriveS2(g=2) = %v, want empty", s2)
	}
}
