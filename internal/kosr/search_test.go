package kosr

import (
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

func TestCandidateParameters(t *testing.T) {
	c := Candidate{G: 1, S1: ids(1, 2, 3), S2: ids(4)}
	if !c.Members().Equal(ids(1, 2, 3, 4)) {
		t.Fatalf("Members = %v", c.Members())
	}
	if q := c.QuorumSize(); q != 3 { // ⌈(4+1+1)/2⌉
		t.Fatalf("QuorumSize = %d, want 3", q)
	}
	if a := c.AnswerThreshold(); a != 3 { // ⌈(4+1)/2⌉... ⌈5/2⌉ = 3
		t.Fatalf("AnswerThreshold = %d, want 3", a)
	}
	// Classic PBFT sizing: |S| = 3f+1 = 7, g = 2 ⇒ quorum 5 = 2f+1.
	c2 := Candidate{G: 2, S1: ids(1, 2, 3, 4, 5, 6, 7), S2: ids()}
	if q := c2.QuorumSize(); q != 5 {
		t.Fatalf("QuorumSize(7,2) = %d, want 5", q)
	}
}

// Every g=1 candidate on the full Fig 1b view has the same member union
// {1,2,3,4}: the Sink algorithm's answer is partition-independent
// (Theorem 4).
func TestSinksAtGUnionUniqueFig1b(t *testing.T) {
	v := FullView(graph.Fig1b().G)
	cands := v.SinksAtG(1)
	if len(cands) == 0 {
		t.Fatal("no g=1 sinks on Fig 1b")
	}
	for _, c := range cands {
		if !c.Members().Equal(ids(1, 2, 3, 4)) {
			t.Fatalf("candidate %v∪%v != {1,2,3,4}", c.S1, c.S2)
		}
	}
	c, ok := v.FindSinkKnownF(1)
	if !ok || !c.Members().Equal(ids(1, 2, 3, 4)) {
		t.Fatalf("FindSinkKnownF = %+v, %v", c, ok)
	}
}

// The Sink algorithm terminates even when the Byzantine sink member stays
// silent: S2 absorbs it.
func TestFindSinkSilentByzantine(t *testing.T) {
	fig := graph.Fig1b()
	v := NewView()
	// Correct processes 1,2,3 exchanged PDs; 4 never spoke.
	for _, id := range []model.ID{1, 2, 3} {
		v.PD[id] = fig.G.OutSet(id).Clone()
	}
	v.Known = ids(1, 2, 3, 4)
	c, ok := v.FindSinkKnownF(1)
	if !ok {
		t.Fatal("sink not found with silent Byzantine member")
	}
	if !c.S1.Equal(ids(1, 2, 3)) || !c.S2.Equal(ids(4)) {
		t.Fatalf("partition = %v / %v", c.S1, c.S2)
	}
}

// Too little knowledge: with only two PDs received there is no sink at f=1,
// so the algorithm keeps waiting (Algorithm 2's wait-until).
func TestFindSinkInsufficientView(t *testing.T) {
	fig := graph.Fig1b()
	v := NewView()
	v.PD[1] = fig.G.OutSet(1).Clone()
	v.PD[2] = fig.G.OutSet(2).Clone()
	v.Known = ids(1, 2, 3, 4)
	if _, ok := v.FindSinkKnownF(1); ok {
		t.Fatal("sink found with |received| = 2 < 2f+1")
	}
}

func TestFindCoreFigures(t *testing.T) {
	cases := []struct {
		fig  graph.Figure
		want model.IDSet
		g    int
	}{
		{graph.Fig4a(), ids(1, 2, 3, 4), 1},
		{graph.Fig4b(), func() model.IDSet {
			s := model.NewIDSet()
			for i := model.ID(8); i <= 15; i++ {
				s.Add(i)
			}
			return s
		}(), 3},
	}
	for _, c := range cases {
		v := FullView(c.fig.G)
		got, ok := v.FindCore()
		if !ok {
			t.Fatalf("%s: FindCore did not terminate on the full view", c.fig.Name)
		}
		if !got.Members().Equal(c.want) {
			t.Fatalf("%s: core = %v, want %v", c.fig.Name, got.Members(), c.want)
		}
		if got.G != c.g {
			t.Fatalf("%s: g = %d, want %d", c.fig.Name, got.G, c.g)
		}
	}
}

// The Theorem 7 construction: the A-side view finds committee {1,2,3,4}, the
// B-side view finds {5,6,7,8} — disjoint committees, hence the Agreement
// violation that the scenario-level experiment reproduces end to end.
func TestFindCoreFig2cSplitBrain(t *testing.T) {
	fig := graph.Fig2c()
	va := NewView()
	for _, id := range []model.ID{1, 2, 3} {
		va.PD[id] = fig.G.OutSet(id).Clone()
	}
	va.Known = ids(1, 2, 3, 4)
	ca, ok := va.FindCore()
	if !ok || !ca.Members().Equal(ids(1, 2, 3, 4)) {
		t.Fatalf("A-side core = %+v, %v", ca, ok)
	}
	vb := NewView()
	for _, id := range []model.ID{6, 7, 8} {
		vb.PD[id] = fig.G.OutSet(id).Clone()
	}
	vb.Known = ids(5, 6, 7, 8)
	cb, ok := vb.FindCore()
	if !ok || !cb.Members().Equal(ids(5, 6, 7, 8)) {
		t.Fatalf("B-side core = %+v, %v", cb, ok)
	}
	if ca.Members().Intersect(cb.Members()).Len() != 0 {
		t.Fatal("expected disjoint committees")
	}
}

// Fig 3a: the false sink found by {1,2,3,4,6} has HIGHER connectivity than
// the true sink — exactly why C1 excludes such graphs from extended k-OSR.
func TestFindCoreFig3aFalseSink(t *testing.T) {
	fig := graph.Fig3a()
	// View of the F-side with Byzantine 1 cooperating, {5,7,8} silent.
	vf := NewView()
	for _, id := range []model.ID{1, 2, 3, 4, 6} {
		vf.PD[id] = fig.G.OutSet(id).Clone()
	}
	vf.Known = ids(1, 2, 3, 4, 5, 6, 7)
	cf, ok := vf.FindCore()
	if !ok {
		t.Fatal("F-side core not found")
	}
	if cf.G != 2 || !cf.Members().Equal(ids(1, 2, 3, 4, 5, 6, 7)) {
		t.Fatalf("F-side core = g=%d %v", cf.G, cf.Members())
	}
	// View of the true sink {5,7,8}: they know nobody outside.
	vk := NewView()
	for _, id := range []model.ID{5, 7, 8} {
		vk.PD[id] = fig.G.OutSet(id).Clone()
	}
	vk.Known = ids(5, 7, 8)
	ck, ok := vk.FindCore()
	if !ok || ck.G != 1 || !ck.Members().Equal(ids(5, 7, 8)) {
		t.Fatalf("K-side core = %+v, %v", ck, ok)
	}
}

// FindNaive takes the LOWEST g: on the full Fig 4a view the whole strongly
// connected graph is a 0-sink, so the naive rule returns the wrong committee
// while FindCore returns the true core.
func TestFindNaiveDiffersFromCore(t *testing.T) {
	v := FullView(graph.Fig4a().G)
	naive, ok := v.FindNaive()
	if !ok {
		t.Fatal("naive sink not found")
	}
	if naive.G != 0 || naive.Members().Len() != 8 {
		t.Fatalf("naive = g=%d %v, want g=0 with all 8 nodes", naive.G, naive.Members())
	}
	core, ok := v.FindCore()
	if !ok || !core.Members().Equal(ids(1, 2, 3, 4)) {
		t.Fatalf("core = %+v, %v", core, ok)
	}
}

// Planted-sink recovery on random k-OSR graphs (full views, no faults):
// FindSinkKnownF(f) returns exactly the planted sink.
func TestFindSinkPlantedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		f := rng.Intn(3)
		k := f + 1
		spec := graph.GenSpec{
			SinkSize:    2*f + 1 + rng.Intn(3),
			NonSinkSize: rng.Intn(5),
			K:           k,
			ExtraEdgeP:  rng.Float64() * 0.25,
		}
		if spec.SinkSize != 1 && spec.SinkSize < k+1 {
			spec.SinkSize = k + 1
		}
		g, sink, err := graph.GenKOSR(rng, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		v := FullView(g)
		c, ok := v.FindSinkKnownF(f)
		if !ok {
			t.Fatalf("trial %d (f=%d): no sink found\n%s", trial, f, g)
		}
		if !c.Members().Equal(sink) {
			t.Fatalf("trial %d (f=%d): sink = %v, want %v\n%s", trial, f, c.Members(), sink, g)
		}
	}
}

// Planted-core recovery on random extended k-OSR graphs.
func TestFindCorePlantedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		spec := graph.GenSpec{
			SinkSize:    3 + rng.Intn(6),
			NonSinkSize: rng.Intn(6),
			ExtraEdgeP:  rng.Float64() * 0.25,
		}
		g, core, fG, err := graph.GenExtendedKOSR(rng, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		v := FullView(g)
		c, ok := v.FindCore()
		if !ok {
			t.Fatalf("trial %d: no core found\n%s", trial, g)
		}
		if !c.Members().Equal(core) {
			t.Fatalf("trial %d: core = %v, want %v\n%s", trial, c.Members(), core, g)
		}
		if c.G != fG {
			t.Fatalf("trial %d: g = %d, want %d", trial, c.G, fG)
		}
	}
}

// Views only ever grow during Discovery; once the full view identifies the
// core, prefixes of knowledge must never identify a DIFFERENT core with g at
// least as high (they may simply not terminate yet). This guards the
// top-down search order.
func TestFindCoreMonotoneOnFig4b(t *testing.T) {
	fig := graph.Fig4b()
	full := FullView(fig.G)
	want, ok := full.FindCore()
	if !ok {
		t.Fatal("full view must find the core")
	}
	order := fig.G.Nodes()
	v := NewView()
	v.Known = fig.G.NodeSet()
	for _, id := range order {
		v.PD[id] = fig.G.OutSet(id).Clone()
		if c, ok := v.FindCore(); ok && c.G >= want.G {
			if !c.Members().Equal(want.Members()) {
				t.Fatalf("partial view after %v found core %v (g=%d), full view says %v (g=%d)",
					id, c.Members(), c.G, want.Members(), want.G)
			}
		}
	}
}

func TestIsSinkStar(t *testing.T) {
	v := FullView(graph.Fig4a().G)
	fg, ok := v.IsSinkStar(ids(1, 2, 3, 4))
	if !ok || fg != 1 {
		t.Fatalf("isSink*({1,2,3,4}) = %d, %v, want 1, true", fg, ok)
	}
	if _, ok := v.IsSinkStar(ids(5, 6, 7, 8)); ok {
		t.Fatal("isSink*({5,6,7,8}) should be false on Fig 4a (added links)")
	}
	// The whole graph is a 0-sink.
	fg, ok = v.IsSinkStar(v.Known)
	if !ok || fg != 0 {
		t.Fatalf("isSink*(all) = %d, %v, want 0, true", fg, ok)
	}
}

func TestMaxG(t *testing.T) {
	v := NewView()
	if v.MaxG() != 0 {
		// (0-1)/2 in Go is 0 with integer division of -1/2 = 0.
		t.Fatalf("MaxG on empty view = %d", v.MaxG())
	}
	v2 := FullView(graph.Fig1b().G)
	if v2.MaxG() != 3 {
		t.Fatalf("MaxG on 8 received = %d, want 3", v2.MaxG())
	}
}

// Theorem 4 as a property. The paper claims every partition (S1, S2)
// satisfying isSink unions to exactly the sink members. Property testing
// found a counterexample to the "all sink members" half (see DESIGN.md §2c):
// a sink member pointed at by ≤ f members of a particular S1 can be dropped,
// because the proof's "f+1 distinct first-outside vertices" argument fails
// when node-disjoint paths exit S1 directly into the missing member itself.
// What IS invariant, and what the protocol relies on:
//
//	(a) every partition's union contains ONLY sink members;
//	(b) every partition's union has ≥ 2f+1 members (so quorums of any two
//	    unions intersect in ≥ f+1 processes of the shared sink);
//	(c) the canonical full-partition (S1 = all received sink members)
//	    recovers the planted sink exactly.
func TestTheorem4UnionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 25; trial++ {
		f := 1 + rng.Intn(2)
		spec := graph.GenSpec{
			SinkSize:    2*f + 1 + rng.Intn(3),
			NonSinkSize: rng.Intn(4),
			K:           f + 1,
			ExtraEdgeP:  0.3,
		}
		g, sink, err := graph.GenKOSR(rng, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		v := FullView(g)
		cands := v.SinksAtG(f)
		if len(cands) == 0 {
			t.Fatalf("trial %d: no sink at f=%d", trial, f)
		}
		sawFull := false
		for _, c := range cands {
			m := c.Members()
			if !m.SubsetOf(sink) {
				t.Fatalf("trial %d: partition S1=%v S2=%v unions to %v ⊄ sink %v\n%s",
					trial, c.S1, c.S2, m, sink, g)
			}
			if m.Len() < 2*f+1 {
				t.Fatalf("trial %d: union %v smaller than 2f+1", trial, m)
			}
			if m.Equal(sink) {
				sawFull = true
			}
		}
		if !sawFull {
			t.Fatalf("trial %d: no partition recovered the full sink %v", trial, sink)
		}
	}
}

// Partial views that satisfy the wait-condition before full convergence must
// still return the planted sink (Scenario II of Section III: up to f sink
// members' PDs may be missing).
func TestSinkWithMissingPDs(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 25; trial++ {
		f := 1 + rng.Intn(2)
		spec := graph.GenSpec{
			SinkSize:    2*f + 2 + rng.Intn(2),
			NonSinkSize: 0,
			K:           f + 1,
			ExtraEdgeP:  0.4,
		}
		g, sink, err := graph.GenKOSR(rng, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Remove up to f received PDs (the "silent" members D of Scenario II).
		v := FullView(g)
		silent := model.NewIDSet()
		sorted := sink.Sorted()
		for len(silent) < f {
			id := sorted[rng.Intn(len(sorted))]
			silent.Add(id)
			delete(v.PD, id)
		}
		c, ok := v.FindSinkKnownF(f)
		if !ok {
			// Allowed: the view may genuinely not satisfy the condition yet
			// (e.g. the remaining members' connectivity dropped below f+1).
			continue
		}
		if !c.Members().Equal(sink) {
			t.Fatalf("trial %d: with silent %v got %v, want %v\n%s", trial, silent, c.Members(), sink, g)
		}
		if inter := c.S2.Intersect(silent); inter.Len() != silent.Len() {
			t.Fatalf("trial %d: silent members %v not all absorbed into S2=%v", trial, silent, c.S2)
		}
	}
}
