// Package kosr implements the knowledge-side decision procedures of the
// paper: the isSink predicate of Theorem 3, the sink search of Algorithm 2
// (known fault threshold), the core search of Algorithm 4 (unknown fault
// threshold), the naive any-sink rule of Observation 1, and the extended
// k-OSR PD checker of Definition 2.
//
// Every procedure runs over a View — the (S_known, S_PD) knowledge a process
// has accumulated through discovery — never over the global graph, which no
// process in the CUP model is allowed to see.
//
// The View methods are the from-scratch reference implementations; the
// protocol stack runs the same procedures through Searcher, an incremental,
// scratch-reusing engine that memoizes per-component candidate lists and
// per-subset verdicts across knowledge updates. The two are pinned
// equivalent by property tests; see Searcher and ARCHITECTURE.md ("The
// incremental sink/core search").
//
// Notation note (see DESIGN.md §2): property P3 counts *target* vertices
// outside S1 that S1 points at, while P4 counts *source* vertices of S1
// pointing at a given process. This is the only reading consistent with the
// paper's worked examples and proofs.
package kosr
