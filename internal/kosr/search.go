package kosr

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/bftcup/bftcup/internal/model"
)

// Candidate is a sink identified in a view: the partition (S1, S2), the
// threshold g at which isSink holds, and derived committee parameters.
type Candidate struct {
	// G is the fault threshold at which isSink held.
	G int
	// S1 is the sink partition; S2 the ≤ G extra processes identified via
	// property P4.
	S1 model.IDSet
	S2 model.IDSet
}

// Members returns S1 ∪ S2 — the set the Sink/Core algorithm returns.
func (c Candidate) Members() model.IDSet { return c.S1.Union(c.S2) }

// QuorumSize returns the committee quorum ⌈(|S|+g+1)/2⌉ from [11], quoted in
// Section II of the paper: any two such quorums intersect in ≥ g+1 processes.
func (c Candidate) QuorumSize() int {
	s := c.Members().Len()
	return (s + c.G + 1 + 1) / 2 // ⌈(s+g+1)/2⌉
}

// AnswerThreshold returns ⌈(|S|+1)/2⌉ — how many identical DECIDEDVAL
// answers a non-member needs (Algorithm 3, line 7).
func (c Candidate) AnswerThreshold() int {
	s := c.Members().Len()
	return (s + 1 + 1) / 2 // ⌈(s+1)/2⌉
}

// ExactLimit is the SCC size up to which the sink search enumerates subsets
// exhaustively. Above it, the search falls back to structural candidates
// (whole SCC and its peeled cores), which suffices for well-formed views but
// is marked as inexact in checker reports. The bitset enumeration's
// dominated-subset pruning (poolEnum) makes 20 affordable where the plain
// 2^n walk stopped at 16.
const ExactLimit = 20

// SinksAtG enumerates candidates (S1, S2) with isSink(g, S1, S2) in the view.
// Results are deterministic: sorted by the canonical key of S1.
//
// The enumeration is exact for SCCs of the received graph with ≤ ExactLimit
// nodes (every valid S1 induces a strongly connected subgraph, hence lies
// inside one SCC; and κ(G[S1]) ≥ g+1 implies S1 survives directed
// (g+1)-core peeling, which is applied first as sound pruning).
func (v *View) SinksAtG(g int) []Candidate {
	exact := true
	cands := v.sinksAtG(g, &exact)
	return cands
}

// SinksAtGExact additionally reports whether the enumeration was exhaustive.
func (v *View) SinksAtGExact(g int) ([]Candidate, bool) {
	exact := true
	cands := v.sinksAtG(g, &exact)
	return cands, exact
}

func (v *View) sinksAtG(g int, exact *bool) []Candidate {
	if g < 0 {
		return nil
	}
	rg := v.ReceivedGraph()
	var out []Candidate
	var pe poolEnum
	seen := make(map[string]bool)
	tryS1 := func(s1 model.IDSet) {
		if s1.Len() < 2*g+1 {
			return
		}
		key := s1.Key()
		if seen[key] {
			return
		}
		seen[key] = true
		if t := v.OutTargets(s1); t.Len() > g {
			return
		}
		if s1.Len() > 1 && !rg.Induced(s1).IsKStronglyConnected(g+1) {
			return
		}
		out = append(out, Candidate{G: g, S1: s1, S2: v.DeriveS2(s1, g)})
	}
	for _, comp := range rg.SCCs() {
		// Sound pruning: any valid S1 inside this SCC survives
		// (g+1)-core peeling of the SCC's induced subgraph (g ≥ 1 only:
		// singletons have no degree requirement).
		pool := comp
		if g >= 1 {
			pool = rg.Induced(comp).DirectedCore(g + 1)
		}
		if pool.Len() < 2*g+1 {
			continue
		}
		if pool.Len() <= ExactLimit {
			// Pruned bitset enumeration: poolEnum's cuts are sound (it yields
			// a superset of the passing S1 sets) and tryS1 re-checks every
			// isSink property exactly, so the result matches the plain
			// enumerateSubsets walk — the equivalence tests pin that up to
			// brute-force sizes.
			sorted := pool.Sorted()
			pe.init(sorted, g, func(u model.ID, yield func(model.ID)) {
				for tgt := range v.PD[u] {
					yield(tgt)
				}
			})
			pe.run(func(mask uint64, _ int, _ bool) {
				s1 := model.NewIDSet()
				for rest := mask; rest != 0; {
					i := bits.TrailingZeros64(rest)
					rest &= rest - 1
					s1.Add(sorted[i])
				}
				tryS1(s1)
			})
		} else {
			*exact = false
			// Structural candidates: the peeled pool itself and the pool
			// minus each single low-degree vertex.
			tryS1(pool)
			sub := rg.Induced(pool)
			for _, u := range pool.Sorted() {
				rest := pool.Clone()
				rest.Remove(u)
				if g >= 1 {
					rest = sub.Induced(rest).DirectedCore(g + 1)
				}
				if rest.Len() >= 2*g+1 {
					tryS1(rest)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].S1.Key() < out[j].S1.Key() })
	return out
}

// enumerateSubsets yields every subset of ids with size ≥ minSize. Callers
// are guarded by ExactLimit; sets past the bit-mask capacity are a
// programming error, and a silent empty enumeration would masquerade as "no
// sink found", so the guard is loud.
func enumerateSubsets(ids []model.ID, minSize int, yield func(model.IDSet)) {
	n := len(ids)
	if n > 30 {
		panic(fmt.Sprintf("kosr: enumerateSubsets over %d ids (callers must respect ExactLimit=%d; the mask enumeration caps at 30)", n, ExactLimit))
	}
	for mask := 1; mask < (1 << n); mask++ {
		if popcount(mask) < minSize {
			continue
		}
		s := model.NewIDSet()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s.Add(ids[i])
			}
		}
		yield(s)
	}
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// MaxG returns the largest g at which any sink exists in the view, bounded by
// (|received|-1)/2 (P1 forces |S1| ≥ 2g+1).
func (v *View) MaxG() int {
	return (len(v.PD) - 1) / 2
}

// FindSinkKnownF implements the decision step of Algorithm 2 (the Sink
// algorithm of the authenticated BFT-CUP model): the process knows the fault
// threshold f and waits for a partition satisfying isSink(f, S1, S2).
func (v *View) FindSinkKnownF(f int) (Candidate, bool) {
	cands := v.SinksAtG(f)
	if len(cands) == 0 {
		return Candidate{}, false
	}
	return cands[0], true
}

// FindCore implements the decision step of Algorithm 4 (the Core algorithm of
// the BFT-CUPFT model): accept (g, S1, S2) iff isSink(g, S1, S2) holds and no
// proper subset Q1 ⊂ S1 forms a sink at any g′ > g. Searching g from the
// maximum downward makes the first hit satisfy the side condition (no sink at
// any higher g exists anywhere in the view, a fortiori among subsets of S1).
func (v *View) FindCore() (Candidate, bool) {
	for g := v.MaxG(); g >= 0; g-- {
		if cands := v.SinksAtG(g); len(cands) > 0 {
			return cands[0], true
		}
	}
	return Candidate{}, false
}

// FindNaive implements the straw-man rule of Observation 1: a process adopts
// the first partition it finds satisfying isSink at any g, scanning g upward.
// Section IV shows this (and any other no-f rule) is unsafe on plain k-OSR
// graphs; the Fig. 2 and Fig. 3 experiments reproduce the violation.
func (v *View) FindNaive() (Candidate, bool) {
	for g := 0; g <= v.MaxG(); g++ {
		if cands := v.SinksAtG(g); len(cands) > 0 {
			return cands[0], true
		}
	}
	return Candidate{}, false
}

// IsSinkStar implements isSink*(S): ∃ g ≥ 0 and a partition S1 ∪ S2 = S with
// isSink(g, S1, S2). It returns the maximum such g (f_Gdi(S)) when ok.
// The enumeration over partitions is exact: S2 is always a subset of
// OutTargets(S1) and |S2| ≤ |T(S1)| ≤ g, so it suffices to move ≤ g members
// of S into S2.
func (v *View) IsSinkStar(s model.IDSet) (fG int, ok bool) {
	ids := s.Sorted()
	maxG := (s.Len() - 1) / 2
	for g := maxG; g >= 0; g-- {
		// Choose D = S2 ⊆ S with |D| ≤ g; S1 = S ∖ D.
		found := false
		forEachSubsetUpTo(ids, g, func(d model.IDSet) bool {
			s1 := s.Diff(d)
			if v.IsSink(g, s1, d) {
				found = true
				return true
			}
			return false
		})
		if found {
			return g, true
		}
	}
	return 0, false
}

// forEachSubsetUpTo yields every subset of ids with size ≤ maxSize until the
// callback returns true.
func forEachSubsetUpTo(ids []model.ID, maxSize int, yield func(model.IDSet) bool) {
	var rec func(start int, cur []model.ID) bool
	rec = func(start int, cur []model.ID) bool {
		if yield(model.NewIDSet(cur...)) {
			return true
		}
		if len(cur) == maxSize {
			return false
		}
		for i := start; i < len(ids); i++ {
			if rec(i+1, append(cur, ids[i])) {
				return true
			}
		}
		return false
	}
	rec(0, nil)
}
