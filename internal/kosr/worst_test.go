package kosr

import (
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

// bruteWorst is the reference implementation: a fresh View and a fresh
// Searcher per subset, no memo reuse, same grading and tie-break rules.
func bruteWorst(g *graph.Digraph, f int) Placement {
	nodes := g.Nodes()
	best := Placement{Margin: int(^uint(0) >> 1)}
	forEachCombination(len(nodes), f, func(idx []int) bool {
		byz := model.NewIDSet()
		for _, i := range idx {
			byz.Add(nodes[i])
		}
		m := PlacementMargin(g, byz)
		if m < best.Margin {
			best = Placement{Byz: byz, Margin: m}
		}
		return false // no early exit: prove the early exit is sound too
	})
	return best
}

// TestWorstPlacementMatchesBruteForce pins the shared-searcher enumeration
// against the fresh-searcher reference on every graph family, for every
// feasible f. Any memo-leak across subsets (the failure mode
// RebindPreserving's contract guards) would surface as a margin or tie-break
// mismatch here.
func TestWorstPlacementMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for name, g := range propertyGraphs(t, rng) {
		for f := 0; f <= 3 && f <= g.NumNodes(); f++ {
			got, err := WorstPlacement(g, f)
			if err != nil {
				t.Fatalf("%s f=%d: %v", name, f, err)
			}
			want := bruteWorst(g, f)
			if got.Margin != want.Margin {
				t.Fatalf("%s f=%d: margin %d, reference %d (byz %v vs %v)",
					name, f, got.Margin, want.Margin, got.Byz, want.Byz)
			}
			if !got.Byz.Equal(want.Byz) {
				t.Fatalf("%s f=%d: placement %v, reference %v (margin %d)",
					name, f, got.Byz, want.Byz, got.Margin)
			}
		}
	}
}

// TestWorstPlacementDeterministic reruns the search and requires identical
// results — the property every sweep fingerprint built on byz=worst rests on.
func TestWorstPlacementDeterministic(t *testing.T) {
	g := graph.Fig1b().G
	first, err := WorstPlacement(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := WorstPlacement(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		if again.Margin != first.Margin || !again.Byz.Equal(first.Byz) {
			t.Fatalf("run %d: %v margin %d, first run %v margin %d",
				i, again.Byz, again.Margin, first.Byz, first.Margin)
		}
	}
}

// TestWorstPlacementEdges covers the degenerate and error paths.
func TestWorstPlacementEdges(t *testing.T) {
	g := graph.Fig1b().G
	p, err := WorstPlacement(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Byz.Len() != 0 {
		t.Fatalf("f=0 placement %v, want empty", p.Byz)
	}
	if full := PlacementMargin(g, model.NewIDSet()); p.Margin != full {
		t.Fatalf("f=0 margin %d, full-view margin %d", p.Margin, full)
	}
	if _, err := WorstPlacement(g, -1); err == nil {
		t.Fatal("f=-1 accepted")
	}
	if _, err := WorstPlacement(g, g.NumNodes()+1); err == nil {
		t.Fatal("f>n accepted")
	}
	// All processes Byzantine: no PDs at all, no sink, margin -1.
	all, err := WorstPlacement(g, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if all.Margin != -1 {
		t.Fatalf("all-Byzantine margin %d, want -1", all.Margin)
	}
}

// TestWorstPlacementStrictlyWorseThanTail documents why the axis exists: on
// Fig. 1b the tail heuristic (highest IDs) is not the adversary's best move.
func TestWorstPlacementStrictlyWorseThanTail(t *testing.T) {
	fig := graph.Fig1b()
	g := fig.G
	nodes := g.Nodes()
	f := 2
	tail := model.NewIDSet(nodes[len(nodes)-f:]...)
	tailMargin := PlacementMargin(g, tail)
	worst, err := WorstPlacement(g, f)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Margin > tailMargin {
		t.Fatalf("worst margin %d exceeds tail margin %d", worst.Margin, tailMargin)
	}
	t.Logf("fig1b f=%d: tail %v margin %d, worst %v margin %d",
		f, tail, tailMargin, worst.Byz, worst.Margin)
}

func BenchmarkWorstPlacement(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g, _, err := graph.GenKOSR(rng, graph.GenSpec{SinkSize: 5, NonSinkSize: 4, K: 2, ExtraEdgeP: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := WorstPlacement(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}
