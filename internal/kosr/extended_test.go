package kosr

import (
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

// Every textual claim the paper makes about its figures, machine-checked.
func TestFigureClaims(t *testing.T) {
	t.Run("fig1a violates BFT-CUP requirements", func(t *testing.T) {
		fig := graph.Fig1a()
		if r := graph.CheckBFTCUP(fig.G, fig.Byz, fig.F); r.OK {
			t.Fatal("Fig1a must not satisfy the BFT-CUP requirements")
		}
		// Fewer than one third Byzantine, as the caption notes.
		if 3*fig.Byz.Len() >= fig.G.NumNodes() {
			t.Fatal("caption requires |Byz| < n/3")
		}
		// Removing 4 disconnects the undirected safe subgraph.
		if fig.G.Without(fig.Byz).UndirectedConnected() {
			t.Fatal("safe subgraph should be disconnected")
		}
	})

	t.Run("fig1b satisfies BFT-CUP requirements", func(t *testing.T) {
		fig := graph.Fig1b()
		r := graph.CheckBFTCUP(fig.G, fig.Byz, fig.F)
		if !r.OK {
			t.Fatalf("Fig1b: %s", r.Reason)
		}
		if !r.Sink.Equal(fig.ExpectedSink) {
			t.Fatalf("sink = %v", r.Sink)
		}
	})

	t.Run("fig2 systems satisfy their OSR classes", func(t *testing.T) {
		a := graph.Fig2a()
		if r := graph.CheckBFTCUP(a.G, a.Byz, a.F); !r.OK {
			t.Fatalf("system A: %s", r.Reason)
		}
		b := graph.Fig2b()
		if r := graph.CheckBFTCUP(b.G, b.Byz, b.F); !r.OK {
			t.Fatalf("system B: %s", r.Reason)
		}
		ab := graph.Fig2c()
		if r := graph.CheckKOSR(ab.G, 1); !r.OK {
			t.Fatalf("system AB should be 1-OSR: %s", r.Reason)
		}
		// All correct, f = 0: BFT-CUP requirements hold...
		if r := graph.CheckBFTCUP(ab.G, ab.Byz, ab.F); !r.OK {
			t.Fatalf("system AB with f=0: %s", r.Reason)
		}
		// ...but the graph is NOT extended k-OSR: two sinks share the
		// maximum connectivity (the crux of Theorem 7).
		if r := CheckExtendedKOSR(ab.G, 1); r.OK {
			t.Fatal("system AB must not be extended 1-OSR")
		}
	})

	t.Run("fig3a boundary condition", func(t *testing.T) {
		fig := graph.Fig3a()
		if r := graph.CheckBFTCUP(fig.G, fig.Byz, fig.F); !r.OK {
			t.Fatalf("Fig3a should satisfy plain BFT-CUP requirements: %s", r.Reason)
		}
		// Reproduction finding (see DESIGN.md and EXPERIMENTS.md): the
		// literal Definition 2 requirement is on the SAFE subgraph, which in
		// Fig 3a does satisfy extended 2-OSR (the false sink {1,2,3,4,6}
		// only exists with Byzantine 1's participation, invisible to Gsafe).
		// The paper's own Fig 3a/3b indistinguishability narrative shows no
		// Gsafe-level condition can separate the two systems; the Fig 4
		// "added links" exist precisely to inflate the escape-target count
		// of would-be Byzantine-assisted sinks.
		r := CheckBFTCUPFT(fig.G, fig.Byz, fig.F)
		if !r.OK {
			t.Fatalf("Fig3a's SAFE subgraph literally satisfies Definition 2; checker said: %s", r.Reason)
		}
		if !r.Core.Equal(fig.ExpectedSink) {
			t.Fatalf("Fig3a safe core = %v, want %v", r.Core, fig.ExpectedSink)
		}
		// The Byzantine-inclusive graph, however, is NOT extended k-OSR:
		// the Byzantine-assisted sink {1,2,3,4,6}∪{5,7} has connectivity 3,
		// strictly above the true core's 2, and C2 fails for it.
		if full := CheckExtendedKOSR(fig.G, 2); full.OK {
			t.Fatal("Fig3a full graph (with Byzantine edges) must fail extended k-OSR")
		}
	})

	t.Run("fig3b satisfies 3-OSR with byz {5,7}", func(t *testing.T) {
		fig := graph.Fig3b()
		r := graph.CheckBFTCUP(fig.G, fig.Byz, fig.F)
		if !r.OK {
			t.Fatalf("Fig3b: %s", r.Reason)
		}
		if !r.Sink.Equal(fig.ExpectedSink) {
			t.Fatalf("Fig3b sink = %v, want %v", r.Sink, fig.ExpectedSink)
		}
	})

	t.Run("fig4a satisfies BFT-CUPFT requirements", func(t *testing.T) {
		fig := graph.Fig4a()
		r := CheckBFTCUPFT(fig.G, fig.Byz, fig.F)
		if !r.OK {
			t.Fatalf("Fig4a: %s", r.Reason)
		}
		// Core of the SAFE subgraph is {1,2,3} (4 is Byzantine).
		if !r.Core.Equal(ids(1, 2, 3)) {
			t.Fatalf("safe core = %v", r.Core)
		}
		// All-correct reading: core of the full graph is {1,2,3,4} and it
		// differs from the sink component of the full graph (the caption's
		// "sink ≠ core").
		full := CheckExtendedKOSR(fig.G, 1)
		if !full.OK {
			t.Fatalf("Fig4a full graph: %s", full.Reason)
		}
		if !full.Core.Equal(ids(1, 2, 3, 4)) {
			t.Fatalf("full core = %v", full.Core)
		}
		sink, ok := fig.G.UniqueSink()
		if !ok {
			t.Fatal("Fig4a full graph should have a unique sink SCC")
		}
		if sink.Equal(full.Core) {
			t.Fatal("caption says the sink differs from the core")
		}
		if !full.Core.SubsetOf(sink) {
			t.Fatal("C2 implies the core lies inside the sink component")
		}
	})

	t.Run("fig4a without added links loses the core", func(t *testing.T) {
		fig := graph.Fig4aWithoutAddedLinks()
		if r := CheckExtendedKOSR(fig.G, 1); r.OK {
			t.Fatal("removing 6→3 and 7→2 must break extended k-OSR")
		}
		// The reason is the one the caption gives: {5,6,7,8} can now
		// identify themselves as a sink (via S1 = {6,7,8}, S2 = {5}).
		v := FullView(fig.G)
		if !v.IsSink(1, ids(6, 7, 8), ids(5)) {
			t.Fatal("without the added links, isSink(1,{6,7,8},{5}) should hold")
		}
	})

	t.Run("fig4b satisfies BFT-CUPFT requirements, sink = core", func(t *testing.T) {
		fig := graph.Fig4b()
		r := CheckBFTCUPFT(fig.G, fig.Byz, fig.F)
		if !r.OK {
			t.Fatalf("Fig4b: %s", r.Reason)
		}
		safe := fig.G.Without(fig.Byz)
		sink, ok := safe.UniqueSink()
		if !ok || !sink.Equal(r.Core) {
			t.Fatalf("Fig4b safe graph: sink %v vs core %v", sink, r.Core)
		}
		// Full graph: core = sink = {8..15}.
		full := CheckExtendedKOSR(fig.G, 1)
		if !full.OK {
			t.Fatalf("Fig4b full graph: %s", full.Reason)
		}
		if !full.Core.Equal(fig.ExpectedCommittee) {
			t.Fatalf("full core = %v", full.Core)
		}
		fsink, ok := fig.G.UniqueSink()
		if !ok || !fsink.Equal(full.Core) {
			t.Fatal("caption says sink = core in Fig4b")
		}
	})
}

func TestCheckExtendedKOSRRejectsBaseFailures(t *testing.T) {
	// Not even 1-OSR (two sinks).
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	if r := CheckExtendedKOSR(g, 1); r.OK {
		t.Fatal("two-sink graph passed")
	}
}

func TestCheckBFTCUPFTTooManyByz(t *testing.T) {
	fig := graph.Fig4a()
	if r := CheckBFTCUPFT(fig.G, model.NewIDSet(4, 5), 1); r.OK {
		t.Fatal("2 Byzantine nodes must fail f=1")
	}
}

func TestCheckBFTCUPFTCoreTooSmall(t *testing.T) {
	// A valid extended graph whose core is smaller than 2f+1 for f=2.
	fig := graph.Fig4a() // core of safe graph has 3 nodes
	if r := CheckBFTCUPFT(fig.G, model.NewIDSet(), 2); r.OK {
		t.Fatal("core of 4 processes must fail 2f+1 = 5")
	}
}

// Generated extended graphs pass the full model check with zero Byzantine
// nodes and f derived from the planted core size.
func TestGeneratedExtendedPassesModelCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		spec := graph.GenSpec{
			SinkSize:    3 + rng.Intn(5),
			NonSinkSize: rng.Intn(5),
			ExtraEdgeP:  rng.Float64() * 0.2,
		}
		g, core, fG, err := graph.GenExtendedKOSR(rng, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f := (core.Len() - 1) / 2
		if f > fG {
			f = fG
		}
		r := CheckBFTCUPFT(g, model.NewIDSet(), f)
		if !r.OK {
			t.Fatalf("trial %d (f=%d): %s\n%s", trial, f, r.Reason, g)
		}
		if !r.Core.Equal(core) {
			t.Fatalf("trial %d: core = %v, want %v", trial, r.Core, core)
		}
	}
}
