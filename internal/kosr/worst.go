package kosr

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

// Worst-case Byzantine placement search. The paper's knowledge-connectivity
// conditions are adversarial statements — a graph solves BFT-CUP when the
// sink survives *every* f-subset of faulty processes, not an average one — so
// a sweep that fixes the placement (tail, sink) measures a best case the
// theorems never promise. WorstPlacement closes that gap: it enumerates the
// f-subsets, grades each by the knowledge margin the correct processes are
// left with, and returns the placement an optimal adversary would pick.

// Placement is one graded Byzantine placement.
type Placement struct {
	// Byz is the Byzantine subset.
	Byz model.IDSet
	// Margin is the largest g at which the correct-only view (every process
	// known, PDs present only for the non-Byzantine processes) still contains
	// a sink — what Algorithm 4's Core search would adopt. -1 means no sink
	// survives at any g: the placement denies the committee entirely.
	Margin int
}

// WorstEnumLimit caps the number of f-subsets WorstPlacement enumerates.
// Sweep graphs are small (n ≤ ~20, f ≤ 3), far below the cap; hitting it is
// a sign the caller wants the probabilistic machinery of ROADMAP item 3, and
// the search fails loudly rather than silently truncating the enumeration.
const WorstEnumLimit = 1 << 20

// WorstPlacement grades every f-subset of g's processes and returns the one
// with the minimal margin; among equally bad subsets the lexicographically
// smallest (by sorted member list) wins, which makes the placement — and
// every sweep fingerprint built on it — deterministic.
//
// The enumeration is cheap because all subsets share one Searcher: every
// per-subset view draws its records from the same immutable record universe
// (owner u always advertises OutSet(u); views differ only in which records
// are present), which is exactly the workload Searcher.RebindPreserving keeps
// the content-keyed memos valid for. A component that reappears across
// subsets — the common case, since removing f records leaves most of the
// graph untouched — reuses its candidate list and κ verdicts verbatim.
func WorstPlacement(g *graph.Digraph, f int) (Placement, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if f < 0 {
		return Placement{}, fmt.Errorf("kosr: worst placement needs f ≥ 0, got %d", f)
	}
	if f > n {
		return Placement{}, fmt.Errorf("kosr: worst placement of %d processes in a %d-process graph", f, n)
	}
	if c := binomial(n, f); c < 0 || c > WorstEnumLimit {
		return Placement{}, fmt.Errorf("kosr: worst placement C(%d,%d) exceeds the enumeration cap %d", n, f, WorstEnumLimit)
	}

	// Known is placement-independent: correct processes eventually hear of
	// every process (Byzantine ones included — correct PDs point at them).
	known := model.NewIDSet(nodes...)
	for _, u := range nodes {
		for tgt := range g.OutSet(u) {
			known.Add(tgt)
		}
	}

	se := NewSearcher()
	byz := model.NewIDSet()
	best := Placement{Margin: int(^uint(0) >> 1)} // +Inf until the first grade
	forEachCombination(n, f, func(idx []int) bool {
		clear(byz)
		for _, i := range idx {
			byz.Add(nodes[i])
		}
		m := placementMargin(se, g, nodes, known, byz)
		if m < best.Margin {
			best = Placement{Byz: byz.Clone(), Margin: m}
		}
		// -1 is the global minimum, and the lexicographic enumeration order
		// makes the first achiever the canonical one — stop early.
		return m == -1
	})
	return best, nil
}

// PlacementMargin grades one concrete Byzantine subset: the largest g at
// which the correct-only view still contains a sink (-1 when none does). It
// is the per-subset quantity WorstPlacement minimizes, exported so sweeps and
// tests can grade fixed placements (tail, sink) on the same scale.
func PlacementMargin(g *graph.Digraph, byz model.IDSet) int {
	nodes := g.Nodes()
	known := model.NewIDSet(nodes...)
	for _, u := range nodes {
		for tgt := range g.OutSet(u) {
			known.Add(tgt)
		}
	}
	return placementMargin(NewSearcher(), g, nodes, known, byz)
}

// placementMargin builds the correct-only view for one Byzantine subset and
// runs the Core search on the shared searcher.
func placementMargin(se *Searcher, g *graph.Digraph, nodes []model.ID, known model.IDSet, byz model.IDSet) int {
	v := NewView()
	for id := range known {
		v.AddKnown(id)
	}
	for _, u := range nodes {
		if !byz.Has(u) {
			v.SetPD(u, g.OutSet(u))
		}
	}
	se.RebindPreserving(v)
	if cand, ok := se.FindCore(v); ok {
		return cand.G
	}
	return -1
}

// binomial returns C(n, k), or -1 on overflow past WorstEnumLimit·2³².
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c < 0 || c > WorstEnumLimit<<32 {
			return -1
		}
	}
	return c
}

// forEachCombination yields every k-combination of {0,…,n-1} in lexicographic
// order until the callback returns true.
func forEachCombination(n, k int, yield func(idx []int) bool) {
	if k == 0 {
		yield(nil)
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if yield(idx) {
			return
		}
		// Advance: find the rightmost index that can still move.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
