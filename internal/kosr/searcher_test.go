package kosr

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

// candsEqual compares two candidate lists structurally (G, S1, S2, order).
func candsEqual(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].G != b[i].G || !a[i].S1.Equal(b[i].S1) || !a[i].S2.Equal(b[i].S2) {
			return false
		}
	}
	return true
}

// assertSearcherMatches compares every search the protocol stack runs — all
// thresholds, exactness flags, and the three find rules — between the
// incremental searcher and the from-scratch View methods on one view state.
func assertSearcherMatches(t *testing.T, se *Searcher, v *View, tag string) {
	t.Helper()
	for g := 0; g <= v.MaxG()+1; g++ {
		want, wantExact := v.SinksAtGExact(g)
		got, gotExact := se.SinksAtGExact(v, g)
		if gotExact != wantExact {
			t.Fatalf("%s: SinksAtGExact(%d) exact=%v, from-scratch %v", tag, g, gotExact, wantExact)
		}
		if !candsEqual(got, want) {
			t.Fatalf("%s: SinksAtG(%d) diverges:\n  incremental: %v\n  from-scratch: %v", tag, g, got, want)
		}
	}
	type rule struct {
		name string
		inc  func() (Candidate, bool)
		ref  func() (Candidate, bool)
	}
	rules := []rule{
		{"FindSinkKnownF(1)", func() (Candidate, bool) { return se.FindSinkKnownF(v, 1) }, func() (Candidate, bool) { return v.FindSinkKnownF(1) }},
		{"FindCore", func() (Candidate, bool) { return se.FindCore(v) }, func() (Candidate, bool) { return v.FindCore() }},
		{"FindNaive", func() (Candidate, bool) { return se.FindNaive(v) }, func() (Candidate, bool) { return v.FindNaive() }},
	}
	for _, r := range rules {
		got, gotOK := r.inc()
		want, wantOK := r.ref()
		if gotOK != wantOK {
			t.Fatalf("%s: %s ok=%v, from-scratch %v", tag, r.name, gotOK, wantOK)
		}
		if gotOK && (got.G != want.G || !got.S1.Equal(want.S1) || !got.S2.Equal(want.S2)) {
			t.Fatalf("%s: %s = %+v, from-scratch %+v", tag, r.name, got, want)
		}
	}
}

// propertyGraphs returns one representative graph per family (every figure,
// a complete graph, random k-OSR and random extended k-OSR instances).
func propertyGraphs(t *testing.T, rng *rand.Rand) map[string]*graph.Digraph {
	t.Helper()
	out := make(map[string]*graph.Digraph)
	for _, fig := range graph.AllFigures() {
		out[fig.Name] = fig.G
	}
	out["complete:5"] = graph.CompleteGraph(1, 2, 3, 4, 5)
	kg, _, err := graph.GenKOSR(rng, graph.GenSpec{SinkSize: 5, NonSinkSize: 3, K: 2, ExtraEdgeP: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	out["kosr:gen"] = kg
	eg, _, _, err := graph.GenExtendedKOSR(rng, graph.GenSpec{SinkSize: 4, NonSinkSize: 2, ExtraEdgeP: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	out["extended:gen"] = eg
	return out
}

// TestSearcherMatchesFromScratch is the incremental ≡ from-scratch property:
// over randomized record-insertion sequences on every graph family, after
// every single insertion, every search agrees with the from-scratch View
// methods. One searcher serves all states of one sequence — exactly the
// per-process usage — so the test also exercises revision-driven
// invalidation and component-cache reuse.
func TestSearcherMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, g := range propertyGraphs(t, rng) {
		owners := g.Nodes()
		for trial := 0; trial < 3; trial++ {
			rng.Shuffle(len(owners), func(i, j int) { owners[i], owners[j] = owners[j], owners[i] })
			v := NewView()
			se := NewSearcher()
			assertSearcherMatches(t, se, v, name+"/empty")
			for step, owner := range owners {
				v.AddKnown(owner)
				v.SetPD(owner, g.OutSet(owner))
				// Known grows like discovery's line 5: PD contents join S_known.
				for _, tgt := range g.OutSet(owner).Sorted() {
					v.AddKnown(tgt)
				}
				assertSearcherMatches(t, se, v, name)
				_ = step
			}
		}
	}
}

// TestSearcherReusedAcrossViews pins the per-worker pooling pattern: one
// searcher serving many unrelated views in sequence (as a scenario.Runner
// hands it from cell to cell) rebinds on each and never leaks results
// across. Interleaving the views makes stale-memo reuse fatal rather than
// silent.
func TestSearcherReusedAcrossViews(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	se := NewSearcher()
	graphs := propertyGraphs(t, rng)
	for round := 0; round < 2; round++ {
		for name, g := range graphs {
			v := FullView(g)
			assertSearcherMatches(t, se, v, name+"/reused")
		}
	}
}

// TestSearcherToleratesPDReplacement pins the generation guard: overwriting
// a received PD (which discovery never does, but the mutator API must
// survive) drops the content memos instead of serving stale candidates.
func TestSearcherToleratesPDReplacement(t *testing.T) {
	fig := graph.Fig1b()
	v := FullView(fig.G)
	se := NewSearcher()
	assertSearcherMatches(t, se, v, "fig1b/before-replacement")
	// Sever node 1: its PD now points nowhere, which changes the sink SCC.
	v.SetPD(1, model.NewIDSet())
	if v.Gen() == 0 {
		t.Fatal("PD replacement did not bump the view generation")
	}
	assertSearcherMatches(t, se, v, "fig1b/after-replacement")
}

// TestViewRevision pins the mutator API's counter semantics the searcher
// relies on: every change bumps Rev, no-ops don't, and only content
// replacement bumps Gen.
func TestViewRevision(t *testing.T) {
	v := NewView()
	if v.Rev() != 0 || v.Gen() != 0 {
		t.Fatalf("fresh view rev=%d gen=%d", v.Rev(), v.Gen())
	}
	v.SetPD(1, ids(2, 3))
	r1 := v.Rev()
	if r1 == 0 {
		t.Fatal("SetPD did not bump the revision")
	}
	v.SetPD(1, ids(3, 2)) // same set, different construction order: no-op
	if v.Rev() != r1 || v.Gen() != 0 {
		t.Fatalf("identical SetPD bumped rev/gen: rev=%d gen=%d", v.Rev(), v.Gen())
	}
	if !v.AddKnown(9) || v.Rev() != r1+1 {
		t.Fatalf("AddKnown(9) rev=%d, want %d", v.Rev(), r1+1)
	}
	if v.AddKnown(9) || v.Rev() != r1+1 {
		t.Fatal("duplicate AddKnown bumped the revision")
	}
	v.SetPD(1, ids(2)) // replacement
	if v.Gen() != 1 {
		t.Fatalf("replacement gen=%d, want 1", v.Gen())
	}
}

// TestEnumerateSubsetsLoudGuard pins the n > 30 guard as a panic: a silent
// empty enumeration would masquerade as "no sink found" if ExactLimit were
// ever raised past the mask width.
func TestEnumerateSubsetsLoudGuard(t *testing.T) {
	big := make([]model.ID, 31)
	for i := range big {
		big[i] = model.ID(i + 1)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("enumerateSubsets(31 ids) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "31") {
			t.Fatalf("panic %v does not name the offending size", r)
		}
	}()
	enumerateSubsets(big, 1, func(model.IDSet) {})
}

// TestForEachSubsetUpToNoAliasing pins forEachSubsetUpTo against the classic
// append-aliasing hazard: sibling recursion branches extend the same parent
// prefix via append(cur, ids[i]), so a shared backing array could leak one
// branch's tail into the next. The reference is an independent bit-mask
// enumeration; every subset of size ≤ maxSize must arrive exactly once with
// exactly its own members.
func TestForEachSubsetUpToNoAliasing(t *testing.T) {
	ids := []model.ID{2, 3, 5, 7, 11, 13}
	for maxSize := 0; maxSize <= len(ids); maxSize++ {
		got := make(map[string]int)
		forEachSubsetUpTo(ids, maxSize, func(s model.IDSet) bool {
			got[s.Key()]++
			return false
		})
		want := make(map[string]int)
		for mask := 0; mask < 1<<len(ids); mask++ {
			if popcount(mask) > maxSize {
				continue
			}
			s := model.NewIDSet()
			for i := range ids {
				if mask&(1<<i) != 0 {
					s.Add(ids[i])
				}
			}
			want[s.Key()]++
		}
		if len(got) != len(want) {
			t.Fatalf("maxSize=%d: yielded %d distinct subsets, want %d", maxSize, len(got), len(want))
		}
		for key, n := range got {
			if n != 1 {
				t.Fatalf("maxSize=%d: subset {%s} yielded %d times (aliasing between sibling branches)", maxSize, key, n)
			}
			if _, ok := want[key]; !ok {
				t.Fatalf("maxSize=%d: yielded subset {%s} is not a subset of ids (corrupted contents)", maxSize, key)
			}
		}
	}
	// Early-stop contract: a true return ends the enumeration.
	calls := 0
	forEachSubsetUpTo(ids, 2, func(model.IDSet) bool { calls++; return calls == 3 })
	if calls != 3 {
		t.Fatalf("early stop after 3 yields, got %d", calls)
	}
}

// TestSearcherMemoKeysWellFormed pins the per-SCC memo's key spaces. Views
// whose IDs all fit 1..64 are maskable: entries land in the mask-keyed map
// under the component's content mask (a subset of the received-ID mask), and
// the string maps stay empty. Views with larger IDs fall back to the string
// maps, whose store key must be of the "g|members" form — searchComp's subset
// enumeration reuses the key buffer, so a store that reads the buffer after
// the search would park the entry under the last subset's bare key, where no
// lookup ever finds it, silently defeating the memo while every result stays
// correct.
func TestSearcherMemoKeysWellFormed(t *testing.T) {
	v := FullView(graph.Fig1b().G)
	se := NewSearcher()
	if _, ok := se.FindCore(v); !ok {
		t.Fatal("core not found")
	}
	if !se.maskable {
		t.Fatal("Fig1b view (IDs ≤ 64) should be maskable")
	}
	if len(se.sccCandsM) == 0 {
		t.Fatal("no per-SCC entries memoized in the mask-keyed map")
	}
	if len(se.sccCands) != 0 || len(se.subsets) != 0 {
		t.Fatalf("maskable view leaked into the string maps (%d sccCands, %d subsets)", len(se.sccCands), len(se.subsets))
	}
	var universe uint64
	for id := range v.PD {
		universe |= 1 << (id - 1)
	}
	for mk := range se.sccCandsM {
		if mk.mask == 0 || mk.mask&^universe != 0 {
			t.Fatalf("per-SCC mask key %b is not a nonempty subset of the received-ID mask %b", mk.mask, universe)
		}
	}

	// Shift every ID by +100: same graph, IDs > 64, string-keyed path.
	base := graph.Fig1b().G
	shifted := graph.New()
	for _, u := range base.Nodes() {
		shifted.AddNode(u + 100)
	}
	for _, u := range base.Nodes() {
		for _, w := range base.Out(u) {
			shifted.AddEdge(u+100, w+100)
		}
	}
	vs := FullView(shifted)
	ses := NewSearcher()
	c1, ok1 := ses.FindCore(vs)
	if !ok1 {
		t.Fatal("core not found in shifted view")
	}
	if ses.maskable {
		t.Fatal("shifted view (IDs > 64) should not be maskable")
	}
	if len(ses.sccCands) == 0 {
		t.Fatal("no per-SCC entries memoized in the string-keyed map")
	}
	for key := range ses.sccCands {
		if !strings.Contains(key, "|") {
			t.Fatalf("per-SCC memo key %q is not of the form g|members — the entry was stored under a clobbered key", key)
		}
	}
	// The two key spaces must agree on the result modulo the shift.
	c0, _ := se.FindCore(v)
	if c1.G != c0.G || c1.S1.Len() != c0.S1.Len() {
		t.Fatalf("shifted core (g=%d, |S1|=%d) disagrees with unshifted (g=%d, |S1|=%d)", c1.G, c1.S1.Len(), c0.G, c0.S1.Len())
	}
	for id := range c0.S1 {
		if !c1.S1.Has(id + 100) {
			t.Fatalf("shifted core S1 missing %d+100", id)
		}
	}
}

// searcherAllocBudget gates the steady-state allocation count of a repeated
// search on an unchanged view (the searcher analogue of the scenario
// package's TestCompiledRunAllocsSteadyState). A memo-hit search allocates
// only the result — the winner's derived S2, a few objects (measured: 4).
// With the mask-keyed memos a hit performs no key rendering at all, so the
// budget is re-pinned at 2× the measured steady state: the from-scratch path
// re-runs SCC, peel, enumeration and max-flow, allocating hundreds, and any
// regression of the memo mechanism (a clobbered key, a string render on the
// hit path) costs multiples of the budget without flaking on allocator
// noise.
const searcherAllocBudget = 8

// TestSearcherAllocsSteadyState gates the scratch-reuse win from both
// sides: under the absolute budget, and far under the from-scratch search
// for the same view.
func TestSearcherAllocsSteadyState(t *testing.T) {
	fig := graph.Fig1b()
	v := FullView(fig.G)
	se := NewSearcher()
	if _, ok := se.FindSinkKnownF(v, fig.F); !ok {
		t.Fatal("sink not found")
	}
	warm := testing.AllocsPerRun(10, func() {
		if _, ok := se.FindSinkKnownF(v, fig.F); !ok {
			t.Fatal("sink not found")
		}
	})
	scratch := testing.AllocsPerRun(10, func() {
		if _, ok := v.FindSinkKnownF(fig.F); !ok {
			t.Fatal("sink not found")
		}
	})
	t.Logf("allocs/search: incremental steady-state %.0f, from-scratch %.0f (budget %d)", warm, scratch, searcherAllocBudget)
	if warm > searcherAllocBudget {
		t.Fatalf("steady-state search allocates %.0f objects (budget %d) — the searcher's scratch reuse regressed", warm, searcherAllocBudget)
	}
	if warm*4 > scratch {
		t.Fatalf("steady-state search allocates %.0f objects vs %.0f from scratch — the memo is not engaging", warm, scratch)
	}
}
