package kosr

import (
	"fmt"
	"math/bits"
	"slices"

	"github.com/bftcup/bftcup/internal/model"
)

// poolEnum enumerates the S1 candidates of one peeled pool (≤ 64 nodes) in
// dominated-subset-pruned order, replacing the plain 2^n mask walk: subsets
// whose already-forfeited out-targets exceed g, whose remaining members
// cannot reach |S1| ≥ 2g+1, or one of whose members has lost the in/out
// degree κ(G[S1]) ≥ g+1 requires are cut as whole subtrees of the
// include/exclude recursion. Every prune is sound — it only discards subsets
// that fail one of isSink's S1-side checks — so the yielded set is a
// superset of the passing S1 sets and the callers' exact (memoized) checks
// decide membership; the brute-force equivalence tests pin pruned ≡ plain
// mask ≡ from-scratch verdicts.
//
// State is bitset-native: pool positions are bits of a uint64, adjacency
// within the pool is one word per member, and external out-targets are
// interned into (at most) 64 index bits so the out-target lower bound is two
// popcounts. When a pool's members reach more than 64 distinct external
// targets the extra ones are dropped from the masks — the bound stays a true
// lower bound, extExact turns false, and yields report it so callers count
// exactly. The zero value is ready; init rebinds it to a new pool.
type poolEnum struct {
	n        int
	g        int
	minSize  int
	ids      [64]model.ID
	adj      [64]uint64 // out-edges within the pool (bit = pool position)
	radj     [64]uint64 // in-edges within the pool
	ext      [64]uint64 // external out-targets (bit = interned target index)
	extExact bool
	extIdx   map[model.ID]int
}

// init binds the enumerator to a sorted pool at threshold g. targets must
// yield every PD out-target of the given member (self-targets are ignored
// here).
func (e *poolEnum) init(pool []model.ID, g int, targets func(model.ID, func(model.ID))) {
	n := len(pool)
	if n > 64 {
		panic(fmt.Sprintf("kosr: poolEnum over %d ids (callers must respect ExactLimit=%d; the bitset enumeration caps at 64)", n, ExactLimit))
	}
	e.n, e.g, e.minSize = n, g, 2*g+1
	e.extExact = true
	if e.extIdx == nil {
		e.extIdx = make(map[model.ID]int)
	} else {
		clear(e.extIdx)
	}
	copy(e.ids[:], pool)
	for i := 0; i < n; i++ {
		e.adj[i], e.radj[i], e.ext[i] = 0, 0, 0
	}
	for i := 0; i < n; i++ {
		u := pool[i]
		targets(u, func(tgt model.ID) {
			if tgt == u {
				return
			}
			if j, ok := slices.BinarySearch(pool, tgt); ok {
				e.adj[i] |= 1 << j
				return
			}
			x, ok := e.extIdx[tgt]
			if !ok {
				x = len(e.extIdx)
				e.extIdx[tgt] = x
			}
			if x < 64 {
				e.ext[i] |= 1 << x
			} else {
				e.extExact = false
			}
		})
	}
	for i := 0; i < n; i++ {
		row := e.adj[i]
		for row != 0 {
			j := bits.TrailingZeros64(row)
			row &= row - 1
			e.radj[j] |= 1 << i
		}
	}
}

// run yields every subset (as a mask over pool positions) that survives the
// prunes, with a count of its out-targets: exact when outExact, else a lower
// bound. Yields happen in depth-first include-before-exclude order; callers
// sort their results, so only the yielded *set* matters.
func (e *poolEnum) run(yield func(mask uint64, out int, outExact bool)) {
	if e.n == 0 {
		return
	}
	full := uint64(1)<<e.n - 1
	if e.n == 64 {
		full = ^uint64(0)
	}
	var rec func(pos int, inc, exc, extU, tIn uint64)
	rec = func(pos int, inc, exc, extU, tIn uint64) {
		if pos == e.n {
			if bits.OnesCount64(inc) >= e.minSize {
				yield(inc, bits.OnesCount64(extU)+bits.OnesCount64(tIn&^inc), e.extExact)
			}
			return
		}
		bit := uint64(1) << pos
		undecided := full &^ (inc | exc | (bit<<1 - 1) | bit)
		// Include pos: its external targets and in-pool targets become
		// committed; targets already excluded are forfeited out-targets.
		{
			incN := inc | bit
			extUN := extU | e.ext[pos]
			tInN := tIn | e.adj[pos]
			if bits.OnesCount64(extUN)+bits.OnesCount64(tInN&exc) <= e.g {
				ok := true
				if e.g >= 1 {
					// κ ≥ g+1 needs in/out degree ≥ g+1 inside S1 ⊆ inc ∪
					// undecided (g ≥ 1 ⇒ |S1| ≥ 3, so no singleton escapes
					// the degree requirement).
					avail := incN | undecided
					if bits.OnesCount64(e.adj[pos]&avail) <= e.g || bits.OnesCount64(e.radj[pos]&avail) <= e.g {
						ok = false
					}
				}
				if ok {
					rec(pos+1, incN, exc, extUN, tInN)
				}
			}
		}
		// Exclude pos: every included member that pointed at pos forfeits an
		// out-target (handled by the tIn&exc bound) and every included
		// member adjacent to pos loses available degree.
		{
			excN := exc | bit
			if bits.OnesCount64(inc)+bits.OnesCount64(undecided) >= e.minSize &&
				bits.OnesCount64(extU)+bits.OnesCount64(tIn&excN) <= e.g {
				ok := true
				if e.g >= 1 {
					avail := inc | undecided
					affected := inc & (e.radj[pos] | e.adj[pos])
					for affected != 0 {
						u := bits.TrailingZeros64(affected)
						affected &= affected - 1
						if bits.OnesCount64(e.adj[u]&avail) <= e.g || bits.OnesCount64(e.radj[u]&avail) <= e.g {
							ok = false
							break
						}
					}
				}
				if ok {
					rec(pos+1, inc, excN, extU, tIn)
				}
			}
		}
	}
	rec(0, 0, 0, 0, 0)
}
