package kosr

import (
	"math/bits"
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
)

// bruteDefs builds one view-sized graph per family (planted and
// probabilistic) small enough for the plain 2^n subset walk, so the pruned
// bitset enumeration can be pinned against brute force.
func bruteDefs(t *testing.T) map[string]*graph.Digraph {
	t.Helper()
	out := map[string]*graph.Digraph{
		"fig1b":      graph.Fig1b().G,
		"complete:7": graph.CompleteGraph(1, 2, 3, 4, 5, 6, 7),
	}
	for _, s := range []string{
		"kosr:sink=7,nonsink=4,k=3,extra=0.25",
		"extended:core=5,noncore=3,extra=0.2",
		"er:n=12,p=0.25", "er:n=14,p=0.45",
		"geo:n=12,r=0.45", "sf:n=12,m=2", "sf:n=14,m=3",
	} {
		d, err := graph.ParseDef(s)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 2; seed++ {
			b, err := d.Build(seed)
			if err != nil {
				t.Fatal(err)
			}
			out[s+"#"+string(rune('0'+seed))] = b.G
			if !d.UsesSeed() {
				break
			}
		}
	}
	return out
}

// TestSinksAtGMatchesBruteForce is the end-to-end verdict equivalence:
// View.SinksAtG (pruned bitset enumeration over peeled SCC pools) must
// return exactly the candidates the definitional brute force finds — every
// subset of the received set checked directly against IsSink — on full and
// partial views of every family, at every threshold. n ≤ 16 keeps the 2^n
// walk honest while covering all prune branches.
func TestSinksAtGMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for name, g := range bruteDefs(t) {
		if g.NumNodes() > 16 {
			t.Fatalf("%s: %d nodes exceeds the brute-force budget", name, g.NumNodes())
		}
		views := []*View{FullView(g)}
		// Two random partial views: prefix of a shuffled insertion order.
		for trial := 0; trial < 2; trial++ {
			owners := g.Nodes()
			rng.Shuffle(len(owners), func(i, j int) { owners[i], owners[j] = owners[j], owners[i] })
			v := NewView()
			for _, owner := range owners[:1+rng.Intn(len(owners))] {
				v.AddKnown(owner)
				v.SetPD(owner, g.OutSet(owner))
				for _, tgt := range g.OutSet(owner).Sorted() {
					v.AddKnown(tgt)
				}
			}
			views = append(views, v)
		}
		for vi, v := range views {
			for gt := 0; gt <= v.MaxG()+1; gt++ {
				got, exact := v.SinksAtGExact(gt)
				if !exact {
					t.Fatalf("%s view %d: enumeration inexact at n ≤ 16", name, vi)
				}
				var want []Candidate
				enumerateSubsets(v.Received().Sorted(), 2*gt+1, func(s1 model.IDSet) {
					s2 := v.DeriveS2(s1, gt)
					if v.IsSink(gt, s1, s2) {
						want = append(want, Candidate{G: gt, S1: s1, S2: s2})
					}
				})
				sortCands(want)
				if !candsEqual(got, want) {
					t.Fatalf("%s view %d g=%d: pruned %v != brute force %v", name, vi, gt, got, want)
				}
			}
		}
	}
}

func sortCands(cs []Candidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].S1.Key() < cs[j-1].S1.Key(); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// TestPoolEnumSupersetAndExactCounts pins poolEnum's contract directly
// against the plain mask walk on the same pool: (1) every subset that passes
// the S1-side sink checks (size, out-targets, κ) is yielded — prunes only
// ever discard failing subsets; (2) every yielded subset meeting the size
// floor satisfies the pruning invariants it claims — in particular, when
// outExact is reported the out count equals the definitional
// OutTargets(S1) count, and otherwise it is a lower bound.
func TestPoolEnumSupersetAndExactCounts(t *testing.T) {
	for name, g := range bruteDefs(t) {
		v := FullView(g)
		rg := v.ReceivedGraph()
		for gt := 0; gt <= 3; gt++ {
			for _, comp := range rg.SCCs() {
				pool := comp
				if gt >= 1 {
					pool = rg.Induced(comp).DirectedCore(gt + 1)
				}
				if pool.Len() < 2*gt+1 || pool.Len() == 0 {
					continue
				}
				sorted := pool.Sorted()
				var pe poolEnum
				pe.init(sorted, gt, func(u model.ID, yield func(model.ID)) {
					for tgt := range v.PD[u] {
						yield(tgt)
					}
				})
				yields := map[uint64]struct {
					out   int
					exact bool
				}{}
				pe.run(func(mask uint64, out int, outExact bool) {
					yields[mask] = struct {
						out   int
						exact bool
					}{out, outExact}
				})
				enumerateSubsets(sorted, 2*gt+1, func(s1 model.IDSet) {
					var mask uint64
					for i, id := range sorted {
						if s1.Has(id) {
							mask |= 1 << i
						}
					}
					trueOut := v.OutTargets(s1).Len()
					passes := trueOut <= gt &&
						(s1.Len() <= 1 || rg.Induced(s1).IsKStronglyConnected(gt+1))
					y, yielded := yields[mask]
					if passes && !yielded {
						t.Fatalf("%s g=%d: passing subset %s pruned away", name, gt, s1)
					}
					if yielded {
						if y.exact && y.out != trueOut {
							t.Fatalf("%s g=%d: subset %s yielded out=%d exact, true count %d",
								name, gt, s1, y.out, trueOut)
						}
						if !y.exact && y.out > trueOut {
							t.Fatalf("%s g=%d: subset %s inexact out=%d exceeds true count %d",
								name, gt, s1, y.out, trueOut)
						}
					}
				})
				for mask := range yields {
					if bits.OnesCount64(mask) < 2*gt+1 {
						t.Fatalf("%s g=%d: yield %b below the size floor", name, gt, mask)
					}
				}
			}
		}
	}
}

// TestSearcherMatchesViewOnProbabilisticFamilies extends the incremental ≡
// from-scratch property to the er/geo/sf families: over randomized insertion
// orders, after every insertion, the memoizing searcher and the from-scratch
// View methods agree on all searches. Unstructured graphs exercise SCC
// shapes (many small components, sparse cores) the planted families never
// produce.
func TestSearcherMatchesViewOnProbabilisticFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, s := range []string{"er:n=13,p=0.3", "geo:n=13,r=0.4", "sf:n=13,m=2"} {
		d, err := graph.ParseDef(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Build(3)
		if err != nil {
			t.Fatal(err)
		}
		owners := b.G.Nodes()
		rng.Shuffle(len(owners), func(i, j int) { owners[i], owners[j] = owners[j], owners[i] })
		v := NewView()
		se := NewSearcher()
		for _, owner := range owners {
			v.AddKnown(owner)
			v.SetPD(owner, b.G.OutSet(owner))
			for _, tgt := range b.G.OutSet(owner).Sorted() {
				v.AddKnown(tgt)
			}
			assertSearcherMatches(t, se, v, s)
		}
	}
}
