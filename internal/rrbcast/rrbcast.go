package rrbcast

import (
	"crypto/sha256"
	"fmt"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
	"github.com/bftcup/bftcup/internal/wire"
)

// DefaultForwardCap bounds how many distinct copies of one content a process
// re-forwards. Unbounded path flooding is exponential; a small cap preserves
// f+1 disjoint-path delivery on the graphs the model admits while keeping the
// baseline runnable (the original protocol pays this same flooding cost).
const DefaultForwardCap = 8

// Message is one broadcast in flight.
type Message struct {
	// Origin is the broadcasting process; Seq distinguishes its broadcasts.
	Origin model.ID
	Seq    uint64
	// Path lists the forwarders after the origin, in order (origin excluded).
	Path []model.ID
	// Payload is the broadcast content.
	Payload []byte
}

func (m *Message) encode() []byte {
	w := wire.NewWriter()
	w.Byte(wire.KindRRB)
	w.ID(m.Origin)
	w.Uvarint(m.Seq)
	w.IDSlice(m.Path)
	w.BytesField(m.Payload)
	return w.Bytes()
}

func decode(b []byte) (*Message, bool) {
	if len(b) < 2 || b[0] != wire.KindRRB {
		return nil, false
	}
	r := wire.NewReader(b[1:])
	m := &Message{Origin: r.ID(), Seq: r.Uvarint(), Path: r.IDSlice(), Payload: r.BytesField()}
	return m, r.Done() == nil
}

// contentKey identifies (origin, seq, payload-digest): paths are counted per
// CONTENT, so a Byzantine forwarder forging the payload only pollutes its own
// bucket.
type contentKey struct {
	origin model.ID
	seq    uint64
	digest [32]byte
}

func keyOf(m *Message) contentKey {
	return contentKey{origin: m.Origin, seq: m.Seq, digest: sha256.Sum256(m.Payload)}
}

// Module is the per-process broadcast state. Forwarding follows the
// process's (static) participant detector, as in the original protocol.
type Module struct {
	self       model.ID
	pd         model.IDSet
	f          int
	forwardCap int
	onDeliver  func(origin model.ID, payload []byte)

	paths     map[contentKey][][]model.ID
	delivered map[contentKey]bool
	forwards  map[contentKey]int
}

// New creates a module. onDeliver fires exactly once per delivered content.
func New(self model.ID, pd model.IDSet, f int, onDeliver func(model.ID, []byte)) *Module {
	return &Module{
		self:       self,
		pd:         pd.Clone(),
		f:          f,
		forwardCap: DefaultForwardCap,
		onDeliver:  onDeliver,
		paths:      make(map[contentKey][][]model.ID),
		delivered:  make(map[contentKey]bool),
		forwards:   make(map[contentKey]int),
	}
}

// SetForwardCap overrides the per-content forwarding bound (tests/benches).
func (m *Module) SetForwardCap(n int) {
	if n > 0 {
		m.forwardCap = n
	}
}

// Broadcast sends payload to every process the sender knows; it is also
// delivered locally at once.
func (m *Module) Broadcast(ctx rt.Context, seq uint64, payload []byte) {
	msg := &Message{Origin: m.self, Seq: seq, Payload: payload}
	k := keyOf(msg)
	if !m.delivered[k] {
		m.delivered[k] = true
		if m.onDeliver != nil {
			m.onDeliver(m.self, payload)
		}
	}
	enc := msg.encode()
	for _, p := range m.pd.Sorted() {
		ctx.Send(p, enc)
	}
}

// Handle processes an incoming payload; it reports whether it was an RRB
// message.
func (m *Module) Handle(ctx rt.Context, from model.ID, payload []byte) bool {
	msg, ok := decode(payload)
	if !ok {
		return len(payload) > 0 && payload[0] == wire.KindRRB
	}
	// Sanity: the immediate sender must be the last forwarder (or the origin
	// itself). Anything else is a malformed or forged route.
	last := msg.Origin
	if len(msg.Path) > 0 {
		last = msg.Path[len(msg.Path)-1]
	}
	if last != from || msg.Origin == m.self {
		return true
	}
	// Drop cycles.
	if msg.Origin == m.self {
		return true
	}
	for _, v := range msg.Path {
		if v == m.self {
			return true
		}
	}
	k := keyOf(msg)
	full := append([]model.ID{msg.Origin}, msg.Path...)
	m.paths[k] = append(m.paths[k], full)
	if !m.delivered[k] && m.DisjointPathCount(k) > m.f {
		m.delivered[k] = true
		if m.onDeliver != nil {
			m.onDeliver(msg.Origin, msg.Payload)
		}
	}
	// Forward with ourselves appended, within the cap.
	if m.forwards[k] < m.forwardCap {
		m.forwards[k]++
		fwd := &Message{Origin: msg.Origin, Seq: msg.Seq, Payload: msg.Payload,
			Path: append(append([]model.ID{}, msg.Path...), m.self)}
		enc := fwd.encode()
		for _, p := range m.pd.Sorted() {
			if p != from && p != msg.Origin && !contains(msg.Path, p) {
				ctx.Send(p, enc)
			}
		}
	}
	return true
}

func contains(ids []model.ID, id model.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// DisjointPathCount computes the maximum number of internally-node-disjoint
// origin→self routes among the copies collected for one content, via
// max-flow over the union of the recorded paths.
func (m *Module) DisjointPathCount(k contentKey) int {
	paths := m.paths[k]
	if len(paths) == 0 {
		return 0
	}
	g := graph.New()
	g.AddNode(k.origin)
	g.AddNode(m.self)
	for _, p := range paths {
		prev := p[0]
		for _, v := range p[1:] {
			g.AddEdge(prev, v)
			prev = v
		}
		g.AddEdge(prev, m.self)
	}
	return g.MaxNodeDisjointPaths(k.origin, m.self, m.f+1)
}

// Delivered reports whether content from origin with the given seq/payload
// was delivered.
func (m *Module) Delivered(origin model.ID, seq uint64, payload []byte) bool {
	return m.delivered[contentKey{origin: origin, seq: seq, digest: sha256.Sum256(payload)}]
}

// String summarizes the module for debugging.
func (m *Module) String() string {
	return fmt.Sprintf("rrbcast{self=%v f=%d contents=%d}", m.self, m.f, len(m.paths))
}
