package rrbcast

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
	"github.com/bftcup/bftcup/internal/wire"
)

// rrbNode is a reactor running one rrbcast module and broadcasting its own
// PD encoding at start (the unauthenticated-discovery workload).
type rrbNode struct {
	mod       *Module
	broadcast []byte
}

func (n *rrbNode) Init(ctx sim.Context) {
	if n.broadcast != nil {
		n.mod.Broadcast(ctx, 0, n.broadcast)
	}
}
func (n *rrbNode) Receive(ctx sim.Context, from model.ID, payload []byte) {
	n.mod.Handle(ctx, from, payload)
}
func (n *rrbNode) Timer(sim.Context, uint64) {}

func buildRRB(t *testing.T, g *graph.Digraph, f int, silent model.IDSet) (map[model.ID]*rrbNode, map[model.ID]model.IDSet, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine(sim.Synchronous{Delta: 5 * sim.Millisecond}, 1)
	nodes := make(map[model.ID]*rrbNode)
	delivered := make(map[model.ID]model.IDSet)
	for _, id := range g.Nodes() {
		id := id
		delivered[id] = model.NewIDSet()
		mod := New(id, g.OutSet(id).Clone(), f, func(origin model.ID, payload []byte) {
			delivered[id].Add(origin)
		})
		n := &rrbNode{mod: mod, broadcast: []byte(fmt.Sprintf("pd-of-%d", id))}
		nodes[id] = n
		if err := engine.AddProcess(id, n); err != nil {
			t.Fatal(err)
		}
		if silent.Has(id) {
			engine.Crash(id)
		}
	}
	return nodes, delivered, engine
}

func TestDirectDeliveryF0(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	_, delivered, engine := buildRRB(t, g, 0, model.NewIDSet())
	engine.Run(sim.Second)
	if !delivered[2].Has(1) {
		t.Fatal("2 should deliver 1's broadcast directly (f=0)")
	}
	if !delivered[3].Has(1) {
		t.Fatal("3 should deliver 1's broadcast via forwarding (f=0)")
	}
	if delivered[1].Has(2) {
		t.Fatal("1 has no incoming knowledge path from 2... 2 does not know 1")
	}
}

func TestF1NeedsTwoDisjointPaths(t *testing.T) {
	// Diamond 1→{2,3}→4 gives two disjoint paths 1⇒4; a single chain does not.
	diamond := graph.New()
	diamond.AddEdge(1, 2)
	diamond.AddEdge(1, 3)
	diamond.AddEdge(2, 4)
	diamond.AddEdge(3, 4)
	_, delivered, engine := buildRRB(t, diamond, 1, model.NewIDSet())
	engine.Run(sim.Second)
	if !delivered[4].Has(1) {
		t.Fatal("4 should deliver over two disjoint paths with f=1")
	}

	chain := graph.New()
	chain.AddEdge(1, 2)
	chain.AddEdge(2, 4)
	_, delivered2, engine2 := buildRRB(t, chain, 1, model.NewIDSet())
	engine2.Run(sim.Second)
	if delivered2[4].Has(1) {
		t.Fatal("4 must NOT deliver over a single path with f=1")
	}
}

// A Byzantine forwarder that alters content cannot get the forgery delivered
// with f=1 (a forged copy travels over at most one "disjoint" path), while
// the genuine content still arrives over two clean paths.
type forgingForwarder struct {
	self model.ID
	pd   model.IDSet
}

func (n *forgingForwarder) Init(sim.Context) {}
func (n *forgingForwarder) Receive(ctx sim.Context, from model.ID, payload []byte) {
	msg, ok := decode(payload)
	if !ok || msg.Origin == n.self {
		return
	}
	forged := &Message{Origin: msg.Origin, Seq: msg.Seq, Payload: []byte("forged"),
		Path: append(append([]model.ID{}, msg.Path...), n.self)}
	enc := forged.encode()
	for _, p := range n.pd.Sorted() {
		if p != from && p != msg.Origin {
			ctx.Send(p, enc)
		}
	}
}
func (n *forgingForwarder) Timer(sim.Context, uint64) {}

func TestForgeryBlockedGenuineDelivered(t *testing.T) {
	// 1 → {2,3,4} → 5 with 4 forging. Genuine copies arrive via 2 and 3.
	g := graph.New()
	for _, mid := range []model.ID{2, 3, 4} {
		g.AddEdge(1, mid)
		g.AddEdge(mid, 5)
	}
	engine := sim.NewEngine(sim.Synchronous{Delta: 5 * sim.Millisecond}, 1)
	deliveredPayloads := make(map[string]bool)
	mod5 := New(5, model.NewIDSet(), 1, func(origin model.ID, payload []byte) {
		deliveredPayloads[string(payload)] = true
	})
	sink := &rrbNode{mod: mod5}
	src := &rrbNode{mod: New(1, g.OutSet(1).Clone(), 1, nil), broadcast: []byte("genuine")}
	if err := engine.AddProcess(1, src); err != nil {
		t.Fatal(err)
	}
	for _, mid := range []model.ID{2, 3} {
		if err := engine.AddProcess(mid, &rrbNode{mod: New(mid, g.OutSet(mid).Clone(), 1, nil)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.AddProcess(4, &forgingForwarder{self: 4, pd: g.OutSet(4).Clone()}); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(5, sink); err != nil {
		t.Fatal(err)
	}
	engine.Run(sim.Second)
	if !deliveredPayloads["genuine"] {
		t.Fatal("genuine content should be delivered over 2 disjoint clean paths")
	}
	if deliveredPayloads["forged"] {
		t.Fatal("forged content must not reach the f+1 disjoint-path bar")
	}
}

// On Fig 1b (f=1), every correct sink member delivers every other correct
// sink member's broadcast: the unauthenticated discovery substrate works on
// model-compliant graphs.
func TestFig1bSinkDissemination(t *testing.T) {
	fig := graph.Fig1b()
	_, delivered, engine := buildRRB(t, fig.G, fig.F, fig.Byz)
	engine.Run(5 * sim.Second)
	for _, a := range fig.ExpectedSink.Sorted() {
		for _, b := range fig.ExpectedSink.Sorted() {
			if a == b {
				continue
			}
			if !delivered[a].Has(b) {
				t.Fatalf("sink member %v did not deliver %v's broadcast", a, b)
			}
		}
	}
}

func TestPathSpoofRejected(t *testing.T) {
	mod := New(5, model.NewIDSet(), 0, nil)
	engine := sim.NewEngine(sim.Synchronous{Delta: 1}, 1)
	_ = engine
	// A message whose last forwarder is not the actual sender is dropped.
	msg := &Message{Origin: 1, Seq: 0, Path: []model.ID{2}, Payload: []byte("x")}
	ctx := nopCtx{}
	mod.Handle(ctx, 9, msg.encode())
	if mod.Delivered(1, 0, []byte("x")) {
		t.Fatal("spoofed route accepted")
	}
	// From the true last-hop it is fine.
	mod.Handle(ctx, 2, msg.encode())
	if !mod.Delivered(1, 0, []byte("x")) {
		t.Fatal("valid route rejected")
	}
	// Cycles (self in path) are dropped.
	cyc := &Message{Origin: 1, Seq: 1, Path: []model.ID{5, 2}, Payload: []byte("y")}
	mod.Handle(ctx, 2, cyc.encode())
	if mod.Delivered(1, 1, []byte("y")) {
		t.Fatal("cyclic route accepted")
	}
	// Garbage is ignored but claimed.
	if !mod.Handle(ctx, 2, []byte{wire.KindRRB, 0xFF}) {
		t.Fatal("RRB kind byte should be claimed even when malformed")
	}
	if mod.Handle(ctx, 2, []byte{0x42}) {
		t.Fatal("non-RRB payload claimed")
	}
}

type nopCtx struct{}

func (nopCtx) ID() model.ID              { return 5 }
func (nopCtx) Now() sim.Time             { return 0 }
func (nopCtx) Send(model.ID, []byte)     {}
func (nopCtx) SetTimer(sim.Time, uint64) {}
func (nopCtx) Rand() *rand.Rand          { return rand.New(rand.NewSource(0)) }

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{Origin: 7, Seq: 3, Path: []model.ID{1, 2}, Payload: []byte("data")}
	got, ok := decode(m.encode())
	if !ok || got.Origin != 7 || got.Seq != 3 || len(got.Path) != 2 || string(got.Payload) != "data" {
		t.Fatalf("round-trip: %+v %v", got, ok)
	}
}
