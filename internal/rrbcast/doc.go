// Package rrbcast implements the reachable reliable broadcast primitive of
// the ORIGINAL (unauthenticated) BFT-CUP protocol [10], which Section III of
// the paper replaces with digital signatures: a message is delivered only
// once copies of identical content have arrived over more than f
// internally-node-disjoint forwarding paths, so at least one path is
// Byzantine-free and the content is authentic without signatures.
//
// It exists as the baseline for the paper's simplification claim: the
// authenticated protocol is drastically simpler and cheaper. The benchmark
// suite (BenchmarkAuthVsUnauthDissemination) quantifies the message/byte gap
// on the same dissemination task.
package rrbcast
