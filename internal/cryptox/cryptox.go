package cryptox

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/bftcup/bftcup/internal/model"
)

// Signer signs messages on behalf of one process.
type Signer interface {
	// ID returns the process this signer belongs to.
	ID() model.ID
	// Sign returns a signature over msg.
	Sign(msg []byte) []byte
}

// Verifier checks signatures from any registered process.
type Verifier interface {
	// Verify reports whether sig is a valid signature by signer over msg.
	Verify(signer model.ID, msg, sig []byte) bool
}

// Registry holds the public keys of every process. It reifies the paper's
// assumption that IDs are unforgeable and Sybil attacks are infeasible
// (Section II-A): knowing a process's ID suffices to authenticate it.
//
// The key set is immutable after construction and a Registry is safe for
// concurrent use. Verify memoizes its verdicts in a bounded cache: Ed25519
// verification is pure, and the simulator's broadcast fan-out asks the same
// (signer, msg, sig) question once per receiver per gossip round — the memo
// answers every repeat with one hash instead of a curve operation, which is
// what makes sweep throughput protocol-bound rather than signature-bound.
type Registry struct {
	pubs map[model.ID]ed25519.PublicKey

	mu   sync.Mutex
	memo *memoCache[[sha256.Size]byte, bool]
}

// Verify implements Verifier.
func (r *Registry) Verify(signer model.ID, msg, sig []byte) bool {
	pub, ok := r.pubs[signer]
	if !ok {
		return false
	}
	if r.memo == nil {
		return ed25519.Verify(pub, msg, sig)
	}
	k := verifyKey(signer, msg, sig)
	r.mu.Lock()
	v, hit := r.memo.get(k)
	r.mu.Unlock()
	if hit {
		return v
	}
	// Verify outside the lock: duplicated work under contention is cheaper
	// than serializing every curve operation.
	v = ed25519.Verify(pub, msg, sig)
	r.mu.Lock()
	r.memo.put(k, v)
	r.mu.Unlock()
	return v
}

// Has reports whether the registry knows signer's key.
func (r *Registry) Has(signer model.ID) bool {
	_, ok := r.pubs[signer]
	return ok
}

// edSigner is the Ed25519 Signer. Sign memoizes by message: Ed25519 is
// deterministic (RFC 8032 — identical bytes sign to identical signatures),
// and a process re-signs the same canonical record every time it rebuilds a
// gossip or protocol message, so the memo turns all but the first signing of
// each distinct message into a map hit. Signers may be shared across
// concurrently running simulations (the Keyring cache hands out one map per
// (seed, ids)), hence the lock.
type edSigner struct {
	id   model.ID
	priv ed25519.PrivateKey

	mu   sync.Mutex
	memo *memoCache[string, []byte]
}

func (s *edSigner) ID() model.ID { return s.id }

func (s *edSigner) Sign(msg []byte) []byte {
	s.mu.Lock()
	if sig, ok := s.memo.get(string(msg)); ok {
		s.mu.Unlock()
		// Copied: callers own their signature slice (some embed it in
		// long-lived records) and must not alias each other.
		return append([]byte(nil), sig...)
	}
	s.mu.Unlock()
	sig := ed25519.Sign(s.priv, msg)
	s.mu.Lock()
	s.memo.put(string(msg), sig)
	s.mu.Unlock()
	return append([]byte(nil), sig...)
}

// GenerateKeys deterministically creates one Ed25519 keypair per ID from the
// given seed and returns the signers plus the shared registry. Determinism
// keeps simulation traces reproducible.
func GenerateKeys(seed int64, ids []model.ID) (map[model.ID]Signer, *Registry, error) {
	rng := rand.New(rand.NewSource(seed))
	signers := make(map[model.ID]Signer, len(ids))
	reg := &Registry{
		pubs: make(map[model.ID]ed25519.PublicKey, len(ids)),
		memo: newMemoCache[[sha256.Size]byte, bool](verifyMemoCap),
	}
	for _, id := range ids {
		if id == model.NilID {
			return nil, nil, errors.New("cryptox: NilID cannot own a key")
		}
		if _, dup := signers[id]; dup {
			return nil, nil, fmt.Errorf("cryptox: duplicate ID %v", id)
		}
		seedBytes := make([]byte, ed25519.SeedSize)
		if _, err := rng.Read(seedBytes); err != nil {
			return nil, nil, fmt.Errorf("cryptox: seeding key for %v: %w", id, err)
		}
		priv := ed25519.NewKeyFromSeed(seedBytes)
		signers[id] = &edSigner{id: id, priv: priv, memo: newMemoCache[string, []byte](signMemoCap)}
		reg.pubs[id] = priv.Public().(ed25519.PublicKey)
	}
	return signers, reg, nil
}

// InsecureSuite returns keyed-hash signers for benchmarks: signatures are
// SHA-256 over (id, msg) with a shared secret, so they are NOT unforgeable
// between processes and must never be used where Byzantine processes are
// simulated as real adversaries against the crypto itself. The protocol-level
// adversaries in this repository never forge signatures (they equivocate and
// lie within their own signing rights), so benchmarks may substitute this
// suite to measure protocol costs without Ed25519 dominating.
//
// On the live runtime (cupd's -insecure flag) the narrowing is stricter
// still: netrt streams carry no authentication beyond these signatures, so
// the suite is acceptable only for single-machine benchmark deployments on a
// loopback interface where every process is trusted. Any deployment that
// crosses a host boundary must use the Ed25519 keyring.
func InsecureSuite(ids []model.ID) (map[model.ID]Signer, Verifier) {
	signers := make(map[model.ID]Signer, len(ids))
	v := insecureVerifier{}
	for _, id := range ids {
		signers[id] = insecureSigner{id: id}
	}
	return signers, v
}

type insecureSigner struct{ id model.ID }

func (s insecureSigner) ID() model.ID { return s.id }
func (s insecureSigner) Sign(msg []byte) []byte {
	return insecureMAC(s.id, msg)
}

type insecureVerifier struct{}

func (insecureVerifier) Verify(signer model.ID, msg, sig []byte) bool {
	want := insecureMAC(signer, msg)
	if len(sig) != len(want) {
		return false
	}
	for i := range sig {
		if sig[i] != want[i] {
			return false
		}
	}
	return true
}

func insecureMAC(id model.ID, msg []byte) []byte {
	h := sha256.New()
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], uint64(id))
	h.Write([]byte("bftcup-insecure-mac"))
	h.Write(idb[:])
	h.Write(msg)
	return h.Sum(nil)
}
