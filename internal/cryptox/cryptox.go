package cryptox

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"github.com/bftcup/bftcup/internal/model"
)

// Signer signs messages on behalf of one process.
type Signer interface {
	// ID returns the process this signer belongs to.
	ID() model.ID
	// Sign returns a signature over msg.
	Sign(msg []byte) []byte
}

// Verifier checks signatures from any registered process.
type Verifier interface {
	// Verify reports whether sig is a valid signature by signer over msg.
	Verify(signer model.ID, msg, sig []byte) bool
}

// Registry holds the public keys of every process. It reifies the paper's
// assumption that IDs are unforgeable and Sybil attacks are infeasible
// (Section II-A): knowing a process's ID suffices to authenticate it.
//
// A Registry is immutable after construction and safe for concurrent use.
type Registry struct {
	pubs map[model.ID]ed25519.PublicKey
}

// Verify implements Verifier.
func (r *Registry) Verify(signer model.ID, msg, sig []byte) bool {
	pub, ok := r.pubs[signer]
	if !ok {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// Has reports whether the registry knows signer's key.
func (r *Registry) Has(signer model.ID) bool {
	_, ok := r.pubs[signer]
	return ok
}

// edSigner is the Ed25519 Signer.
type edSigner struct {
	id   model.ID
	priv ed25519.PrivateKey
}

func (s *edSigner) ID() model.ID           { return s.id }
func (s *edSigner) Sign(msg []byte) []byte { return ed25519.Sign(s.priv, msg) }

// GenerateKeys deterministically creates one Ed25519 keypair per ID from the
// given seed and returns the signers plus the shared registry. Determinism
// keeps simulation traces reproducible.
func GenerateKeys(seed int64, ids []model.ID) (map[model.ID]Signer, *Registry, error) {
	rng := rand.New(rand.NewSource(seed))
	signers := make(map[model.ID]Signer, len(ids))
	reg := &Registry{pubs: make(map[model.ID]ed25519.PublicKey, len(ids))}
	for _, id := range ids {
		if id == model.NilID {
			return nil, nil, errors.New("cryptox: NilID cannot own a key")
		}
		if _, dup := signers[id]; dup {
			return nil, nil, fmt.Errorf("cryptox: duplicate ID %v", id)
		}
		seedBytes := make([]byte, ed25519.SeedSize)
		if _, err := rng.Read(seedBytes); err != nil {
			return nil, nil, fmt.Errorf("cryptox: seeding key for %v: %w", id, err)
		}
		priv := ed25519.NewKeyFromSeed(seedBytes)
		signers[id] = &edSigner{id: id, priv: priv}
		reg.pubs[id] = priv.Public().(ed25519.PublicKey)
	}
	return signers, reg, nil
}

// InsecureSuite returns keyed-hash signers for benchmarks: signatures are
// SHA-256 over (id, msg) with a shared secret, so they are NOT unforgeable
// between processes and must never be used where Byzantine processes are
// simulated as real adversaries against the crypto itself. The protocol-level
// adversaries in this repository never forge signatures (they equivocate and
// lie within their own signing rights), so benchmarks may substitute this
// suite to measure protocol costs without Ed25519 dominating.
func InsecureSuite(ids []model.ID) (map[model.ID]Signer, Verifier) {
	signers := make(map[model.ID]Signer, len(ids))
	v := insecureVerifier{}
	for _, id := range ids {
		signers[id] = insecureSigner{id: id}
	}
	return signers, v
}

type insecureSigner struct{ id model.ID }

func (s insecureSigner) ID() model.ID { return s.id }
func (s insecureSigner) Sign(msg []byte) []byte {
	return insecureMAC(s.id, msg)
}

type insecureVerifier struct{}

func (insecureVerifier) Verify(signer model.ID, msg, sig []byte) bool {
	want := insecureMAC(signer, msg)
	if len(sig) != len(want) {
		return false
	}
	for i := range sig {
		if sig[i] != want[i] {
			return false
		}
	}
	return true
}

func insecureMAC(id model.ID, msg []byte) []byte {
	h := sha256.New()
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], uint64(id))
	h.Write([]byte("bftcup-insecure-mac"))
	h.Write(idb[:])
	h.Write(msg)
	return h.Sum(nil)
}
