// Package cryptox provides the digital-signature layer of the authenticated
// BFT-CUP / BFT-CUPFT model: per-process Ed25519 keys, a static ID→key
// registry standing in for the paper's Sybil-proof identity assumption
// (Section II-A), and an insecure fast signer for benchmarks where signing
// cost would dominate the quantity being measured.
//
// Key generation is deterministic from a seed, which is what keeps whole
// simulation traces reproducible: the same (seed, ID set) always yields the
// same keys, hence the same signatures, hence the same bytes on the wire.
package cryptox
