package cryptox

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"github.com/bftcup/bftcup/internal/model"
)

// Cache capacities. The verify memo is per registry and sized for one
// scenario's working set (every distinct signed record in flight); the sign
// memo is per signer (a process re-signs only its own handful of records);
// the keyring cache is process-wide (one entry per (seed, ids) pair a sweep
// touches).
const (
	verifyMemoCap = 4096
	signMemoCap   = 256
	keyringCap    = 128
)

// memoCache is a bounded memo table: two generations of maps, rotated
// wholesale when the young generation fills (segmented LRU). Hits in the old
// generation are promoted; a rotation drops everything not touched since the
// previous rotation. Total size is bounded by 2×cap entries, eviction is
// O(1) amortized and allocation-free in steady state — no linked-list
// bookkeeping on the hot path. Callers hold their own lock.
type memoCache[K comparable, V any] struct {
	cap   int
	young map[K]V
	old   map[K]V
}

func newMemoCache[K comparable, V any](cap int) *memoCache[K, V] {
	return &memoCache[K, V]{cap: cap, young: make(map[K]V)}
}

// get returns the cached value, promoting old-generation hits.
func (c *memoCache[K, V]) get(k K) (V, bool) {
	if v, ok := c.young[k]; ok {
		return v, true
	}
	if v, ok := c.old[k]; ok {
		delete(c.old, k)
		c.put(k, v)
		return v, true
	}
	var zero V
	return zero, false
}

// put inserts a value, rotating generations when the young one is full.
func (c *memoCache[K, V]) put(k K, v V) {
	if _, ok := c.young[k]; !ok && len(c.young) >= c.cap {
		c.old = c.young
		c.young = make(map[K]V, c.cap)
	}
	c.young[k] = v
}

// len returns the current entry count (≤ 2×cap).
func (c *memoCache[K, V]) len() int { return len(c.young) + len(c.old) }

// verifyKey condenses one (signer, msg, sig) verification question into a
// fixed-size map key, so the memo stores 33 bytes per entry instead of the
// message. Fields are length-delimited, so distinct questions cannot collide
// by concatenation.
func verifyKey(signer model.ID, msg, sig []byte) [sha256.Size]byte {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(signer))
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], uint64(len(msg)))
	h.Write(b[:])
	h.Write(msg)
	h.Write(sig)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// keyringKey identifies one deterministic keyring: the generation seed plus
// a fingerprint of the ID sequence (order matters — keys are drawn from one
// RNG stream, so the same set in a different order yields different keys).
type keyringKey struct {
	seed int64
	fp   [sha256.Size]byte
}

func newKeyringKey(seed int64, ids []model.ID) keyringKey {
	h := sha256.New()
	var b [8]byte
	for _, id := range ids {
		binary.BigEndian.PutUint64(b[:], uint64(id))
		h.Write(b[:])
	}
	k := keyringKey{seed: seed}
	h.Sum(k.fp[:0])
	return k
}

// keyringEntry is one cached GenerateKeys result.
type keyringEntry struct {
	signers map[model.ID]Signer
	reg     *Registry
}

// keyrings is the process-wide keyring cache behind Keyring.
var keyrings = struct {
	sync.Mutex
	c *memoCache[keyringKey, *keyringEntry]
}{c: newMemoCache[keyringKey, *keyringEntry](keyringCap)}

// Keyring is GenerateKeys behind a process-wide bounded cache keyed by
// (seed, ids fingerprint): repeated materializations of the same scenario —
// a seed sweep re-running one compiled cell, sweep axes sharing a seed, a
// benchmark's b.N loop — reuse one keyring instead of regenerating Ed25519
// keypairs per run. Determinism is unchanged (GenerateKeys is already a pure
// function of its arguments); so is the result's concurrency contract: the
// returned maps and registry are shared and must be treated as read-only.
func Keyring(seed int64, ids []model.ID) (map[model.ID]Signer, *Registry, error) {
	key := newKeyringKey(seed, ids)
	keyrings.Lock()
	if e, ok := keyrings.c.get(key); ok {
		keyrings.Unlock()
		return e.signers, e.reg, nil
	}
	keyrings.Unlock()
	// Generate outside the lock: keygen is the expensive part, and a
	// duplicate generation under contention is deterministic-identical.
	signers, reg, err := GenerateKeys(seed, ids)
	if err != nil {
		return nil, nil, err
	}
	keyrings.Lock()
	keyrings.c.put(key, &keyringEntry{signers: signers, reg: reg})
	keyrings.Unlock()
	return signers, reg, nil
}
