package cryptox

import (
	"crypto/ed25519"
	"crypto/sha256"

	"github.com/bftcup/bftcup/internal/model"
)

// BatchRequest names one signature-verification question: is Sig a valid
// signature by Signer over Msg?
type BatchRequest struct {
	Signer model.ID
	Msg    []byte
	Sig    []byte
}

// BatchVerifier is implemented by verifiers that can answer many questions
// cheaper than one at a time.
type BatchVerifier interface {
	// VerifyBatch returns one verdict per request, in request order.
	VerifyBatch(reqs []BatchRequest) []bool
}

// VerifyBatch answers every request, through the verifier's batch path when
// it has one and one-by-one Verify otherwise. The verdicts are exactly those
// Verify would return — batching changes cost, never answers.
func VerifyBatch(v Verifier, reqs []BatchRequest) []bool {
	if bv, ok := v.(BatchVerifier); ok {
		return bv.VerifyBatch(reqs)
	}
	out := make([]bool, len(reqs))
	for i, q := range reqs {
		out[i] = v.Verify(q.Signer, q.Msg, q.Sig)
	}
	return out
}

// VerifyBatch implements BatchVerifier. The receipt paths that call it —
// discovery merging a SETPDS gossip payload, PBFT validating a quorum
// certificate — present many signatures at once, and under the simulator's
// broadcast fan-out most of them are repeats. One-at-a-time Verify pays a
// lock round-trip per question; the batch path takes the memo lock twice for
// the whole batch (one sweep answering every cached question, one sweep
// storing the new answers) and runs only the misses through Ed25519 in
// between. Verdicts are identical to per-call Verify by construction: the
// same memo is consulted and the same curve operation decides a miss.
func (r *Registry) VerifyBatch(reqs []BatchRequest) []bool {
	out := make([]bool, len(reqs))
	if r.memo == nil {
		for i, q := range reqs {
			out[i] = r.Verify(q.Signer, q.Msg, q.Sig)
		}
		return out
	}

	// Pass 1: hash keys and drain the memo under one lock acquisition.
	keys := make([][sha256.Size]byte, len(reqs))
	misses := make([]int, 0, len(reqs))
	for i, q := range reqs {
		if _, known := r.pubs[q.Signer]; !known {
			continue // out[i] stays false; no memo entry for unknown signers
		}
		keys[i] = verifyKey(q.Signer, q.Msg, q.Sig)
		misses = append(misses, i)
	}
	r.mu.Lock()
	w := 0
	for _, i := range misses {
		if v, hit := r.memo.get(keys[i]); hit {
			out[i] = v
			continue
		}
		misses[w] = i
		w++
	}
	misses = misses[:w]
	r.mu.Unlock()

	if len(misses) == 0 {
		return out
	}
	// Pass 2: curve operations for the misses, outside the lock — as in
	// Verify, duplicated work under contention beats serializing it.
	for _, i := range misses {
		q := reqs[i]
		out[i] = ed25519.Verify(r.pubs[q.Signer], q.Msg, q.Sig)
	}
	// Pass 3: store every new answer under one lock acquisition.
	r.mu.Lock()
	for _, i := range misses {
		r.memo.put(keys[i], out[i])
	}
	r.mu.Unlock()
	return out
}
