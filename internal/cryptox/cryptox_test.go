package cryptox

import (
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

func TestGenerateKeysAndVerify(t *testing.T) {
	ids := []model.ID{1, 2, 3}
	signers, reg, err := GenerateKeys(1, ids)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello")
	sig := signers[1].Sign(msg)
	if !reg.Verify(1, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if reg.Verify(2, msg, sig) {
		t.Fatal("signature attributed to the wrong signer")
	}
	if reg.Verify(1, []byte("tampered"), sig) {
		t.Fatal("signature over different message accepted")
	}
	if reg.Verify(99, msg, sig) {
		t.Fatal("unknown signer accepted")
	}
	if !reg.Has(3) || reg.Has(99) {
		t.Fatal("Has wrong")
	}
}

func TestGenerateKeysDeterministic(t *testing.T) {
	ids := []model.ID{1, 2}
	s1, _, err := GenerateKeys(7, ids)
	if err != nil {
		t.Fatal(err)
	}
	s2, r2, err := GenerateKeys(7, ids)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	if !r2.Verify(1, msg, s1[1].Sign(msg)) {
		t.Fatal("same seed should produce the same keys")
	}
	_ = s2
	// Different seed produces different keys.
	_, r3, err := GenerateKeys(8, ids)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Verify(1, msg, s1[1].Sign(msg)) {
		t.Fatal("different seed should produce different keys")
	}
}

func TestGenerateKeysRejectsBadIDs(t *testing.T) {
	if _, _, err := GenerateKeys(1, []model.ID{model.NilID}); err == nil {
		t.Fatal("NilID should be rejected")
	}
	if _, _, err := GenerateKeys(1, []model.ID{1, 1}); err == nil {
		t.Fatal("duplicate IDs should be rejected")
	}
}

func TestInsecureSuite(t *testing.T) {
	signers, v := InsecureSuite([]model.ID{1, 2})
	msg := []byte("bench")
	sig := signers[1].Sign(msg)
	if !v.Verify(1, msg, sig) {
		t.Fatal("insecure signature rejected")
	}
	if v.Verify(2, msg, sig) {
		t.Fatal("insecure signature accepted for wrong signer")
	}
	if v.Verify(1, []byte("x"), sig) {
		t.Fatal("insecure signature accepted for wrong message")
	}
	if v.Verify(1, msg, sig[:10]) {
		t.Fatal("truncated signature accepted")
	}
	if signers[2].ID() != 2 {
		t.Fatal("signer ID mismatch")
	}
}
