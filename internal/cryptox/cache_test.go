package cryptox

import (
	"fmt"
	"sync"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// TestKeyringMatchesGenerateKeys pins the keyring cache's determinism
// contract: Keyring(seed, ids) hands out keys identical to an uncached
// GenerateKeys call — signatures from one verify under the other, in both
// directions — and a repeated call is a cache hit (the same shared maps).
func TestKeyringMatchesGenerateKeys(t *testing.T) {
	ids := []model.ID{1, 2, 3, 4}
	cachedSigners, cachedReg, err := Keyring(99, ids)
	if err != nil {
		t.Fatal(err)
	}
	freshSigners, freshReg, err := GenerateKeys(99, ids)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cache transparency")
	for _, id := range ids {
		if !freshReg.Verify(id, msg, cachedSigners[id].Sign(msg)) {
			t.Fatalf("cached signer %v rejected by uncached registry", id)
		}
		if !cachedReg.Verify(id, msg, freshSigners[id].Sign(msg)) {
			t.Fatalf("uncached signer %v rejected by cached registry", id)
		}
	}

	again, againReg, err := Keyring(99, ids)
	if err != nil {
		t.Fatal(err)
	}
	if againReg != cachedReg {
		t.Fatal("repeated Keyring call did not hit the cache")
	}
	for _, id := range ids {
		if again[id] != cachedSigners[id] {
			t.Fatalf("repeated Keyring call rebuilt signer %v", id)
		}
	}

	// Different seed and different ID order are different keyrings.
	_, otherSeed, err := Keyring(100, ids)
	if err != nil {
		t.Fatal(err)
	}
	if otherSeed == cachedReg {
		t.Fatal("different seed shared a keyring")
	}
	_, otherOrder, err := Keyring(99, []model.ID{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if otherOrder == cachedReg {
		t.Fatal("different ID order shared a keyring (keys are drawn from one RNG stream)")
	}
}

// TestKeyringRejectsBadIDs mirrors the GenerateKeys validation through the
// cached entry point.
func TestKeyringRejectsBadIDs(t *testing.T) {
	if _, _, err := Keyring(1, []model.ID{model.NilID}); err == nil {
		t.Fatal("NilID accepted")
	}
	if _, _, err := Keyring(1, []model.ID{2, 2}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

// TestVerifyMemoCorrectness asserts the memo can neither turn a bad
// signature good nor a good one bad, including the poisoning-shaped cases: a
// tampered signature right after its valid twin was memoized, the valid
// signature attributed to another signer, and re-verification after the
// memo has evicted.
func TestVerifyMemoCorrectness(t *testing.T) {
	signers, reg, err := GenerateKeys(3, []model.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("memoized message")
	sig := signers[1].Sign(msg)
	for round := 0; round < 3; round++ {
		if !reg.Verify(1, msg, sig) {
			t.Fatalf("round %d: valid signature rejected", round)
		}
		tampered := append([]byte(nil), sig...)
		tampered[0] ^= 1
		if reg.Verify(1, msg, tampered) {
			t.Fatalf("round %d: tampered signature accepted", round)
		}
		if reg.Verify(2, msg, sig) {
			t.Fatalf("round %d: signature accepted for the wrong signer", round)
		}
		if reg.Verify(1, []byte("other message"), sig) {
			t.Fatalf("round %d: signature accepted for the wrong message", round)
		}
	}
	// Fill the memo past capacity so the original entries rotate out, then
	// re-ask: the cold path must agree with the memoized one.
	for i := 0; i < 2*verifyMemoCap+10; i++ {
		reg.Verify(1, []byte(fmt.Sprintf("filler %d", i)), sig)
	}
	if !reg.Verify(1, msg, sig) {
		t.Fatal("valid signature rejected after memo eviction")
	}
}

// TestSignMemoDeterministic asserts memoized signing returns byte-identical
// signatures (Ed25519 is deterministic), hands each caller an independent
// slice, and survives callers that scribble on what they were given.
func TestSignMemoDeterministic(t *testing.T) {
	signers, reg, err := GenerateKeys(5, []model.ID{1})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("sign me repeatedly")
	first := signers[1].Sign(msg)
	second := signers[1].Sign(msg)
	if string(first) != string(second) {
		t.Fatal("memoized signature differs from the first")
	}
	if &first[0] == &second[0] {
		t.Fatal("memo handed two callers the same slice")
	}
	first[0] ^= 1 // a hostile caller mutates its copy
	third := signers[1].Sign(msg)
	if string(third) != string(second) {
		t.Fatal("caller mutation poisoned the sign memo")
	}
	if !reg.Verify(1, msg, third) {
		t.Fatal("memoized signature does not verify")
	}
}

// TestMemoCacheBounded pins the LRU bound of every cache: the two-generation
// memo never holds more than 2×cap entries no matter how many distinct keys
// pass through, and old entries come back correct after eviction.
func TestMemoCacheBounded(t *testing.T) {
	c := newMemoCache[int, int](8)
	for i := 0; i < 1000; i++ {
		c.put(i, i*10)
		if c.len() > 16 {
			t.Fatalf("after %d inserts the memo holds %d entries (cap 8 → bound 16)", i+1, c.len())
		}
	}
	if v, ok := c.get(999); !ok || v != 9990 {
		t.Fatalf("most recent entry missing: %d %t", v, ok)
	}
	if _, ok := c.get(0); ok {
		t.Fatal("entry 0 survived 1000 inserts into a 16-entry cache")
	}
	// Promotion: a repeatedly touched key survives rotations.
	c.put(5000, 1)
	for i := 0; i < 100; i++ {
		c.put(6000+i, i)
		if _, ok := c.get(5000); !ok {
			t.Fatalf("hot entry evicted after %d cold inserts despite promotion", i+1)
		}
	}

	// The registry's verify memo is bounded the same way.
	signers, reg, err := GenerateKeys(9, []model.ID{1})
	if err != nil {
		t.Fatal(err)
	}
	sig := signers[1].Sign([]byte("m"))
	for i := 0; i < 3*verifyMemoCap; i++ {
		reg.Verify(1, []byte(fmt.Sprintf("bound %d", i)), sig)
	}
	if n := reg.memo.len(); n > 2*verifyMemoCap {
		t.Fatalf("verify memo grew to %d entries (bound %d)", n, 2*verifyMemoCap)
	}
}

// TestMemoConcurrentWorkers hammers one shared keyring — the exact sharing
// the matrix worker pool produces — from many goroutines mixing valid and
// invalid verifications and overlapping signings. Correctness is asserted
// per operation; the race detector (CI runs the package under -race) checks
// the locking.
func TestMemoConcurrentWorkers(t *testing.T) {
	ids := []model.ID{1, 2, 3, 4}
	signers, reg, err := Keyring(77, ids)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(w+i)%len(ids)]
				msg := []byte(fmt.Sprintf("msg %d", i%17)) // overlap across workers
				sig := signers[id].Sign(msg)
				if !reg.Verify(id, msg, sig) {
					errs <- fmt.Errorf("worker %d: valid signature rejected", w)
					return
				}
				bad := append([]byte(nil), sig...)
				bad[i%len(bad)] ^= 0x40
				if reg.Verify(id, msg, bad) {
					errs <- fmt.Errorf("worker %d: corrupted signature accepted", w)
					return
				}
				other := ids[(w+i+1)%len(ids)]
				if other != id && reg.Verify(other, msg, sig) {
					errs <- fmt.Errorf("worker %d: cross-signer signature accepted", w)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
