package cryptox

import (
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// TestVerifyBatchMatchesVerify pins the batch contract: on any mix of valid
// signatures, forgeries, unknown signers and repeats, VerifyBatch answers
// exactly what per-call Verify answers — cold memo and warm memo alike.
func TestVerifyBatchMatchesVerify(t *testing.T) {
	ids := []model.ID{1, 2, 3}
	signers, reg, err := GenerateKeys(7, ids)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := []byte("alpha"), []byte("beta")
	good1 := signers[1].Sign(m1)
	good2 := signers[2].Sign(m2)
	forged := append([]byte(nil), good1...)
	forged[0] ^= 0xff
	reqs := []BatchRequest{
		{Signer: 1, Msg: m1, Sig: good1},
		{Signer: 2, Msg: m2, Sig: good2},
		{Signer: 1, Msg: m1, Sig: forged},         // corrupted signature
		{Signer: 2, Msg: m1, Sig: good1},          // right sig, wrong signer
		{Signer: 99, Msg: m1, Sig: good1},         // unknown signer
		{Signer: 1, Msg: m1, Sig: good1},          // repeat of request 0
		{Signer: 3, Msg: m2, Sig: good2},          // wrong signer again
		{Signer: 1, Msg: []byte("g"), Sig: good1}, // wrong message
	}
	for round := 0; round < 2; round++ { // round 0 cold memo, round 1 warm
		got := VerifyBatch(reg, reqs)
		if len(got) != len(reqs) {
			t.Fatalf("round %d: got %d verdicts for %d requests", round, len(got), len(reqs))
		}
		for i, q := range reqs {
			if want := reg.Verify(q.Signer, q.Msg, q.Sig); got[i] != want {
				t.Errorf("round %d req %d: batch=%t verify=%t", round, i, got[i], want)
			}
		}
	}
}

// TestVerifyBatchFallback checks the generic path for verifiers without a
// batch implementation (the insecure suite).
func TestVerifyBatchFallback(t *testing.T) {
	ids := []model.ID{1, 2}
	signers, v := InsecureSuite(ids)
	if _, ok := v.(BatchVerifier); ok {
		t.Fatal("insecure verifier unexpectedly implements BatchVerifier; test needs a new subject")
	}
	msg := []byte("x")
	sig := signers[1].Sign(msg)
	got := VerifyBatch(v, []BatchRequest{
		{Signer: 1, Msg: msg, Sig: sig},
		{Signer: 2, Msg: msg, Sig: sig},
	})
	if !got[0] || got[1] {
		t.Fatalf("fallback verdicts = %v, want [true false]", got)
	}
}

// BenchmarkVerifyBatchWarm measures the amortized hot path: every question
// already memoized, one lock round-trip for the whole batch.
func BenchmarkVerifyBatchWarm(b *testing.B) {
	ids := make([]model.ID, 16)
	for i := range ids {
		ids[i] = model.ID(i + 1)
	}
	signers, reg, err := GenerateKeys(7, ids)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("prepare:slot=1:view=0:digest")
	reqs := make([]BatchRequest, len(ids))
	for i, id := range ids {
		reqs[i] = BatchRequest{Signer: id, Msg: msg, Sig: signers[id].Sign(msg)}
	}
	VerifyBatch(reg, reqs) // warm the memo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VerifyBatch(reg, reqs)
	}
}

// BenchmarkVerifyLoopWarm is the per-call baseline for the same workload.
func BenchmarkVerifyLoopWarm(b *testing.B) {
	ids := make([]model.ID, 16)
	for i := range ids {
		ids[i] = model.ID(i + 1)
	}
	signers, reg, err := GenerateKeys(7, ids)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("prepare:slot=1:view=0:digest")
	sigs := make([][]byte, len(ids))
	for i, id := range ids {
		sigs[i] = signers[id].Sign(msg)
		reg.Verify(id, msg, sigs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, id := range ids {
			reg.Verify(id, msg, sigs[j])
		}
	}
}
