package netrt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x01},
		[]byte("hello"),
		bytes.Repeat([]byte{0xab}, 1<<16),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range payloads {
		got, err := ReadFrame(br, nil, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(br, nil, 0); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	br := bufio.NewReader(bytes.NewReader(nil))
	if _, err := ReadFrame(br, nil, 0); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestReadFrameTruncatedPrefix(t *testing.T) {
	// A multi-byte varint cut off mid-prefix is a dirty disconnect, not a
	// clean EOF.
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], 300) // two-byte varint
	br := bufio.NewReader(bytes.NewReader(hdr[:n-1]))
	if _, err := ReadFrame(br, nil, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-prefix EOF: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadFrameMidFrameDisconnect(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, bytes.Repeat([]byte{0x55}, 100)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) - 50, len(full) - 99} {
		br := bufio.NewReader(bytes.NewReader(full[:cut]))
		if _, err := ReadFrame(br, nil, 0); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadFrameOversizedPrefix(t *testing.T) {
	// An adversarial length prefix must be rejected before any body
	// allocation, even when it encodes an absurd size.
	for _, n := range []uint64{MaxFrame + 1, 1 << 40, 1<<64 - 1} {
		var hdr [binary.MaxVarintLen64]byte
		m := binary.PutUvarint(hdr[:], n)
		br := bufio.NewReader(bytes.NewReader(hdr[:m]))
		_, err := ReadFrame(br, nil, 0)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("prefix %d: got %v, want ErrFrameTooLarge", n, err)
		}
	}
	// The cap is configurable; a frame over a small limit dies the same way.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	if _, err := ReadFrame(br, nil, 16); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("small max: got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameVarintOverflow(t *testing.T) {
	// 10 continuation bytes: more than any uvarint may carry.
	junk := bytes.Repeat([]byte{0x80}, 11)
	br := bufio.NewReader(bytes.NewReader(junk))
	if _, err := ReadFrame(br, nil, 0); err != errVarintOverflow {
		t.Fatalf("overflowing varint: got %v, want errVarintOverflow", err)
	}
	// A 10-byte varint whose top byte exceeds 1 overflows 64 bits.
	junk = append(bytes.Repeat([]byte{0x80}, 9), 0x02)
	br = bufio.NewReader(bytes.NewReader(junk))
	if _, err := ReadFrame(br, nil, 0); err != errVarintOverflow {
		t.Fatalf("64-bit overflow: got %v, want errVarintOverflow", err)
	}
}

func TestReadFrameBufReuse(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&buf, []byte{byte(i), byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	scratch := make([]byte, 0, 64)
	for i := 0; i < 3; i++ {
		got, err := ReadFrame(br, scratch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 || got[0] != byte(i) {
			t.Fatalf("frame %d: got %v", i, got)
		}
		if &got[0] != &scratch[:1][0] {
			t.Fatalf("frame %d: buffer not reused", i)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, id := range []model.ID{1, 7, 1 << 20} {
		got, err := decodeHello(encodeHello(id))
		if err != nil {
			t.Fatalf("id %v: %v", id, err)
		}
		if got != id {
			t.Fatalf("id %v: decoded %v", id, got)
		}
	}
	if _, err := decodeHello([]byte{0x01, 0xff}); err == nil {
		t.Fatal("hello with trailing bytes accepted")
	}
	if _, err := decodeHello(nil); err == nil {
		t.Fatal("empty hello accepted")
	}
}

// countingReader tracks how many bytes the bufio layer pulled from the
// source, so tests can tell how much input a frame actually consumed.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader — the
// inbound path a Byzantine peer controls completely. The reader must never
// panic, never return a frame above the cap, must make byte progress on
// every frame, and must report clean EOF only when the stream ended exactly
// on a frame boundary.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, []byte("hello"))
	WriteFrame(&seed, nil)
	f.Add(seed.Bytes())
	var over [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(over[:], 1<<40)
	f.Add(over[:n])
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	f.Add(seed.Bytes()[:3])

	f.Fuzz(func(t *testing.T, data []byte) {
		const max = 1 << 12
		cr := &countingReader{r: bytes.NewReader(data)}
		br := bufio.NewReader(cr)
		prev := 0
		for {
			payload, err := ReadFrame(br, nil, max)
			consumed := cr.n - br.Buffered()
			if err != nil {
				if err == io.EOF && consumed != len(data) {
					t.Fatalf("clean EOF after %d of %d bytes", consumed, len(data))
				}
				return
			}
			if len(payload) > max {
				t.Fatalf("frame of %d bytes exceeds max %d", len(payload), max)
			}
			if consumed <= prev {
				t.Fatalf("no progress: frame ending at %d after one ending at %d", consumed, prev)
			}
			prev = consumed
		}
	})
}
