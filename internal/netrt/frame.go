package netrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/wire"
)

// MaxFrame bounds one length-prefixed frame on a stream. A peer announcing a
// larger frame is either broken or adversarial; the reader kills the
// connection instead of allocating. Larger than wire.MaxChunk because a
// protocol message (a SETPDS batch, a PBFT certificate) is a sequence of
// chunks.
const MaxFrame = 1 << 24

// ErrFrameTooLarge is returned when a frame's length prefix exceeds the
// reader's limit.
var ErrFrameTooLarge = errors.New("netrt: frame length exceeds limit")

// errVarintOverflow is returned for a length prefix that is not a valid
// uvarint (more than 10 bytes, or a 10th byte above 1).
var errVarintOverflow = errors.New("netrt: length prefix overflows uvarint")

// errBadHello is returned when a connection's first frame is not a valid
// hello.
var errBadHello = errors.New("netrt: malformed hello frame")

// WriteFrame writes one frame: a uvarint length prefix followed by the
// payload bytes. It does not flush; callers batch frames and flush once.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readUvarint decodes a uvarint from the stream. Unlike binary.ReadUvarint it
// distinguishes a clean EOF at a frame boundary (io.EOF) from a disconnect
// mid-prefix (io.ErrUnexpectedEOF), which is what the reconnect logic and the
// adversarial-stream tests care about.
func readUvarint(br *bufio.Reader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if i == binary.MaxVarintLen64 {
			return 0, errVarintOverflow
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, errVarintOverflow
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// ReadFrame reads one frame from the stream, reusing buf's capacity when it
// suffices. max <= 0 means MaxFrame. A clean EOF at a frame boundary returns
// io.EOF; a disconnect mid-prefix or mid-payload returns io.ErrUnexpectedEOF;
// a length prefix above max returns ErrFrameTooLarge without reading (or
// allocating) the body.
func ReadFrame(br *bufio.Reader, buf []byte, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrame
	}
	n, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > uint64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	if uint64(cap(buf)) >= n {
		buf = buf[:n]
	} else {
		buf = make([]byte, n)
	}
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// encodeHello builds the handshake frame payload a dialer sends first on
// every connection: its own process ID, so the accepting side can attribute
// all subsequent frames.
func encodeHello(id model.ID) []byte {
	w := wire.NewWriter()
	w.ID(id)
	return w.Bytes()
}

// decodeHello parses a hello frame payload.
func decodeHello(payload []byte) (model.ID, error) {
	r := wire.NewReader(payload)
	id := r.ID()
	if err := r.Done(); err != nil {
		return 0, errBadHello
	}
	return id, nil
}
