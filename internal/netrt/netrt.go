// Package netrt implements the rt runtime over real network transports: the
// same core.Node/discovery/pbft/rrbcast stack the deterministic simulator
// drives runs here over length-prefixed wire-codec frames on TCP (or any
// net.Conn, e.g. net.Pipe in tests), with monotonic-clock timers and graceful
// shutdown via context.
//
// Each Node owns one event-loop goroutine that serializes all reactor
// callbacks (the rt contract), one reconnecting outbound stream per peer, and
// one reader goroutine per inbound connection. Streams carry a hello frame
// (the dialer's ID) followed by payload frames; a broken stream is redialed
// with backoff while the node's context is alive.
//
// What netrt may and may not reorder: frames on one healthy stream arrive in
// send order (TCP), but a reconnect drops whatever was queued or in flight —
// so cross-reconnect ordering is undefined, exactly like the simulator's
// lossy models. Messages to different peers are independent streams and may
// arrive in any relative order, like the simulator's per-message delay draws.
// The optional Delay hook deliberately reintroduces per-message reordering so
// the simulator's network models can be mirrored live. What netrt never does
// is deliver a frame it did not receive in full, deliver to a stopped node,
// or call one reactor from two goroutines.
package netrt

import (
	"bufio"
	"context"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
)

// envelope is one mailbox item: either a message or a timer firing.
type envelope struct {
	isTimer bool
	tag     uint64
	from    model.ID
	payload []byte
}

// mailbox is an unbounded MPSC queue feeding the event loop. Unboundedness
// matters: a bounded inbox deadlocks when two nodes block sending to each
// other.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(e envelope) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, e)
	m.cond.Signal()
}

func (m *mailbox) pop() (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return envelope{}, false
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// timerRef pairs a timer with a fired flag so compaction can drop completed
// timers without racing their callbacks.
type timerRef struct {
	t    *time.Timer
	done atomic.Bool
}

// Config parameterizes one Node.
type Config struct {
	// ID is this node's process identity (sent in the hello frame).
	ID model.ID
	// Peers are the processes this node maintains outbound streams to.
	// Sends to IDs outside this set silently drop (the rt contract).
	Peers []model.ID
	// Dial opens a connection to a peer. Required. Called from the per-peer
	// sender goroutine, re-called with backoff after any stream failure.
	Dial func(ctx context.Context, peer model.ID) (net.Conn, error)
	// Seed seeds the node-local RNG; 0 derives a per-ID default.
	Seed int64
	// MaxFrame caps inbound frame sizes; 0 means MaxFrame.
	MaxFrame int
	// QueueLen bounds each peer's outbound queue; a full queue drops the
	// message (fire-and-forget, like the simulator's lossy links). 0 means
	// 1024.
	QueueLen int
	// RedialBackoff is the initial redial delay after a failed dial or a
	// broken stream, doubling up to 64x. 0 means 5ms.
	RedialBackoff time.Duration
	// Delay, when non-nil, holds each outbound message back by the returned
	// duration before it enters the peer's stream queue — an artificial
	// latency hook that lets tests mirror the simulator's network models
	// (including their deliberate reordering) over real connections.
	Delay func(to model.ID, now rt.Time) rt.Time
}

// Node runs one reactor over real connections.
type Node struct {
	cfg     Config
	reactor rt.Reactor
	box     *mailbox
	rng     *rand.Rand
	start   time.Time

	ctx     context.Context
	cancel  context.CancelFunc
	startMu sync.Mutex
	started atomic.Bool
	wg      sync.WaitGroup

	peers map[model.ID]*peerQueue

	timerMu sync.Mutex
	timers  []*timerRef
	dead    bool

	messages atomic.Int64
	bytes    atomic.Int64
}

// peerQueue is one peer's outbound stream queue.
type peerQueue struct {
	ch chan []byte
}

// offer enqueues without blocking; a full queue drops the message.
func (q *peerQueue) offer(b []byte) {
	select {
	case q.ch <- b:
	default:
	}
}

// NewNode creates a node; Start launches it.
func NewNode(cfg Config, r rt.Reactor) *Node {
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID) + 1
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = 5 * time.Millisecond
	}
	n := &Node{
		cfg:     cfg,
		reactor: r,
		box:     newMailbox(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		peers:   make(map[model.ID]*peerQueue),
	}
	for _, p := range cfg.Peers {
		if p == cfg.ID {
			continue
		}
		n.peers[p] = &peerQueue{ch: make(chan []byte, cfg.QueueLen)}
	}
	return n
}

// Start launches the event loop (which runs the reactor's Init) and one
// sender goroutine per peer. The node shuts down when ctx is cancelled or
// Stop is called.
func (n *Node) Start(ctx context.Context) {
	n.startMu.Lock()
	defer n.startMu.Unlock()
	if n.started.Load() {
		return
	}
	n.ctx, n.cancel = context.WithCancel(ctx)
	n.start = time.Now()
	n.wg.Add(1)
	go n.loop()
	for p, q := range n.peers {
		n.wg.Add(1)
		go n.sender(p, q)
	}
	// Context cancellation is the graceful-shutdown path: reap everything.
	go func() {
		<-n.ctx.Done()
		n.shutdown()
	}()
	// Published last: a Started() observer (the pipe dialer handing us a
	// conn) must see the fields written above.
	n.started.Store(true)
}

// Started reports whether Start has run (and the node can accept
// connections).
func (n *Node) Started() bool { return n.started.Load() }

// Stop shuts the node down and waits for all its goroutines to exit. Safe to
// call more than once, and equivalent to cancelling the Start context.
func (n *Node) Stop() {
	if !n.started.Load() {
		return
	}
	n.cancel()
	n.wg.Wait()
}

// shutdown stops timers and closes the mailbox so the event loop drains out.
func (n *Node) shutdown() {
	n.timerMu.Lock()
	n.dead = true
	for _, r := range n.timers {
		r.t.Stop()
	}
	n.timers = nil
	n.timerMu.Unlock()
	n.box.close()
}

// Messages returns the number of accepted outbound sends so far.
func (n *Node) Messages() int64 { return n.messages.Load() }

// Bytes returns the payload bytes of accepted outbound sends so far.
func (n *Node) Bytes() int64 { return n.bytes.Load() }

// Serve accepts inbound connections on ln until the node's context ends
// (which also closes the listener). Must be called after Start.
func (n *Node) Serve(ln net.Listener) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		stop := context.AfterFunc(n.ctx, func() { ln.Close() })
		defer stop()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			n.ServeConn(c)
		}
	}()
}

// ServeConn adopts one inbound connection: it reads the hello frame to learn
// the sender, then feeds every payload frame to the reactor. The connection
// is closed when the stream errors or the node's context ends. Must be
// called after Start.
func (n *Node) ServeConn(c net.Conn) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer c.Close()
		stop := context.AfterFunc(n.ctx, func() { c.Close() })
		defer stop()
		n.readLoop(c)
	}()
}

// readLoop drains one inbound stream into the mailbox. Any framing error —
// truncated frame, oversized length prefix, mid-frame disconnect — kills the
// connection; the dialing side is responsible for reconnecting.
func (n *Node) readLoop(c net.Conn) {
	br := bufio.NewReader(c)
	hello, err := ReadFrame(br, nil, n.cfg.MaxFrame)
	if err != nil {
		return
	}
	from, err := decodeHello(hello)
	if err != nil || from == n.cfg.ID {
		return
	}
	for {
		// No buffer reuse: the mailbox decouples delivery from reading, so
		// each frame owns its slice.
		payload, err := ReadFrame(br, nil, n.cfg.MaxFrame)
		if err != nil {
			return
		}
		n.box.push(envelope{from: from, payload: payload})
	}
}

// sender maintains one peer's outbound stream: dial, hello, write frames,
// redial with backoff on any failure, until the node's context ends. Queued
// messages lost to a broken stream stay lost — the runtime is fire-and-forget
// and retransmission is the protocol's job.
func (n *Node) sender(p model.ID, q *peerQueue) {
	defer n.wg.Done()
	backoff := n.cfg.RedialBackoff
	for n.ctx.Err() == nil {
		conn, err := n.cfg.Dial(n.ctx, p)
		if err != nil || conn == nil {
			select {
			case <-n.ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 64*n.cfg.RedialBackoff {
				backoff *= 2
			}
			continue
		}
		backoff = n.cfg.RedialBackoff
		n.writeLoop(conn, q)
		conn.Close()
	}
}

// writeLoop pumps the queue onto one healthy connection, batching frames
// that are already queued behind a single flush. Returns on any write error
// or context end.
func (n *Node) writeLoop(conn net.Conn, q *peerQueue) {
	stop := context.AfterFunc(n.ctx, func() { conn.Close() })
	defer stop()
	bw := bufio.NewWriter(conn)
	if err := WriteFrame(bw, encodeHello(n.cfg.ID)); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	for {
		select {
		case <-n.ctx.Done():
			return
		case payload := <-q.ch:
			if err := WriteFrame(bw, payload); err != nil {
				return
			}
		drain:
			for {
				select {
				case more := <-q.ch:
					if err := WriteFrame(bw, more); err != nil {
						return
					}
				default:
					break drain
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// loop is the node's event loop: it serializes Init/Receive/Timer, honoring
// the rt single-threaded reactor contract.
func (n *Node) loop() {
	defer n.wg.Done()
	ctx := &nodeCtx{n: n}
	n.reactor.Init(ctx)
	for {
		e, ok := n.box.pop()
		if !ok {
			return
		}
		if e.isTimer {
			n.reactor.Timer(ctx, e.tag)
		} else {
			n.reactor.Receive(ctx, e.from, e.payload)
		}
	}
}

func (n *Node) trackTimer(ref *timerRef) {
	n.timerMu.Lock()
	defer n.timerMu.Unlock()
	if n.dead {
		ref.t.Stop()
		return
	}
	n.timers = append(n.timers, ref)
	// Compact occasionally so long runs do not accumulate fired timers.
	if len(n.timers) > 1024 {
		live := n.timers[:0]
		for _, r := range n.timers {
			if !r.done.Load() {
				live = append(live, r)
			}
		}
		n.timers = live
	}
}

// nodeCtx implements rt.Context over the node's real clock, RNG and streams.
type nodeCtx struct {
	n *Node
}

func (c *nodeCtx) ID() model.ID { return c.n.cfg.ID }

func (c *nodeCtx) Now() rt.Time { return rt.Time(time.Since(c.n.start)) }

func (c *nodeCtx) Rand() *rand.Rand { return c.n.rng }

func (c *nodeCtx) Send(to model.ID, payload []byte) {
	n := c.n
	q, ok := n.peers[to]
	if !ok || to == n.cfg.ID {
		return
	}
	n.messages.Add(1)
	n.bytes.Add(int64(len(payload)))
	// The rt contract: the caller's slice is borrowed, copy before returning.
	body := make([]byte, len(payload))
	copy(body, payload)
	if n.cfg.Delay != nil {
		if d := n.cfg.Delay(to, rt.Time(time.Since(n.start))); d > 0 {
			ref := &timerRef{}
			ref.t = time.AfterFunc(time.Duration(d), func() {
				ref.done.Store(true)
				q.offer(body)
			})
			n.trackTimer(ref)
			return
		}
	}
	q.offer(body)
}

func (c *nodeCtx) SetTimer(d rt.Time, tag uint64) {
	if d < 0 {
		d = 0
	}
	n := c.n
	ref := &timerRef{}
	ref.t = time.AfterFunc(time.Duration(d), func() {
		ref.done.Store(true)
		n.box.push(envelope{isTimer: true, tag: tag})
	})
	n.trackTimer(ref)
}
