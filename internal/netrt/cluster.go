package netrt

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
)

// errPeerNotReady is returned by the pipe dialer while the target node has
// not started yet; the sender's backoff loop retries.
var errPeerNotReady = errors.New("netrt: peer not started")

// ClusterConfig parameterizes an in-process cluster.
type ClusterConfig struct {
	// Transport selects the link type: "tcp" (localhost listeners, the
	// cupd-shaped path) or "pipe" (synchronous net.Pipe links, the unit-test
	// harness). Empty means "tcp".
	Transport string
	// Seed offsets every node's RNG seed; nodes use Seed + id + 1.
	Seed int64
	// Delay, when non-nil, is installed on every node as its outbound
	// latency hook (see Config.Delay), closed over the sending node's ID.
	Delay func(from, to model.ID, now rt.Time) rt.Time
	// MaxFrame and QueueLen forward to each node's Config.
	MaxFrame int
	QueueLen int
}

// Cluster is a fully-connected in-process network of Nodes — the "multi-cupd
// localhost cluster" harness: every node maintains real outbound streams to
// every other, over localhost TCP sockets or net.Pipe.
type Cluster struct {
	Nodes  map[model.ID]*Node
	ids    []model.ID
	cancel context.CancelFunc
}

// NewCluster builds, starts and wires one node per ID, with reactors from
// mk. The cluster shuts down when ctx is cancelled or Stop is called.
func NewCluster(ctx context.Context, ids []model.ID, mk func(id model.ID) rt.Reactor, cc ClusterConfig) (*Cluster, error) {
	ctx, cancel := context.WithCancel(ctx)
	c := &Cluster{Nodes: make(map[model.ID]*Node, len(ids)), ids: append([]model.ID(nil), ids...), cancel: cancel}

	var listeners map[model.ID]net.Listener
	var addrs map[model.ID]string
	usePipe := cc.Transport == "pipe"
	if !usePipe {
		listeners = make(map[model.ID]net.Listener, len(ids))
		addrs = make(map[model.ID]string, len(ids))
		for _, id := range ids {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				for _, l := range listeners {
					l.Close()
				}
				cancel()
				return nil, fmt.Errorf("netrt: listen for node %v: %w", id, err)
			}
			listeners[id] = ln
			addrs[id] = ln.Addr().String()
		}
	}

	for _, id := range ids {
		id := id
		cfg := Config{
			ID:       id,
			Peers:    ids,
			Seed:     cc.Seed + int64(id) + 1,
			MaxFrame: cc.MaxFrame,
			QueueLen: cc.QueueLen,
		}
		if cc.Delay != nil {
			delay := cc.Delay
			cfg.Delay = func(to model.ID, now rt.Time) rt.Time { return delay(id, to, now) }
		}
		if usePipe {
			cfg.Dial = func(dctx context.Context, peer model.ID) (net.Conn, error) {
				tgt, ok := c.Nodes[peer]
				if !ok || !tgt.Started() {
					return nil, errPeerNotReady
				}
				us, them := net.Pipe()
				tgt.ServeConn(them)
				return us, nil
			}
		} else {
			cfg.Dial = func(dctx context.Context, peer model.ID) (net.Conn, error) {
				addr, ok := addrs[peer]
				if !ok {
					return nil, fmt.Errorf("netrt: no address for peer %v", peer)
				}
				d := net.Dialer{Timeout: 2 * time.Second}
				return d.DialContext(dctx, "tcp", addr)
			}
		}
		c.Nodes[id] = NewNode(cfg, mk(id))
	}

	// Start every node before any stream comes up: a dialed node must have a
	// live event loop (pipe dials to an unstarted node are refused and
	// retried; TCP dials would connect to the listener backlog).
	for _, id := range ids {
		c.Nodes[id].Start(ctx)
	}
	if !usePipe {
		for _, id := range ids {
			c.Nodes[id].Serve(listeners[id])
		}
	}
	return c, nil
}

// Stop cancels the cluster context and waits for every node to shut down.
func (c *Cluster) Stop() {
	c.cancel()
	for _, n := range c.Nodes {
		n.Stop()
	}
}

// Messages totals accepted outbound sends across the cluster.
func (c *Cluster) Messages() int64 {
	var t int64
	for _, n := range c.Nodes {
		t += n.Messages()
	}
	return t
}

// Bytes totals accepted outbound payload bytes across the cluster.
func (c *Cluster) Bytes() int64 {
	var t int64
	for _, n := range c.Nodes {
		t += n.Bytes()
	}
	return t
}
