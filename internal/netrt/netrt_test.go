package netrt

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
)

type recvd struct {
	from    model.ID
	payload string
}

// pingReactor sends "ping" to target on Init (when set) and optionally
// answers "pong"; everything received lands on got.
type pingReactor struct {
	target model.ID
	reply  bool
	got    chan recvd
	timers chan uint64
	timer  rt.Time
}

func (p *pingReactor) Init(ctx rt.Context) {
	if p.target != 0 {
		ctx.Send(p.target, []byte("ping"))
	}
	if p.timer != 0 {
		ctx.SetTimer(p.timer, 42)
	}
}

func (p *pingReactor) Receive(ctx rt.Context, from model.ID, payload []byte) {
	select {
	case p.got <- recvd{from, string(payload)}:
	default:
	}
	if p.reply && string(payload) == "ping" {
		ctx.Send(from, []byte("pong"))
	}
}

func (p *pingReactor) Timer(ctx rt.Context, tag uint64) {
	if p.timers != nil {
		select {
		case p.timers <- tag:
		default:
		}
	}
}

func waitRecv(t *testing.T, ch chan recvd, want recvd) {
	t.Helper()
	select {
	case got := <-ch:
		if got != want {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %+v", want)
	}
}

// testCluster runs a two-node ping/pong exchange over the given transport.
func testCluster(t *testing.T, transport string) {
	t.Helper()
	r1 := &pingReactor{target: 2, got: make(chan recvd, 16)}
	r2 := &pingReactor{reply: true, got: make(chan recvd, 16)}
	reactors := map[model.ID]rt.Reactor{1: r1, 2: r2}
	c, err := NewCluster(context.Background(), []model.ID{1, 2},
		func(id model.ID) rt.Reactor { return reactors[id] },
		ClusterConfig{Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitRecv(t, r2.got, recvd{1, "ping"})
	waitRecv(t, r1.got, recvd{2, "pong"})
	if c.Messages() < 2 {
		t.Fatalf("Messages() = %d, want >= 2", c.Messages())
	}
	if c.Bytes() < 8 {
		t.Fatalf("Bytes() = %d, want >= 8", c.Bytes())
	}
}

func TestClusterPipePingPong(t *testing.T) { testCluster(t, "pipe") }
func TestClusterTCPPingPong(t *testing.T)  { testCluster(t, "tcp") }

func TestNodeTimerFires(t *testing.T) {
	r := &pingReactor{timers: make(chan uint64, 1), timer: rt.Millisecond}
	n := NewNode(Config{ID: 1, Dial: func(context.Context, model.ID) (net.Conn, error) {
		return nil, errPeerNotReady
	}}, r)
	n.Start(context.Background())
	defer n.Stop()
	select {
	case tag := <-r.timers:
		if tag != 42 {
			t.Fatalf("tag = %d, want 42", tag)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestClusterDelayHook(t *testing.T) {
	// A per-message delay in the past of the protocol still delivers; this
	// pins the AfterFunc path rather than measuring real latency.
	r1 := &pingReactor{target: 2, got: make(chan recvd, 16)}
	r2 := &pingReactor{reply: true, got: make(chan recvd, 16)}
	reactors := map[model.ID]rt.Reactor{1: r1, 2: r2}
	c, err := NewCluster(context.Background(), []model.ID{1, 2},
		func(id model.ID) rt.Reactor { return reactors[id] },
		ClusterConfig{
			Transport: "pipe",
			Delay:     func(from, to model.ID, now rt.Time) rt.Time { return 2 * rt.Millisecond },
		})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitRecv(t, r2.got, recvd{1, "ping"})
	waitRecv(t, r1.got, recvd{2, "pong"})
}

// TestAdversarialInboundStreams throws hostile byte streams at a serving
// node: oversized length prefixes, overflowing varints, truncated frames and
// mid-frame disconnects must each kill only their own connection — a
// well-behaved peer connecting afterwards still gets through.
func TestAdversarialInboundStreams(t *testing.T) {
	r := &pingReactor{got: make(chan recvd, 16)}
	n := NewNode(Config{ID: 1, Dial: func(context.Context, model.ID) (net.Conn, error) {
		return nil, errPeerNotReady
	}}, r)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.Start(context.Background())
	defer n.Stop()
	n.Serve(ln)
	addr := ln.Addr().String()

	send := func(raw []byte) {
		t.Helper()
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(raw)
		c.Close()
	}

	var hello bytes.Buffer
	WriteFrame(&hello, encodeHello(2))

	// Oversized length prefix instead of a hello.
	var over [binary.MaxVarintLen64]byte
	m := binary.PutUvarint(over[:], 1<<40)
	send(over[:m])
	// Varint that never terminates.
	send(bytes.Repeat([]byte{0x80}, 16))
	// Valid hello, then a frame that promises 1000 bytes and disconnects
	// mid-payload.
	var mid bytes.Buffer
	mid.Write(hello.Bytes())
	var hdr [binary.MaxVarintLen64]byte
	m = binary.PutUvarint(hdr[:], 1000)
	mid.Write(hdr[:m])
	mid.Write(bytes.Repeat([]byte{0xcc}, 17))
	send(mid.Bytes())
	// Truncated hello prefix.
	send([]byte{0x82})
	// Hello frame with trailing garbage inside the frame.
	var bad bytes.Buffer
	WriteFrame(&bad, append(encodeHello(2), 0xff))
	send(bad.Bytes())

	// A well-behaved connection still works.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bw := bufio.NewWriter(c)
	if err := WriteFrame(bw, encodeHello(2)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(bw, []byte("after the storm")); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	waitRecv(t, r.got, recvd{2, "after the storm"})
}

// TestSenderReconnects kills the accepted side of a live stream and checks
// the dialer re-establishes it and later messages flow.
func TestSenderReconnects(t *testing.T) {
	r2 := &pingReactor{got: make(chan recvd, 16)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	n2 := NewNode(Config{ID: 2, Dial: func(context.Context, model.ID) (net.Conn, error) {
		return nil, errPeerNotReady
	}}, r2)
	n2.Start(context.Background())
	defer n2.Stop()

	r1 := &pingReactor{got: make(chan recvd, 16)}
	n1 := NewNode(Config{
		ID:    1,
		Peers: []model.ID{2},
		Dial: func(dctx context.Context, peer model.ID) (net.Conn, error) {
			d := net.Dialer{Timeout: time.Second}
			return d.DialContext(dctx, "tcp", addr)
		},
		RedialBackoff: time.Millisecond,
	}, r1)
	n1.Start(context.Background())
	defer n1.Stop()

	// Slam the first accepted stream shut — whatever n1 had queued on it is
	// lost — then serve subsequent conns properly; n1 must redial.
	first, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	first.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			n2.ServeConn(c)
		}
	}()
	defer ln.Close()

	deadline := time.After(10 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	ctx := &nodeCtx{n: n1}
	for {
		select {
		case got := <-r2.got:
			if got.payload != "are you there" {
				t.Fatalf("unexpected payload %q", got.payload)
			}
			return
		case <-tick.C:
			// Retransmit until a post-reconnect stream carries one through.
			ctx.Send(2, []byte("are you there"))
		case <-deadline:
			t.Fatal("message never arrived after reconnect")
		}
	}
}
