package model

import (
	"fmt"
	"slices"
	"strings"
)

// ID identifies a process. IDs are unique, not necessarily consecutive, and
// Sybil-proof by assumption (Section II-A of the paper): a faulty process
// cannot obtain additional IDs.
type ID uint64

// NilID is the zero ID, never used by a real process.
const NilID ID = 0

// String implements fmt.Stringer.
func (id ID) String() string { return fmt.Sprintf("p%d", uint64(id)) }

// Value is a consensus proposal. Values are opaque bytes; consensus compares
// them only for equality (via Equal or digests).
type Value []byte

// Equal reports whether two values are byte-wise equal.
func (v Value) Equal(o Value) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v == nil {
		return "⊥"
	}
	return string(v)
}

// IDSet is a set of process identifiers. The zero value is an empty set ready
// to use for reads; use Add (or NewIDSet) before writing.
type IDSet map[ID]struct{}

// NewIDSet returns a set containing the given IDs.
func NewIDSet(ids ...ID) IDSet {
	s := make(IDSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts id and reports whether it was absent.
func (s IDSet) Add(id ID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// AddAll inserts every id in other and reports whether anything was added.
func (s IDSet) AddAll(other IDSet) bool {
	added := false
	for id := range other {
		if s.Add(id) {
			added = true
		}
	}
	return added
}

// Remove deletes id from the set.
func (s IDSet) Remove(id ID) { delete(s, id) }

// Has reports membership.
func (s IDSet) Has(id ID) bool {
	_, ok := s[id]
	return ok
}

// Len returns the cardinality.
func (s IDSet) Len() int { return len(s) }

// Clone returns an independent copy.
func (s IDSet) Clone() IDSet {
	c := make(IDSet, len(s))
	for id := range s {
		c[id] = struct{}{}
	}
	return c
}

// Sorted returns the members in ascending order. This is the only sanctioned
// way to iterate a set where ordering is observable. slices.Sort, not
// sort.Slice: Sorted is the single hottest allocation site of a sweep (every
// canonical encoding and search pass sorts), and the interface-based sorter
// allocates a closure and a reflect swapper per call.
func (s IDSet) Sorted() []ID {
	out := make([]ID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Union returns a new set with the members of both sets.
func (s IDSet) Union(other IDSet) IDSet {
	c := s.Clone()
	c.AddAll(other)
	return c
}

// Intersect returns a new set with the members common to both sets.
func (s IDSet) Intersect(other IDSet) IDSet {
	c := NewIDSet()
	for id := range s {
		if other.Has(id) {
			c.Add(id)
		}
	}
	return c
}

// Diff returns a new set with the members of s not in other.
func (s IDSet) Diff(other IDSet) IDSet {
	c := NewIDSet()
	for id := range s {
		if !other.Has(id) {
			c.Add(id)
		}
	}
	return c
}

// SubsetOf reports whether every member of s is in other.
func (s IDSet) SubsetOf(other IDSet) bool {
	for id := range s {
		if !other.Has(id) {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ other.
func (s IDSet) ProperSubsetOf(other IDSet) bool {
	return len(s) < len(other) && s.SubsetOf(other)
}

// Equal reports whether the two sets have the same members.
func (s IDSet) Equal(other IDSet) bool {
	return len(s) == len(other) && s.SubsetOf(other)
}

// String renders the set as {p1, p2, ...} in ascending order.
func (s IDSet) String() string {
	ids := s.Sorted()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Key returns a canonical string usable as a map key for memoization.
func (s IDSet) Key() string {
	ids := s.Sorted()
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", uint64(id))
	}
	return b.String()
}
