// Package model defines the basic vocabulary shared by every layer of the
// BFT-CUP / BFT-CUPFT stack: process identifiers, proposal values, and an
// ordered set of identifiers with deterministic iteration.
//
// Determinism matters: the discrete-event simulator must produce identical
// traces for identical seeds, so nothing in this package ever iterates over a
// Go map when order can be observed — IDSet.Sorted is the only sanctioned way
// to walk a set where ordering is visible.
package model
