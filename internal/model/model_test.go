package model

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIDSetBasics(t *testing.T) {
	s := NewIDSet(3, 1, 2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Has(1) || !s.Has(2) || !s.Has(3) || s.Has(4) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Add(1) {
		t.Fatal("Add of existing member reported true")
	}
	if !s.Add(4) {
		t.Fatal("Add of new member reported false")
	}
	s.Remove(2)
	if s.Has(2) {
		t.Fatal("Remove did not delete")
	}
	got := s.Sorted()
	want := []ID{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Sorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

func TestIDSetZeroValueReads(t *testing.T) {
	var s IDSet
	if s.Has(1) || s.Len() != 0 {
		t.Fatal("zero-value set should read as empty")
	}
	if got := s.Sorted(); len(got) != 0 {
		t.Fatalf("Sorted on empty = %v", got)
	}
}

func TestIDSetAlgebra(t *testing.T) {
	a := NewIDSet(1, 2, 3)
	b := NewIDSet(3, 4)
	if u := a.Union(b); !u.Equal(NewIDSet(1, 2, 3, 4)) {
		t.Fatalf("Union = %v", u)
	}
	if i := a.Intersect(b); !i.Equal(NewIDSet(3)) {
		t.Fatalf("Intersect = %v", i)
	}
	if d := a.Diff(b); !d.Equal(NewIDSet(1, 2)) {
		t.Fatalf("Diff = %v", d)
	}
	if !NewIDSet(1, 2).ProperSubsetOf(a) {
		t.Fatal("ProperSubsetOf false negative")
	}
	if a.ProperSubsetOf(a) {
		t.Fatal("a ⊂ a should be false")
	}
	if !a.SubsetOf(a) {
		t.Fatal("a ⊆ a should be true")
	}
}

func TestIDSetCloneIndependence(t *testing.T) {
	a := NewIDSet(1, 2)
	c := a.Clone()
	c.Add(3)
	if a.Has(3) {
		t.Fatal("Clone is not independent")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{nil, nil, true},
		{Value(""), nil, true},
		{Value("x"), Value("x"), true},
		{Value("x"), Value("y"), false},
		{Value("x"), Value("xx"), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	if Value(nil).String() != "⊥" {
		t.Fatal("nil value should render as ⊥")
	}
	if Value("v").String() != "v" {
		t.Fatal("value string mismatch")
	}
}

// Property: union is commutative and contains both operands; diff and
// intersect partition the left operand.
func TestIDSetProperties(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := NewIDSet(), NewIDSet()
		for _, x := range xs {
			a.Add(ID(x))
		}
		for _, y := range ys {
			b.Add(ID(y))
		}
		u1, u2 := a.Union(b), b.Union(a)
		if !u1.Equal(u2) || !a.SubsetOf(u1) || !b.SubsetOf(u1) {
			return false
		}
		inter, diff := a.Intersect(b), a.Diff(b)
		if inter.Len()+diff.Len() != a.Len() {
			return false
		}
		return inter.Union(diff).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sorted returns ascending, duplicate-free output matching Len.
func TestIDSetSortedProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		s := NewIDSet()
		for _, x := range xs {
			s.Add(ID(x))
		}
		got := s.Sorted()
		if len(got) != s.Len() {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIDSetKeyCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(10)
		ids := make([]ID, n)
		for i := range ids {
			ids[i] = ID(rng.Intn(100))
		}
		a := NewIDSet(ids...)
		// Insert in a different order.
		b := NewIDSet()
		for i := len(ids) - 1; i >= 0; i-- {
			b.Add(ids[i])
		}
		if a.Key() != b.Key() {
			t.Fatalf("Key not canonical: %q vs %q", a.Key(), b.Key())
		}
	}
	if NewIDSet(1, 2).Key() == NewIDSet(1, 3).Key() {
		t.Fatal("distinct sets share a key")
	}
}
