package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/bftcup/bftcup/internal/model"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Uvarint(300)
	w.Byte(7)
	w.Bool(true)
	w.Bool(false)
	w.ID(42)
	w.IDSet(model.NewIDSet(3, 1, 2))
	w.IDSlice([]model.ID{9, 8})
	w.BytesField([]byte("payload"))

	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Byte(); got != 7 {
		t.Fatalf("Byte = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if got := r.ID(); got != 42 {
		t.Fatalf("ID = %v", got)
	}
	if got := r.IDSet(); !got.Equal(model.NewIDSet(1, 2, 3)) {
		t.Fatalf("IDSet = %v", got)
	}
	if got := r.IDSlice(); len(got) != 2 || got[0] != 9 || got[1] != 8 {
		t.Fatalf("IDSlice = %v", got)
	}
	if got := r.BytesField(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("BytesField = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalIDSetEncoding(t *testing.T) {
	a := NewWriter()
	a.IDSet(model.NewIDSet(5, 1, 9))
	b := NewWriter()
	b.IDSet(model.NewIDSet(9, 5, 1))
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("IDSet encoding is not canonical")
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter()
	w.BytesField([]byte("hello world"))
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.BytesField()
		if r.Err() == nil && cut < len(full) {
			t.Fatalf("cut=%d: truncated read succeeded", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	_ = r.Byte()
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads keep returning zero values, not panicking.
	if r.Uvarint() != 0 || r.ID() != 0 || r.Bool() {
		t.Fatal("sticky reads should be zero-valued")
	}
	if got := r.IDSet(); got.Len() != 0 {
		t.Fatal("sticky IDSet should be empty")
	}
	if err := r.Done(); err == nil {
		t.Fatal("Done should report the sticky error")
	}
}

func TestTooLargeRejected(t *testing.T) {
	w := NewWriter()
	w.Uvarint(MaxChunk + 1)
	r := NewReader(w.Bytes())
	_ = r.BytesField()
	if r.Err() == nil {
		t.Fatal("oversized length prefix accepted")
	}
	r2 := NewReader(w.Bytes())
	_ = r2.IDSet()
	if r2.Err() == nil {
		t.Fatal("oversized IDSet accepted")
	}
	r3 := NewReader(w.Bytes())
	_ = r3.IDSlice()
	if r3.Err() == nil {
		t.Fatal("oversized IDSlice accepted")
	}
}

func TestTrailingBytes(t *testing.T) {
	w := NewWriter()
	w.Byte(1)
	w.Byte(2)
	r := NewReader(w.Bytes())
	_ = r.Byte()
	if err := r.Done(); err == nil {
		t.Fatal("Done should reject trailing bytes")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(x uint64, ids []uint16, blob []byte, flag bool) bool {
		set := model.NewIDSet()
		for _, id := range ids {
			set.Add(model.ID(id))
		}
		w := NewWriter()
		w.Uvarint(x)
		w.Bool(flag)
		w.IDSet(set)
		w.BytesField(blob)
		r := NewReader(w.Bytes())
		if r.Uvarint() != x || r.Bool() != flag {
			return false
		}
		if !r.IDSet().Equal(set) {
			return false
		}
		if !bytes.Equal(r.BytesField(), blob) {
			return false
		}
		return r.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
