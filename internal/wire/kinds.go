package wire

// Message kinds. The first byte of every payload identifies the protocol
// message, letting one reactor multiplex discovery, committee consensus and
// decided-value serving over a single authenticated channel, and letting the
// simulator's metrics break traffic down per kind.
const (
	KindGetPDs     byte = 1  // Algorithm 1: ⟨GETPDS⟩
	KindSetPDs     byte = 2  // Algorithm 1: ⟨SETPDS, S_PD⟩
	KindPrePrepare byte = 3  // PBFT pre-prepare
	KindPrepare    byte = 4  // PBFT prepare
	KindCommit     byte = 5  // PBFT commit
	KindViewChange byte = 6  // PBFT view change
	KindNewView    byte = 7  // PBFT new view
	KindDecideNote byte = 8  // PBFT decision notification (commit certificate)
	KindGetDecided byte = 9  // Algorithm 3: ⟨GETDECIDEDVAL⟩
	KindDecided    byte = 10 // Algorithm 3: ⟨DECIDEDVAL, val⟩
	KindRRB        byte = 11 // reachable reliable broadcast envelope (baseline)
)

// KindName returns a human-readable name for metrics tables.
func KindName(k byte) string {
	switch k {
	case KindGetPDs:
		return "GETPDS"
	case KindSetPDs:
		return "SETPDS"
	case KindPrePrepare:
		return "PRE-PREPARE"
	case KindPrepare:
		return "PREPARE"
	case KindCommit:
		return "COMMIT"
	case KindViewChange:
		return "VIEW-CHANGE"
	case KindNewView:
		return "NEW-VIEW"
	case KindDecideNote:
		return "DECIDE-NOTE"
	case KindGetDecided:
		return "GETDECIDEDVAL"
	case KindDecided:
		return "DECIDEDVAL"
	case KindRRB:
		return "RRB"
	default:
		return "UNKNOWN"
	}
}
