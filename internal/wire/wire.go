package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/bftcup/bftcup/internal/model"
)

// ErrTruncated is returned when a reader runs out of bytes.
var ErrTruncated = errors.New("wire: truncated input")

// ErrTooLarge is returned when a length prefix exceeds sane bounds.
var ErrTooLarge = errors.New("wire: length prefix too large")

// MaxChunk bounds any single length-prefixed field (defense against
// adversarial length prefixes from Byzantine processes).
const MaxChunk = 1 << 20

// Writer accumulates a deterministic encoding.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded bytes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded length.
func (w *Writer) Len() int { return len(w.buf) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(x uint64) {
	w.buf = binary.AppendUvarint(w.buf, x)
}

// Byte appends a raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// ID appends a process ID.
func (w *Writer) ID(id model.ID) { w.Uvarint(uint64(id)) }

// IDSet appends a set as a sorted, length-prefixed ID list (canonical).
func (w *Writer) IDSet(s model.IDSet) {
	ids := s.Sorted()
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.ID(id)
	}
}

// IDSlice appends a list of IDs in the given order.
func (w *Writer) IDSlice(ids []model.ID) {
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.ID(id)
	}
}

// BytesField appends a length-prefixed byte string.
func (w *Writer) BytesField(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader decodes a deterministic encoding. Errors are sticky: after the
// first failure every subsequent read returns zero values and Err() reports
// the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns an error unless the buffer was fully and cleanly consumed.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return x
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// ID reads a process ID.
func (r *Reader) ID() model.ID { return model.ID(r.Uvarint()) }

// IDSet reads a set written by Writer.IDSet.
func (r *Reader) IDSet() model.IDSet {
	n := r.Uvarint()
	if r.err != nil {
		return model.NewIDSet()
	}
	if n > MaxChunk {
		r.fail(ErrTooLarge)
		return model.NewIDSet()
	}
	s := model.NewIDSet()
	for i := uint64(0); i < n; i++ {
		s.Add(r.ID())
		if r.err != nil {
			return model.NewIDSet()
		}
	}
	return s
}

// SkipIDSet advances past a set written by Writer.IDSet without
// materializing it — the receive hot path uses it to step over records it
// already holds instead of allocating a set per duplicate.
func (r *Reader) SkipIDSet() {
	n := r.Uvarint()
	if r.err != nil {
		return
	}
	if n > MaxChunk {
		r.fail(ErrTooLarge)
		return
	}
	for i := uint64(0); i < n; i++ {
		r.Uvarint()
		if r.err != nil {
			return
		}
	}
}

// SkipBytesField advances past a length-prefixed byte string without copying
// it.
func (r *Reader) SkipBytesField() {
	n := r.Uvarint()
	if r.err != nil {
		return
	}
	if n > MaxChunk {
		r.fail(ErrTooLarge)
		return
	}
	if r.Remaining() < int(n) {
		r.fail(ErrTruncated)
		return
	}
	r.off += int(n)
}

// IDSlice reads a list written by Writer.IDSlice.
func (r *Reader) IDSlice() []model.ID {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxChunk {
		r.fail(ErrTooLarge)
		return nil
	}
	out := make([]model.ID, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.ID())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// BytesField reads a length-prefixed byte string.
func (r *Reader) BytesField() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxChunk {
		r.fail(ErrTooLarge)
		return nil
	}
	if r.Remaining() < int(n) {
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += int(n)
	return out
}
