// Package wire implements a small deterministic binary codec used for every
// message on the network and for the canonical byte strings that get signed.
// Determinism matters twice: signatures must be computed over canonical
// bytes, and the simulator's metrics (bytes on the wire) must be
// reproducible.
//
// The first byte of every payload is a Kind constant, which lets one reactor
// multiplex discovery, committee consensus and decided-value serving over a
// single authenticated channel — and lets the simulator's per-kind metrics
// attribute traffic. Readers carry sticky errors and hard length bounds
// (MaxChunk), so adversarial payloads from Byzantine processes fail closed
// instead of allocating unboundedly; the fuzz corpus exercises exactly this.
package wire
