package wire

import (
	"bytes"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// FuzzDecode drives every Reader method over arbitrary input: whatever the
// bytes, decoding must never panic, errors must be sticky, and the offset
// must never run past the buffer.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid encodings of each field type, truncations,
	// adversarial length prefixes, empty input.
	f.Add([]byte{})
	f.Add([]byte{0x00})
	w := NewWriter()
	w.Uvarint(300)
	w.Byte(0x7f)
	w.Bool(true)
	w.ID(42)
	w.IDSet(model.NewIDSet(1, 5, 9))
	w.IDSlice([]model.ID{3, 1, 2})
	w.BytesField([]byte("payload"))
	f.Add(w.Bytes())
	f.Add(w.Bytes()[:3])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge uvarint
	f.Add([]byte{0x81, 0x80, 0x80, 0x80, 0x01, 0x01, 0x02})                   // length prefix > MaxChunk

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		// Use the first byte to pick a decode schedule, so the fuzzer
		// explores different method interleavings.
		var sel byte
		if len(data) > 0 {
			sel = data[0]
		}
		for i := 0; i < 8; i++ {
			switch (int(sel) + i) % 6 {
			case 0:
				r.Uvarint()
			case 1:
				r.Byte()
			case 2:
				r.Bool()
			case 3:
				r.ID()
			case 4:
				if s := r.IDSet(); r.Err() != nil && s.Len() != 0 {
					t.Fatalf("IDSet returned %v after error %v", s, r.Err())
				}
			case 5:
				if b := r.BytesField(); r.Err() != nil && b != nil {
					t.Fatalf("BytesField returned %d bytes after error %v", len(b), r.Err())
				}
			}
			if r.Remaining() < 0 {
				t.Fatalf("offset ran past the buffer: remaining %d", r.Remaining())
			}
		}
		r.IDSlice()
		firstErr := r.Err()
		r.Uvarint()
		if firstErr != nil && r.Err() != firstErr {
			t.Fatalf("error not sticky: %v then %v", firstErr, r.Err())
		}
		_ = r.Done()
	})
}

// FuzzRoundTrip encodes fuzzer-chosen values and asserts decoding returns
// them exactly, with the buffer fully consumed.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), true, uint64(1), []byte(nil), []byte("v"))
	f.Add(uint64(1<<63), false, uint64(1<<20), []byte{9, 9, 1, 0, 255}, bytes.Repeat([]byte{0xab}, 100))

	f.Fuzz(func(t *testing.T, x uint64, b bool, id uint64, setRaw []byte, payload []byte) {
		set := model.NewIDSet()
		for _, v := range setRaw {
			set.Add(model.ID(v))
		}
		slice := make([]model.ID, 0, len(setRaw))
		for _, v := range setRaw {
			slice = append(slice, model.ID(v))
		}

		w := NewWriter()
		w.Uvarint(x)
		w.Bool(b)
		w.ID(model.ID(id))
		w.IDSet(set)
		w.IDSlice(slice)
		w.BytesField(payload)

		r := NewReader(w.Bytes())
		if got := r.Uvarint(); got != x {
			t.Fatalf("Uvarint: %d != %d", got, x)
		}
		if got := r.Bool(); got != b {
			t.Fatalf("Bool: %t != %t", got, b)
		}
		if got := r.ID(); got != model.ID(id) {
			t.Fatalf("ID: %d != %d", got, id)
		}
		if got := r.IDSet(); !got.Equal(set) {
			t.Fatalf("IDSet: %v != %v", got, set)
		}
		gotSlice := r.IDSlice()
		if len(gotSlice) != len(slice) {
			t.Fatalf("IDSlice length: %d != %d", len(gotSlice), len(slice))
		}
		for i := range slice {
			if gotSlice[i] != slice[i] {
				t.Fatalf("IDSlice[%d]: %d != %d", i, gotSlice[i], slice[i])
			}
		}
		if got := r.BytesField(); !bytes.Equal(got, payload) {
			t.Fatalf("BytesField: %x != %x", got, payload)
		}
		if err := r.Done(); err != nil {
			t.Fatalf("Done: %v", err)
		}
	})
}
