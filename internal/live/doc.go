// Package live drives the same protocol reactors as package sim, but with
// real goroutines, channels and wall-clock timers: one goroutine per process,
// an unbounded mailbox per process (so no send can deadlock the system), and
// an in-memory network with optional artificial latency. Examples use it to
// run the full BFT-CUP / BFT-CUPFT stack as a genuinely concurrent system;
// its tests run under the race detector.
//
// Unlike the simulator, the live runtime never recycles payload buffers —
// every delivery owns its slice — so a reactor correct under sim's stricter
// zero-copy contract is automatically correct here.
package live
