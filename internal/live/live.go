package live

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
)

// envelope is one mailbox item: either a message or a timer firing.
type envelope struct {
	isTimer bool
	tag     uint64
	from    model.ID
	payload []byte
}

// mailbox is an unbounded MPSC queue. Unboundedness matters: bounded inboxes
// deadlock when two nodes block sending to each other.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(e envelope) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, e)
	m.cond.Signal()
}

func (m *mailbox) pop() (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return envelope{}, false
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// Network is an in-memory live network of reactors.
type Network struct {
	mu      sync.Mutex
	nodes   map[model.ID]*node
	latency func(from, to model.ID) time.Duration
	started bool
	stopped bool
	start   time.Time
	wg      sync.WaitGroup

	messages atomic.Int64
	bytes    atomic.Int64
}

type node struct {
	id      model.ID
	reactor rt.Reactor
	box     *mailbox
	net     *Network
	rng     *rand.Rand

	timerMu sync.Mutex
	timers  []*timerRef
	dead    bool
}

// timerRef pairs a timer with a fired flag so compaction can drop completed
// timers without racing their callbacks.
type timerRef struct {
	t    *time.Timer
	done atomic.Bool
}

// NewNetwork creates a live network. latency may be nil (immediate delivery)
// or return an artificial per-link delay.
func NewNetwork(latency func(from, to model.ID) time.Duration) *Network {
	return &Network{nodes: make(map[model.ID]*node), latency: latency}
}

// AddNode registers a reactor. Must be called before Start.
func (n *Network) AddNode(id model.ID, r rt.Reactor) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("live: AddNode(%v) after Start", id)
	}
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("live: duplicate node %v", id)
	}
	n.nodes[id] = &node{
		id:      id,
		reactor: r,
		box:     newMailbox(),
		net:     n,
		rng:     rand.New(rand.NewSource(int64(id))),
	}
	return nil
}

// Start launches one goroutine per node and calls Init on each reactor from
// its own goroutine.
func (n *Network) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.start = time.Now()
	nodes := make([]*node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.mu.Unlock()
	for _, nd := range nodes {
		nd := nd
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			nd.loop()
		}()
	}
}

// Stop shuts every node down and waits for all goroutines to exit. Safe to
// call more than once.
func (n *Network) Stop() {
	n.mu.Lock()
	if !n.started || n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	nodes := make([]*node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.mu.Unlock()
	for _, nd := range nodes {
		nd.shutdown()
	}
	n.wg.Wait()
}

// Messages returns the number of messages sent so far.
func (n *Network) Messages() int64 { return n.messages.Load() }

// Bytes returns the number of payload bytes sent so far.
func (n *Network) Bytes() int64 { return n.bytes.Load() }

func (n *Network) deliver(from, to model.ID, payload []byte) {
	n.mu.Lock()
	tgt, ok := n.nodes[to]
	stopped := n.stopped
	n.mu.Unlock()
	if !ok || stopped {
		return
	}
	n.messages.Add(1)
	n.bytes.Add(int64(len(payload)))
	body := make([]byte, len(payload))
	copy(body, payload)
	e := envelope{from: from, payload: body}
	if n.latency != nil {
		if d := n.latency(from, to); d > 0 {
			ref := &timerRef{}
			ref.t = time.AfterFunc(d, func() {
				ref.done.Store(true)
				tgt.box.push(e)
			})
			tgt.trackTimer(ref)
			return
		}
	}
	tgt.box.push(e)
}

func (nd *node) loop() {
	ctx := &liveCtx{node: nd}
	nd.reactor.Init(ctx)
	for {
		e, ok := nd.box.pop()
		if !ok {
			return
		}
		if e.isTimer {
			nd.reactor.Timer(ctx, e.tag)
		} else {
			nd.reactor.Receive(ctx, e.from, e.payload)
		}
	}
}

func (nd *node) shutdown() {
	nd.timerMu.Lock()
	nd.dead = true
	for _, r := range nd.timers {
		r.t.Stop()
	}
	nd.timers = nil
	nd.timerMu.Unlock()
	nd.box.close()
}

func (nd *node) trackTimer(ref *timerRef) {
	nd.timerMu.Lock()
	defer nd.timerMu.Unlock()
	if nd.dead {
		ref.t.Stop()
		return
	}
	nd.timers = append(nd.timers, ref)
	// Compact occasionally so long runs do not accumulate fired timers.
	if len(nd.timers) > 1024 {
		live := nd.timers[:0]
		for _, r := range nd.timers {
			if !r.done.Load() {
				live = append(live, r)
			}
		}
		nd.timers = live
	}
}

// liveCtx implements rt.Context on top of the live network.
type liveCtx struct {
	node *node
}

func (c *liveCtx) ID() model.ID { return c.node.id }

func (c *liveCtx) Now() rt.Time {
	return rt.Time(time.Since(c.node.net.start))
}

func (c *liveCtx) Rand() *rand.Rand { return c.node.rng }

func (c *liveCtx) Send(to model.ID, payload []byte) {
	if to == c.node.id {
		return
	}
	c.node.net.deliver(c.node.id, to, payload)
}

func (c *liveCtx) SetTimer(d rt.Time, tag uint64) {
	nd := c.node
	ref := &timerRef{}
	ref.t = time.AfterFunc(time.Duration(d), func() {
		ref.done.Store(true)
		nd.box.push(envelope{isTimer: true, tag: tag})
	})
	nd.trackTimer(ref)
}
