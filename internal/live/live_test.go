package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// The full BFT-CUP stack running on real goroutines: Fig 1b with a silent
// Byzantine member (simply not added to the network). Run with -race.
func TestLiveBFTCUPFig1b(t *testing.T) {
	fig := graph.Fig1b()
	ids := fig.G.Nodes()
	signers, reg, err := cryptox.GenerateKeys(1, ids)
	if err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(nil)
	defer nw.Stop()

	var mu sync.Mutex
	decisions := make(map[model.ID]model.Value)
	done := make(chan struct{}, len(ids))

	correct := fig.G.NodeSet().Diff(fig.Byz)
	for _, id := range correct.Sorted() {
		id := id
		cfg := core.Config{
			Mode:     core.ModeKnownF,
			F:        fig.F,
			PD:       fig.G.OutSet(id).Clone(),
			Proposal: model.Value(fmt.Sprintf("v%d", id)),
			// Tight periods keep the wall-clock test fast.
			PBFTTimeout: sim.Time(50 * time.Millisecond),
			PollPeriod:  sim.Time(10 * time.Millisecond),
		}
		cfg.Discovery.Period = sim.Time(5 * time.Millisecond)
		n := core.NewNode(signers[id], reg, cfg, func(v model.Value) {
			mu.Lock()
			decisions[id] = v
			mu.Unlock()
			done <- struct{}{}
		})
		if err := nw.AddNode(id, n); err != nil {
			t.Fatal(err)
		}
	}
	nw.Start()

	deadline := time.After(20 * time.Second)
	for i := 0; i < correct.Len(); i++ {
		select {
		case <-done:
		case <-deadline:
			mu.Lock()
			defer mu.Unlock()
			t.Fatalf("timeout: %d/%d decided: %v", len(decisions), correct.Len(), decisions)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	var val model.Value
	first := true
	for id, v := range decisions {
		if first {
			val, first = v, false
		} else if !val.Equal(v) {
			t.Fatalf("agreement violated live: %v decided %q, others %q", id, v, val)
		}
	}
	if nw.Messages() == 0 || nw.Bytes() == 0 {
		t.Fatal("metrics not recorded")
	}
}

// Artificial latency paths are exercised (and race-checked) too.
func TestLiveWithLatency(t *testing.T) {
	fig := graph.Fig4a()
	ids := fig.G.Nodes()
	signers, reg, err := cryptox.GenerateKeys(2, ids)
	if err != nil {
		t.Fatal(err)
	}
	latency := func(from, to model.ID) time.Duration { return time.Millisecond }
	nw := NewNetwork(latency)
	defer nw.Stop()

	var mu sync.Mutex
	decisions := make(map[model.ID]model.Value)
	done := make(chan struct{}, len(ids))
	correct := fig.G.NodeSet().Diff(fig.Byz)
	for _, id := range correct.Sorted() {
		id := id
		cfg := core.Config{
			Mode:        core.ModeUnknownF,
			PD:          fig.G.OutSet(id).Clone(),
			Proposal:    model.Value(fmt.Sprintf("v%d", id)),
			PBFTTimeout: sim.Time(100 * time.Millisecond),
			PollPeriod:  sim.Time(10 * time.Millisecond),
		}
		cfg.Discovery.Period = sim.Time(5 * time.Millisecond)
		n := core.NewNode(signers[id], reg, cfg, func(v model.Value) {
			mu.Lock()
			decisions[id] = v
			mu.Unlock()
			done <- struct{}{}
		})
		if err := nw.AddNode(id, n); err != nil {
			t.Fatal(err)
		}
	}
	nw.Start()
	deadline := time.After(20 * time.Second)
	for i := 0; i < correct.Len(); i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("timeout with latency: %d/%d decided", len(decisions), correct.Len())
		}
	}
}

func TestAddNodeValidation(t *testing.T) {
	nw := NewNetwork(nil)
	defer nw.Stop()
	if err := nw.AddNode(1, noopReactor{}); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddNode(1, noopReactor{}); err == nil {
		t.Fatal("duplicate accepted")
	}
	nw.Start()
	if err := nw.AddNode(2, noopReactor{}); err == nil {
		t.Fatal("AddNode after Start accepted")
	}
}

func TestStopIsIdempotentAndJoins(t *testing.T) {
	nw := NewNetwork(nil)
	_ = nw.AddNode(1, pingReactor{peer: 2})
	_ = nw.AddNode(2, pingReactor{peer: 1})
	nw.Start()
	time.Sleep(20 * time.Millisecond)
	nw.Stop()
	nw.Stop()
	// After Stop, sends are dropped without panic.
	nw.deliver(1, 2, []byte("late"))
}

type noopReactor struct{}

func (noopReactor) Init(sim.Context)                      {}
func (noopReactor) Receive(sim.Context, model.ID, []byte) {}
func (noopReactor) Timer(sim.Context, uint64)             {}

// pingReactor generates continuous traffic and timers to stress Stop.
type pingReactor struct{ peer model.ID }

func (p pingReactor) Init(ctx sim.Context) {
	ctx.Send(p.peer, []byte("ping"))
	ctx.SetTimer(sim.Time(time.Millisecond), 1)
}
func (p pingReactor) Receive(ctx sim.Context, from model.ID, _ []byte) {
	ctx.Send(from, []byte("ping"))
}
func (p pingReactor) Timer(ctx sim.Context, tag uint64) {
	ctx.Send(p.peer, []byte("tick"))
	ctx.SetTimer(sim.Time(time.Millisecond), tag)
}

func TestMailbox(t *testing.T) {
	m := newMailbox()
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.push(envelope{tag: uint64(i)})
		}(i)
	}
	got := 0
	donePop := make(chan struct{})
	go func() {
		defer close(donePop)
		for got < n {
			if _, ok := m.pop(); !ok {
				return
			}
			got++
		}
	}()
	wg.Wait()
	select {
	case <-donePop:
	case <-time.After(5 * time.Second):
		t.Fatalf("mailbox stalled: got %d of %d", got, n)
	}
	m.close()
	if _, ok := m.pop(); ok {
		t.Fatal("pop after close on empty queue should report closed")
	}
	m.push(envelope{}) // push after close is a no-op
}
