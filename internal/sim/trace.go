package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"github.com/bftcup/bftcup/internal/model"
)

// Trace is an optional streaming recorder of every event the engine
// delivers. It folds each event into a running SHA-256, so two runs produced
// identical traces iff their digests match — the determinism regression
// tests assert exactly this across seeds and network models without holding
// the full event log in memory.
type Trace struct {
	h      hash.Hash
	events int64
	buf    []byte
}

// NewTrace returns an empty trace recorder.
func NewTrace() *Trace { return &Trace{h: sha256.New()} }

// Events returns how many events have been recorded.
func (t *Trace) Events() int64 { return t.events }

// Digest returns the hex SHA-256 over the canonical encoding of every event
// recorded so far.
func (t *Trace) Digest() string {
	return hex.EncodeToString(t.h.Sum(nil))
}

// record folds one delivered event into the digest. The encoding is
// canonical: fixed-width fields, payload length-prefixed.
func (t *Trace) record(ev *event) {
	t.events++
	b := t.buf[:0]
	b = binary.BigEndian.AppendUint64(b, uint64(ev.at))
	b = append(b, byte(ev.kind))
	b = binary.BigEndian.AppendUint64(b, uint64(ev.to))
	switch ev.kind {
	case evMessage:
		b = binary.BigEndian.AppendUint64(b, uint64(ev.from))
		b = binary.BigEndian.AppendUint64(b, uint64(len(ev.body.data)))
		b = append(b, ev.body.data...)
	case evTimer:
		b = binary.BigEndian.AppendUint64(b, ev.tag)
	case evCrash, evRestart:
		// (at, kind, to) fully identify a churn control point.
	}
	t.buf = b
	t.h.Write(b)
}

// SetTrace attaches a trace recorder; every subsequently delivered event is
// folded into it. Nil detaches.
func (e *Engine) SetTrace(t *Trace) { e.trace = t }

// RecordDecision lets higher layers (the scenario runner) fold protocol-level
// outcomes — who decided what, when — into the same digest, making the trace
// a full decision transcript as well as an event log.
func (t *Trace) RecordDecision(id model.ID, at Time, value []byte) {
	t.events++
	b := t.buf[:0]
	b = append(b, 0xD0) // decision marker, distinct from eventKind bytes
	b = binary.BigEndian.AppendUint64(b, uint64(id))
	b = binary.BigEndian.AppendUint64(b, uint64(at))
	b = binary.BigEndian.AppendUint64(b, uint64(len(value)))
	b = append(b, value...)
	t.buf = b
	t.h.Write(b)
}
