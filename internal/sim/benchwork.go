package sim

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/model"
)

// Workload is a synthetic, engine-dominated traffic pattern used by the
// hot-path benchmarks (BenchmarkEngine) and by `cmd/experiments -bench-json`.
// Reactors do no protocol work — every cycle is engine overhead (heap,
// delivery, RNG, metrics) — so events/sec measured over a Workload tracks the
// simulator core, not the protocols running on it.
type Workload struct {
	// Procs is the process count (ring size). Default 16.
	Procs int
	// Tokens is the number of messages circulating the ring concurrently.
	// Default Procs.
	Tokens int
	// Fanout is how many copies each delivery forwards. 1 keeps the event
	// volume constant (unicast ring); >1 exercises the broadcast/intern path
	// with geometric damping (forwarding stops at the horizon). Default 1.
	Fanout int
	// PayloadBytes sizes each message body. Default 64.
	PayloadBytes int
	// Horizon bounds the run in virtual time. Default 10 virtual seconds.
	Horizon Time
	// Seed feeds the engine RNG. Default 1.
	Seed int64
}

func (w Workload) withDefaults() Workload {
	if w.Procs <= 0 {
		w.Procs = 16
	}
	if w.Tokens <= 0 {
		w.Tokens = w.Procs
	}
	if w.Fanout <= 0 {
		w.Fanout = 1
	}
	if w.PayloadBytes <= 0 {
		w.PayloadBytes = 64
	}
	if w.Horizon <= 0 {
		w.Horizon = 10 * Second
	}
	if w.Seed == 0 {
		w.Seed = 1
	}
	return w
}

// workloadReactor forwards every received payload to its Fanout successors on
// the ring, re-sending the same payload slice (the broadcast pattern the
// engine's payload interning targets). It also arms one periodic timer to
// keep timer events in the mix.
type workloadReactor struct {
	peers   []model.ID
	next    int
	fanout  int
	tokens  int // messages this reactor originates at Init
	payload []byte
}

const workloadTimerPeriod = 100 * Millisecond

func (r *workloadReactor) forward(ctx Context) {
	for i := 0; i < r.fanout; i++ {
		ctx.Send(r.peers[r.next%len(r.peers)], r.payload)
		r.next++
	}
}

func (r *workloadReactor) Init(ctx Context) {
	for i := 0; i < r.tokens; i++ {
		r.forward(ctx)
	}
	ctx.SetTimer(workloadTimerPeriod, 1)
}

func (r *workloadReactor) Receive(ctx Context, _ model.ID, _ []byte) {
	r.forward(ctx)
}

func (r *workloadReactor) Timer(ctx Context, tag uint64) {
	ctx.SetTimer(workloadTimerPeriod, tag)
}

// RunWorkload executes the workload on a fresh engine and returns the number
// of messages sent (≈ events delivered; the deterministic measure the
// benchmarks divide by wall-clock time).
func RunWorkload(w Workload) (int64, error) {
	w = w.withDefaults()
	engine := NewEngine(Synchronous{Delta: 5 * Millisecond}, w.Seed)
	peers := make([]model.ID, w.Procs)
	for i := range peers {
		peers[i] = model.ID(i + 1)
	}
	payload := make([]byte, w.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	perProc := w.Tokens / w.Procs
	extra := w.Tokens % w.Procs
	for i, id := range peers {
		tokens := perProc
		if i < extra {
			tokens++
		}
		r := &workloadReactor{
			peers:   []model.ID{peers[(i+1)%w.Procs], peers[(i+2)%w.Procs], peers[(i+3)%w.Procs]},
			fanout:  w.Fanout,
			tokens:  tokens,
			payload: payload,
		}
		if err := engine.AddProcess(id, r); err != nil {
			return 0, fmt.Errorf("sim workload: %w", err)
		}
	}
	engine.Run(w.Horizon)
	return engine.Metrics().Messages, nil
}
