package sim

import (
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// fixedNet delivers every message after exactly d — the timing-precise base
// model the crash/restart semantics tests need.
type fixedNet struct{ d Time }

func (n fixedNet) Delay(_, _ model.ID, _ Time, _ *rand.Rand) Time { return n.d }

// scriptSender sends a scripted sequence of messages at fixed virtual times.
type scriptSend struct {
	at      Time
	to      model.ID
	payload string
}

type scriptSender struct{ sends []scriptSend }

func (s *scriptSender) Init(ctx Context) {
	for i, snd := range s.sends {
		ctx.SetTimer(snd.at, uint64(i))
	}
}
func (s *scriptSender) Receive(Context, model.ID, []byte) {}
func (s *scriptSender) Timer(ctx Context, tag uint64) {
	snd := s.sends[tag]
	ctx.Send(snd.to, []byte(snd.payload))
}

// recvRec is one observed delivery.
type recvRec struct {
	at      Time
	from    model.ID
	payload string
}

// recorder logs every delivery (copying the payload per the zero-copy
// contract) and counts Init calls.
type recorder struct {
	got   []recvRec
	inits int
}

func (r *recorder) Init(Context) { r.inits++ }
func (r *recorder) Receive(ctx Context, from model.ID, payload []byte) {
	r.got = append(r.got, recvRec{ctx.Now(), from, string(payload)})
}
func (r *recorder) Timer(Context, uint64) {}

// resumableRecorder is a recorder with persisted-restart support.
type resumableRecorder struct {
	recorder
	resumed int
}

func (r *resumableRecorder) Restart(Context) { r.resumed++ }

func faultyRingDigest(t *testing.T, net NetworkModel, seed int64) (string, int64) {
	t.Helper()
	engine := NewEngine(net, seed)
	return runRingOn(t, engine)
}

// TestFaultyNetworkZeroFaultTraceNeutral pins the wrapping contract: a
// FaultyNetwork with every fault off draws the same RNG sequence as its bare
// base model and produces a byte-identical trace.
func TestFaultyNetworkZeroFaultTraceNeutral(t *testing.T) {
	base := Synchronous{Delta: 5 * Millisecond}
	bare, msgs := faultyRingDigest(t, base, 42)
	if msgs == 0 {
		t.Fatal("reference run sent no messages")
	}
	wrapped, wmsgs := faultyRingDigest(t, FaultyNetwork{Base: base}, 42)
	if wrapped != bare || wmsgs != msgs {
		t.Fatalf("zero-fault wrapper diverged: %s/%d vs %s/%d", wrapped[:16], wmsgs, bare[:16], msgs)
	}
}

// TestFaultyNetworkDeterministic pins the determinism contract under active
// injection: identical seed and fault parameters reproduce identical traces
// (fresh and reset engines alike); a different seed diverges.
func TestFaultyNetworkDeterministic(t *testing.T) {
	net := FaultyNetwork{
		Base:    Synchronous{Delta: 5 * Millisecond},
		Loss:    0.2,
		Dup:     0.15,
		Reorder: 3 * Millisecond,
		Partition: PartitionSchedule{{
			From: 10 * Millisecond, Until: 30 * Millisecond,
			Groups: []model.IDSet{model.NewIDSet(1, 2, 3, 4), model.NewIDSet(5, 6, 7, 8)},
		}},
	}
	want, msgs := faultyRingDigest(t, net, 42)
	if msgs == 0 {
		t.Fatal("faulty run sent no messages")
	}
	if again, _ := faultyRingDigest(t, net, 42); again != want {
		t.Fatalf("same seed diverged under injection: %s vs %s", again[:16], want[:16])
	}
	if other, _ := faultyRingDigest(t, net, 43); other == want {
		t.Fatal("different seeds produced identical faulty traces")
	}
	// Dirty the engine with a different run first, then Reset; the 5ms delta
	// matters — the ring doubles its messages every hop, so a 1ms delta would
	// pack 2^50 messages into runRingOn's 50ms horizon.
	reused := NewEngine(Synchronous{Delta: 5 * Millisecond}, 7)
	runRingOn(t, reused)
	reused.Reset(net, 42)
	if digest, _ := runRingOn(t, reused); digest != want {
		t.Fatalf("reset engine diverged under injection: %s vs %s", digest[:16], want[:16])
	}
}

// TestFaultyNetworkLossAndDup pins the two degenerate rates: Loss=1 delivers
// nothing (while metrics still count the attempts), Dup=1 delivers every
// message exactly twice.
func TestFaultyNetworkLossAndDup(t *testing.T) {
	send := []scriptSend{{10 * Millisecond, 2, "a"}, {20 * Millisecond, 2, "b"}}

	engine := NewEngine(FaultyNetwork{Base: fixedNet{d: Millisecond}, Loss: 1}, 1)
	sink := &recorder{}
	if err := engine.AddProcess(1, &scriptSender{sends: send}); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(2, sink); err != nil {
		t.Fatal(err)
	}
	engine.Run(Second)
	if len(sink.got) != 0 {
		t.Fatalf("Loss=1 delivered %d messages", len(sink.got))
	}
	if engine.Metrics().Messages != 2 {
		t.Fatalf("metrics counted %d send attempts, want 2", engine.Metrics().Messages)
	}

	engine = NewEngine(FaultyNetwork{Base: fixedNet{d: Millisecond}, Dup: 1}, 1)
	sink = &recorder{}
	if err := engine.AddProcess(1, &scriptSender{sends: send}); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(2, sink); err != nil {
		t.Fatal(err)
	}
	engine.Run(Second)
	if len(sink.got) != 4 {
		t.Fatalf("Dup=1 delivered %d messages, want 4 (each twice)", len(sink.got))
	}
	if engine.Metrics().Messages != 2 {
		t.Fatalf("metrics counted %d send attempts, want 2", engine.Metrics().Messages)
	}
}

// TestPartitionScheduleSevers pins partition semantics: cross-group messages
// are severed during the window and flow again after the heal; processes in
// the same group — and pairs outside every listed group (the implicit
// remainder group) — are unaffected; a listed↔unlisted pair is severed.
func TestPartitionScheduleSevers(t *testing.T) {
	sched := PartitionSchedule{{
		From: 0, Until: 40 * Millisecond,
		Groups: []model.IDSet{model.NewIDSet(1), model.NewIDSet(2)},
	}}
	net := FaultyNetwork{Base: fixedNet{d: Millisecond}, Partition: sched}
	engine := NewEngine(net, 1)
	sinkB, sinkD := &recorder{}, &recorder{}
	// 1→2 crosses the cut: severed at 10ms, delivered at 50ms (healed).
	// 3→4 is remainder↔remainder: delivered during the window.
	// 1→4 is listed↔unlisted: severed.
	if err := engine.AddProcess(1, &scriptSender{sends: []scriptSend{
		{10 * Millisecond, 2, "cut"}, {50 * Millisecond, 2, "healed"}, {20 * Millisecond, 4, "leak"},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(2, sinkB); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(3, &scriptSender{sends: []scriptSend{{15 * Millisecond, 4, "rem"}}}); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(4, sinkD); err != nil {
		t.Fatal(err)
	}
	engine.Run(Second)
	if len(sinkB.got) != 1 || sinkB.got[0].payload != "healed" {
		t.Fatalf("cross-cut deliveries to 2: %+v, want only the post-heal message", sinkB.got)
	}
	if len(sinkD.got) != 1 || sinkD.got[0].payload != "rem" {
		t.Fatalf("deliveries to 4: %+v, want only the remainder-group message", sinkD.got)
	}
}

// TestCrashRestartInFlight is the regression pin for churn delivery
// semantics: a message in flight to a crashed process is dropped when it
// arrives during the outage, delivered when it arrives after the restart
// (packets live in the network, not the process); a message sent while the
// target is down is dropped at send time.
func TestCrashRestartInFlight(t *testing.T) {
	engine := NewEngine(fixedNet{d: 60 * Millisecond}, 1)
	sink := &resumableRecorder{}
	if err := engine.AddProcess(1, &scriptSender{sends: []scriptSend{
		{20 * Millisecond, 2, "m1"},  // arrives 80ms: during the outage → dropped
		{45 * Millisecond, 2, "m2"},  // arrives 105ms: after restart → delivered
		{70 * Millisecond, 2, "m3"},  // sent while 2 is down → dropped at send
		{110 * Millisecond, 2, "m4"}, // arrives 170ms → delivered
	}}); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(2, sink); err != nil {
		t.Fatal(err)
	}
	engine.ScheduleCrash(2, 50*Millisecond)
	engine.ScheduleRestart(2, 100*Millisecond, nil)
	engine.Run(Second)
	want := []recvRec{
		{105 * Millisecond, 1, "m2"},
		{170 * Millisecond, 1, "m4"},
	}
	if len(sink.got) != len(want) {
		t.Fatalf("delivered %+v, want %+v", sink.got, want)
	}
	for i := range want {
		if sink.got[i] != want[i] {
			t.Fatalf("delivery %d = %+v, want %+v", i, sink.got[i], want[i])
		}
	}
	if sink.resumed != 1 || sink.inits != 1 {
		t.Fatalf("persisted restart: resumed=%d inits=%d, want 1/1", sink.resumed, sink.inits)
	}
	if engine.Metrics().Messages != 3 {
		t.Fatalf("metrics counted %d send attempts, want 3 (m3 dropped at send)", engine.Metrics().Messages)
	}
}

// crashTicker counts periodic timer fires and, on persisted restart,
// deliberately does not re-arm — so any tick after the restart proves a
// pre-crash timer leaked through.
type crashTicker struct {
	ticks   int
	resumed int
}

func (c *crashTicker) Init(ctx Context)                  { ctx.SetTimer(10*Millisecond, 1) }
func (c *crashTicker) Receive(Context, model.ID, []byte) {}
func (c *crashTicker) Timer(ctx Context, tag uint64) {
	c.ticks++
	ctx.SetTimer(10*Millisecond, tag)
}
func (c *crashTicker) Restart(Context) { c.resumed++ }

// TestRestartSemantics pins the two restart flavors: a persisted restart
// keeps the reactor (state intact, Restart called, pending timers dead); a
// wiped restart swaps in the replacement reactor, whose Init runs fresh.
func TestRestartSemantics(t *testing.T) {
	// Persisted: timers from the previous incarnation must not fire.
	engine := NewEngine(fixedNet{d: Millisecond}, 1)
	tick := &crashTicker{}
	if err := engine.AddProcess(1, tick); err != nil {
		t.Fatal(err)
	}
	engine.ScheduleCrash(1, 55*Millisecond)
	engine.ScheduleRestart(1, 100*Millisecond, nil)
	engine.Run(Second)
	if tick.ticks != 5 {
		t.Fatalf("ticks = %d, want 5 (10..50ms; the pending 60ms timer died with the crash)", tick.ticks)
	}
	if tick.resumed != 1 {
		t.Fatalf("resumed = %d, want 1", tick.resumed)
	}

	// Wiped: the replacement reactor takes over with a fresh Init; the old
	// reactor sees nothing after the crash.
	engine = NewEngine(fixedNet{d: Millisecond}, 1)
	old, fresh := &recorder{}, &recorder{}
	if err := engine.AddProcess(1, &scriptSender{sends: []scriptSend{
		{30 * Millisecond, 2, "pre"}, {120 * Millisecond, 2, "post"},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(2, old); err != nil {
		t.Fatal(err)
	}
	engine.ScheduleCrash(2, 50*Millisecond)
	engine.ScheduleRestart(2, 100*Millisecond, fresh)
	engine.Run(Second)
	if len(old.got) != 1 || old.got[0].payload != "pre" {
		t.Fatalf("old reactor got %+v, want only the pre-crash message", old.got)
	}
	if len(fresh.got) != 1 || fresh.got[0].payload != "post" {
		t.Fatalf("replacement got %+v, want only the post-restart message", fresh.got)
	}
	if fresh.inits != 1 {
		t.Fatalf("replacement inits = %d, want 1", fresh.inits)
	}
}
