// Package sim is a deterministic discrete-event simulator for message-passing
// protocols. Processes are Reactors driven by three callbacks (Init, Receive,
// Timer); the engine owns a virtual clock, a seeded RNG and a network model
// that assigns per-message delivery delays. Identical seeds and inputs yield
// identical traces, which the experiments and benchmarks rely on.
//
// The network models implement the paper's three communication assumptions:
// synchronous, partially synchronous (explicit GST and δ, with optional slow
// link classes used to build the Theorem 7 indistinguishability schedules)
// and an adversarial asynchronous scheduler whose delays grow with time,
// exhibiting the non-termination that [24] proves unavoidable.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"github.com/bftcup/bftcup/internal/model"
)

// Time is virtual nanoseconds since the start of the run.
type Time int64

// Convenient virtual durations.
const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the virtual duration human-readably ("2.00s", "14.3ms").
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.2fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.1fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Reactor is a deterministic, single-threaded protocol state machine. The
// engine never calls a reactor concurrently.
type Reactor interface {
	// Init runs once before any event is delivered.
	Init(ctx Context)
	// Receive delivers a message from another process.
	Receive(ctx Context, from model.ID, payload []byte)
	// Timer fires a timer set via Context.SetTimer.
	Timer(ctx Context, tag uint64)
}

// Context is the engine-side interface a reactor uses to act on the world.
type Context interface {
	// ID returns the process this context belongs to.
	ID() model.ID
	// Now returns the current virtual time.
	Now() Time
	// Send transmits payload to the given process. Sending to an unknown or
	// crashed process silently drops (the channel abstraction does not
	// acknowledge).
	Send(to model.ID, payload []byte)
	// SetTimer schedules Timer(tag) after d.
	SetTimer(d Time, tag uint64)
	// Rand is a deterministic per-run RNG (shared; use only inside the
	// reactor's own callbacks).
	Rand() *rand.Rand
}

// NetworkModel assigns a delivery delay to each message.
type NetworkModel interface {
	// Delay is called once per message at send time.
	Delay(from, to model.ID, now Time, rng *rand.Rand) Time
}

// Metrics accumulates network counters for the experiment tables.
type Metrics struct {
	Messages int64
	Bytes    int64
	ByKind   map[byte]int64
}

func newMetrics() *Metrics { return &Metrics{ByKind: make(map[byte]int64)} }

func (m *Metrics) record(payload []byte) {
	m.Messages++
	m.Bytes += int64(len(payload))
	if len(payload) > 0 {
		m.ByKind[payload[0]]++
	}
}

type eventKind uint8

const (
	evMessage eventKind = iota
	evTimer
)

type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	kind eventKind
	to   model.ID
	from model.ID // evMessage
	body []byte   // evMessage
	tag  uint64   // evTimer
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine drives a set of reactors over a virtual clock.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	procs   map[model.ID]*proc
	order   []model.ID
	net     NetworkModel
	rng     *rand.Rand
	metrics *Metrics
	trace   *Trace
	started bool
	// preCrashed holds Crash marks issued before AddProcess.
	preCrashed model.IDSet
}

type proc struct {
	id      model.ID
	reactor Reactor
	ctx     *procCtx
	crashed bool
}

// NewEngine creates an engine with the given network model and seed.
func NewEngine(net NetworkModel, seed int64) *Engine {
	return &Engine{
		procs:   make(map[model.ID]*proc),
		net:     net,
		rng:     rand.New(rand.NewSource(seed)),
		metrics: newMetrics(),
	}
}

// Metrics returns the accumulated network counters.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// AddProcess registers a reactor under an ID. Must be called before Run.
func (e *Engine) AddProcess(id model.ID, r Reactor) error {
	if e.started {
		return fmt.Errorf("sim: AddProcess(%v) after start", id)
	}
	if _, dup := e.procs[id]; dup {
		return fmt.Errorf("sim: duplicate process %v", id)
	}
	p := &proc{id: id, reactor: r}
	p.ctx = &procCtx{engine: e, proc: p}
	if e.preCrashed.Has(id) {
		p.crashed = true
	}
	e.procs[id] = p
	e.order = append(e.order, id)
	return nil
}

// Crash stops delivering events to and from the given process. It may be
// called before the process is added; the mark is applied at registration.
func (e *Engine) Crash(id model.ID) {
	if p, ok := e.procs[id]; ok {
		p.crashed = true
		return
	}
	if e.preCrashed == nil {
		e.preCrashed = model.NewIDSet()
	}
	e.preCrashed.Add(id)
}

func (e *Engine) start() {
	if e.started {
		return
	}
	e.started = true
	sort.Slice(e.order, func(i, j int) bool { return e.order[i] < e.order[j] })
	for _, id := range e.order {
		p := e.procs[id]
		if !p.crashed {
			p.reactor.Init(p.ctx)
		}
	}
}

// Step processes the next event. It returns false when the event queue is
// empty.
func (e *Engine) Step() bool {
	e.start()
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		p, ok := e.procs[ev.to]
		if !ok || p.crashed {
			continue
		}
		if e.trace != nil {
			e.trace.record(ev)
		}
		switch ev.kind {
		case evMessage:
			p.reactor.Receive(p.ctx, ev.from, ev.body)
		case evTimer:
			p.reactor.Timer(p.ctx, ev.tag)
		}
		return true
	}
	return false
}

// RunUntil processes events until cond() holds (checked after every event),
// the horizon passes, or the queue drains. It reports whether cond was met.
func (e *Engine) RunUntil(cond func() bool, horizon Time) bool {
	e.start()
	if cond() {
		return true
	}
	for e.events.Len() > 0 {
		if e.events[0].at > horizon {
			return false
		}
		if !e.Step() {
			break
		}
		if cond() {
			return true
		}
	}
	return cond()
}

// Run processes events until the horizon passes or the queue drains.
func (e *Engine) Run(horizon Time) {
	e.RunUntil(func() bool { return false }, horizon)
}

func (e *Engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// procCtx implements Context for one process.
type procCtx struct {
	engine *Engine
	proc   *proc
}

func (c *procCtx) ID() model.ID     { return c.proc.id }
func (c *procCtx) Now() Time        { return c.engine.now }
func (c *procCtx) Rand() *rand.Rand { return c.engine.rng }

func (c *procCtx) Send(to model.ID, payload []byte) {
	e := c.engine
	if c.proc.crashed {
		return
	}
	tgt, ok := e.procs[to]
	if !ok || tgt.crashed || to == c.proc.id {
		return
	}
	e.metrics.record(payload)
	d := e.net.Delay(c.proc.id, to, e.now, e.rng)
	if d < 0 {
		d = 0
	}
	body := make([]byte, len(payload))
	copy(body, payload)
	e.push(&event{at: e.now + d, kind: evMessage, to: to, from: c.proc.id, body: body})
}

func (c *procCtx) SetTimer(d Time, tag uint64) {
	if d < 0 {
		d = 0
	}
	c.engine.push(&event{at: c.engine.now + d, kind: evTimer, to: c.proc.id, tag: tag})
}
