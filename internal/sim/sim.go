// Package sim is a deterministic discrete-event simulator for message-passing
// protocols. Processes are Reactors driven by three callbacks (Init, Receive,
// Timer); the engine owns a virtual clock, a seeded RNG and a network model
// that assigns per-message delivery delays. Identical seeds and inputs yield
// identical traces, which the experiments and benchmarks rely on.
//
// The network models implement the paper's three communication assumptions:
// synchronous, partially synchronous (explicit GST and δ, with optional slow
// link classes used to build the Theorem 7 indistinguishability schedules)
// and an adversarial asynchronous scheduler whose delays grow with time,
// exhibiting the non-termination that [24] proves unavoidable.
//
// # Hot path
//
// The engine is written to be allocation-free in steady state: events live by
// value in a manually-sifted binary heap (no container/heap interface
// boxing), message bodies are reference-counted buffers drawn from a
// per-engine free list, and consecutive sends of byte-identical payloads — the
// broadcast pattern every protocol layer uses — share one interned buffer
// instead of copying per recipient. The RNG behind Context.Rand and
// NetworkModel.Delay is a splitmix64 source wrapped in math/rand, a few
// nanoseconds per draw with no per-engine table allocation.
//
// The zero-copy delivery contract: the payload slice passed to
// Reactor.Receive is only valid for the duration of the callback. A reactor
// that buffers a payload for later must copy it first (forwarding it to
// Context.Send within the callback is fine — the engine re-interns it).
package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
)

// The runtime abstraction (Time, Reactor, Context, Restartable) lives in
// internal/rt; the engine is one implementation of it. The aliases below keep
// the historical sim.* names working — they are the same types, so the engine
// and every reactor written against rt interoperate with zero conversion.

// Time is virtual nanoseconds since the start of the run.
type Time = rt.Time

// Convenient virtual durations.
const (
	Microsecond = rt.Microsecond
	Millisecond = rt.Millisecond
	Second      = rt.Second
)

// Reactor is a deterministic, single-threaded protocol state machine. The
// engine never calls a reactor concurrently.
type Reactor = rt.Reactor

// Context is the runtime-side interface a reactor uses to act on the world.
// The engine's implementation copies (or interns, for repeated broadcasts of
// identical bytes) every Send payload, and silently drops sends to unknown or
// crashed processes.
type Context = rt.Context

// NetworkModel assigns a delivery delay to each message.
type NetworkModel interface {
	// Delay is called once per message at send time.
	Delay(from, to model.ID, now Time, rng *rand.Rand) Time
}

// Metrics accumulates network counters for the experiment tables.
type Metrics struct {
	// Messages counts every accepted Send.
	Messages int64
	// Bytes totals the payload bytes of every accepted Send.
	Bytes int64
	// byKind counts messages per leading payload byte (the wire kind).
	// An array, not a map: the per-message increment is on the hot path.
	byKind [256]int64
}

// KindCount returns how many messages carried the given leading kind byte.
func (m *Metrics) KindCount(k byte) int64 { return m.byKind[k] }

// ByKind returns a snapshot of the per-kind message counts (only kinds with
// at least one message appear).
func (m *Metrics) ByKind() map[byte]int64 {
	out := make(map[byte]int64)
	for k, v := range m.byKind {
		if v != 0 {
			out[byte(k)] = v
		}
	}
	return out
}

type eventKind uint8

const (
	evMessage eventKind = iota
	evTimer
	evCrash
	evRestart
)

// msgBody is a reference-counted payload buffer. Bodies are recycled through
// the engine's free list once every referencing event has been delivered, so
// the steady-state message path allocates nothing; refcounts let repeated
// sends of identical bytes (broadcasts) share one buffer.
type msgBody struct {
	data []byte
	refs int32
}

// event is one scheduled delivery. Events are stored by value in the heap —
// no per-event allocation — and carry the resolved *proc so delivery needs no
// map lookup.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	kind eventKind
	gen  uint32 // evTimer: the target's incarnation at scheduling time
	to   model.ID
	from model.ID // evMessage
	tgt  *proc
	body *msgBody // evMessage
	tag  uint64   // evTimer; evCrash/evRestart: index into Engine.controls
}

// before orders events by (at, seq): virtual time first, FIFO within a tick.
func (ev *event) before(o *event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.seq < o.seq
}

// Engine drives a set of reactors over a virtual clock.
type Engine struct {
	now    Time
	seq    uint64
	events []event // manual binary min-heap on (at, seq)
	procs  map[model.ID]*proc
	order  []model.ID
	net    NetworkModel
	// injector is net's FaultInjector view, cached so the zero-fault send
	// path pays one nil check instead of a per-message type assertion.
	injector FaultInjector
	rng      *rand.Rand
	metrics  *Metrics
	trace    *Trace
	started  bool

	// bodyFree recycles payload buffers; lastBody interns the most recent one
	// so broadcast loops sending identical bytes share a single buffer.
	bodyFree []*msgBody
	lastBody *msgBody

	// preCrashed holds Crash marks issued before AddProcess.
	preCrashed model.IDSet

	// controls are scheduled crash/restart points, pushed as events at start.
	controls []control
}

// control is one scheduled crash or restart (the churn schedule). Controls
// registered before start are resolved and pushed as events when the run
// begins; controls naming IDs that were never added are ignored.
type control struct {
	at          Time
	id          model.ID
	restart     bool
	replacement Reactor // restart only: non-nil swaps the reactor (wiped state)
}

type proc struct {
	id      model.ID
	reactor Reactor
	ctx     *procCtx
	crashed bool
	// gen is the incarnation number, bumped at every crash. Timer events
	// carry the gen they were scheduled under and are dropped on mismatch:
	// a process's pending timers die with it, while in-flight messages —
	// which live in the network, not the process — survive a restart.
	gen uint32
}

// Restartable is an optional Reactor extension for processes that can resume
// from persisted state after a crash. A scheduled restart without a
// replacement reactor calls Restart (falling back to Init when the reactor
// does not implement it); the reactor re-arms whatever timers it needs —
// pending timers from before the crash are gone.
type Restartable = rt.Restartable

// NewEngine creates an engine with the given network model and seed.
func NewEngine(net NetworkModel, seed int64) *Engine {
	inj, _ := net.(FaultInjector)
	return &Engine{
		procs:    make(map[model.ID]*proc),
		net:      net,
		injector: inj,
		rng:      newRand(seed),
		metrics:  &Metrics{},
	}
}

// Reset returns the engine to its just-constructed state under a new network
// model and seed, retaining the capacity of the event heap, the payload
// buffer pool and the process map — the allocations a fresh NewEngine would
// repeat. A sweep worker running thousands of cells resets one engine
// instead of constructing one per cell; a reset engine is indistinguishable
// from a new one (pinned by the scenario-level cached-vs-uncached
// fingerprint tests).
func (e *Engine) Reset(net NetworkModel, seed int64) {
	for i := range e.events {
		if e.events[i].kind == evMessage {
			e.releaseBody(e.events[i].body)
		}
		e.events[i] = event{}
	}
	e.events = e.events[:0]
	clear(e.procs)
	e.order = e.order[:0]
	e.now = 0
	e.seq = 0
	e.net = net
	e.injector, _ = net.(FaultInjector)
	e.rng = newRand(seed)
	*e.metrics = Metrics{}
	e.trace = nil
	e.started = false
	e.lastBody = nil
	e.preCrashed = nil
	e.controls = e.controls[:0]
}

// Metrics returns the accumulated network counters.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// AddProcess registers a reactor under an ID. Must be called before Run.
func (e *Engine) AddProcess(id model.ID, r Reactor) error {
	if e.started {
		return fmt.Errorf("sim: AddProcess(%v) after start", id)
	}
	if _, dup := e.procs[id]; dup {
		return fmt.Errorf("sim: duplicate process %v", id)
	}
	p := &proc{id: id, reactor: r}
	p.ctx = &procCtx{engine: e, proc: p}
	if e.preCrashed.Has(id) {
		p.crashed = true
	}
	e.procs[id] = p
	e.order = append(e.order, id)
	return nil
}

// Crash stops delivering events to and from the given process. It may be
// called before the process is added; the mark is applied at registration.
func (e *Engine) Crash(id model.ID) {
	if p, ok := e.procs[id]; ok {
		p.crashed = true
		p.gen++
		return
	}
	if e.preCrashed == nil {
		e.preCrashed = model.NewIDSet()
	}
	e.preCrashed.Add(id)
}

// ScheduleCrash crashes the process at virtual time at. The process runs
// normally (including Init) until then; messages in flight to it at the
// moment of the crash are dropped at delivery time, and its pending timers
// die with it. Must be called before the run starts.
func (e *Engine) ScheduleCrash(id model.ID, at Time) {
	e.controls = append(e.controls, control{at: at, id: id})
}

// ScheduleRestart revives a crashed process at virtual time at. With a nil
// replacement the process resumes with its state persisted: the original
// reactor's Restart is called (Init, if it does not implement Restartable).
// A non-nil replacement models a wiped restart — the process comes back as a
// fresh reactor (same ID, empty state) and replacement.Init runs. Either
// way, in-flight messages sent before the crash that arrive after the
// restart are delivered; timers from the previous incarnation are not.
// Must be called before the run starts. Restarting a live process is a
// no-op.
func (e *Engine) ScheduleRestart(id model.ID, at Time, replacement Reactor) {
	e.controls = append(e.controls, control{at: at, id: id, restart: true, replacement: replacement})
}

func (e *Engine) start() {
	if e.started {
		return
	}
	e.started = true
	// Control events go in first: at equal times a crash/restart precedes
	// the messages and timers scheduled by Init (deterministic either way;
	// this order is the documented one).
	for i := range e.controls {
		ctl := &e.controls[i]
		p, ok := e.procs[ctl.id]
		if !ok {
			continue
		}
		kind := evCrash
		if ctl.restart {
			kind = evRestart
		}
		e.push(event{at: ctl.at, kind: kind, to: ctl.id, tgt: p, tag: uint64(i)})
	}
	sort.Slice(e.order, func(i, j int) bool { return e.order[i] < e.order[j] })
	for _, id := range e.order {
		p := e.procs[id]
		if !p.crashed {
			p.reactor.Init(p.ctx)
		}
	}
}

// Step processes the next event. It returns false when the event queue is
// empty.
func (e *Engine) Step() bool {
	e.start()
	for len(e.events) > 0 {
		ev := e.popEvent()
		e.now = ev.at
		switch ev.kind {
		case evMessage:
			if ev.tgt.crashed {
				e.releaseBody(ev.body)
				continue
			}
			if e.trace != nil {
				e.trace.record(&ev)
			}
			ev.tgt.reactor.Receive(ev.tgt.ctx, ev.from, ev.body.data)
			e.releaseBody(ev.body)
		case evTimer:
			// A stale gen means the timer was set by a previous incarnation:
			// pending timers die with a crash, even if the process restarts
			// before they would have fired.
			if ev.tgt.crashed || ev.gen != ev.tgt.gen {
				continue
			}
			if e.trace != nil {
				e.trace.record(&ev)
			}
			ev.tgt.reactor.Timer(ev.tgt.ctx, ev.tag)
		case evCrash:
			if e.trace != nil {
				e.trace.record(&ev)
			}
			if !ev.tgt.crashed {
				ev.tgt.crashed = true
				ev.tgt.gen++
			}
		case evRestart:
			if e.trace != nil {
				e.trace.record(&ev)
			}
			if p := ev.tgt; p.crashed {
				p.crashed = false
				if repl := e.controls[ev.tag].replacement; repl != nil {
					p.reactor = repl
					p.reactor.Init(p.ctx)
				} else if r, ok := p.reactor.(Restartable); ok {
					r.Restart(p.ctx)
				} else {
					p.reactor.Init(p.ctx)
				}
			}
		}
		return true
	}
	return false
}

// RunUntil processes events until cond() holds (checked after every event),
// the horizon passes, or the queue drains. It reports whether cond was met.
func (e *Engine) RunUntil(cond func() bool, horizon Time) bool {
	e.start()
	if cond() {
		return true
	}
	for len(e.events) > 0 {
		if e.events[0].at > horizon {
			return false
		}
		if !e.Step() {
			break
		}
		if cond() {
			return true
		}
	}
	return cond()
}

// Run processes events until the horizon passes or the queue drains.
func (e *Engine) Run(horizon Time) {
	e.RunUntil(func() bool { return false }, horizon)
}

// push assigns the FIFO sequence number and sifts the event into the heap.
// The heap is a plain []event: pushes reuse the slice's capacity, so the
// steady state allocates nothing.
func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.events = h
}

// popEvent removes and returns the earliest event (min on (at, seq)).
func (e *Engine) popEvent() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop the body/proc pointers for the GC
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].before(&h[l]) {
			m = r
		}
		if !h[m].before(&h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.events = h
	return root
}

// acquireBody returns a buffer holding a copy of payload. Consecutive
// acquisitions of byte-identical payloads (broadcast fan-out) share one
// interned buffer via its refcount instead of copying per recipient.
func (e *Engine) acquireBody(payload []byte) *msgBody {
	if lb := e.lastBody; lb != nil && bytes.Equal(lb.data, payload) {
		lb.refs++
		return lb
	}
	var b *msgBody
	if n := len(e.bodyFree); n > 0 {
		b = e.bodyFree[n-1]
		e.bodyFree[n-1] = nil
		e.bodyFree = e.bodyFree[:n-1]
	} else {
		b = &msgBody{}
	}
	b.data = append(b.data[:0], payload...)
	b.refs = 1
	e.lastBody = b
	return b
}

// releaseBody returns a buffer to the free list once its last referencing
// event has been delivered (or dropped).
func (e *Engine) releaseBody(b *msgBody) {
	if b == nil {
		return
	}
	if b.refs--; b.refs > 0 {
		return
	}
	if e.lastBody == b {
		// The buffer is about to be rewritten by its next user; it must no
		// longer satisfy intern hits.
		e.lastBody = nil
	}
	e.bodyFree = append(e.bodyFree, b)
}

// procCtx implements Context for one process.
type procCtx struct {
	engine *Engine
	proc   *proc
}

func (c *procCtx) ID() model.ID     { return c.proc.id }
func (c *procCtx) Now() Time        { return c.engine.now }
func (c *procCtx) Rand() *rand.Rand { return c.engine.rng }

func (c *procCtx) Send(to model.ID, payload []byte) {
	e := c.engine
	if c.proc.crashed {
		return
	}
	tgt, ok := e.procs[to]
	if !ok || tgt.crashed || to == c.proc.id {
		return
	}
	m := e.metrics
	m.Messages++
	m.Bytes += int64(len(payload))
	if len(payload) > 0 {
		m.byKind[payload[0]]++
	}
	// Metrics count the send attempt; fault injection decides what the
	// network delivers. 0 copies = dropped/severed, 2 = duplicated. Each
	// copy gets its own delay draw (duplicates may arrive out of order);
	// the interned body is shared between copies.
	copies := 1
	if e.injector != nil {
		copies = e.injector.Copies(c.proc.id, to, e.now, e.rng)
		if copies <= 0 {
			return
		}
	}
	for i := 0; i < copies; i++ {
		d := e.net.Delay(c.proc.id, to, e.now, e.rng)
		if d < 0 {
			d = 0
		}
		e.push(event{at: e.now + d, kind: evMessage, to: to, from: c.proc.id, tgt: tgt, body: e.acquireBody(payload)})
	}
}

func (c *procCtx) SetTimer(d Time, tag uint64) {
	if d < 0 {
		d = 0
	}
	e := c.engine
	e.push(event{at: e.now + d, kind: evTimer, to: c.proc.id, tgt: c.proc, tag: tag, gen: c.proc.gen})
}
