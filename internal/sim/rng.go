package sim

import "math/rand"

// splitmix64 is the Steele–Lea–Flood "SplitMix" generator (Fast Splittable
// Pseudorandom Number Generators, OOPSLA 2014): one 64-bit addition and three
// xor-multiply mixing steps per draw, no state tables. It replaces
// math/rand's default additive-lagged-Fibonacci source on the engine hot path
// — a network-delay draw happens once per message — while staying behind the
// standard *rand.Rand so the Context and NetworkModel interfaces are
// unchanged. Deterministic: the same seed always yields the same stream.
type splitmix64 struct{ state uint64 }

// newRand wraps a seeded splitmix64 in a *rand.Rand. rand.New detects the
// Source64 implementation, so Uint64-based draws bypass the Int63 shim.
func newRand(seed int64) *rand.Rand {
	return rand.New(&splitmix64{state: uint64(seed)})
}

// Uint64 implements rand.Source64.
func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }
