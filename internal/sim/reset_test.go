package sim

import (
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// runRingOn drives a small token ring on the given engine (fresh or reset)
// with tracing attached and returns the trace digest plus message count. The
// horizon cuts the run with deliveries still queued, so a following Reset
// also exercises the in-flight-event release path.
func runRingOn(t *testing.T, engine *Engine) (string, int64) {
	t.Helper()
	tr := NewTrace()
	engine.SetTrace(tr)
	peers := make([]model.ID, 8)
	for i := range peers {
		peers[i] = model.ID(i + 1)
	}
	payload := []byte("reset-determinism")
	for i, id := range peers {
		r := &workloadReactor{
			peers:   []model.ID{peers[(i+1)%len(peers)], peers[(i+2)%len(peers)], peers[(i+3)%len(peers)]},
			fanout:  2,
			tokens:  1,
			payload: payload,
		}
		if err := engine.AddProcess(id, r); err != nil {
			t.Fatal(err)
		}
	}
	engine.Run(50 * Millisecond)
	return tr.Digest(), engine.Metrics().Messages
}

// TestEngineResetMatchesFresh pins Reset's contract: an engine reset to a
// (net, seed) is indistinguishable from a newly constructed one — identical
// event traces and metrics — and a reset to a different seed actually
// diverges (the RNG was reseeded, not left running).
func TestEngineResetMatchesFresh(t *testing.T) {
	net := Synchronous{Delta: 5 * Millisecond}
	fresh := NewEngine(net, 42)
	wantDigest, wantMsgs := runRingOn(t, fresh)
	if wantMsgs == 0 {
		t.Fatal("reference run sent no messages")
	}

	reused := NewEngine(net, 7)
	if d, _ := runRingOn(t, reused); d == wantDigest {
		t.Fatal("different seeds produced identical traces")
	}
	for i := 0; i < 3; i++ {
		reused.Reset(net, 42)
		if reused.Now() != 0 || reused.Metrics().Messages != 0 {
			t.Fatalf("reset %d left state behind: now=%v messages=%d", i, reused.Now(), reused.Metrics().Messages)
		}
		digest, msgs := runRingOn(t, reused)
		if digest != wantDigest || msgs != wantMsgs {
			t.Fatalf("reset %d diverged from fresh engine: %s/%d vs %s/%d", i, digest[:16], msgs, wantDigest[:16], wantMsgs)
		}
	}

	// Reset must also detach the trace: after a Reset, a run that does not
	// re-attach records nothing into the previously attached recorder.
	tr := NewTrace()
	reused.Reset(net, 42)
	reused.SetTrace(tr)
	reused.Reset(net, 42)
	if err := reused.AddProcess(1, &workloadReactor{peers: []model.ID{1}, fanout: 1, tokens: 1, payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	reused.Run(10 * Millisecond)
	if tr.Events() != 0 {
		t.Fatalf("detached trace recorded %d events", tr.Events())
	}
}
