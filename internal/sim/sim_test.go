package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// echoReactor replies to every "ping" with a "pong" and records deliveries.
type echoReactor struct {
	peer     model.ID
	initiate bool
	log      *[]string
}

func (r *echoReactor) Init(ctx Context) {
	if r.initiate {
		ctx.Send(r.peer, []byte("ping"))
	}
}

func (r *echoReactor) Receive(ctx Context, from model.ID, payload []byte) {
	*r.log = append(*r.log, fmt.Sprintf("%v<-%v:%s@%d", ctx.ID(), from, payload, ctx.Now()))
	if string(payload) == "ping" {
		ctx.Send(from, []byte("pong"))
	}
}

func (r *echoReactor) Timer(Context, uint64) {}

func TestPingPong(t *testing.T) {
	var log []string
	e := NewEngine(Synchronous{Delta: 10 * Millisecond}, 1)
	if err := e.AddProcess(1, &echoReactor{peer: 2, initiate: true, log: &log}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddProcess(2, &echoReactor{peer: 1, log: &log}); err != nil {
		t.Fatal(err)
	}
	e.Run(Second)
	if len(log) != 2 {
		t.Fatalf("log = %v", log)
	}
	m := e.Metrics()
	if m.Messages != 2 || m.Bytes != 8 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestDuplicateProcessRejected(t *testing.T) {
	e := NewEngine(Synchronous{Delta: 1}, 1)
	var log []string
	if err := e.AddProcess(1, &echoReactor{log: &log}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddProcess(1, &echoReactor{log: &log}); err == nil {
		t.Fatal("duplicate AddProcess accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		var log []string
		e := NewEngine(PartialSync{GST: 50 * Millisecond, Delta: 10 * Millisecond}, 99)
		_ = e.AddProcess(1, &echoReactor{peer: 2, initiate: true, log: &log})
		_ = e.AddProcess(2, &echoReactor{peer: 1, initiate: true, log: &log})
		e.Run(Second)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

type timerReactor struct {
	fired []uint64
	times []Time
}

func (r *timerReactor) Init(ctx Context) {
	ctx.SetTimer(30*Millisecond, 3)
	ctx.SetTimer(10*Millisecond, 1)
	ctx.SetTimer(20*Millisecond, 2)
}
func (r *timerReactor) Receive(Context, model.ID, []byte) {}
func (r *timerReactor) Timer(ctx Context, tag uint64) {
	r.fired = append(r.fired, tag)
	r.times = append(r.times, ctx.Now())
}

func TestTimersFireInOrder(t *testing.T) {
	e := NewEngine(Synchronous{Delta: 1}, 1)
	tr := &timerReactor{}
	_ = e.AddProcess(1, tr)
	e.Run(Second)
	if len(tr.fired) != 3 || tr.fired[0] != 1 || tr.fired[1] != 2 || tr.fired[2] != 3 {
		t.Fatalf("fired = %v", tr.fired)
	}
	for i, at := range tr.times {
		want := Time(10*(i+1)) * Millisecond
		if at != want {
			t.Fatalf("timer %d fired at %d, want %d", i, at, want)
		}
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	var log []string
	e := NewEngine(Synchronous{Delta: Millisecond}, 1)
	_ = e.AddProcess(1, &echoReactor{peer: 2, initiate: true, log: &log})
	_ = e.AddProcess(2, &echoReactor{peer: 1, log: &log})
	e.Crash(2)
	e.Run(Second)
	if len(log) != 0 {
		t.Fatalf("crashed process received: %v", log)
	}
}

func TestSendToUnknownIsDropped(t *testing.T) {
	var log []string
	e := NewEngine(Synchronous{Delta: Millisecond}, 1)
	_ = e.AddProcess(1, &echoReactor{peer: 42, initiate: true, log: &log})
	e.Run(Second)
	if e.Metrics().Messages != 0 {
		t.Fatal("message to unknown process should be dropped unrecorded")
	}
}

func TestRunUntil(t *testing.T) {
	var log []string
	e := NewEngine(Synchronous{Delta: Millisecond}, 1)
	_ = e.AddProcess(1, &echoReactor{peer: 2, initiate: true, log: &log})
	_ = e.AddProcess(2, &echoReactor{peer: 1, log: &log})
	ok := e.RunUntil(func() bool { return len(log) >= 1 }, Second)
	if !ok || len(log) != 1 {
		t.Fatalf("RunUntil: ok=%v log=%v", ok, log)
	}
	// Horizon respected.
	e2 := NewEngine(Synchronous{Delta: 10 * Second}, 1)
	var log2 []string
	_ = e2.AddProcess(1, &echoReactor{peer: 2, initiate: true, log: &log2})
	_ = e2.AddProcess(2, &echoReactor{peer: 1, log: &log2})
	if e2.RunUntil(func() bool { return len(log2) > 0 }, Second) {
		t.Fatal("RunUntil ignored the horizon")
	}
	if e2.Now() > Second {
		t.Fatalf("engine advanced past the horizon: %d", e2.Now())
	}
}

// arrivalRecorder notes when each message arrives.
type arrivalRecorder struct {
	peer model.ID
	at   map[model.ID]Time
}

func (r *arrivalRecorder) Init(ctx Context) {
	if r.peer != 0 {
		ctx.Send(r.peer, []byte("ping"))
	}
}
func (r *arrivalRecorder) Receive(ctx Context, from model.ID, _ []byte) {
	if r.at == nil {
		r.at = make(map[model.ID]Time)
	}
	if _, seen := r.at[from]; !seen {
		r.at[from] = ctx.Now()
	}
}
func (r *arrivalRecorder) Timer(Context, uint64) {}

func TestPartialSyncSlowLinks(t *testing.T) {
	const gst = 100 * Millisecond
	netmod := PartialSync{
		GST:   gst,
		Delta: 10 * Millisecond,
		Slow:  SlowBetweenGroups(model.NewIDSet(1, 2)),
	}
	e := NewEngine(netmod, 5)
	p2 := &arrivalRecorder{peer: 3} // 2→3 crosses the group boundary: slow
	p3 := &arrivalRecorder{}
	_ = e.AddProcess(1, &arrivalRecorder{peer: 2}) // 1→2 intra-group: fast
	_ = e.AddProcess(2, p2)
	_ = e.AddProcess(3, p3)
	e.Run(Second)
	fastAt, ok := p2.at[1]
	if !ok || fastAt >= gst {
		t.Fatalf("fast ping arrived at %d, want before GST %d", fastAt, gst)
	}
	slowAt, ok := p3.at[2]
	if !ok || slowAt < gst {
		t.Fatalf("slow ping arrived at %d, want after GST %d", slowAt, gst)
	}
}

func TestSlowPredicates(t *testing.T) {
	g := SlowBetweenGroups(model.NewIDSet(1, 2, 3), model.NewIDSet(6, 7, 8))
	if g(1, 2) || g(6, 8) {
		t.Fatal("intra-group links must be fast")
	}
	if !g(1, 6) || !g(4, 1) || !g(3, 4) {
		t.Fatal("cross-group links must be slow")
	}
	s := SlowTouching(model.NewIDSet(5))
	if !s(5, 1) || !s(1, 5) || s(1, 2) {
		t.Fatal("SlowTouching wrong")
	}
}

func TestAsyncAdversarialGrows(t *testing.T) {
	a := AsyncAdversarial{Delta: Millisecond, Factor: 3}
	r := testRandSource()
	d0 := a.Delay(1, 2, 0, r)
	d1 := a.Delay(1, 2, Second, r)
	if d1 < 3*Second {
		t.Fatalf("delay at t=1s should be ≥ 3s, got %d", d1)
	}
	if d0 != Millisecond {
		t.Fatalf("delay at t=0 should be Delta, got %d", d0)
	}
	// The factor floor kicks in for weak configurations.
	weak := AsyncAdversarial{Delta: Millisecond, Factor: 1}
	if got := weak.Delay(1, 2, Second, r); got < 3*Second {
		t.Fatalf("factor floor not applied: %d", got)
	}
}

func TestJitterBounds(t *testing.T) {
	r := testRandSource()
	for i := 0; i < 1000; i++ {
		d := jitter(10*Millisecond, r)
		if d < 5*Millisecond || d > 10*Millisecond {
			t.Fatalf("jitter out of [d/2, d]: %d", d)
		}
	}
}

func testRandSource() *rand.Rand { return rand.New(rand.NewSource(1)) }
