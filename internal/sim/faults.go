package sim

import (
	"math/rand"

	"github.com/bftcup/bftcup/internal/model"
)

// Fault injection. The engine's only network hook used to be
// NetworkModel.Delay; faults need a second decision — whether a message is
// delivered at all, and how many times. FaultInjector is that hook: an
// optional interface a NetworkModel may additionally implement. The engine
// detects it once (at NewEngine/Reset) and consults it per Send, so network
// models without faults pay a single nil check and nothing else.
//
// Determinism contract: every fault decision is drawn from the engine's
// seeded RNG, in a fixed order per Send — Copies first (loss draw, then
// duplication draw, each skipped when its probability is zero), then one
// Delay call per surviving copy (which may draw for jitter/reorder). Identical
// seeds and fault parameters therefore reproduce byte-identical traces; the
// zero-fault configuration draws exactly the same RNG sequence as the bare
// base model, so wrapping with all-zero faults is trace-neutral.

// FaultInjector is the optional NetworkModel extension that decides message
// fate. Copies returns how many copies of a message to deliver: 0 drops it,
// 1 is normal delivery, 2+ duplicates it. Called once per accepted Send,
// before any Delay call.
type FaultInjector interface {
	Copies(from, to model.ID, now Time, rng *rand.Rand) int
}

// PartitionWindow is one timed network split: between From (inclusive) and
// Until (exclusive), messages cross only within a group. Processes not listed
// in any group form one implicit remainder group (they can still talk to each
// other, but not across the cut).
type PartitionWindow struct {
	From, Until Time
	Groups      []model.IDSet
}

// PartitionSchedule is a set of timed splits. Overlapping windows compose:
// a message is severed if any active window separates its endpoints — the
// composition of cuts is the union of cuts.
type PartitionSchedule []PartitionWindow

// Severed reports whether a message from→to sent at now crosses an active
// cut. Linear in windows × groups: schedules are small (a handful of
// windows), and this sits behind the per-Send fault hook only when a
// partition is configured.
func (s PartitionSchedule) Severed(from, to model.ID, now Time) bool {
	for _, w := range s {
		if now < w.From || now >= w.Until {
			continue
		}
		gf, gt := -1, -1
		for i := range w.Groups {
			if w.Groups[i].Has(from) {
				gf = i
			}
			if w.Groups[i].Has(to) {
				gt = i
			}
		}
		if gf != gt {
			return true
		}
	}
	return false
}

// FaultyNetwork composes fault injection over any base NetworkModel: per-link
// message loss, duplication, bounded reorder (an extra uniform delay on top of
// the base model's), and a partition schedule. The zero value of every fault
// field is "off"; a FaultyNetwork with all faults off behaves byte-identically
// to its base model (no extra RNG draws).
type FaultyNetwork struct {
	Base NetworkModel
	// Loss is the per-message drop probability in [0, 1).
	Loss float64
	// Dup is the per-message duplication probability in [0, 1). A duplicated
	// message is delivered twice, each copy with its own delay draw.
	Dup float64
	// Reorder bounds an extra uniform delay in [0, Reorder] added per copy.
	// Because it is drawn independently per message, later sends can overtake
	// earlier ones by up to Reorder — bounded out-of-order delivery.
	Reorder Time
	// Partition severs cross-group messages during its windows.
	Partition PartitionSchedule
}

// Delay implements NetworkModel: the base delay plus the reorder jitter.
func (f FaultyNetwork) Delay(from, to model.ID, now Time, rng *rand.Rand) Time {
	d := f.Base.Delay(from, to, now, rng)
	if d < 0 {
		d = 0
	}
	if f.Reorder > 0 {
		d += Time(rng.Int63n(int64(f.Reorder) + 1))
	}
	return d
}

// Copies implements FaultInjector. Draw order (the determinism contract):
// partition check (no draw), loss draw, duplication draw.
func (f FaultyNetwork) Copies(from, to model.ID, now Time, rng *rand.Rand) int {
	if len(f.Partition) > 0 && f.Partition.Severed(from, to, now) {
		return 0
	}
	if f.Loss > 0 && rng.Float64() < f.Loss {
		return 0
	}
	if f.Dup > 0 && rng.Float64() < f.Dup {
		return 2
	}
	return 1
}
