package sim

import (
	"math/rand"

	"github.com/bftcup/bftcup/internal/model"
)

// jitter returns a delay uniformly in [d/2, d].
func jitter(d Time, rng *rand.Rand) Time {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + Time(rng.Int63n(int64(half)+1))
}

// Synchronous delivers every message within Delta (uniform jitter in
// [Delta/2, Delta]) from time zero: the synchronous row of Table I.
type Synchronous struct {
	// Delta is the delivery bound; every message arrives within it.
	Delta Time
}

// Delay implements NetworkModel.
func (s Synchronous) Delay(_, _ model.ID, _ Time, rng *rand.Rand) Time {
	return jitter(s.Delta, rng)
}

// PartialSync implements the Dwork-Lynch-Stockmeyer partial synchrony used by
// the paper: there exist GST and δ such that messages between correct
// processes sent at time t are delivered by max(t, GST) + δ. Before GST,
// links for which Slow reports true experience the maximum allowed delay —
// the knob the Theorem 7 and Fig. 3 schedules turn to build
// indistinguishable executions. Other links behave synchronously throughout.
type PartialSync struct {
	// GST is the global stabilization time; Delta the post-GST bound.
	GST   Time
	Delta Time
	// Slow marks link classes that stay silent until GST. Nil means no slow
	// links (plain eventually-synchronous behavior).
	Slow func(from, to model.ID) bool
}

// Delay implements NetworkModel.
func (p PartialSync) Delay(from, to model.ID, now Time, rng *rand.Rand) Time {
	if now >= p.GST || p.Slow == nil || !p.Slow(from, to) {
		return jitter(p.Delta, rng)
	}
	// Delivered shortly after GST, as partial synchrony permits.
	return (p.GST - now) + jitter(p.Delta, rng)
}

// AsyncAdversarial is an asynchronous scheduler with no GST: a message sent
// at time t is delivered at t + max(Delta, Factor·t). With Delta larger than
// the protocol's base timeout and Factor ≥ 3, every message arrives after its
// recipients' local timers have already advanced them past the view the
// message belongs to, so view changes never assemble and deterministic
// consensus never terminates — a concrete witness schedule for the
// impossibility row of Table I (the general result is [24]'s theorem).
//
// Why Factor ≥ 3: view-v timers fire at roughly t_v ≈ T0·2^v. A view-change
// message sent at t_v arrives at Factor·t_v, which must exceed the next
// timeout t_v + T0·2^v ≈ 2·t_v, hence Factor > 2. Delta > T0 kills view 0,
// where t is still small.
type AsyncAdversarial struct {
	Delta  Time  // minimum delay; set above the protocol's base timeout
	Factor int64 // growth factor; ≥ 3 guarantees perpetual view changes
}

// Delay implements NetworkModel.
func (a AsyncAdversarial) Delay(_, _ model.ID, now Time, _ *rand.Rand) Time {
	f := a.Factor
	if f < 3 {
		f = 3
	}
	grow := Time(f) * now
	if grow > a.Delta {
		return grow
	}
	return a.Delta
}

// SlowBetweenGroups returns a Slow predicate that delays every message except
// those within a single group: the Fig. 2 schedule keeps intra-{1,2,3} and
// intra-{6,7,8} links fast and everything else slow.
func SlowBetweenGroups(groups ...model.IDSet) func(from, to model.ID) bool {
	return func(from, to model.ID) bool {
		for _, g := range groups {
			if g.Has(from) && g.Has(to) {
				return false
			}
		}
		return true
	}
}

// SlowTouching returns a Slow predicate marking every link that touches one
// of the given processes (used to slow a process without crashing it).
func SlowTouching(slow model.IDSet) func(from, to model.ID) bool {
	return func(from, to model.ID) bool {
		return slow.Has(from) || slow.Has(to)
	}
}
