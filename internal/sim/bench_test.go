package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEngine measures the simulator hot path — event-heap churn, message
// delivery, network-delay RNG draws and metrics accounting — with reactors
// that do no protocol work. events/s is the headline throughput number the
// BENCH_matrix.json trajectory tracks; run with -benchmem to see allocs/op on
// the pooled event path.
func BenchmarkEngine(b *testing.B) {
	cases := []struct {
		name string
		w    Workload
	}{
		{"ring-16", Workload{Procs: 16, Tokens: 16, Fanout: 1}},
		{"ring-64", Workload{Procs: 64, Tokens: 64, Fanout: 1}},
		{"broadcast-16", Workload{Procs: 16, Tokens: 4, Fanout: 3, Horizon: 20 * Millisecond}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			for i := 0; i < b.N; i++ {
				n, err := RunWorkload(tc.w)
				if err != nil {
					b.Fatal(err)
				}
				events = n
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(events), "events/op")
		})
	}
}

// BenchmarkEngineSend isolates the send+deliver cycle cost for one in-flight
// message at several payload sizes.
func BenchmarkEngineSend(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		size := size
		b.Run(fmt.Sprintf("payload-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			if _, err := RunWorkload(Workload{Procs: 2, Tokens: 1, PayloadBytes: size, Horizon: Time(b.N) * 10 * Millisecond}); err != nil {
				b.Fatal(err)
			}
		})
	}
}
