package sim

import (
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// TestEventPathAllocsSteadyState is the allocation-regression gate on the
// pooled event path (CI runs it in the benchmark smoke job): once the event
// heap and body pool are warm, a send→deliver cycle must allocate nothing —
// events live by value in the heap, bodies come from the free list, metrics
// are array-backed. Any regression (a stray boxing, a map on the hot path, a
// per-message copy) shows up as a nonzero allocation count here.
func TestEventPathAllocsSteadyState(t *testing.T) {
	e := NewEngine(Synchronous{Delta: 5 * Millisecond}, 7)
	peers := []model.ID{1, 2, 3, 4}
	for i, id := range peers {
		r := &workloadReactor{
			peers:   []model.ID{peers[(i+1)%len(peers)]},
			fanout:  1,
			tokens:  2,
			payload: []byte("steady-state-payload-0123456789abcdef"),
		}
		if err := e.AddProcess(id, r); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: grow the heap, the body pool and every reactor's state to
	// steady state.
	for i := 0; i < 5000; i++ {
		if !e.Step() {
			t.Fatal("queue drained during warmup")
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 50; i++ {
			if !e.Step() {
				t.Fatal("queue drained during measurement")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state event path allocates: %.2f allocs per 50 events (want 0)", avg)
	}
}

// TestPayloadInterning asserts broadcast fan-out shares one interned buffer:
// sending the same bytes to k peers must acquire a single body with k
// references, and differing bytes must not be shared.
func TestPayloadInterning(t *testing.T) {
	e := NewEngine(Synchronous{Delta: Millisecond}, 1)
	for id := model.ID(1); id <= 4; id++ {
		if err := e.AddProcess(id, &retainingReactor{keep: new([]byte)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := e.procs[1].ctx
	e.start()

	payload := []byte("broadcast-me")
	ctx.Send(2, payload)
	ctx.Send(3, payload)
	ctx.Send(4, payload)
	if e.lastBody == nil || e.lastBody.refs != 3 {
		t.Fatalf("broadcast of identical payloads not interned: lastBody=%+v", e.lastBody)
	}
	shared := e.lastBody
	ctx.Send(2, []byte("different"))
	if e.lastBody == shared {
		t.Fatal("differing payload wrongly shared the interned buffer")
	}

	// Delivering everything must recycle both buffers into the free list and
	// clear the intern slot (a recycled buffer must not satisfy intern hits).
	for e.Step() {
	}
	if e.lastBody != nil {
		t.Fatal("intern slot not cleared after its buffer was recycled")
	}
	if len(e.bodyFree) == 0 {
		t.Fatal("delivered bodies were not returned to the free list")
	}
}

// TestPayloadRecycledAfterDelivery pins the zero-copy delivery contract: the
// slice passed to Receive is reused for a later message, so a reactor that
// retains it observes different bytes afterwards. (Real reactors must copy —
// core.Node's pending buffers do — and this test documents why.)
func TestPayloadRecycledAfterDelivery(t *testing.T) {
	var retained []byte
	e := NewEngine(Synchronous{Delta: Millisecond}, 1)
	if err := e.AddProcess(1, &retainingReactor{keep: &retained}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddProcess(2, &sendTwoReactor{to: 1}); err != nil {
		t.Fatal(err)
	}
	e.Run(Second)
	if string(retained) == "first-payload-aaaa" {
		t.Fatal("payload buffer was not recycled; the pool is not reusing delivered bodies")
	}
}

// retainingReactor illegally keeps the first payload slice it receives.
type retainingReactor struct{ keep *[]byte }

func (r *retainingReactor) Init(Context) {}
func (r *retainingReactor) Receive(_ Context, _ model.ID, payload []byte) {
	if *r.keep == nil {
		*r.keep = payload
	}
}
func (r *retainingReactor) Timer(Context, uint64) {}

// sendTwoReactor sends two equal-length, different-content payloads.
type sendTwoReactor struct{ to model.ID }

func (s *sendTwoReactor) Init(ctx Context) {
	ctx.Send(s.to, []byte("first-payload-aaaa"))
	ctx.SetTimer(10*Millisecond, 1)
}
func (s *sendTwoReactor) Receive(Context, model.ID, []byte) {}
func (s *sendTwoReactor) Timer(ctx Context, tag uint64) {
	if tag == 1 {
		ctx.Send(s.to, []byte("later-payload-bbbb"))
	}
}
