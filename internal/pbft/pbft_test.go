package pbft

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
	"github.com/bftcup/bftcup/internal/wire"
)

// memberReactor drives one PBFT instance.
type memberReactor struct {
	inst *Instance
}

func (m *memberReactor) Init(ctx sim.Context) { m.inst.Start(ctx) }
func (m *memberReactor) Receive(ctx sim.Context, from model.ID, payload []byte) {
	m.inst.Handle(ctx, from, payload)
}
func (m *memberReactor) Timer(ctx sim.Context, tag uint64) { m.inst.HandleTimer(ctx, tag) }

type cluster struct {
	engine    *sim.Engine
	instances map[model.ID]*Instance
	decisions map[model.ID]model.Value
	correct   model.IDSet
}

// newCluster builds a committee of n members with the classic threshold
// g = ⌊(n-1)/3⌋ unless overridden, silent Byzantine members crashed.
func newCluster(t *testing.T, n, g, quorum int, silent model.IDSet, netmod sim.NetworkModel, seed int64) *cluster {
	t.Helper()
	ids := make([]model.ID, n)
	committee := model.NewIDSet()
	for i := range ids {
		ids[i] = model.ID(i + 1)
		committee.Add(ids[i])
	}
	signers, reg, err := cryptox.GenerateKeys(seed, ids)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{
		engine:    sim.NewEngine(netmod, seed),
		instances: make(map[model.ID]*Instance),
		decisions: make(map[model.ID]model.Value),
		correct:   committee.Diff(silent),
	}
	cfg := Config{Committee: committee, Quorum: quorum, F: g, BaseTimeout: 100 * sim.Millisecond}
	for _, id := range ids {
		id := id
		inst, err := New(signers[id], reg, cfg, model.Value(fmt.Sprintf("v%d", id)), func(v model.Value) {
			c.decisions[id] = v
		})
		if err != nil {
			t.Fatal(err)
		}
		c.instances[id] = inst
		if err := c.engine.AddProcess(id, &memberReactor{inst: inst}); err != nil {
			t.Fatal(err)
		}
		if silent.Has(id) {
			c.engine.Crash(id)
		}
	}
	return c
}

func (c *cluster) runToDecision(t *testing.T, horizon sim.Time) {
	t.Helper()
	ok := c.engine.RunUntil(func() bool {
		for id := range c.correct {
			if _, decided := c.decisions[id]; !decided {
				return false
			}
		}
		return true
	}, horizon)
	if !ok {
		t.Fatalf("not all correct members decided by %v: %d/%d decided",
			horizon, len(c.decisions), c.correct.Len())
	}
}

func (c *cluster) assertAgreement(t *testing.T) model.Value {
	t.Helper()
	var val model.Value
	first := true
	for id := range c.correct {
		v, ok := c.decisions[id]
		if !ok {
			continue
		}
		if first {
			val, first = v, false
		} else if !val.Equal(v) {
			t.Fatalf("agreement violated: %q vs %q", val, v)
		}
	}
	return val
}

func TestHappyPath(t *testing.T) {
	c := newCluster(t, 4, 1, 3, model.NewIDSet(), sim.Synchronous{Delta: 5 * sim.Millisecond}, 1)
	c.runToDecision(t, sim.Second)
	v := c.assertAgreement(t)
	// View-0 leader is p1 and proposes v1.
	if !v.Equal(model.Value("v1")) {
		t.Fatalf("decided %q, want the view-0 leader's proposal", v)
	}
	for _, inst := range c.instances {
		if inst.View() != 0 {
			t.Fatalf("happy path should decide in view 0, got view %d", inst.View())
		}
	}
}

func TestSilentLeaderTriggersViewChange(t *testing.T) {
	// p1 (view-0 leader) is silent: the committee must rotate to p2.
	c := newCluster(t, 4, 1, 3, model.NewIDSet(1), sim.Synchronous{Delta: 5 * sim.Millisecond}, 2)
	c.runToDecision(t, 5*sim.Second)
	v := c.assertAgreement(t)
	if !v.Equal(model.Value("v2")) {
		t.Fatalf("decided %q, want the view-1 leader's proposal v2", v)
	}
}

func TestTwoSilentOfSeven(t *testing.T) {
	// n = 7, f = 2, quorum 5: classic 3f+1 sizing.
	c := newCluster(t, 7, 2, 5, model.NewIDSet(3, 6), sim.Synchronous{Delta: 5 * sim.Millisecond}, 3)
	c.runToDecision(t, 5*sim.Second)
	c.assertAgreement(t)
}

func TestGeneralizedQuorumSmallCommittee(t *testing.T) {
	// The paper's sink committees can have |S| = 2f+1 correct + f Byzantine;
	// here |S| = 4, g = 1, quorum ⌈(4+1+1)/2⌉ = 3 with the Byzantine member
	// silent — exactly the Fig 1b committee shape.
	c := newCluster(t, 4, 1, 3, model.NewIDSet(4), sim.Synchronous{Delta: 5 * sim.Millisecond}, 4)
	c.runToDecision(t, 5*sim.Second)
	c.assertAgreement(t)
}

func TestPartialSynchronyChaoticStart(t *testing.T) {
	// Every link is slow before GST: timers fire, view changes pile up, and
	// the committee must still converge after GST.
	netmod := sim.PartialSync{
		GST:   2 * sim.Second,
		Delta: 5 * sim.Millisecond,
		Slow:  func(a, b model.ID) bool { return true },
	}
	c := newCluster(t, 4, 1, 3, model.NewIDSet(), netmod, 5)
	c.runToDecision(t, 20*sim.Second)
	c.assertAgreement(t)
}

func TestAsyncAdversarialNeverDecides(t *testing.T) {
	c := newCluster(t, 4, 1, 3, model.NewIDSet(), sim.AsyncAdversarial{Delta: sim.Second, Factor: 3}, 6)
	done := c.engine.RunUntil(func() bool { return len(c.decisions) > 0 }, 30*sim.Second)
	if done {
		t.Fatal("adversarial asynchrony should prevent any decision within the horizon")
	}
}

// equivocatingLeader is a Byzantine view-0 leader that proposes value A to
// half the committee and value B to the other half, then stays silent.
type equivocatingLeader struct {
	signer    cryptox.Signer
	committee []model.ID
	slot      uint64
}

func (b *equivocatingLeader) Init(ctx sim.Context) {
	a, bb := model.Value("evil-A"), model.Value("evil-B")
	for idx, id := range b.committee {
		if id == b.signer.ID() {
			continue
		}
		val := a
		if idx%2 == 1 {
			val = bb
		}
		d := DigestOf(val)
		m := &prePrepareMsg{Slot: b.slot, View: 0, Value: val,
			Sig: b.signer.Sign(canon(domPrePrepare, b.slot, 0, d))}
		ctx.Send(id, m.encode())
	}
}
func (b *equivocatingLeader) Receive(sim.Context, model.ID, []byte) {}
func (b *equivocatingLeader) Timer(sim.Context, uint64)             {}

func TestEquivocatingLeaderCannotSplitAgreement(t *testing.T) {
	ids := []model.ID{1, 2, 3, 4}
	committee := model.NewIDSet(ids...)
	signers, reg, err := cryptox.GenerateKeys(9, ids)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine(sim.Synchronous{Delta: 5 * sim.Millisecond}, 9)
	decisions := make(map[model.ID]model.Value)
	cfg := Config{Committee: committee, Quorum: 3, F: 1, BaseTimeout: 100 * sim.Millisecond}
	for _, id := range ids[1:] {
		id := id
		inst, err := New(signers[id], reg, cfg, model.Value(fmt.Sprintf("v%d", id)), func(v model.Value) {
			decisions[id] = v
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.AddProcess(id, &memberReactor{inst: inst}); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.AddProcess(1, &equivocatingLeader{signer: signers[1], committee: ids}); err != nil {
		t.Fatal(err)
	}
	ok := engine.RunUntil(func() bool { return len(decisions) == 3 }, 30*sim.Second)
	if !ok {
		t.Fatalf("correct members did not all decide: %v", decisions)
	}
	var val model.Value
	first := true
	for _, v := range decisions {
		if first {
			val, first = v, false
		} else if !val.Equal(v) {
			t.Fatalf("equivocation split agreement: %v", decisions)
		}
	}
	// Whatever is decided must be one of the proposals in play (Validity):
	// either an evil value endorsed by a quorum or a correct member's value.
	allowed := map[string]bool{"evil-A": true, "evil-B": true, "v2": true, "v3": true, "v4": true}
	if !allowed[string(val)] {
		t.Fatalf("decided value %q was never proposed", val)
	}
}

// Randomized schedules: any ≤ f silent subset, chaotic pre-GST delays,
// several seeds — Agreement, Validity and Termination must always hold.
func TestRandomizedSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(4) // 4..7
		g := (n - 1) / 3
		quorum := (n + g + 2) / 2
		silent := model.NewIDSet()
		for silent.Len() < rng.Intn(g+1) {
			silent.Add(model.ID(1 + rng.Intn(n)))
		}
		netmod := sim.PartialSync{
			GST:   sim.Time(rng.Int63n(int64(sim.Second))),
			Delta: 5 * sim.Millisecond,
			Slow: func(a, b model.ID) bool {
				return (uint64(a)+uint64(b))%2 == 0
			},
		}
		c := newCluster(t, n, g, quorum, silent, netmod, int64(trial))
		c.runToDecision(t, 60*sim.Second)
		v := c.assertAgreement(t)
		// Validity: the decided value is some member's proposal.
		okVal := false
		for i := 1; i <= n; i++ {
			if v.Equal(model.Value(fmt.Sprintf("v%d", i))) {
				okVal = true
			}
		}
		if !okVal {
			t.Fatalf("trial %d: decided %q was never proposed", trial, v)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	committee := model.NewIDSet(1, 2, 3, 4)
	cases := []Config{
		{Committee: model.NewIDSet(), Quorum: 1, BaseTimeout: 1},
		{Committee: committee, Quorum: 2, BaseTimeout: 1},        // ≤ n/2
		{Committee: committee, Quorum: 5, BaseTimeout: 1},        // > n
		{Committee: committee, Quorum: 3, F: -1, BaseTimeout: 1}, // bad F
		{Committee: committee, Quorum: 3, F: 4, BaseTimeout: 1},  // bad F
		{Committee: committee, Quorum: 3, F: 1, BaseTimeout: 0},  // bad timeout
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	good := Config{Committee: committee, Quorum: 3, F: 1, BaseTimeout: sim.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Non-member signer.
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(signers[9], reg, good, model.Value("x"), nil); err == nil {
		t.Error("non-member accepted")
	}
}

func TestPeekSlot(t *testing.T) {
	m := &voteMsg{Kind: wire.KindPrepare, Slot: 77, View: 1}
	slot, ok := PeekSlot(m.encode())
	if !ok || slot != 77 {
		t.Fatalf("PeekSlot = %d, %v", slot, ok)
	}
	if _, ok := PeekSlot([]byte{wire.KindGetPDs, 0}); ok {
		t.Fatal("PeekSlot accepted a non-PBFT payload")
	}
	if _, ok := PeekSlot(nil); ok {
		t.Fatal("PeekSlot accepted nil")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	signers, _, err := cryptox.GenerateKeys(1, []model.ID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	pp := &prePrepareMsg{Slot: 1, View: 2, Value: model.Value("val"), Sig: signers[1].Sign([]byte("x"))}
	if got, ok := decodePrePrepare(pp.encode()); !ok || got.View != 2 || !got.Value.Equal(pp.Value) {
		t.Fatalf("preprepare round-trip: %+v %v", got, ok)
	}
	cert := &PreparedCert{View: 3, Value: model.Value("v"), Sigs: []sigEntry{{ID: 1, Sig: []byte("s")}}}
	vc := &viewChangeMsg{Slot: 1, NewView: 4, Prepared: cert, Sig: []byte("sig")}
	got, ok := decodeViewChange(vc.encode())
	if !ok || got.NewView != 4 || got.Prepared == nil || got.Prepared.View != 3 {
		t.Fatalf("viewchange round-trip: %+v %v", got, ok)
	}
	vcNil := &viewChangeMsg{Slot: 1, NewView: 4, Sig: []byte("sig")}
	if got, ok := decodeViewChange(vcNil.encode()); !ok || got.Prepared != nil {
		t.Fatalf("nil-cert viewchange round-trip: %+v %v", got, ok)
	}
	nv := &newViewMsg{Slot: 1, View: 4, VCs: []viewChangeMsg{*vc}, VCFrom: []model.ID{2}, Value: model.Value("v"), Sig: []byte("s")}
	if got, ok := decodeNewView(nv.encode()); !ok || len(got.VCs) != 1 || got.VCFrom[0] != 2 {
		t.Fatalf("newview round-trip: %+v %v", got, ok)
	}
	note := &decideNoteMsg{Slot: 1, Cert: CommitCert{View: 5, Value: model.Value("v"), Sigs: []sigEntry{{ID: 3, Sig: []byte("c")}}}}
	if got, ok := decodeDecideNote(note.encode()); !ok || got.Cert.View != 5 {
		t.Fatalf("decidenote round-trip: %+v %v", got, ok)
	}
	// Garbage rejected.
	if _, ok := decodePrePrepare([]byte{wire.KindPrePrepare, 0xFF}); ok {
		t.Fatal("garbage preprepare accepted")
	}
	if _, ok := decodeVote([]byte{wire.KindPrepare, 1, 2}); ok {
		t.Fatal("garbage vote accepted")
	}
}

func TestCertValidation(t *testing.T) {
	ids := []model.ID{1, 2, 3, 4}
	committee := model.NewIDSet(ids...)
	signers, reg, err := cryptox.GenerateKeys(2, ids)
	if err != nil {
		t.Fatal(err)
	}
	val := model.Value("v")
	d := DigestOf(val)
	mk := func(members ...model.ID) *PreparedCert {
		c := &PreparedCert{View: 1, Value: val}
		for _, id := range members {
			c.Sigs = append(c.Sigs, sigEntry{ID: id, Sig: signers[id].Sign(canon(domPrepare, 0, 1, d))})
		}
		return c
	}
	if !mk(1, 2, 3).valid(0, committee, 3, reg) {
		t.Fatal("valid cert rejected")
	}
	if mk(1, 2).valid(0, committee, 3, reg) {
		t.Fatal("sub-quorum cert accepted")
	}
	if mk(1, 2, 2).valid(0, committee, 3, reg) {
		t.Fatal("duplicate-signer cert accepted")
	}
	bad := mk(1, 2, 3)
	bad.Sigs[0].Sig = []byte("junk")
	if bad.valid(0, committee, 3, reg) {
		t.Fatal("bad-signature cert accepted")
	}
	outsider := mk(1, 2, 3)
	outsider.Sigs[0].ID = 9
	if outsider.valid(0, committee, 3, reg) {
		t.Fatal("non-member cert accepted")
	}
	var nilCert *PreparedCert
	if nilCert.valid(0, committee, 3, reg) {
		t.Fatal("nil cert accepted")
	}
}
