package pbft

import (
	"fmt"
	"sort"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
	"github.com/bftcup/bftcup/internal/wire"
)

// TimerTagBase namespaces PBFT timers within a reactor; bits 32..39 carry
// the slot and the low 32 bits carry the view.
const TimerTagBase uint64 = 3 << 40

// timerTag packs (slot, view) into a tag below the next namespace.
func timerTag(slot, view uint64) uint64 {
	return TimerTagBase | ((slot & 0xFF) << 32) | (view & 0xFFFFFFFF)
}

// SlotOfTag extracts the slot from a PBFT timer tag (ok=false for foreign
// tags).
func SlotOfTag(tag uint64) (uint64, bool) {
	if tag < TimerTagBase || tag >= TimerTagBase+(1<<40) {
		return 0, false
	}
	return (tag >> 32) & 0xFF, true
}

// maxTimeoutShift caps exponential timeout growth. At the default 200ms base
// the cap is effectively "give up doubling after a day" — fine when messages
// always arrive, useless under sustained loss, where a handful of lost
// proposals pushes the retry interval past any practical horizon.
const maxTimeoutShift = 20

// hardenedMaxShift is the cap under Config.Hardened: view-change retries
// plateau at base<<6 (12.8s at the default base) so a committee suffering
// sustained message loss keeps retrying at a bounded interval instead of
// backing off forever. Documented behavior under sustained loss: liveness
// degrades to "retry every base<<6 until the loss abates", never to silence.
const hardenedMaxShift = 6

// Config describes one committee instance.
type Config struct {
	// Slot addresses the instance (0 for single-shot consensus).
	Slot uint64
	// Committee is the member set S returned by the Sink/Core algorithm.
	Committee model.IDSet
	// Quorum is ⌈(|S|+g+1)/2⌉; see Candidate.QuorumSize.
	Quorum int
	// F is the assumed fault bound g for this committee; f+1 distinct
	// view-change senders guarantee at least one is correct (catch-up rule).
	F int
	// BaseTimeout is the view-0 view-change timeout; it doubles per view.
	BaseTimeout rt.Time
	// Hardened enables the loss-tolerant profile for chaos runs: the
	// timeout doubling caps at hardenedMaxShift instead of maxTimeoutShift,
	// and a decided member answers further protocol traffic for its slot
	// with its decide certificate — without it, a member that decides and
	// goes quiet can strand peers who lost the original DecideNote, with
	// fewer than a quorum of live participants to re-decide. Off (the
	// default) the message sequence is byte-identical to the seed protocol.
	Hardened bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	n := c.Committee.Len()
	if n == 0 {
		return fmt.Errorf("pbft: empty committee")
	}
	if c.Quorum <= n/2 || c.Quorum > n {
		return fmt.Errorf("pbft: quorum %d out of range for committee of %d", c.Quorum, n)
	}
	if c.F < 0 || c.F >= n {
		return fmt.Errorf("pbft: fault bound %d out of range for committee of %d", c.F, n)
	}
	if c.BaseTimeout <= 0 {
		return fmt.Errorf("pbft: non-positive timeout")
	}
	return nil
}

// Instance is one slot of committee consensus for one process. It is not
// safe for concurrent use; the reactor that owns it serializes all calls.
type Instance struct {
	self     model.ID
	signer   cryptox.Signer
	verifier cryptox.Verifier
	cfg      Config
	members  []model.ID // sorted

	view     uint64
	proposal model.Value            // own initial proposal
	accepted map[uint64]model.Value // view → value accepted for that view (from pre-prepare/new-view)
	sentPrep map[uint64]bool        // views in which we already sent Prepare
	sentComm map[uint64]bool
	prepares map[uint64]map[Digest]map[model.ID][]byte
	commits  map[uint64]map[Digest]map[model.ID][]byte
	vcs      map[uint64]map[model.ID]*viewChangeMsg
	sentVC   map[uint64]bool
	sentNV   map[uint64]bool
	prepared *PreparedCert

	decided  bool
	decision model.Value
	// noteBytes is the encoded DecideNote retained after deciding
	// (hardened mode replays it to members still working the slot).
	noteBytes []byte
	onDecide  func(model.Value)
	started   bool
}

// New creates an instance. onDecide fires exactly once; it may be nil.
func New(signer cryptox.Signer, verifier cryptox.Verifier, cfg Config, proposal model.Value, onDecide func(model.Value)) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Committee.Has(signer.ID()) {
		return nil, fmt.Errorf("pbft: %v is not in committee %v", signer.ID(), cfg.Committee)
	}
	return &Instance{
		self:     signer.ID(),
		signer:   signer,
		verifier: verifier,
		cfg:      cfg,
		members:  cfg.Committee.Sorted(),
		proposal: proposal,
		accepted: make(map[uint64]model.Value),
		sentPrep: make(map[uint64]bool),
		sentComm: make(map[uint64]bool),
		prepares: make(map[uint64]map[Digest]map[model.ID][]byte),
		commits:  make(map[uint64]map[Digest]map[model.ID][]byte),
		vcs:      make(map[uint64]map[model.ID]*viewChangeMsg),
		sentVC:   make(map[uint64]bool),
		sentNV:   make(map[uint64]bool),
		onDecide: onDecide,
	}, nil
}

// Decided returns the decision, if reached.
func (i *Instance) Decided() (model.Value, bool) { return i.decision, i.decided }

// View returns the current view (for tests and metrics).
func (i *Instance) View() uint64 { return i.view }

// Leader returns the leader of a view: round-robin over the sorted committee.
func (i *Instance) Leader(view uint64) model.ID {
	return i.members[int(view%uint64(len(i.members)))]
}

// Start begins the protocol: the view-0 leader proposes its own value.
func (i *Instance) Start(ctx rt.Context) {
	if i.started {
		return
	}
	i.started = true
	if i.Leader(0) == i.self {
		i.propose(ctx, 0, i.proposal)
	}
	i.armTimer(ctx)
}

func (i *Instance) propose(ctx rt.Context, view uint64, value model.Value) {
	d := DigestOf(value)
	msg := &prePrepareMsg{Slot: i.cfg.Slot, View: view, Value: value,
		Sig: i.signer.Sign(canon(domPrePrepare, i.cfg.Slot, view, d))}
	i.broadcast(ctx, msg.encode())
	// The leader accepts its own proposal and prepares it.
	i.acceptProposal(ctx, view, value)
}

func (i *Instance) broadcast(ctx rt.Context, payload []byte) {
	for _, m := range i.members {
		if m != i.self {
			ctx.Send(m, payload)
		}
	}
}

func (i *Instance) armTimer(ctx rt.Context) {
	shift := i.view
	lim := uint64(maxTimeoutShift)
	if i.cfg.Hardened {
		lim = hardenedMaxShift
	}
	if shift > lim {
		shift = lim
	}
	ctx.SetTimer(i.cfg.BaseTimeout<<shift, timerTag(i.cfg.Slot, i.view))
}

// Resume re-arms the current view's timer after a crash restart with
// persisted state: pending timers died with the previous incarnation, and
// without a live timer an undecided instance would wait forever for traffic
// it can no longer solicit. The rest of the state machine is message-driven
// and resumes on its own.
func (i *Instance) Resume(ctx rt.Context) {
	if !i.started || i.decided {
		return
	}
	i.armTimer(ctx)
}

// HandleTimer processes a view timer; it reports whether the tag was ours.
func (i *Instance) HandleTimer(ctx rt.Context, tag uint64) bool {
	slot, ok := SlotOfTag(tag)
	if !ok {
		return false
	}
	if slot != i.cfg.Slot&0xFF {
		return false
	}
	view := tag & 0xFFFFFFFF
	if view != i.view&0xFFFFFFFF || i.decided || !i.started {
		return true // stale timer
	}
	i.startViewChange(ctx, i.view+1)
	return true
}

func (i *Instance) startViewChange(ctx rt.Context, newView uint64) {
	if newView <= i.view && i.sentVC[newView] {
		return
	}
	if newView > i.view {
		i.view = newView
	}
	if i.sentVC[i.view] {
		return
	}
	i.sentVC[i.view] = true
	vc := &viewChangeMsg{Slot: i.cfg.Slot, NewView: i.view, Prepared: i.prepared}
	vc.Sig = i.signer.Sign(vcCanon(i.cfg.Slot, i.view, i.prepared))
	i.broadcast(ctx, vc.encode())
	// Record our own view change (the new leader might be us).
	i.recordVC(ctx, i.self, vc)
	i.armTimer(ctx)
}

// Handle processes a PBFT payload for this slot; it reports whether the
// payload was consumed.
func (i *Instance) Handle(ctx rt.Context, from model.ID, payload []byte) bool {
	if len(payload) < 2 || i.decided || !i.started {
		// Decided instances ignore everything (DecideNote already sent) —
		// except that in hardened mode a decided member answers live
		// protocol traffic from a committee peer with its decide
		// certificate: the peer is visibly still working the slot, so the
		// original note (or its loss-recovery window) did not reach it.
		// DecideNote itself never triggers a reply, so replies cannot loop.
		if len(payload) >= 1 {
			switch payload[0] {
			case wire.KindPrePrepare, wire.KindPrepare, wire.KindCommit,
				wire.KindViewChange, wire.KindNewView:
				if i.decided && i.cfg.Hardened && i.noteBytes != nil && i.cfg.Committee.Has(from) {
					ctx.Send(from, i.noteBytes)
				}
				return true
			case wire.KindDecideNote:
				return true
			}
		}
		return false
	}
	if !i.cfg.Committee.Has(from) {
		switch payload[0] {
		case wire.KindPrePrepare, wire.KindPrepare, wire.KindCommit,
			wire.KindViewChange, wire.KindNewView, wire.KindDecideNote:
			return true // PBFT traffic from non-members is dropped
		}
		return false
	}
	switch payload[0] {
	case wire.KindPrePrepare:
		if m, ok := decodePrePrepare(payload); ok && m.Slot == i.cfg.Slot {
			i.onPrePrepare(ctx, from, m)
		}
		return true
	case wire.KindPrepare, wire.KindCommit:
		if m, ok := decodeVote(payload); ok && m.Slot == i.cfg.Slot {
			i.onVote(ctx, from, m)
		}
		return true
	case wire.KindViewChange:
		if m, ok := decodeViewChange(payload); ok && m.Slot == i.cfg.Slot {
			i.onViewChange(ctx, from, m)
		}
		return true
	case wire.KindNewView:
		if m, ok := decodeNewView(payload); ok && m.Slot == i.cfg.Slot {
			i.onNewView(ctx, from, m)
		}
		return true
	case wire.KindDecideNote:
		if m, ok := decodeDecideNote(payload); ok && m.Slot == i.cfg.Slot {
			i.onDecideNote(ctx, m)
		}
		return true
	default:
		return false
	}
}

func (i *Instance) onPrePrepare(ctx rt.Context, from model.ID, m *prePrepareMsg) {
	if m.View != i.view || from != i.Leader(m.View) {
		return
	}
	d := DigestOf(m.Value)
	if !i.verifier.Verify(from, canon(domPrePrepare, i.cfg.Slot, m.View, d), m.Sig) {
		return
	}
	if _, have := i.accepted[m.View]; have {
		return // first proposal wins; equivocation cannot gather two quorums
	}
	i.acceptProposal(ctx, m.View, m.Value)
}

// acceptProposal records the value bound to a view and broadcasts Prepare.
func (i *Instance) acceptProposal(ctx rt.Context, view uint64, value model.Value) {
	if _, have := i.accepted[view]; have {
		return
	}
	i.accepted[view] = value
	if i.sentPrep[view] {
		return
	}
	i.sentPrep[view] = true
	d := DigestOf(value)
	sig := i.signer.Sign(canon(domPrepare, i.cfg.Slot, view, d))
	vote := &voteMsg{Kind: wire.KindPrepare, Slot: i.cfg.Slot, View: view, Digest: d, Sig: sig}
	i.broadcast(ctx, vote.encode())
	i.recordVote(ctx, i.self, &voteMsg{Kind: wire.KindPrepare, Slot: i.cfg.Slot, View: view, Digest: d, Sig: sig})
}

func (i *Instance) onVote(ctx rt.Context, from model.ID, m *voteMsg) {
	dom := domPrepare
	if m.Kind == wire.KindCommit {
		dom = domCommit
	}
	if !i.verifier.Verify(from, canon(dom, i.cfg.Slot, m.View, m.Digest), m.Sig) {
		return
	}
	i.recordVote(ctx, from, m)
}

func (i *Instance) recordVote(ctx rt.Context, from model.ID, m *voteMsg) {
	table := i.prepares
	if m.Kind == wire.KindCommit {
		table = i.commits
	}
	byDigest, ok := table[m.View]
	if !ok {
		byDigest = make(map[Digest]map[model.ID][]byte)
		table[m.View] = byDigest
	}
	byID, ok := byDigest[m.Digest]
	if !ok {
		byID = make(map[model.ID][]byte)
		byDigest[m.Digest] = byID
	}
	if _, dup := byID[from]; dup {
		return
	}
	byID[from] = m.Sig
	i.checkProgress(ctx, m.View, m.Digest)
}

// checkProgress fires the prepared → commit and committed → decide
// transitions for the current view.
func (i *Instance) checkProgress(ctx rt.Context, view uint64, d Digest) {
	if view != i.view || i.decided {
		return
	}
	value, haveValue := i.accepted[view]
	if !haveValue || DigestOf(value) != d {
		return
	}
	preps := i.prepares[view][d]
	if len(preps) >= i.cfg.Quorum && !i.sentComm[view] {
		i.sentComm[view] = true
		// Build/refresh the prepared certificate carried by view changes.
		cert := &PreparedCert{View: view, Value: value}
		for _, id := range sortedIDs(preps) {
			cert.Sigs = append(cert.Sigs, sigEntry{ID: id, Sig: preps[id]})
		}
		if i.prepared == nil || cert.View > i.prepared.View {
			i.prepared = cert
		}
		sig := i.signer.Sign(canon(domCommit, i.cfg.Slot, view, d))
		vote := &voteMsg{Kind: wire.KindCommit, Slot: i.cfg.Slot, View: view, Digest: d, Sig: sig}
		i.broadcast(ctx, vote.encode())
		i.recordVote(ctx, i.self, vote)
		return
	}
	comms := i.commits[view][d]
	if len(comms) >= i.cfg.Quorum && i.sentComm[view] {
		cert := CommitCert{View: view, Value: value}
		for _, id := range sortedIDs(comms) {
			cert.Sigs = append(cert.Sigs, sigEntry{ID: id, Sig: comms[id]})
		}
		i.decide(ctx, value, &cert)
	}
}

func sortedIDs[T any](m map[model.ID]T) []model.ID {
	out := make([]model.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func (i *Instance) decide(ctx rt.Context, value model.Value, cert *CommitCert) {
	if i.decided {
		return
	}
	i.decided = true
	i.decision = value
	if cert != nil {
		note := &decideNoteMsg{Slot: i.cfg.Slot, Cert: *cert}
		i.noteBytes = note.encode()
		i.broadcast(ctx, i.noteBytes)
	}
	if i.onDecide != nil {
		i.onDecide(value)
	}
}

func (i *Instance) onViewChange(ctx rt.Context, from model.ID, m *viewChangeMsg) {
	if !i.verifier.Verify(from, vcCanon(i.cfg.Slot, m.NewView, m.Prepared), m.Sig) {
		return
	}
	if m.Prepared != nil && !m.Prepared.valid(i.cfg.Slot, i.cfg.Committee, i.cfg.Quorum, i.verifier) {
		return
	}
	i.recordVC(ctx, from, m)
}

func (i *Instance) recordVC(ctx rt.Context, from model.ID, m *viewChangeMsg) {
	byID, ok := i.vcs[m.NewView]
	if !ok {
		byID = make(map[model.ID]*viewChangeMsg)
		i.vcs[m.NewView] = byID
	}
	if _, dup := byID[from]; dup {
		return
	}
	byID[from] = m

	// Catch-up: if f+1 distinct members (hence ≥ one correct) are past us,
	// join the lowest such view — the classic PBFT liveness rule.
	minHigher := uint64(0)
	ahead := model.NewIDSet()
	for v, set := range i.vcs {
		if v > i.view {
			for id := range set {
				ahead.Add(id)
			}
			if minHigher == 0 || v < minHigher {
				minHigher = v
			}
		}
	}
	if ahead.Len() >= i.cfg.F+1 && minHigher > i.view {
		i.startViewChange(ctx, minHigher)
	}

	// New leader: install the view once a quorum of view changes arrives.
	if len(i.vcs[m.NewView]) >= i.cfg.Quorum && i.Leader(m.NewView) == i.self &&
		m.NewView >= i.view && !i.sentNV[m.NewView] {
		i.sentNV[m.NewView] = true
		i.view = m.NewView
		value := i.chooseValue(m.NewView)
		nv := &newViewMsg{Slot: i.cfg.Slot, View: m.NewView, Value: value}
		for _, id := range sortedIDs(i.vcs[m.NewView]) {
			nv.VCFrom = append(nv.VCFrom, id)
			nv.VCs = append(nv.VCs, *i.vcs[m.NewView][id])
		}
		nv.Sig = i.signer.Sign(canon(domNewView, i.cfg.Slot, m.NewView, DigestOf(value)))
		i.broadcast(ctx, nv.encode())
		i.acceptProposal(ctx, m.NewView, value)
		i.armTimer(ctx)
	}
}

// chooseValue picks the value a new leader must propose: the value of the
// highest-view prepared certificate among the quorum's view changes, or its
// own proposal when none prepared.
func (i *Instance) chooseValue(view uint64) model.Value {
	var best *PreparedCert
	for _, id := range sortedIDs(i.vcs[view]) {
		if c := i.vcs[view][id].Prepared; c != nil {
			if best == nil || c.View > best.View {
				best = c
			}
		}
	}
	if best != nil {
		return best.Value
	}
	return i.proposal
}

// validNewViewValue recomputes the leader's mandatory choice from the bundle.
func validNewViewValue(bundle []viewChangeMsg, value model.Value) bool {
	var best *PreparedCert
	for idx := range bundle {
		if c := bundle[idx].Prepared; c != nil {
			if best == nil || c.View > best.View {
				best = c
			}
		}
	}
	if best != nil {
		return DigestOf(best.Value) == DigestOf(value)
	}
	return true // no prepared cert: the leader may propose anything
}

func (i *Instance) onNewView(ctx rt.Context, from model.ID, m *newViewMsg) {
	if m.View < i.view || from != i.Leader(m.View) {
		return
	}
	if !i.verifier.Verify(from, canon(domNewView, i.cfg.Slot, m.View, DigestOf(m.Value)), m.Sig) {
		return
	}
	if len(m.VCs) < i.cfg.Quorum || len(m.VCs) != len(m.VCFrom) {
		return
	}
	seen := model.NewIDSet()
	for idx := range m.VCs {
		vc := m.VCs[idx]
		sender := m.VCFrom[idx]
		if vc.NewView != m.View || !i.cfg.Committee.Has(sender) || !seen.Add(sender) {
			return
		}
		if !i.verifier.Verify(sender, vcCanon(i.cfg.Slot, vc.NewView, vc.Prepared), vc.Sig) {
			return
		}
		if vc.Prepared != nil && !vc.Prepared.valid(i.cfg.Slot, i.cfg.Committee, i.cfg.Quorum, i.verifier) {
			return
		}
	}
	if !validNewViewValue(m.VCs, m.Value) {
		return
	}
	i.view = m.View
	i.acceptProposal(ctx, m.View, m.Value)
	i.armTimer(ctx)
	// Votes for this view may have arrived before we installed it.
	i.replayVotes(ctx, m.View)
}

// replayVotes re-evaluates quorum conditions after a late view installation.
func (i *Instance) replayVotes(ctx rt.Context, view uint64) {
	value, ok := i.accepted[view]
	if !ok {
		return
	}
	i.checkProgress(ctx, view, DigestOf(value))
}

func (i *Instance) onDecideNote(ctx rt.Context, m *decideNoteMsg) {
	if !m.Cert.valid(i.cfg.Slot, i.cfg.Committee, i.cfg.Quorum, i.verifier) {
		return
	}
	if i.cfg.Hardened && i.noteBytes == nil {
		// Retain the certificate so this member can in turn answer peers
		// still working the slot.
		i.noteBytes = (&decideNoteMsg{Slot: i.cfg.Slot, Cert: m.Cert}).encode()
	}
	i.decide(ctx, m.Cert.Value, nil) // no re-broadcast: sender already notified all
}
