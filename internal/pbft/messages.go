package pbft

import (
	"crypto/sha256"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/wire"
)

// Digest is the SHA-256 digest of a proposal value.
type Digest [32]byte

// DigestOf hashes a value.
func DigestOf(v model.Value) Digest { return sha256.Sum256(v) }

// Signing domains (domain separation inside the 'B' namespace).
const (
	domPrePrepare byte = 1
	domPrepare    byte = 2
	domCommit     byte = 3
	domViewChange byte = 4
	domNewView    byte = 5
)

func canon(dom byte, slot, view uint64, d Digest) []byte {
	w := wire.NewWriter()
	w.Byte('B')
	w.Byte(dom)
	w.Uvarint(slot)
	w.Uvarint(view)
	w.BytesField(d[:])
	return w.Bytes()
}

// sigEntry is one (signer, signature) pair inside a certificate.
type sigEntry struct {
	ID  model.ID
	Sig []byte
}

func marshalSigs(w *wire.Writer, sigs []sigEntry) {
	w.Uvarint(uint64(len(sigs)))
	for _, s := range sigs {
		w.ID(s.ID)
		w.BytesField(s.Sig)
	}
}

func unmarshalSigs(r *wire.Reader) []sigEntry {
	n := r.Uvarint()
	if r.Err() != nil || n > 4096 {
		return nil
	}
	out := make([]sigEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, sigEntry{ID: r.ID(), Sig: r.BytesField()})
	}
	return out
}

// PreparedCert proves that a quorum endorsed Value at View: it carries ≥ Q
// prepare signatures from distinct committee members. It is what a view
// change carries forward so no decided value can be lost.
type PreparedCert struct {
	// View is the view the value prepared in; Value is the prepared value.
	View  uint64
	Value model.Value
	// Sigs holds the quorum's prepare signatures, keyed by signer.
	Sigs []sigEntry
}

// validCert checks a prepared certificate against a committee and quorum.
func (c *PreparedCert) valid(slot uint64, committee model.IDSet, quorum int, v cryptox.Verifier) bool {
	if c == nil || len(c.Sigs) < quorum {
		return false
	}
	msg := canon(domPrepare, slot, c.View, DigestOf(c.Value))
	return validSigs(c.Sigs, msg, committee, v)
}

// validSigs checks a certificate's signature set: every signer is a distinct
// committee member and every signature verifies. The whole set goes through
// one cryptox.VerifyBatch call, so the registry memo is consulted once per
// certificate instead of once per signature — the verdict is the conjunction
// per-signature Verify would compute.
func validSigs(sigs []sigEntry, msg []byte, committee model.IDSet, v cryptox.Verifier) bool {
	seen := model.NewIDSet()
	reqs := make([]cryptox.BatchRequest, len(sigs))
	for i, s := range sigs {
		if !committee.Has(s.ID) || !seen.Add(s.ID) {
			return false
		}
		reqs[i] = cryptox.BatchRequest{Signer: s.ID, Msg: msg, Sig: s.Sig}
	}
	for _, ok := range cryptox.VerifyBatch(v, reqs) {
		if !ok {
			return false
		}
	}
	return true
}

func (c *PreparedCert) marshal(w *wire.Writer) {
	if c == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Uvarint(c.View)
	w.BytesField(c.Value)
	marshalSigs(w, c.Sigs)
}

func unmarshalCert(r *wire.Reader) *PreparedCert {
	if !r.Bool() {
		return nil
	}
	c := &PreparedCert{View: r.Uvarint(), Value: r.BytesField()}
	c.Sigs = unmarshalSigs(r)
	return c
}

// CommitCert proves a decision: ≥ Q commit signatures over (slot, view,
// digest). Broadcast in a DecideNote so laggards decide without re-running
// the protocol.
type CommitCert struct {
	// View is the view the value committed in; Value is the decided value.
	View  uint64
	Value model.Value
	// Sigs holds the quorum's commit signatures, keyed by signer.
	Sigs []sigEntry
}

func (c *CommitCert) valid(slot uint64, committee model.IDSet, quorum int, v cryptox.Verifier) bool {
	if c == nil || len(c.Sigs) < quorum {
		return false
	}
	msg := canon(domCommit, slot, c.View, DigestOf(c.Value))
	return validSigs(c.Sigs, msg, committee, v)
}

// --- wire formats -----------------------------------------------------------

// prePrepareMsg: leader's proposal for a view.
type prePrepareMsg struct {
	Slot  uint64
	View  uint64
	Value model.Value
	Sig   []byte // leader's signature over canon(domPrePrepare, slot, view, digest)
}

func (m *prePrepareMsg) encode() []byte {
	w := wire.NewWriter()
	w.Byte(wire.KindPrePrepare)
	w.Uvarint(m.Slot)
	w.Uvarint(m.View)
	w.BytesField(m.Value)
	w.BytesField(m.Sig)
	return w.Bytes()
}

func decodePrePrepare(b []byte) (*prePrepareMsg, bool) {
	r := wire.NewReader(b[1:])
	m := &prePrepareMsg{Slot: r.Uvarint(), View: r.Uvarint(), Value: r.BytesField(), Sig: r.BytesField()}
	return m, r.Done() == nil
}

// voteMsg covers Prepare and Commit (same shape, different kind/domain).
type voteMsg struct {
	Kind   byte // wire.KindPrepare or wire.KindCommit
	Slot   uint64
	View   uint64
	Digest Digest
	Sig    []byte
}

func (m *voteMsg) encode() []byte {
	w := wire.NewWriter()
	w.Byte(m.Kind)
	w.Uvarint(m.Slot)
	w.Uvarint(m.View)
	w.BytesField(m.Digest[:])
	w.BytesField(m.Sig)
	return w.Bytes()
}

func decodeVote(b []byte) (*voteMsg, bool) {
	r := wire.NewReader(b[1:])
	m := &voteMsg{Kind: b[0], Slot: r.Uvarint(), View: r.Uvarint()}
	d := r.BytesField()
	if len(d) != len(m.Digest) {
		return nil, false
	}
	copy(m.Digest[:], d)
	m.Sig = r.BytesField()
	return m, r.Done() == nil
}

// viewChangeMsg asks to move to NewView, carrying the sender's highest
// prepared certificate (nil if it never prepared).
type viewChangeMsg struct {
	Slot     uint64
	NewView  uint64
	Prepared *PreparedCert
	Sig      []byte
}

func vcCanon(slot, newView uint64, prepared *PreparedCert) []byte {
	w := wire.NewWriter()
	w.Byte('B')
	w.Byte(domViewChange)
	w.Uvarint(slot)
	w.Uvarint(newView)
	prepared.marshal(w)
	return w.Bytes()
}

func (m *viewChangeMsg) encode() []byte {
	w := wire.NewWriter()
	w.Byte(wire.KindViewChange)
	w.Uvarint(m.Slot)
	w.Uvarint(m.NewView)
	m.Prepared.marshal(w)
	w.BytesField(m.Sig)
	return w.Bytes()
}

func decodeViewChange(b []byte) (*viewChangeMsg, bool) {
	r := wire.NewReader(b[1:])
	m := &viewChangeMsg{Slot: r.Uvarint(), NewView: r.Uvarint()}
	m.Prepared = unmarshalCert(r)
	m.Sig = r.BytesField()
	return m, r.Done() == nil
}

// newViewMsg is the new leader's view installation: Q view changes plus the
// value it (re-)proposes.
type newViewMsg struct {
	Slot   uint64
	View   uint64
	VCs    []viewChangeMsg
	VCFrom []model.ID
	Value  model.Value
	Sig    []byte // leader's signature over canon(domNewView, slot, view, digest)
}

func (m *newViewMsg) encode() []byte {
	w := wire.NewWriter()
	w.Byte(wire.KindNewView)
	w.Uvarint(m.Slot)
	w.Uvarint(m.View)
	w.Uvarint(uint64(len(m.VCs)))
	for i := range m.VCs {
		w.ID(m.VCFrom[i])
		inner := m.VCs[i].encode()
		w.BytesField(inner)
	}
	w.BytesField(m.Value)
	w.BytesField(m.Sig)
	return w.Bytes()
}

func decodeNewView(b []byte) (*newViewMsg, bool) {
	r := wire.NewReader(b[1:])
	m := &newViewMsg{Slot: r.Uvarint(), View: r.Uvarint()}
	n := r.Uvarint()
	if r.Err() != nil || n > 4096 {
		return nil, false
	}
	for i := uint64(0); i < n; i++ {
		m.VCFrom = append(m.VCFrom, r.ID())
		inner := r.BytesField()
		if r.Err() != nil || len(inner) == 0 || inner[0] != wire.KindViewChange {
			return nil, false
		}
		vc, ok := decodeViewChange(inner)
		if !ok {
			return nil, false
		}
		m.VCs = append(m.VCs, *vc)
	}
	m.Value = r.BytesField()
	m.Sig = r.BytesField()
	return m, r.Done() == nil
}

// decideNoteMsg carries a commit certificate so that any member can adopt the
// decision directly.
type decideNoteMsg struct {
	Slot uint64
	Cert CommitCert
}

func (m *decideNoteMsg) encode() []byte {
	w := wire.NewWriter()
	w.Byte(wire.KindDecideNote)
	w.Uvarint(m.Slot)
	w.Uvarint(m.Cert.View)
	w.BytesField(m.Cert.Value)
	marshalSigs(w, m.Cert.Sigs)
	return w.Bytes()
}

func decodeDecideNote(b []byte) (*decideNoteMsg, bool) {
	r := wire.NewReader(b[1:])
	m := &decideNoteMsg{Slot: r.Uvarint()}
	m.Cert.View = r.Uvarint()
	m.Cert.Value = r.BytesField()
	m.Cert.Sigs = unmarshalSigs(r)
	return m, r.Done() == nil
}

// PeekSlot extracts the slot from any PBFT payload so a multi-slot node can
// route it; ok is false for non-PBFT payloads.
func PeekSlot(payload []byte) (uint64, bool) {
	if len(payload) < 2 {
		return 0, false
	}
	switch payload[0] {
	case wire.KindPrePrepare, wire.KindPrepare, wire.KindCommit,
		wire.KindViewChange, wire.KindNewView, wire.KindDecideNote:
		r := wire.NewReader(payload[1:])
		s := r.Uvarint()
		if r.Err() != nil {
			return 0, false
		}
		return s, true
	default:
		return 0, false
	}
}
