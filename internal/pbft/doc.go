// Package pbft implements the committee consensus the paper delegates to
// "a traditional consensus protocol, e.g., PBFT [22]": a signed, single-shot
// PBFT with view changes, generalized to the quorum size ⌈(n+f+1)/2⌉ that
// [11] proves necessary for sink committees (n = 3f+1 recovers the classic
// 2f+1). Instances are slot-addressed so multi-decision chains can be built
// on top (see examples/committee).
//
// Every message is signed under a domain-separated namespace and carries its
// slot, so one core.Node can demultiplex traffic for many chained instances
// (pbft.PeekSlot) without decoding whole messages.
package pbft
