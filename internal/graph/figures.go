package graph

import "github.com/bftcup/bftcup/internal/model"

// Figure is a reconstructed knowledge connectivity graph from the paper,
// together with the fault assignment and expectations the paper states for
// it. The original figures are drawings; these adjacency lists are rebuilt to
// satisfy every textual constraint the paper asserts about each figure, and
// figures_test.go machine-checks those constraints (see DESIGN.md §3).
type Figure struct {
	// Name is the paper's figure label (e.g. "fig1b").
	Name string
	// G is the reconstructed knowledge connectivity graph.
	G   *Digraph
	F   int         // the (possibly unknown to processes) fault threshold
	Byz model.IDSet // the Byzantine nodes in the paper's narrative
	// ExpectedSink is the sink of the safe subgraph (BFT-CUP committee
	// restricted to correct processes), when meaningful.
	ExpectedSink model.IDSet
	// ExpectedCommittee is the full set returned by the Sink/Core algorithm
	// (correct sink/core members plus the ≤ f Byzantine ones identified via
	// P4), when meaningful.
	ExpectedCommittee model.IDSet
	// Notes records the paper's narrative for the figure.
	Notes string
}

func adj(pairs map[model.ID][]model.ID) *Digraph { return FromAdjacency(pairs) }

// Fig1a: a knowledge connectivity graph that does NOT satisfy the BFT-CUP
// requirements. PD₁ = {2,3,4} (stated in the caption); node 4 is Byzantine
// and is the only knowledge bridge between {1,2,3} and {5,6,7,8}: if it stays
// silent, neither side can ever learn of the other, so consensus is
// unsolvable even though 1 < 8/3 faults.
func Fig1a() Figure {
	g := adj(map[model.ID][]model.ID{
		1: {2, 3, 4},
		2: {1, 3},
		3: {1, 2},
		4: {1, 5},
		5: {4, 6, 7, 8},
		6: {5, 7, 8},
		7: {5, 6, 8},
		8: {5, 6, 7},
	})
	return Figure{
		Name: "fig1a",
		G:    g,
		F:    1,
		Byz:  model.NewIDSet(4),
		Notes: "removing Byzantine node 4 disconnects the undirected safe " +
			"subgraph into {1,2,3} and {5,6,7,8}; BFT-CUP requirements fail",
	}
}

// Fig1b: a knowledge connectivity graph that satisfies the BFT-CUP
// requirements for f = 1 with Byzantine node 4. PD₁ = {2,3,4}. The sink of
// the safe subgraph is the complete triangle {1,2,3}; the Sink algorithm
// returns {1,2,3,4} (Section III's worked example: with process 2 slow and
// Byzantine 4 claiming PD {1,2,3}, S1 = {1,3,4} and S2 = {2}).
func Fig1b() Figure {
	g := adj(map[model.ID][]model.ID{
		1: {2, 3, 4},
		2: {1, 3, 4},
		3: {1, 2, 4},
		4: {1, 2, 3},
		5: {1, 2, 6},
		6: {2, 3, 5},
		7: {1, 3, 8},
		8: {5, 6, 7},
	})
	return Figure{
		Name:              "fig1b",
		G:                 g,
		F:                 1,
		Byz:               model.NewIDSet(4),
		ExpectedSink:      model.NewIDSet(1, 2, 3),
		ExpectedCommittee: model.NewIDSet(1, 2, 3, 4),
		Notes:             "satisfies BFT-CUP requirements with f=1, Byz={4}",
	}
}

// Fig2a: system A of the Theorem 7 impossibility proof — four processes,
// 2-OSR, only process 4 faulty, every correct process proposes v.
// isSink(1, {1,2,3}, {4}) holds.
func Fig2a() Figure {
	g := adj(map[model.ID][]model.ID{
		1: {2, 3, 4},
		2: {1, 3, 4},
		3: {1, 2},
		4: {1, 2},
	})
	return Figure{
		Name:              "fig2a",
		G:                 g,
		F:                 1,
		Byz:               model.NewIDSet(4),
		ExpectedSink:      model.NewIDSet(1, 2, 3),
		ExpectedCommittee: model.NewIDSet(1, 2, 3, 4),
		Notes:             "system A: 2-OSR, process 4 faulty",
	}
}

// Fig2b: system B of the impossibility proof — mirror of system A on
// processes {5,…,8} with process 5 faulty; correct processes propose u.
// isSink(1, {6,7,8}, {5}) holds.
func Fig2b() Figure {
	g := adj(map[model.ID][]model.ID{
		5: {6, 7},
		6: {5, 7, 8},
		7: {5, 6, 8},
		8: {6, 7},
	})
	return Figure{
		Name:              "fig2b",
		G:                 g,
		F:                 1,
		Byz:               model.NewIDSet(5),
		ExpectedSink:      model.NewIDSet(6, 7, 8),
		ExpectedCommittee: model.NewIDSet(5, 6, 7, 8),
		Notes:             "system B: 2-OSR, process 5 faulty",
	}
}

// Fig2c: system AB — the union of A and B plus the links 4→5 and 5→4, all
// eight processes correct (f = 0), 1-OSR. With the cross links slow until
// after both sides decide, {1,2,3} cannot distinguish AB from A (4 silent)
// and {6,7,8} cannot distinguish AB from B, so any protocol without the fault
// threshold decides v on one side and u on the other: Agreement violated.
func Fig2c() Figure {
	g := adj(map[model.ID][]model.ID{
		1: {2, 3, 4},
		2: {1, 3, 4},
		3: {1, 2},
		4: {1, 2, 5},
		5: {6, 7, 4},
		6: {5, 7, 8},
		7: {5, 6, 8},
		8: {6, 7},
	})
	return Figure{
		Name:  "fig2c",
		G:     g,
		F:     0,
		Byz:   model.NewIDSet(),
		Notes: "system AB: 1-OSR, all correct; not extended k-OSR (two k=2 sinks)",
	}
}

// Fig3a: a 2-OSR graph (f = 1, only process 1 faulty) in which the non-sink
// members {1,2,3,4,6} can falsely declare themselves a sink:
// isSink(2, {1,2,3,4,6}, {5,7}) = true. The true sink of the safe subgraph is
// {5,7,8}.
func Fig3a() Figure {
	g := adj(map[model.ID][]model.ID{
		1: {2, 3, 4, 6, 5, 7},
		2: {1, 3, 4, 6, 5, 7},
		3: {1, 2, 4, 6, 5, 7},
		4: {1, 2, 3, 6, 5, 7},
		6: {1, 2, 3, 4, 5, 7},
		5: {7, 8},
		7: {5, 8},
		8: {5, 7},
	})
	return Figure{
		Name:              "fig3a",
		G:                 g,
		F:                 1,
		Byz:               model.NewIDSet(1),
		ExpectedSink:      model.NewIDSet(5, 7, 8),
		ExpectedCommittee: model.NewIDSet(5, 7, 8),
		Notes: "non-sink members {1,2,3,4,6} satisfy isSink(2,·,{5,7}); " +
			"valid BFT-CUP graph but NOT extended k-OSR",
	}
}

// Fig3b: system B of the Fig. 3 indistinguishability narrative — a 3-OSR
// graph (f = 2) where processes 5 and 7 are faulty and the sink is the
// complete digraph on {1,2,3,4,6}. Processes in {2,3,4,6} see the same
// execution as in Fig3a when 1 behaves correctly and 5, 7 are slow.
func Fig3b() Figure {
	g := adj(map[model.ID][]model.ID{
		1: {2, 3, 4, 6, 5, 7},
		2: {1, 3, 4, 6, 5, 7},
		3: {1, 2, 4, 6, 5, 7},
		4: {1, 2, 3, 6, 5, 7},
		6: {1, 2, 3, 4, 5, 7},
		5: {7, 8},
		7: {5, 8},
		8: {1, 2, 4, 5, 7},
	})
	return Figure{
		Name:              "fig3b",
		G:                 g,
		F:                 2,
		Byz:               model.NewIDSet(5, 7),
		ExpectedSink:      model.NewIDSet(1, 2, 3, 4, 6),
		ExpectedCommittee: model.NewIDSet(1, 2, 3, 4, 5, 6, 7),
		Notes:             "system B: 3-OSR, processes 5 and 7 faulty",
	}
}

// Fig4a: an extended k-OSR graph in which the sink component of the full
// graph differs from the core. The core is {1,2,3,4} (found as S1 = {1,2,3},
// S2 = {4}, connectivity 2). The links 6→3 and 7→2 are the caption's "added
// links" that stop {5,6,7,8} from declaring themselves a sink: without them,
// isSink(1, {6,7,8}, {5}) would hold with the same connectivity as the core.
func Fig4a() Figure {
	g := adj(map[model.ID][]model.ID{
		1: {2, 3, 4},
		2: {1, 3, 4},
		3: {1, 2},
		4: {5},
		5: {1, 2, 6},
		6: {3, 5, 7, 8}, // 6→3 is an "added link"
		7: {2, 5, 6, 8}, // 7→2 is an "added link"
		8: {5, 6, 7},
	})
	return Figure{
		Name:              "fig4a",
		G:                 g,
		F:                 1,
		Byz:               model.NewIDSet(4),
		ExpectedSink:      model.NewIDSet(1, 2, 3),
		ExpectedCommittee: model.NewIDSet(1, 2, 3, 4),
		Notes:             "extended k-OSR; core {1,2,3,4} ⊂ sink SCC of the full graph",
	}
}

// Fig4aWithoutAddedLinks returns the Fig4a graph with the caption's added
// links 6→3 and 7→2 removed; the result is NOT extended k-OSR because
// {5,6,7,8} becomes a second sink with the same connectivity as the core.
func Fig4aWithoutAddedLinks() Figure {
	g := adj(map[model.ID][]model.ID{
		1: {2, 3, 4},
		2: {1, 3, 4},
		3: {1, 2},
		4: {5},
		5: {1, 2, 6},
		6: {5, 7, 8},
		7: {5, 6, 8},
		8: {5, 6, 7},
	})
	return Figure{
		Name:  "fig4a-without-added-links",
		G:     g,
		F:     1,
		Byz:   model.NewIDSet(4),
		Notes: "Fig4a minus the added links; two sinks of equal connectivity",
	}
}

// Fig4b: an extended k-OSR graph in which the sink component equals the core.
// The core is the complete digraph on {8,…,15} (f_G = 3, connectivity 4); the
// region {1,…,7} is a complete digraph whose members each know four core
// members (round-robin), which blocks every region subset from forming a sink
// at any g. f = 2 with Byzantine {4, 9}.
func Fig4b() Figure {
	g := New()
	// Region {1..7}: complete digraph.
	for u := model.ID(1); u <= 7; u++ {
		for v := model.ID(1); v <= 7; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	// Core {8..15}: complete digraph.
	for u := model.ID(8); u <= 15; u++ {
		for v := model.ID(8); v <= 15; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	// Each region node knows four core members, round-robin.
	for r := model.ID(1); r <= 7; r++ {
		for i := model.ID(0); i < 4; i++ {
			g.AddEdge(r, 8+((r-1+i)%8))
		}
	}
	core := model.NewIDSet()
	for u := model.ID(8); u <= 15; u++ {
		core.Add(u)
	}
	return Figure{
		Name:              "fig4b",
		G:                 g,
		F:                 2,
		Byz:               model.NewIDSet(4, 9),
		ExpectedSink:      core.Diff(model.NewIDSet(9)),
		ExpectedCommittee: core,
		Notes:             "extended k-OSR; sink = core = {8..15}",
	}
}

// CompleteGraph returns the complete digraph on ids — the permissioned
// (known n, known f) baseline topology of Table I.
func CompleteGraph(ids ...model.ID) *Digraph {
	g := New()
	for _, u := range ids {
		for _, v := range ids {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// AllFigures returns every reconstructed paper figure.
func AllFigures() []Figure {
	return []Figure{
		Fig1a(), Fig1b(), Fig2a(), Fig2b(), Fig2c(),
		Fig3a(), Fig3b(), Fig4a(), Fig4aWithoutAddedLinks(), Fig4b(),
	}
}
