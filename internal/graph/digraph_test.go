package graph

import (
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

func edgeList(pairs ...[2]model.ID) *Digraph {
	g := New()
	for _, p := range pairs {
		g.AddEdge(p[0], p[1])
	}
	return g
}

func TestDigraphBasics(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddNode(9)
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("edge direction wrong")
	}
	if got := g.Out(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Out(1) = %v", got)
	}
	if got := g.In(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("In(3) = %v", got)
	}
	if g.OutDegree(9) != 0 {
		t.Fatal("isolated node has out-degree != 0")
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g := New()
	g.AddEdge(1, 1)
	if g.NumEdges() != 0 {
		t.Fatal("self-loop should be ignored")
	}
	if g.NumNodes() != 1 {
		t.Fatal("self-loop should still add the node")
	}
}

func TestInducedAndWithout(t *testing.T) {
	g := edgeList([2]model.ID{1, 2}, [2]model.ID{2, 3}, [2]model.ID{3, 1}, [2]model.ID{3, 4})
	sub := g.Induced(model.NewIDSet(1, 2, 3))
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced: nodes=%d edges=%d", sub.NumNodes(), sub.NumEdges())
	}
	if sub.HasNode(4) {
		t.Fatal("induced subgraph leaked node 4")
	}
	w := g.Without(model.NewIDSet(3))
	if w.HasNode(3) || w.HasEdge(2, 3) || w.HasEdge(3, 1) {
		t.Fatal("Without did not remove node 3")
	}
	// Original untouched.
	if !g.HasNode(3) || !g.HasEdge(3, 4) {
		t.Fatal("Without mutated the receiver")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := edgeList([2]model.ID{1, 2})
	c := g.Clone()
	c.AddEdge(2, 1)
	if g.HasEdge(2, 1) {
		t.Fatal("Clone shares adjacency")
	}
}

func TestUndirectedConnected(t *testing.T) {
	g := edgeList([2]model.ID{1, 2}, [2]model.ID{3, 2})
	if !g.UndirectedConnected() {
		t.Fatal("1→2←3 should be undirected-connected")
	}
	g.AddNode(7)
	if g.UndirectedConnected() {
		t.Fatal("isolated node 7 should disconnect")
	}
	if !New().UndirectedConnected() {
		t.Fatal("empty graph is connected by convention")
	}
}

func TestReachable(t *testing.T) {
	g := edgeList([2]model.ID{1, 2}, [2]model.ID{2, 3}, [2]model.ID{4, 1})
	r := g.Reachable(1)
	if !r.Equal(model.NewIDSet(1, 2, 3)) {
		t.Fatalf("Reachable(1) = %v", r)
	}
}

// bruteSCC pairs nodes by mutual reachability.
func bruteSCC(g *Digraph) map[model.ID]string {
	reach := make(map[model.ID]model.IDSet)
	for _, u := range g.Nodes() {
		reach[u] = g.Reachable(u)
	}
	label := make(map[model.ID]string)
	for _, u := range g.Nodes() {
		comp := model.NewIDSet()
		for _, v := range g.Nodes() {
			if reach[u].Has(v) && reach[v].Has(u) {
				comp.Add(v)
			}
		}
		label[u] = comp.Key()
	}
	return label
}

func TestSCCKnownCases(t *testing.T) {
	// Two 3-cycles joined by one edge.
	g := edgeList(
		[2]model.ID{1, 2}, [2]model.ID{2, 3}, [2]model.ID{3, 1},
		[2]model.ID{4, 5}, [2]model.ID{5, 6}, [2]model.ID{6, 4},
		[2]model.ID{3, 4},
	)
	comps := g.SCCs()
	if len(comps) != 2 {
		t.Fatalf("got %d SCCs, want 2", len(comps))
	}
	sink, ok := g.UniqueSink()
	if !ok || !sink.Equal(model.NewIDSet(4, 5, 6)) {
		t.Fatalf("UniqueSink = %v, %v", sink, ok)
	}
}

func TestSCCAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		g := New()
		for i := 1; i <= n; i++ {
			g.AddNode(model.ID(i))
		}
		for u := 1; u <= n; u++ {
			for v := 1; v <= n; v++ {
				if u != v && rng.Float64() < 0.3 {
					g.AddEdge(model.ID(u), model.ID(v))
				}
			}
		}
		want := bruteSCC(g)
		got := make(map[model.ID]string)
		for _, comp := range g.SCCs() {
			k := comp.Key()
			for id := range comp {
				got[id] = k
			}
		}
		for _, u := range g.Nodes() {
			if got[u] != want[u] {
				t.Fatalf("trial %d: SCC of %v = %q, want %q\ngraph:\n%s", trial, u, got[u], want[u], g)
			}
		}
	}
}

func TestCondensationSinks(t *testing.T) {
	// 1→2, 2→3: three singleton SCCs, one sink {3}.
	g := edgeList([2]model.ID{1, 2}, [2]model.ID{2, 3})
	sinks := g.Condense().SinkComponents()
	if len(sinks) != 1 || !sinks[0].Equal(model.NewIDSet(3)) {
		t.Fatalf("sinks = %v", sinks)
	}
	// Add a disconnected node: two sinks.
	g.AddNode(9)
	if _, ok := g.UniqueSink(); ok {
		t.Fatal("UniqueSink should fail with two sinks")
	}
}

func TestDirectedCore(t *testing.T) {
	// Complete digraph on {1,2,3,4} plus a pendant 5→1.
	g := CompleteGraph(1, 2, 3, 4)
	g.AddEdge(5, 1)
	core := g.DirectedCore(3)
	if !core.Equal(model.NewIDSet(1, 2, 3, 4)) {
		t.Fatalf("3-core = %v", core)
	}
	if got := g.DirectedCore(4); got.Len() != 0 {
		t.Fatalf("4-core should be empty, got %v", got)
	}
	if got := g.DirectedCore(0); !got.Equal(g.NodeSet()) {
		t.Fatalf("0-core should be everything, got %v", got)
	}
}

// Property: every subgraph with min in/out degree ≥ k is inside the k-core.
func TestDirectedCoreContainsDenseSubgraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(6)
		g := New()
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if i != j && rng.Float64() < 0.45 {
					g.AddEdge(model.ID(i), model.ID(j))
				}
			}
		}
		k := 1 + rng.Intn(3)
		core := g.DirectedCore(k)
		// Verify fixpoint property: inside core all degrees ≥ k.
		sub := g.Induced(core)
		for _, u := range sub.Nodes() {
			if sub.OutDegree(u) < k || len(sub.In(u)) < k {
				t.Fatalf("trial %d: %v has degree < %d inside the %d-core", trial, u, k, k)
			}
		}
		// Verify maximality: re-running on the complement finds nothing dense.
		outside := g.NodeSet().Diff(core)
		for _, u := range outside.Sorted() {
			_ = u // maximality is implied by the fixpoint peeling; checked via a second peel
		}
		if !g.Induced(core).DirectedCore(k).Equal(core) {
			t.Fatalf("trial %d: k-core is not a fixpoint", trial)
		}
	}
}
