package graph

import (
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

func TestCheckKOSRSimple(t *testing.T) {
	// A 2-strongly-connected sink {1,2,3} (complete triangle) with a non-sink
	// node 4 pointing at two sink members: 2-OSR.
	g := CompleteGraph(1, 2, 3)
	g.AddEdge(4, 1)
	g.AddEdge(4, 2)
	r := CheckKOSR(g, 2)
	if !r.OK {
		t.Fatalf("expected 2-OSR, got: %s", r.Reason)
	}
	if !r.Sink.Equal(model.NewIDSet(1, 2, 3)) {
		t.Fatalf("sink = %v", r.Sink)
	}
	// It is not 3-OSR: the sink triangle has κ = 2.
	if CheckKOSR(g, 3).OK {
		t.Fatal("triangle sink cannot be 3-OSR")
	}
}

func TestCheckKOSRFailures(t *testing.T) {
	// Disconnected.
	g := CompleteGraph(1, 2, 3)
	g.AddNode(9)
	if r := CheckKOSR(g, 1); r.OK {
		t.Fatal("disconnected graph passed")
	}
	// Two sinks.
	h := edgeList([2]model.ID{1, 2}, [2]model.ID{1, 3})
	if r := CheckKOSR(h, 1); r.OK {
		t.Fatal("two-sink graph passed")
	}
	// Non-sink node with only one path to the sink fails k=2.
	g2 := CompleteGraph(1, 2, 3)
	g2.AddEdge(4, 1)
	if r := CheckKOSR(g2, 2); r.OK {
		t.Fatal("single-path non-sink node passed k=2")
	}
	// Empty graph.
	if r := CheckKOSR(New(), 1); r.OK {
		t.Fatal("empty graph passed")
	}
}

func TestCheckKOSRSingletonSink(t *testing.T) {
	// 2→1: sink {1}, κ(singleton) vacuously fine for k=1.
	g := edgeList([2]model.ID{2, 1})
	r := CheckKOSR(g, 1)
	if !r.OK || !r.Sink.Equal(model.NewIDSet(1)) {
		t.Fatalf("singleton sink: %+v", r)
	}
}

func TestCheckBFTCUP(t *testing.T) {
	fig := Fig1b()
	r := CheckBFTCUP(fig.G, fig.Byz, fig.F)
	if !r.OK {
		t.Fatalf("Fig1b should satisfy BFT-CUP requirements: %s", r.Reason)
	}
	if !r.Sink.Equal(fig.ExpectedSink) {
		t.Fatalf("Fig1b safe sink = %v, want %v", r.Sink, fig.ExpectedSink)
	}

	bad := Fig1a()
	if r := CheckBFTCUP(bad.G, bad.Byz, bad.F); r.OK {
		t.Fatal("Fig1a should NOT satisfy BFT-CUP requirements")
	}

	// Too many Byzantine nodes for the threshold.
	if r := CheckBFTCUP(fig.G, model.NewIDSet(4, 5), 1); r.OK {
		t.Fatal("2 Byzantine nodes should fail f=1")
	}

	// Sink too small: triangle sink with f=1 needs ≥ 3 correct sink members.
	g := CompleteGraph(1, 2)
	g.AddEdge(3, 1)
	g.AddEdge(3, 2)
	if r := CheckBFTCUP(g, model.NewIDSet(), 1); r.OK {
		t.Fatal("2-node sink should fail the 2f+1 size requirement")
	}
}

func TestGenKOSRSatisfiesChecker(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(3)
		spec := GenSpec{
			SinkSize:    2*k + 1 + rng.Intn(3),
			NonSinkSize: rng.Intn(5),
			K:           k,
			ExtraEdgeP:  rng.Float64() * 0.3,
		}
		g, sink, err := GenKOSR(rng, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := CheckKOSR(g, k)
		if !r.OK {
			t.Fatalf("trial %d (spec %+v): generated graph fails checker: %s\n%s", trial, spec, r.Reason, g)
		}
		if !r.Sink.Equal(sink) {
			t.Fatalf("trial %d: planted sink %v, checker found %v", trial, sink, r.Sink)
		}
	}
}

func TestGenKOSRRejectsImpossibleSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := GenKOSR(rng, GenSpec{SinkSize: 2, K: 2}); err == nil {
		t.Fatal("2-node sink cannot be 2-strongly connected; want error")
	}
}

func TestGenExtendedKOSRStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		spec := GenSpec{
			SinkSize:    3 + rng.Intn(5),
			NonSinkSize: rng.Intn(5),
			ExtraEdgeP:  rng.Float64() * 0.3,
		}
		g, core, fG, err := GenExtendedKOSR(rng, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The planted core must be the unique sink of the graph.
		sink, ok := g.UniqueSink()
		if !ok || !sink.Equal(core) {
			t.Fatalf("trial %d: sink %v (ok=%v), want core %v", trial, sink, ok, core)
		}
		// Base k-OSR with k = fG+1.
		if r := CheckKOSR(g, fG+1); !r.OK {
			t.Fatalf("trial %d: not (fG+1)-OSR: %s", trial, r.Reason)
		}
		// C2: every non-core node has fG+1 disjoint paths to every core node.
		for _, u := range g.Nodes() {
			if core.Has(u) {
				continue
			}
			for _, v := range core.Sorted() {
				if !g.HasKDisjointPaths(u, v, fG+1) {
					t.Fatalf("trial %d: C2 fails from %v to %v", trial, u, v)
				}
			}
		}
	}
}

func TestPDMap(t *testing.T) {
	g := edgeList([2]model.ID{1, 2}, [2]model.ID{1, 3}, [2]model.ID{2, 3})
	pd := PDMap(g)
	if !pd[1].Equal(model.NewIDSet(2, 3)) || !pd[2].Equal(model.NewIDSet(3)) || pd[3].Len() != 0 {
		t.Fatalf("PDMap = %v", pd)
	}
	// Mutating the map must not affect the graph.
	pd[1].Add(9)
	if g.HasEdge(1, 9) {
		t.Fatal("PDMap shares sets with the graph")
	}
}
