package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// propertyDefs spans every graph family the Def grammar can build — figures,
// complete graphs, the planted k-OSR / extended families, and the three
// probabilistic families — so the bitset engine is cross-validated against
// the map/slice reference on structured and unstructured topologies alike.
func propertyDefs(t *testing.T) []Def {
	t.Helper()
	var defs []Def
	for _, name := range FigureNames() {
		defs = append(defs, Def{Kind: DefFigure, Figure: name})
	}
	for _, s := range []string{
		"complete:4", "complete:9",
		"kosr:sink=5,nonsink=3,k=2,extra=0.15",
		"kosr:sink=7,nonsink=4,k=3,extra=0.3",
		"extended:core=5,noncore=3,extra=0.2",
		"er:n=12,p=0.15", "er:n=12,p=0.4", "er:n=20,p=0.3",
		"geo:n=12,r=0.3", "geo:n=16,r=0.5",
		"sf:n=12,m=1", "sf:n=16,m=3",
	} {
		d, err := ParseDef(s)
		if err != nil {
			t.Fatalf("ParseDef(%q): %v", s, err)
		}
		defs = append(defs, d)
	}
	return defs
}

// TestBitAdjacencyReachableMatchesDigraph asserts BitAdjacency.ReachableSet
// equals the map-based Digraph.Reachable for every node of every family over
// randomized seeds. Reachability closure is the backbone of the sink
// properties (S1 mutual reach, S2 reach-into-sink), so any divergence here
// would silently corrupt search verdicts.
func TestBitAdjacencyReachableMatchesDigraph(t *testing.T) {
	for _, d := range propertyDefs(t) {
		for seed := int64(1); seed <= 3; seed++ {
			b, err := d.Build(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", d, seed, err)
			}
			var ba BitAdjacency
			ba.Load(b.G)
			if ba.NumNodes() != b.G.NumNodes() {
				t.Fatalf("%s seed %d: BitAdjacency has %d nodes, Digraph has %d",
					d, seed, ba.NumNodes(), b.G.NumNodes())
			}
			for _, u := range b.G.Nodes() {
				want := b.G.Reachable(u)
				got := ba.ReachableSet(u)
				if !got.Equal(want) {
					t.Fatalf("%s seed %d: Reachable(%d) bitset %v != digraph %v",
						d, seed, u, got, want)
				}
			}
			if !d.UsesSeed() {
				break
			}
		}
	}
}

// TestFlowProberMatchesDigraphMaxFlow asserts the reusable FlowProber (one
// Load, many pair probes on shared scratch) returns exactly the per-call
// Digraph.MaxNodeDisjointPaths value on every ordered pair, across families
// and seeds, for both bounded and unbounded limits.
func TestFlowProberMatchesDigraphMaxFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range propertyDefs(t) {
		for seed := int64(1); seed <= 2; seed++ {
			b, err := d.Build(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", d, seed, err)
			}
			nodes := b.G.Nodes()
			var prober FlowProber
			prober.Load(b.G)
			pairs := 0
			for _, s := range nodes {
				for _, u := range nodes {
					if s == u {
						continue
					}
					// Sample pairs on large graphs; exhaustive on small ones.
					if len(nodes) > 12 && rng.Intn(4) != 0 {
						continue
					}
					limit := rng.Intn(len(nodes) + 2) // 0 = unbounded
					want := b.G.MaxNodeDisjointPaths(s, u, limit)
					got := prober.MaxNodeDisjointPaths(s, u, limit)
					if got != want {
						t.Fatalf("%s seed %d: MaxNodeDisjointPaths(%d,%d,limit=%d) prober %d != digraph %d",
							d, seed, s, u, limit, got, want)
					}
					pairs++
				}
			}
			if pairs == 0 && len(nodes) > 1 {
				t.Fatalf("%s seed %d: no pairs probed", d, seed)
			}
			if !d.UsesSeed() {
				break
			}
		}
	}
}

// poolRows packs a Digraph's adjacency restricted to pool (sorted IDs) into
// single-word rows for PoolFlow, the same shape the k-OSR enumeration feeds.
func poolRows(g *Digraph, pool []model.ID) []uint64 {
	idx := make(map[model.ID]int, len(pool))
	for i, id := range pool {
		idx[id] = i
	}
	rows := make([]uint64, len(pool))
	for i, id := range pool {
		for _, v := range g.Out(id) {
			if j, ok := idx[v]; ok && j != i {
				rows[i] |= 1 << j
			}
		}
	}
	return rows
}

// TestPoolFlowKappaMatchesInducedSubgraph asserts PoolFlow.KappaAtLeast on a
// subset mask equals Digraph.IsKStronglyConnected on the materialized
// induced subgraph, for random masks and thresholds over every family. This
// is the verdict the sink search's property P2 (κ(G[S1]) ≥ g+1) rides on.
func TestPoolFlowKappaMatchesInducedSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, d := range propertyDefs(t) {
		for seed := int64(1); seed <= 2; seed++ {
			b, err := d.Build(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", d, seed, err)
			}
			pool := b.G.Nodes()
			if len(pool) > 64 {
				pool = pool[:64]
			}
			var pf PoolFlow
			pf.Reset(poolRows(b.G, pool))
			full := uint64(1)<<len(pool) - 1
			if len(pool) == 64 {
				full = ^uint64(0)
			}
			for trial := 0; trial < 40; trial++ {
				mask := rng.Uint64() & full
				if trial == 0 {
					mask = full // always include the whole pool
				}
				k := rng.Intn(5) // 0..4; k=0 exercises the vacuous branch
				subset := model.NewIDSet()
				for m := mask; m != 0; m &= m - 1 {
					subset.Add(pool[trailing(m)])
				}
				want := b.G.Induced(subset).IsKStronglyConnected(k)
				got := pf.KappaAtLeast(mask, k)
				if got != want {
					t.Fatalf("%s seed %d: KappaAtLeast(%s, %d) bitset %v != induced %v",
						d, seed, subset, k, got, want)
				}
			}
			if !d.UsesSeed() {
				break
			}
		}
	}
}

func trailing(m uint64) int {
	i := 0
	for m&1 == 0 {
		m >>= 1
		i++
	}
	return i
}

// TestBitAdjacencyIndexRoundTrip pins the index contract: IDs are sorted,
// Index inverts IDs, HasEdge mirrors Digraph.HasEdge bit for bit.
func TestBitAdjacencyIndexRoundTrip(t *testing.T) {
	d, err := ParseDef("er:n=70,p=0.1") // > 64 nodes: multi-word rows
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	var ba BitAdjacency
	ba.Load(b.G)
	ids := ba.IDs()
	for i, id := range ids {
		if j, ok := ba.Index(id); !ok || j != i {
			t.Fatalf("Index(%d) = %d,%v want %d,true", id, j, ok, i)
		}
	}
	if _, ok := ba.Index(model.ID(9999)); ok {
		t.Fatal("Index accepted an ID not in the graph")
	}
	for i, u := range ids {
		for j, v := range ids {
			if got, want := ba.HasEdge(i, j), b.G.HasEdge(u, v); got != want {
				t.Fatalf("HasEdge(%d→%d) bitset %v != digraph %v", u, v, got, want)
			}
		}
	}
	if testing.Verbose() {
		fmt.Printf("bitadj round trip over %d nodes ok\n", len(ids))
	}
}
