package graph

import (
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// Structural invariants of the figure reconstructions. The model-level
// claims (which figures satisfy/violate BFT-CUP and BFT-CUPFT requirements,
// the isSink arithmetic, the role of the Fig. 4a added links) are
// machine-checked in internal/kosr/extended_test.go, which has access to the
// extended checker.
func TestFigureInvariants(t *testing.T) {
	figs := AllFigures()
	names := map[string]bool{}
	for _, fig := range figs {
		if fig.G == nil || fig.G.NumNodes() == 0 {
			t.Fatalf("%s: empty graph", fig.Name)
		}
		if names[fig.Name] {
			t.Fatalf("duplicate figure name %q", fig.Name)
		}
		names[fig.Name] = true
		if fig.Byz.Len() > fig.F {
			t.Fatalf("%s: %d Byzantine nodes exceed f=%d", fig.Name, fig.Byz.Len(), fig.F)
		}
		for id := range fig.Byz {
			if !fig.G.HasNode(id) {
				t.Fatalf("%s: Byzantine %v not in graph", fig.Name, id)
			}
		}
		if fig.ExpectedSink != nil && !fig.ExpectedSink.SubsetOf(fig.G.NodeSet()) {
			t.Fatalf("%s: expected sink %v not in graph", fig.Name, fig.ExpectedSink)
		}
		if fig.ExpectedCommittee != nil && fig.ExpectedSink != nil &&
			!fig.ExpectedSink.SubsetOf(fig.ExpectedCommittee) {
			t.Fatalf("%s: sink %v ⊄ committee %v", fig.Name, fig.ExpectedSink, fig.ExpectedCommittee)
		}
	}
	for _, want := range []string{"fig1a", "fig1b", "fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig4a", "fig4b"} {
		if !names[want] {
			t.Fatalf("figure %q missing from AllFigures", want)
		}
	}
}

// The caption of Fig. 1 fixes PD₁ = {2,3,4} in both variants.
func TestFig1CaptionPD1(t *testing.T) {
	want := model.NewIDSet(2, 3, 4)
	if got := Fig1a().G.OutSet(1); !got.Equal(want) {
		t.Fatalf("fig1a PD(1) = %v, want %v", got, want)
	}
	if got := Fig1b().G.OutSet(1); !got.Equal(want) {
		t.Fatalf("fig1b PD(1) = %v, want %v", got, want)
	}
}

// Fig. 2c is the union of systems A and B plus the cross links 4→5 and 5→4.
func TestFig2cIsUnionPlusCrossLinks(t *testing.T) {
	a, b, ab := Fig2a(), Fig2b(), Fig2c()
	for _, u := range a.G.Nodes() {
		for _, v := range a.G.Out(u) {
			if !ab.G.HasEdge(u, v) {
				t.Fatalf("AB missing A edge %v→%v", u, v)
			}
		}
	}
	for _, u := range b.G.Nodes() {
		for _, v := range b.G.Out(u) {
			if !ab.G.HasEdge(u, v) {
				t.Fatalf("AB missing B edge %v→%v", u, v)
			}
		}
	}
	if !ab.G.HasEdge(4, 5) || !ab.G.HasEdge(5, 4) {
		t.Fatal("AB missing the cross links 4↔5")
	}
	// Exactly the union plus the two cross links.
	extra := ab.G.NumEdges() - a.G.NumEdges() - b.G.NumEdges()
	if extra != 2 {
		t.Fatalf("AB has %d extra edges beyond A∪B, want 2", extra)
	}
}

// Fig. 4a differs from its broken variant exactly by the caption's added
// links 6→3 and 7→2.
func TestFig4aAddedLinks(t *testing.T) {
	with, without := Fig4a(), Fig4aWithoutAddedLinks()
	if !with.G.HasEdge(6, 3) || !with.G.HasEdge(7, 2) {
		t.Fatal("fig4a missing its added links")
	}
	if without.G.HasEdge(6, 3) || without.G.HasEdge(7, 2) {
		t.Fatal("broken variant still has the added links")
	}
	if with.G.NumEdges()-without.G.NumEdges() != 2 {
		t.Fatal("variants differ by more than the two added links")
	}
}

// Fig. 4b sizing: complete region {1..7}, complete core {8..15}, four core
// targets per region node.
func TestFig4bStructure(t *testing.T) {
	fig := Fig4b()
	if fig.G.NumNodes() != 15 {
		t.Fatalf("fig4b has %d nodes", fig.G.NumNodes())
	}
	for u := model.ID(1); u <= 7; u++ {
		coreTargets := 0
		for _, v := range fig.G.Out(u) {
			if v >= 8 {
				coreTargets++
			}
		}
		if coreTargets != 4 {
			t.Fatalf("region node %v has %d core targets, want 4", u, coreTargets)
		}
	}
	for u := model.ID(8); u <= 15; u++ {
		for _, v := range fig.G.Out(u) {
			if v < 8 {
				t.Fatalf("core node %v points back into the region (%v)", u, v)
			}
		}
	}
}
