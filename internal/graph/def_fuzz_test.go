package graph

import (
	"strings"
	"testing"
)

// FuzzParseDef drives ParseDef over arbitrary inputs, checking the
// invariants every accepted def must satisfy: Validate agrees the def is
// well-formed, the canonical rendering re-parses to the identical value
// (round trip), and NumNodes is non-negative. The corpus seeds cover every
// family's canonical form plus the boundary shapes that historically bite —
// NaN and out-of-range floats (a naive `p < 0 || p > 1` check lets NaN
// through), missing and unknown parameters, and the legacy colon forms.
func FuzzParseDef(f *testing.F) {
	for _, seed := range []string{
		"fig1b", "fig4a", "complete:7",
		"kosr:sink=7,nonsink=4,k=3", "kosr:sink=5,nonsink=2,k=2,extra=0.15",
		"extended:core=5,noncore=3", "extended:core=6,noncore=2,extra=0.2",
		"er:n=16,p=0.3", "er:n=1,p=0", "er:n=8,p=1",
		"geo:n=16,r=0.4", "geo:n=8,r=0", "geo:n=8,r=2",
		"sf:n=16,m=2", "sf:n=2,m=1", "sf:n=8,m=8",
		"er:n=8,p=NaN", "er:n=8,p=1.5", "er:n=8,p=-0.1", "er:n=8,p=1e-300",
		"geo:n=8,r=-1", "geo:n=8,r=Inf", "sf:n=8,m=0", "sf:n=8,m=9",
		"er:", "er:n=8", "er:p=0.3", "er:n=8,q=0.5", "er:n=8,p=0.3,p=0.7",
		"random:5:3:1", "random-ext:5:3", "  er:n=8,p=0.5  ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDef(s)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ParseDef(%q) accepted %+v but Validate rejects it: %v", s, d, verr)
		}
		if d.NumNodes() < 0 {
			t.Fatalf("ParseDef(%q) = %+v with negative NumNodes %d", s, d, d.NumNodes())
		}
		canon := d.String()
		if strings.ContainsAny(canon, " \t\n") {
			t.Fatalf("canonical form %q of %q contains whitespace", canon, s)
		}
		again, err := ParseDef(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", canon, s, err)
		}
		if again != d {
			t.Fatalf("round trip drifted: ParseDef(%q) = %+v, ParseDef(%q) = %+v", s, d, canon, again)
		}
	})
}
