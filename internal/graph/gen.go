package graph

import (
	"fmt"
	"math/rand"

	"github.com/bftcup/bftcup/internal/model"
)

// GenSpec parameterizes random knowledge-connectivity-graph generation.
type GenSpec struct {
	SinkSize    int     // number of sink (or core) members, ≥ 2f+1
	NonSinkSize int     // number of non-sink members
	K           int     // required connectivity (f+1)
	ExtraEdgeP  float64 // probability of extra random edges for variety
}

// circulant builds the circulant digraph on ids where node i points to the
// next k nodes (cyclically). Its strong connectivity is exactly k.
func circulant(g *Digraph, ids []model.ID, k int) {
	m := len(ids)
	for i := 0; i < m; i++ {
		for d := 1; d <= k && d < m; d++ {
			g.AddEdge(ids[i], ids[(i+d)%m])
		}
	}
}

// GenKOSR generates a random graph whose safe subgraph belongs to k-OSR PD
// with a sink of spec.SinkSize nodes (IDs 1..SinkSize) and spec.NonSinkSize
// non-sink nodes. The construction is correct by design:
//
//   - the sink is a k-circulant (κ = k exactly) plus optional random
//     sink-internal edges (which can only increase κ);
//   - every non-sink node points to k distinct sink members, giving k
//     node-disjoint paths to every sink node by Menger's fan argument;
//   - non-sink nodes may additionally point to earlier non-sink nodes
//     (acyclic among themselves), which preserves the single sink.
//
// Returned sink is the planted sink set. Tests cross-check the construction
// with CheckKOSR on small instances.
func GenKOSR(rng *rand.Rand, spec GenSpec) (g *Digraph, sink model.IDSet, err error) {
	if spec.SinkSize < spec.K+1 && spec.SinkSize != 1 {
		return nil, nil, fmt.Errorf("sink of %d nodes cannot be %d-strongly connected", spec.SinkSize, spec.K)
	}
	g = New()
	sinkIDs := make([]model.ID, spec.SinkSize)
	for i := range sinkIDs {
		sinkIDs[i] = model.ID(i + 1)
		g.AddNode(sinkIDs[i])
	}
	circulant(g, sinkIDs, spec.K)
	// Optional extra sink-internal edges.
	for _, u := range sinkIDs {
		for _, v := range sinkIDs {
			if u != v && rng.Float64() < spec.ExtraEdgeP {
				g.AddEdge(u, v)
			}
		}
	}
	sink = model.NewIDSet(sinkIDs...)
	// Non-sink nodes.
	for i := 0; i < spec.NonSinkSize; i++ {
		u := model.ID(spec.SinkSize + i + 1)
		g.AddNode(u)
		// k distinct sink targets.
		perm := rng.Perm(spec.SinkSize)
		for j := 0; j < spec.K && j < spec.SinkSize; j++ {
			g.AddEdge(u, sinkIDs[perm[j]])
		}
		// Optional edges to earlier non-sink nodes (keeps them non-sink).
		for j := 0; j < i; j++ {
			if rng.Float64() < spec.ExtraEdgeP {
				g.AddEdge(u, model.ID(spec.SinkSize+j+1))
			}
		}
	}
	return g, sink, nil
}

// GenExtendedKOSR generates a random graph satisfying the extended k-OSR
// requirements (Definition 2) with a planted core of spec.SinkSize nodes
// (IDs 1..SinkSize; a complete digraph) and spec.NonSinkSize non-core nodes.
//
// Non-core nodes form a DAG among themselves and each points to
// kCore = f_G(core)+1 distinct core members. Consequences, relied upon by the
// tests:
//
//   - every non-core subset of size ≥ 2 has κ = 0 (DAG) and every non-core
//     singleton has outgoing edges, so no subset outside the core satisfies
//     isSink* at any g — C1 holds with the core strictly maximal;
//   - each non-core node reaches every core member through kCore
//     node-disjoint paths (direct fan into a complete digraph) — C2 holds.
//
// Returns the graph, the planted core, and f_G(core) = min(⌊(m-1)/2⌋, m-2)
// for core size m (partition S1 = core, S2 = ∅).
func GenExtendedKOSR(rng *rand.Rand, spec GenSpec) (g *Digraph, core model.IDSet, fG int, err error) {
	m := spec.SinkSize
	if m < 3 {
		return nil, nil, 0, fmt.Errorf("core needs ≥ 3 nodes, got %d", m)
	}
	fG = (m - 1) / 2
	if mm := m - 2; mm < fG {
		fG = mm
	}
	kCore := fG + 1
	g = New()
	coreIDs := make([]model.ID, m)
	for i := range coreIDs {
		coreIDs[i] = model.ID(i + 1)
	}
	for _, u := range coreIDs {
		for _, v := range coreIDs {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	core = model.NewIDSet(coreIDs...)
	for i := 0; i < spec.NonSinkSize; i++ {
		u := model.ID(m + i + 1)
		g.AddNode(u)
		perm := rng.Perm(m)
		for j := 0; j < kCore; j++ {
			g.AddEdge(u, coreIDs[perm[j]])
		}
		for j := 0; j < i; j++ {
			if rng.Float64() < spec.ExtraEdgeP {
				g.AddEdge(u, model.ID(m+j+1))
			}
		}
	}
	return g, core, fG, nil
}

// GenER generates a directed Erdős–Rényi graph G(n, p) on IDs 1..n: every
// ordered pair (u, v), u ≠ v, carries an edge independently with probability
// p. The pair order of the RNG draws is fixed (u ascending, v ascending), so
// one (n, seed) always yields the same graph — the trace-determinism tests
// and the matrix compile cache rely on it. Unlike GenKOSR there is no planted
// structure: whether a sink emerges is the measured event.
func GenER(rng *rand.Rand, n int, p float64) *Digraph {
	g := New()
	for i := 1; i <= n; i++ {
		g.AddNode(model.ID(i))
	}
	for u := 1; u <= n; u++ {
		for v := 1; v <= n; v++ {
			if u != v && rng.Float64() < p {
				g.AddEdge(model.ID(u), model.ID(v))
			}
		}
	}
	return g
}

// GenGeometric generates a random geometric digraph on IDs 1..n: each node
// draws a point uniformly in the unit square, and two nodes know each other
// (edges both ways) iff their Euclidean distance is ≤ r. All 2n coordinates
// are drawn before any thresholding, so for a fixed (n, seed) the point set
// is identical across radii and the edge set is monotone in r — the radius-
// monotonicity tests pin exactly that: edges(r₁) ⊆ edges(r₂) for r₁ ≤ r₂.
func GenGeometric(rng *rand.Rand, n int, r float64) *Digraph {
	g := New()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		g.AddNode(model.ID(i + 1))
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	r2 := r * r
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r2 {
				g.AddEdge(model.ID(i+1), model.ID(j+1))
				g.AddEdge(model.ID(j+1), model.ID(i+1))
			}
		}
	}
	return g
}

// GenScaleFree generates a Barabási–Albert-style scale-free digraph on IDs
// 1..n: the first min(m, n) nodes form a complete digraph, and every later
// node adds out-edges to m distinct existing nodes chosen preferentially with
// weight in-degree+1. Preferential attachment concentrates in-degree on the
// early nodes (the heavy tail the degree-distribution test checks), giving
// the seed clique a natural sink-ish role without planting one: whether it
// actually satisfies the sink properties on a draw stays a measured event.
func GenScaleFree(rng *rand.Rand, n, m int) *Digraph {
	g := New()
	if m > n {
		m = n
	}
	indeg := make([]int, n+1) // indeg[v] for v = 1..n
	for i := 1; i <= n; i++ {
		g.AddNode(model.ID(i))
	}
	seed := m
	if seed < 1 {
		seed = 1
	}
	for u := 1; u <= seed; u++ {
		for v := 1; v <= seed; v++ {
			if u != v {
				g.AddEdge(model.ID(u), model.ID(v))
				indeg[v]++
			}
		}
	}
	chosen := make([]bool, n+1)
	for u := seed + 1; u <= n; u++ {
		existing := u - 1
		total := 0
		for v := 1; v <= existing; v++ {
			chosen[v] = false
			total += indeg[v] + 1
		}
		picks := m
		if picks > existing {
			picks = existing
		}
		for picked := 0; picked < picks; {
			// Weighted draw over the existing nodes; rejection on repeats
			// keeps the draw sequence deterministic per (n, m, seed).
			x := rng.Intn(total)
			v := 0
			for w := 1; w <= existing; w++ {
				x -= indeg[w] + 1
				if x < 0 {
					v = w
					break
				}
			}
			if chosen[v] {
				continue
			}
			chosen[v] = true
			g.AddEdge(model.ID(u), model.ID(v))
			picked++
		}
		for v := 1; v <= existing; v++ {
			if chosen[v] {
				indeg[v]++
			}
		}
	}
	return g
}

// PDMap converts a graph into the participant-detector map handed to
// processes: PD(i) = out-neighbors of i.
func PDMap(g *Digraph) map[model.ID]model.IDSet {
	out := make(map[model.ID]model.IDSet, g.NumNodes())
	for _, u := range g.Nodes() {
		out[u] = g.OutSet(u).Clone()
	}
	return out
}
