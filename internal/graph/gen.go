package graph

import (
	"fmt"
	"math/rand"

	"github.com/bftcup/bftcup/internal/model"
)

// GenSpec parameterizes random knowledge-connectivity-graph generation.
type GenSpec struct {
	SinkSize    int     // number of sink (or core) members, ≥ 2f+1
	NonSinkSize int     // number of non-sink members
	K           int     // required connectivity (f+1)
	ExtraEdgeP  float64 // probability of extra random edges for variety
}

// circulant builds the circulant digraph on ids where node i points to the
// next k nodes (cyclically). Its strong connectivity is exactly k.
func circulant(g *Digraph, ids []model.ID, k int) {
	m := len(ids)
	for i := 0; i < m; i++ {
		for d := 1; d <= k && d < m; d++ {
			g.AddEdge(ids[i], ids[(i+d)%m])
		}
	}
}

// GenKOSR generates a random graph whose safe subgraph belongs to k-OSR PD
// with a sink of spec.SinkSize nodes (IDs 1..SinkSize) and spec.NonSinkSize
// non-sink nodes. The construction is correct by design:
//
//   - the sink is a k-circulant (κ = k exactly) plus optional random
//     sink-internal edges (which can only increase κ);
//   - every non-sink node points to k distinct sink members, giving k
//     node-disjoint paths to every sink node by Menger's fan argument;
//   - non-sink nodes may additionally point to earlier non-sink nodes
//     (acyclic among themselves), which preserves the single sink.
//
// Returned sink is the planted sink set. Tests cross-check the construction
// with CheckKOSR on small instances.
func GenKOSR(rng *rand.Rand, spec GenSpec) (g *Digraph, sink model.IDSet, err error) {
	if spec.SinkSize < spec.K+1 && spec.SinkSize != 1 {
		return nil, nil, fmt.Errorf("sink of %d nodes cannot be %d-strongly connected", spec.SinkSize, spec.K)
	}
	g = New()
	sinkIDs := make([]model.ID, spec.SinkSize)
	for i := range sinkIDs {
		sinkIDs[i] = model.ID(i + 1)
		g.AddNode(sinkIDs[i])
	}
	circulant(g, sinkIDs, spec.K)
	// Optional extra sink-internal edges.
	for _, u := range sinkIDs {
		for _, v := range sinkIDs {
			if u != v && rng.Float64() < spec.ExtraEdgeP {
				g.AddEdge(u, v)
			}
		}
	}
	sink = model.NewIDSet(sinkIDs...)
	// Non-sink nodes.
	for i := 0; i < spec.NonSinkSize; i++ {
		u := model.ID(spec.SinkSize + i + 1)
		g.AddNode(u)
		// k distinct sink targets.
		perm := rng.Perm(spec.SinkSize)
		for j := 0; j < spec.K && j < spec.SinkSize; j++ {
			g.AddEdge(u, sinkIDs[perm[j]])
		}
		// Optional edges to earlier non-sink nodes (keeps them non-sink).
		for j := 0; j < i; j++ {
			if rng.Float64() < spec.ExtraEdgeP {
				g.AddEdge(u, model.ID(spec.SinkSize+j+1))
			}
		}
	}
	return g, sink, nil
}

// GenExtendedKOSR generates a random graph satisfying the extended k-OSR
// requirements (Definition 2) with a planted core of spec.SinkSize nodes
// (IDs 1..SinkSize; a complete digraph) and spec.NonSinkSize non-core nodes.
//
// Non-core nodes form a DAG among themselves and each points to
// kCore = f_G(core)+1 distinct core members. Consequences, relied upon by the
// tests:
//
//   - every non-core subset of size ≥ 2 has κ = 0 (DAG) and every non-core
//     singleton has outgoing edges, so no subset outside the core satisfies
//     isSink* at any g — C1 holds with the core strictly maximal;
//   - each non-core node reaches every core member through kCore
//     node-disjoint paths (direct fan into a complete digraph) — C2 holds.
//
// Returns the graph, the planted core, and f_G(core) = min(⌊(m-1)/2⌋, m-2)
// for core size m (partition S1 = core, S2 = ∅).
func GenExtendedKOSR(rng *rand.Rand, spec GenSpec) (g *Digraph, core model.IDSet, fG int, err error) {
	m := spec.SinkSize
	if m < 3 {
		return nil, nil, 0, fmt.Errorf("core needs ≥ 3 nodes, got %d", m)
	}
	fG = (m - 1) / 2
	if mm := m - 2; mm < fG {
		fG = mm
	}
	kCore := fG + 1
	g = New()
	coreIDs := make([]model.ID, m)
	for i := range coreIDs {
		coreIDs[i] = model.ID(i + 1)
	}
	for _, u := range coreIDs {
		for _, v := range coreIDs {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	core = model.NewIDSet(coreIDs...)
	for i := 0; i < spec.NonSinkSize; i++ {
		u := model.ID(m + i + 1)
		g.AddNode(u)
		perm := rng.Perm(m)
		for j := 0; j < kCore; j++ {
			g.AddEdge(u, coreIDs[perm[j]])
		}
		for j := 0; j < i; j++ {
			if rng.Float64() < spec.ExtraEdgeP {
				g.AddEdge(u, model.ID(m+j+1))
			}
		}
	}
	return g, core, fG, nil
}

// PDMap converts a graph into the participant-detector map handed to
// processes: PD(i) = out-neighbors of i.
func PDMap(g *Digraph) map[model.ID]model.IDSet {
	out := make(map[model.ID]model.IDSet, g.NumNodes())
	for _, u := range g.Nodes() {
		out[u] = g.OutSet(u).Clone()
	}
	return out
}
