package graph

import (
	"testing"
)

func TestParseDefRoundTrip(t *testing.T) {
	defs := []Def{
		{Kind: DefFigure, Figure: "fig1b"},
		{Kind: DefComplete, N: 7},
		{Kind: DefKOSR, Sink: 7, NonSink: 4, K: 3},
		{Kind: DefKOSR, Sink: 5, NonSink: 2, K: 2, ExtraEdgeP: 0.15},
		{Kind: DefExtended, Sink: 5, NonSink: 3},
		{Kind: DefExtended, Sink: 6, NonSink: 2, ExtraEdgeP: 0.2},
	}
	for _, want := range defs {
		got, err := ParseDef(want.String())
		if err != nil {
			t.Fatalf("ParseDef(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("ParseDef(%q) = %+v, want %+v", want.String(), got, want)
		}
	}
}

func TestParseDefFigures(t *testing.T) {
	for _, name := range FigureNames() {
		d, err := ParseDef(name)
		if err != nil {
			t.Fatalf("ParseDef(%q): %v", name, err)
		}
		b, err := d.Build(1)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if b.G.NumNodes() == 0 {
			t.Errorf("figure %q built empty", name)
		}
		if b.G.NumNodes() != d.NumNodes() {
			t.Errorf("figure %q: NumNodes %d != built %d", name, d.NumNodes(), b.G.NumNodes())
		}
	}
}

func TestParseDefLegacyForms(t *testing.T) {
	d, err := ParseDef("random:5:3:1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DefKOSR || d.Sink != 5 || d.NonSink != 3 || d.K != 2 {
		t.Errorf("random:5:3:1 parsed to %+v", d)
	}
	d, err = ParseDef("random-ext:5:3")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DefExtended || d.Sink != 5 || d.NonSink != 3 {
		t.Errorf("random-ext:5:3 parsed to %+v", d)
	}
}

func TestParseDefErrors(t *testing.T) {
	for _, bad := range []string{
		"", "figZZ", "complete:0", "complete:x", "kosr:", "kosr:sink=0,nonsink=1,k=1",
		"kosr:bogus=3", "extended:core=2,noncore=1", "random:1:2", "kosr:sink",
	} {
		if _, err := ParseDef(bad); err == nil {
			t.Errorf("ParseDef(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestDefBuildDeterministic(t *testing.T) {
	for _, s := range []string{"kosr:sink=6,nonsink=3,k=2,extra=0.3", "extended:core=5,noncore=4,extra=0.3"} {
		d, err := ParseDef(s)
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.Build(42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Build(42)
		if err != nil {
			t.Fatal(err)
		}
		if a.G.String() != b.G.String() {
			t.Errorf("%s: same seed produced different graphs", s)
		}
		c, err := d.Build(43)
		if err != nil {
			t.Fatal(err)
		}
		if a.G.String() == c.G.String() {
			t.Errorf("%s: different seeds produced identical graphs (suspicious)", s)
		}
	}
}
