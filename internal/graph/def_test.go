package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseDefRoundTrip(t *testing.T) {
	defs := []Def{
		{Kind: DefFigure, Figure: "fig1b"},
		{Kind: DefComplete, N: 7},
		{Kind: DefKOSR, Sink: 7, NonSink: 4, K: 3},
		{Kind: DefKOSR, Sink: 5, NonSink: 2, K: 2, ExtraEdgeP: 0.15},
		{Kind: DefExtended, Sink: 5, NonSink: 3},
		{Kind: DefExtended, Sink: 6, NonSink: 2, ExtraEdgeP: 0.2},
		{Kind: DefER, N: 16, P: 0.3},
		{Kind: DefER, N: 12, P: 0},
		{Kind: DefGeo, N: 16, R: 0.4},
		{Kind: DefSF, N: 16, M: 2},
	}
	for _, want := range defs {
		got, err := ParseDef(want.String())
		if err != nil {
			t.Fatalf("ParseDef(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("ParseDef(%q) = %+v, want %+v", want.String(), got, want)
		}
	}
}

// TestDefRoundTripProperty sweeps the whole Def space — every figure, a
// range of complete sizes, and the generated k-OSR / extended families over
// enumerated and seeded-random parameters — asserting the canonical-form
// property ParseDef(d.String()) == d for every Def that Validate accepts.
// String and ParseDef are the lingua franca between graphgen, the CLIs and
// the matrix graph axis, so any value that survives one direction must
// survive the round trip exactly.
func TestDefRoundTripProperty(t *testing.T) {
	var defs []Def
	for _, name := range FigureNames() {
		defs = append(defs, Def{Kind: DefFigure, Figure: name})
	}
	for n := 1; n <= 16; n++ {
		defs = append(defs, Def{Kind: DefComplete, N: n})
	}
	extras := []float64{0, 0.15, 0.5, 1}
	for sink := 1; sink <= 8; sink++ {
		for nonsink := 0; nonsink <= 5; nonsink++ {
			for k := 1; k <= 4; k++ {
				for _, p := range extras {
					defs = append(defs, Def{Kind: DefKOSR, Sink: sink, NonSink: nonsink, K: k, ExtraEdgeP: p})
				}
			}
			for _, p := range extras {
				defs = append(defs, Def{Kind: DefExtended, Sink: sink, NonSink: nonsink, ExtraEdgeP: p})
			}
		}
	}
	// Seeded-random extra-edge probabilities: %g renders the shortest exact
	// form, so even arbitrary float64s must survive the round trip.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		defs = append(defs,
			Def{Kind: DefKOSR, Sink: 3 + rng.Intn(30), NonSink: rng.Intn(30), K: 1 + rng.Intn(6), ExtraEdgeP: rng.Float64()},
			Def{Kind: DefExtended, Sink: 3 + rng.Intn(30), NonSink: rng.Intn(30), ExtraEdgeP: rng.Float64()},
			Def{Kind: DefER, N: 1 + rng.Intn(40), P: rng.Float64()},
			Def{Kind: DefGeo, N: 1 + rng.Intn(40), R: 2 * rng.Float64()},
			Def{Kind: DefSF, N: 2 + rng.Intn(40), M: 1 + rng.Intn(6)})
	}
	checked := 0
	for _, want := range defs {
		if want.Validate() != nil {
			continue
		}
		got, err := ParseDef(want.String())
		if err != nil {
			t.Fatalf("ParseDef(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("ParseDef(%q) = %+v, want %+v", want.String(), got, want)
		}
		checked++
	}
	if checked < 500 {
		t.Fatalf("property only checked %d defs — the enumeration broke", checked)
	}
}

// TestValidateMatchesParseDef asserts Validate accepts exactly the Defs
// whose canonical form ParseDef accepts, on the same enumerated space the
// round-trip property uses.
func TestValidateMatchesParseDef(t *testing.T) {
	cases := []Def{
		{Kind: DefFigure, Figure: "fig1b"},
		{Kind: DefFigure, Figure: "nope"},
		{Kind: DefComplete, N: 0},
		{Kind: DefComplete, N: 3},
		{Kind: DefKOSR, Sink: 0, NonSink: 1, K: 1},
		{Kind: DefKOSR, Sink: 3, NonSink: -2, K: 1},
		{Kind: DefKOSR, Sink: 2, NonSink: 1, K: 3}, // structurally fine; fails only at Build
		{Kind: DefExtended, Sink: 2, NonSink: 1},
		{Kind: DefExtended, Sink: 4, NonSink: -1},
		{Kind: DefExtended, Sink: 3, NonSink: 0},
		{Kind: DefER, N: 8, P: 0.5},
		{Kind: DefER, N: 0, P: 0.5},
		{Kind: DefER, N: 8, P: 1.5},
		{Kind: DefER, N: 8, P: -0.1},
		{Kind: DefER, N: 8, P: math.NaN()}, // NaN survives %g→ParseFloat; both sides must reject it
		{Kind: DefGeo, N: 8, R: 0.4},
		{Kind: DefGeo, N: 8, R: -0.4},
		{Kind: DefGeo, N: 8, R: math.NaN()},
		{Kind: DefGeo, N: 0, R: 0.4},
		{Kind: DefSF, N: 8, M: 2},
		{Kind: DefSF, N: 8, M: 0},
		{Kind: DefSF, N: 8, M: 9},
		{Kind: DefKind(99)},
	}
	for _, d := range cases {
		verr := d.Validate()
		_, perr := ParseDef(d.String())
		if (verr == nil) != (perr == nil) {
			t.Errorf("def %+v: Validate err %v, ParseDef(%q) err %v — must agree", d, verr, d.String(), perr)
		}
	}
}

func TestParseDefFigures(t *testing.T) {
	for _, name := range FigureNames() {
		d, err := ParseDef(name)
		if err != nil {
			t.Fatalf("ParseDef(%q): %v", name, err)
		}
		b, err := d.Build(1)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if b.G.NumNodes() == 0 {
			t.Errorf("figure %q built empty", name)
		}
		if b.G.NumNodes() != d.NumNodes() {
			t.Errorf("figure %q: NumNodes %d != built %d", name, d.NumNodes(), b.G.NumNodes())
		}
	}
}

func TestParseDefLegacyForms(t *testing.T) {
	d, err := ParseDef("random:5:3:1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DefKOSR || d.Sink != 5 || d.NonSink != 3 || d.K != 2 {
		t.Errorf("random:5:3:1 parsed to %+v", d)
	}
	d, err = ParseDef("random-ext:5:3")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != DefExtended || d.Sink != 5 || d.NonSink != 3 {
		t.Errorf("random-ext:5:3 parsed to %+v", d)
	}
}

func TestParseDefErrors(t *testing.T) {
	for _, bad := range []string{
		"", "figZZ", "complete:0", "complete:x", "kosr:", "kosr:sink=0,nonsink=1,k=1",
		"kosr:bogus=3", "extended:core=2,noncore=1", "random:1:2", "kosr:sink",
		"kosr:sink=3,nonsink=-2,k=1", "extended:core=4,noncore=-1",
		"er:", "er:n=0,p=0.5", "er:n=8,p=1.5", "er:n=8,p=-0.1", "er:n=8,p=NaN",
		"er:n=8,q=0.5", "geo:", "geo:n=0,r=0.4", "geo:n=8,r=-1",
		"geo:n=8,r=NaN", "sf:", "sf:n=8,m=0", "sf:n=8,m=9", "sf:n=8,m=x",
	} {
		if _, err := ParseDef(bad); err == nil {
			t.Errorf("ParseDef(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestDefBuildDeterministic(t *testing.T) {
	for _, s := range []string{
		"kosr:sink=6,nonsink=3,k=2,extra=0.3", "extended:core=5,noncore=4,extra=0.3",
		"er:n=14,p=0.3", "geo:n=14,r=0.4", "sf:n=14,m=2",
	} {
		d, err := ParseDef(s)
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.Build(42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Build(42)
		if err != nil {
			t.Fatal(err)
		}
		if a.G.String() != b.G.String() {
			t.Errorf("%s: same seed produced different graphs", s)
		}
		c, err := d.Build(43)
		if err != nil {
			t.Fatal(err)
		}
		if a.G.String() == c.G.String() {
			t.Errorf("%s: different seeds produced identical graphs (suspicious)", s)
		}
	}
}

// TestBuildKey pins the cache-key contract the scenario compile cache keys
// on: seed-insensitive families (figures, complete graphs) normalize every
// seed to one key, random families key by their build seed, and distinct
// defs never collide.
func TestBuildKey(t *testing.T) {
	fig := Def{Kind: DefFigure, Figure: "fig1b"}
	if fig.UsesSeed() {
		t.Error("figure def claims to use the seed")
	}
	if fig.BuildKey(1) != fig.BuildKey(2) {
		t.Error("figure def splits the cache by seed despite ignoring it")
	}
	complete := Def{Kind: DefComplete, N: 7}
	if complete.UsesSeed() || complete.BuildKey(1) != complete.BuildKey(99) {
		t.Error("complete def splits the cache by seed despite ignoring it")
	}
	kosr := Def{Kind: DefKOSR, Sink: 5, NonSink: 3, K: 2, ExtraEdgeP: 0.15}
	if !kosr.UsesSeed() {
		t.Error("kosr def claims to ignore the seed")
	}
	if kosr.BuildKey(1) == kosr.BuildKey(2) {
		t.Error("kosr builds differ by seed but share a key (stale graph reuse)")
	}
	if kosr.BuildKey(1) != kosr.BuildKey(1) {
		t.Error("kosr key is not deterministic")
	}
	ext := Def{Kind: DefExtended, Sink: 5, NonSink: 3, ExtraEdgeP: 0.15}
	if !ext.UsesSeed() {
		t.Error("extended def claims to ignore the seed")
	}
	er := Def{Kind: DefER, N: 12, P: 0.3}
	geo := Def{Kind: DefGeo, N: 12, R: 0.3}
	sf := Def{Kind: DefSF, N: 12, M: 2}
	for _, d := range []Def{er, geo, sf} {
		if !d.UsesSeed() {
			t.Errorf("%s claims to ignore the seed", d)
		}
		if d.BuildKey(1) == d.BuildKey(2) {
			t.Errorf("%s builds differ by seed but share a key (stale graph reuse)", d)
		}
	}
	keys := map[string]Def{}
	for _, d := range []Def{fig, complete, kosr, ext, er, geo, sf} {
		k := d.BuildKey(1)
		if prev, dup := keys[k]; dup {
			t.Errorf("defs %s and %s share key %q", prev, d, k)
		}
		keys[k] = d
	}
}
