package graph

import (
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// allSimplePaths enumerates every simple path from s to t (small graphs only).
func allSimplePaths(g *Digraph, s, t model.ID) [][]model.ID {
	var out [][]model.ID
	var walk func(u model.ID, path []model.ID, seen model.IDSet)
	walk = func(u model.ID, path []model.ID, seen model.IDSet) {
		if u == t {
			cp := make([]model.ID, len(path))
			copy(cp, path)
			out = append(out, cp)
			return
		}
		for _, v := range g.Out(u) {
			if seen.Has(v) {
				continue
			}
			seen.Add(v)
			walk(v, append(path, v), seen)
			seen.Remove(v)
		}
	}
	walk(s, []model.ID{s}, model.NewIDSet(s))
	return out
}

// bruteMaxDisjoint computes the max internally-node-disjoint path packing by
// backtracking over the full path list. Exponential; tests keep n ≤ 7.
func bruteMaxDisjoint(g *Digraph, s, t model.ID) int {
	paths := allSimplePaths(g, s, t)
	interior := make([]model.IDSet, len(paths))
	for i, p := range paths {
		in := model.NewIDSet()
		for _, v := range p[1 : len(p)-1] {
			in.Add(v)
		}
		interior[i] = in
	}
	best := 0
	var rec func(i int, used model.IDSet, count int)
	rec = func(i int, used model.IDSet, count int) {
		if count > best {
			best = count
		}
		if i == len(paths) || count+(len(paths)-i) <= best {
			return
		}
		// Skip path i.
		rec(i+1, used, count)
		// Take path i if disjoint from used.
		ok := true
		for v := range interior[i] {
			if used.Has(v) {
				ok = false
				break
			}
		}
		if ok {
			u2 := used.Union(interior[i])
			rec(i+1, u2, count+1)
		}
	}
	rec(0, model.NewIDSet(), 0)
	return best
}

func TestMaxNodeDisjointPathsKnown(t *testing.T) {
	// Diamond: 1→2→4, 1→3→4 gives 2 disjoint paths.
	g := edgeList(
		[2]model.ID{1, 2}, [2]model.ID{2, 4},
		[2]model.ID{1, 3}, [2]model.ID{3, 4},
	)
	if got := g.MaxNodeDisjointPaths(1, 4, 0); got != 2 {
		t.Fatalf("diamond paths = %d, want 2", got)
	}
	// Adding the direct edge 1→4 makes it 3.
	g.AddEdge(1, 4)
	if got := g.MaxNodeDisjointPaths(1, 4, 0); got != 3 {
		t.Fatalf("diamond+direct = %d, want 3", got)
	}
	// Shared middle vertex: 1→2→3 and 1→2→4... single bottleneck.
	h := edgeList(
		[2]model.ID{1, 2}, [2]model.ID{2, 3}, [2]model.ID{2, 4}, [2]model.ID{4, 3},
	)
	if got := h.MaxNodeDisjointPaths(1, 3, 0); got != 1 {
		t.Fatalf("bottleneck paths = %d, want 1", got)
	}
	// No path.
	if got := h.MaxNodeDisjointPaths(3, 1, 0); got != 0 {
		t.Fatalf("no-path = %d, want 0", got)
	}
	// Same node.
	if got := h.MaxNodeDisjointPaths(1, 1, 0); got != 0 {
		t.Fatalf("s==t = %d, want 0", got)
	}
}

func TestMaxNodeDisjointPathsLimit(t *testing.T) {
	g := CompleteGraph(1, 2, 3, 4, 5, 6)
	if got := g.MaxNodeDisjointPaths(1, 2, 3); got != 3 {
		t.Fatalf("limited = %d, want 3", got)
	}
	if got := g.MaxNodeDisjointPaths(1, 2, 0); got != 5 {
		t.Fatalf("K6 paths = %d, want 5", got)
	}
}

func TestMaxNodeDisjointPathsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(5) // 3..7 nodes
		g := New()
		for i := 1; i <= n; i++ {
			g.AddNode(model.ID(i))
		}
		for u := 1; u <= n; u++ {
			for v := 1; v <= n; v++ {
				if u != v && rng.Float64() < 0.4 {
					g.AddEdge(model.ID(u), model.ID(v))
				}
			}
		}
		s, tt := model.ID(1), model.ID(2)
		want := bruteMaxDisjoint(g, s, tt)
		got := g.MaxNodeDisjointPaths(s, tt, 0)
		if got != want {
			t.Fatalf("trial %d: flow=%d brute=%d\ngraph:\n%s", trial, got, want, g)
		}
	}
}

func bruteKappa(g *Digraph) int {
	if g.NumNodes() == 1 {
		return InfiniteConnectivity
	}
	best := g.NumNodes() - 1
	for _, u := range g.Nodes() {
		for _, v := range g.Nodes() {
			if u == v {
				continue
			}
			if p := bruteMaxDisjoint(g, u, v); p < best {
				best = p
			}
		}
	}
	return best
}

func TestStrongConnectivityKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Digraph
		want int
	}{
		{"K4", CompleteGraph(1, 2, 3, 4), 3},
		{"3-cycle", edgeList([2]model.ID{1, 2}, [2]model.ID{2, 3}, [2]model.ID{3, 1}), 1},
		{"path", edgeList([2]model.ID{1, 2}, [2]model.ID{2, 3}), 0},
		{"single", func() *Digraph { g := New(); g.AddNode(1); return g }(), InfiniteConnectivity},
	}
	for _, c := range cases {
		if got := c.g.StrongConnectivity(); got != c.want {
			t.Errorf("%s: κ = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestStrongConnectivityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(5) // 2..6 nodes
		g := New()
		for i := 1; i <= n; i++ {
			g.AddNode(model.ID(i))
		}
		for u := 1; u <= n; u++ {
			for v := 1; v <= n; v++ {
				if u != v && rng.Float64() < 0.5 {
					g.AddEdge(model.ID(u), model.ID(v))
				}
			}
		}
		want := bruteKappa(g)
		got := g.StrongConnectivity()
		if got != want {
			t.Fatalf("trial %d: κ=%d brute=%d\ngraph:\n%s", trial, got, want, g)
		}
		for k := 0; k <= want+1; k++ {
			if g.IsKStronglyConnected(k) != (k <= want) {
				t.Fatalf("trial %d: IsKStronglyConnected(%d) inconsistent with κ=%d", trial, k, want)
			}
		}
	}
}

func TestCirculantConnectivity(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for _, m := range []int{k + 2, k + 4, 8} {
			g := New()
			ids := make([]model.ID, m)
			for i := range ids {
				ids[i] = model.ID(i + 1)
				g.AddNode(ids[i])
			}
			circulant(g, ids, k)
			if got := g.StrongConnectivity(); got != k {
				t.Errorf("circulant(m=%d,k=%d): κ = %d, want %d", m, k, got, k)
			}
		}
	}
}
