package graph

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/model"
)

// KOSRReport explains why a graph does or does not belong to k-OSR PD.
type KOSRReport struct {
	// OK reports membership in k-OSR PD; K echoes the k that was checked.
	OK               bool
	K                int
	Sink             model.IDSet // the unique sink component, when it exists
	Reason           string      // empty when OK
	SinkConnectivity int         // κ(G[sink]) actually verified (≥ K when OK)
}

// CheckKOSR verifies Definition 1 (k-One Sink Reducibility) for g:
//
//  1. the undirected counterpart of g is connected;
//  2. the condensation of g has exactly one sink component;
//  3. the sink component is k-strongly connected;
//  4. from every node outside the sink there are ≥ k node-disjoint paths to
//     every sink node.
func CheckKOSR(g *Digraph, k int) KOSRReport {
	r := KOSRReport{K: k}
	if g.NumNodes() == 0 {
		r.Reason = "empty graph"
		return r
	}
	if !g.UndirectedConnected() {
		r.Reason = "undirected counterpart is not connected"
		return r
	}
	sinks := g.Condense().SinkComponents()
	if len(sinks) != 1 {
		r.Reason = fmt.Sprintf("condensation has %d sink components, want exactly 1", len(sinks))
		return r
	}
	r.Sink = sinks[0]
	sinkGraph := g.Induced(r.Sink)
	if !sinkGraph.IsKStronglyConnected(k) {
		r.Reason = fmt.Sprintf("sink component %v is not %d-strongly connected", r.Sink, k)
		return r
	}
	if r.Sink.Len() == 1 {
		r.SinkConnectivity = InfiniteConnectivity
	} else {
		r.SinkConnectivity = k
	}
	// The fan-in condition probes |non-sink| × |sink| pairs on one graph:
	// load the split-graph residual template once and reuse it per pair.
	var prober FlowProber
	prober.Load(g)
	for _, u := range g.Nodes() {
		if r.Sink.Has(u) {
			continue
		}
		for _, v := range r.Sink.Sorted() {
			if !prober.HasKDisjointPaths(u, v, k) {
				r.Reason = fmt.Sprintf("fewer than %d node-disjoint paths from %v to sink node %v", k, u, v)
				return r
			}
		}
	}
	r.OK = true
	return r
}

// BFTCUPReport is the verdict of CheckBFTCUP.
type BFTCUPReport struct {
	// OK reports whether Theorem 1's requirements hold; F echoes the checked
	// fault threshold.
	OK     bool
	F      int
	Sink   model.IDSet // sink of the safe subgraph, when it exists
	Reason string      // empty when OK
}

// CheckBFTCUP verifies Theorem 1's requirements for solving BFT-CUP: the safe
// subgraph gdi[correct] must belong to (f+1)-OSR PD and its sink must contain
// at least 2f+1 processes. byz is the set of Byzantine nodes (Gsafe = gdi
// without byz).
func CheckBFTCUP(gdi *Digraph, byz model.IDSet, f int) BFTCUPReport {
	r := BFTCUPReport{F: f}
	if byz.Len() > f {
		r.Reason = fmt.Sprintf("%d Byzantine nodes exceed fault threshold f=%d", byz.Len(), f)
		return r
	}
	safe := gdi.Without(byz)
	osr := CheckKOSR(safe, f+1)
	if !osr.OK {
		r.Reason = "safe subgraph not (f+1)-OSR: " + osr.Reason
		return r
	}
	r.Sink = osr.Sink
	if osr.Sink.Len() < 2*f+1 {
		r.Reason = fmt.Sprintf("sink of safe subgraph has %d processes, want ≥ %d", osr.Sink.Len(), 2*f+1)
		return r
	}
	r.OK = true
	return r
}
