package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/bftcup/bftcup/internal/model"
)

// DefKind enumerates the graph families a Def can describe.
type DefKind int

// Graph families.
const (
	// DefFigure is a reconstructed paper figure (fig1a … fig4b).
	DefFigure DefKind = iota
	// DefComplete is the complete digraph on N nodes (the permissioned
	// baseline).
	DefComplete
	// DefKOSR is a random k-OSR graph from GenKOSR.
	DefKOSR
	// DefExtended is a random extended k-OSR graph from GenExtendedKOSR.
	DefExtended
	// DefER is a directed Erdős–Rényi graph from GenER.
	DefER
	// DefGeo is a random geometric digraph from GenGeometric.
	DefGeo
	// DefSF is a scale-free (Barabási–Albert-style) digraph from GenScaleFree.
	DefSF
)

// Def is a compact, textual, matrix-consumable description of a knowledge
// connectivity graph: either a paper figure by name or a parameterized random
// family. It is the lingua franca between graphgen (which emits defs),
// cupsim/experiments (which accept them on the command line) and the matrix
// engine (which sweeps over them). The canonical syntax, produced by String
// and accepted by ParseDef:
//
//	fig1b                                  a paper figure
//	complete:7                             complete digraph on 7 nodes
//	kosr:sink=7,nonsink=4,k=3[,extra=0.15] random k-OSR family
//	extended:core=5,noncore=3[,extra=0.15] random extended k-OSR family
//	er:n=16,p=0.3                          directed Erdős–Rényi G(n, p)
//	geo:n=16,r=0.4                         random geometric digraph (unit square)
//	sf:n=16,m=2                            scale-free (Barabási–Albert) digraph
//
// The er/geo/sf families carry no planted sink or core: unlike the
// constructive kosr/extended generators, whether the graded sink/core
// properties hold on a draw is exactly the question a probabilistic sweep
// measures.
type Def struct {
	// Kind selects the family (figure, complete, k-OSR, extended k-OSR,
	// Erdős–Rényi, geometric, scale-free).
	Kind DefKind
	// Figure is the figure name for DefFigure.
	Figure string
	// N is the node count for DefComplete, DefER, DefGeo and DefSF.
	N int
	// Sink is the sink (kosr) or core (extended) size.
	Sink int
	// NonSink is the non-sink / non-core size.
	NonSink int
	// K is the required connectivity for DefKOSR (f+1).
	K int
	// ExtraEdgeP is the extra-edge probability for the kosr/extended families.
	ExtraEdgeP float64
	// P is the edge probability for DefER.
	P float64
	// R is the connection radius for DefGeo (unit square, Euclidean).
	R float64
	// M is the per-node attachment count for DefSF.
	M int
}

// BuiltGraph is the result of materializing a Def.
type BuiltGraph struct {
	// G is the materialized knowledge connectivity graph.
	G *Digraph
	// F is the natural fault threshold of the family: the figure's F, k-1
	// for k-OSR, f_G for extended, ⌊(n-1)/3⌋ for complete. Callers may
	// override it.
	F int
	// Byz is the figure's scripted Byzantine set (empty for generators).
	Byz model.IDSet
	// Sink is the planted sink/core for generators, the expected sink for
	// figures (nil when the figure defines none).
	Sink model.IDSet
}

// String renders the canonical textual form, parseable by ParseDef.
func (d Def) String() string {
	switch d.Kind {
	case DefFigure:
		return d.Figure
	case DefComplete:
		return fmt.Sprintf("complete:%d", d.N)
	case DefKOSR:
		s := fmt.Sprintf("kosr:sink=%d,nonsink=%d,k=%d", d.Sink, d.NonSink, d.K)
		if d.ExtraEdgeP > 0 {
			s += fmt.Sprintf(",extra=%g", d.ExtraEdgeP)
		}
		return s
	case DefExtended:
		s := fmt.Sprintf("extended:core=%d,noncore=%d", d.Sink, d.NonSink)
		if d.ExtraEdgeP > 0 {
			s += fmt.Sprintf(",extra=%g", d.ExtraEdgeP)
		}
		return s
	case DefER:
		return fmt.Sprintf("er:n=%d,p=%g", d.N, d.P)
	case DefGeo:
		return fmt.Sprintf("geo:n=%d,r=%g", d.N, d.R)
	case DefSF:
		return fmt.Sprintf("sf:n=%d,m=%d", d.N, d.M)
	default:
		return fmt.Sprintf("def(%d)", int(d.Kind))
	}
}

// Validate applies the structural checks ParseDef enforces to Defs built in
// code rather than parsed: the figure must exist, sizes must be positive.
// Lazy sweep sources call it once per axis value instead of materializing
// every cell; seed-dependent generation failures (a spec the generator
// cannot satisfy) still surface from Build.
func (d Def) Validate() error {
	switch d.Kind {
	case DefFigure:
		for _, fig := range AllFigures() {
			if fig.Name == d.Figure {
				return nil
			}
		}
		return fmt.Errorf("graph def: unknown figure %q (figures: %s)", d.Figure, strings.Join(FigureNames(), " "))
	case DefComplete:
		if d.N < 1 {
			return fmt.Errorf("graph def %q: need N ≥ 1", d)
		}
	case DefKOSR:
		if d.Sink <= 0 || d.K <= 0 || d.NonSink < 0 || !(d.ExtraEdgeP >= 0 && d.ExtraEdgeP <= 1) {
			return fmt.Errorf("graph def %q: need sink ≥ 1, k ≥ 1, nonsink ≥ 0 and 0 ≤ extra ≤ 1", d)
		}
	case DefExtended:
		if d.Sink < 3 || d.NonSink < 0 || !(d.ExtraEdgeP >= 0 && d.ExtraEdgeP <= 1) {
			return fmt.Errorf("graph def %q: need core ≥ 3, noncore ≥ 0 and 0 ≤ extra ≤ 1", d)
		}
	case DefER:
		if d.N < 1 || !(d.P >= 0 && d.P <= 1) {
			return fmt.Errorf("graph def %q: need n ≥ 1 and 0 ≤ p ≤ 1", d)
		}
	case DefGeo:
		if d.N < 1 || !(d.R >= 0) {
			return fmt.Errorf("graph def %q: need n ≥ 1 and r ≥ 0", d)
		}
	case DefSF:
		if d.N < 1 || d.M < 1 || d.M > d.N {
			return fmt.Errorf("graph def %q: need n ≥ 1 and 1 ≤ m ≤ n", d)
		}
	default:
		return fmt.Errorf("graph def: unknown kind %d", int(d.Kind))
	}
	return nil
}

// UsesSeed reports whether Build's output depends on the seed. Figures and
// complete graphs are fixed constructions; only the random families draw
// from the generator RNG.
func (d Def) UsesSeed() bool {
	switch d.Kind {
	case DefKOSR, DefExtended, DefER, DefGeo, DefSF:
		return true
	}
	return false
}

// BuildKey returns the canonical cache key identifying Build(seed)'s output:
// the canonical def string plus the effective seed, normalized to 0 for
// seed-insensitive families so every seed maps to the one cache entry it
// shares. Two defs with equal BuildKeys build identical graphs; the scenario
// compilation cache keys on it.
func (d Def) BuildKey(seed int64) string {
	if !d.UsesSeed() {
		seed = 0
	}
	return fmt.Sprintf("%s@%d", d.String(), seed)
}

// NumNodes returns the node count the def will materialize to.
func (d Def) NumNodes() int {
	switch d.Kind {
	case DefComplete, DefER, DefGeo, DefSF:
		return d.N
	case DefKOSR, DefExtended:
		return d.Sink + d.NonSink
	case DefFigure:
		for _, fig := range AllFigures() {
			if fig.Name == d.Figure {
				return fig.G.NumNodes()
			}
		}
	}
	return 0
}

// FigureNames returns the names ParseDef accepts as figures, sorted.
func FigureNames() []string {
	var names []string
	for _, fig := range AllFigures() {
		names = append(names, fig.Name)
	}
	sort.Strings(names)
	return names
}

// ParseDef parses the canonical textual form (see Def).
func ParseDef(s string) (Def, error) {
	s = strings.TrimSpace(s)
	head, rest, hasRest := strings.Cut(s, ":")
	switch head {
	case "complete":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return Def{}, fmt.Errorf("graph def %q: want complete:N with N ≥ 1", s)
		}
		return Def{Kind: DefComplete, N: n}, nil
	case "kosr":
		d := Def{Kind: DefKOSR, ExtraEdgeP: 0}
		if err := parseDefFields(rest, map[string]func(string) error{
			"sink":    intField(&d.Sink),
			"nonsink": intField(&d.NonSink),
			"k":       intField(&d.K),
			"extra":   floatField(&d.ExtraEdgeP),
		}); err != nil {
			return Def{}, fmt.Errorf("graph def %q: %w", s, err)
		}
		if d.Sink <= 0 || d.K <= 0 || d.NonSink < 0 || !(d.ExtraEdgeP >= 0 && d.ExtraEdgeP <= 1) {
			return Def{}, fmt.Errorf("graph def %q: need sink ≥ 1, k ≥ 1, nonsink ≥ 0 and 0 ≤ extra ≤ 1", s)
		}
		return d, nil
	case "extended":
		d := Def{Kind: DefExtended, ExtraEdgeP: 0}
		if err := parseDefFields(rest, map[string]func(string) error{
			"core":    intField(&d.Sink),
			"noncore": intField(&d.NonSink),
			"extra":   floatField(&d.ExtraEdgeP),
		}); err != nil {
			return Def{}, fmt.Errorf("graph def %q: %w", s, err)
		}
		if d.Sink < 3 || d.NonSink < 0 || !(d.ExtraEdgeP >= 0 && d.ExtraEdgeP <= 1) {
			return Def{}, fmt.Errorf("graph def %q: need core ≥ 3, noncore ≥ 0 and 0 ≤ extra ≤ 1", s)
		}
		return d, nil
	case "er":
		d := Def{Kind: DefER}
		if err := parseDefFields(rest, map[string]func(string) error{
			"n": intField(&d.N),
			"p": floatField(&d.P),
		}); err != nil {
			return Def{}, fmt.Errorf("graph def %q: %w", s, err)
		}
		if d.N < 1 || !(d.P >= 0 && d.P <= 1) {
			return Def{}, fmt.Errorf("graph def %q: need n ≥ 1 and 0 ≤ p ≤ 1", s)
		}
		return d, nil
	case "geo":
		d := Def{Kind: DefGeo}
		if err := parseDefFields(rest, map[string]func(string) error{
			"n": intField(&d.N),
			"r": floatField(&d.R),
		}); err != nil {
			return Def{}, fmt.Errorf("graph def %q: %w", s, err)
		}
		if d.N < 1 || !(d.R >= 0) {
			return Def{}, fmt.Errorf("graph def %q: need n ≥ 1 and r ≥ 0", s)
		}
		return d, nil
	case "sf":
		d := Def{Kind: DefSF}
		if err := parseDefFields(rest, map[string]func(string) error{
			"n": intField(&d.N),
			"m": intField(&d.M),
		}); err != nil {
			return Def{}, fmt.Errorf("graph def %q: %w", s, err)
		}
		if d.N < 1 || d.M < 1 || d.M > d.N {
			return Def{}, fmt.Errorf("graph def %q: need n ≥ 1 and 1 ≤ m ≤ n", s)
		}
		return d, nil
	default:
		if hasRest {
			// Legacy cupsim forms random:SINK:NONSINK:F and
			// random-ext:CORE:NONCORE stay accepted.
			parts := strings.Split(s, ":")
			switch {
			case head == "random" && len(parts) == 4:
				sink, e1 := strconv.Atoi(parts[1])
				non, e2 := strconv.Atoi(parts[2])
				f, e3 := strconv.Atoi(parts[3])
				if e1 != nil || e2 != nil || e3 != nil {
					return Def{}, fmt.Errorf("graph def %q: want random:SINK:NONSINK:F", s)
				}
				return Def{Kind: DefKOSR, Sink: sink, NonSink: non, K: f + 1, ExtraEdgeP: 0.15}, nil
			case head == "random-ext" && len(parts) == 3:
				core, e1 := strconv.Atoi(parts[1])
				non, e2 := strconv.Atoi(parts[2])
				if e1 != nil || e2 != nil {
					return Def{}, fmt.Errorf("graph def %q: want random-ext:CORE:NONCORE", s)
				}
				return Def{Kind: DefExtended, Sink: core, NonSink: non, ExtraEdgeP: 0.15}, nil
			}
			return Def{}, fmt.Errorf("unknown graph def %q", s)
		}
		for _, fig := range AllFigures() {
			if fig.Name == head {
				return Def{Kind: DefFigure, Figure: head}, nil
			}
		}
		return Def{}, fmt.Errorf("unknown graph def %q (figures: %s)", s, strings.Join(FigureNames(), " "))
	}
}

func parseDefFields(s string, fields map[string]func(string) error) error {
	if s == "" {
		return fmt.Errorf("missing parameters")
	}
	for _, item := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(item, "=")
		if !ok {
			return fmt.Errorf("bad parameter %q (want key=value)", item)
		}
		set, known := fields[k]
		if !known {
			return fmt.Errorf("unknown parameter %q", k)
		}
		if err := set(v); err != nil {
			return fmt.Errorf("parameter %q: %w", item, err)
		}
	}
	return nil
}

func intField(dst *int) func(string) error {
	return func(v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		*dst = n
		return nil
	}
}

func floatField(dst *float64) func(string) error {
	return func(v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		*dst = f
		return nil
	}
}

// Build materializes the def. The seed drives the random families; figures
// and complete graphs ignore it.
func (d Def) Build(seed int64) (BuiltGraph, error) {
	switch d.Kind {
	case DefFigure:
		for _, fig := range AllFigures() {
			if fig.Name == d.Figure {
				return BuiltGraph{G: fig.G, F: fig.F, Byz: fig.Byz, Sink: fig.ExpectedSink}, nil
			}
		}
		return BuiltGraph{}, fmt.Errorf("unknown figure %q", d.Figure)
	case DefComplete:
		if d.N < 1 {
			return BuiltGraph{}, fmt.Errorf("complete graph needs N ≥ 1")
		}
		ids := make([]model.ID, d.N)
		for i := range ids {
			ids[i] = model.ID(i + 1)
		}
		return BuiltGraph{G: CompleteGraph(ids...), F: (d.N - 1) / 3, Byz: model.NewIDSet()}, nil
	case DefKOSR:
		g, sink, err := GenKOSR(rand.New(rand.NewSource(seed)), GenSpec{
			SinkSize: d.Sink, NonSinkSize: d.NonSink, K: d.K, ExtraEdgeP: d.ExtraEdgeP,
		})
		if err != nil {
			return BuiltGraph{}, err
		}
		return BuiltGraph{G: g, F: d.K - 1, Byz: model.NewIDSet(), Sink: sink}, nil
	case DefExtended:
		g, core, fG, err := GenExtendedKOSR(rand.New(rand.NewSource(seed)), GenSpec{
			SinkSize: d.Sink, NonSinkSize: d.NonSink, ExtraEdgeP: d.ExtraEdgeP,
		})
		if err != nil {
			return BuiltGraph{}, err
		}
		return BuiltGraph{G: g, F: fG, Byz: model.NewIDSet(), Sink: core}, nil
	case DefER:
		if err := d.Validate(); err != nil {
			return BuiltGraph{}, err
		}
		g := GenER(rand.New(rand.NewSource(seed)), d.N, d.P)
		return BuiltGraph{G: g, F: (d.N - 1) / 3, Byz: model.NewIDSet()}, nil
	case DefGeo:
		if err := d.Validate(); err != nil {
			return BuiltGraph{}, err
		}
		g := GenGeometric(rand.New(rand.NewSource(seed)), d.N, d.R)
		return BuiltGraph{G: g, F: (d.N - 1) / 3, Byz: model.NewIDSet()}, nil
	case DefSF:
		if err := d.Validate(); err != nil {
			return BuiltGraph{}, err
		}
		g := GenScaleFree(rand.New(rand.NewSource(seed)), d.N, d.M)
		return BuiltGraph{G: g, F: (d.N - 1) / 3, Byz: model.NewIDSet()}, nil
	default:
		return BuiltGraph{}, fmt.Errorf("unknown graph def kind %d", int(d.Kind))
	}
}
