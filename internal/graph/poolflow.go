package graph

import "math/bits"

// PoolFlow answers κ(G[S]) ≥ k queries for subsets S of one fixed pool of up
// to 64 nodes, entirely in bitset space: the pool's adjacency is a []uint64
// of single-word rows (bit j in row i = edge pool[i]→pool[j]), a subset is a
// uint64 mask over pool positions, and each query runs the vertex-split
// max-flow probes on fixed-size stack-free scratch. This is the κ engine of
// the subset search: the sink enumeration probes κ for many S1 subsets of
// one peeled pool, and a PoolFlow probe costs no allocation and no graph
// materialization (the previous engine built a Digraph per subset).
//
// The split graph of a ≤64-node pool has ≤128 vertices — two words per
// residual row — and, as in FlowScratch, every residual capacity is 0/1, so
// flow values (and verdicts) are identical to Digraph.IsKStronglyConnected
// on the induced subgraph; the equivalence is property-tested across every
// graph family. The zero value is ready; Reset rebinds it to a new pool.
type PoolFlow struct {
	n    int
	adj  [64]uint64 // out-rows within the pool (no self bits)
	radj [64]uint64 // in-rows within the pool

	resid [256]uint64 // 128 rows × 2 words
	prev  [128]int8
	queue [128]int8
}

// Reset binds the PoolFlow to a pool given by its adjacency rows: adj[i] has
// bit j set iff the pool's i-th node has an edge to its j-th node. len(adj)
// must be ≤ 64; self bits are ignored.
func (pf *PoolFlow) Reset(adj []uint64) {
	if len(adj) > 64 {
		panic("graph: PoolFlow pool exceeds 64 nodes")
	}
	pf.n = len(adj)
	for i := range adj {
		pf.adj[i] = adj[i] &^ (1 << i)
	}
	for i := 0; i < pf.n; i++ {
		pf.radj[i] = 0
	}
	for i := 0; i < pf.n; i++ {
		row := pf.adj[i]
		for row != 0 {
			j := bits.TrailingZeros64(row)
			row &= row - 1
			pf.radj[j] |= 1 << i
		}
	}
}

// KappaAtLeast reports κ(G[S]) ≥ k for the subset S given as a mask over
// pool positions, matching Digraph.IsKStronglyConnected on the induced
// subgraph: vacuously true for |S| ≤ 1 or k ≤ 0, false for |S| ≤ k, then
// min-degree rejection and pairwise bounded max-flow.
func (pf *PoolFlow) KappaAtLeast(mask uint64, k int) bool {
	if pf.n < 64 {
		mask &= 1<<pf.n - 1
	}
	m := bits.OnesCount64(mask)
	if k <= 0 || m <= 1 {
		return true
	}
	if m <= k {
		return false
	}
	// κ ≤ min in/out degree within the subset.
	for rest := mask; rest != 0; {
		i := bits.TrailingZeros64(rest)
		rest &= rest - 1
		if bits.OnesCount64(pf.adj[i]&mask) < k || bits.OnesCount64(pf.radj[i]&mask) < k {
			return false
		}
	}
	for srest := mask; srest != 0; {
		s := bits.TrailingZeros64(srest)
		srest &= srest - 1
		for trest := mask; trest != 0; {
			t := bits.TrailingZeros64(trest)
			trest &= trest - 1
			if s == t {
				continue
			}
			if pf.flowPair(mask, s, t, k) < k {
				return false
			}
		}
	}
	return true
}

// flowPair is the bounded Edmonds-Karp probe between pool positions s and t
// restricted to mask, on the two-word split graph (in(i) = 2i, out(i) =
// 2i+1, source = out(s), sink = in(t); all capacities 0/1, see FlowScratch).
func (pf *PoolFlow) flowPair(mask uint64, s, t, limit int) int {
	// Build the residual rows for the masked nodes. Rows of nodes outside
	// mask are never visited: no arc of a masked row points at them.
	for rest := mask; rest != 0; {
		i := bits.TrailingZeros64(rest)
		rest &= rest - 1
		in, out := 2*i, 2*i+1
		pf.resid[2*in] = 0
		pf.resid[2*in+1] = 0
		pf.resid[2*in+(out>>6)] = 1 << (out & 63)
		lo, hi := spreadEven(pf.adj[i] & mask)
		pf.resid[2*out] = lo
		pf.resid[2*out+1] = hi
	}
	source, sink := int8(2*s+1), int8(2*t)
	flow := 0
	for {
		if limit > 0 && flow >= limit {
			return flow
		}
		var seen0, seen1 uint64
		if source < 64 {
			seen0 = 1 << source
		} else {
			seen1 = 1 << (source & 63)
		}
		pf.prev[source] = source
		pf.queue[0] = source
		qlen := 1
		found := false
		for qi := 0; qi < qlen && !found; qi++ {
			x := pf.queue[qi]
			f0 := pf.resid[2*int(x)] &^ seen0
			f1 := pf.resid[2*int(x)+1] &^ seen1
			seen0 |= f0
			seen1 |= f1
			for f0 != 0 {
				y := int8(bits.TrailingZeros64(f0))
				f0 &= f0 - 1
				pf.prev[y] = x
				if y == sink {
					found = true
					break
				}
				pf.queue[qlen] = y
				qlen++
			}
			for !found && f1 != 0 {
				y := int8(64 + bits.TrailingZeros64(f1))
				f1 &= f1 - 1
				pf.prev[y] = x
				if y == sink {
					found = true
					break
				}
				pf.queue[qlen] = y
				qlen++
			}
		}
		if !found {
			return flow
		}
		for y := sink; y != source; {
			x := pf.prev[y]
			pf.resid[2*int(x)+int(y>>6)] &^= 1 << (y & 63)
			pf.resid[2*int(y)+int(x>>6)] |= 1 << (x & 63)
			y = x
		}
		flow++
	}
}

// spreadEven maps bit i of x to bit 2i of the (lo, hi) result pair — the
// pool-position → in-vertex translation of the split graph.
func spreadEven(x uint64) (lo, hi uint64) {
	return spread32(x & 0xFFFFFFFF), spread32(x >> 32)
}

// spread32 interleaves zeros into the low 32 bits of x (bit i → bit 2i).
func spread32(x uint64) uint64 {
	x &= 0x00000000FFFFFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}
