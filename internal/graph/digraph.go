// Package graph implements the directed-graph mathematics behind knowledge
// connectivity: strongly connected components, condensations, sinks, Menger
// node-disjoint paths, strong connectivity (κ), directed k-core peeling, the
// k-OSR PD checker of Alchieri et al. (Definition 1 in the paper), and the
// BFT-CUP requirement checker (Theorem 1). It also provides generators for
// random knowledge connectivity graphs and the reconstructions of every
// figure in the paper.
//
// All iteration is deterministic (sorted by ID) so that simulations and
// searches are reproducible.
package graph

import (
	"fmt"
	"strings"

	"github.com/bftcup/bftcup/internal/model"
)

// Digraph is a directed graph over process IDs. The zero value is not usable;
// construct with New.
type Digraph struct {
	nodes model.IDSet
	adj   map[model.ID]model.IDSet // out-neighbors
}

// New returns an empty directed graph.
func New() *Digraph {
	return &Digraph{nodes: model.NewIDSet(), adj: make(map[model.ID]model.IDSet)}
}

// FromAdjacency builds a graph from an adjacency map. Nodes mentioned only as
// targets are added as isolated nodes.
func FromAdjacency(adj map[model.ID][]model.ID) *Digraph {
	g := New()
	for u, outs := range adj {
		g.AddNode(u)
		for _, v := range outs {
			g.AddEdge(u, v)
		}
	}
	return g
}

// AddNode inserts a node (no-op if present).
func (g *Digraph) AddNode(u model.ID) {
	if g.nodes.Add(u) {
		g.adj[u] = model.NewIDSet()
	}
}

// AddEdge inserts the edge u→v, adding the endpoints as needed. Self-loops
// are ignored: knowledge of oneself is implicit in the model.
func (g *Digraph) AddEdge(u, v model.ID) {
	g.AddNode(u)
	g.AddNode(v)
	if u == v {
		return
	}
	g.adj[u].Add(v)
}

// HasNode reports whether u is a node of g.
func (g *Digraph) HasNode(u model.ID) bool { return g.nodes.Has(u) }

// HasEdge reports whether the edge u→v exists.
func (g *Digraph) HasEdge(u, v model.ID) bool {
	outs, ok := g.adj[u]
	return ok && outs.Has(v)
}

// Nodes returns all nodes in ascending order.
func (g *Digraph) Nodes() []model.ID { return g.nodes.Sorted() }

// NodeSet returns a copy of the node set.
func (g *Digraph) NodeSet() model.IDSet { return g.nodes.Clone() }

// NumNodes returns the node count.
func (g *Digraph) NumNodes() int { return g.nodes.Len() }

// NumEdges returns the edge count.
func (g *Digraph) NumEdges() int {
	n := 0
	for _, outs := range g.adj {
		n += outs.Len()
	}
	return n
}

// Out returns the out-neighbors of u in ascending order.
func (g *Digraph) Out(u model.ID) []model.ID {
	if outs, ok := g.adj[u]; ok {
		return outs.Sorted()
	}
	return nil
}

// OutSet returns the out-neighbor set of u (not a copy; callers must not
// mutate it).
func (g *Digraph) OutSet(u model.ID) model.IDSet { return g.adj[u] }

// OutDegree returns |Out(u)|.
func (g *Digraph) OutDegree(u model.ID) int {
	if outs, ok := g.adj[u]; ok {
		return outs.Len()
	}
	return 0
}

// In returns the in-neighbors of u in ascending order (computed on demand).
func (g *Digraph) In(u model.ID) []model.ID {
	var ins []model.ID
	for _, v := range g.Nodes() {
		if g.adj[v].Has(u) {
			ins = append(ins, v)
		}
	}
	return ins
}

// Clone returns a deep copy.
func (g *Digraph) Clone() *Digraph {
	c := New()
	for id := range g.nodes {
		c.AddNode(id)
	}
	for u, outs := range g.adj {
		for v := range outs {
			c.adj[u].Add(v)
		}
	}
	return c
}

// Induced returns the subgraph induced by keep: nodes in keep and edges with
// both endpoints in keep.
func (g *Digraph) Induced(keep model.IDSet) *Digraph {
	s := New()
	for id := range keep {
		if g.nodes.Has(id) {
			s.AddNode(id)
		}
	}
	for u := range s.nodes {
		for v := range g.adj[u] {
			if s.nodes.Has(v) {
				s.adj[u].Add(v)
			}
		}
	}
	return s
}

// Without returns a copy of g with the given nodes (and incident edges)
// removed. This is how the safe subgraph Gsafe = Gdi[ΠC] is obtained.
func (g *Digraph) Without(remove model.IDSet) *Digraph {
	return g.Induced(g.nodes.Diff(remove))
}

// UndirectedConnected reports whether the undirected counterpart of g is
// connected (first bullet of Definition 1). The empty graph is connected.
func (g *Digraph) UndirectedConnected() bool {
	nodes := g.Nodes()
	if len(nodes) <= 1 {
		return true
	}
	und := make(map[model.ID]model.IDSet, len(nodes))
	for _, u := range nodes {
		und[u] = model.NewIDSet()
	}
	for u, outs := range g.adj {
		for v := range outs {
			und[u].Add(v)
			und[v].Add(u)
		}
	}
	seen := model.NewIDSet(nodes[0])
	stack := []model.ID{nodes[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range und[u].Sorted() {
			if seen.Add(v) {
				stack = append(stack, v)
			}
		}
	}
	return seen.Len() == len(nodes)
}

// Reachable returns the set of nodes reachable from u (including u).
func (g *Digraph) Reachable(u model.ID) model.IDSet {
	seen := model.NewIDSet(u)
	stack := []model.ID{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range g.adj[x] {
			if seen.Add(v) {
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// String renders the adjacency list, one node per line, deterministically.
func (g *Digraph) String() string {
	var b strings.Builder
	for _, u := range g.Nodes() {
		fmt.Fprintf(&b, "%v -> %v\n", u, model.IDSet(g.adj[u]).String())
	}
	return b.String()
}

// SCCs returns the strongly connected components of g as sorted slices of
// sorted IDs, in reverse topological order of the condensation (components
// that can only be reached come first... specifically Tarjan's output order:
// a component is emitted before any component that can reach it). Use
// Condensation for explicit DAG structure.
func (g *Digraph) SCCs() []model.IDSet {
	// Iterative Tarjan to keep stack usage bounded.
	nodes := g.Nodes()
	index := make(map[model.ID]int, len(nodes))
	low := make(map[model.ID]int, len(nodes))
	onStack := make(map[model.ID]bool, len(nodes))
	var stack []model.ID
	var comps []model.IDSet
	counter := 0

	type frame struct {
		u     model.ID
		outs  []model.ID
		child int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		frames := []frame{{u: root, outs: g.Out(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.child < len(f.outs) {
				v := f.outs[f.child]
				f.child++
				if _, ok := index[v]; !ok {
					index[v] = counter
					low[v] = counter
					counter++
					stack = append(stack, v)
					onStack[v] = true
					frames = append(frames, frame{u: v, outs: g.Out(v)})
					advanced = true
					break
				} else if onStack[v] {
					if index[v] < low[f.u] {
						low[f.u] = index[v]
					}
				}
			}
			if advanced {
				continue
			}
			// Post-visit of f.u.
			u := f.u
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[u] < low[p.u] {
					low[p.u] = low[u]
				}
			}
			if low[u] == index[u] {
				comp := model.NewIDSet()
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp.Add(w)
					if w == u {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// Condensation describes the DAG obtained by contracting each SCC of a graph
// to a single node.
type Condensation struct {
	Comps []model.IDSet        // component membership
	Of    map[model.ID]int     // node → component index
	Succ  map[int]map[int]bool // edges between components
}

// Condense computes the condensation of g.
func (g *Digraph) Condense() *Condensation {
	comps := g.SCCs()
	c := &Condensation{
		Comps: comps,
		Of:    make(map[model.ID]int),
		Succ:  make(map[int]map[int]bool),
	}
	for i, comp := range comps {
		for id := range comp {
			c.Of[id] = i
		}
		c.Succ[i] = make(map[int]bool)
	}
	for u, outs := range g.adj {
		cu := c.Of[u]
		for v := range outs {
			if cv := c.Of[v]; cv != cu {
				c.Succ[cu][cv] = true
			}
		}
	}
	return c
}

// SinkComponents returns the components with no outgoing condensation edges.
func (c *Condensation) SinkComponents() []model.IDSet {
	var sinks []model.IDSet
	for i, comp := range c.Comps {
		if len(c.Succ[i]) == 0 {
			sinks = append(sinks, comp)
		}
	}
	return sinks
}

// UniqueSink returns the sole sink component of g's condensation, or ok=false
// if there are zero or several sinks. This is Vsink of Definition 1.
func (g *Digraph) UniqueSink() (model.IDSet, bool) {
	sinks := g.Condense().SinkComponents()
	if len(sinks) != 1 {
		return nil, false
	}
	return sinks[0], true
}

// DirectedCore returns the maximal subset S of g's nodes such that every node
// of S has in-degree ≥ k and out-degree ≥ k within G[S] (the directed k-core).
// Every subgraph with κ ≥ k is contained in it, because vertex connectivity is
// bounded by minimum degree; this makes peeling a sound pruning step for the
// sink search.
func (g *Digraph) DirectedCore(k int) model.IDSet {
	if k <= 0 {
		return g.NodeSet()
	}
	alive := g.NodeSet()
	indeg := make(map[model.ID]int, alive.Len())
	outdeg := make(map[model.ID]int, alive.Len())
	for u := range alive {
		for v := range g.adj[u] {
			if alive.Has(v) {
				outdeg[u]++
				indeg[v]++
			}
		}
	}
	queue := make([]model.ID, 0, alive.Len())
	for _, u := range alive.Sorted() {
		if indeg[u] < k || outdeg[u] < k {
			queue = append(queue, u)
		}
	}
	dead := model.NewIDSet()
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if !alive.Has(u) {
			continue
		}
		alive.Remove(u)
		dead.Add(u)
		for v := range g.adj[u] {
			if alive.Has(v) {
				indeg[v]--
				if indeg[v] < k && !dead.Has(v) {
					queue = append(queue, v)
				}
			}
		}
		for _, w := range g.Nodes() {
			if alive.Has(w) && g.adj[w].Has(u) {
				outdeg[w]--
				if outdeg[w] < k && !dead.Has(w) {
					queue = append(queue, w)
				}
			}
		}
	}
	return alive
}
