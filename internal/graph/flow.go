package graph

import (
	"math"
	"slices"

	"github.com/bftcup/bftcup/internal/model"
)

// InfiniteConnectivity is the κ reported for single-node graphs: "for any
// pair of nodes" is vacuously true for every k, matching the g = 0 base case
// of isSink* where a lone process with no outgoing knowledge is a sink.
const InfiniteConnectivity = math.MaxInt32

// FlowScratch owns the reusable state of the max-flow computations: the
// residual capacity matrix of the vertex-split graph, the BFS predecessor
// and queue arrays, and the node-index mapping. A zero FlowScratch is ready
// to use; buffers grow to the largest graph seen and are reused afterwards,
// so repeated connectivity checks (the sink search probes κ for every
// candidate subset) stop allocating once warm. A FlowScratch is for one
// goroutine; it holds no graph state between calls.
type FlowScratch struct {
	cap   [][]int8
	prev  []int
	queue []int
	nodes []model.ID
	idx   map[model.ID]int
}

// load indexes g's nodes into the scratch and sizes the buffers for the
// vertex-split graph. Returns the split-graph size (2·|nodes|).
func (sc *FlowScratch) load(g *Digraph) int {
	sc.nodes = sc.nodes[:0]
	for id := range g.nodes {
		sc.nodes = append(sc.nodes, id)
	}
	// Index assignment must not depend on map order; sort like Nodes does.
	slices.Sort(sc.nodes)
	if sc.idx == nil {
		sc.idx = make(map[model.ID]int, len(sc.nodes))
	} else {
		clear(sc.idx)
	}
	for i, u := range sc.nodes {
		sc.idx[u] = i
	}
	size := 2 * len(sc.nodes)
	for len(sc.cap) < size {
		sc.cap = append(sc.cap, nil)
	}
	for i := 0; i < size; i++ {
		if len(sc.cap[i]) < size {
			sc.cap[i] = make([]int8, size)
		}
	}
	if len(sc.prev) < size {
		sc.prev = make([]int, size)
		sc.queue = make([]int, 0, size)
	}
	return size
}

// flowPair runs the bounded Edmonds-Karp max-flow between s and t on the
// loaded graph. The scratch must have been loaded with g; the residual
// matrix is rebuilt from g's adjacency on every call.
func (g *Digraph) flowPair(sc *FlowScratch, s, t model.ID, limit, size int) int {
	for i := 0; i < size; i++ {
		row := sc.cap[i]
		for j := 0; j < size; j++ {
			row[j] = 0
		}
	}
	in := func(u model.ID) int { return 2 * sc.idx[u] }
	out := func(u model.ID) int { return 2*sc.idx[u] + 1 }
	big := int8(batchCap(limit, len(sc.nodes)))
	for _, u := range sc.nodes {
		if u == s || u == t {
			sc.cap[in(u)][out(u)] = big
		} else {
			sc.cap[in(u)][out(u)] = 1
		}
	}
	for _, u := range sc.nodes {
		for v := range g.adj[u] {
			sc.cap[out(u)][in(v)] = 1
		}
	}
	source, sink := out(s), in(t)
	flow := 0
	for {
		if limit > 0 && flow >= limit {
			return flow
		}
		// BFS for an augmenting path.
		for i := 0; i < size; i++ {
			sc.prev[i] = -1
		}
		sc.prev[source] = source
		queue := append(sc.queue[:0], source)
		found := false
		for len(queue) > 0 && !found {
			x := queue[0]
			queue = queue[1:]
			for y := 0; y < size; y++ {
				if sc.prev[y] == -1 && sc.cap[x][y] > 0 {
					sc.prev[y] = x
					if y == sink {
						found = true
						break
					}
					queue = append(queue, y)
				}
			}
		}
		if !found {
			return flow
		}
		for y := sink; y != source; {
			x := sc.prev[y]
			sc.cap[x][y]--
			sc.cap[y][x]++
			y = x
		}
		flow++
	}
}

// MaxNodeDisjointPaths returns the maximum number of internally-node-disjoint
// directed paths from s to t in g, computed as max-flow on the vertex-split
// graph (every node other than s and t has capacity 1). limit > 0 caps the
// search: the function returns early once limit paths are found, which is all
// the k-OSR checks ever need. limit ≤ 0 means unlimited.
//
// A direct edge s→t counts as one path, per the paper's path-counting in
// Definition 1.
func (g *Digraph) MaxNodeDisjointPaths(s, t model.ID, limit int) int {
	var sc FlowScratch
	return g.MaxNodeDisjointPathsScratch(&sc, s, t, limit)
}

// MaxNodeDisjointPathsScratch is MaxNodeDisjointPaths running on caller-owned
// scratch, for hot paths that probe many pairs or many graphs.
func (g *Digraph) MaxNodeDisjointPathsScratch(sc *FlowScratch, s, t model.ID, limit int) int {
	if s == t || !g.HasNode(s) || !g.HasNode(t) {
		return 0
	}
	size := sc.load(g)
	return g.flowPair(sc, s, t, limit, size)
}

// batchCap bounds the "infinite" capacity on the source/sink split arcs.
func batchCap(limit, n int) int {
	if limit > 0 && limit < n {
		return limit + 1
	}
	if n > 126 {
		return 126
	}
	if n == 0 {
		return 1
	}
	return n
}

// HasKDisjointPaths reports whether there are at least k internally-node-
// disjoint paths from s to t.
func (g *Digraph) HasKDisjointPaths(s, t model.ID, k int) bool {
	if k <= 0 {
		return true
	}
	return g.MaxNodeDisjointPaths(s, t, k) >= k
}

// IsKStronglyConnected reports whether every ordered pair of distinct nodes
// is joined by at least k node-disjoint paths (the paper's definition of
// k-strong connectivity). Graphs with ≤ 1 node are k-strongly connected for
// every k (vacuous quantification).
func (g *Digraph) IsKStronglyConnected(k int) bool {
	var sc FlowScratch
	return g.IsKStronglyConnectedScratch(&sc, k)
}

// IsKStronglyConnectedScratch is IsKStronglyConnected on caller-owned
// scratch: the node index and flow buffers are built once and shared by
// every pair probe instead of reallocated per pair.
func (g *Digraph) IsKStronglyConnectedScratch(sc *FlowScratch, k int) bool {
	if k <= 0 || g.NumNodes() <= 1 {
		return true
	}
	if g.NumNodes() <= k {
		// κ(G) ≤ n-1 always (at most n-2 internal vertices plus the direct
		// edge ⇒ ≤ n-1 disjoint paths).
		return false
	}
	// Quick degree-based rejection: κ ≤ min degree.
	for u := range g.nodes {
		if g.OutDegree(u) < k {
			return false
		}
	}
	size := sc.load(g)
	nodes := sc.nodes
	for i := range nodes {
		for j := range nodes {
			if i == j {
				continue
			}
			if g.flowPair(sc, nodes[i], nodes[j], k, size) < k {
				return false
			}
		}
	}
	return true
}

// StrongConnectivity returns κ(g): the maximum k such that g is k-strongly
// connected. Single-node graphs return InfiniteConnectivity; disconnected or
// not strongly connected graphs return 0.
func (g *Digraph) StrongConnectivity() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if n == 1 {
		return InfiniteConnectivity
	}
	// κ is at most the minimum of in/out degrees and n-1.
	best := n - 1
	nodes := g.Nodes()
	indeg := make(map[model.ID]int, n)
	for _, u := range nodes {
		for v := range g.adj[u] {
			indeg[v]++
		}
	}
	for _, u := range nodes {
		if d := g.OutDegree(u); d < best {
			best = d
		}
		if d := indeg[u]; d < best {
			best = d
		}
	}
	if best <= 0 {
		return 0
	}
	var sc FlowScratch
	size := sc.load(g)
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			p := g.flowPair(&sc, u, v, best, size)
			if p < best {
				best = p
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}
