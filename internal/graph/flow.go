package graph

import (
	"math"
	"math/bits"

	"github.com/bftcup/bftcup/internal/model"
)

// InfiniteConnectivity is the κ reported for single-node graphs: "for any
// pair of nodes" is vacuously true for every k, matching the g = 0 base case
// of isSink* where a lone process with no outgoing knowledge is a sink.
const InfiniteConnectivity = math.MaxInt32

// FlowScratch owns the reusable state of the max-flow computations, built on
// bitsets: the adjacency snapshot (BitAdjacency), the base residual rows of
// the vertex-split graph, the per-probe residual copy, and the BFS arrays. A
// zero FlowScratch is ready to use; buffers grow to the largest graph seen
// and are reused afterwards, so repeated connectivity checks (the sink search
// probes κ for every candidate subset) stop allocating once warm. A
// FlowScratch is for one goroutine; load snapshots one graph at a time.
//
// Every residual capacity is 0 or 1, so the residual graph is a pure bitset
// matrix. That is sound because the probes run from out(s) to in(t) in the
// vertex-split graph: the only arcs that classically need capacity > 1 are
// the internal arcs in(s)→out(s) and in(t)→out(t), and neither can cross any
// out(s)/in(t) cut in the source→sink direction — in(s)→out(s) ends on the
// source side (at the source itself) and in(t)→out(t) starts on the sink
// side (at the sink itself) — so their capacity never bounds the max flow
// and pinning them to 1 changes no flow value. Max-flow values are unique,
// so every verdict (and hence every trace digest downstream) is identical to
// the previous matrix-based engine's.
//
// The base rows depend only on the graph, not on the probed pair: load
// builds them once and each pair probe starts from a flat copy — the copy
// plus word-parallel BFS is what makes many-pair probes (κ checks, the
// CheckKOSR/CheckExtendedKOSR path conditions) cheap.
type FlowScratch struct {
	adj   BitAdjacency
	words int      // words per split-graph row
	base  []uint64 // 2n rows × words: pair-independent residual template
	resid []uint64
	prev  []int32
	queue []int32
	seen  []uint64 // visited bitset for the BFS
}

// load snapshots g's adjacency and builds the split-graph residual template.
// Returns the split-graph size (2·|nodes|).
func (sc *FlowScratch) load(g *Digraph) int {
	sc.adj.Load(g)
	n := sc.adj.NumNodes()
	size := 2 * n
	sc.words = (size + 63) / 64
	need := size * sc.words
	if cap(sc.base) < need {
		sc.base = make([]uint64, need)
		sc.resid = make([]uint64, need)
	}
	sc.base = sc.base[:need]
	sc.resid = sc.resid[:need]
	for i := range sc.base {
		sc.base[i] = 0
	}
	// in(u) = 2i, out(u) = 2i+1. Internal arcs in(u)→out(u) carry the
	// node-disjointness; adjacency arcs out(u)→in(v) carry the edges.
	for i := 0; i < n; i++ {
		in, out := 2*i, 2*i+1
		sc.base[in*sc.words+(out>>6)] |= 1 << (out & 63)
		row := sc.adj.Row(i)
		dst := sc.base[out*sc.words : (out+1)*sc.words]
		for w, word := range row {
			for word != 0 {
				j := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				inj := 2 * j
				dst[inj>>6] |= 1 << (inj & 63)
			}
		}
	}
	if cap(sc.prev) < size {
		sc.prev = make([]int32, size)
		sc.queue = make([]int32, size)
	}
	sc.prev = sc.prev[:size]
	sc.queue = sc.queue[:size]
	if cap(sc.seen) < sc.words {
		sc.seen = make([]uint64, sc.words)
	}
	sc.seen = sc.seen[:sc.words]
	return size
}

// flowPair runs the bounded Edmonds-Karp max-flow between the loaded nodes
// with indices si and ti: residual rows are copied from the template, then
// augmenting paths are found by word-parallel BFS until the limit is reached
// or no path remains. limit ≤ 0 means unlimited.
func (sc *FlowScratch) flowPair(si, ti, limit int) int {
	copy(sc.resid, sc.base)
	source, sink := int32(2*si+1), int32(2*ti)
	size := 2 * sc.adj.NumNodes()
	flow := 0
	for {
		if limit > 0 && flow >= limit {
			return flow
		}
		for w := range sc.seen {
			sc.seen[w] = 0
		}
		sc.seen[source>>6] |= 1 << (source & 63)
		sc.prev[source] = source
		sc.queue[0] = source
		qlen := 1
		found := false
		for qi := 0; qi < qlen && !found; qi++ {
			x := sc.queue[qi]
			row := sc.resid[int(x)*sc.words : (int(x)+1)*sc.words]
			for w := 0; w < sc.words; w++ {
				fresh := row[w] &^ sc.seen[w]
				if fresh == 0 {
					continue
				}
				sc.seen[w] |= fresh
				for fresh != 0 {
					y := int32(w<<6 + bits.TrailingZeros64(fresh))
					fresh &= fresh - 1
					if int(y) >= size {
						break
					}
					sc.prev[y] = x
					if y == sink {
						found = true
						break
					}
					sc.queue[qlen] = y
					qlen++
				}
				if found {
					break
				}
			}
		}
		if !found {
			return flow
		}
		for y := sink; y != source; {
			x := sc.prev[y]
			sc.resid[int(x)*sc.words+int(y>>6)] &^= 1 << (y & 63)
			sc.resid[int(y)*sc.words+int(x>>6)] |= 1 << (x & 63)
			y = x
		}
		flow++
	}
}

// MaxNodeDisjointPaths returns the maximum number of internally-node-disjoint
// directed paths from s to t in g, computed as max-flow on the vertex-split
// graph (every node other than s and t has capacity 1). limit > 0 caps the
// search: the function returns early once limit paths are found, which is all
// the k-OSR checks ever need. limit ≤ 0 means unlimited.
//
// A direct edge s→t counts as one path, per the paper's path-counting in
// Definition 1.
func (g *Digraph) MaxNodeDisjointPaths(s, t model.ID, limit int) int {
	var sc FlowScratch
	return g.MaxNodeDisjointPathsScratch(&sc, s, t, limit)
}

// MaxNodeDisjointPathsScratch is MaxNodeDisjointPaths running on caller-owned
// scratch, for hot paths that probe many pairs or many graphs.
func (g *Digraph) MaxNodeDisjointPathsScratch(sc *FlowScratch, s, t model.ID, limit int) int {
	if s == t || !g.HasNode(s) || !g.HasNode(t) {
		return 0
	}
	sc.load(g)
	si, _ := sc.adj.Index(s)
	ti, _ := sc.adj.Index(t)
	return sc.flowPair(si, ti, limit)
}

// HasKDisjointPaths reports whether there are at least k internally-node-
// disjoint paths from s to t.
func (g *Digraph) HasKDisjointPaths(s, t model.ID, k int) bool {
	if k <= 0 {
		return true
	}
	return g.MaxNodeDisjointPaths(s, t, k) >= k
}

// FlowProber amortizes the split-graph construction across many pair probes
// on one graph: Load once, then every probe costs one residual copy plus the
// BFS augments. CheckKOSR's fan-in condition and CheckExtendedKOSR's C2 loop
// probe |non-sink|×|sink| pairs on the same graph, which previously rebuilt
// the capacity matrix per pair.
type FlowProber struct {
	sc     FlowScratch
	loaded bool
}

// Load snapshots g for subsequent probes.
func (p *FlowProber) Load(g *Digraph) {
	p.sc.load(g)
	p.loaded = true
}

// MaxNodeDisjointPaths is Digraph.MaxNodeDisjointPaths against the loaded
// snapshot. Nodes unknown to the snapshot yield 0.
func (p *FlowProber) MaxNodeDisjointPaths(s, t model.ID, limit int) int {
	if !p.loaded || s == t {
		return 0
	}
	si, ok1 := p.sc.adj.Index(s)
	ti, ok2 := p.sc.adj.Index(t)
	if !ok1 || !ok2 {
		return 0
	}
	return p.sc.flowPair(si, ti, limit)
}

// HasKDisjointPaths reports ≥ k internally-node-disjoint paths from s to t
// in the loaded snapshot.
func (p *FlowProber) HasKDisjointPaths(s, t model.ID, k int) bool {
	if k <= 0 {
		return true
	}
	return p.MaxNodeDisjointPaths(s, t, k) >= k
}

// IsKStronglyConnected reports whether every ordered pair of distinct nodes
// is joined by at least k node-disjoint paths (the paper's definition of
// k-strong connectivity). Graphs with ≤ 1 node are k-strongly connected for
// every k (vacuous quantification).
func (g *Digraph) IsKStronglyConnected(k int) bool {
	var sc FlowScratch
	return g.IsKStronglyConnectedScratch(&sc, k)
}

// IsKStronglyConnectedScratch is IsKStronglyConnected on caller-owned
// scratch: the node index and the split-graph residual template are built
// once and shared by every pair probe instead of reallocated per pair.
func (g *Digraph) IsKStronglyConnectedScratch(sc *FlowScratch, k int) bool {
	if k <= 0 || g.NumNodes() <= 1 {
		return true
	}
	if g.NumNodes() <= k {
		// κ(G) ≤ n-1 always (at most n-2 internal vertices plus the direct
		// edge ⇒ ≤ n-1 disjoint paths).
		return false
	}
	// Quick degree-based rejection: κ ≤ min degree.
	for u := range g.nodes {
		if g.OutDegree(u) < k {
			return false
		}
	}
	sc.load(g)
	n := sc.adj.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if sc.flowPair(i, j, k) < k {
				return false
			}
		}
	}
	return true
}

// StrongConnectivity returns κ(g): the maximum k such that g is k-strongly
// connected. Single-node graphs return InfiniteConnectivity; disconnected or
// not strongly connected graphs return 0.
func (g *Digraph) StrongConnectivity() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if n == 1 {
		return InfiniteConnectivity
	}
	// κ is at most the minimum of in/out degrees and n-1.
	best := n - 1
	nodes := g.Nodes()
	indeg := make(map[model.ID]int, n)
	for _, u := range nodes {
		for v := range g.adj[u] {
			indeg[v]++
		}
	}
	for _, u := range nodes {
		if d := g.OutDegree(u); d < best {
			best = d
		}
		if d := indeg[u]; d < best {
			best = d
		}
	}
	if best <= 0 {
		return 0
	}
	var sc FlowScratch
	sc.load(g)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p := sc.flowPair(i, j, best)
			if p < best {
				best = p
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}
