package graph

import (
	"math"

	"github.com/bftcup/bftcup/internal/model"
)

// InfiniteConnectivity is the κ reported for single-node graphs: "for any
// pair of nodes" is vacuously true for every k, matching the g = 0 base case
// of isSink* where a lone process with no outgoing knowledge is a sink.
const InfiniteConnectivity = math.MaxInt32

// MaxNodeDisjointPaths returns the maximum number of internally-node-disjoint
// directed paths from s to t in g, computed as max-flow on the vertex-split
// graph (every node other than s and t has capacity 1). limit > 0 caps the
// search: the function returns early once limit paths are found, which is all
// the k-OSR checks ever need. limit ≤ 0 means unlimited.
//
// A direct edge s→t counts as one path, per the paper's path-counting in
// Definition 1.
func (g *Digraph) MaxNodeDisjointPaths(s, t model.ID, limit int) int {
	if s == t || !g.HasNode(s) || !g.HasNode(t) {
		return 0
	}
	// Index nodes: each node u maps to u_in = 2i and u_out = 2i+1.
	nodes := g.Nodes()
	idx := make(map[model.ID]int, len(nodes))
	for i, u := range nodes {
		idx[u] = i
	}
	n := len(nodes)
	size := 2 * n
	// Residual adjacency as capacity matrix in a map: small graphs, fine.
	cap := make([][]int8, size)
	for i := range cap {
		cap[i] = make([]int8, size)
	}
	in := func(u model.ID) int { return 2 * idx[u] }
	out := func(u model.ID) int { return 2*idx[u] + 1 }
	big := int8(batchCap(limit, n))
	for _, u := range nodes {
		if u == s || u == t {
			cap[in(u)][out(u)] = big
		} else {
			cap[in(u)][out(u)] = 1
		}
	}
	for _, u := range nodes {
		for v := range g.adj[u] {
			cap[out(u)][in(v)] = 1
		}
	}
	source, sink := out(s), in(t)
	flow := 0
	prev := make([]int, size)
	for {
		if limit > 0 && flow >= limit {
			return flow
		}
		// BFS for an augmenting path.
		for i := range prev {
			prev[i] = -1
		}
		prev[source] = source
		queue := []int{source}
		found := false
		for len(queue) > 0 && !found {
			x := queue[0]
			queue = queue[1:]
			for y := 0; y < size; y++ {
				if prev[y] == -1 && cap[x][y] > 0 {
					prev[y] = x
					if y == sink {
						found = true
						break
					}
					queue = append(queue, y)
				}
			}
		}
		if !found {
			return flow
		}
		for y := sink; y != source; {
			x := prev[y]
			cap[x][y]--
			cap[y][x]++
			y = x
		}
		flow++
	}
}

// batchCap bounds the "infinite" capacity on the source/sink split arcs.
func batchCap(limit, n int) int {
	if limit > 0 && limit < n {
		return limit + 1
	}
	if n > 126 {
		return 126
	}
	if n == 0 {
		return 1
	}
	return n
}

// HasKDisjointPaths reports whether there are at least k internally-node-
// disjoint paths from s to t.
func (g *Digraph) HasKDisjointPaths(s, t model.ID, k int) bool {
	if k <= 0 {
		return true
	}
	return g.MaxNodeDisjointPaths(s, t, k) >= k
}

// IsKStronglyConnected reports whether every ordered pair of distinct nodes
// is joined by at least k node-disjoint paths (the paper's definition of
// k-strong connectivity). Graphs with ≤ 1 node are k-strongly connected for
// every k (vacuous quantification).
func (g *Digraph) IsKStronglyConnected(k int) bool {
	if k <= 0 || g.NumNodes() <= 1 {
		return true
	}
	nodes := g.Nodes()
	if g.NumNodes() <= k {
		// κ(G) ≤ n-1 always (at most n-2 internal vertices plus the direct
		// edge ⇒ ≤ n-1 disjoint paths).
		return false
	}
	// Quick degree-based rejection: κ ≤ min degree.
	for _, u := range nodes {
		if g.OutDegree(u) < k {
			return false
		}
	}
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			if !g.HasKDisjointPaths(u, v, k) {
				return false
			}
		}
	}
	return true
}

// StrongConnectivity returns κ(g): the maximum k such that g is k-strongly
// connected. Single-node graphs return InfiniteConnectivity; disconnected or
// not strongly connected graphs return 0.
func (g *Digraph) StrongConnectivity() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if n == 1 {
		return InfiniteConnectivity
	}
	// κ is at most the minimum of in/out degrees and n-1.
	best := n - 1
	nodes := g.Nodes()
	indeg := make(map[model.ID]int, n)
	for _, u := range nodes {
		for v := range g.adj[u] {
			indeg[v]++
		}
	}
	for _, u := range nodes {
		if d := g.OutDegree(u); d < best {
			best = d
		}
		if d := indeg[u]; d < best {
			best = d
		}
	}
	if best <= 0 {
		return 0
	}
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			p := g.MaxNodeDisjointPaths(u, v, best)
			if p < best {
				best = p
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}
