package graph

import (
	"math"
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/model"
)

// TestGenERStatistics checks the Erdős–Rényi generator against its model:
// over many seeds the edge count concentrates around p·n·(n−1) (each of the
// n·(n−1) ordered pairs is an independent Bernoulli(p) draw), and the
// aggregate degree distribution is not degenerate. Tolerances are set at ~6
// standard deviations of the binomial so the test is deterministic in
// practice while still catching a broken probability comparison (e.g. using
// ≤ instead of <, or drawing per unordered pair).
func TestGenERStatistics(t *testing.T) {
	const n = 24
	for _, p := range []float64{0.1, 0.3, 0.6} {
		trials := 40
		pairs := float64(n * (n - 1))
		totalEdges := 0
		minOut, maxOut := n, 0
		for s := 0; s < trials; s++ {
			g := GenER(rand.New(rand.NewSource(int64(s+1))), n, p)
			if g.NumNodes() != n {
				t.Fatalf("p=%v seed %d: %d nodes, want %d", p, s+1, g.NumNodes(), n)
			}
			totalEdges += g.NumEdges()
			for _, u := range g.Nodes() {
				d := g.OutDegree(u)
				if d < minOut {
					minOut = d
				}
				if d > maxOut {
					maxOut = d
				}
			}
		}
		mean := float64(totalEdges) / float64(trials)
		want := p * pairs
		// std of the per-trial edge count, shrunk by √trials for the mean.
		sigma := math.Sqrt(pairs*p*(1-p)) / math.Sqrt(float64(trials))
		if diff := math.Abs(mean - want); diff > 6*sigma+1 {
			t.Errorf("p=%v: mean edges %.1f over %d trials, want %.1f ± %.1f",
				p, mean, trials, want, 6*sigma+1)
		}
		// The degree distribution must spread: with p in (0,1) no node should
		// pin at the extremes across every trial simultaneously.
		if minOut == n-1 || maxOut == 0 {
			t.Errorf("p=%v: degenerate out-degrees (min %d, max %d)", p, minOut, maxOut)
		}
	}
	// Boundary parameters are exact, not statistical.
	if g := GenER(rand.New(rand.NewSource(1)), 10, 0); g.NumEdges() != 0 {
		t.Errorf("p=0 produced %d edges", g.NumEdges())
	}
	if g := GenER(rand.New(rand.NewSource(1)), 10, 1); g.NumEdges() != 90 {
		t.Errorf("p=1 produced %d edges, want 90", g.NumEdges())
	}
}

// TestGenGeometricRadiusMonotone pins the generator's draw-order contract:
// all 2n coordinates are drawn before thresholding, so at a fixed (n, seed)
// the point set is identical across radii and edges(r₁) ⊆ edges(r₂) whenever
// r₁ ≤ r₂. A generator that interleaved draws with thresholding would break
// this and make density sweeps incomparable across the radius axis.
func TestGenGeometricRadiusMonotone(t *testing.T) {
	radii := []float64{0.1, 0.2, 0.35, 0.5, 0.8, 1.5}
	for seed := int64(1); seed <= 5; seed++ {
		var prev *Digraph
		for _, r := range radii {
			g := GenGeometric(rand.New(rand.NewSource(seed)), 18, r)
			// Symmetry: geometric proximity is mutual knowledge.
			for _, u := range g.Nodes() {
				for _, v := range g.Out(u) {
					if !g.HasEdge(v, u) {
						t.Fatalf("seed %d r=%v: edge %d→%d has no reverse", seed, r, u, v)
					}
				}
			}
			if prev != nil {
				for _, u := range prev.Nodes() {
					for _, v := range prev.Out(u) {
						if !g.HasEdge(u, v) {
							t.Fatalf("seed %d: edge %d→%d present at smaller radius but missing at r=%v",
								seed, u, v, r)
						}
					}
				}
			}
			prev = g
		}
		// r ≥ √2 covers the unit square: the final graph must be complete.
		if got, want := prev.NumEdges(), 18*17; got != want {
			t.Errorf("seed %d: r=1.5 built %d edges, want complete %d", seed, got, want)
		}
	}
}

// TestGenScaleFreeDegreeTail checks the preferential-attachment signature:
// in-degree mass concentrates on the seed-clique nodes, so the maximum
// in-degree sits well above the mean (heavy tail), while every non-seed node
// has exactly m out-edges to distinct targets (the attachment invariant).
func TestGenScaleFreeDegreeTail(t *testing.T) {
	const n, m = 40, 2
	exceed := 0
	for seed := int64(1); seed <= 10; seed++ {
		g := GenScaleFree(rand.New(rand.NewSource(seed)), n, m)
		indeg := map[model.ID]int{}
		for _, u := range g.Nodes() {
			out := g.Out(u)
			if int(u) > m {
				if len(out) != m {
					t.Fatalf("seed %d: non-seed node %d has %d out-edges, want %d", seed, u, len(out), m)
				}
				for _, v := range out {
					if v >= u {
						t.Fatalf("seed %d: node %d attaches forward to %d", seed, u, v)
					}
				}
			}
			seen := model.NewIDSet()
			for _, v := range out {
				if !seen.Add(v) {
					t.Fatalf("seed %d: node %d has duplicate edge to %d", seed, u, v)
				}
				indeg[v]++
			}
		}
		maxIn, sumIn := 0, 0
		for _, d := range indeg {
			sumIn += d
			if d > maxIn {
				maxIn = d
			}
		}
		mean := float64(sumIn) / float64(n)
		if float64(maxIn) >= 3*mean {
			exceed++
		}
	}
	// Uniform attachment would keep max ≈ mean·(1+o(1)); preferential
	// attachment reliably produces hubs. Require the 3×-mean hub on a clear
	// majority of seeds rather than all, to keep the test statistical, not
	// flaky.
	if exceed < 7 {
		t.Errorf("heavy tail absent: only %d/10 seeds had max in-degree ≥ 3× mean", exceed)
	}
}

// TestGenProbabilisticSameSeedIdentical locks byte-identical re-generation
// for all three probabilistic families: the matrix compile cache and the
// sharded sweep resume protocol both assume (def, seed) fully determines the
// graph, independent of how many other graphs the process built in between.
func TestGenProbabilisticSameSeedIdentical(t *testing.T) {
	type gen func(*rand.Rand) *Digraph
	gens := map[string]gen{
		"er":  func(r *rand.Rand) *Digraph { return GenER(r, 20, 0.3) },
		"geo": func(r *rand.Rand) *Digraph { return GenGeometric(r, 20, 0.4) },
		"sf":  func(r *rand.Rand) *Digraph { return GenScaleFree(r, 20, 2) },
	}
	for name, gn := range gens {
		a := gn(rand.New(rand.NewSource(77)))
		// Interleave an unrelated generation to prove no hidden shared state.
		_ = gn(rand.New(rand.NewSource(13)))
		b := gn(rand.New(rand.NewSource(77)))
		if a.String() != b.String() {
			t.Errorf("%s: same seed produced different graphs", name)
		}
	}
}
