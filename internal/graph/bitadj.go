package graph

import (
	"math/bits"
	"slices"

	"github.com/bftcup/bftcup/internal/model"
)

// BitAdjacency is a word-packed adjacency matrix over an indexed snapshot of
// a digraph's nodes: row i is a []uint64 bitset of the out-neighbors of the
// i-th node in sorted-ID order. It is the representation behind the bitset
// flow engine (FlowScratch, FlowProber): reachability closures run as word
// ops over rows, and the vertex-split residual graph of the max-flow probes
// is derived from the rows once per load instead of per pair.
//
// A BitAdjacency is a snapshot — it does not track later mutations of the
// source graph. Load reuses the backing buffers, so a long-lived value warms
// up like the rest of the scratch machinery. One goroutine per value.
type BitAdjacency struct {
	ids   []model.ID
	idx   map[model.ID]int
	words int
	rows  []uint64 // n rows × words
}

// Load snapshots g: nodes indexed in sorted-ID order, one bitset row of
// out-neighbors per node.
func (b *BitAdjacency) Load(g *Digraph) {
	b.ids = b.ids[:0]
	for id := range g.nodes {
		b.ids = append(b.ids, id)
	}
	slices.Sort(b.ids)
	n := len(b.ids)
	if b.idx == nil {
		b.idx = make(map[model.ID]int, n)
	} else {
		clear(b.idx)
	}
	for i, id := range b.ids {
		b.idx[id] = i
	}
	b.words = (n + 63) / 64
	need := n * b.words
	if cap(b.rows) < need {
		b.rows = make([]uint64, need)
	}
	b.rows = b.rows[:need]
	for i := range b.rows {
		b.rows[i] = 0
	}
	for i, u := range b.ids {
		row := b.rows[i*b.words : (i+1)*b.words]
		for v := range g.adj[u] {
			if j, ok := b.idx[v]; ok && v != u {
				row[j>>6] |= 1 << (j & 63)
			}
		}
	}
}

// NumNodes returns the number of indexed nodes.
func (b *BitAdjacency) NumNodes() int { return len(b.ids) }

// IDs returns the indexed nodes in index order (sorted by ID). The slice is
// owned by the BitAdjacency.
func (b *BitAdjacency) IDs() []model.ID { return b.ids }

// Index returns the row index of id.
func (b *BitAdjacency) Index(id model.ID) (int, bool) {
	i, ok := b.idx[id]
	return i, ok
}

// Row returns node i's out-neighbor bitset (owned by the BitAdjacency).
func (b *BitAdjacency) Row(i int) []uint64 {
	return b.rows[i*b.words : (i+1)*b.words]
}

// HasEdge reports an edge from node index i to node index j. Self-edges are
// never recorded (AddEdge ignores them at the Digraph layer too).
func (b *BitAdjacency) HasEdge(i, j int) bool {
	return b.rows[i*b.words+(j>>6)]&(1<<(j&63)) != 0
}

// Reachable computes the forward closure from node index i as a bitset
// (including i itself) into dst, which must hold words entries; it returns
// dst. The BFS runs frontier-at-a-time with word ops.
func (b *BitAdjacency) Reachable(i int, dst, frontier []uint64) []uint64 {
	for w := range dst {
		dst[w] = 0
		frontier[w] = 0
	}
	dst[i>>6] |= 1 << (i & 63)
	frontier[i>>6] |= 1 << (i & 63)
	for {
		advanced := false
		for w := 0; w < b.words; w++ {
			f := frontier[w]
			frontier[w] = 0
			for f != 0 {
				u := w<<6 + bits.TrailingZeros64(f)
				f &= f - 1
				row := b.rows[u*b.words : (u+1)*b.words]
				for x := 0; x < b.words; x++ {
					fresh := row[x] &^ dst[x]
					if fresh != 0 {
						dst[x] |= fresh
						frontier[x] |= fresh
						advanced = true
					}
				}
			}
		}
		if !advanced {
			return dst
		}
	}
}

// ReachableSet is Reachable materialized as a model.IDSet — the equivalence
// tests compare it against Digraph.Reachable.
func (b *BitAdjacency) ReachableSet(id model.ID) model.IDSet {
	out := model.NewIDSet()
	i, ok := b.idx[id]
	if !ok {
		return out
	}
	dst := make([]uint64, b.words)
	frontier := make([]uint64, b.words)
	b.Reachable(i, dst, frontier)
	for w := 0; w < b.words; w++ {
		f := dst[w]
		for f != 0 {
			j := w<<6 + bits.TrailingZeros64(f)
			f &= f - 1
			out.Add(b.ids[j])
		}
	}
	return out
}
