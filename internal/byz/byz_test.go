package byz

import (
	"testing"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

// collector is a correct discovery participant used to observe what the
// Byzantine behaviors advertise.
type collector struct {
	mod *discovery.Module
}

func (c *collector) Init(ctx sim.Context) { c.mod.Start(ctx) }
func (c *collector) Receive(ctx sim.Context, from model.ID, payload []byte) {
	c.mod.Handle(ctx, from, payload)
}
func (c *collector) Timer(ctx sim.Context, tag uint64) { c.mod.HandleTimer(ctx, tag) }

func TestSilentSendsNothing(t *testing.T) {
	engine := sim.NewEngine(sim.Synchronous{Delta: sim.Millisecond}, 1)
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	obs := &collector{mod: discovery.New(discovery.NewSignedPD(signers[1], model.NewIDSet(2)), reg, discovery.DefaultConfig(), nil)}
	if err := engine.AddProcess(1, obs); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(2, Silent{}); err != nil {
		t.Fatal(err)
	}
	engine.Run(sim.Second)
	if _, got := obs.mod.View().PD[2]; got {
		t.Fatal("silent process leaked a PD")
	}
	// Only the observer's GETPDS traffic exists.
	if engine.Metrics().KindCount(2) != 0 { // KindSetPDs
		t.Fatal("silent process sent SETPDS")
	}
}

func TestFakePDAdvertisesClaim(t *testing.T) {
	engine := sim.NewEngine(sim.Synchronous{Delta: sim.Millisecond}, 1)
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	obs := &collector{mod: discovery.New(discovery.NewSignedPD(signers[1], model.NewIDSet(2)), reg, discovery.DefaultConfig(), nil)}
	claimed := model.NewIDSet(1, 3) // a lie: 2's real PD is irrelevant
	fake := NewFakePD(signers[2], reg, claimed, discovery.DefaultConfig())
	if err := engine.AddProcess(1, obs); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(2, fake); err != nil {
		t.Fatal(err)
	}
	engine.Run(sim.Second)
	got, ok := obs.mod.View().PD[2]
	if !ok || !got.Equal(claimed) {
		t.Fatalf("observer sees PD(2) = %v, want %v", got, claimed)
	}
}

// The FakePD behavior also relays third-party records like a correct process.
func TestFakePDRelays(t *testing.T) {
	engine := sim.NewEngine(sim.Synchronous{Delta: sim.Millisecond}, 1)
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// 3 only knows the Byzantine 2; 1's record must still reach 3 through 2.
	obs3 := &collector{mod: discovery.New(discovery.NewSignedPD(signers[3], model.NewIDSet(2)), reg, discovery.DefaultConfig(), nil)}
	obs1 := &collector{mod: discovery.New(discovery.NewSignedPD(signers[1], model.NewIDSet(2)), reg, discovery.DefaultConfig(), nil)}
	fake := NewFakePD(signers[2], reg, model.NewIDSet(1, 3), discovery.DefaultConfig())
	for id, r := range map[model.ID]sim.Reactor{1: obs1, 2: fake, 3: obs3} {
		if err := engine.AddProcess(id, r); err != nil {
			t.Fatal(err)
		}
	}
	engine.Run(2 * sim.Second)
	if _, ok := obs3.mod.View().PD[1]; !ok {
		t.Fatal("fake-PD process did not relay 1's record to 3")
	}
}

func TestPDEquivocatorSplitsViews(t *testing.T) {
	engine := sim.NewEngine(sim.Synchronous{Delta: sim.Millisecond}, 1)
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	pdA := model.NewIDSet(1)
	pdB := model.NewIDSet(1, 3)
	// Odd observers get A, even get B.
	equiv := NewPDEquivocator(signers[2], reg, pdA, pdB, func(id model.ID) bool { return uint64(id)%2 == 1 }, discovery.DefaultConfig())
	obs1 := &collector{mod: discovery.New(discovery.NewSignedPD(signers[1], model.NewIDSet(2)), reg, discovery.DefaultConfig(), nil)}
	obs3 := &collector{mod: discovery.New(discovery.NewSignedPD(signers[3], model.NewIDSet(2)), reg, discovery.DefaultConfig(), nil)}
	for id, r := range map[model.ID]sim.Reactor{1: obs1, 2: equiv, 3: obs3} {
		if err := engine.AddProcess(id, r); err != nil {
			t.Fatal(err)
		}
	}
	engine.Run(sim.Second)
	got1, ok1 := obs1.mod.View().PD[2]
	got3, ok3 := obs3.mod.View().PD[2]
	if !ok1 || !ok3 {
		t.Fatalf("observers missing PD(2): %v %v", ok1, ok3)
	}
	if !got1.Equal(pdB) { // p1 chose alt
		t.Fatalf("p1 sees %v, want record B %v", got1, pdB)
	}
	if !got3.Equal(pdB) {
		t.Fatalf("p3 sees %v, want record B %v", got3, pdB)
	}
	// Both records verify — equivocation is signature-legal.
}

func TestPDEquivocatorDefaultChooser(t *testing.T) {
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{2})
	if err != nil {
		t.Fatal(err)
	}
	e := NewPDEquivocator(signers[2], reg, model.NewIDSet(), model.NewIDSet(1), nil, discovery.DefaultConfig())
	if e.chooseAlt(2) != true || e.chooseAlt(3) != false {
		t.Fatal("default chooser should pick alt for even IDs")
	}
}
