// Package byz implements Byzantine process behaviors for fault-injection
// experiments. A Byzantine process cannot forge other processes' signatures
// (the authenticated model of Section II-A), but it can stay silent, lie
// about its own participant detector, equivocate — claiming different PDs to
// different peers — or simply behave correctly while being counted against
// the fault threshold (the strategy behind the paper's Fig. 3 narrative).
//
// Each behavior is a sim.Reactor, so the scenario layer can drop one in
// wherever a correct core.Node would go; the automatic placements of
// scenario.AutoByz choose which processes get them during matrix sweeps.
package byz
