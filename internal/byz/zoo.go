package byz

import (
	"sort"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
	"github.com/bftcup/bftcup/internal/wire"
)

// This file is the adversary zoo beyond the three original behaviors: timing
// attacks (Delayer), selective silence (SelectiveSilent) and discovery
// collusion (Collusion/Colluder — forging and withholding third-party PD
// records). Every behavior is a rt.Reactor whose configuration is plain
// data (sets and integers, no callbacks), so scenario.ByzSpec can carry a
// canonical serialized identity for each through CompileKey.

// delayTagBase marks a Delayer's pending-reply timers; the low bits carry the
// requester's ID. Disjoint from discovery.TimerTag (1<<40) by construction.
const delayTagBase uint64 = 1 << 41

// Delayer participates in discovery with honest content but Byzantine
// timing: it collects and relays records like a correct process, yet holds
// every GETPDS reply for a fixed number of discovery periods before sending
// it. The reply it eventually sends is its S_PD at fire time, so held
// replies are stale only in their timing, not fabricated. It never joins the
// committee protocol.
type Delayer struct {
	mod   *discovery.Module
	delay rt.Time
}

// NewDelayer creates the behavior. pd is the PD the process advertises
// (usually its real one — the attack is the delay); holdRounds is how many
// discovery periods each reply is held (floored at 1).
func NewDelayer(signer cryptox.Signer, verifier cryptox.Verifier, pd model.IDSet, cfg discovery.Config, holdRounds int) *Delayer {
	if cfg.Period <= 0 {
		cfg.Period = discovery.DefaultConfig().Period
	}
	if holdRounds < 1 {
		holdRounds = 1
	}
	rec := discovery.NewSignedPD(signer, pd)
	return &Delayer{
		mod:   discovery.New(rec, verifier, cfg, nil),
		delay: rt.Time(holdRounds) * cfg.Period,
	}
}

// Init implements rt.Reactor.
func (b *Delayer) Init(ctx rt.Context) { b.mod.Start(ctx) }

// Receive implements rt.Reactor.
func (b *Delayer) Receive(ctx rt.Context, from model.ID, payload []byte) {
	if len(payload) > 0 && payload[0] == wire.KindGetPDs {
		ctx.SetTimer(b.delay, delayTagBase|uint64(from))
		return
	}
	b.mod.Handle(ctx, from, payload)
}

// Timer implements rt.Reactor: a delay tag releases the held reply (the
// module's current S_PD), everything else is the module's own gossip timer.
func (b *Delayer) Timer(ctx rt.Context, tag uint64) {
	if tag&delayTagBase != 0 {
		b.mod.SendRecords(ctx, model.ID(tag&^delayTagBase))
		return
	}
	b.mod.HandleTimer(ctx, tag)
}

// filteredCtx wraps a rt.Context, dropping every Send whose recipient is
// outside the allow set. Running an honest module through it turns the module
// selectively silent without touching its state machine.
type filteredCtx struct {
	rt.Context
	allow model.IDSet
}

func (f filteredCtx) Send(to model.ID, payload []byte) {
	if f.allow.Has(to) {
		f.Context.Send(to, payload)
	}
}

// SelectiveSilent runs honest discovery toward a chosen peer subset and is
// completely silent toward everyone else — it still receives and verifies
// records from all peers (listening is unobservable), but neither requests
// from nor answers the excluded ones. It never joins the committee protocol.
type SelectiveSilent struct {
	mod    *discovery.Module
	answer model.IDSet
}

// NewSelectiveSilent creates the behavior. pd is the advertised PD; answerTo
// is the peer subset the process communicates with (nil behaves like Silent).
func NewSelectiveSilent(signer cryptox.Signer, verifier cryptox.Verifier, pd model.IDSet, answerTo model.IDSet, cfg discovery.Config) *SelectiveSilent {
	if answerTo == nil {
		answerTo = model.NewIDSet()
	}
	rec := discovery.NewSignedPD(signer, pd)
	return &SelectiveSilent{
		mod:    discovery.New(rec, verifier, cfg, nil),
		answer: answerTo,
	}
}

// Init implements rt.Reactor.
func (b *SelectiveSilent) Init(ctx rt.Context) {
	b.mod.Start(filteredCtx{Context: ctx, allow: b.answer})
}

// Receive implements rt.Reactor.
func (b *SelectiveSilent) Receive(ctx rt.Context, from model.ID, payload []byte) {
	b.mod.Handle(filteredCtx{Context: ctx, allow: b.answer}, from, payload)
}

// Timer implements rt.Reactor.
func (b *SelectiveSilent) Timer(ctx rt.Context, tag uint64) {
	b.mod.HandleTimer(filteredCtx{Context: ctx, allow: b.answer}, tag)
}

// Collusion is the shared state of a colluding group: every member's forged
// own record (any member advertises records for all fellow members — the
// group shares key material), the pooled third-party records every member's
// collection feeds, and the set of record owners the group censors from its
// replies. One Collusion is built per simulation run (it is mutable run
// state; a compiled scenario must not hold one) and is for one goroutine —
// the simulator delivers events sequentially.
//
// Determinism: the pool is keyed by owner but always iterated through the
// sorted owner list, and the reply payload is cached and rebuilt only when
// the pool changes, so replies are byte-deterministic regardless of map
// iteration order.
type Collusion struct {
	verifier   cryptox.Verifier
	period     rt.Time
	members    model.IDSet
	group      []discovery.SignedPD // one forged record per member, ascending owner
	withhold   model.IDSet
	pool       map[model.ID]discovery.SignedPD // verified third-party records
	owners     []model.ID                      // sorted pool keys
	known      model.IDSet
	encoded    []byte     // cached SETPDS reply; nil after pool growth
	recipients []model.ID // cached sorted gossip targets; nil after known growth
}

// NewCollusion creates an empty colluding group.
func NewCollusion(verifier cryptox.Verifier, cfg discovery.Config) *Collusion {
	if cfg.Period <= 0 {
		cfg.Period = discovery.DefaultConfig().Period
	}
	return &Collusion{
		verifier: verifier,
		period:   cfg.Period,
		members:  model.NewIDSet(),
		withhold: model.NewIDSet(),
		pool:     make(map[model.ID]discovery.SignedPD),
		known:    model.NewIDSet(),
	}
}

// AddMember registers one colluder and returns its reactor. claimed is the
// (forged) PD the group advertises for this member; withhold lists
// third-party record owners this member wants censored (the group pools the
// union). All members must be added before the simulation starts — the group
// record list is part of every member's replies.
func (c *Collusion) AddMember(signer cryptox.Signer, claimed model.IDSet, withhold model.IDSet) *Colluder {
	rec := discovery.NewSignedPD(signer, claimed)
	i := sort.Search(len(c.group), func(i int) bool { return c.group[i].Owner >= rec.Owner })
	c.group = append(c.group, discovery.SignedPD{})
	copy(c.group[i+1:], c.group[i:])
	c.group[i] = rec
	c.members.Add(rec.Owner)
	c.addKnown(rec.Owner)
	for id := range claimed {
		c.addKnown(id)
	}
	for id := range withhold {
		c.withhold.Add(id)
	}
	c.encoded = nil
	return &Colluder{shared: c, self: rec.Owner}
}

func (c *Collusion) addKnown(id model.ID) {
	if c.known.Add(id) {
		c.recipients = nil
	}
}

// payload renders the group's reply: every member's forged record first, then
// the pooled third-party records in ascending owner order, minus the withheld
// owners. All members send the identical payload — sharing collected records
// is the point of the group.
func (c *Collusion) payload() []byte {
	if c.encoded == nil {
		recs := make([]discovery.SignedPD, 0, len(c.group)+len(c.owners))
		recs = append(recs, c.group...)
		for _, owner := range c.owners {
			if !c.withhold.Has(owner) {
				recs = append(recs, c.pool[owner])
			}
		}
		c.encoded = discovery.EncodeSetPDs(recs)
	}
	return c.encoded
}

// merge folds a received SETPDS payload into the shared pool, mirroring the
// discovery module's verification rules (first verified record per owner
// wins; member-owned records are ignored — the group controls those).
func (c *Collusion) merge(payload []byte) {
	rd := wire.NewReader(payload[1:])
	n := rd.Uvarint()
	if rd.Err() != nil || n > 4096 {
		return
	}
	for i := uint64(0); i < n; i++ {
		owner := rd.ID()
		if rd.Err() != nil {
			return
		}
		_, have := c.pool[owner]
		if have || c.members.Has(owner) {
			rd.SkipIDSet()
			rd.SkipBytesField()
			if rd.Err() != nil {
				return
			}
			continue
		}
		rec := discovery.SignedPD{Owner: owner, PD: rd.IDSet(), Sig: rd.BytesField()}
		if rd.Err() != nil {
			return
		}
		if !rec.Verify(c.verifier) {
			continue
		}
		j := sort.Search(len(c.owners), func(i int) bool { return c.owners[i] >= owner })
		c.owners = append(c.owners, 0)
		copy(c.owners[j+1:], c.owners[j:])
		c.owners[j] = owner
		c.pool[owner] = rec
		c.encoded = nil
		c.addKnown(owner)
		for id := range rec.PD {
			c.addKnown(id)
		}
	}
}

// Colluder is one member of a Collusion: it gossips GETPDS rounds like a
// correct process, feeds everything it collects into the shared pool, and
// answers requests with the group's forged-plus-censored record set. It never
// joins the committee protocol.
type Colluder struct {
	shared *Collusion
	self   model.ID
}

// Init implements rt.Reactor.
func (b *Colluder) Init(ctx rt.Context) { b.round(ctx) }

// Receive implements rt.Reactor.
func (b *Colluder) Receive(ctx rt.Context, from model.ID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case wire.KindGetPDs:
		ctx.Send(from, b.shared.payload())
	case wire.KindSetPDs:
		b.shared.merge(payload)
	}
}

// Timer implements rt.Reactor.
func (b *Colluder) Timer(ctx rt.Context, tag uint64) {
	if tag == discovery.TimerTag {
		b.round(ctx)
	}
}

// round requests records from every known process, like Algorithm 1's
// periodic task — colluders pull knowledge as eagerly as correct processes.
func (b *Colluder) round(ctx rt.Context) {
	c := b.shared
	if c.recipients == nil {
		c.recipients = c.known.Sorted()
	}
	for _, id := range c.recipients {
		if id != b.self {
			ctx.Send(id, getPDsRequest)
		}
	}
	ctx.SetTimer(c.period, discovery.TimerTag)
}

// getPDsRequest is the constant one-byte GETPDS request (Send copies it).
var getPDsRequest = []byte{wire.KindGetPDs}
