package byz

import (
	"math/rand"
	"testing"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
	"github.com/bftcup/bftcup/internal/wire"
)

// TestDelayerHoldsReplies: with a hold of three 20ms periods, the observer
// must not have the delayer's record shortly after its first request, but
// must have it once the held reply fires — content honest, timing Byzantine.
func TestDelayerHoldsReplies(t *testing.T) {
	engine := sim.NewEngine(sim.Synchronous{Delta: sim.Millisecond}, 1)
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	obs := &collector{mod: discovery.New(discovery.NewSignedPD(signers[1], model.NewIDSet(2)), reg, discovery.DefaultConfig(), nil)}
	delayer := NewDelayer(signers[2], reg, model.NewIDSet(1), discovery.DefaultConfig(), 3)
	if err := engine.AddProcess(1, obs); err != nil {
		t.Fatal(err)
	}
	if err := engine.AddProcess(2, delayer); err != nil {
		t.Fatal(err)
	}
	// First GETPDS arrives at ~1ms; the reply is held 60ms. At 30ms the
	// observer must still be blind.
	engine.Run(30 * sim.Millisecond)
	if _, leaked := obs.mod.View().PD[2]; leaked {
		t.Fatal("delayer answered before the hold elapsed")
	}
	engine.Run(sim.Second)
	got, ok := obs.mod.View().PD[2]
	if !ok || !got.Equal(model.NewIDSet(1)) {
		t.Fatalf("observer sees PD(2) = %v (ok=%v), want {1} after the hold", got, ok)
	}
}

// TestSelectiveSilentAnswersSubset: the behavior communicates with its allow
// set and is silent toward everyone else, even when the excluded peer
// requests records directly.
func TestSelectiveSilentAnswersSubset(t *testing.T) {
	engine := sim.NewEngine(sim.Synchronous{Delta: sim.Millisecond}, 1)
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	obs1 := &collector{mod: discovery.New(discovery.NewSignedPD(signers[1], model.NewIDSet(2)), reg, discovery.DefaultConfig(), nil)}
	obs3 := &collector{mod: discovery.New(discovery.NewSignedPD(signers[3], model.NewIDSet(2)), reg, discovery.DefaultConfig(), nil)}
	sel := NewSelectiveSilent(signers[2], reg, model.NewIDSet(1, 3), model.NewIDSet(1), discovery.DefaultConfig())
	for id, r := range map[model.ID]sim.Reactor{1: obs1, 2: sel, 3: obs3} {
		if err := engine.AddProcess(id, r); err != nil {
			t.Fatal(err)
		}
	}
	engine.Run(sim.Second)
	if got, ok := obs1.mod.View().PD[2]; !ok || !got.Equal(model.NewIDSet(1, 3)) {
		t.Fatalf("allowed peer sees PD(2) = %v (ok=%v), want {1,3}", got, ok)
	}
	if _, leaked := obs3.mod.View().PD[2]; leaked {
		t.Fatal("selective-silent process answered an excluded peer")
	}
}

// decodeSetPDs unpacks a SETPDS payload into its owner sequence.
func decodeSetPDs(t *testing.T, payload []byte) []model.ID {
	t.Helper()
	if len(payload) == 0 || payload[0] != wire.KindSetPDs {
		t.Fatalf("not a SETPDS payload: % x", payload)
	}
	rd := wire.NewReader(payload[1:])
	n := rd.Uvarint()
	owners := make([]model.ID, 0, n)
	for i := uint64(0); i < n; i++ {
		owners = append(owners, rd.ID())
		rd.IDSet()
		rd.BytesField()
		if rd.Err() != nil {
			t.Fatalf("truncated SETPDS after %d records: %v", i, rd.Err())
		}
	}
	return owners
}

// TestCollusionPoolsAndCensors drives the shared group state directly: pooled
// third-party records appear in every member's identical reply, withheld
// owners are censored, and records claiming a member's identity are ignored
// (the group's forged self-records win).
func TestCollusionPoolsAndCensors(t *testing.T) {
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	group := NewCollusion(reg, discovery.DefaultConfig())
	// Member 4 joins first: the group record list must still come out in
	// ascending owner order.
	c4 := group.AddMember(signers[4], model.NewIDSet(1), nil)
	c2 := group.AddMember(signers[2], model.NewIDSet(1), model.NewIDSet(3))

	// The outside world: records from 1 and 3, plus a genuine record from
	// member 2 that must NOT displace the group's forged one.
	genuine2 := discovery.NewSignedPD(signers[2], model.NewIDSet(3, 4))
	incoming := discovery.EncodeSetPDs([]discovery.SignedPD{
		discovery.NewSignedPD(signers[1], model.NewIDSet(3)),
		discovery.NewSignedPD(signers[3], model.NewIDSet(1)),
		genuine2,
	})
	group.merge(incoming)

	reply := group.payload()
	owners := decodeSetPDs(t, reply)
	want := []model.ID{2, 4, 1} // group ascending, then pool minus withheld
	if len(owners) != len(want) {
		t.Fatalf("reply owners %v, want %v", owners, want)
	}
	for i := range want {
		if owners[i] != want[i] {
			t.Fatalf("reply owners %v, want %v", owners, want)
		}
	}

	// Both members answer a GETPDS with the identical shared payload.
	var sent2, sent4 []byte
	ctx2 := captureCtx{onSend: func(to model.ID, p []byte) { sent2 = append([]byte(nil), p...) }}
	ctx4 := captureCtx{onSend: func(to model.ID, p []byte) { sent4 = append([]byte(nil), p...) }}
	c2.Receive(ctx2, 9, []byte{wire.KindGetPDs})
	c4.Receive(ctx4, 9, []byte{wire.KindGetPDs})
	if string(sent2) != string(sent4) {
		t.Fatal("colluding members sent different replies")
	}
	if string(sent2) != string(reply) {
		t.Fatal("reactor reply differs from the shared payload")
	}

	// The forged record for member 2 survived the genuine one.
	rd := wire.NewReader(sent2[1:])
	rd.Uvarint()
	if owner, pd := rd.ID(), rd.IDSet(); owner != 2 || !pd.Equal(model.NewIDSet(1)) {
		t.Fatalf("member record is %v:%v, want the forged 2:{1}", owner, pd)
	}
}

// captureCtx is a sim.Context stub recording Sends.
type captureCtx struct {
	onSend func(to model.ID, payload []byte)
}

func (c captureCtx) ID() model.ID  { return 0 }
func (c captureCtx) Now() sim.Time { return 0 }
func (c captureCtx) Send(to model.ID, payload []byte) {
	if c.onSend != nil {
		c.onSend(to, payload)
	}
}
func (c captureCtx) SetTimer(d sim.Time, tag uint64) {}
func (c captureCtx) Rand() *rand.Rand                { return nil }
