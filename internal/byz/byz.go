package byz

import (
	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/discovery"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
	"github.com/bftcup/bftcup/internal/wire"
)

// Silent is a process that never sends anything. Externally indistinguishable
// from a crashed process.
type Silent struct{}

// Init implements rt.Reactor.
func (Silent) Init(rt.Context) {}

// Receive implements rt.Reactor.
func (Silent) Receive(rt.Context, model.ID, []byte) {}

// Timer implements rt.Reactor.
func (Silent) Timer(rt.Context, uint64) {}

// FakePD participates fully (and honestly) in Discovery, except that the PD
// it claims for itself is arbitrary — the worked example of Section III has
// Byzantine process 4 claiming PD {1,2,3}. It never joins the committee
// protocol (silent there).
type FakePD struct {
	mod *discovery.Module
}

// NewFakePD creates the behavior. claimed is the PD the process advertises;
// it need not relate to the knowledge graph's real edges.
func NewFakePD(signer cryptox.Signer, verifier cryptox.Verifier, claimed model.IDSet, cfg discovery.Config) *FakePD {
	rec := discovery.NewSignedPD(signer, claimed)
	return &FakePD{mod: discovery.New(rec, verifier, cfg, nil)}
}

// Init implements rt.Reactor.
func (b *FakePD) Init(ctx rt.Context) { b.mod.Start(ctx) }

// Receive implements rt.Reactor.
func (b *FakePD) Receive(ctx rt.Context, from model.ID, payload []byte) {
	b.mod.Handle(ctx, from, payload)
}

// Timer implements rt.Reactor.
func (b *FakePD) Timer(ctx rt.Context, tag uint64) { b.mod.HandleTimer(ctx, tag) }

// PDEquivocator claims PD A to peers selected by ChooseAlt=false and PD B to
// the others. Both records verify (the process signs both); the Sink/Core
// algorithms must tolerate the resulting inconsistent views. It relays every
// verified record it has collected, like a correct process would.
type PDEquivocator struct {
	self      model.ID
	verifier  cryptox.Verifier
	recA      discovery.SignedPD
	recB      discovery.SignedPD
	chooseAlt func(model.ID) bool
	collector *discovery.Module // collects and verifies third-party records
	recBuf    []discovery.SignedPD
}

// NewPDEquivocator creates the behavior. chooseAlt selects which peers get
// the alternative record; nil means even-numbered IDs.
func NewPDEquivocator(signer cryptox.Signer, verifier cryptox.Verifier, pdA, pdB model.IDSet, chooseAlt func(model.ID) bool, cfg discovery.Config) *PDEquivocator {
	if chooseAlt == nil {
		chooseAlt = func(id model.ID) bool { return uint64(id)%2 == 0 }
	}
	recA := discovery.NewSignedPD(signer, pdA)
	return &PDEquivocator{
		self:      signer.ID(),
		verifier:  verifier,
		recA:      recA,
		recB:      discovery.NewSignedPD(signer, pdB),
		chooseAlt: chooseAlt,
		collector: discovery.New(recA, verifier, cfg, nil),
	}
}

// Init implements rt.Reactor.
func (b *PDEquivocator) Init(ctx rt.Context) { b.collector.Start(ctx) }

// Receive implements rt.Reactor.
func (b *PDEquivocator) Receive(ctx rt.Context, from model.ID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	if payload[0] == wire.KindGetPDs {
		b.reply(ctx, from)
		return
	}
	b.collector.Handle(ctx, from, payload)
}

// Timer implements rt.Reactor.
func (b *PDEquivocator) Timer(ctx rt.Context, tag uint64) { b.collector.HandleTimer(ctx, tag) }

// reply sends the peer-dependent own record plus every relayed record. The
// third-party records come from the collector's sorted-owner iterator — the
// module already maintains that order incrementally, so the reply does not
// rebuild and re-sort the ID list per request (and cannot alias the module's
// internal record map).
func (b *PDEquivocator) reply(ctx rt.Context, to model.ID) {
	own := b.recA
	if b.chooseAlt(to) {
		own = b.recB
	}
	recs := append(b.recBuf[:0], own)
	recs = b.collector.AppendOtherRecords(recs)
	b.recBuf = recs
	ctx.Send(to, discovery.EncodeSetPDs(recs))
}
