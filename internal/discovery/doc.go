// Package discovery implements Algorithm 1 of the paper: the knowledge-
// expansion protocol by which every process periodically asks the processes
// it knows for the signed participant detectors (PDs) they have collected.
// Signatures make relayed PDs trustworthy: a Byzantine process can lie about
// its own PD (the Sink/Core algorithms tolerate that) but cannot forge or
// alter the PD of any correct process.
//
// The module maintains the kosr.View (S_known and S_PD) that the committee
// search reads, and calls its onUpdate hook whenever knowledge grows so the
// search can re-run exactly when the wait-until conditions of Algorithms 2
// and 4 may newly hold. Delta mode gossips only records the peer has not yet
// been sent, an ablation of the paper-faithful full-set retransmission.
package discovery
