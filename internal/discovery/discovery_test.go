package discovery

import (
	"testing"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
	"github.com/bftcup/bftcup/internal/wire"
)

// discNode is a reactor running only discovery.
type discNode struct {
	mod *Module
}

func (n *discNode) Init(ctx sim.Context) { n.mod.Start(ctx) }
func (n *discNode) Receive(ctx sim.Context, from model.ID, payload []byte) {
	n.mod.Handle(ctx, from, payload)
}
func (n *discNode) Timer(ctx sim.Context, tag uint64) { n.mod.HandleTimer(ctx, tag) }

func buildNetwork(t *testing.T, g *graph.Digraph, netmod sim.NetworkModel, silent model.IDSet, delta bool) (map[model.ID]*discNode, *sim.Engine) {
	t.Helper()
	ids := g.Nodes()
	signers, reg, err := cryptox.GenerateKeys(1, ids)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine(netmod, 42)
	nodes := make(map[model.ID]*discNode, len(ids))
	for _, id := range ids {
		if silent.Has(id) {
			engine.Crash(id)
		}
		cfg := DefaultConfig()
		cfg.Delta = delta
		rec := NewSignedPD(signers[id], g.OutSet(id).Clone())
		n := &discNode{mod: New(rec, reg, cfg, nil)}
		nodes[id] = n
		if err := engine.AddProcess(id, n); err != nil {
			t.Fatal(err)
		}
	}
	return nodes, engine
}

// Theorem 2 on Fig 1b: every correct process eventually discovers all correct
// sink members and receives their PDs.
func TestTheorem2Fig1b(t *testing.T) {
	fig := graph.Fig1b()
	for _, delta := range []bool{false, true} {
		nodes, engine := buildNetwork(t, fig.G, sim.Synchronous{Delta: 5 * sim.Millisecond}, fig.Byz, delta)
		engine.Run(2 * sim.Second)
		for id, n := range nodes {
			if fig.Byz.Has(id) {
				continue
			}
			v := n.mod.View()
			for _, s := range fig.ExpectedSink.Sorted() {
				if !v.Known.Has(s) {
					t.Fatalf("delta=%v: %v never discovered sink member %v", delta, id, s)
				}
				if _, ok := v.PD[s]; !ok {
					t.Fatalf("delta=%v: %v never received PD of sink member %v", delta, id, s)
				}
			}
		}
	}
}

// On Fig 1a with Byzantine 4 silent, the two knowledge islands can never
// learn of each other (the caption's impossibility narrative).
func TestFig1aIslandsStayIsolated(t *testing.T) {
	fig := graph.Fig1a()
	nodes, engine := buildNetwork(t, fig.G, sim.Synchronous{Delta: 5 * sim.Millisecond}, fig.Byz, false)
	engine.Run(2 * sim.Second)
	left := model.NewIDSet(1, 2, 3)
	right := model.NewIDSet(5, 6, 7, 8)
	for id := range left {
		v := nodes[id].mod.View()
		if inter := v.Known.Intersect(right); inter.Len() != 0 {
			t.Fatalf("%v learned about %v across the silent bridge", id, inter)
		}
	}
	for id := range right {
		v := nodes[id].mod.View()
		if inter := v.Known.Intersect(left); inter.Len() != 0 {
			t.Fatalf("%v learned about %v across the silent bridge", id, inter)
		}
	}
}

// Forged records must be dropped: a Byzantine process cannot fabricate the PD
// of a correct process.
func TestForgedRecordRejected(t *testing.T) {
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewSignedPD(signers[1], model.NewIDSet(2))
	mod := New(rec, reg, DefaultConfig(), nil)

	// A validly signed record from 3 relayed by anyone is accepted.
	good := NewSignedPD(signers[3], model.NewIDSet(1))
	// A forged record claiming to be from 2 but signed by 3's key is not.
	forged := SignedPD{Owner: 2, PD: model.NewIDSet(1), Sig: signers[3].Sign(Canonical(2, model.NewIDSet(1)))}
	// A tampered record (PD altered after signing) is not.
	tampered := NewSignedPD(signers[3], model.NewIDSet(1))
	tampered.PD = model.NewIDSet(1, 2)

	w := wire.NewWriter()
	w.Byte(wire.KindSetPDs)
	w.Uvarint(3)
	good.marshal(w)
	forged.marshal(w)
	tampered.marshal(w)
	mod.receiveRecords(9, w.Bytes())

	v := mod.View()
	if _, ok := v.PD[3]; !ok {
		t.Fatal("valid record rejected")
	}
	if _, ok := v.PD[2]; ok {
		t.Fatal("forged record accepted")
	}
	if got := v.PD[3]; !got.Equal(model.NewIDSet(1)) {
		t.Fatalf("record content wrong: %v", got)
	}
}

// First verified record wins for an equivocating owner.
func TestEquivocationKeepsFirst(t *testing.T) {
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mod := New(NewSignedPD(signers[1], model.NewIDSet(2)), reg, DefaultConfig(), nil)
	recA := NewSignedPD(signers[2], model.NewIDSet(1))
	recB := NewSignedPD(signers[2], model.NewIDSet())
	for _, rec := range []SignedPD{recA, recB} {
		w := wire.NewWriter()
		w.Byte(wire.KindSetPDs)
		w.Uvarint(1)
		rec.marshal(w)
		mod.receiveRecords(2, w.Bytes())
	}
	if got := mod.View().PD[2]; !got.Equal(model.NewIDSet(1)) {
		t.Fatalf("expected first record to win, got %v", got)
	}
}

func TestOnUpdateFires(t *testing.T) {
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	updates := 0
	mod := New(NewSignedPD(signers[1], model.NewIDSet(2)), reg, DefaultConfig(), func() { updates++ })
	w := wire.NewWriter()
	w.Byte(wire.KindSetPDs)
	w.Uvarint(1)
	NewSignedPD(signers[2], model.NewIDSet(1)).marshal(w)
	mod.receiveRecords(2, w.Bytes())
	if updates != 1 {
		t.Fatalf("updates = %d, want 1", updates)
	}
	// Re-delivery of the same record is a no-op.
	mod.receiveRecords(2, w.Bytes())
	if updates != 1 {
		t.Fatalf("duplicate delivery fired onUpdate")
	}
}

func TestMalformedPayloadIgnored(t *testing.T) {
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1})
	if err != nil {
		t.Fatal(err)
	}
	mod := New(NewSignedPD(signers[1], model.NewIDSet()), reg, DefaultConfig(), nil)
	mod.receiveRecords(9, []byte{wire.KindSetPDs, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	mod.receiveRecords(9, []byte{wire.KindSetPDs})
	if len(mod.View().PD) != 1 {
		t.Fatal("malformed payload changed state")
	}
}

// Delta gossip must converge to the same knowledge with fewer bytes.
func TestDeltaGossipConvergesCheaper(t *testing.T) {
	fig := graph.Fig1b()
	run := func(delta bool) (int64, map[model.ID]*discNode) {
		nodes, engine := buildNetwork(t, fig.G, sim.Synchronous{Delta: 5 * sim.Millisecond}, fig.Byz, delta)
		engine.Run(2 * sim.Second)
		return engine.Metrics().Bytes, nodes
	}
	fullBytes, fullNodes := run(false)
	deltaBytes, deltaNodes := run(true)
	for id, n := range deltaNodes {
		if fig.Byz.Has(id) {
			continue
		}
		if !n.mod.View().Known.Equal(fullNodes[id].mod.View().Known) {
			t.Fatalf("delta and full gossip disagree on S_known for %v", id)
		}
	}
	if deltaBytes >= fullBytes {
		t.Fatalf("delta gossip should use fewer bytes: delta=%d full=%d", deltaBytes, fullBytes)
	}
}

// TestRecordsReturnsCopy is the regression test for the internal-map leak:
// Records() must hand back a snapshot the caller owns, so deleting or
// overwriting entries cannot corrupt the module's verified-record store.
func TestRecordsReturnsCopy(t *testing.T) {
	signers, reg, err := cryptox.GenerateKeys(1, []model.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mod := New(NewSignedPD(signers[1], model.NewIDSet(2)), reg, DefaultConfig(), nil)
	other := NewSignedPD(signers[2], model.NewIDSet(1))
	w := wire.NewWriter()
	w.Byte(wire.KindSetPDs)
	w.Uvarint(1)
	other.marshal(w)
	mod.receiveRecords(9, w.Bytes())

	snap := mod.Records()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d records, want 2", len(snap))
	}
	delete(snap, 2)
	snap[1] = SignedPD{Owner: 1}
	if again := mod.Records(); len(again) != 2 || again[2].Owner != 2 || len(again[1].Sig) == 0 {
		t.Fatal("mutating the Records() snapshot corrupted module state")
	}
	if got := mod.View().PD[2]; !got.Equal(model.NewIDSet(1)) {
		t.Fatalf("view PD(2) = %v after snapshot mutation, want {1}", got)
	}
}
