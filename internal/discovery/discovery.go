package discovery

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
	"github.com/bftcup/bftcup/internal/wire"
)

// TimerTag identifies the periodic discovery timer within a reactor.
const TimerTag uint64 = 1 << 40

// SignedPD is one ⟨i, PDᵢ⟩ᵢ record: a participant detector signed by its
// owner.
type SignedPD struct {
	// Owner is the process that signed the record.
	Owner model.ID
	// PD is the participant detector the owner claims.
	PD model.IDSet
	// Sig is the owner's signature over Canonical(Owner, PD).
	Sig []byte
}

// Canonical returns the byte string that is signed: a domain tag, the owner
// and the sorted PD.
func Canonical(owner model.ID, pd model.IDSet) []byte {
	w := wire.NewWriter()
	w.Byte('P') // domain separation: participant-detector records
	w.ID(owner)
	w.IDSet(pd)
	return w.Bytes()
}

// NewSignedPD creates and signs a PD record. The claimed PD need not equal
// the signer's real PD — that freedom is exactly what Byzantine processes
// exploit (e.g. the Fig. 1b worked example).
func NewSignedPD(signer cryptox.Signer, pd model.IDSet) SignedPD {
	return SignedPD{Owner: signer.ID(), PD: pd.Clone(), Sig: signer.Sign(Canonical(signer.ID(), pd))}
}

// Verify checks the record's signature against the registry.
func (r SignedPD) Verify(v cryptox.Verifier) bool {
	return v.Verify(r.Owner, Canonical(r.Owner, r.PD), r.Sig)
}

func (r SignedPD) marshal(w *wire.Writer) {
	w.ID(r.Owner)
	w.IDSet(r.PD)
	w.BytesField(r.Sig)
}

func unmarshalSignedPD(rd *wire.Reader) SignedPD {
	return SignedPD{Owner: rd.ID(), PD: rd.IDSet(), Sig: rd.BytesField()}
}

// Config tunes the discovery task.
type Config struct {
	// Period between GETPDS rounds (Algorithm 1, line 2).
	Period sim.Time
	// Delta enables the delta-gossip ablation: SETPDS carries only records
	// the sender has not previously sent to that peer, instead of the
	// paper-faithful full S_PD.
	Delta bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{Period: 20 * sim.Millisecond}
}

// Module is the per-process discovery state: S_PD, S_known and S_received,
// maintained exactly as Algorithm 1 prescribes.
type Module struct {
	self     model.ID
	verifier cryptox.Verifier
	cfg      Config
	view     *kosr.View
	records  map[model.ID]SignedPD
	sentTo   map[model.ID]model.IDSet // delta mode: record owners already sent per peer
	onUpdate func()
	started  bool
}

// New creates a discovery module. ownRecord is this process's signed PD
// (line 1 initialization: S_PD = {⟨i, PDᵢ⟩ᵢ}, S_known = PDᵢ ∪ {i},
// S_received = {i}). onUpdate fires whenever S_PD or S_known grows; it may
// be nil.
func New(ownRecord SignedPD, verifier cryptox.Verifier, cfg Config, onUpdate func()) *Module {
	if cfg.Period <= 0 {
		cfg.Period = DefaultConfig().Period
	}
	v := kosr.NewView()
	v.Known.Add(ownRecord.Owner)
	v.Known.AddAll(ownRecord.PD)
	v.PD[ownRecord.Owner] = ownRecord.PD.Clone()
	m := &Module{
		self:     ownRecord.Owner,
		verifier: verifier,
		cfg:      cfg,
		view:     v,
		records:  map[model.ID]SignedPD{ownRecord.Owner: ownRecord},
		sentTo:   make(map[model.ID]model.IDSet),
		onUpdate: onUpdate,
	}
	return m
}

// View exposes the module's current knowledge for the Sink/Core searches.
// Callers must not mutate it.
func (m *Module) View() *kosr.View { return m.view }

// Records returns the signed records collected so far (used by the Byzantine
// relay behaviors and by tests).
func (m *Module) Records() map[model.ID]SignedPD { return m.records }

// Start begins the periodic discovery task.
func (m *Module) Start(ctx sim.Context) {
	if m.started {
		return
	}
	m.started = true
	m.round(ctx)
}

// HandleTimer processes the periodic timer; it reports whether the tag
// belonged to discovery.
func (m *Module) HandleTimer(ctx sim.Context, tag uint64) bool {
	if tag != TimerTag {
		return false
	}
	m.round(ctx)
	return true
}

func (m *Module) round(ctx sim.Context) {
	payload := []byte{wire.KindGetPDs}
	for _, id := range m.view.Known.Sorted() {
		if id != m.self {
			ctx.Send(id, payload)
		}
	}
	ctx.SetTimer(m.cfg.Period, TimerTag)
}

// Handle processes a discovery message; it reports whether the payload was a
// discovery message.
func (m *Module) Handle(ctx sim.Context, from model.ID, payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	switch payload[0] {
	case wire.KindGetPDs:
		m.sendRecords(ctx, from)
		return true
	case wire.KindSetPDs:
		m.receiveRecords(from, payload)
		return true
	default:
		return false
	}
}

// sendRecords answers a GETPDS request (line 3): send S_PD to the requester.
func (m *Module) sendRecords(ctx sim.Context, to model.ID) {
	var owners []model.ID
	if m.cfg.Delta {
		sent := m.sentTo[to]
		if sent == nil {
			sent = model.NewIDSet()
			m.sentTo[to] = sent
		}
		for _, owner := range m.receivedSorted() {
			if !sent.Has(owner) {
				owners = append(owners, owner)
				sent.Add(owner)
			}
		}
		if len(owners) == 0 {
			return
		}
	} else {
		owners = m.receivedSorted()
	}
	recs := make([]SignedPD, 0, len(owners))
	for _, owner := range owners {
		recs = append(recs, m.records[owner])
	}
	ctx.Send(to, EncodeSetPDs(recs))
}

// EncodeSetPDs builds a ⟨SETPDS, records⟩ payload. Exported so Byzantine
// behaviors can craft their own replies.
func EncodeSetPDs(recs []SignedPD) []byte {
	w := wire.NewWriter()
	w.Byte(wire.KindSetPDs)
	w.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		rec.marshal(w)
	}
	return w.Bytes()
}

func (m *Module) receivedSorted() []model.ID {
	ids := make([]model.ID, 0, len(m.records))
	for id := range m.records {
		ids = append(ids, id)
	}
	s := model.NewIDSet(ids...)
	return s.Sorted()
}

// receiveRecords merges a SETPDS message (lines 4-6). Records that fail
// signature verification are dropped; for equivocating owners the first
// verified record wins (correct processes only ever sign one).
func (m *Module) receiveRecords(from model.ID, payload []byte) {
	rd := wire.NewReader(payload[1:])
	n := rd.Uvarint()
	if rd.Err() != nil || n > 4096 {
		return
	}
	changed := false
	for i := uint64(0); i < n; i++ {
		rec := unmarshalSignedPD(rd)
		if rd.Err() != nil {
			return
		}
		if _, have := m.records[rec.Owner]; have {
			continue
		}
		if !rec.Verify(m.verifier) {
			continue
		}
		m.records[rec.Owner] = rec
		m.view.PD[rec.Owner] = rec.PD.Clone() // S_received gains rec.Owner
		changed = true
		if m.view.Known.Add(rec.Owner) {
			// Known includes every owner whose PD we hold.
		}
		for id := range rec.PD { // line 5: S_known ∪= PD contents
			m.view.Known.Add(id)
		}
	}
	_ = from
	if changed && m.onUpdate != nil {
		m.onUpdate()
	}
}

// String summarizes the module state for debugging.
func (m *Module) String() string {
	return fmt.Sprintf("discovery{self=%v known=%v received=%d}", m.self, m.view.Known, len(m.records))
}
