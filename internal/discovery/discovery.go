package discovery

import (
	"fmt"
	"sort"

	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/rt"
	"github.com/bftcup/bftcup/internal/wire"
)

// TimerTag identifies the periodic discovery timer within a reactor.
const TimerTag uint64 = 1 << 40

// SignedPD is one ⟨i, PDᵢ⟩ᵢ record: a participant detector signed by its
// owner.
type SignedPD struct {
	// Owner is the process that signed the record.
	Owner model.ID
	// PD is the participant detector the owner claims.
	PD model.IDSet
	// Sig is the owner's signature over Canonical(Owner, PD).
	Sig []byte
}

// Canonical returns the byte string that is signed: a domain tag, the owner
// and the sorted PD.
func Canonical(owner model.ID, pd model.IDSet) []byte {
	w := wire.NewWriter()
	w.Byte('P') // domain separation: participant-detector records
	w.ID(owner)
	w.IDSet(pd)
	return w.Bytes()
}

// NewSignedPD creates and signs a PD record. The claimed PD need not equal
// the signer's real PD — that freedom is exactly what Byzantine processes
// exploit (e.g. the Fig. 1b worked example).
func NewSignedPD(signer cryptox.Signer, pd model.IDSet) SignedPD {
	return SignedPD{Owner: signer.ID(), PD: pd.Clone(), Sig: signer.Sign(Canonical(signer.ID(), pd))}
}

// Verify checks the record's signature against the registry.
func (r SignedPD) Verify(v cryptox.Verifier) bool {
	return v.Verify(r.Owner, Canonical(r.Owner, r.PD), r.Sig)
}

func (r SignedPD) marshal(w *wire.Writer) {
	w.ID(r.Owner)
	w.IDSet(r.PD)
	w.BytesField(r.Sig)
}

// Config tunes the discovery task.
type Config struct {
	// Period between GETPDS rounds (Algorithm 1, line 2).
	Period rt.Time
	// Delta enables the delta-gossip ablation: SETPDS carries only records
	// the sender has not previously sent to that peer, instead of the
	// paper-faithful full S_PD.
	Delta bool
	// Hardened enables the loss-tolerant retransmission profile for chaos
	// runs. Two changes, both trace-neutral when every round's view keeps
	// growing on schedule (i.e. on loss-free networks the flag is only
	// armed for fault scenarios, keeping baseline traces byte-identical):
	//
	//   - The GETPDS round period backs off exponentially (with RNG jitter,
	//     so synchronized senders desynchronize) up to 8×Period while the
	//     local view is unchanged, and snaps back to Period on growth —
	//     retransmission keeps probing a lossy network without the seed's
	//     fixed-cadence message volume exploding.
	//   - In delta mode the per-peer sentTo sets are cleared at
	//     exponentially spaced rounds (4, 8, 16, …): a full resync that
	//     retransmits every record. Without it a SETPDS lost in transit
	//     loses its records forever — sendRecords marks owners as sent at
	//     send time, so delta gossip is at-most-once per (peer, record).
	Hardened bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{Period: 20 * rt.Millisecond}
}

// Module is the per-process discovery state: S_PD, S_known and S_received,
// maintained exactly as Algorithm 1 prescribes.
//
// The periodic task dominates the simulator's hot path — every process
// re-requests and re-sends records every Period — so the module caches what
// the steady state re-derives: the sorted record-owner list, the encoded
// full-set SETPDS payload and the sorted gossip recipient list are computed
// when the underlying state changes, not per message. The wire format and
// message sequence are untouched (trace digests are byte-identical to the
// uncached implementation).
type Module struct {
	self     model.ID
	verifier cryptox.Verifier
	cfg      Config
	view     *kosr.View
	records  map[model.ID]SignedPD
	sentTo   map[model.ID]model.IDSet // delta mode: record owners already sent per peer
	onUpdate func()
	started  bool

	// owners is records' key set, kept sorted; encoded is the cached
	// full-set SETPDS payload (nil after a record arrives); recipients is
	// the cached sorted view of S_known for the gossip round (nil after
	// S_known grows).
	owners     []model.ID
	encoded    []byte
	recipients []model.ID

	// Hardened-mode retransmission state: rounds since the view last grew
	// (drives the backoff), the view size last observed, the round counter
	// and the next full-resync round (delta mode).
	idleRounds int
	lastSize   int
	roundNum   int
	nextResync int
}

// New creates a discovery module. ownRecord is this process's signed PD
// (line 1 initialization: S_PD = {⟨i, PDᵢ⟩ᵢ}, S_known = PDᵢ ∪ {i},
// S_received = {i}). onUpdate fires whenever S_PD or S_known grows; it may
// be nil.
func New(ownRecord SignedPD, verifier cryptox.Verifier, cfg Config, onUpdate func()) *Module {
	if cfg.Period <= 0 {
		cfg.Period = DefaultConfig().Period
	}
	// The view is maintained exclusively through the mutator API so its
	// revision counter tracks every change — that is what lets the node's
	// incremental Searcher trust its memos.
	v := kosr.NewView()
	v.AddKnown(ownRecord.Owner)
	for id := range ownRecord.PD {
		// Insertion order is unobservable (rev and Known end identical);
		// no need to sort on the per-node construction path.
		v.AddKnown(id)
	}
	v.SetPD(ownRecord.Owner, ownRecord.PD)
	m := &Module{
		self:     ownRecord.Owner,
		verifier: verifier,
		cfg:      cfg,
		view:     v,
		records:  map[model.ID]SignedPD{ownRecord.Owner: ownRecord},
		sentTo:   make(map[model.ID]model.IDSet),
		onUpdate: onUpdate,
		owners:   []model.ID{ownRecord.Owner},
	}
	return m
}

// View exposes the module's current knowledge for the Sink/Core searches.
// Callers must not mutate it.
func (m *Module) View() *kosr.View { return m.view }

// Records returns a copy of the signed records collected so far (used by the
// Byzantine relay behaviors and by tests). Callers own the returned map;
// mutating it cannot alias module state. Hot paths that only need ordered
// iteration should use AppendOtherRecords instead.
func (m *Module) Records() map[model.ID]SignedPD {
	out := make(map[model.ID]SignedPD, len(m.records))
	for id, rec := range m.records {
		out[id] = rec
	}
	return out
}

// AppendOtherRecords appends every collected record except the module owner's
// own to buf, in ascending owner order, and returns the extended slice. The
// module keeps no reference to buf, and SignedPD values are safe to retain
// (records are immutable once verified).
func (m *Module) AppendOtherRecords(buf []SignedPD) []SignedPD {
	for _, owner := range m.owners {
		if owner != m.self {
			buf = append(buf, m.records[owner])
		}
	}
	return buf
}

// SendRecords answers a GETPDS request on behalf of a wrapping reactor: the
// same (cached) S_PD payload the module itself would send. Byzantine
// behaviors that only distort timing — not content — reply through it.
func (m *Module) SendRecords(ctx rt.Context, to model.ID) { m.sendRecords(ctx, to) }

// Start begins the periodic discovery task.
func (m *Module) Start(ctx rt.Context) {
	if m.started {
		return
	}
	m.started = true
	m.round(ctx)
}

// HandleTimer processes the periodic timer; it reports whether the tag
// belonged to discovery.
func (m *Module) HandleTimer(ctx rt.Context, tag uint64) bool {
	if tag != TimerTag {
		return false
	}
	m.round(ctx)
	return true
}

// Resume re-enters the periodic round after a crash restart with persisted
// state: the module's records survived, but its pending round timer died
// with the previous incarnation, so the loop must be re-armed. No-op if
// Start was never called.
func (m *Module) Resume(ctx rt.Context) {
	if !m.started {
		return
	}
	m.round(ctx)
}

// getPDsPayload is the constant one-byte GETPDS request (Send copies it).
var getPDsPayload = []byte{wire.KindGetPDs}

func (m *Module) round(ctx rt.Context) {
	if m.cfg.Hardened && m.cfg.Delta {
		m.roundNum++
		if m.nextResync == 0 {
			m.nextResync = 4
		}
		if m.roundNum >= m.nextResync {
			// Full resync: forget what was sent so every record is
			// retransmitted — the recovery path for SETPDS lost in transit.
			clear(m.sentTo)
			m.nextResync = m.roundNum * 2
		}
	}
	if m.recipients == nil {
		m.recipients = m.view.Known.Sorted()
	}
	for _, id := range m.recipients {
		if id != m.self {
			ctx.Send(id, getPDsPayload)
		}
	}
	ctx.SetTimer(m.nextPeriod(ctx), TimerTag)
}

// nextPeriod returns the delay before the next round: the configured Period,
// or — hardened, while the view is not growing — a jittered exponential
// backoff capped at 8×Period. Growth snaps the cadence back to Period.
func (m *Module) nextPeriod(ctx rt.Context) rt.Time {
	if !m.cfg.Hardened {
		return m.cfg.Period
	}
	size := len(m.view.Known) + len(m.records)
	if size != m.lastSize {
		m.lastSize = size
		m.idleRounds = 0
	} else {
		m.idleRounds++
	}
	shift := m.idleRounds / 2
	if shift > 3 {
		shift = 3
	}
	if shift == 0 {
		return m.cfg.Period
	}
	p := m.cfg.Period << shift
	// Deterministic jitter from the engine RNG: up to p/4 early, so peers
	// that backed off in lockstep spread out again.
	return p - rt.Time(ctx.Rand().Int63n(int64(p/4)+1))
}

// Handle processes a discovery message; it reports whether the payload was a
// discovery message.
func (m *Module) Handle(ctx rt.Context, from model.ID, payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	switch payload[0] {
	case wire.KindGetPDs:
		m.sendRecords(ctx, from)
		return true
	case wire.KindSetPDs:
		m.receiveRecords(from, payload)
		return true
	default:
		return false
	}
}

// sendRecords answers a GETPDS request (line 3): send S_PD to the requester.
// In full-set mode the encoded payload is identical for every requester
// until a new record arrives, so it is built once and reused (the engine
// copies on Send).
func (m *Module) sendRecords(ctx rt.Context, to model.ID) {
	if !m.cfg.Delta {
		if m.encoded == nil {
			recs := make([]SignedPD, 0, len(m.owners))
			for _, owner := range m.owners {
				recs = append(recs, m.records[owner])
			}
			m.encoded = EncodeSetPDs(recs)
		}
		ctx.Send(to, m.encoded)
		return
	}
	sent := m.sentTo[to]
	if sent == nil {
		sent = model.NewIDSet()
		m.sentTo[to] = sent
	}
	var owners []model.ID
	for _, owner := range m.owners {
		if !sent.Has(owner) {
			owners = append(owners, owner)
			sent.Add(owner)
		}
	}
	if len(owners) == 0 {
		return
	}
	recs := make([]SignedPD, 0, len(owners))
	for _, owner := range owners {
		recs = append(recs, m.records[owner])
	}
	ctx.Send(to, EncodeSetPDs(recs))
}

// EncodeSetPDs builds a ⟨SETPDS, records⟩ payload. Exported so Byzantine
// behaviors can craft their own replies.
func EncodeSetPDs(recs []SignedPD) []byte {
	w := wire.NewWriter()
	w.Byte(wire.KindSetPDs)
	w.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		rec.marshal(w)
	}
	return w.Bytes()
}

// insertOwner adds a new record owner to the sorted owner list and drops the
// caches the record set invalidates.
func (m *Module) insertOwner(owner model.ID) {
	i := sort.Search(len(m.owners), func(i int) bool { return m.owners[i] >= owner })
	m.owners = append(m.owners, 0)
	copy(m.owners[i+1:], m.owners[i:])
	m.owners[i] = owner
	m.encoded = nil
}

// receiveRecords merges a SETPDS message (lines 4-6). Records that fail
// signature verification are dropped; for equivocating owners the first
// verified record wins (correct processes only ever sign one). Records whose
// owner is already in S_PD — the overwhelming majority once gossip converges
// — are skipped in place, without materializing their set or signature. The
// fresh records are verified as one batch (cryptox.VerifyBatch) so the
// registry's memo is consulted once for the whole payload, then merged in
// payload order — verdicts and merge outcome are exactly those of verifying
// record by record.
func (m *Module) receiveRecords(from model.ID, payload []byte) {
	rd := wire.NewReader(payload[1:])
	n := rd.Uvarint()
	if rd.Err() != nil || n > 4096 {
		return
	}
	var fresh []SignedPD
	for i := uint64(0); i < n; i++ {
		owner := rd.ID()
		if rd.Err() != nil {
			return
		}
		if _, have := m.records[owner]; have {
			rd.SkipIDSet()
			rd.SkipBytesField()
			if rd.Err() != nil {
				return
			}
			continue
		}
		rec := SignedPD{Owner: owner, PD: rd.IDSet(), Sig: rd.BytesField()}
		if rd.Err() != nil {
			return
		}
		fresh = append(fresh, rec)
	}
	if len(fresh) == 0 {
		return
	}
	reqs := make([]cryptox.BatchRequest, len(fresh))
	for i, rec := range fresh {
		reqs[i] = cryptox.BatchRequest{Signer: rec.Owner, Msg: Canonical(rec.Owner, rec.PD), Sig: rec.Sig}
	}
	ok := cryptox.VerifyBatch(m.verifier, reqs)
	changed := false
	for i, rec := range fresh {
		if !ok[i] {
			continue
		}
		if _, have := m.records[rec.Owner]; have {
			continue // an earlier verified record in this payload already won
		}
		m.records[rec.Owner] = rec
		m.insertOwner(rec.Owner)
		m.view.SetPD(rec.Owner, rec.PD) // S_received gains rec.Owner
		changed = true
		if m.view.AddKnown(rec.Owner) {
			m.recipients = nil // Known includes every owner whose PD we hold.
		}
		for id := range rec.PD { // line 5: S_known ∪= PD contents
			if m.view.AddKnown(id) {
				m.recipients = nil
			}
		}
	}
	_ = from
	if changed && m.onUpdate != nil {
		m.onUpdate()
	}
}

// String summarizes the module state for debugging.
func (m *Module) String() string {
	return fmt.Sprintf("discovery{self=%v known=%v received=%d}", m.self, m.view.Known, len(m.records))
}
