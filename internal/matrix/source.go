package matrix

import (
	"fmt"
	"sort"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// CellSource is a lazy, indexable view of a sweep: position i of Len() can be
// materialized on demand, in any order, from any goroutine. Sources replace
// the materialize-everything []Cell fan-out — a 10^6-cell sweep is a Len()
// and some cross-product arithmetic, not a gigabyte of Params — and every
// consumer (the worker pool, shards, streams, resume) is built on them.
//
// Index(i) returns the global cell index at position i without materializing
// the cell; for whole-sweep sources it is the identity, for a shard it is the
// round-robin global index. The invariant Cell(i).Index == Index(i) holds for
// every source.
type CellSource interface {
	// Len is the number of cells this source yields.
	Len() int
	// Index is the global cell index of position i (0 ≤ i < Len).
	Index(i int) int
	// Cell materializes position i. It must be cheap, deterministic and safe
	// for concurrent use; scenario-level errors surface when the cell runs,
	// not here.
	Cell(i int) Cell
}

// CellList adapts an in-memory cell slice to CellSource. It is the bridge
// for callers that genuinely hold explicit cells (the paper suite, cupsim's
// per-seed sweeps, tests).
type CellList []Cell

// Len implements CellSource.
func (l CellList) Len() int { return len(l) }

// Index implements CellSource.
func (l CellList) Index(i int) int { return l[i].Index }

// Cell implements CellSource.
func (l CellList) Cell(i int) Cell { return l[i] }

// Materialize expands a source into a cell slice (tests and small sweeps;
// the pipeline itself never does this).
func Materialize(src CellSource) []Cell {
	cells := make([]Cell, src.Len())
	for i := range cells {
		cells[i] = src.Cell(i)
	}
	return cells
}

// axesSource computes cell i of the axes cross-product by mixed-radix
// arithmetic — graphs outermost, seeds innermost, exactly the nested-loop
// order Expand historically produced, so fingerprints are byte-identical to
// eager expansion.
type axesSource struct {
	graphs  []graph.Def
	modes   []core.Mode
	nets    []scenario.NetParams
	byz     []scenario.AutoByz
	fs      []int
	faults  []scenario.FaultParams
	seeds   []int64
	horizon sim.Time
	n       int
}

// Source builds the lazy cross-product source for the axes. Malformed graph
// defs fail here, once per def — seed-dependent generation errors (a spec
// the generator cannot satisfy for some seed) surface as per-cell Err
// outcomes at run time instead; use Expand to pre-validate every cell of a
// small sweep.
func (a Axes) Source() (CellSource, error) {
	if len(a.Graphs) == 0 {
		return nil, fmt.Errorf("matrix %q: no graph axis", a.Name)
	}
	horizon := a.Horizon
	if horizon <= 0 {
		horizon = 60 * sim.Second
	}
	s := &axesSource{
		graphs:  a.Graphs,
		modes:   orDefault(a.Modes, core.ModeUnknownF),
		nets:    orDefault(a.Nets, scenario.NetParams{Kind: scenario.NetSync}),
		byz:     orDefault(a.Byz, scenario.AutoByz{}),
		fs:      orDefault(a.F, -1),
		faults:  orDefault(a.Faults, scenario.FaultParams{}),
		seeds:   orDefault(a.Seeds, 1),
		horizon: horizon,
	}
	s.n = len(s.graphs) * len(s.modes) * len(s.nets) * len(s.byz) * len(s.fs) * len(s.faults) * len(s.seeds)
	// Probe one cell per value of every axis (the other axes pinned to
	// their first value): O(Σ axis lengths) validations, not O(cells), and
	// every malformed axis value fails here instead of surfacing as a
	// stream of per-cell Err outcomes.
	probe := func(axis string, i int, g graph.Def, mode core.Mode, net scenario.NetParams, b scenario.AutoByz, f int, fl scenario.FaultParams) error {
		if err := s.cellParams(g, mode, net, b, f, fl, s.seeds[0]).Validate(); err != nil {
			return fmt.Errorf("matrix %q %s axis value %d: %w", a.Name, axis, i, err)
		}
		return nil
	}
	for i, g := range s.graphs {
		if err := probe("graph", i, g, s.modes[0], s.nets[0], s.byz[0], s.fs[0], s.faults[0]); err != nil {
			return nil, err
		}
	}
	for i, mode := range s.modes[1:] {
		if err := probe("mode", i+1, s.graphs[0], mode, s.nets[0], s.byz[0], s.fs[0], s.faults[0]); err != nil {
			return nil, err
		}
	}
	for i, net := range s.nets[1:] {
		if err := probe("net", i+1, s.graphs[0], s.modes[0], net, s.byz[0], s.fs[0], s.faults[0]); err != nil {
			return nil, err
		}
	}
	for i, b := range s.byz[1:] {
		if err := probe("byz", i+1, s.graphs[0], s.modes[0], s.nets[0], b, s.fs[0], s.faults[0]); err != nil {
			return nil, err
		}
	}
	for i, f := range s.fs[1:] {
		if err := probe("f", i+1, s.graphs[0], s.modes[0], s.nets[0], s.byz[0], f, s.faults[0]); err != nil {
			return nil, err
		}
	}
	for i, fl := range s.faults[1:] {
		if err := probe("faults", i+1, s.graphs[0], s.modes[0], s.nets[0], s.byz[0], s.fs[0], fl); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Len implements CellSource.
func (s *axesSource) Len() int { return s.n }

// Index implements CellSource.
func (s *axesSource) Index(i int) int { return i }

// Cell implements CellSource.
func (s *axesSource) Cell(i int) Cell {
	rem := i
	seed := s.seeds[rem%len(s.seeds)]
	rem /= len(s.seeds)
	// Faults sit between seed and f in the mixed radix; with the default
	// single zero value the division is by one and every pre-fault sweep
	// keeps its historical index↦cell mapping (and thus its fingerprint).
	fl := s.faults[rem%len(s.faults)]
	rem /= len(s.faults)
	f := s.fs[rem%len(s.fs)]
	rem /= len(s.fs)
	b := s.byz[rem%len(s.byz)]
	rem /= len(s.byz)
	net := s.nets[rem%len(s.nets)]
	rem /= len(s.nets)
	mode := s.modes[rem%len(s.modes)]
	rem /= len(s.modes)
	g := s.graphs[rem]
	return Cell{Index: i, Params: s.cellParams(g, mode, net, b, f, fl, seed)}
}

// cellParams builds one cell's scenario parameters; shared by Cell and the
// Source-time validation probe so they cannot diverge. Name is left empty —
// the scenario layer derives the per-seed cell ID on demand (a stamped
// seed-specific name would defeat the compile cache's key sharing and
// freeze the first seed's name into cached runs).
func (s *axesSource) cellParams(g graph.Def, mode core.Mode, net scenario.NetParams, b scenario.AutoByz, f int, fl scenario.FaultParams, seed int64) scenario.Params {
	return scenario.Params{
		Graph:         g,
		Mode:          mode,
		F:             f,
		Auto:          b,
		Net:           net,
		Horizon:       s.horizon,
		Seed:          seed,
		SlowDiscovery: net.Kind == scenario.NetAsync,
		Faults:        fl,
	}
}

// seedSweepSource lazily runs one scenario once per seed.
type seedSweepSource struct {
	base  scenario.Params
	seeds []int64
}

// SeedSweep is a lazy source running one scenario once per seed — cupsim's
// sweep mode. Unlike an Axes source it preserves every field of the base
// params verbatim (explicit Byzantine assignments, custom values, discovery
// pacing), varying only the seed.
func SeedSweep(base scenario.Params, seeds []int64) (CellSource, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	return &seedSweepSource{base: base, seeds: seeds}, nil
}

// Len implements CellSource.
func (s *seedSweepSource) Len() int { return len(s.seeds) }

// Index implements CellSource.
func (s *seedSweepSource) Index(i int) int { return i }

// Cell implements CellSource.
func (s *seedSweepSource) Cell(i int) Cell {
	p := s.base
	p.Seed = s.seeds[i]
	return Cell{Index: i, Params: p}
}

// insecureSource sets Params.Insecure on every cell of a base sweep.
type insecureSource struct {
	base CellSource
}

// InsecureSource is the base sweep with every cell switched to the insecure
// crypto suite — how the CLIs' -insecure flag reaches the named sweeps, whose
// axes the caller does not construct. Indices, axis labels and cell IDs are
// unchanged; fingerprints are NOT comparable with the secure sweep (message
// byte counts differ), which is why the flag also renames the sweep.
func InsecureSource(base CellSource) CellSource {
	return &insecureSource{base: base}
}

// Len implements CellSource.
func (s *insecureSource) Len() int { return s.base.Len() }

// Index implements CellSource.
func (s *insecureSource) Index(i int) int { return s.base.Index(i) }

// Cell implements CellSource.
func (s *insecureSource) Cell(i int) Cell {
	c := s.base.Cell(i)
	c.Params.Insecure = true
	return c
}

// concatSource chains sources into one sweep, reindexing cells globally in
// concatenation order (the lazy counterpart of the old Concat helper).
type concatSource struct {
	srcs []CellSource
	off  []int // off[j] is the global index of srcs[j]'s first cell
	n    int
}

// ConcatSources chains sources into one sweep. Cells are reindexed so the
// concatenation's global indices are 0..Len()-1 in order.
func ConcatSources(srcs ...CellSource) CellSource {
	c := &concatSource{srcs: srcs, off: make([]int, len(srcs))}
	for j, s := range srcs {
		c.off[j] = c.n
		c.n += s.Len()
	}
	return c
}

// Len implements CellSource.
func (c *concatSource) Len() int { return c.n }

// Index implements CellSource.
func (c *concatSource) Index(i int) int { return i }

// Cell implements CellSource.
func (c *concatSource) Cell(i int) Cell {
	j := sort.Search(len(c.off), func(j int) bool { return c.off[j] > i }) - 1
	cell := c.srcs[j].Cell(i - c.off[j])
	cell.Index = i
	return cell
}

// subsetSource restricts a source to the given positions (resume uses it to
// run only the cells a partial stream is missing). Global indices are
// preserved.
type subsetSource struct {
	base CellSource
	pos  []int
}

// Len implements CellSource.
func (s *subsetSource) Len() int { return len(s.pos) }

// Index implements CellSource.
func (s *subsetSource) Index(i int) int { return s.base.Index(s.pos[i]) }

// Cell implements CellSource.
func (s *subsetSource) Cell(i int) Cell { return s.base.Cell(s.pos[i]) }
