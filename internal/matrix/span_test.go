package matrix

import (
	"testing"
)

// TestSpanParseRoundTrip pins the span spec grammar: plain shards parse as
// whole-shard spans and render back byte-identically (so distributed specs
// are a strict superset of the historical "i/n" form), tails round-trip, and
// malformed specs are rejected.
func TestSpanParseRoundTrip(t *testing.T) {
	good := map[string]Span{
		"":      {Shard: Shard{Index: 1, Count: 1}},
		"1/1":   {Shard: Shard{Index: 1, Count: 1}},
		"3/8":   {Shard: Shard{Index: 3, Count: 8}},
		"3/8@0": {Shard: Shard{Index: 3, Count: 8}},
		"3/8@5": {Shard: Shard{Index: 3, Count: 8}, From: 5},
	}
	for spec, want := range good {
		got, err := ParseSpan(spec)
		if err != nil {
			t.Fatalf("ParseSpan(%q): %v", spec, err)
		}
		if got != want {
			t.Fatalf("ParseSpan(%q) = %+v, want %+v", spec, got, want)
		}
	}
	if s := (Span{Shard: Shard{Index: 3, Count: 8}}).String(); s != "3/8" {
		t.Fatalf("whole-shard span renders %q, want \"3/8\"", s)
	}
	if s := (Span{Shard: Shard{Index: 3, Count: 8}, From: 5}).String(); s != "3/8@5" {
		t.Fatalf("tail span renders %q, want \"3/8@5\"", s)
	}
	for _, bad := range []string{"0/4", "5/4", "x/4", "3/8@", "3/8@-1", "3/8@x", "@2"} {
		if _, err := ParseSpan(bad); err == nil {
			t.Errorf("ParseSpan(%q) accepted", bad)
		}
	}
}

// TestSpanSplitPartition is the algebra's load-bearing property: Split deals
// a span into disjoint sub-spans whose union is exactly the span, at any
// nesting depth — what makes work-stealing re-specs sound. Checked by brute
// enumeration against Owns, Len and Globals across sweep sizes, shard
// geometries, tails and split factors, including a second-level split.
func TestSpanSplitPartition(t *testing.T) {
	for _, total := range []int{1, 7, 48, 100} {
		for _, count := range []int{1, 3, 4} {
			for idx := 1; idx <= count; idx++ {
				for _, from := range []int{0, 1, 5} {
					span := Span{Shard: Shard{Index: idx, Count: count}, From: from}
					want := map[int]bool{}
					for g := 0; g < total; g++ {
						if g%count == idx-1 && g >= idx-1+from*count {
							want[g] = true
						}
					}
					if got := span.Globals(total); len(got) != len(want) || span.Len(total) != len(want) {
						t.Fatalf("span %s total %d: Globals %d, Len %d, brute %d", span, total, len(got), span.Len(total), len(want))
					}
					for g := 0; g < total; g++ {
						if span.Owns(g) != want[g] {
							t.Fatalf("span %s total %d: Owns(%d) = %v, brute %v", span, total, g, span.Owns(g), want[g])
						}
					}
					for _, m := range []int{1, 2, 3, 5} {
						covered := map[int]int{}
						for _, sub := range span.Split(m) {
							for _, g := range sub.Globals(total) {
								covered[g]++
							}
							// Second-level split must still partition the sub-span.
							inner := map[int]int{}
							for _, sub2 := range sub.Split(2) {
								for _, g := range sub2.Globals(total) {
									inner[g]++
								}
							}
							if len(inner) != sub.Len(total) {
								t.Fatalf("span %s split %d then 2: %d cells, want %d", span, m, len(inner), sub.Len(total))
							}
						}
						if len(covered) != len(want) {
							t.Fatalf("span %s total %d split %d: covers %d cells, want %d", span, total, m, len(covered), len(want))
						}
						for g, n := range covered {
							if !want[g] || n != 1 {
								t.Fatalf("span %s total %d split %d: cell %d covered %d times (owned: %v)", span, total, m, g, n, want[g])
							}
						}
					}
				}
			}
		}
	}
}

// TestSpanSourceMatchesGlobals pins the lazy span view to the arithmetic:
// Source enumerates exactly Globals, in order, with global indices intact.
func TestSpanSourceMatchesGlobals(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	total := src.Len()
	for _, span := range []Span{
		{Shard: Shard{Index: 1, Count: 1}},
		{Shard: Shard{Index: 2, Count: 5}},
		{Shard: Shard{Index: 2, Count: 5}, From: 4},
		{Shard: Shard{Index: 3, Count: 7}, From: 100},
	} {
		view := span.Source(src)
		globals := span.Globals(total)
		if view.Len() != len(globals) {
			t.Fatalf("span %s: Source len %d, Globals %d", span, view.Len(), len(globals))
		}
		for i, g := range globals {
			if view.Index(i) != g || view.Cell(i).Index != g {
				t.Fatalf("span %s position %d: Index %d, Cell.Index %d, want %d",
					span, i, view.Index(i), view.Cell(i).Index, g)
			}
		}
	}
}

// TestParseCellList pins the -only flag grammar.
func TestParseCellList(t *testing.T) {
	got, err := ParseCellList("41, 3,17")
	if err != nil {
		t.Fatal(err)
	}
	if FormatCellList(got) != "3,17,41" {
		t.Fatalf("cell list canonicalized to %q, want \"3,17,41\"", FormatCellList(got))
	}
	for _, bad := range []string{"", "1,,2", "1,-2", "x", "3,3"} {
		if _, err := ParseCellList(bad); err == nil {
			t.Errorf("ParseCellList(%q) accepted", bad)
		}
	}
}
