package matrix

import (
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
)

// TestInsecureSweepDivergesDeterministically pins the -insecure contract:
// the insecure suite changes no protocol decision (same consensus outcomes,
// no errors), is deterministic (two insecure runs fingerprint identically),
// and is fingerprint-incomparable with the secure suite (message bytes
// differ) — which is why the CLIs rename insecure sweeps instead of letting
// their fingerprints sit next to anchor numbers.
func TestInsecureSweepDivergesDeterministically(t *testing.T) {
	base := scenario.Params{
		Graph: graph.Def{Kind: graph.DefFigure, Figure: "fig1b"},
		Mode:  core.ModeKnownF,
		F:     -1,
	}
	src, err := SeedSweep(base, Seeds(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	run := func(s CellSource) *Report {
		rep, err := Run(s, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors > 0 {
			t.Fatalf("%d errored cells", rep.Errors)
		}
		return rep
	}
	secure := run(src)
	ins1 := run(InsecureSource(src))
	ins2 := run(InsecureSource(src))
	if ins1.Fingerprint() != ins2.Fingerprint() {
		t.Fatalf("insecure sweep is not deterministic:\n  %s\n  %s", ins1.Fingerprint(), ins2.Fingerprint())
	}
	if ins1.Fingerprint() == secure.Fingerprint() {
		t.Fatalf("insecure and secure sweeps share fingerprint %s — the suite swap changed nothing?", secure.Fingerprint())
	}
	if ins1.Consensus != secure.Consensus {
		t.Fatalf("insecure suite changed protocol outcomes: %d consensus cells, secure had %d", ins1.Consensus, secure.Consensus)
	}
	for i := range secure.Outcomes {
		if secure.Outcomes[i].Consensus != ins1.Outcomes[i].Consensus {
			t.Fatalf("cell %d: consensus %v secure, %v insecure", i, secure.Outcomes[i].Consensus, ins1.Outcomes[i].Consensus)
		}
	}
}
