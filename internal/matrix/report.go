package matrix

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/bftcup/bftcup/internal/sim"
)

// AxisStat aggregates outcomes sharing one axis value.
type AxisStat struct {
	// Value is the axis value label (e.g. a graph name or "sync").
	Value string `json:"value"`
	// Cells / Consensus / Errors count the outcomes with this value, how
	// many reached consensus, and how many errored.
	Cells     int `json:"cells"`
	Consensus int `json:"consensus"`
	Errors    int `json:"errors"`
	// Agreement / Validity / Integrity / Termination count outcomes that
	// achieved each graded property individually — the per-axis emergence
	// rates the probabilistic sweep reports (a random graph can preserve
	// safety yet fail termination, and the split is the measurement). They
	// are derived state like Cells/Consensus: the report fingerprint hashes
	// outcomes, never axis tables, so adding them changes no fingerprint.
	Agreement   int `json:"agreement"`
	Validity    int `json:"validity"`
	Integrity   int `json:"integrity"`
	Termination int `json:"termination"`
}

// Report is the aggregated result of a matrix run. Every field except the
// wall-clock ones (WallNS, per-outcome WallNS, Parallelism) is a pure
// function of the cells and their deterministic execution — Fingerprint
// hashes exactly that, and the regression tests assert serial and parallel
// fingerprints agree.
type Report struct {
	// Name labels the sweep the report came from.
	Name string `json:"name,omitempty"`
	// Cells / Consensus / Errors are the whole-sweep counts.
	Cells     int `json:"cells"`
	Consensus int `json:"consensus"`
	Errors    int `json:"errors"`
	// Mismatches / Expected count expectation-carrying cells that diverged
	// from the paper's prediction, and how many carried one at all.
	Mismatches int `json:"mismatches"`
	Expected   int `json:"expected"`
	// Parallelism is the worker count that produced the report (0 for a
	// merged report); WallNS is wall-clock time. Both are excluded from the
	// fingerprint.
	Parallelism int   `json:"parallelism"`
	WallNS      int64 `json:"wall_ns"`

	// FingerprintHex is filled in by JSON() so emitted reports carry their
	// own deterministic fingerprint; it is derived state, never aggregated
	// and never part of the Fingerprint hash itself.
	FingerprintHex string `json:"fingerprint,omitempty"`

	// TotalMessages / TotalBytes sum the simulator traffic of every cell;
	// MaxVirtualNS is the longest virtual run among them.
	TotalMessages int64    `json:"total_messages"`
	TotalBytes    int64    `json:"total_bytes"`
	MaxVirtualNS  sim.Time `json:"max_virtual_ns"`

	// Axes maps axis name (graph, mode, net, byz, seed) to per-value stats,
	// in first-seen (i.e. expansion) order. An axis with more than
	// maxAxisValues distinct values (a million-seed sweep) collects the rest
	// under one "(more)" bucket so reports stay bounded.
	Axes map[string][]AxisStat `json:"axes"`

	// Outcomes holds every cell's graded result in cell-index order. It is
	// nil for summary-only reports (an Aggregator or merge run without
	// outcome retention), whose fingerprint was sealed incrementally.
	Outcomes []Outcome `json:"outcomes,omitempty"`

	// fingerprint caches the digest sealed by the Aggregator that built the
	// report, so summary-only reports stay fingerprintable without their
	// outcomes.
	fingerprint string
}

// Fingerprint hashes every deterministic field of the report — the full
// outcome stream in cell order plus the aggregate counters — and excludes
// wall-clock measurements and parallelism. Two runs of the same cells agree
// on it no matter how they were scheduled, sharded, merged or resumed: the
// digest is folded outcome by outcome (see the fingerprint type), so the
// incremental Aggregator seals the identical value a monolithic pass over
// the outcomes computes.
func (r *Report) Fingerprint() string {
	if r.fingerprint != "" {
		return r.fingerprint
	}
	if r.Outcomes == nil && r.FingerprintHex != "" {
		// A summary-only report that lost its sealing Aggregator (e.g. a
		// JSON round trip): the stamped digest is the only faithful one —
		// recomputing over zero outcomes would fabricate a plausible but
		// wrong value.
		return r.FingerprintHex
	}
	fp := newFingerprint()
	for i := range r.Outcomes {
		fp.add(&r.Outcomes[i])
	}
	return fp.finish(r)
}

// JSON renders the full report (summary + per-cell outcomes), stamped with
// its deterministic fingerprint.
func (r *Report) JSON() ([]byte, error) {
	r.FingerprintHex = r.Fingerprint()
	return json.MarshalIndent(r, "", "  ")
}

// WriteText renders a human-readable summary: per-axis tables, the failure
// list, totals. When cellRows is true every cell gets its own row (useful
// for small matrices; sweeps with hundreds of cells usually want the
// aggregates only). Summary-only reports (nil Outcomes) render the
// aggregate tables alone.
func (r *Report) WriteText(w io.Writer, cellRows bool) {
	name := r.Name
	if name == "" {
		name = "matrix"
	}
	fmt.Fprintf(w, "# %s: %d cells, %d consensus, %d failed, %d errors",
		name, r.Cells, r.Consensus, r.Cells-r.Consensus-r.Errors, r.Errors)
	if r.Expected > 0 {
		fmt.Fprintf(w, ", %d/%d matched the paper", r.Expected-r.Mismatches, r.Expected)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "# %d workers, %.2fs wall, %d msgs, %d wire bytes\n\n",
		r.Parallelism, float64(r.WallNS)/1e9, r.TotalMessages, r.TotalBytes)

	for _, axis := range []string{"graph", "mode", "net", "byz", "seed"} {
		stats := r.Axes[axis]
		if len(stats) < 2 {
			continue
		}
		fmt.Fprintf(w, "## by %s\n\n", axis)
		fmt.Fprintf(w, "| %s | cells | consensus | agree | valid | integr | term | errors |\n|---|---|---|---|---|---|---|---|\n", axis)
		for _, st := range stats {
			fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %d | %d | %d |\n",
				st.Value, st.Cells, st.Consensus, st.Agreement, st.Validity, st.Integrity, st.Termination, st.Errors)
		}
		fmt.Fprintln(w)
	}

	if r.Outcomes == nil {
		return
	}

	if cellRows {
		fmt.Fprintln(w, "| cell | verdict | failure | virtual | msgs | bytes |")
		fmt.Fprintln(w, "|---|---|---|---|---|---|")
		for i := range r.Outcomes {
			o := &r.Outcomes[i]
			verdict := "✓"
			switch {
			case o.Err != "":
				verdict = "error"
			case !o.Consensus:
				verdict = "✗"
			}
			fail := o.FailureMode
			if fail == "" {
				fail = "—"
			}
			if o.Err != "" {
				fail = o.Err
			}
			fmt.Fprintf(w, "| `%s` | %s | %s | %s | %d | %d |\n",
				o.ID, verdict, fail, o.VirtualNS, o.Messages, o.Bytes)
		}
		fmt.Fprintln(w)
		return
	}

	var failed []string
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		switch {
		case o.Err != "":
			failed = append(failed, fmt.Sprintf("- `%s`: error: %s", o.ID, o.Err))
		case o.Match != nil && !*o.Match:
			failed = append(failed, fmt.Sprintf("- `%s`: measured %t, paper predicts %t", o.ID, o.Consensus, *o.Expect))
		case o.Match == nil && !o.Consensus:
			failed = append(failed, fmt.Sprintf("- `%s`: %s", o.ID, o.FailureMode))
		}
	}
	if len(failed) > 0 {
		fmt.Fprintln(w, "## cells without consensus / diverging from the paper")
		fmt.Fprintln(w)
		fmt.Fprintln(w, strings.Join(failed, "\n"))
		fmt.Fprintln(w)
	}
}
