package matrix

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestRetryDelay pins the backoff envelope: attempt n draws uniformly from
// [½d, 1½d) where d = base·2^(n−1), and deep lineages cap at 5s.
func TestRetryDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := 50 * time.Millisecond
	for attempt := 1; attempt <= 12; attempt++ {
		want := base << (attempt - 1)
		if want > 5*time.Second {
			want = 5 * time.Second
		}
		for i := 0; i < 100; i++ {
			d := retryDelay(base, attempt, rng)
			if d < want/2 || d >= want/2+want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, want/2, want/2+want)
			}
		}
	}
}

// flapTransport fails instantly on every dispatch without writing a byte —
// the flapping-worker shape the retry backoff exists for.
type flapTransport struct{}

// Run implements Transport.
func (flapTransport) Run(context.Context, Task, io.Writer) error {
	return errors.New("injected flap")
}

// TestFabricBackoffBoundsFlappingWorker runs a fleet of one permanently
// flapping worker: the lineage must burn its MaxAttempts budget and abort,
// but only after waiting out the backoff between attempts — the minimum
// jittered delays for attempts 1 and 2 (½·base + base) put a hard floor on
// the wall clock, which is what stops a flapping worker exhausting the
// budget in milliseconds.
func TestFabricBackoffBoundsFlappingWorker(t *testing.T) {
	base := 40 * time.Millisecond
	start := time.Now()
	_, stats, err := runFabric(context.Background(), 3, []Transport{flapTransport{}}, FabricOptions{
		MaxAttempts:  3,
		RetryBackoff: base,
		SpoolDir:     t.TempDir(),
	})
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "failed 3 times") {
		t.Fatalf("flapping worker did not exhaust its lineage: %v", err)
	}
	if stats.Tasks != 3 || stats.Redispatches != 2 || stats.Backoffs != 2 {
		t.Fatalf("unexpected recovery stats: %+v", stats)
	}
	if min := base/2 + base; elapsed < min {
		t.Fatalf("lineage burned in %v, backoff floor is %v", elapsed, min)
	}
}

// TestFabricBackoffDisabled pins the opt-out: a negative RetryBackoff
// redispatches immediately, so no recovery task is ever delayed.
func TestFabricBackoffDisabled(t *testing.T) {
	_, stats, err := runFabric(context.Background(), 3, []Transport{flapTransport{}}, FabricOptions{
		MaxAttempts:  3,
		RetryBackoff: -1,
		SpoolDir:     t.TempDir(),
	})
	if err == nil || !strings.Contains(err.Error(), "failed 3 times") {
		t.Fatalf("flapping worker did not exhaust its lineage: %v", err)
	}
	if stats.Backoffs != 0 {
		t.Fatalf("disabled backoff still delayed %d tasks", stats.Backoffs)
	}
}
