package matrix

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/scenario"
)

// uncachedOutcome replicates the pre-compile-cache per-cell execution path:
// a fresh Spec materialization and a fresh one-shot scenario.Run per cell —
// no compile cache, no per-worker scratch reuse. The transparency tests pin
// the cached pipeline to this reference byte for byte.
func uncachedOutcome(c Cell, trace bool) Outcome {
	p := c.Params
	p.Trace = trace
	out := Outcome{
		Index: c.Index,
		ID:    p.ID(),
		Graph: p.Graph.String(),
		Mode:  p.Mode.String(),
		Net:   p.Net.Label(),
		Byz:   p.ByzLabel(),
		F:     p.F,
		Seed:  p.Seed,
	}
	spec, err := p.Spec()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	res, err := scenario.Run(spec)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Consensus = res.Consensus()
	out.Agreement = res.Agreement
	out.Validity = res.Validity
	out.Integrity = res.Integrity
	out.Termination = res.Termination
	out.FailureMode = res.FailureMode()
	out.VirtualNS = res.Elapsed
	out.Messages = res.Messages
	out.Bytes = res.Bytes
	out.TraceDigest = res.TraceDigest
	out.TraceEvents = res.TraceEvents
	if c.Expect != nil {
		want := c.Expect.Consensus
		match := want == out.Consensus
		out.Expect, out.Match = &want, &match
	}
	return out
}

// assertCacheTransparent runs src through the cached worker-pool pipeline
// and through the uncached per-cell reference, with tracing on, and asserts
// the outcomes — including per-cell event-trace digests — and the report
// fingerprints are identical. This is the cache-is-observably-transparent
// contract: compile caching, keyring caching, signature memoization and
// engine reuse may only change how fast a cell runs, never any bit of what
// it produces.
func assertCacheTransparent(t *testing.T, name string, src CellSource) {
	t.Helper()
	cached, err := Run(src, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	cached.Name = name

	agg := NewAggregator(true)
	for i := 0; i < src.Len(); i++ {
		if err := agg.Add(i, uncachedOutcome(src.Cell(i), true)); err != nil {
			t.Fatal(err)
		}
	}
	uncached, err := agg.Report(cached.Parallelism)
	if err != nil {
		t.Fatal(err)
	}
	uncached.Name = name

	for i := range cached.Outcomes {
		got, want := cached.Outcomes[i], uncached.Outcomes[i]
		got.WallNS, want.WallNS = 0, 0 // the one nondeterministic field
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cell %d diverges under caching:\n  cached:   %+v\n  uncached: %+v", i, got, want)
		}
		if got.TraceEvents == 0 && got.Err == "" {
			t.Fatalf("cell %d recorded no trace events — transparency check is vacuous", i)
		}
	}
	if g, w := cached.Fingerprint(), uncached.Fingerprint(); g != w {
		t.Fatalf("cached fingerprint %s != uncached %s", g[:16], w[:16])
	}
}

// TestCompileCacheTransparentStandardSweep pins cached ≡ uncached on the
// standard sweep: figure and generator graph families, two network models,
// clean and Byzantine placements, two seeds — the regime where the compile
// cache hits across seeds and the keyring cache hits across same-seed cells.
func TestCompileCacheTransparentStandardSweep(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	assertCacheTransparent(t, "standard sweep, seeds 1:2", src)
}

// TestCompileCacheTransparentExtendedKOSR pins cached ≡ uncached on a
// generated extended-k-OSR sweep, where every cell's graph is built from its
// own seed — every compile is a cache miss with a distinct CompileKey, and
// the cache must stay exactly as transparent.
func TestCompileCacheTransparentExtendedKOSR(t *testing.T) {
	a := Axes{
		Name:   "extended-transparency",
		Graphs: []graph.Def{def(t, "extended:core=4,noncore=2,extra=0.2")},
		Modes:  []core.Mode{core.ModeUnknownF},
		Nets:   []scenario.NetParams{{Kind: scenario.NetSync}},
		Seeds:  Seeds(1, 6),
	}
	src, err := a.Source()
	if err != nil {
		t.Fatal(err)
	}
	assertCacheTransparent(t, "extended-transparency", src)
}

// TestCompileCacheTransparentRuntimeErrors pins transparency on the error
// path the cache must not contaminate: a seed sweep whose cells all fail at
// run time (a Byzantine kind Validate and Compile accept but Run rejects)
// must produce per-cell error messages naming each cell's own seed — not
// the seed of the cell that populated the cache entry.
func TestCompileCacheTransparentRuntimeErrors(t *testing.T) {
	base := scenario.Params{
		Graph: def(t, "fig1b"),
		Mode:  core.ModeKnownF,
		F:     -1,
		Byz:   map[model.ID]scenario.ByzParams{2: {Kind: scenario.ByzKind(99)}},
	}
	src, err := SeedSweep(base, Seeds(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	assertCacheTransparent(t, "runtime-errors", src)
	rep, err := Run(src, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != src.Len() {
		t.Fatalf("%d of %d cells errored, want all", rep.Errors, src.Len())
	}
	for i, o := range rep.Outcomes {
		want := fmt.Sprintf("seed=%d", o.Seed)
		if !strings.Contains(o.Err, want) {
			t.Fatalf("cell %d error %q does not name its own seed (%s) — cached name leaked across seeds", i, o.Err, want)
		}
	}
}

// TestCompileKeySharing pins the cache-key contract from both sides: a seed
// sweep over a figure graph shares one CompileKey (compile once, run many),
// while a seed sweep over a random family keys each cell by the graph its
// seed builds (never a stale hit).
func TestCompileKeySharing(t *testing.T) {
	fig := scenario.Params{Graph: def(t, "fig1b"), Mode: core.ModeKnownF, F: -1}
	figA, figB := fig, fig
	figA.Seed, figB.Seed = 1, 2
	if figA.CompileKey() != figB.CompileKey() {
		t.Fatalf("figure-family seed sweep split the compile cache:\n  %s\n  %s", figA.CompileKey(), figB.CompileKey())
	}

	gen := scenario.Params{Graph: def(t, "kosr:sink=5,nonsink=3,k=2,extra=0.15"), Mode: core.ModeKnownF, F: -1}
	genA, genB := gen, gen
	genA.Seed, genB.Seed = 1, 2
	if genA.CompileKey() == genB.CompileKey() {
		t.Fatal("random-family cells with different build seeds share a compile key (stale graph reuse)")
	}
	genB.GraphSeed = 1 // pin the graph: now only the sim seed differs
	if genA.CompileKey() != genB.CompileKey() {
		t.Fatal("random-family cells with identical build seeds must share a compile key")
	}

	// Byzantine parameter contents (not just counts) must split the key.
	byzA, byzB := fig, fig
	byzA.Byz = map[model.ID]scenario.ByzParams{4: {Kind: scenario.ByzFakePD, ClaimedPD: []model.ID{1, 2, 3}}}
	byzB.Byz = map[model.ID]scenario.ByzParams{4: {Kind: scenario.ByzFakePD, ClaimedPD: []model.ID{1, 2}}}
	if byzA.CompileKey() == byzB.CompileKey() {
		t.Fatal("different claimed PDs share a compile key")
	}

	// A free-form name must not be able to mimic other key sections: a name
	// crafted to spell out another cell's values section must not collide
	// with the cell that genuinely carries those values.
	crafted, genuine := fig, fig
	crafted.Name = `x|val1="a"`
	genuine.Name = "x"
	genuine.Values = map[model.ID]model.Value{1: model.Value("a")}
	if crafted.CompileKey() == genuine.CompileKey() {
		t.Fatal("crafted name collides with a different cell's compile key (unescaped name injection)")
	}
}
