package matrix

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
)

// fingerprint folds outcome lines into a streaming SHA-256; finish appends
// the aggregate-totals line and returns the digest. Splitting the hash this
// way (outcomes first, totals last) is what lets the Aggregator compute the
// report fingerprint online in O(1) memory — the totals are only known after
// the last outcome, so they close the stream instead of opening it. Both
// Report.Fingerprint and the Aggregator use this one implementation, which
// is why monolithic, incremental, sharded-merged and resumed executions
// cannot disagree.
type fingerprint struct {
	h hash.Hash
}

func newFingerprint() fingerprint {
	return fingerprint{h: sha256.New()}
}

// add folds one outcome, in cell-index order.
func (f *fingerprint) add(o *Outcome) {
	fmt.Fprintf(f.h, "%d|%s|%s|%s|%s|%s|%d|%d|%t%t%t%t%t|%s|%d|%d|%d|%s|%d|%s\n",
		o.Index, o.ID, o.Graph, o.Mode, o.Net, o.Byz, o.F, o.Seed,
		o.Consensus, o.Agreement, o.Validity, o.Integrity, o.Termination,
		o.FailureMode, o.VirtualNS, o.Messages, o.Bytes,
		o.TraceDigest, o.TraceEvents, o.Err)
	if o.Expect != nil {
		fmt.Fprintf(f.h, "expect=%t match=%t\n", *o.Expect, *o.Match)
	}
}

// finish appends the totals line from the report's deterministic aggregate
// fields and returns the hex digest. It consumes the stream: no add may
// follow.
func (f *fingerprint) finish(r *Report) string {
	fmt.Fprintf(f.h, "cells=%d consensus=%d errors=%d mismatches=%d expected=%d msgs=%d bytes=%d maxvirt=%d\n",
		r.Cells, r.Consensus, r.Errors, r.Mismatches, r.Expected,
		r.TotalMessages, r.TotalBytes, r.MaxVirtualNS)
	return hex.EncodeToString(f.h.Sum(nil))
}

// maxAxisValues bounds how many distinct values one axis tracks
// individually; beyond it new values fold into a single overflow bucket
// (labelled axisOverflow). A million-seed sweep would otherwise grow a
// million seed-axis rows — the cap is what keeps the Aggregator's memory
// independent of the sweep size. The fingerprint is unaffected: it hashes
// outcomes, not axis tables.
const maxAxisValues = 1024

// axisOverflow labels the bucket collecting values past maxAxisValues.
const axisOverflow = "(more)"

// Aggregator folds outcomes into a Report incrementally: per-axis stats,
// grade counts, traffic totals and the fingerprint are all maintained
// online, so memory is O(min(distinct axis values, maxAxisValues)) plus the
// reorder buffer — independent of the sweep's cell count. Outcomes may
// arrive in any order; they are folded in position order (the worker pool
// claims positions within a bounded window of its completion watermark, so
// its reordering — and therefore the buffer — is O(parallelism) no matter
// how skewed per-cell runtimes are).
type Aggregator struct {
	keep    bool
	rep     *Report
	fp      fingerprint
	next    int
	pending map[int]*Outcome
	axisIdx map[string]map[string]int // axis → value → index into rep.Axes[axis]
	done    bool
}

// NewAggregator returns an empty aggregator. With keepOutcomes the report
// retains every outcome (what Run and per-cell renderings need); without it
// the report is the O(axes) summary (what streaming shards and huge merges
// need).
func NewAggregator(keepOutcomes bool) *Aggregator {
	return &Aggregator{
		keep:    keepOutcomes,
		rep:     &Report{Axes: make(map[string][]AxisStat)},
		fp:      newFingerprint(),
		pending: make(map[int]*Outcome),
		axisIdx: make(map[string]map[string]int),
	}
}

// Add feeds the outcome at position pos (0-based, dense). Positions may
// arrive in any order but each exactly once; out-of-order outcomes are
// buffered until their predecessors arrive.
func (a *Aggregator) Add(pos int, o Outcome) error {
	if a.done {
		return fmt.Errorf("aggregate: Add(%d) after Report", pos)
	}
	if pos < a.next {
		return fmt.Errorf("aggregate: duplicate outcome for cell position %d", pos)
	}
	if _, dup := a.pending[pos]; dup {
		return fmt.Errorf("aggregate: duplicate outcome for cell position %d", pos)
	}
	if pos > a.next {
		a.pending[pos] = &o
		return nil
	}
	a.fold(&o)
	for {
		nxt, ok := a.pending[a.next]
		if !ok {
			return nil
		}
		delete(a.pending, a.next)
		a.fold(nxt)
	}
}

// Cells returns how many outcomes have been folded (contiguous from 0).
func (a *Aggregator) Cells() int { return a.next }

// fold integrates one outcome; only called with the next position in order.
func (a *Aggregator) fold(o *Outcome) {
	a.next++
	rep := a.rep
	rep.Cells++
	if o.Err != "" {
		rep.Errors++
	}
	if o.Consensus {
		rep.Consensus++
	}
	if o.Expect != nil {
		rep.Expected++
		if o.Match != nil && !*o.Match {
			rep.Mismatches++
		}
	}
	rep.TotalMessages += o.Messages
	rep.TotalBytes += o.Bytes
	if o.VirtualNS > rep.MaxVirtualNS {
		rep.MaxVirtualNS = o.VirtualNS
	}
	a.bump("graph", o.Graph, o)
	a.bump("mode", o.Mode, o)
	a.bump("net", o.Net, o)
	a.bump("byz", o.Byz, o)
	a.bump("seed", fmt.Sprintf("%d", o.Seed), o)
	a.fp.add(o)
	if a.keep {
		rep.Outcomes = append(rep.Outcomes, *o)
	}
}

// bump counts the outcome under one axis value, in first-seen order.
func (a *Aggregator) bump(axis, value string, o *Outcome) {
	idx, ok := a.axisIdx[axis]
	if !ok {
		idx = make(map[string]int)
		a.axisIdx[axis] = idx
	}
	i, ok := idx[value]
	if !ok {
		if len(idx) >= maxAxisValues {
			value = axisOverflow
			if i, ok = idx[value]; !ok {
				i = len(a.rep.Axes[axis])
				idx[value] = i
				a.rep.Axes[axis] = append(a.rep.Axes[axis], AxisStat{Value: value})
			}
		} else {
			i = len(a.rep.Axes[axis])
			idx[value] = i
			a.rep.Axes[axis] = append(a.rep.Axes[axis], AxisStat{Value: value})
		}
	}
	st := &a.rep.Axes[axis][i]
	st.Cells++
	if o.Consensus {
		st.Consensus++
	}
	if o.Err != "" {
		st.Errors++
	}
	if o.Agreement {
		st.Agreement++
	}
	if o.Validity {
		st.Validity++
	}
	if o.Integrity {
		st.Integrity++
	}
	if o.Termination {
		st.Termination++
	}
}

// Report finalizes the aggregation: it fails if any position is still
// missing, seals the fingerprint, and returns the report. Further Adds are
// rejected; repeated calls return the same report.
func (a *Aggregator) Report(parallelism int) (*Report, error) {
	if a.done {
		a.rep.Parallelism = parallelism
		return a.rep, nil
	}
	if len(a.pending) > 0 {
		return nil, fmt.Errorf("aggregate: outcome for cell position %d missing (%d later outcomes buffered)",
			a.next, len(a.pending))
	}
	a.done = true
	a.rep.Parallelism = parallelism
	a.rep.fingerprint = a.fp.finish(a.rep)
	return a.rep, nil
}
