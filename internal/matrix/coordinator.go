package matrix

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// FabricOptions tunes the distributed sweep coordinator.
type FabricOptions struct {
	// Shards is the initial number of spans dealt to the fleet; 0 means one
	// per worker. More shards than workers gives natural load balancing at
	// the cost of more streams to merge.
	Shards int
	// SpoolDir receives one JSONL spool file per dispatched task. Empty
	// means a temporary directory, removed after a successful merge; a
	// caller-provided directory is always left in place.
	SpoolDir string
	// Heartbeat is how long a worker may go without emitting a record (or
	// growing its resume spool) before it is declared stalled, killed, and
	// its unclaimed tail re-specced to idle workers. 0 disables stall
	// detection.
	Heartbeat time.Duration
	// MaxAttempts bounds one task lineage's dispatches (the original plus
	// every redispatch, resume or re-spec descended from it) before the
	// sweep aborts. 0 means 5.
	MaxAttempts int
	// RetryBackoff is the base delay before a failed task's lineage is
	// dispatched again; each attempt doubles it, with ±50% jitter, capped at
	// 5s. Without it a worker that dies on startup burns the whole
	// MaxAttempts budget in milliseconds. 0 means 50ms; negative disables
	// the delay (recovery tasks redispatch immediately).
	RetryBackoff time.Duration
	// MaxSplit caps how many sub-spans one steal creates; 0 means the
	// worker count.
	MaxSplit int
	// KeepOutcomes retains every cell outcome in the merged report.
	KeepOutcomes bool
	// Progress, when set, is called from the coordinator loop with the
	// number of cells spooled so far and the sweep total.
	Progress func(done, total int)
}

// FabricStats records the coordinator's recovery behavior (asserted by the
// fault-injection tests, reported by sweepd -v).
type FabricStats struct {
	// Tasks counts dispatches, including every recovery dispatch.
	Tasks int
	// Redispatches counts tasks re-run from scratch (no usable partial).
	Redispatches int
	// Resumes counts torn spools completed in place by another worker.
	Resumes int
	// Seals counts torn spools sealed as valid partial streams.
	Seals int
	// Steals counts stalled tasks whose unclaimed tail was re-specced.
	Steals int
	// SubShards counts the sub-spans those steals created.
	SubShards int
	// GapTasks counts explicit cell-list back-fill dispatches.
	GapTasks int
	// Backoffs counts recovery tasks whose dispatch was delayed by the
	// retry backoff.
	Backoffs int
}

// RunFabric executes a sweep of total cells across the fleet and merges the
// workers' streams into the monolithic report: the fingerprint is
// byte-identical to a single-process Run of the same sweep, including under
// worker death, torn streams, and straggler-triggered shard splits. Memory
// on the coordinator is O(workers × parallelism + axes): each worker's
// stream spools to disk as it arrives and the final fold is the cursor-based
// streaming Merge. The stats describe the recovery work the run needed.
//
// Cancelling ctx aborts the sweep: every in-flight dispatch context is
// cancelled (transports must kill their worker and return), the queue is
// drained, and RunFabric returns ctx's error once the fleet has been reaped —
// a killed coordinator leaves no orphaned workers behind.
func RunFabric(ctx context.Context, total int, workers []Transport, opts FabricOptions) (*Report, FabricStats, error) {
	return runFabric(ctx, total, workers, opts)
}

// live tracks one in-flight dispatch.
type live struct {
	task    Task
	slot    int
	spool   string
	cancel  context.CancelFunc
	w       *spoolWriter // nil for resume-in-place dispatches
	stalled bool
	// lastSize/lastChange drive the heartbeat for resume dispatches, where
	// progress is spool-file growth rather than sink writes.
	lastSize   int64
	lastChange time.Time
}

// exitEvent reports a worker's exit to the coordinator loop.
type exitEvent struct {
	lv  *live
	err error
}

func runFabric(ctx context.Context, total int, workers []Transport, opts FabricOptions) (*Report, FabricStats, error) {
	var stats FabricStats
	if ctx == nil {
		ctx = context.Background()
	}
	if total <= 0 {
		return nil, stats, fmt.Errorf("fabric: sweep has no cells")
	}
	if len(workers) == 0 {
		return nil, stats, fmt.Errorf("fabric: no workers")
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = len(workers)
	}
	if shards > total {
		shards = total
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 5
	}
	maxSplit := opts.MaxSplit
	if maxSplit <= 0 {
		maxSplit = len(workers)
	}
	retryBase := opts.RetryBackoff
	if retryBase == 0 {
		retryBase = 50 * time.Millisecond
	}
	// The jitter decorrelates retries across lineages; it is wall-clock
	// scheduling only, invisible to sweep fingerprints, so a non-deterministic
	// seed is fine.
	retryJitter := rand.New(rand.NewSource(time.Now().UnixNano()))
	dir, ownDir := opts.SpoolDir, false
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "sweep-fabric-"); err != nil {
			return nil, stats, err
		}
		ownDir = true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}

	// Resume-in-place needs every transport to share the coordinator's
	// filesystem; a mixed fleet falls back to seal-and-resplit for everyone.
	allResume := true
	for _, w := range workers {
		if _, ok := w.(SpoolResumer); !ok {
			allResume = false
		}
	}

	queue := make([]Task, 0, shards)
	for i := 1; i <= shards; i++ {
		sp := Span{Shard: Shard{Index: i, Count: shards}}
		if sp.Len(total) > 0 {
			queue = append(queue, Task{Span: sp})
		}
	}

	idle := make([]int, len(workers))
	for i := range idle {
		idle[i] = len(workers) - 1 - i
	}
	running := make(map[int]*live)
	events := make(chan exitEvent, len(workers))
	var completed []string
	doneCells, seq := 0, 0

	dispatch := func(task Task) error {
		slot := idle[len(idle)-1]
		idle = idle[:len(idle)-1]
		// Derived from the caller's ctx: cancelling the sweep cancels every
		// in-flight worker.
		ctx, cancel := context.WithCancel(ctx)
		lv := &live{task: task, slot: slot, cancel: cancel, lastChange: time.Now()}
		stats.Tasks++
		if task.resumeSpool != "" {
			lv.spool = task.resumeSpool
			resumer := workers[slot].(SpoolResumer)
			go func() {
				events <- exitEvent{lv: lv, err: resumer.ResumeSpool(ctx, task, lv.spool)}
			}()
		} else {
			seq++
			lv.spool = filepath.Join(dir, fmt.Sprintf("task-%03d-w%d.jsonl", seq, slot))
			f, err := os.Create(lv.spool)
			if err != nil {
				cancel()
				return err
			}
			lv.w = newSpoolWriter(f)
			go func() {
				err := workers[slot].Run(ctx, task, lv.w)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				events <- exitEvent{lv: lv, err: err}
			}()
		}
		running[slot] = lv
		return nil
	}

	var abortErr error
	abort := func(err error) {
		if abortErr == nil {
			abortErr = err
		}
		queue = queue[:0]
		for _, lv := range running {
			lv.cancel()
		}
	}

	// enqueueRecovery routes one failed dispatch: discard-and-redispatch
	// when nothing usable was spooled, resume-in-place when the fleet can,
	// seal plus gap/tail re-spec otherwise (and always on a stall, where
	// the tail split is the work-stealing).
	enqueueRecovery := func(lv *live, runErr error) {
		attempt := lv.task.attempt + 1
		if attempt >= maxAttempts {
			abort(fmt.Errorf("fabric: task %s failed %d times (last: %v)", lv.task.spec(), attempt, runErr))
			return
		}
		// Every task this recovery enqueues waits out the lineage's jittered
		// exponential backoff before redispatch.
		var notBefore time.Time
		if retryBase > 0 {
			notBefore = time.Now().Add(retryDelay(retryBase, attempt, retryJitter))
			stats.Backoffs++
		}
		scan, serr := scanStreamFile(lv.spool)
		expected := lv.task.expected(total)
		usable := serr == nil && scan.header != nil && len(scan.done) > 0 && scan.trailer == nil
		if usable && scan.header.TotalCells != total {
			abort(fmt.Errorf("fabric: worker stream claims %d total cells, sweep has %d (misconfigured fleet?)", scan.header.TotalCells, total))
			return
		}
		if usable {
			for g := range scan.done {
				if !taskOwns(lv.task, g) {
					usable = false // outside its task: untrusted stream
					break
				}
			}
		}
		if !usable {
			os.Remove(lv.spool)
			t := lv.task
			t.attempt = attempt
			t.resumeSpool = ""
			t.notBefore = notBefore
			queue = append(queue, t)
			stats.Redispatches++
			return
		}
		if !lv.stalled && allResume {
			// Dead worker, shared filesystem: another worker completes the
			// torn spool in place — the cheapest recovery, one stream.
			t := lv.task
			t.attempt = attempt
			t.resumeSpool = lv.spool
			t.notBefore = notBefore
			queue = append(queue, t)
			stats.Resumes++
			return
		}
		// Seal what ran; back-fill the holes. The sealed stream stays in the
		// merge set with its outcome prefix.
		kept, err := sealStreamFile(lv.spool)
		if err != nil {
			os.Remove(lv.spool)
			t := lv.task
			t.attempt = attempt
			t.resumeSpool = ""
			t.notBefore = notBefore
			queue = append(queue, t)
			stats.Redispatches++
			return
		}
		completed = append(completed, lv.spool)
		doneCells += kept
		stats.Seals++
		var missing []int
		for _, g := range expected {
			if !scan.done[g] {
				missing = append(missing, g)
			}
		}
		if len(missing) == 0 {
			return
		}
		if lv.task.Cells != nil {
			queue = append(queue, Task{Cells: missing, attempt: attempt, notBefore: notBefore})
			stats.GapTasks++
			return
		}
		// The worker pool claims positions within a bounded window, so the
		// completed set is a prefix of the span plus a few holes: everything
		// missing past the last completed position is the unclaimed tail —
		// re-specced as fresh sub-spans — and the holes below it are a small
		// explicit gap task.
		span := lv.task.Span
		tailFrom := span.From
		for g := range scan.done {
			if p := g / span.Shard.Count; p+1 > tailFrom {
				tailFrom = p + 1
			}
		}
		tail := Span{Shard: span.Shard, From: tailFrom}
		var gaps []int
		for _, g := range missing {
			if !tail.Owns(g) {
				gaps = append(gaps, g)
			}
		}
		if len(gaps) > 0 {
			sort.Ints(gaps)
			queue = append(queue, Task{Cells: gaps, attempt: attempt, notBefore: notBefore})
			stats.GapTasks++
		}
		if tailLen := tail.Len(total); tailLen > 0 {
			m := 1
			if lv.stalled {
				// Steal: deal the tail to the workers now idle (plus the
				// slot this exit just freed).
				m = len(idle) + 1
				if m > maxSplit {
					m = maxSplit
				}
				if m > tailLen {
					m = tailLen
				}
				if m > 1 {
					stats.Steals++
					stats.SubShards += m
				}
			}
			for _, sub := range tail.Split(m) {
				if sub.Len(total) > 0 {
					queue = append(queue, Task{Span: sub, attempt: attempt, notBefore: notBefore})
				}
			}
		}
	}

	handleExit := func(ev exitEvent) {
		lv := ev.lv
		delete(running, lv.slot)
		idle = append(idle, lv.slot)
		scan, serr := scanStreamFile(lv.spool)
		expected := lv.task.expected(total)
		if serr == nil && scan.header != nil && scan.trailer != nil && coversExactly(scan.done, expected) {
			if scan.header.TotalCells != total {
				abort(fmt.Errorf("fabric: worker stream claims %d total cells, sweep has %d (misconfigured fleet?)", scan.header.TotalCells, total))
				return
			}
			completed = append(completed, lv.spool)
			doneCells += len(expected)
			return
		}
		if ev.err == nil {
			ev.err = fmt.Errorf("stream incomplete or corrupt")
		}
		enqueueRecovery(lv, ev.err)
	}

	checkStalls := func(now time.Time) {
		for _, lv := range running {
			if lv.stalled {
				continue
			}
			var last time.Time
			if lv.w != nil {
				last = lv.w.lastActivity()
				if last.IsZero() {
					last = lv.lastChange
				}
			} else {
				if st, err := os.Stat(lv.spool); err == nil && st.Size() != lv.lastSize {
					lv.lastSize = st.Size()
					lv.lastChange = now
				}
				last = lv.lastChange
			}
			if now.Sub(last) > opts.Heartbeat {
				lv.stalled = true
				lv.cancel()
			}
		}
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if opts.Heartbeat > 0 || opts.Progress != nil {
		period := opts.Heartbeat / 4
		if period <= 0 || period > 500*time.Millisecond {
			period = 500 * time.Millisecond
		}
		if period < 5*time.Millisecond {
			period = 5 * time.Millisecond
		}
		ticker = time.NewTicker(period)
		tick = ticker.C
		defer ticker.Stop()
	}

	progress := func() {
		if opts.Progress == nil {
			return
		}
		inFlight := 0
		for _, lv := range running {
			if lv.w != nil {
				inFlight += lv.w.outcomeCount()
			}
		}
		opts.Progress(doneCells+inFlight, total)
	}

	ctxDone := ctx.Done()
	for len(queue) > 0 || len(running) > 0 {
		// Dispatch every eligible task; recovery tasks still inside their
		// backoff window stay queued (order otherwise preserved).
		for len(idle) > 0 && abortErr == nil {
			i := -1
			now := time.Now()
			for j, t := range queue {
				if !t.notBefore.After(now) {
					i = j
					break
				}
			}
			if i < 0 {
				break
			}
			task := queue[i]
			queue = append(queue[:i], queue[i+1:]...)
			if err := dispatch(task); err != nil {
				abort(err)
			}
		}
		// When only backed-off tasks remain and a worker could take one, arm
		// a wakeup for the earliest eligibility; without it the loop would
		// deadlock once the fleet drains (no exit events left to wake on).
		var wake <-chan time.Time
		if len(queue) > 0 && len(idle) > 0 && abortErr == nil {
			next := queue[0].notBefore
			for _, t := range queue[1:] {
				if t.notBefore.Before(next) {
					next = t.notBefore
				}
			}
			wake = time.After(time.Until(next))
		}
		if len(running) == 0 && wake == nil {
			break
		}
		select {
		case ev := <-events:
			handleExit(ev)
			progress()
		case now := <-tick:
			if opts.Heartbeat > 0 {
				checkStalls(now)
			}
			progress()
		case <-wake:
			// Re-run the dispatch scan; the earliest backoff has expired.
		case <-ctxDone:
			// Coordinator cancelled: abort cancels every dispatch context, and
			// the loop keeps draining exit events until the fleet is reaped.
			abort(ctx.Err())
			ctxDone = nil
		}
	}

	if abortErr != nil {
		return nil, stats, fmt.Errorf("%w (spools kept in %s)", abortErr, dir)
	}
	rep, err := MergeFilesWith(MergeOptions{KeepOutcomes: opts.KeepOutcomes}, completed...)
	if err != nil {
		return nil, stats, fmt.Errorf("fabric: merging %d worker streams: %w (spools kept in %s)", len(completed), err, dir)
	}
	rep.Parallelism = len(workers)
	if ownDir {
		os.RemoveAll(dir)
	}
	if opts.Progress != nil {
		opts.Progress(total, total)
	}
	return rep, stats, nil
}

// retryDelay computes the jittered exponential backoff before attempt n of a
// task lineage runs (n ≥ 1, counting the original dispatch as attempt 0):
// base·2^(n−1) jittered uniformly over [½·, 1½·), capped at 5s so a deep
// lineage under a generous MaxAttempts cannot park work for minutes.
func retryDelay(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	const maxDelay = 5 * time.Second
	d := base
	for i := 1; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}

// taskOwns reports whether the task's slice contains global cell index g.
func taskOwns(t Task, g int) bool {
	if t.Cells != nil {
		i := sort.SearchInts(t.Cells, g)
		return i < len(t.Cells) && t.Cells[i] == g
	}
	return t.Span.Owns(g)
}

// coversExactly reports whether done is exactly the expected index set.
func coversExactly(done map[int]bool, expected []int) bool {
	if len(done) != len(expected) {
		return false
	}
	for _, g := range expected {
		if !done[g] {
			return false
		}
	}
	return true
}

// spoolWriter copies a worker's stream to its spool file while tracking
// liveness (for the heartbeat) and completed outcomes (for progress): it
// counts newline-terminated lines that open with the outcome record prefix,
// robust to writes splitting lines at any byte.
type spoolWriter struct {
	f        *os.File
	last     atomic.Int64 // unix nanos of the latest write
	outcomes atomic.Int64
	// line-prefix matcher state: position within outcomePrefix, -1 once the
	// current line cannot be an outcome record.
	matchPos    int
	matched     bool
	atLineStart bool
}

const outcomePrefix = `{"type":"outcome"`

func newSpoolWriter(f *os.File) *spoolWriter {
	return &spoolWriter{f: f, atLineStart: true}
}

// Write implements io.Writer.
func (w *spoolWriter) Write(p []byte) (int, error) {
	w.last.Store(time.Now().UnixNano())
	for _, b := range p {
		if w.atLineStart {
			w.matchPos, w.matched, w.atLineStart = 0, false, false
		}
		if b == '\n' {
			if w.matched {
				w.outcomes.Add(1)
			}
			w.atLineStart = true
			continue
		}
		if !w.matched && w.matchPos >= 0 {
			if w.matchPos < len(outcomePrefix) && b == outcomePrefix[w.matchPos] {
				w.matchPos++
				if w.matchPos == len(outcomePrefix) {
					w.matched = true
				}
			} else {
				w.matchPos = -1
			}
		}
	}
	return w.f.Write(p)
}

func (w *spoolWriter) lastActivity() time.Time {
	ns := w.last.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func (w *spoolWriter) outcomeCount() int { return int(w.outcomes.Load()) }
