package matrix

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// fabricSweeps enumerates the named sweeps the fabric must reproduce
// byte-identically; the probabilistic sweep is the slowest and skipped in
// -short runs.
func fabricSweeps(t *testing.T) map[string]CellSource {
	t.Helper()
	sweeps := map[string]CellSource{}
	std, err := StandardSweep(Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	sweeps["standard"] = std
	adv, err := AdversarySweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sweeps["adversary"] = adv
	if !testing.Short() {
		prob, err := ProbabilisticSweep(Seeds(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		sweeps["probabilistic"] = prob
	}
	return sweeps
}

// procFleet builds n in-process workers over one sweep.
func procFleet(name string, src CellSource, n int) []Transport {
	fleet := make([]Transport, n)
	for i := range fleet {
		fleet[i] = ProcTransport{Name: name, Src: src, Opts: Options{Parallelism: 2}}
	}
	return fleet
}

// TestFabricFingerprintIdentity is the tentpole's core claim: the
// distributed sweep reproduces the monolithic fingerprint byte-for-byte on
// every named sweep, with more shards than workers and uneven spans.
func TestFabricFingerprintIdentity(t *testing.T) {
	for name, src := range fabricSweeps(t) {
		t.Run(name, func(t *testing.T) {
			mono, err := Run(src, Options{Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			rep, stats, err := runFabric(context.Background(), src.Len(), procFleet(name, src, 4), FabricOptions{
				Shards:   5,
				SpoolDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Fingerprint() != mono.Fingerprint() {
				t.Fatalf("fabric fingerprint %s != mono %s", rep.Fingerprint(), mono.Fingerprint())
			}
			if rep.Cells != mono.Cells || rep.Consensus != mono.Consensus || rep.Errors != mono.Errors {
				t.Fatalf("fabric report %d/%d/%d diverges from mono %d/%d/%d",
					rep.Cells, rep.Consensus, rep.Errors, mono.Cells, mono.Consensus, mono.Errors)
			}
			if stats.Tasks != 5 || stats.Redispatches+stats.Seals+stats.Steals != 0 {
				t.Fatalf("clean run dispatched %+v", stats)
			}
		})
	}
}

// faultMode selects which failure the wrapped transport injects on its
// first dispatch.
type faultMode int

const (
	faultDie     faultMode = iota // exit non-zero mid-stream
	faultCorrupt                  // write garbage mid-stream, exit zero
	faultStall                    // stop emitting, hang until killed
)

// faultTransport wraps an in-process worker and injects one fault on the
// fleet's first dispatch: the worker's true stream is buffered, a prefix of
// it is emitted, and then the transport dies, corrupts the stream, or hangs
// until the coordinator kills it. It deliberately does not implement
// SpoolResumer, so a fleet of these recovers by seal-and-resplit.
type faultTransport struct {
	proc  ProcTransport
	mode  faultMode
	after int          // outcome records to emit before the fault
	fired *atomic.Bool // shared: only the first dispatch faults
}

// Run implements Transport.
func (f *faultTransport) Run(ctx context.Context, task Task, sink io.Writer) error {
	if !f.fired.CompareAndSwap(false, true) {
		return f.proc.Run(ctx, task, sink)
	}
	var buf bytes.Buffer
	if err := f.proc.Run(ctx, task, &buf); err != nil {
		return err
	}
	// Emit the header plus the first `after` outcome lines.
	lines := bytes.SplitAfter(buf.Bytes(), []byte("\n"))
	keep := f.after + 1
	if keep > len(lines) {
		keep = len(lines)
	}
	for _, line := range lines[:keep] {
		if _, err := sink.Write(line); err != nil {
			return err
		}
	}
	switch f.mode {
	case faultDie:
		return errors.New("injected worker death")
	case faultCorrupt:
		_, err := sink.Write([]byte("ca5cade of garbage bytes, not JSON\n{\"type\":\"outcome\",\"outc"))
		return err
	default: // faultStall
		<-ctx.Done()
		return ctx.Err()
	}
}

// resumingFault is faultTransport on a shared-filesystem fleet: it forwards
// ResumeSpool to the in-process worker, so the coordinator recovers its
// death by completing the torn spool in place.
type resumingFault struct {
	faultTransport
}

// ResumeSpool implements SpoolResumer.
func (f *resumingFault) ResumeSpool(ctx context.Context, task Task, spool string) error {
	return f.proc.ResumeSpool(ctx, task, spool)
}

// faultFleet builds 4 workers whose first dispatch suffers the given fault.
// With resuming=true the fleet shares the coordinator's filesystem.
func faultFleet(name string, src CellSource, mode faultMode, after int, resuming bool) []Transport {
	fired := &atomic.Bool{}
	fleet := make([]Transport, 4)
	for i := range fleet {
		ft := faultTransport{
			proc:  ProcTransport{Name: name, Src: src, Opts: Options{Parallelism: 2}},
			mode:  mode,
			after: after,
			fired: fired,
		}
		if resuming {
			fleet[i] = &resumingFault{faultTransport: ft}
		} else {
			fleet[i] = &ft
		}
	}
	return fleet
}

// checkFabricIdentity runs the fleet and asserts byte-identical convergence
// with the monolithic run, returning the stats for recovery-path assertions.
func checkFabricIdentity(t *testing.T, src CellSource, fleet []Transport, opts FabricOptions) FabricStats {
	t.Helper()
	mono, err := Run(src, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts.SpoolDir = t.TempDir()
	rep, stats, err := runFabric(context.Background(), src.Len(), fleet, opts)
	if err != nil {
		t.Fatalf("fabric: %v (stats %+v)", err, stats)
	}
	if rep.Fingerprint() != mono.Fingerprint() {
		t.Fatalf("fabric fingerprint %s != mono %s (stats %+v)", rep.Fingerprint(), mono.Fingerprint(), stats)
	}
	if rep.Cells != mono.Cells || rep.Consensus != mono.Consensus {
		t.Fatalf("fabric %d cells / %d consensus, mono %d / %d", rep.Cells, rep.Consensus, mono.Cells, mono.Consensus)
	}
	return stats
}

// TestFabricWorkerDeathResume kills a worker mid-shard on a shared-
// filesystem fleet: the torn spool must be completed in place by another
// worker and the merged fingerprint must not move.
func TestFabricWorkerDeathResume(t *testing.T) {
	for name, src := range fabricSweeps(t) {
		t.Run(name, func(t *testing.T) {
			fleet := faultFleet(name, src, faultDie, 3, true)
			stats := checkFabricIdentity(t, src, fleet, FabricOptions{})
			if stats.Resumes < 1 {
				t.Fatalf("death recovered without a resume: %+v", stats)
			}
		})
	}
}

// TestFabricWorkerDeathSealSplit kills a worker mid-shard on a fleet that
// cannot resume spools (the SSH shape): the partial stream must be sealed
// and its missing cells re-dispatched, converging to the same fingerprint.
func TestFabricWorkerDeathSealSplit(t *testing.T) {
	src := fabricSweeps(t)["standard"]
	fleet := faultFleet("standard", src, faultDie, 3, false)
	stats := checkFabricIdentity(t, src, fleet, FabricOptions{})
	if stats.Seals < 1 {
		t.Fatalf("non-resumable death recovered without sealing: %+v", stats)
	}
	if stats.Resumes != 0 {
		t.Fatalf("fleet without SpoolResumer resumed a spool: %+v", stats)
	}
}

// TestFabricCorruptStream has a worker exit zero after writing garbage mid-
// stream — the lying-worker case. The coordinator must detect the torn
// stream, recover only the missing cells, and still converge.
func TestFabricCorruptStream(t *testing.T) {
	for name, src := range fabricSweeps(t) {
		t.Run(name, func(t *testing.T) {
			fleet := faultFleet(name, src, faultCorrupt, 3, true)
			stats := checkFabricIdentity(t, src, fleet, FabricOptions{})
			if stats.Resumes+stats.Seals+stats.Redispatches < 1 {
				t.Fatalf("corrupt stream accepted without recovery: %+v", stats)
			}
		})
	}
}

// TestFabricStallSteal stalls a worker holding half the sweep: the
// heartbeat must kill it and re-spec the unclaimed tail as sub-shards dealt
// to the idle workers (the work-stealing path), converging byte-identically.
func TestFabricStallSteal(t *testing.T) {
	for name, src := range fabricSweeps(t) {
		t.Run(name, func(t *testing.T) {
			fleet := faultFleet(name, src, faultStall, 3, false)
			stats := checkFabricIdentity(t, src, fleet, FabricOptions{
				Shards:    2,
				Heartbeat: 150 * time.Millisecond,
			})
			if stats.Steals < 1 || stats.SubShards < 2 {
				t.Fatalf("stall did not trigger a tail steal: %+v", stats)
			}
			if stats.Seals < 1 {
				t.Fatalf("stalled worker's prefix was discarded, not sealed: %+v", stats)
			}
		})
	}
}

// TestFabricEmptyAndTinySweeps pins the edges: more workers than cells, a
// single-cell sweep, and a worker count of one.
func TestFabricEmptyAndTinySweeps(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	tiny := &subsetCapSource{base: src, n: 3}
	mono, err := Run(tiny, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		rep, _, err := runFabric(context.Background(), tiny.Len(), procFleet("tiny", tiny, workers), FabricOptions{SpoolDir: t.TempDir()})
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if rep.Fingerprint() != mono.Fingerprint() {
			t.Fatalf("%d workers: fingerprint diverged", workers)
		}
	}
	if _, _, err := runFabric(context.Background(), 0, procFleet("tiny", tiny, 2), FabricOptions{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, _, err := runFabric(context.Background(), 3, nil, FabricOptions{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

// subsetCapSource exposes the first n cells of a sweep as a whole sweep.
type subsetCapSource struct {
	base CellSource
	n    int
}

func (s *subsetCapSource) Len() int        { return s.n }
func (s *subsetCapSource) Index(i int) int { return i }
func (s *subsetCapSource) Cell(i int) Cell { return s.base.Cell(i) }

// TestSealStreamFile pins the seal primitive: a torn spool (header, some
// outcomes, torn final line) becomes a valid partial stream whose header
// ShardCells matches the surviving outcomes, and merging it with a stream
// of the missing cells reproduces the monolithic fingerprint.
func TestSealStreamFile(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Run(src, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spool := filepath.Join(dir, "torn.jsonl")
	span := Span{Shard: Shard{Index: 1, Count: 2}}
	hdr := StreamHeader{Name: "seal", TotalCells: src.Len(), Shard: span.String()}
	if _, err := RunStreamFile(spool, span.Source(src), Options{Parallelism: 1}, hdr); err != nil {
		t.Fatal(err)
	}
	truncateStream(t, spool, 4) // drop trailer + 3 outcomes
	raw, err := os.ReadFile(spool)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final line too: seals must drop partial writes.
	if err := os.WriteFile(spool, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	kept, err := sealStreamFile(spool)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := scanStreamFile(spool)
	if err != nil {
		t.Fatal(err)
	}
	if scan.trailer == nil || scan.header.ShardCells != kept || scan.trailer.CellsRun != kept || len(scan.done) != kept {
		t.Fatalf("sealed stream inconsistent: kept %d, header %d, trailer %v, done %d",
			kept, scan.header.ShardCells, scan.trailer, len(scan.done))
	}
	// Complete the sweep with the cells the sealed stream no longer claims.
	var missing []int
	for g := 0; g < src.Len(); g++ {
		if !scan.done[g] {
			missing = append(missing, g)
		}
	}
	rest := filepath.Join(dir, "rest.jsonl")
	part, err := cellSubset(src, missing)
	if err != nil {
		t.Fatal(err)
	}
	restHdr := StreamHeader{Name: "seal", TotalCells: src.Len(), Shard: "cells:" + FormatCellList(missing)}
	if _, err := RunStreamFile(rest, part, Options{Parallelism: 1}, restHdr); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeFilesWith(MergeOptions{}, spool, rest)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Fingerprint() != mono.Fingerprint() {
		t.Fatalf("sealed+gap merge fingerprint %s != mono %s", merged.Fingerprint(), mono.Fingerprint())
	}
}

// blockingTransport parks its worker until the dispatch context is
// cancelled, counting live workers — the stand-in for a hung fleet.
type blockingTransport struct {
	started chan struct{}
	active  *atomic.Int32
}

func (t blockingTransport) Run(ctx context.Context, task Task, sink io.Writer) error {
	t.active.Add(1)
	defer t.active.Add(-1)
	select {
	case t.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return ctx.Err()
}

// TestFabricCancelReapsWorkers pins the coordinator's shutdown contract:
// cancelling the RunFabric context kills every in-flight worker dispatch,
// RunFabric returns the context's error, and it does not return before the
// workers have exited.
func TestFabricCancelReapsWorkers(t *testing.T) {
	var active atomic.Int32
	started := make(chan struct{}, 4)
	fleet := make([]Transport, 2)
	for i := range fleet {
		fleet[i] = blockingTransport{started: started, active: &active}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// MaxAttempts is high so the only way out is the cancellation abort,
		// not an attempts-exhausted failure racing it.
		_, _, err := runFabric(ctx, 8, fleet, FabricOptions{
			SpoolDir: t.TempDir(), MaxAttempts: 100,
		})
		done <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no worker ever started")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runFabric did not return after cancellation")
	}
	if n := active.Load(); n != 0 {
		t.Fatalf("%d workers still live after RunFabric returned", n)
	}
}
