package matrix

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// Concat merges cell lists into one matrix, reindexing in order.
func Concat(lists ...[]Cell) []Cell {
	var out []Cell
	for _, l := range lists {
		for _, c := range l {
			c.Index = len(out)
			out = append(out, c)
		}
	}
	return out
}

// ParseSeedRange parses a seed-sweep flag: "FROM:TO", or a bare count "N"
// meaning 1:N. The shared parser keeps every CLI's sweep syntax identical.
func ParseSeedRange(s string) ([]int64, error) {
	if from, to, ok := strings.Cut(s, ":"); ok {
		a, err1 := strconv.ParseInt(from, 10, 64)
		b, err2 := strconv.ParseInt(to, 10, 64)
		if err1 != nil || err2 != nil || b < a {
			return nil, fmt.Errorf("bad seed range %q (want FROM:TO)", s)
		}
		return Seeds(a, b), nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("bad seed count %q (want N or FROM:TO)", s)
	}
	return Seeds(1, n), nil
}

// Seeds returns [from, from+1, …, to] for seed-sweep axes.
func Seeds(from, to int64) []int64 {
	if to < from {
		return nil
	}
	out := make([]int64, 0, to-from+1)
	for s := from; s <= to; s++ {
		out = append(out, s)
	}
	return out
}

func mustParseDef(s string) graph.Def {
	d, err := graph.ParseDef(s)
	if err != nil {
		panic(fmt.Sprintf("matrix: bad built-in graph def %q: %v", s, err))
	}
	return d
}

// StandardSweep is the default scenario matrix of cmd/experiments -matrix:
// each protocol family crossed with its valid graph families, the sync and
// partially-synchronous network models, clean and single-silent-fault
// placements, and the given seed range. With the default ten seeds it
// expands to 240 cells. Every axis combination included here solves
// consensus per the paper's theorems, so the sweep doubles as a wide
// regression net: any cell without consensus is a finding.
func StandardSweep(seeds []int64) ([]Cell, error) {
	if len(seeds) == 0 {
		seeds = Seeds(1, 10)
	}
	none := scenario.AutoByz{}
	tailSilent := scenario.AutoByz{Kind: scenario.ByzSilent, Count: 1, Place: scenario.PlaceTail}
	nets := []scenario.NetParams{
		{Kind: scenario.NetSync},
		{Kind: scenario.NetPartial, GST: 2 * sim.Second},
	}
	groups := []Axes{
		{
			Name:   "bft-cup",
			Graphs: []graph.Def{mustParseDef("fig1b"), mustParseDef("kosr:sink=5,nonsink=3,k=2,extra=0.15")},
			Modes:  []core.Mode{core.ModeKnownF},
			Nets:   nets,
			Byz:    []scenario.AutoByz{none, tailSilent},
			Seeds:  seeds,
		},
		{
			Name:   "bft-cupft",
			Graphs: []graph.Def{mustParseDef("fig4a"), mustParseDef("fig4b"), mustParseDef("extended:core=5,noncore=3,extra=0.15")},
			Modes:  []core.Mode{core.ModeUnknownF},
			Nets:   nets,
			Byz:    []scenario.AutoByz{none, tailSilent},
			Seeds:  seeds,
		},
		{
			Name:   "permissioned",
			Graphs: []graph.Def{mustParseDef("complete:7")},
			Modes:  []core.Mode{core.ModePermissioned},
			Nets:   nets,
			Byz:    []scenario.AutoByz{none, tailSilent},
			Seeds:  seeds,
		},
	}
	var lists [][]Cell
	for _, g := range groups {
		cells, err := g.Expand()
		if err != nil {
			return nil, err
		}
		lists = append(lists, cells)
	}
	return Concat(lists...), nil
}
