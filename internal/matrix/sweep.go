package matrix

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// ParseSeedRange parses a seed-sweep flag: "FROM:TO", or a bare count "N"
// meaning 1:N. The shared parser keeps every CLI's sweep syntax identical.
func ParseSeedRange(s string) ([]int64, error) {
	if from, to, ok := strings.Cut(s, ":"); ok {
		a, err1 := strconv.ParseInt(from, 10, 64)
		b, err2 := strconv.ParseInt(to, 10, 64)
		if err1 != nil || err2 != nil || b < a {
			return nil, fmt.Errorf("bad seed range %q (want FROM:TO)", s)
		}
		return Seeds(a, b), nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("bad seed count %q (want N or FROM:TO)", s)
	}
	return Seeds(1, n), nil
}

// Seeds returns [from, from+1, …, to] for seed-sweep axes.
func Seeds(from, to int64) []int64 {
	if to < from {
		return nil
	}
	out := make([]int64, 0, to-from+1)
	for s := from; s <= to; s++ {
		out = append(out, s)
	}
	return out
}

// parseDefs parses graph-def strings, failing loudly on the first malformed
// one instead of panicking deep inside a sweep definition.
func parseDefs(specs ...string) ([]graph.Def, error) {
	defs := make([]graph.Def, 0, len(specs))
	for _, s := range specs {
		d, err := graph.ParseDef(s)
		if err != nil {
			return nil, fmt.Errorf("sweep graph def: %w", err)
		}
		defs = append(defs, d)
	}
	return defs, nil
}

// StandardSweep is the default scenario matrix of cmd/experiments -matrix:
// each protocol family crossed with its valid graph families, the sync and
// partially-synchronous network models, clean and single-silent-fault
// placements, and the given seed range. With the default ten seeds it
// expands to 240 cells. Every axis combination included here solves
// consensus per the paper's theorems, so the sweep doubles as a wide
// regression net: any cell without consensus is a finding.
//
// The returned source is lazy: cells are materialized on demand by the
// worker pool, so the sweep scales to arbitrary seed ranges without an
// up-front expansion. A malformed graph def is an error, not a panic.
func StandardSweep(seeds []int64) (CellSource, error) {
	if len(seeds) == 0 {
		seeds = Seeds(1, 10)
	}
	cupGraphs, err := parseDefs("fig1b", "kosr:sink=5,nonsink=3,k=2,extra=0.15")
	if err != nil {
		return nil, err
	}
	cupftGraphs, err := parseDefs("fig4a", "fig4b", "extended:core=5,noncore=3,extra=0.15")
	if err != nil {
		return nil, err
	}
	permGraphs, err := parseDefs("complete:7")
	if err != nil {
		return nil, err
	}
	none := scenario.AutoByz{}
	tailSilent := scenario.AutoByz{Kind: scenario.ByzSilent, Count: 1, Place: scenario.PlaceTail}
	nets := []scenario.NetParams{
		{Kind: scenario.NetSync},
		{Kind: scenario.NetPartial, GST: 2 * sim.Second},
	}
	groups := []Axes{
		{
			Name:   "bft-cup",
			Graphs: cupGraphs,
			Modes:  []core.Mode{core.ModeKnownF},
			Nets:   nets,
			Byz:    []scenario.AutoByz{none, tailSilent},
			Seeds:  seeds,
		},
		{
			Name:   "bft-cupft",
			Graphs: cupftGraphs,
			Modes:  []core.Mode{core.ModeUnknownF},
			Nets:   nets,
			Byz:    []scenario.AutoByz{none, tailSilent},
			Seeds:  seeds,
		},
		{
			Name:   "permissioned",
			Graphs: permGraphs,
			Modes:  []core.Mode{core.ModePermissioned},
			Nets:   nets,
			Byz:    []scenario.AutoByz{none, tailSilent},
			Seeds:  seeds,
		},
	}
	srcs := make([]CellSource, 0, len(groups))
	for _, g := range groups {
		src, err := g.Source()
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, src)
	}
	return ConcatSources(srcs...), nil
}

// AdversarySweep is the adversary-zoo counterpart of StandardSweep
// (cmd/experiments -matrix -adversary): the BFT-CUP graph families crossed
// with every zoo behavior and, for the silent baseline, with both the tail
// heuristic and the worst-case placement search — so one report contrasts
// kind(tail) rows against the same count at byz=worst. Unlike StandardSweep,
// cells here are allowed to lose consensus: that a worst-placed or colluding
// adversary defeats a graph the tail heuristic survives is the sweep's
// finding, not a regression (the CLI exits non-zero on errors only).
//
// StandardSweep is deliberately untouched by the zoo: its fingerprint is the
// cross-version regression anchor.
func AdversarySweep(seeds []int64) (CellSource, error) {
	if len(seeds) == 0 {
		seeds = Seeds(1, 10)
	}
	cupGraphs, err := parseDefs("fig1b", "kosr:sink=5,nonsink=3,k=2,extra=0.15")
	if err != nil {
		return nil, err
	}
	nets := []scenario.NetParams{
		{Kind: scenario.NetSync},
		{Kind: scenario.NetPartial, GST: 2 * sim.Second},
	}
	zoo := []scenario.AutoByz{
		{Kind: scenario.ByzDelay, Count: 1, Place: scenario.PlaceTail},
		{Kind: scenario.ByzSelectiveSilent, Count: 1, Place: scenario.PlaceTail},
		{Kind: scenario.ByzEquivPD, Count: 1, Place: scenario.PlaceTail},
		{Kind: scenario.ByzCollude, Count: 2, Place: scenario.PlaceTail},
		{Kind: scenario.ByzSilent, Count: 2, Place: scenario.PlaceTail},
		{Kind: scenario.ByzSilent, Count: 2, Place: scenario.PlaceWorst},
	}
	axes := Axes{
		Name:   "adversary",
		Graphs: cupGraphs,
		Modes:  []core.Mode{core.ModeKnownF},
		Nets:   nets,
		Byz:    zoo,
		Seeds:  seeds,
	}
	return axes.Source()
}

// ChaosSweep crosses the BFT-CUP graph families with a ladder of chaos
// fault-injection points (cmd/experiments -matrix -chaos): loss rates in
// ascending order (each with proportional duplication and a 2ms reorder
// bound), with and without a timed half/half partition window, and with and
// without crash/restart churn of one sink member — all over both fault
// thresholds and the seed range. The zero point of the ladder is a genuinely
// clean cell (no injection, no hardening), so the sweep's per-axis property
// counts read as degradation curves from an uninjected baseline: as the loss
// axis climbs, the four graded consensus properties may only degrade, and
// where they degrade to is the measurement. Cells that lose consensus under
// injection are findings, not regressions.
//
// Every injected cell runs the hardened protocol profile (retransmission
// backoff, delta resync, PBFT decide-note replies); the seed send-once
// profile's collapse under the same injection is pinned separately by the
// scenario-level A/B regression tests.
//
// StandardSweep stays the untouched cross-version fingerprint anchor; this
// sweep has its own fingerprint identity tests (mono ≡ sharded ≡ resumed ≡
// parallel).
func ChaosSweep(seeds []int64) (CellSource, error) {
	if len(seeds) == 0 {
		seeds = Seeds(1, 3)
	}
	cupGraphs, err := parseDefs("fig1b", "kosr:sink=5,nonsink=3,k=2,extra=0.15")
	if err != nil {
		return nil, err
	}
	// Clean sync cells decide within a few tens of virtual milliseconds, so
	// both disruptions start at 10ms — inside the discovery phase — or they
	// would land after the protocol already finished.
	partition := []scenario.PartitionWindow{
		{From: 10 * sim.Millisecond, Until: 400 * sim.Millisecond},
	}
	churn := []scenario.ChurnEvent{
		{ID: 2, CrashAt: 10 * sim.Millisecond, RestartAt: 500 * sim.Millisecond},
	}
	var faults []scenario.FaultParams
	for _, loss := range []float64{0, 0.05, 0.15, 0.3} {
		for _, part := range [][]scenario.PartitionWindow{nil, partition} {
			for _, ch := range [][]scenario.ChurnEvent{nil, churn} {
				fp := scenario.FaultParams{Loss: loss, Partitions: part, Churn: ch}
				if loss > 0 {
					fp.Dup = loss / 2
					fp.Reorder = 2 * sim.Millisecond
				}
				faults = append(faults, fp)
			}
		}
	}
	axes := Axes{
		Name:   "chaos",
		Graphs: cupGraphs,
		Modes:  []core.Mode{core.ModeKnownF},
		Nets:   []scenario.NetParams{{Kind: scenario.NetSync}},
		F:      []int{1, 2},
		Faults: faults,
		Seeds:  seeds,
		// Injected cells that lose termination idle to the horizon; 10
		// virtual seconds bounds their cost (clean sync cells decide well
		// under one).
		Horizon: 10 * sim.Second,
	}
	return axes.Source()
}

// ProbabilisticSweep crosses the three random-graph families — Erdős–Rényi,
// random geometric and scale-free preferential attachment — over sizes,
// densities and fault thresholds (cmd/experiments -matrix -probabilistic).
// Unlike the planted families (kosr:, extended:), these graphs carry no
// construction-time guarantee of the paper's connectivity conditions: whether
// a sink, a core, and consensus emerge at a given (family, n, density, f)
// point is the measurement, and the per-axis Agreement/Validity/Integrity/
// Termination counts in the report are the emergence rates. Cells that lose
// consensus are findings, not regressions.
//
// One density knob d spans the families on comparable footing: er uses edge
// probability p = d, geo uses connection radius r = d (unit square; expected
// neighborhood area πd²), and sf attaches m = max(1, round(8d)) edges per
// node. The mapping is a labeling convention for the sweep axes, not a claim
// of equal expected degree.
//
// StandardSweep stays the untouched cross-version fingerprint anchor; this
// sweep has its own fingerprint identity tests (mono ≡ sharded ≡ resumed ≡
// parallel).
func ProbabilisticSweep(seeds []int64) (CellSource, error) {
	if len(seeds) == 0 {
		seeds = Seeds(1, 5)
	}
	var specs []string
	for _, family := range []string{"er", "geo", "sf"} {
		for _, n := range []int{12, 16, 20} {
			for _, d := range []float64{0.15, 0.3, 0.5} {
				switch family {
				case "er":
					specs = append(specs, fmt.Sprintf("er:n=%d,p=%g", n, d))
				case "geo":
					specs = append(specs, fmt.Sprintf("geo:n=%d,r=%g", n, d))
				case "sf":
					specs = append(specs, fmt.Sprintf("sf:n=%d,m=%d", n, max(1, int(d*8+0.5))))
				}
			}
		}
	}
	defs, err := parseDefs(specs...)
	if err != nil {
		return nil, err
	}
	axes := Axes{
		Name:   "probabilistic",
		Graphs: defs,
		Modes:  []core.Mode{core.ModeKnownF},
		Nets:   []scenario.NetParams{{Kind: scenario.NetSync}},
		F:      []int{1, 2},
		Seeds:  seeds,
		// Random graphs that never admit a sink would otherwise idle out the
		// default 60 virtual seconds per cell; half that bounds sweep cost
		// without touching cells that do terminate (they finish well under).
		Horizon: 30 * sim.Second,
	}
	return axes.Source()
}
