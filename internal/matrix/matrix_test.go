package matrix

import (
	"encoding/json"
	"runtime"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

func def(t testing.TB, s string) graph.Def {
	t.Helper()
	d, err := graph.ParseDef(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExpand(t *testing.T) {
	a := Axes{
		Name:   "expand",
		Graphs: []graph.Def{def(t, "fig1b"), def(t, "kosr:sink=5,nonsink=2,k=2")},
		Modes:  []core.Mode{core.ModeKnownF},
		Nets:   []scenario.NetParams{{Kind: scenario.NetSync}, {Kind: scenario.NetPartial}},
		Byz:    []scenario.AutoByz{{}, {Kind: scenario.ByzSilent, Count: 1, Place: scenario.PlaceTail}},
		Seeds:  Seeds(1, 3),
	}
	cells, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 1 * 2 * 2 * 3; len(cells) != want || a.Size() != want {
		t.Fatalf("expanded %d cells, Size()=%d, want %d", len(cells), a.Size(), want)
	}
	seen := make(map[string]bool)
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		id := c.ID()
		if seen[id] {
			t.Fatalf("duplicate cell id %q", id)
		}
		seen[id] = true
	}
}

func TestExpandRejectsBadCells(t *testing.T) {
	a := Axes{
		Name:   "bad",
		Graphs: []graph.Def{{Kind: graph.DefKOSR, Sink: 2, NonSink: 1, K: 3}}, // sink too small for k
	}
	if _, err := a.Expand(); err == nil {
		t.Fatal("expected expansion error for impossible generator spec")
	}
	if _, err := (Axes{Name: "empty"}).Expand(); err == nil {
		t.Fatal("expected error for missing graph axis")
	}
}

func TestSerialParallelIdentical(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(src, Options{Parallelism: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(src, Options{Parallelism: runtime.GOMAXPROCS(0), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Fingerprint(), parallel.Fingerprint(); s != p {
		t.Fatalf("serial and parallel runs diverge:\n  serial   %s\n  parallel %s", s, p)
	}
	// The fingerprint covers per-cell trace digests, so identical
	// fingerprints mean byte-identical event traces cell by cell. Cross-check
	// a sample anyway, plus the aggregate counters.
	if serial.Consensus != parallel.Consensus || serial.TotalMessages != parallel.TotalMessages ||
		serial.TotalBytes != parallel.TotalBytes || serial.Errors != parallel.Errors {
		t.Fatalf("aggregates diverge: %+v vs %+v", serial, parallel)
	}
	for i := range serial.Outcomes {
		so, po := serial.Outcomes[i], parallel.Outcomes[i]
		if so.TraceDigest == "" || so.TraceDigest != po.TraceDigest {
			t.Fatalf("cell %d trace digests diverge: %q vs %q", i, so.TraceDigest, po.TraceDigest)
		}
	}
}

func TestStandardSweepAllConsensus(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d cells errored", rep.Errors)
	}
	for i := range rep.Outcomes {
		o := &rep.Outcomes[i]
		if !o.Consensus {
			t.Errorf("cell %s: %s", o.ID, o.FailureMode)
		}
	}
}

func TestPaperSuiteThroughMatrix(t *testing.T) {
	cells := FromExperiments(scenario.AllExperiments())
	rep, err := Run(cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d cells errored", rep.Errors)
	}
	if rep.Expected != len(cells) {
		t.Fatalf("expectations lost: %d of %d", rep.Expected, len(cells))
	}
	if rep.Mismatches != 0 {
		for i := range rep.Outcomes {
			o := &rep.Outcomes[i]
			if o.Match != nil && !*o.Match {
				t.Errorf("cell %s: measured %t, paper predicts %t", o.ID, o.Consensus, *o.Expect)
			}
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	cells := Materialize(src)
	rep, err := Run(CellList(cells[:4]), Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cells != rep.Cells || len(back.Outcomes) != len(rep.Outcomes) {
		t.Fatalf("JSON round trip lost cells: %d/%d vs %d/%d",
			back.Cells, len(back.Outcomes), rep.Cells, len(rep.Outcomes))
	}
	if back.Fingerprint() != rep.Fingerprint() {
		t.Fatal("JSON round trip changed the deterministic fingerprint")
	}
}

func TestProgressCallback(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	cells := Materialize(src)[:6]
	var calls int
	var last int
	_, err = Run(CellList(cells), Options{Parallelism: 3, Progress: func(done, total int) {
		calls++
		if total != len(cells) {
			t.Errorf("total %d, want %d", total, len(cells))
		}
		if done > last {
			last = done
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(cells) || last != len(cells) {
		t.Fatalf("progress: %d calls, last %d, want %d", calls, last, len(cells))
	}
}

func TestHorizonPropagates(t *testing.T) {
	a := Axes{
		Name:    "horizon",
		Graphs:  []graph.Def{def(t, "complete:4")},
		Modes:   []core.Mode{core.ModePermissioned},
		Nets:    []scenario.NetParams{{Kind: scenario.NetSync}},
		F:       []int{1},
		Horizon: 30 * sim.Second,
	}
	cells, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Params.Horizon != 30*sim.Second {
		t.Fatalf("horizon lost: %+v", cells[0].Params)
	}
}
