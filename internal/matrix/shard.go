package matrix

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard identifies one deterministic slice of a sweep: shard Index of Count,
// 1-based ("2/3" is the second of three shards). Cells are dealt round-robin
// by global cell index, so shards are balanced regardless of which axes
// expand, and the same (sweep, shard spec) always yields the same cells —
// shards can run on different machines at different times and still merge
// into the monolithic report.
type Shard struct {
	// Index is the 1-based shard number.
	Index int
	// Count is the total number of shards.
	Count int
}

// ParseShard parses "i/n" (1 ≤ i ≤ n). The empty string means the whole
// sweep (shard 1/1).
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{Index: 1, Count: 1}, nil
	}
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("bad shard %q (want i/n)", s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if err1 != nil || err2 != nil || n < 1 || i < 1 || i > n {
		return Shard{}, fmt.Errorf("bad shard %q (want i/n with 1 ≤ i ≤ n)", s)
	}
	return Shard{Index: i, Count: n}, nil
}

// String renders the canonical "i/n" form.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// IsAll reports whether the shard covers the whole sweep.
func (s Shard) IsAll() bool { return s.Count <= 1 }

// Of selects this shard's cells (those whose global Index ≡ Index-1 mod
// Count), preserving their global indices for the merge step.
func (s Shard) Of(cells []Cell) []Cell {
	if s.IsAll() {
		return cells
	}
	var out []Cell
	for _, c := range cells {
		if c.Index%s.Count == s.Index-1 {
			out = append(out, c)
		}
	}
	return out
}

// Source is the lazy counterpart of Of: a view of the base source holding
// the positions dealt to this shard round-robin (position p of the shard is
// base position Index-1 + p*Count), with global indices preserved. Nothing
// is materialized — sharding a 10^6-cell source is arithmetic.
//
// The base must be a whole sweep (Index(i) == i for all i): sharding deals
// by global index residue, which only coincides with position residue on
// identity-indexed sources. Sharding a shard or a subset is a programming
// error and panics.
func (s Shard) Source(base CellSource) CellSource {
	if s.IsAll() {
		return base
	}
	total := base.Len()
	if total > 0 && (base.Index(0) != 0 || base.Index(total-1) != total-1) {
		panic(fmt.Sprintf("matrix: Shard.Source needs a whole-sweep base (Index(i)==i); got Index(0)=%d, Index(%d)=%d",
			base.Index(0), total-1, base.Index(total-1)))
	}
	n := 0
	if first := s.Index - 1; first < total {
		n = (total - first + s.Count - 1) / s.Count
	}
	return &shardSource{base: base, shard: s, n: n}
}

// shardSource is the round-robin shard view over a base source.
type shardSource struct {
	base  CellSource
	shard Shard
	n     int
}

// Len implements CellSource.
func (s *shardSource) Len() int { return s.n }

// pos maps a shard-local position to the base position.
func (s *shardSource) pos(i int) int { return s.shard.Index - 1 + i*s.shard.Count }

// Index implements CellSource.
func (s *shardSource) Index(i int) int { return s.base.Index(s.pos(i)) }

// Cell implements CellSource.
func (s *shardSource) Cell(i int) Cell { return s.base.Cell(s.pos(i)) }
