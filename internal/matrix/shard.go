package matrix

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard identifies one deterministic slice of a sweep: shard Index of Count,
// 1-based ("2/3" is the second of three shards). Cells are dealt round-robin
// by global cell index, so shards are balanced regardless of which axes
// expand, and the same (sweep, shard spec) always yields the same cells —
// shards can run on different machines at different times and still merge
// into the monolithic report.
type Shard struct {
	// Index is the 1-based shard number.
	Index int
	// Count is the total number of shards.
	Count int
}

// ParseShard parses "i/n" (1 ≤ i ≤ n). The empty string means the whole
// sweep (shard 1/1).
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{Index: 1, Count: 1}, nil
	}
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("bad shard %q (want i/n)", s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if err1 != nil || err2 != nil || n < 1 || i < 1 || i > n {
		return Shard{}, fmt.Errorf("bad shard %q (want i/n with 1 ≤ i ≤ n)", s)
	}
	return Shard{Index: i, Count: n}, nil
}

// String renders the canonical "i/n" form.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// IsAll reports whether the shard covers the whole sweep.
func (s Shard) IsAll() bool { return s.Count <= 1 }

// Of selects this shard's cells (those whose global Index ≡ Index-1 mod
// Count), preserving their global indices for the merge step.
func (s Shard) Of(cells []Cell) []Cell {
	if s.IsAll() {
		return cells
	}
	var out []Cell
	for _, c := range cells {
		if c.Index%s.Count == s.Index-1 {
			out = append(out, c)
		}
	}
	return out
}
