package matrix

import (
	"fmt"
	"io"
	"os"
)

// StreamJob is the worker-side shard/stream CLI mode shared by
// cmd/experiments, cmd/cupsim and sweepd -worker: one place resolves the
// -shard/-only selection against the whole sweep, validates the flag
// combinations, runs or resumes the JSONL stream, and prints the summary —
// so the three CLIs' stream semantics cannot drift and the fabric can drive
// any of them as a worker.
type StreamJob struct {
	// Name labels the sweep in the stream header; every worker of one sweep
	// must derive the same name.
	Name string
	// Src is the whole sweep.
	Src CellSource
	// Shard is the -shard flag: a span spec "i/n[@t]", empty for the whole
	// sweep.
	Shard string
	// Only is the -only flag: explicit global cell indices, comma-separated
	// (the fabric's gap back-fill dispatches). Mutually exclusive with Shard.
	Only string
	// Path is the -jsonl flag: the stream destination, "-" for stdout.
	Path string
	// Resume is the -resume flag: complete an interrupted stream file,
	// running only the cells it is missing.
	Resume bool
	// Opts are the run options (parallelism, tracing, progress).
	Opts Options
	// Log receives the human summary lines; nil means os.Stderr.
	Log io.Writer
}

// Slice resolves the job's selection against the whole sweep: the lazy
// sub-source to run and the canonical spec labelling it ("i/n[@t]", or
// "cells:a,b,c" for explicit index lists). Also used by the CLIs' buffered
// report modes so -shard/-only behave identically with and without -jsonl.
func (j StreamJob) Slice() (CellSource, string, error) {
	if j.Only != "" {
		if j.Shard != "" {
			return nil, "", fmt.Errorf("-shard and -only select different slices; pick one")
		}
		cells, err := ParseCellList(j.Only)
		if err != nil {
			return nil, "", err
		}
		part, err := cellSubset(j.Src, cells)
		if err != nil {
			return nil, "", err
		}
		return part, "cells:" + FormatCellList(cells), nil
	}
	span, err := ParseSpan(j.Shard)
	if err != nil {
		return nil, "", err
	}
	return span.Source(j.Src), span.String(), nil
}

// Run executes the stream job: fresh or resumed, to a file or stdout. The
// returned trailer summarizes the slice; the caller owns the exit policy
// (experiments fails on errors, cupsim also on lost consensus).
func (j StreamJob) Run() (*StreamTrailer, error) {
	logw := j.Log
	if logw == nil {
		logw = io.Writer(os.Stderr)
	}
	if j.Path == "" {
		return nil, fmt.Errorf("stream job needs -jsonl PATH ('-' = stdout)")
	}
	if j.Resume && j.Path == "-" {
		return nil, fmt.Errorf("-resume needs -jsonl FILE (a stream on stdout cannot be resumed)")
	}
	part, spec, err := j.Slice()
	if err != nil {
		return nil, err
	}
	tr, skipped, err := RunOrResumeStreamFile(j.Path, j.Resume, part, j.Opts, StreamHeader{
		Name:       j.Name,
		TotalCells: j.Src.Len(),
		Shard:      spec,
	})
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(logw, "resumed %s: %d cells already complete, %d run now\n",
			j.Path, skipped, tr.CellsRun-skipped)
	}
	fmt.Fprintf(logw, "shard %s: %d cells streamed, %d consensus, %d errors, %.2fs\n",
		spec, tr.CellsRun, tr.Consensus, tr.Errors, float64(tr.WallNS)/1e9)
	return tr, nil
}
