package matrix

import (
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
)

// TestRunPoolClaimWindowBoundsDisorder pins runPool's sliding claim window.
// Position 0 is a deliberately slow cell (a 21-node permissioned committee,
// cold-compiled); behind it sit hundreds of near-instant single-node cells.
// Before the window, racing workers streamed those instant cells to the sink
// ~10³ positions ahead of the stalled cell, growing every position-ordered
// reorder buffer (the Aggregator's pending map, a merge's per-stream
// buffers) without bound. The window caps how far any claim may run ahead
// of the completion watermark, so the maximum observed disorder — the gap
// between a sunk position and the contiguous-completion watermark at that
// moment — must stay within parallelism × claimWindowPerWorker regardless
// of how skewed the cell costs are.
func TestRunPoolClaimWindowBoundsDisorder(t *testing.T) {
	slowHead := scenario.Params{
		Graph: graph.Def{Kind: graph.DefComplete, N: 21},
		Mode:  core.ModePermissioned,
		F:     -1,
		Net:   scenario.NetParams{Kind: scenario.NetSync},
		Seed:  1,
	}
	fastTail := scenario.Params{
		Graph: graph.Def{Kind: graph.DefComplete, N: 1},
		Mode:  core.ModePermissioned,
		F:     0,
		Net:   scenario.NetParams{Kind: scenario.NetSync},
	}
	cells := CellList{{Index: 0, Params: slowHead}}
	for i := 1; i < 600; i++ {
		p := fastTail
		p.Seed = int64(i)
		cells = append(cells, Cell{Index: i, Params: p})
	}

	const par = 4
	window := par * claimWindowPerWorker
	maxDisorder, low := 0, 0
	done := make(map[int]bool)
	if _, err := runPool(cells, Options{Parallelism: par}, func(pos int, o Outcome) error {
		if o.Err != "" {
			t.Errorf("cell %d errored: %s", pos, o.Err)
		}
		if d := pos - low; d > maxDisorder {
			maxDisorder = d
		}
		done[pos] = true
		for done[low] {
			delete(done, low)
			low++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if low != len(cells) {
		t.Fatalf("sink saw %d contiguous outcomes, want %d", low, len(cells))
	}
	t.Logf("max observed disorder: %d (window %d, parallelism %d)", maxDisorder, window, par)
	if maxDisorder > window {
		t.Fatalf("observed disorder %d exceeds the claim window %d — reorder buffering is no longer O(parallelism)", maxDisorder, window)
	}
}
