package matrix

import (
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// TestFingerprintIdentityWorstPlacement asserts monolithic ≡ incremental ≡
// sharded-then-merged ≡ resumed-after-truncation on a byz=worst sweep: the
// worst-case placement search runs inside Compile, so every execution mode
// and every worker must resolve the identical placement for the identical
// graph. Worst-placed cells legitimately fail to terminate; the short horizon
// bounds their event volume, not the assertion.
func TestFingerprintIdentityWorstPlacement(t *testing.T) {
	a := Axes{
		Name:   "worst-sweep",
		Graphs: []graph.Def{def(t, "fig1b"), def(t, "kosr:sink=5,nonsink=3,k=2,extra=0.15")},
		Modes:  []core.Mode{core.ModeKnownF},
		Nets:   []scenario.NetParams{{Kind: scenario.NetSync}},
		Byz: []scenario.AutoByz{
			{Kind: scenario.ByzSilent, Count: 2, Place: scenario.PlaceTail},
			{Kind: scenario.ByzSilent, Count: 2, Place: scenario.PlaceWorst},
		},
		Seeds:   Seeds(1, 2),
		Horizon: 5 * sim.Second,
	}
	src, err := a.Source()
	if err != nil {
		t.Fatal(err)
	}
	runAllModes(t, "worst-sweep", src)
}

// TestZooSweepSerialParallelIdentical crosses every adversary-zoo behavior
// with the worker pool: the serial and parallel reports must carry the same
// fingerprint. This is the matrix-level guard against per-run Byzantine state
// (the colluding group's shared pool) leaking across cells through Runner or
// compile-cache reuse.
func TestZooSweepSerialParallelIdentical(t *testing.T) {
	a := Axes{
		Name:   "zoo-sweep",
		Graphs: []graph.Def{def(t, "fig1b")},
		Modes:  []core.Mode{core.ModeKnownF},
		Nets: []scenario.NetParams{
			{Kind: scenario.NetSync},
			{Kind: scenario.NetPartial, GST: 500 * sim.Millisecond},
		},
		Byz: []scenario.AutoByz{
			{Kind: scenario.ByzDelay, Count: 1, Place: scenario.PlaceTail},
			{Kind: scenario.ByzSelectiveSilent, Count: 1, Place: scenario.PlaceTail},
			{Kind: scenario.ByzEquivPD, Count: 1, Place: scenario.PlaceTail},
			{Kind: scenario.ByzCollude, Count: 2, Place: scenario.PlaceTail},
			{Kind: scenario.ByzSilent, Count: 1, Place: scenario.PlaceWorst},
		},
		Seeds:   Seeds(1, 2),
		Horizon: 5 * sim.Second,
	}
	src, err := a.Source()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(src, Options{Parallelism: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(src, Options{Parallelism: 4, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Fingerprint(), parallel.Fingerprint(); s != p {
		t.Fatalf("serial and parallel zoo sweeps diverge:\n  serial   %s\n  parallel %s", s, p)
	}
	for i := range serial.Outcomes {
		if serial.Outcomes[i].Err != "" {
			t.Fatalf("cell %s errored: %s", serial.Outcomes[i].ID, serial.Outcomes[i].Err)
		}
	}
}
