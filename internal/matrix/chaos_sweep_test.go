package matrix

import (
	"testing"
)

// TestFingerprintIdentityChaosSweep asserts monolithic ≡ incremental ≡
// sharded-then-merged ≡ resumed-after-truncation on the chaos sweep: every
// cell injects loss, duplication, reorder, partitions and churn from the
// engine's seeded RNG, so the identity holds only if injection is fully
// deterministic per cell regardless of worker scheduling, which shard a
// cell lands in, or whether its compile cache entry was shared.
func TestFingerprintIdentityChaosSweep(t *testing.T) {
	src, err := ChaosSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	runAllModes(t, "chaos, seeds 1:1", src)
}

// TestChaosSweepSerialParallelIdentical crosses fault injection with the
// worker pool: serial and parallel runs must carry the same fingerprint,
// guarding against injected-fault RNG state leaking between concurrently
// executing cells.
func TestChaosSweepSerialParallelIdentical(t *testing.T) {
	src, err := ChaosSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(src, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(src, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Fingerprint(), parallel.Fingerprint(); s != p {
		t.Fatalf("serial and parallel chaos sweeps diverge:\n  serial   %s\n  parallel %s", s, p)
	}
	for _, o := range serial.Outcomes {
		if o.Err != "" {
			t.Fatalf("cell %s errored: %s", o.ID, o.Err)
		}
	}
}

// TestChaosSweepDegradationMonotone reads the pure loss ladder out of the
// chaos sweep — f=1 cells with no partition and no churn, so the loss rate
// is the only thing varying — and asserts the graded-property degradation
// curve: at every loss step each of the four consensus properties holds in
// at most as many cells as at the step below, the uninjected baseline is
// perfect, and the curve's endpoints are pinned exactly (the sweep is
// deterministic, so these are exact values, not statistics). The f=2 arm of
// the sweep is the negative control — both graph families satisfy the
// paper's knowledge requirements only for f=1, so f=2 cells fail clean and
// injected alike and are excluded from the curve.
func TestChaosSweepDegradationMonotone(t *testing.T) {
	src, err := ChaosSweep(Seeds(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	losses := []float64{0, 0.05, 0.15, 0.3}
	idx := make(map[float64]int, len(losses))
	for i, l := range losses {
		idx[l] = i
	}
	type counts struct{ total, agr, val, integ, term int }
	curve := make([]counts, len(losses))
	for i, o := range rep.Outcomes {
		if o.Err != "" {
			t.Fatalf("cell %s errored: %s", o.ID, o.Err)
		}
		p := src.Cell(i).Params
		if p.F != 1 || len(p.Faults.Partitions) > 0 || len(p.Faults.Churn) > 0 {
			continue
		}
		j, ok := idx[p.Faults.Loss]
		if !ok {
			t.Fatalf("cell %s has unexpected loss rate %v", o.ID, p.Faults.Loss)
		}
		c := &curve[j]
		c.total++
		if o.Agreement {
			c.agr++
		}
		if o.Validity {
			c.val++
		}
		if o.Integrity {
			c.integ++
		}
		if o.Termination {
			c.term++
		}
	}
	for j, c := range curve {
		t.Logf("loss=%.2f: agreement %d/%d validity %d/%d integrity %d/%d termination %d/%d",
			losses[j], c.agr, c.total, c.val, c.total, c.integ, c.total, c.term, c.total)
		if c.total != 4 {
			t.Fatalf("loss=%.2f ladder has %d cells, want 4 (2 graphs × 2 seeds)", losses[j], c.total)
		}
		if j == 0 {
			continue
		}
		prev := curve[j-1]
		if c.agr > prev.agr || c.val > prev.val || c.integ > prev.integ || c.term > prev.term {
			t.Fatalf("degradation curve not monotone at loss=%.2f: %+v after %+v", losses[j], c, prev)
		}
	}
	base, worst := curve[0], curve[len(curve)-1]
	if base.agr != 4 || base.val != 4 || base.integ != 4 || base.term != 4 {
		t.Fatalf("uninjected baseline imperfect: %+v", base)
	}
	// Exact pinned endpoint: at 30%% loss the hardened protocol keeps the
	// safety properties in every cell but no cell terminates within the 10s
	// horizon.
	if worst.agr != 4 || worst.val != 4 || worst.integ != 4 || worst.term != 0 {
		t.Fatalf("loss=0.3 endpoint moved: %+v (want safety 4/4, termination 0/4)", worst)
	}
}
