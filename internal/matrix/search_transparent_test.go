package matrix

import (
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/scenario"
)

// assertSearchTransparent runs every cell of src twice with tracing on —
// once on the incremental kosr.Searcher the stack uses, once with
// kosr.FromScratch injected per node — and requires byte-identical per-cell
// trace digests and graded outcomes. This is the incremental-search
// determinism contract end to end: committee-adoption timing is
// trace-visible, so the incremental engine must return exactly what the
// from-scratch search would at every knowledge event; only the work per
// invocation may shrink.
func assertSearchTransparent(t *testing.T, src CellSource) {
	t.Helper()
	var inc, ref scenario.Runner
	ref.SearchFactory = func() kosr.Search { return kosr.FromScratch{} }
	for i := 0; i < src.Len(); i++ {
		p := src.Cell(i).Params
		c, err := p.Compile()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		got, err := inc.Run(c, p.Seed, true)
		if err != nil {
			t.Fatalf("cell %d (incremental): %v", i, err)
		}
		gotDigest, gotEvents, gotConsensus := got.TraceDigest, got.TraceEvents, got.Consensus()
		want, err := ref.Run(c, p.Seed, true)
		if err != nil {
			t.Fatalf("cell %d (from-scratch): %v", i, err)
		}
		if gotEvents == 0 {
			t.Fatalf("cell %d recorded no trace events — transparency check is vacuous", i)
		}
		if gotDigest != want.TraceDigest || gotEvents != want.TraceEvents {
			t.Fatalf("cell %d (%s): incremental search diverges from from-scratch: %s/%d vs %s/%d",
				i, p.ID(), gotDigest[:16], gotEvents, want.TraceDigest[:16], want.TraceEvents)
		}
		if gotConsensus != want.Consensus() {
			t.Fatalf("cell %d (%s): graded verdict diverges under incremental search", i, p.ID())
		}
	}
}

// TestSearchEngineTransparentStandardSweep pins incremental ≡ from-scratch
// per-cell trace digests on the standard sweep — every protocol family,
// both network models, clean and Byzantine placements.
func TestSearchEngineTransparentStandardSweep(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	assertSearchTransparent(t, src)
}

// TestSearchEngineTransparentExtendedKOSR pins the same contract on the
// extended-KOSR sweep, where every cell builds its own random graph and the
// Core search (the heaviest search the stack runs) fires on every knowledge
// update.
func TestSearchEngineTransparentExtendedKOSR(t *testing.T) {
	a := Axes{
		Name:   "extended-search-transparency",
		Graphs: []graph.Def{def(t, "extended:core=4,noncore=2,extra=0.2")},
		Modes:  []core.Mode{core.ModeUnknownF},
		Nets:   []scenario.NetParams{{Kind: scenario.NetSync}},
		Seeds:  Seeds(1, 6),
	}
	src, err := a.Source()
	if err != nil {
		t.Fatal(err)
	}
	assertSearchTransparent(t, src)
}
