package matrix

import (
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// TestFingerprintIdentityProbabilisticSweep asserts monolithic ≡
// incremental ≡ sharded-then-merged ≡ resumed-after-truncation on the
// probabilistic sweep: every cell builds its graph from (family, n, density,
// seed), so the identity holds only if generation, compile caching, and the
// bitset search are all deterministic per cell regardless of worker
// scheduling or which shard a cell lands in.
func TestFingerprintIdentityProbabilisticSweep(t *testing.T) {
	src, err := ProbabilisticSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	runAllModes(t, "probabilistic, seeds 1:1", src)
}

// TestProbabilisticSweepSerialParallelIdentical crosses the probabilistic
// families with the worker pool: serial and parallel runs must carry the
// same fingerprint, guarding against shared-RNG or compile-cache state
// leaking between concurrently built random graphs.
func TestProbabilisticSweepSerialParallelIdentical(t *testing.T) {
	src, err := ProbabilisticSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(src, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(src, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Fingerprint(), parallel.Fingerprint(); s != p {
		t.Fatalf("serial and parallel probabilistic sweeps diverge:\n  serial   %s\n  parallel %s", s, p)
	}
	for _, o := range serial.Outcomes {
		if o.Err != "" {
			t.Fatalf("cell %s errored: %s", o.ID, o.Err)
		}
	}
}

// TestProbabilisticWorstPlacementMatchesBruteForce cross-checks the swept
// byz=worst placement on an ER cell against kosr.WorstPlacement run directly
// on the identical built graph: the compile pipeline must select exactly the
// adversarial subset the brute-force grading does, or the "worst case"
// column of the emergence report would be quietly optimistic.
func TestProbabilisticWorstPlacementMatchesBruteForce(t *testing.T) {
	d, err := graph.ParseDef("er:n=10,p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		for f := 1; f <= 2; f++ {
			p := scenario.Params{
				Graph:   d,
				Mode:    core.ModeKnownF,
				F:       f,
				Auto:    scenario.AutoByz{Kind: scenario.ByzSilent, Count: f, Place: scenario.PlaceWorst},
				Net:     scenario.NetParams{Kind: scenario.NetSync},
				Horizon: 5 * sim.Second,
				Seed:    seed,
			}
			c, err := p.Compile()
			if err != nil {
				t.Fatalf("seed %d f=%d: %v", seed, f, err)
			}
			b, err := d.Build(seed)
			if err != nil {
				t.Fatal(err)
			}
			want, err := kosr.WorstPlacement(b.G, f)
			if err != nil {
				t.Fatalf("seed %d f=%d: WorstPlacement: %v", seed, f, err)
			}
			if len(c.Byz) != want.Byz.Len() {
				t.Fatalf("seed %d f=%d: compiled %d byz, brute force %d", seed, f, len(c.Byz), want.Byz.Len())
			}
			for id := range c.Byz {
				if !want.Byz.Has(id) {
					t.Fatalf("seed %d f=%d: compiled placement has %d, brute force chose %s",
						seed, f, id, want.Byz)
				}
			}
		}
	}
}
