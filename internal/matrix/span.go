package matrix

import (
	"fmt"
	"strconv"
	"strings"
)

// Span is the shard-spec algebra the distributed fabric schedules with: the
// tail of a round-robin shard, written "i/n@t" — the cells of shard i/n at
// shard-local positions t and beyond. "i/n" (t = 0) is the whole shard, so
// every spec a single-machine sweep ever wrote is a Span.
//
// The point of the type is closure under work-stealing. When a worker stalls
// partway through a span, the positions it has completed form a prefix (the
// pool claims positions within a bounded window, so the unclaimed region is
// a tail plus a few gaps). The tail is itself a Span, and Split deals it
// round-robin into m sub-Spans — each again of the form "i'/n'@t'" — that
// can be dispatched to idle workers as ordinary shard specs. No new stream
// format, no cell lists shipped over the wire: the algebra keeps re-specs
// arithmetic at any splitting depth.
type Span struct {
	// Shard is the round-robin slice of the sweep.
	Shard Shard
	// From is the first shard-local position included (0 = whole shard).
	From int
}

// ParseSpan parses "i/n@t" or the plain shard form "i/n"; the empty string
// means the whole sweep.
func ParseSpan(s string) (Span, error) {
	spec, tail, cut := strings.Cut(s, "@")
	if cut && spec == "" {
		return Span{}, fmt.Errorf("bad span %q (want i/n@t)", s)
	}
	sh, err := ParseShard(spec)
	if err != nil {
		return Span{}, err
	}
	sp := Span{Shard: sh}
	if cut {
		t, err := strconv.Atoi(tail)
		if err != nil || t < 0 {
			return Span{}, fmt.Errorf("bad span %q (want i/n@t with t ≥ 0)", s)
		}
		sp.From = t
	}
	return sp, nil
}

// String renders the canonical form: "i/n" when the span is a whole shard,
// "i/n@t" otherwise — so specs written by non-distributed runs are
// byte-identical to what they always were.
func (s Span) String() string {
	if s.From == 0 {
		return s.Shard.String()
	}
	return fmt.Sprintf("%s@%d", s.Shard, s.From)
}

// IsAll reports whether the span covers the whole sweep.
func (s Span) IsAll() bool { return s.Shard.IsAll() && s.From == 0 }

// start is the global index of the span's first cell.
func (s Span) start() int { return s.Shard.Index - 1 + s.From*s.Shard.Count }

// Owns reports whether global cell index g belongs to the span.
func (s Span) Owns(g int) bool {
	return g%s.Shard.Count == s.Shard.Index-1 && g >= s.start()
}

// Len is the number of cells the span holds in a sweep of total cells.
func (s Span) Len(total int) int {
	if first := s.start(); first < total {
		return (total - first + s.Shard.Count - 1) / s.Shard.Count
	}
	return 0
}

// Globals lists the span's global cell indices in ascending order (the
// coordinator's expected-coverage set; spans dispatched as tasks are small
// multiples of the worker count, never O(cells) of them).
func (s Span) Globals(total int) []int {
	out := make([]int, 0, s.Len(total))
	for g := s.start(); g < total; g += s.Shard.Count {
		out = append(out, g)
	}
	return out
}

// Source is the lazy view of the span's cells: the shard view offset to
// start at From. Like Shard.Source the base must be a whole sweep.
func (s Span) Source(base CellSource) CellSource {
	sh := s.Shard.Source(base)
	if s.From == 0 {
		return sh
	}
	n := sh.Len() - s.From
	if n < 0 {
		n = 0
	}
	return &offsetSource{base: sh, off: s.From, n: n}
}

// Split deals the span round-robin into m sub-spans. Sub-span k starts at
// the span's local position From+k and strides m shard-steps, i.e. global
// start gₖ = (Index-1) + (From+k)·Count with stride Count·m — which is again
// a residue class from a point on: shard 1+gₖ mod (Count·m) of Count·m, from
// local position gₖ div (Count·m). The union of the sub-spans is exactly the
// span, pairwise disjoint, at any nesting depth.
func (s Span) Split(m int) []Span {
	if m <= 1 {
		return []Span{s}
	}
	stride := s.Shard.Count * m
	out := make([]Span, 0, m)
	for k := 0; k < m; k++ {
		g := s.start() + k*s.Shard.Count
		out = append(out, Span{
			Shard: Shard{Index: g%stride + 1, Count: stride},
			From:  g / stride,
		})
	}
	return out
}

// offsetSource drops the first off positions of a base source (the span's
// already-completed prefix). Global indices are preserved.
type offsetSource struct {
	base CellSource
	off  int
	n    int
}

// Len implements CellSource.
func (s *offsetSource) Len() int { return s.n }

// Index implements CellSource.
func (s *offsetSource) Index(i int) int { return s.base.Index(i + s.off) }

// Cell implements CellSource.
func (s *offsetSource) Cell(i int) Cell { return s.base.Cell(i + s.off) }
