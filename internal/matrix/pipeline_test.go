package matrix

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
)

// TestSourceMatchesExpand pins the lazy source to the eager expansion: the
// mixed-radix arithmetic must produce exactly the cells the historical
// nested loops produced, in the same order, and the shard view must select
// exactly the cells Shard.Of selects.
func TestSourceMatchesExpand(t *testing.T) {
	a := Axes{
		Name:   "source-vs-expand",
		Graphs: []graph.Def{def(t, "fig1b"), def(t, "kosr:sink=5,nonsink=2,k=2")},
		Modes:  []core.Mode{core.ModeKnownF},
		Nets:   []scenario.NetParams{{Kind: scenario.NetSync}, {Kind: scenario.NetPartial}},
		Byz:    []scenario.AutoByz{{}, {Kind: scenario.ByzSilent, Count: 1, Place: scenario.PlaceTail}},
		F:      []int{-1, 1},
		Seeds:  Seeds(1, 3),
	}
	cells, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	src, err := a.Source()
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != len(cells) || src.Len() != a.Size() {
		t.Fatalf("source has %d cells, expand %d, Size() %d", src.Len(), len(cells), a.Size())
	}
	for i := range cells {
		got := src.Cell(i)
		if got.Index != i || src.Index(i) != i {
			t.Fatalf("cell %d: lazy index %d/%d", i, got.Index, src.Index(i))
		}
		if !reflect.DeepEqual(got.Params, cells[i].Params) {
			t.Fatalf("cell %d diverges:\n  lazy:  %+v\n  eager: %+v", i, got.Params, cells[i].Params)
		}
	}
	for _, n := range []int{2, 3, 5} {
		for idx := 1; idx <= n; idx++ {
			sh := Shard{Index: idx, Count: n}
			want := sh.Of(cells)
			got := sh.Source(src)
			if got.Len() != len(want) {
				t.Fatalf("shard %s: lazy %d cells, eager %d", sh, got.Len(), len(want))
			}
			for j := range want {
				if got.Index(j) != want[j].Index || !reflect.DeepEqual(got.Cell(j).Params, want[j].Params) {
					t.Fatalf("shard %s position %d diverges", sh, j)
				}
			}
		}
	}
}

// TestSourceValidatesEveryAxisValue asserts Axes.Source rejects malformed
// values on any axis, not just the graph axis or the first value — the lazy
// pipeline's replacement for Expand's per-cell eager validation.
func TestSourceValidatesEveryAxisValue(t *testing.T) {
	base := Axes{
		Name:   "probe",
		Graphs: []graph.Def{def(t, "fig1b")},
		Modes:  []core.Mode{core.ModeKnownF},
	}
	if _, err := base.Source(); err != nil {
		t.Fatalf("valid axes rejected: %v", err)
	}
	bad := []Axes{
		func() Axes {
			a := base
			a.Graphs = append([]graph.Def{a.Graphs[0]}, graph.Def{Kind: graph.DefKOSR})
			return a
		}(),
		func() Axes { a := base; a.F = []int{-1, -7}; return a }(),
		func() Axes {
			a := base
			a.Byz = []scenario.AutoByz{{}, {Kind: scenario.ByzSilent, Count: -1}}
			return a
		}(),
	}
	for i, a := range bad {
		if _, err := a.Source(); err == nil {
			t.Errorf("case %d: Source accepted a malformed non-first axis value", i)
		}
	}
}

// truncateStream cuts the last n lines off a stream file (the trailer plus
// n-1 outcome lines), simulating a crash mid-sweep.
func truncateStream(t *testing.T, path string, n int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	end := len(raw)
	for i := 0; i < n; i++ {
		end = bytes.LastIndexByte(raw[:end-1], '\n') + 1
	}
	if err := os.WriteFile(path, raw[:end], 0o644); err != nil {
		t.Fatal(err)
	}
}

// runAllModes executes the sweep behind src every way the pipeline offers
// and asserts one fingerprint: monolithic Run, incremental Aggregator fed
// in order and fully reversed, sharded RunStream files merged (outcome-
// retaining and summary-only), and a shard resumed after truncation.
func runAllModes(t *testing.T, name string, src CellSource) {
	t.Helper()
	mono, err := Run(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mono.Name = name
	want := mono.Fingerprint()

	// Incremental aggregation over the monolithic outcomes, in order and in
	// reverse (exercising the reorder buffer), must seal the same digest.
	for _, reverse := range []bool{false, true} {
		agg := NewAggregator(false)
		for i := 0; i < len(mono.Outcomes); i++ {
			pos := i
			if reverse {
				pos = len(mono.Outcomes) - 1 - i
			}
			if err := agg.Add(pos, mono.Outcomes[pos]); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := agg.Report(0)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Fingerprint(); got != want {
			t.Fatalf("incremental aggregation (reverse=%t) fingerprint %s, want %s", reverse, got[:16], want[:16])
		}
		if rep.Cells != mono.Cells || rep.Consensus != mono.Consensus || rep.Errors != mono.Errors ||
			rep.TotalMessages != mono.TotalMessages || rep.TotalBytes != mono.TotalBytes {
			t.Fatalf("incremental aggregates diverge: %+v vs %+v", rep, mono)
		}
	}

	// Sharded: three streamed shard files, merged with and without outcome
	// retention.
	dir := t.TempDir()
	var paths []string
	for i := 1; i <= 3; i++ {
		sh := Shard{Index: i, Count: 3}
		path := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		if _, err := RunStreamFile(path, sh.Source(src), Options{Parallelism: 2}, StreamHeader{
			Name: name, TotalCells: src.Len(), Shard: sh.String(),
		}); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	for _, keep := range []bool{true, false} {
		merged, err := MergeFilesWith(MergeOptions{KeepOutcomes: keep}, paths...)
		if err != nil {
			t.Fatal(err)
		}
		if got := merged.Fingerprint(); got != want {
			t.Fatalf("sharded merge (keep=%t) fingerprint %s, want %s", keep, got[:16], want[:16])
		}
		if keep && len(merged.Outcomes) != src.Len() {
			t.Fatalf("retaining merge kept %d outcomes, want %d", len(merged.Outcomes), src.Len())
		}
		if !keep && merged.Outcomes != nil {
			t.Fatalf("summary merge retained %d outcomes", len(merged.Outcomes))
		}
	}

	// Resumed: truncate shard 1 (trailer plus one outcome) and complete it;
	// the merge must still reproduce the monolithic fingerprint.
	sh := Shard{Index: 1, Count: 3}
	part := sh.Source(src)
	truncateStream(t, paths[0], 2)
	tr, skipped, err := ResumeStreamFile(paths[0], part, Options{Parallelism: 2}, StreamHeader{
		Name: name, TotalCells: src.Len(), Shard: sh.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if wantSkip := part.Len() - 1; skipped != wantSkip {
		t.Fatalf("resume skipped %d cells, want %d", skipped, wantSkip)
	}
	if tr.CellsRun != part.Len() {
		t.Fatalf("resumed trailer covers %d cells, want %d", tr.CellsRun, part.Len())
	}
	merged, err := MergeFilesWith(MergeOptions{}, paths...)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Fingerprint(); got != want {
		t.Fatalf("resumed merge fingerprint %s, want %s", got[:16], want[:16])
	}
}

// TestFingerprintIdentityStandardSweep asserts monolithic ≡ incremental ≡
// sharded-then-merged ≡ resumed-after-truncation on the standard sweep.
func TestFingerprintIdentityStandardSweep(t *testing.T) {
	src, err := StandardSweep(Seeds(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	runAllModes(t, "standard sweep, seeds 1:1", src)
}

// TestFingerprintIdentityExtendedKOSR asserts the same identity on a
// generated extended-k-OSR family sweep, where every cell's graph is built
// from its seed — the regime the lazy source exists for.
func TestFingerprintIdentityExtendedKOSR(t *testing.T) {
	a := Axes{
		Name:   "extended-sweep",
		Graphs: []graph.Def{def(t, "extended:core=4,noncore=2,extra=0.2")},
		Modes:  []core.Mode{core.ModeUnknownF},
		Nets:   []scenario.NetParams{{Kind: scenario.NetSync}},
		Seeds:  Seeds(1, 6),
	}
	src, err := a.Source()
	if err != nil {
		t.Fatal(err)
	}
	runAllModes(t, "extended-sweep", src)
}

// TestResumeEdgeCases covers the resume states outside the happy path: a
// missing file (fresh run), an already-complete file (nothing to run), and
// a stream from a different sweep (refused).
func TestResumeEdgeCases(t *testing.T) {
	cells := testCells(t)
	sh := Shard{Index: 1, Count: 2}
	part := CellList(sh.Of(cells))
	hdr := StreamHeader{Name: "stream-test", TotalCells: len(cells), Shard: sh.String()}
	path := filepath.Join(t.TempDir(), "shard.jsonl")

	// Missing file: resume degrades to a fresh run.
	tr, skipped, err := ResumeStreamFile(path, part, Options{}, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || tr.CellsRun != part.Len() {
		t.Fatalf("fresh resume: skipped %d, ran %d, want 0/%d", skipped, tr.CellsRun, part.Len())
	}

	// Complete file: everything is skipped, nothing re-runs, and the
	// trailer still describes the whole shard.
	tr, skipped, err = ResumeStreamFile(path, part, Options{}, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != part.Len() || tr.CellsRun != part.Len() {
		t.Fatalf("complete resume: skipped %d, trailer %d, want %d/%d", skipped, tr.CellsRun, part.Len(), part.Len())
	}

	// A header from a different sweep must be refused, not overwritten.
	other := hdr
	other.Name = "some-other-sweep"
	if _, _, err := ResumeStreamFile(path, part, Options{}, other); err == nil {
		t.Fatal("resume accepted a stream from a different sweep")
	}
	// The refused file is untouched and still a complete, mergeable shard.
	if _, _, err := ResumeStreamFile(path, part, Options{}, hdr); err != nil {
		t.Fatalf("refusal damaged the stream: %v", err)
	}
}

// errorSweep builds a lazy n-cell sweep whose cells all fail instantly at
// graph construction (a k-OSR spec no seed can satisfy): the cheapest
// possible real cells, used to exercise the pipeline at 10^5 cells without
// 10^5 simulations.
func errorSweep(t *testing.T, n int) CellSource {
	t.Helper()
	a := Axes{
		Name:   "error-sweep",
		Graphs: []graph.Def{def(t, "kosr:sink=2,nonsink=1,k=3")},
		Modes:  []core.Mode{core.ModeKnownF},
		Seeds:  Seeds(1, int64(n)),
	}
	src, err := a.Source()
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != n {
		t.Fatalf("error sweep has %d cells, want %d", src.Len(), n)
	}
	return src
}

// TestHugeSweepStreamsAndResumes is the scale acceptance test: a 10^5-cell
// sweep runs through RunStream end to end — lazy source in, JSONL out, no
// cell or outcome slice anywhere — its summary merge reproduces the
// monolithic fingerprint, and resuming a truncated copy completes only the
// missing cells.
func TestHugeSweepStreamsAndResumes(t *testing.T) {
	const n = 100_000
	src := errorSweep(t, n)

	mono, err := Run(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mono.Name = "error-sweep"
	if mono.Errors != n {
		t.Fatalf("%d of %d cells errored, want all (the sweep exists to error instantly)", mono.Errors, n)
	}
	want := mono.Fingerprint()

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	hdr := StreamHeader{Name: "error-sweep", TotalCells: n, Shard: "1/1"}
	tr, err := RunStreamFile(path, src, Options{}, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CellsRun != n || tr.Errors != n {
		t.Fatalf("streamed %d cells with %d errors, want %d/%d", tr.CellsRun, tr.Errors, n, n)
	}
	merged, err := MergeFilesWith(MergeOptions{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Fingerprint(); got != want {
		t.Fatalf("summary merge of %d streamed cells fingerprint %s, want monolithic %s", n, got[:16], want[:16])
	}
	if merged.Outcomes != nil {
		t.Fatalf("summary merge materialized %d outcomes", len(merged.Outcomes))
	}

	// Crash at ~40% and resume: only the missing cells run, and the merged
	// fingerprint is unchanged.
	truncateStream(t, path, n/2)
	tr, skipped, err := ResumeStreamFile(path, src, Options{}, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if wantSkip := n - n/2 + 1; skipped != wantSkip { // n/2 lines cut = trailer + (n/2 - 1) outcomes
		t.Fatalf("resume skipped %d cells, want %d", skipped, wantSkip)
	}
	if tr.CellsRun != n {
		t.Fatalf("resumed trailer covers %d cells, want %d", tr.CellsRun, n)
	}
	merged, err = MergeFilesWith(MergeOptions{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Fingerprint(); got != want {
		t.Fatalf("resumed merge fingerprint %s, want %s", got[:16], want[:16])
	}
}

// syntheticOutcome fabricates a distinct outcome without running anything —
// distinct ID and seed per cell, so any accidental retention by the
// aggregator shows up as heap growth.
func syntheticOutcome(i int) Outcome {
	return Outcome{
		Index:       i,
		ID:          fmt.Sprintf("synthetic/cell-%d", i),
		Graph:       "kosr:sink=5,nonsink=3,k=2",
		Mode:        "bft-cup",
		Net:         "sync",
		Byz:         "none",
		F:           -1,
		Seed:        int64(i),
		Consensus:   i%7 != 0,
		Agreement:   true,
		Validity:    true,
		Integrity:   true,
		Termination: i%7 != 0,
		Messages:    int64(100 + i%13),
		Bytes:       int64(1000 + i%131),
	}
}

// retainedHeap feeds n synthetic outcomes into a summary aggregator and
// reports the live heap with the aggregator still reachable.
func retainedHeap(t *testing.T, n int) (agg *Aggregator, heap uint64) {
	t.Helper()
	agg = NewAggregator(false)
	for i := 0; i < n; i++ {
		if err := agg.Add(i, syntheticOutcome(i)); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return agg, ms.HeapAlloc
}

// TestAggregatorMemoryIndependentOfCellCount pins the tentpole's memory
// claim: folding 40× more cells must not grow the aggregator's retained
// heap materially (axis tables are capped, outcomes are hashed and
// dropped). Retaining outcomes at the large count would cost tens of
// megabytes; the gate allows 4 MB of noise.
func TestAggregatorMemoryIndependentOfCellCount(t *testing.T) {
	small, heapSmall := retainedHeap(t, 5_000)
	large, heapLarge := retainedHeap(t, 200_000)
	if rep, err := large.Report(0); err != nil || rep.Cells != 200_000 {
		t.Fatalf("large aggregator: %v, cells %d", err, rep.Cells)
	}
	runtime.KeepAlive(small)
	const limit = 4 << 20
	if heapLarge > heapSmall+limit {
		t.Fatalf("aggregator retained heap grew from %d to %d bytes over 40× more cells (limit +%d)",
			heapSmall, heapLarge, limit)
	}
	// The seed axis must have hit the overflow bucket rather than growing
	// one row per seed.
	rep, err := small.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Axes["seed"]); got != maxAxisValues+1 {
		t.Fatalf("seed axis tracks %d values, want %d capped + overflow", got, maxAxisValues+1)
	}
}
