package matrix

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// Options tunes matrix execution.
type Options struct {
	// Parallelism is the worker count; ≤ 0 means GOMAXPROCS. 1 is fully
	// serial (the baseline the determinism tests compare against).
	Parallelism int
	// Trace enables per-cell event/decision trace digests (costs one SHA-256
	// stream per cell).
	Trace bool
	// Progress, when non-nil, is called after every finished cell with the
	// number completed so far and the total. Calls are serialized.
	Progress func(done, total int)
}

// Outcome is the graded result of one cell. Every field except WallNS is
// deterministic, and the JSONL stream round-trips all of them, which is what
// makes a merged shard report fingerprint-identical to a monolithic run.
type Outcome struct {
	// Index is the cell's global position in expansion order.
	Index int `json:"index"`
	// ID is the stable cell identifier (scenario.Params.ID).
	ID string `json:"id"`
	// Graph / Mode / Net / Byz / F / Seed are the cell's axis labels, echoed
	// so shard files and reports are self-describing.
	Graph string `json:"graph"`
	Mode  string `json:"mode"`
	Net   string `json:"net"`
	Byz   string `json:"byz"`
	F     int    `json:"f"`
	Seed  int64  `json:"seed"`

	// Consensus is the conjunction of the four graded properties below;
	// FailureMode names the first violated one (empty for a clean run).
	Consensus   bool   `json:"consensus"`
	Agreement   bool   `json:"agreement"`
	Validity    bool   `json:"validity"`
	Integrity   bool   `json:"integrity"`
	Termination bool   `json:"termination"`
	FailureMode string `json:"failure_mode,omitempty"`

	// Expect / Match are set for cells carrying a paper prediction.
	Expect *bool `json:"expect,omitempty"`
	Match  *bool `json:"match,omitempty"`

	// VirtualNS is the virtual time of the last correct decision; Messages
	// and Bytes are the simulator's traffic counters. TraceDigest/TraceEvents
	// are set when Options.Trace was on.
	VirtualNS   sim.Time `json:"virtual_ns"`
	Messages    int64    `json:"messages"`
	Bytes       int64    `json:"bytes"`
	TraceDigest string   `json:"trace_digest,omitempty"`
	TraceEvents int64    `json:"trace_events,omitempty"`

	// WallNS is measured wall-clock time for this cell. It is the one
	// nondeterministic field; Report.Fingerprint excludes it.
	WallNS int64 `json:"wall_ns"`

	Err string `json:"err,omitempty"`
}

// compileCacheCap bounds each worker's compile cache. A seed sweep needs one
// entry; the standard sweep needs one per (graph, mode, net, byz, f)
// combination its shard touches. Eviction is FIFO — sources expand seeds
// innermost, so a sweep revisits compile keys in long runs, not randomly.
const compileCacheCap = 64

// compiledEntry is one cached compilation: the seed-independent Compiled
// scenario plus its precomputed ID prefix, so per-cell identity is one
// string concatenation instead of re-rendering every axis label.
type compiledEntry struct {
	c        *scenario.Compiled
	idPrefix string
}

// cellRunner is one worker's execution state: a bounded compile cache keyed
// by the cell's seed-independent identity (scenario.Params.CompileKey) and
// the reusable simulation scratch (engine, bookkeeping maps). A SeedSweep
// compiles once per worker and runs N times; caching is observably
// transparent — the fingerprint-identity tests pin cached and per-cell
// uncached execution to byte-identical reports.
type cellRunner struct {
	trace  bool
	runner scenario.Runner
	cache  map[string]compiledEntry
	order  []string // insertion order, for FIFO eviction
}

func newCellRunner(trace bool) *cellRunner {
	return &cellRunner{trace: trace, cache: make(map[string]compiledEntry, compileCacheCap)}
}

// compiled resolves the cell's compilation, from cache when possible.
// Failures are not cached: their messages carry the per-cell name, and a
// failing compile is never the hot path.
func (w *cellRunner) compiled(p scenario.Params) (compiledEntry, error) {
	key := p.CompileKey()
	if e, ok := w.cache[key]; ok {
		return e, nil
	}
	c, err := p.Compile()
	if err != nil {
		return compiledEntry{}, err
	}
	e := compiledEntry{c: c, idPrefix: c.Labels.IDPrefix()}
	if len(w.cache) >= compileCacheCap {
		delete(w.cache, w.order[0])
		copy(w.order, w.order[1:])
		w.order = w.order[:len(w.order)-1]
	}
	w.cache[key] = e
	w.order = append(w.order, key)
	return e, nil
}

// runCell executes one cell on the worker's deterministic simulation
// scratch. Axis labels come from the compiled entry (or, on a compile error,
// are rendered once after the error is known), so the hot loop never renders
// a label twice.
func (w *cellRunner) runCell(c Cell) Outcome {
	p := c.Params
	out := Outcome{Index: c.Index, F: p.F, Seed: p.Seed}
	start := time.Now()
	defer func() { out.WallNS = time.Since(start).Nanoseconds() }()
	ent, err := w.compiled(p)
	if err != nil {
		labels := p.Labels()
		out.ID = labels.IDFor(p.Seed)
		out.Graph, out.Mode, out.Net, out.Byz = labels.Graph, labels.Mode, labels.Net, labels.Byz
		out.Err = err.Error()
		return out
	}
	labels := ent.c.Labels
	out.ID = ent.idPrefix + "/seed=" + strconv.FormatInt(p.Seed, 10)
	out.Graph, out.Mode, out.Net, out.Byz = labels.Graph, labels.Mode, labels.Net, labels.Byz
	res, err := w.runner.Run(ent.c, p.Seed, w.trace)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Consensus = res.Consensus()
	out.Agreement = res.Agreement
	out.Validity = res.Validity
	out.Integrity = res.Integrity
	out.Termination = res.Termination
	out.FailureMode = res.FailureMode()
	out.VirtualNS = res.Elapsed
	out.Messages = res.Messages
	out.Bytes = res.Bytes
	out.TraceDigest = res.TraceDigest
	out.TraceEvents = res.TraceEvents
	if c.Expect != nil {
		want := c.Expect.Consensus
		match := want == out.Consensus
		out.Expect, out.Match = &want, &match
	}
	return out
}

// claimWindowPerWorker bounds how far ahead of the completion watermark a
// worker may claim a cell position, as a multiple of the pool's parallelism.
// Without the bound, a racing worker streaming instant cells past one slow
// in-flight cell claims positions arbitrarily far ahead, and every consumer
// that folds outcomes in position order — the Aggregator's reorder buffer,
// a shard merge's per-stream buffers — grows without bound. With it, at
// most parallelism × claimWindowPerWorker outcomes can ever be buffered, so
// downstream memory is O(parallelism) at any sweep size. The factor is
// generous: a worker only ever waits when it is a full window ahead of the
// slowest cell, which costs nothing in the uniform-cost common case.
const claimWindowPerWorker = 8

// runPool executes the source's cells on a worker pool and feeds every
// finished outcome to sink in completion order. Workers claim positions
// sequentially within a sliding window of the completion watermark (see
// claimWindowPerWorker) and materialize each cell on demand — nothing holds
// a cell slice. Sink calls are serialized; pos is the cell's position within
// the source (not its global Index). A sink error stops workers from
// claiming further cells and is returned. The effective parallelism is
// returned alongside.
func runPool(src CellSource, opts Options, sink func(pos int, o Outcome) error) (int, error) {
	n := src.Len()
	if n == 0 {
		return 0, fmt.Errorf("matrix: no cells to run")
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	window := par * claimWindowPerWorker

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	var (
		next      int          // next unclaimed position
		low       int          // completion watermark: every position < low is done
		completed map[int]bool // done positions ≥ low (size ≤ window by construction)
		stop      bool
		sinkErr   error
		done      int
	)
	completed = make(map[int]bool, window)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cr := newCellRunner(opts.Trace)
			for {
				mu.Lock()
				for !stop && next < n && next >= low+window {
					cond.Wait()
				}
				if stop || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				o := cr.runCell(src.Cell(i))

				mu.Lock()
				if sinkErr == nil {
					if err := sink(i, o); err != nil {
						sinkErr = err
						stop = true
					}
				}
				completed[i] = true
				for completed[low] {
					delete(completed, low)
					low++
				}
				done++
				if opts.Progress != nil {
					opts.Progress(done, n)
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return par, sinkErr
}

// Run executes the source's cells on a worker pool, folding outcomes through
// an incremental Aggregator in cell-position order, so the report (minus
// wall-clock fields) is independent of parallelism and scheduling. The
// report retains every outcome; stream a shard (RunStream) when a sweep is
// too large to hold its outcomes.
func Run(src CellSource, opts Options) (*Report, error) {
	agg := NewAggregator(true)
	start := time.Now()
	par, err := runPool(src, opts, agg.Add)
	if err != nil {
		return nil, err
	}
	rep, err := agg.Report(par)
	if err != nil {
		return nil, err
	}
	rep.WallNS = time.Since(start).Nanoseconds()
	return rep, nil
}

// RunAxes builds the lazy source and runs in one step. Cells that cannot
// materialize surface as per-cell Err outcomes in the report (use
// Axes.Expand to pre-validate a small sweep eagerly).
func RunAxes(a Axes, opts Options) (*Report, error) {
	src, err := a.Source()
	if err != nil {
		return nil, err
	}
	rep, err := Run(src, opts)
	if err != nil {
		return nil, err
	}
	rep.Name = a.Name
	return rep, nil
}
