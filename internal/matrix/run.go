package matrix

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// Options tunes matrix execution.
type Options struct {
	// Parallelism is the worker count; ≤ 0 means GOMAXPROCS. 1 is fully
	// serial (the baseline the determinism tests compare against).
	Parallelism int
	// Trace enables per-cell event/decision trace digests (costs one SHA-256
	// stream per cell).
	Trace bool
	// Progress, when non-nil, is called after every finished cell with the
	// number completed so far and the total. Calls are serialized.
	Progress func(done, total int)
}

// Outcome is the graded result of one cell.
type Outcome struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
	Graph string `json:"graph"`
	Mode  string `json:"mode"`
	Net   string `json:"net"`
	Byz   string `json:"byz"`
	F     int    `json:"f"`
	Seed  int64  `json:"seed"`

	Consensus   bool   `json:"consensus"`
	Agreement   bool   `json:"agreement"`
	Validity    bool   `json:"validity"`
	Integrity   bool   `json:"integrity"`
	Termination bool   `json:"termination"`
	FailureMode string `json:"failure_mode,omitempty"`

	// Expect / Match are set for cells carrying a paper prediction.
	Expect *bool `json:"expect,omitempty"`
	Match  *bool `json:"match,omitempty"`

	VirtualNS   sim.Time `json:"virtual_ns"`
	Messages    int64    `json:"messages"`
	Bytes       int64    `json:"bytes"`
	TraceDigest string   `json:"trace_digest,omitempty"`
	TraceEvents int64    `json:"trace_events,omitempty"`

	// WallNS is measured wall-clock time for this cell. It is the one
	// nondeterministic field; Report.Fingerprint excludes it.
	WallNS int64 `json:"wall_ns"`

	Err string `json:"err,omitempty"`
}

// runCell executes one cell on its own deterministic simulation engine.
func runCell(c Cell, trace bool) Outcome {
	p := c.Params
	p.Trace = trace
	out := Outcome{
		Index: c.Index,
		ID:    p.ID(),
		Graph: p.Graph.String(),
		Mode:  p.Mode.String(),
		Net:   p.Net.Label(),
		Byz:   p.ByzLabel(),
		F:     p.F,
		Seed:  p.Seed,
	}
	start := time.Now()
	defer func() { out.WallNS = time.Since(start).Nanoseconds() }()
	spec, err := p.Spec()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	res, err := scenario.Run(spec)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Consensus = res.Consensus()
	out.Agreement = res.Agreement
	out.Validity = res.Validity
	out.Integrity = res.Integrity
	out.Termination = res.Termination
	out.FailureMode = res.FailureMode()
	out.VirtualNS = res.Elapsed
	out.Messages = res.Messages
	out.Bytes = res.Bytes
	out.TraceDigest = res.TraceDigest
	out.TraceEvents = res.TraceEvents
	if c.Expect != nil {
		want := c.Expect.Consensus
		match := want == out.Consensus
		out.Expect, out.Match = &want, &match
	}
	return out
}

// Run executes the cells on a worker pool and aggregates the outcomes in
// cell-index order, so the report (minus wall-clock fields) is independent
// of parallelism and scheduling.
func Run(cells []Cell, opts Options) (*Report, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("matrix: no cells to run")
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cells) {
		par = len(cells)
	}

	outcomes := make([]Outcome, len(cells))
	start := time.Now()
	var next atomic.Int64
	next.Store(-1)
	var done atomic.Int64
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cells) {
					return
				}
				outcomes[i] = runCell(cells[i], opts.Trace)
				n := int(done.Add(1))
				if opts.Progress != nil {
					progressMu.Lock()
					opts.Progress(n, len(cells))
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	rep := aggregate(outcomes, par)
	rep.WallNS = time.Since(start).Nanoseconds()
	return rep, nil
}

// RunAxes expands and runs in one step.
func RunAxes(a Axes, opts Options) (*Report, error) {
	cells, err := a.Expand()
	if err != nil {
		return nil, err
	}
	rep, err := Run(cells, opts)
	if err != nil {
		return nil, err
	}
	rep.Name = a.Name
	return rep, nil
}
