package matrix

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Resume support: a partial JSONL shard stream already records every
// completed cell, so an interrupted sweep is a prefix of a valid stream —
// header, some outcomes, no trailer (possibly ending in a torn line from a
// crash mid-write). ResumeStreamFile re-derives the work left: it scans the
// file, verifies the header matches the sweep being resumed, truncates any
// torn tail, runs only the cell positions the stream is missing, appends
// their outcomes, and seals the stream with a trailer covering old and new
// cells alike. The resumed file is indistinguishable from an uninterrupted
// shard run to Merge — same records, same trailer invariants, same merged
// fingerprint.

// streamScan summarizes a (possibly truncated) shard stream file.
type streamScan struct {
	header  *StreamHeader
	trailer *StreamTrailer // nil when the stream is truncated
	// done maps the global cell indices present to their graded summary
	// contribution (counted into errors/consensus below).
	done      map[int]bool
	errors    int
	consensus int
	// offset is the byte offset just past the last intact record — the
	// truncation point for appending.
	offset int64
	// headerEnd is the byte offset just past the header record (the fabric's
	// seal step rewrites the header in place up to here).
	headerEnd int64
}

// scanStreamFile reads a stream file line by line, stopping at the first
// torn or unparseable line (everything after it is discarded on resume). A
// file that does not begin with a header record is not a stream and cannot
// be resumed.
func scanStreamFile(path string) (*streamScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	scan := &streamScan{done: make(map[int]bool)}
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// A final line without its newline is a torn write: drop it.
			return scan, nil
		}
		if err != nil {
			return nil, err
		}
		var rec streamRecord
		if jerr := json.Unmarshal(bytes.TrimSpace(line), &rec); jerr != nil {
			if scan.header == nil {
				return nil, fmt.Errorf("resume %s: not a stream file: %v", path, jerr)
			}
			// Torn or corrupt line mid-stream: resume from the last intact
			// record.
			return scan, nil
		}
		switch rec.Type {
		case "header":
			if scan.header != nil {
				return nil, fmt.Errorf("resume %s: duplicate header", path)
			}
			if len(scan.done) > 0 {
				return nil, fmt.Errorf("resume %s: header after outcomes", path)
			}
			scan.header = rec.Header
			scan.headerEnd = scan.offset + int64(len(line))
		case "outcome":
			if scan.header == nil {
				return nil, fmt.Errorf("resume %s: outcome before header", path)
			}
			if rec.Outcome == nil {
				return scan, nil
			}
			if scan.done[rec.Outcome.Index] {
				return nil, fmt.Errorf("resume %s: duplicate outcome for cell index %d", path, rec.Outcome.Index)
			}
			scan.done[rec.Outcome.Index] = true
			if rec.Outcome.Err != "" {
				scan.errors++
			}
			if rec.Outcome.Consensus {
				scan.consensus++
			}
		case "trailer":
			if scan.header == nil {
				return nil, fmt.Errorf("resume %s: trailer before header", path)
			}
			scan.trailer = rec.Trailer
			scan.offset += int64(len(line))
			// A trailer closes the stream; ignore anything after it.
			return scan, nil
		default:
			// Unknown record type: treat as corruption from here on.
			return scan, nil
		}
		scan.offset += int64(len(line))
	}
}

// RunOrResumeStreamFile dispatches between a fresh RunStreamFile and
// ResumeStreamFile — the single entry point both CLIs' shard modes share,
// so their stream semantics cannot drift. skipped is 0 for a fresh run.
func RunOrResumeStreamFile(path string, resume bool, src CellSource, opts Options, hdr StreamHeader) (*StreamTrailer, int, error) {
	if resume {
		return ResumeStreamFile(path, src, opts, hdr)
	}
	tr, err := RunStreamFile(path, src, opts, hdr)
	return tr, 0, err
}

// ResumeStreamFile completes an interrupted RunStreamFile: it verifies path
// holds a (possibly truncated) stream of exactly this shard of this sweep,
// skips every cell index the stream already carries, runs only the missing
// positions of src, and appends their outcomes plus a trailer summarizing
// the whole shard. It returns the combined trailer and how many cells were
// skipped as already complete. A missing file degrades to a fresh
// RunStreamFile; a file whose header disagrees with the sweep (name, total
// cells, shard spec or shard size) is refused, never overwritten.
func ResumeStreamFile(path string, src CellSource, opts Options, hdr StreamHeader) (*StreamTrailer, int, error) {
	scan, err := scanStreamFile(path)
	if os.IsNotExist(err) {
		tr, rerr := RunStreamFile(path, src, opts, hdr)
		return tr, 0, rerr
	}
	if err != nil {
		return nil, 0, err
	}
	if scan.header == nil {
		// Empty file (crashed before the header was flushed): start fresh.
		tr, rerr := RunStreamFile(path, src, opts, hdr)
		return tr, 0, rerr
	}
	hdr.ShardCells = src.Len()
	got := scan.header
	if got.Name != hdr.Name || got.TotalCells != hdr.TotalCells || got.Shard != hdr.Shard || got.ShardCells != hdr.ShardCells {
		return nil, 0, fmt.Errorf("resume %s: stream is from a different sweep (%q total=%d shard=%q cells=%d; want %q total=%d shard=%q cells=%d)",
			path, got.Name, got.TotalCells, got.Shard, got.ShardCells,
			hdr.Name, hdr.TotalCells, hdr.Shard, hdr.ShardCells)
	}

	// Map completed global indices back to source positions; every recorded
	// index must belong to this shard.
	var missing []int
	matched := 0
	for j := 0; j < src.Len(); j++ {
		if scan.done[src.Index(j)] {
			matched++
		} else {
			missing = append(missing, j)
		}
	}
	if matched != len(scan.done) {
		return nil, 0, fmt.Errorf("resume %s: stream carries %d cell(s) outside shard %s", path, len(scan.done)-matched, hdr.Shard)
	}

	if scan.trailer != nil {
		// The stream already closed. Accept it only if it is a complete,
		// consistent shard; anything else is corruption, not truncation.
		if len(missing) > 0 || scan.trailer.CellsRun != len(scan.done) {
			return nil, 0, fmt.Errorf("resume %s: stream has a trailer but only %d of %d cells", path, len(scan.done), src.Len())
		}
		return scan.trailer, len(scan.done), nil
	}

	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, 0, err
	}
	if err := f.Truncate(scan.offset); err != nil {
		f.Close()
		return nil, 0, err
	}
	if _, err := f.Seek(scan.offset, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	tr := StreamTrailer{
		CellsRun:  len(scan.done),
		Errors:    scan.errors,
		Consensus: scan.consensus,
	}
	start := time.Now()
	err = streamCells(&subsetSource{base: src, pos: missing}, opts, enc, bw, &tr)
	if err == nil {
		tr.WallNS = time.Since(start).Nanoseconds()
		err = enc.Encode(streamRecord{Type: "trailer", Trailer: &tr})
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, err
	}
	return &tr, len(scan.done), nil
}
