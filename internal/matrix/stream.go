package matrix

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// The streaming JSONL format lets a sweep emit per-cell results as they
// complete — no in-memory Report, no lost work on a crash mid-sweep — and
// lets shards of one sweep run on different workers and be merged later. A
// stream is one JSON object per line:
//
//	{"type":"header","header":{...}}     exactly once, first
//	{"type":"outcome","outcome":{...}}   once per cell, in completion order
//	{"type":"trailer","trailer":{...}}   exactly once, last (integrity check)
//
// Merge reconstructs the aggregate Report from a complete set of shard
// streams; its Fingerprint provably equals the monolithic run's because the
// fingerprint is a pure function of the outcomes in cell-index order and
// every cell runs on its own deterministic engine either way. Both ends are
// streaming: RunStream folds its trailer counts through an incremental
// Aggregator as cells complete, and Merge interleaves the shard files
// through per-stream cursors into another Aggregator, so neither side ever
// holds the sweep's cells or outcomes in memory.

// StreamHeader opens a stream and identifies the slice of the sweep it
// carries.
type StreamHeader struct {
	// Name labels the sweep; all shards of one sweep must agree on it.
	Name string `json:"name"`
	// TotalCells is the size of the whole sweep (not of this shard).
	TotalCells int `json:"total_cells"`
	// Shard is the canonical "i/n" shard spec this stream ran.
	Shard string `json:"shard"`
	// ShardCells is how many cells this shard contains.
	ShardCells int `json:"shard_cells"`
}

// StreamTrailer closes a stream; a missing or inconsistent trailer marks a
// truncated or corrupted shard file.
type StreamTrailer struct {
	// CellsRun must equal the header's ShardCells.
	CellsRun int `json:"cells_run"`
	// Errors and Consensus are this shard's counts (summary only; Merge
	// recomputes everything from the outcomes).
	Errors int `json:"errors"`
	// Consensus counts this shard's cells where all four properties held.
	Consensus int `json:"consensus"`
	// WallNS is this shard's wall-clock time.
	WallNS int64 `json:"wall_ns"`
}

// streamRecord is one JSONL line.
type streamRecord struct {
	Type    string         `json:"type"`
	Header  *StreamHeader  `json:"header,omitempty"`
	Outcome *Outcome       `json:"outcome,omitempty"`
	Trailer *StreamTrailer `json:"trailer,omitempty"`
}

// streamCells runs the source's cells and appends one outcome record per
// completed cell (completion order), folding the shard summary into tr
// through an incremental Aggregator. Memory is O(axes + parallelism)
// regardless of the source's size.
func streamCells(src CellSource, opts Options, enc *json.Encoder, bw *bufio.Writer, tr *StreamTrailer) error {
	if src.Len() == 0 {
		// An empty shard (more shards than cells) is legitimate: it
		// contributes a valid header+trailer stream with zero outcomes.
		return nil
	}
	agg := NewAggregator(false)
	_, err := runPool(src, opts, func(pos int, o Outcome) error {
		if err := agg.Add(pos, o); err != nil {
			return err
		}
		// Flushed per line so a concurrent tail (or a crash post-mortem)
		// sees every completed cell.
		if err := enc.Encode(streamRecord{Type: "outcome", Outcome: &o}); err != nil {
			return err
		}
		return bw.Flush()
	})
	if err != nil {
		return err
	}
	rep, err := agg.Report(0)
	if err != nil {
		return err
	}
	tr.CellsRun += rep.Cells
	tr.Errors += rep.Errors
	tr.Consensus += rep.Consensus
	return nil
}

// RunStream executes the source's cells and writes every outcome to w as a
// JSONL line the moment it completes (completion order, not index order —
// Merge reorders). The returned trailer summarizes the shard. Nothing beyond
// the running summary is buffered: a million-cell shard streams in constant
// memory.
func RunStream(src CellSource, opts Options, w io.Writer, hdr StreamHeader) (*StreamTrailer, error) {
	hdr.ShardCells = src.Len()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(streamRecord{Type: "header", Header: &hdr}); err != nil {
		return nil, err
	}
	var tr StreamTrailer
	start := time.Now()
	if err := streamCells(src, opts, enc, bw, &tr); err != nil {
		return nil, err
	}
	tr.WallNS = time.Since(start).Nanoseconds()
	if err := enc.Encode(streamRecord{Type: "trailer", Trailer: &tr}); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// RunStreamFile is RunStream writing to a file path; "-" streams to stdout.
// The shared helper keeps cupsim's and experiments' shard modes identical.
func RunStreamFile(path string, src CellSource, opts Options, hdr StreamHeader) (*StreamTrailer, error) {
	if path == "-" {
		return RunStream(src, opts, os.Stdout, hdr)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	tr, err := RunStream(src, opts, f, hdr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// streamCursor reads one shard stream incrementally for the merge: records
// are consumed on demand and out-of-order outcomes wait in a small pending
// buffer until the merge asks for their index. For streams written by
// RunStream the buffer stays O(that shard's parallelism) — the pool claims
// cells in order, so completion order can only run that far ahead.
type streamCursor struct {
	dec     *json.Decoder
	hdr     *StreamHeader
	tr      *StreamTrailer
	pending map[int]*Outcome
	outs    int
	eof     bool
}

// newStreamCursor opens a stream and reads its header record.
func newStreamCursor(r io.Reader) (*streamCursor, error) {
	c := &streamCursor{dec: json.NewDecoder(r), pending: make(map[int]*Outcome)}
	var rec streamRecord
	if err := c.dec.Decode(&rec); err == io.EOF {
		return nil, fmt.Errorf("stream: missing header")
	} else if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if rec.Type != "header" || rec.Header == nil {
		return nil, fmt.Errorf("stream: first record is %q, want header", rec.Type)
	}
	c.hdr = rec.Header
	return c, nil
}

// advance consumes one record, parking outcomes in the pending buffer.
// It returns false once the stream is exhausted.
func (c *streamCursor) advance() (bool, error) {
	if c.eof {
		return false, nil
	}
	var rec streamRecord
	if err := c.dec.Decode(&rec); err == io.EOF {
		c.eof = true
		return false, nil
	} else if err != nil {
		return false, fmt.Errorf("stream: %w", err)
	}
	switch rec.Type {
	case "header":
		return false, fmt.Errorf("stream: duplicate header")
	case "outcome":
		if c.tr != nil {
			return false, fmt.Errorf("stream: outcome after trailer")
		}
		if rec.Outcome == nil {
			return false, fmt.Errorf("stream: empty outcome record")
		}
		if _, dup := c.pending[rec.Outcome.Index]; dup {
			return false, fmt.Errorf("stream: duplicate outcome for cell index %d", rec.Outcome.Index)
		}
		c.pending[rec.Outcome.Index] = rec.Outcome
		c.outs++
	case "trailer":
		if c.tr != nil {
			return false, fmt.Errorf("stream: duplicate trailer")
		}
		c.tr = rec.Trailer
	default:
		return false, fmt.Errorf("stream: unknown record type %q", rec.Type)
	}
	return true, nil
}

// take pops the outcome for global cell index i if this cursor has buffered
// it.
func (c *streamCursor) take(i int) (*Outcome, bool) {
	o, ok := c.pending[i]
	if ok {
		delete(c.pending, i)
	}
	return o, ok
}

// finish drains the rest of the stream and validates its framing: a trailer
// must be present and agree with the header and the consumed outcome count,
// and no unconsumed outcomes may remain (those are duplicates of cells
// another stream — or this one — already supplied).
func (c *streamCursor) finish() error {
	for {
		more, err := c.advance()
		if err != nil {
			return err
		}
		if !more {
			break
		}
	}
	if c.tr == nil {
		return fmt.Errorf("stream: missing trailer (truncated shard file?)")
	}
	if len(c.pending) > 0 {
		return fmt.Errorf("stream: %d outcome(s) duplicate cells another stream supplied", len(c.pending))
	}
	if c.tr.CellsRun != c.outs || (c.hdr.ShardCells != 0 && c.hdr.ShardCells != c.outs) {
		return fmt.Errorf("stream: header/trailer claim %d/%d cells, found %d",
			c.hdr.ShardCells, c.tr.CellsRun, c.outs)
	}
	return nil
}

// shardOwners maps cell-index residues to the cursors whose shard spec owns
// them: with consistent "i/n" headers, global index g lives in the stream(s)
// claiming shard g%n+1, so the merge only reads from those when it stalls.
// It returns nil — meaning "probe every stream" — when any header carries an
// unparseable or inconsistent spec, degrading to correctness-preserving
// round-robin reads.
func shardOwners(cursors []*streamCursor) [][]*streamCursor {
	n := 0
	for _, c := range cursors {
		sh, err := ParseShard(c.hdr.Shard)
		if err != nil {
			return nil
		}
		if n == 0 {
			n = sh.Count
		} else if sh.Count != n {
			return nil
		}
	}
	if n == 0 {
		return nil
	}
	owners := make([][]*streamCursor, n)
	for _, c := range cursors {
		sh, _ := ParseShard(c.hdr.Shard)
		owners[sh.Index-1] = append(owners[sh.Index-1], c)
	}
	return owners
}

// cursorPos recovers a cursor's stream number for error messages.
func cursorPos(cursors []*streamCursor, c *streamCursor) int {
	for i, cand := range cursors {
		if cand == c {
			return i
		}
	}
	return -1
}

// MergeOptions tunes stream merging.
type MergeOptions struct {
	// KeepOutcomes retains every cell outcome in the merged report (per-cell
	// renderings need them). Without it the merge runs in O(axes) memory and
	// the report is the aggregate summary plus the sealed fingerprint — the
	// mode million-cell sweeps want.
	KeepOutcomes bool
}

// Merge reconstructs the aggregate Report from a complete set of shard
// streams of one sweep. Every cell index 0..TotalCells-1 must appear exactly
// once across the streams. The resulting report's Fingerprint equals the
// monolithic run's (wall-clock fields are excluded from the fingerprint;
// WallNS is the sum of the shards' wall times).
//
// The merge is incremental: cells are folded into an Aggregator in global
// index order while the streams are read interleaved, so beyond the merged
// report itself only each stream's out-of-order window is buffered. When
// the headers carry consistent "i/n" shard specs (everything RunStream
// writes), a stalled index only reads from the stream that owns it, so the
// window is O(streams × per-shard parallelism) for uninterrupted shards —
// not O(cells); a resumed shard can additionally buffer up to its own
// appended-tail window. Headers without parseable specs degrade to
// round-robin reads, which stay correct but may buffer more.
func Merge(opts MergeOptions, readers ...io.Reader) (*Report, error) {
	if len(readers) == 0 {
		return nil, fmt.Errorf("merge: no streams")
	}
	cursors := make([]*streamCursor, len(readers))
	for i, r := range readers {
		c, err := newStreamCursor(r)
		if err != nil {
			return nil, fmt.Errorf("merge: stream %d: %w", i, err)
		}
		cursors[i] = c
	}
	name, total := cursors[0].hdr.Name, cursors[0].hdr.TotalCells
	for i, c := range cursors[1:] {
		if c.hdr.Name != name || c.hdr.TotalCells != total {
			return nil, fmt.Errorf("merge: stream %d is from a different sweep (%q, %d cells; want %q, %d)",
				i+1, c.hdr.Name, c.hdr.TotalCells, name, total)
		}
	}
	owners := shardOwners(cursors)

	agg := NewAggregator(opts.KeepOutcomes)
	for next := 0; next < total; next++ {
		var o *Outcome
		for o == nil {
			for _, c := range cursors {
				if got, ok := c.take(next); ok {
					o = got
					break
				}
			}
			if o != nil {
				break
			}
			// Read more records — only from the stream whose shard owns
			// next when the headers identify one, so a stalled index never
			// forces unrelated streams to buffer their whole contents.
			probe := cursors
			if owners != nil {
				probe = owners[next%len(owners)]
			}
			progress := false
			for _, c := range probe {
				more, err := c.advance()
				if err != nil {
					return nil, fmt.Errorf("merge: stream %d: %w", cursorPos(cursors, c), err)
				}
				progress = progress || more
			}
			if !progress {
				return nil, fmt.Errorf("merge: cell index %d missing across %d stream(s) (missing shards?)", next, len(cursors))
			}
		}
		if err := agg.Add(next, *o); err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
	}

	var wallNS int64
	for i, c := range cursors {
		if err := c.finish(); err != nil {
			return nil, fmt.Errorf("merge: stream %d: %w", i, err)
		}
		wallNS += c.tr.WallNS
	}
	rep, err := agg.Report(0)
	if err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	rep.Name = name
	rep.WallNS = wallNS
	return rep, nil
}

// MergeStreams is Merge retaining every outcome (the historical default).
func MergeStreams(readers ...io.Reader) (*Report, error) {
	return Merge(MergeOptions{KeepOutcomes: true}, readers...)
}

// MergeFilesWith is Merge over shard files on disk.
func MergeFilesWith(opts MergeOptions, paths ...string) (*Report, error) {
	readers := make([]io.Reader, 0, len(paths))
	files := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
		files = append(files, f)
		readers = append(readers, bufio.NewReaderSize(f, 1<<16))
	}
	return Merge(opts, readers...)
}

// MergeFiles is MergeStreams over shard files on disk.
func MergeFiles(paths ...string) (*Report, error) {
	return MergeFilesWith(MergeOptions{KeepOutcomes: true}, paths...)
}
